// Package esp is the public facade of the Event Sneak Peek (ESP)
// reproduction: a trace-driven microarchitectural simulator for
// asynchronous programs, implementing the architecture of
//
//	Chadha, Mahlke, Narayanasamy — "Accelerating Asynchronous Programs
//	through Event Sneak Peek", ISCA 2015.
//
// A simulation runs one application workload (the seven Web 2.0 sessions
// of Figure 6, or a custom workload.Profile) through a configured core:
//
//	res, err := esp.Run(workload.Amazon(), esp.ESPNLConfig())
//
// Config presets correspond to the machine configurations in the paper's
// figures; the Harness in experiments.go regenerates every figure.
package esp

import (
	"fmt"

	"espsim/internal/branch"
	"espsim/internal/core"
	"espsim/internal/cpu"
	"espsim/internal/energy"
	"espsim/internal/eventq"
	"espsim/internal/mem"
	"espsim/internal/prefetch"
	"espsim/internal/runahead"
	"espsim/internal/trace"
	"espsim/internal/workload"
)

// AssistKind selects the stall-window consumer.
type AssistKind uint8

const (
	// AssistNone: the core idles through LLC-miss stalls (baseline).
	AssistNone AssistKind = iota
	// AssistRunahead: runahead execution pre-executes the same event.
	AssistRunahead
	// AssistESP: Event Sneak Peek pre-executes queued future events.
	AssistESP
)

// Config is a complete machine configuration.
type Config struct {
	// Name labels the configuration in tables and memoization keys.
	Name string

	// CPU is the timing-model configuration (zero value: DefaultConfig).
	CPU cpu.Config

	// NLI enables the next-line instruction prefetcher; NLD the
	// DCU-style next-line data prefetcher; StridePF the stride
	// prefetcher.
	NLI      bool
	NLD      bool
	StridePF bool

	// EFetch and PIF enable the §7 comparison instruction prefetchers
	// (mutually exclusive).
	EFetch bool
	PIF    bool

	// Assist selects none / runahead / ESP; RA and ESP configure them.
	Assist AssistKind
	RA     runahead.Config
	ESP    core.Options

	// PerfectL1I, PerfectL1D, PerfectBP idealize structures (Figure 3).
	PerfectL1I bool
	PerfectL1D bool
	PerfectBP  bool

	// MaxEvents truncates the session (0: run everything); MaxPending
	// widens the queue view past 2 for the Figure 13 study.
	MaxEvents  int
	MaxPending int
}

// Result is the outcome of one simulation.
type Result struct {
	App    string
	Config string

	Insts  int64
	Cycles int64
	IPC    float64

	// IMPKI is L1-I misses per kilo-instruction (Figure 11a); DMissRate
	// the L1-D miss rate (Figure 11b); MispredictRate the branch
	// misprediction rate (Figure 12).
	IMPKI          float64
	DMissRate      float64
	MispredictRate float64

	// ExtraInstPct is the percentage of additional (pre-executed)
	// instructions over the committed ones (Figure 14 annotations).
	ExtraInstPct float64

	CPU cpu.Stats
	L1I mem.CacheStats
	L1D mem.CacheStats
	L2  mem.CacheStats

	// ESPStats / RAStats are present when the corresponding assist ran.
	ESPStats *core.Stats
	RAStats  *runahead.Stats

	// Energy is the absolute Figure 14 breakdown (relative plots divide
	// by a baseline's Total).
	Energy energy.Breakdown

	// Study holds Figure 13 working-set samples when
	// ESP.MeasureWorkingSets was set.
	Study *core.WorkingSetStudy
}

// Speedup returns how much faster r is than base (base.Cycles/r.Cycles).
func (r Result) Speedup(base Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// effectiveCPU resolves the timing configuration: the zero value selects
// DefaultConfig (so `esp.Config{...}` literals keep working).
func (c Config) effectiveCPU() cpu.Config {
	if c.CPU.Width == 0 {
		cc := cpu.DefaultConfig()
		cc.PerfectBP = c.PerfectBP
		return cc
	}
	cc := c.CPU
	cc.PerfectBP = c.PerfectBP
	return cc
}

// effectiveRA resolves the runahead configuration (zero value:
// runahead.DefaultConfig).
func (c Config) effectiveRA() runahead.Config {
	if c.RA.BaseCPI == 0 {
		return runahead.DefaultConfig()
	}
	return c.RA
}

// effectiveESP resolves the ESP options (zero value:
// core.DefaultOptions).
func (c Config) effectiveESP() core.Options {
	if c.ESP.BaseCPI == 0 {
		return core.DefaultOptions()
	}
	return c.ESP
}

// Validate reports whether the configuration can be simulated, with a
// wrapped, actionable error naming the offending field. It checks the
// timing model, the assist selection and its sub-configuration
// (including cachelet geometry for ESP), and the mutually exclusive
// instruction prefetchers. Run and RunSource call it, so an invalid
// configuration yields an error, never a panic.
func (c Config) Validate() error {
	fail := func(err error) error {
		return fmt.Errorf("esp: config %q: %w", c.Name, err)
	}
	if err := c.effectiveCPU().Validate(); err != nil {
		return fail(err)
	}
	if c.MaxEvents < 0 {
		return fail(fmt.Errorf("MaxEvents must be non-negative, got %d", c.MaxEvents))
	}
	if c.MaxPending < 0 {
		return fail(fmt.Errorf("MaxPending must be non-negative, got %d", c.MaxPending))
	}
	if c.EFetch && c.PIF {
		return fail(fmt.Errorf("EFetch and PIF are mutually exclusive instruction prefetchers; enable at most one"))
	}
	switch c.Assist {
	case AssistNone:
	case AssistRunahead:
		if err := c.effectiveRA().Validate(); err != nil {
			return fail(err)
		}
	case AssistESP:
		opt := c.effectiveESP()
		if err := opt.Validate(); err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("unknown AssistKind %d", c.Assist))
	}
	return nil
}

// specSource adapts an eventq.Source to ESP's StreamSource: pre-execution
// uses the speculative stream variant (the paper's forked-off renderer
// processes, §5).
type specSource struct{ src eventq.Source }

// SpecInsts implements core.StreamSource.
func (s specSource) SpecInsts(ev trace.Event) []trace.Inst {
	return s.src.Insts(ev.ID, true)
}

// Run simulates one application profile under one configuration.
func Run(prof workload.Profile, cfg Config) (Result, error) {
	sess, err := workload.NewSession(prof)
	if err != nil {
		return Result{}, fmt.Errorf("esp: building session: %w", err)
	}
	src := eventq.SessionSource{S: sess, MaxPending: cfg.MaxPending}
	return RunSource(prof.Name, src, cfg)
}

// RunSource simulates any event source (synthetic session or recorded
// trace) under one configuration. The configuration is validated first:
// a bad Config yields a wrapped error, never a panic.
func RunSource(app string, src eventq.Source, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	ccfg := cfg.effectiveCPU()

	hier := mem.DefaultHierarchy()
	hier.PerfectL1I = cfg.PerfectL1I
	hier.PerfectL1D = cfg.PerfectL1D
	bp := branch.New()
	c := cpu.New(ccfg, hier, bp)

	if cfg.NLI {
		c.NLI = prefetch.NewNextLineI(hier)
	}
	if cfg.NLD {
		c.DCU = prefetch.NewDCU(hier)
	}
	if cfg.StridePF {
		c.Stride = prefetch.NewStride(hier)
	}
	switch {
	case cfg.EFetch:
		c.FetchObs = prefetch.NewEFetch(hier)
	case cfg.PIF:
		c.FetchObs = prefetch.NewPIF(hier)
	}

	var raEng *runahead.Engine
	switch cfg.Assist {
	case AssistRunahead:
		raEng = runahead.New(cfg.effectiveRA(), hier, bp)
		c.Assist = raEng
	case AssistESP:
		espEng, err := core.New(cfg.effectiveESP(), hier, bp, specSource{src})
		if err != nil {
			return Result{}, fmt.Errorf("esp: %w", err)
		}
		c.Assist = espEng
	}

	loop := eventq.Looper{Src: src, Core: c, MaxEvents: cfg.MaxEvents}
	loop.Run()

	res := Result{
		App:    app,
		Config: cfg.Name,
		Insts:  c.Stats.Insts,
		Cycles: c.Stats.Cycles,
		IPC:    c.Stats.IPC(),
		CPU:    c.Stats,
		L1I:    hier.L1I.Stats,
		L1D:    hier.L1D.Stats,
		L2:     hier.L2.Stats,
	}
	if c.Stats.Insts > 0 {
		res.IMPKI = float64(hier.L1I.Stats.Misses) / float64(c.Stats.Insts) * 1000
	}
	res.DMissRate = hier.L1D.Stats.MissRate()
	res.MispredictRate = c.Stats.MispredictRate()

	var preExec int64
	act := energy.Activity{
		Cycles:      c.Stats.Cycles,
		Insts:       c.Stats.Insts,
		Branches:    c.Stats.Branches,
		Mispredicts: c.Stats.Mispredicts,
		L1IAccesses: hier.L1I.Stats.Accesses,
		L1DAccesses: hier.L1D.Stats.Accesses,
		L2Accesses:  hier.L2.Stats.Accesses,
		MemAccesses: hier.L2.Stats.Misses,
		Prefetches:  hier.L1I.Stats.PrefetchInstalls + hier.L1D.Stats.PrefetchInstalls,
	}
	if esp := getESP(c.Assist); esp != nil {
		st := esp.Stats
		res.ESPStats = &st
		res.Study = esp.Study
		preExec = st.PreExecInsts
		act.L2Accesses += st.CacheletFills
		act.MemAccesses += st.LLCFills
		act.CacheletOps = st.PreExecInsts
		act.ListOps = st.PrefetchI + st.PrefetchD + st.Corrections + st.CacheletFills
	}
	if raEng != nil {
		st := raEng.Stats
		res.RAStats = &st
		preExec = st.PreExecInsts
	}
	act.PreExecInsts = preExec
	if c.Stats.Insts > 0 {
		res.ExtraInstPct = float64(preExec) / float64(c.Stats.Insts) * 100
	}
	res.Energy = energy.Compute(act, energy.DefaultModel())
	return res, nil
}

func getESP(a cpu.Assist) *core.ESP {
	e, _ := a.(*core.ESP)
	return e
}
