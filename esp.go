// Package esp is the public facade of the Event Sneak Peek (ESP)
// reproduction: a trace-driven microarchitectural simulator for
// asynchronous programs, implementing the architecture of
//
//	Chadha, Mahlke, Narayanasamy — "Accelerating Asynchronous Programs
//	through Event Sneak Peek", ISCA 2015.
//
// A simulation runs one application workload (the seven Web 2.0 sessions
// of Figure 6, or a custom workload.Profile) through a configured core:
//
//	res, err := esp.Run(workload.Amazon(), esp.ESPNLConfig())
//
// Config presets correspond to the machine configurations in the paper's
// figures; the Harness in experiments.go regenerates every figure.
//
// The engine behind this facade (internal/sim) is split into two planes.
// The workload plane materializes a session once into an immutable,
// arena-backed Workload that any number of goroutines may replay. The
// machine plane assembles a Machine once per Config and resets it to
// cold state between replays without reallocating its tables. Run and
// RunSource build both planes per call; when simulating many cells,
// materialize the workload once and reuse a Machine (or use the Harness,
// which pools both):
//
//	w, _ := esp.NewWorkload(prof, 0)
//	m, _ := esp.NewMachine(cfg)
//	for i := 0; i < laps; i++ {
//		res := m.Run(w) // resets, then replays; no reallocation
//	}
package esp

import (
	"espsim/internal/eventq"
	"espsim/internal/sim"
	"espsim/internal/workload"
)

// AssistKind selects the stall-window consumer.
type AssistKind = sim.AssistKind

const (
	// AssistNone: the core idles through LLC-miss stalls (baseline).
	AssistNone = sim.AssistNone
	// AssistRunahead: runahead execution pre-executes the same event.
	AssistRunahead = sim.AssistRunahead
	// AssistESP: Event Sneak Peek pre-executes queued future events.
	AssistESP = sim.AssistESP
)

// SchedPolicy selects the event-queue dispatch order a workload is
// scheduled under. The policy is baked into the immutable workload at
// build time (eventq.BuildSchedule); replay stays allocation-zero.
type SchedPolicy = eventq.SchedPolicy

const (
	// SchedFIFO drains the queue in arrival order (the paper's model,
	// and the zero value).
	SchedFIFO = eventq.SchedFIFO
	// SchedPriority dispatches the most urgent ready event first.
	SchedPriority = eventq.SchedPriority
	// SchedEDF dispatches the earliest-deadline ready event first.
	SchedEDF = eventq.SchedEDF
	// NumSchedPolicies is the number of defined policies.
	NumSchedPolicies = eventq.NumSchedPolicies
	// SchedSlack is the PES-style deadline-aware policy (least slack
	// first).
	SchedSlack = eventq.SchedSlack
)

// SchedStats is the responsiveness summary of a scheduled cell:
// per-class latency percentiles, deadline-miss rate, and priority
// inversions (Result.Sched).
type SchedStats = eventq.SchedStats

// SchedByName resolves a scheduler policy name ("fifo", "prio", "edf",
// "slack"; empty means FIFO).
func SchedByName(name string) (SchedPolicy, error) { return eventq.SchedByName(name) }

// SchedNames lists the scheduler policy names in policy order.
func SchedNames() []string { return eventq.SchedNames() }

// Config is a complete machine configuration. Sub-configurations (CPU,
// RA, ESP) resolve to their package defaults only when left entirely
// zero; Validate rejects a partially-filled sub-config with an error
// naming the missing field instead of silently discarding the rest.
type Config = sim.Config

// Result is the outcome of one simulation.
type Result = sim.Result

// Workload is one application session materialized once — every event's
// normal and speculative instruction stream in one contiguous arena —
// and immutable afterwards, so it can be replayed by any number of
// machines concurrently.
type Workload = sim.Workload

// Machine is one simulated core assembled from a Config. Machine.Run
// resets it to cold state (without reallocating) and replays a
// workload; results are bit-identical to a freshly built machine.
type Machine = sim.Machine

// Perf aggregates workload/machine reuse and timing counters across a
// sweep (see Sweep.Perf).
type Perf = sim.Perf

// NewWorkload materializes prof's session, truncated to maxEvents when
// positive (0: the whole session).
func NewWorkload(prof workload.Profile, maxEvents int) (*Workload, error) {
	return sim.NewWorkload(prof, maxEvents)
}

// NewWorkloadSched is NewWorkload under an explicit dispatch policy:
// events and streams are laid out in schedule order, and the result
// carries the schedule's responsiveness stats.
func NewWorkloadSched(prof workload.Profile, maxEvents int, policy SchedPolicy) (*Workload, error) {
	return sim.NewWorkloadSched(prof, maxEvents, policy)
}

// MaterializeSource snapshots any event source (recorded trace,
// multi-queue merge) into an immutable Workload.
func MaterializeSource(app string, src eventq.Source, maxEvents int) *Workload {
	return sim.MaterializeSource(app, src, maxEvents)
}

// MaterializeSourceSched is MaterializeSource under an explicit
// dispatch policy.
func MaterializeSourceSched(app string, src eventq.Source, maxEvents int, policy SchedPolicy) (*Workload, error) {
	return sim.MaterializeSourceSched(app, src, maxEvents, policy)
}

// NewMachine validates cfg and assembles a reusable machine.
func NewMachine(cfg Config) (*Machine, error) {
	return sim.NewMachine(cfg)
}

// Run simulates one application profile under one configuration. It is a
// convenience wrapper that materializes the workload and assembles a
// machine for a single replay; loops over profiles or configurations
// should reuse both planes (see the package example above, or Harness).
func Run(prof workload.Profile, cfg Config) (Result, error) {
	w, err := sim.NewWorkloadSched(prof, cfg.MaxEvents, cfg.Sched)
	if err != nil {
		return Result{}, err
	}
	m, err := sim.NewMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	return m.Run(w), nil
}

// RunSource simulates any event source (synthetic session or recorded
// trace) under one configuration. The configuration is validated first:
// a bad Config yields a wrapped error, never a panic. When cfg.Sched is
// non-FIFO or the source's events carry scheduling metadata (an ESPT v2
// trace), the workload is materialized in schedule order.
func RunSource(app string, src eventq.Source, cfg Config) (Result, error) {
	m, err := sim.NewMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	w, err := sim.MaterializeSourceSched(app, src, cfg.MaxEvents, cfg.Sched)
	if err != nil {
		return Result{}, err
	}
	return m.Run(w), nil
}
