package esp

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"espsim/internal/workload"
)

// The golden determinism corpus pins the simulator's observable output:
// the full Result for every suite application under the baseline and
// ESP+NL configurations, captured before the workload/machine-plane
// split. Any engine rework must reproduce these bit-for-bit — first
// sequentially, then under the parallel sweep (covered by -race in
// tier 1) — so "refactor" can never quietly become "renumber".
//
// Regenerate (only when an intentional modelling change lands) with:
//
//	go test -run TestGoldenSequential -update .
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current engine")

// goldenMaxEvents truncates the sessions so the corpus stays fast while
// still exercising warm-up, steady state, and every assist path.
const goldenMaxEvents = 48

const goldenPath = "testdata/golden.json"

// goldenConfigs covers every assist path the engine has: no assist,
// runahead, full ESP, and the naive (cacheletless) ESP variant — each
// combined with next-line prefetching where the paper does.
func goldenConfigs() []Config {
	cfgs := []Config{BaselineConfig(), ESPNLConfig(), RunaheadNLConfig(), NaiveESPNLConfig()}
	for i := range cfgs {
		cfgs[i].MaxEvents = goldenMaxEvents
	}
	return cfgs
}

func goldenKey(app, cfg string) string { return app + "/" + cfg }

// goldenCell is one (application, configuration) pair of the corpus.
type goldenCell struct {
	prof workload.Profile
	cfg  Config
}

// goldenCells is the full corpus grid: every suite application under
// the assist configs, plus the scheduled dimension — the mobile-web
// profile under FIFO and EDF dispatch, baseline and ESP machines, so a
// schedule's event reordering, arrival-based pending windows, and
// responsiveness stats are all pinned bit-for-bit too.
func goldenCells() []goldenCell {
	var cells []goldenCell
	for _, prof := range workload.Suite() {
		for _, cfg := range goldenConfigs() {
			cells = append(cells, goldenCell{prof, cfg})
		}
	}
	mobile := workload.MobileWeb()
	for _, base := range []Config{BaselineConfig(), ESPNLConfig()} {
		for _, policy := range []SchedPolicy{SchedFIFO, SchedEDF} {
			cfg := SchedConfig(base, policy)
			cfg.MaxEvents = goldenMaxEvents
			cells = append(cells, goldenCell{mobile, cfg})
		}
	}
	return cells
}

// computeGoldenSequential produces the corpus with plain sequential
// esp.Run calls — the reference path.
func computeGoldenSequential(t *testing.T) map[string]Result {
	t.Helper()
	out := make(map[string]Result)
	for _, cell := range goldenCells() {
		res, err := Run(cell.prof, cell.cfg)
		if err != nil {
			t.Fatalf("Run(%s, %s): %v", cell.prof.Name, cell.cfg.Name, err)
		}
		out[goldenKey(cell.prof.Name, cell.cfg.Name)] = res
	}
	return out
}

func readGolden(t *testing.T) map[string]Result {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden corpus (regenerate with -update): %v", err)
	}
	var golden map[string]Result
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("decoding %s: %v", goldenPath, err)
	}
	return golden
}

func writeGolden(t *testing.T, golden map[string]Result) {
	t.Helper()
	data, err := json.MarshalIndent(golden, "", "\t")
	if err != nil {
		t.Fatalf("encoding golden corpus: %v", err)
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatalf("creating testdata: %v", err)
	}
	if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", goldenPath, err)
	}
}

// diffGolden reports every cell that deviates from the corpus. JSON
// round-trips float64 exactly (shortest-form encoding), so comparison
// is bit-for-bit, not within-epsilon.
func diffGolden(t *testing.T, golden, got map[string]Result) {
	t.Helper()
	if len(got) != len(golden) {
		t.Errorf("cell count: got %d, golden has %d", len(got), len(golden))
	}
	for key, want := range golden {
		res, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from computed results", key)
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Errorf("%s: result deviates from golden corpus\n got: %s\nwant: %s",
				key, mustJSON(res), mustJSON(want))
		}
	}
}

func mustJSON(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("<unencodable: %v>", err)
	}
	return string(data)
}

// TestGoldenSequential asserts the sequential path reproduces the
// pre-refactor corpus exactly (or rewrites it under -update).
func TestGoldenSequential(t *testing.T) {
	got := computeGoldenSequential(t)
	if *updateGolden {
		writeGolden(t, got)
		t.Logf("rewrote %s with %d cells", goldenPath, len(got))
		return
	}
	diffGolden(t, readGolden(t), got)
}

// TestGoldenParallelSweep drives the same cells through the shared
// Harness from concurrent goroutines — the path the sweep engine uses —
// and asserts bit-identical results. Under -race (tier 1) this also
// vets the machine pool and shared workload cache for data races.
func TestGoldenParallelSweep(t *testing.T) {
	if *updateGolden {
		t.Skip("corpus is regenerated by TestGoldenSequential")
	}
	golden := readGolden(t)
	h := NewHarness()

	var (
		mu  sync.Mutex
		got = make(map[string]Result)
		wg  sync.WaitGroup
	)
	for _, cell := range goldenCells() {
		wg.Add(1)
		go func(prof workload.Profile, cfg Config) {
			defer wg.Done()
			res, err := h.Run(prof, cfg)
			if err != nil {
				t.Errorf("Run(%s, %s): %v", prof.Name, cfg.Name, err)
				return
			}
			mu.Lock()
			got[goldenKey(prof.Name, cfg.Name)] = res
			mu.Unlock()
		}(cell.prof, cell.cfg)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	diffGolden(t, golden, got)
}
