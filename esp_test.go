package esp

import (
	"testing"

	"espsim/internal/eventq"
	"espsim/internal/workload"
)

// fastProfile returns a reduced session for quick integration tests.
func fastProfile() workload.Profile {
	p := workload.Amazon()
	p.Events = 80
	return p
}

// mustRun simulates or fails the test: the known-good configurations
// used below must never error.
func mustRun(t *testing.T, prof workload.Profile, cfg Config) Result {
	t.Helper()
	r, err := Run(prof, cfg)
	if err != nil {
		t.Fatalf("Run(%s, %s): %v", prof.Name, cfg.Name, err)
	}
	return r
}

func TestRunProducesSaneResult(t *testing.T) {
	r, err := Run(fastProfile(), ESPNLConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts <= 0 || r.Cycles <= 0 {
		t.Fatalf("empty result: %+v", r)
	}
	if r.IPC <= 0 || r.IPC > 4 {
		t.Fatalf("IPC %v outside (0, width]", r.IPC)
	}
	if r.IMPKI <= 0 || r.DMissRate <= 0 || r.MispredictRate <= 0 {
		t.Fatalf("metrics missing: %+v", r)
	}
	if r.ESPStats == nil || r.ESPStats.PreExecInsts == 0 {
		t.Fatal("ESP stats missing")
	}
	if r.ExtraInstPct <= 0 {
		t.Fatal("ESP should execute extra instructions")
	}
	if r.Energy.Total() <= 0 {
		t.Fatal("no energy computed")
	}
}

func TestRunRejectsInvalidProfile(t *testing.T) {
	p := fastProfile()
	p.Events = 0
	if _, err := Run(p, BaselineConfig()); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := mustRun(t, fastProfile(), ESPNLConfig())
	b := mustRun(t, fastProfile(), ESPNLConfig())
	if a.Cycles != b.Cycles || a.Insts != b.Insts || a.CPU != b.CPU {
		t.Fatalf("simulation not deterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestConfigNamesUnique(t *testing.T) {
	cfgs := []Config{
		BaselineConfig(), NLConfig(), NLSConfig(), NLIOnlyConfig(), NLDOnlyConfig(),
		RunaheadConfig(), RunaheadNLConfig(), RunaheadDConfig(), RunaheadDNLDConfig(),
		ESPConfig(), ESPNLConfig(), NaiveESPConfig(), NaiveESPNLConfig(),
		ESPIOnlyNLConfig(), ESPIBNLConfig(), ESPIBDNLConfig(), ESPIOnlyConfig(),
		ESPIOnlyNLIConfig(), IdealESPINLIConfig(), ESPDOnlyConfig(), ESPDOnlyNLDConfig(),
		IdealESPDNLDConfig(), ESPBPNoExtraHWConfig(), ESPBPSeparateContextConfig(),
		ESPBPReplicatedConfig(), ESPBPFullConfig(), PerfectL1DConfig(), PerfectBPConfig(),
		PerfectL1IConfig(), PerfectAllConfig(), WorkingSetStudyConfig(),
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if c.Name == "" {
			t.Fatal("config with empty name")
		}
		if seen[c.Name] {
			t.Fatalf("duplicate config name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestPerfectStructuresAlwaysFaster(t *testing.T) {
	p := fastProfile()
	base := mustRun(t, p, NLSConfig())
	for _, cfg := range []Config{PerfectL1DConfig(), PerfectBPConfig(), PerfectL1IConfig(), PerfectAllConfig()} {
		r := mustRun(t, p, cfg)
		if r.Cycles >= base.Cycles {
			t.Errorf("%s (%d cycles) not faster than NL+S (%d)", cfg.Name, r.Cycles, base.Cycles)
		}
	}
	all := mustRun(t, p, PerfectAllConfig())
	one := mustRun(t, p, PerfectL1IConfig())
	if all.Cycles >= one.Cycles {
		t.Fatal("perfect-all should beat perfect-L1I alone")
	}
}

func TestPerfectBPZeroMispredicts(t *testing.T) {
	r := mustRun(t, fastProfile(), PerfectBPConfig())
	if r.CPU.Mispredicts != 0 {
		t.Fatalf("perfect BP mispredicted %d times", r.CPU.Mispredicts)
	}
}

func TestESPImprovesOnEveryApp(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite comparison")
	}
	for _, p := range workload.Suite() {
		p := p.Scale(0.4)
		base := mustRun(t, p, NLSConfig())
		e := mustRun(t, p, ESPNLConfig())
		if e.Cycles >= base.Cycles {
			t.Errorf("%s: ESP+NL (%d cycles) not faster than NL+S (%d)", p.Name, e.Cycles, base.Cycles)
		}
	}
}

func TestESPReducesFrontEndMetrics(t *testing.T) {
	p := fastProfile()
	base := mustRun(t, p, NLSConfig())
	e := mustRun(t, p, ESPNLConfig())
	if e.IMPKI >= base.IMPKI {
		t.Errorf("ESP did not reduce I-MPKI: %.2f vs %.2f", e.IMPKI, base.IMPKI)
	}
	if e.MispredictRate >= base.MispredictRate {
		t.Errorf("ESP did not reduce mispredicts: %.3f vs %.3f", e.MispredictRate, base.MispredictRate)
	}
	if e.DMissRate >= base.DMissRate {
		t.Errorf("ESP did not reduce D misses: %.4f vs %.4f", e.DMissRate, base.DMissRate)
	}
}

func TestIdealESPBeatsRealESP(t *testing.T) {
	p := fastProfile()
	real := mustRun(t, p, ESPIOnlyNLIConfig())
	ideal := mustRun(t, p, IdealESPINLIConfig())
	if ideal.IMPKI > real.IMPKI {
		t.Fatalf("ideal ESP-I MPKI %.2f worse than real %.2f", ideal.IMPKI, real.IMPKI)
	}
}

func TestRunaheadBetweenBaselineAndESP(t *testing.T) {
	p := fastProfile()
	base := mustRun(t, p, BaselineConfig())
	ra := mustRun(t, p, RunaheadConfig())
	if ra.Cycles >= base.Cycles {
		t.Fatal("runahead slower than doing nothing")
	}
	if ra.RAStats == nil || ra.RAStats.Episodes == 0 {
		t.Fatal("runahead never ran")
	}
}

func TestEnergyESPCostsMore(t *testing.T) {
	p := fastProfile()
	nl := mustRun(t, p, NLConfig())
	e := mustRun(t, p, ESPNLConfig())
	rel := e.Energy.RelativeTo(nl.Energy).Total()
	if rel <= 1.0 {
		t.Fatalf("ESP relative energy %.3f; extra instructions must cost something", rel)
	}
	if rel > 1.35 {
		t.Fatalf("ESP relative energy %.3f implausibly high (paper: ~1.08)", rel)
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := Result{Cycles: 100}
	b := Result{Cycles: 200}
	if a.Speedup(b) != 2 {
		t.Fatalf("Speedup = %v", a.Speedup(b))
	}
	var zero Result
	if zero.Speedup(b) != 0 {
		t.Fatal("zero-cycle result should not divide by zero")
	}
}

func TestWorkingSetStudyRun(t *testing.T) {
	p := fastProfile()
	p.Events = 60
	r := mustRun(t, p, WorkingSetStudyConfig())
	if r.Study == nil {
		t.Fatal("study missing")
	}
	reports := r.Study.ReportI()
	if len(reports) != 8 {
		t.Fatalf("%d mode reports, want 8", len(reports))
	}
	if reports[0].Events == 0 {
		t.Fatal("no ESP-1 samples")
	}
	// Deeper modes see monotonically fewer events (§6.6).
	for i := 1; i < len(reports); i++ {
		if reports[i].Events > reports[i-1].Events {
			t.Fatalf("mode %d saw more events than mode %d", i+1, i)
		}
	}
}

func TestEFetchAndPIFConfigsRun(t *testing.T) {
	p := fastProfile()
	base := mustRun(t, p, BaselineConfig())
	for _, cfg := range []Config{EFetchConfig(), PIFConfig()} {
		r := mustRun(t, p, cfg)
		if r.Cycles >= base.Cycles {
			t.Errorf("%s (%d cycles) not faster than bare baseline (%d)", cfg.Name, r.Cycles, base.Cycles)
		}
	}
	bad := EFetchConfig()
	bad.PIF = true
	if _, err := Run(p, bad); err == nil {
		t.Fatal("EFetch+PIF should be rejected")
	}
}

func TestMultiQueueThroughFacade(t *testing.T) {
	a := workload.Pixlr()
	a.Events = 16
	b := workload.Bing()
	b.Events = 16
	sa, err := workload.NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := workload.NewSession(b)
	if err != nil {
		t.Fatal(err)
	}
	src, err := eventq.NewMultiQueueSource([]*workload.Session{sa, sb}, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunSource("mq", src, ESPNLConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts == 0 || r.ESPStats == nil {
		t.Fatal("multi-queue run empty")
	}
	if r.ESPStats.SlotMismatches == 0 {
		t.Fatal("20% runtime mispredictions should surface as slot mismatches")
	}
}

func TestIdleCoreDesignPoint(t *testing.T) {
	p := fastProfile()
	espOnly := mustRun(t, p, ESPConfig())
	idle := mustRun(t, p, IdleCoreConfig())
	// A dedicated helper core pre-executes continuously, so it covers
	// more than stall-window-bound ESP — the §7 trade-off: better
	// performance, at the cost of an entire core.
	if idle.Cycles >= espOnly.Cycles {
		t.Fatalf("idle-core (%d cycles) should beat stall-bound ESP (%d)", idle.Cycles, espOnly.Cycles)
	}
	if idle.ESPStats.PreExecInsts <= espOnly.ESPStats.PreExecInsts {
		t.Fatal("idle core should pre-execute more deeply")
	}
	// The main pipeline is never disturbed: no exit-flush charges.
	if idle.CPU.AssistPenalty != 0 {
		t.Fatalf("idle core charged %d assist-penalty cycles to the main pipeline", idle.CPU.AssistPenalty)
	}
	if idle.CPU.StallsUsed != 0 {
		t.Fatal("idle core must not consume main-core stall windows")
	}
}
