package sim

import (
	"unsafe"

	"espsim/internal/eventq"
	"espsim/internal/trace"
)

// Bytes estimates the workload's resident heap footprint: the
// instruction arena (by capacity — that is what the allocator holds),
// the event list, the span tables, the pending table, and the baked
// schedule. Session-built workloads alias pendTab to events; the alias
// is detected and counted once. The estimate feeds the runner's cache
// byte budget, so it only needs to track real usage proportionally —
// map headers and allocator slack are ignored.
func (w *Workload) Bytes() int64 {
	const (
		instSize  = int64(unsafe.Sizeof(trace.Inst{}))
		eventSize = int64(unsafe.Sizeof(trace.Event{}))
		spanSize  = int64(unsafe.Sizeof(span{}))
	)
	b := int64(unsafe.Sizeof(Workload{}))
	b += int64(cap(w.arena)) * instSize
	b += int64(len(w.events)) * eventSize
	b += int64(len(w.normal)+len(w.spec)+len(w.pend)) * spanSize
	pendTab, events := w.pendTab, w.events
	if len(pendTab) > 0 && !(len(events) > 0 && &pendTab[0] == &events[0]) {
		b += int64(len(pendTab)) * eventSize
	}
	if s := w.sched; s != nil {
		b += int64(unsafe.Sizeof(eventq.Schedule{}))
		b += int64(len(s.Order)) * int64(unsafe.Sizeof(int32(0)))
		b += int64(len(s.Dispatch)+len(s.Complete)) * 8
		b += int64(len(s.Stats.Classes)) * int64(unsafe.Sizeof(eventq.ClassLatency{}))
	}
	return b
}
