package sim

import (
	"testing"

	"espsim/internal/workload"
)

// TestWorkloadBytes: the footprint estimate is positive, grows with the
// executed prefix, and dominates the arena (the largest table).
func TestWorkloadBytes(t *testing.T) {
	prof := workload.Amazon()
	prof.Events = 48
	small, err := NewWorkload(prof, 16)
	if err != nil {
		t.Fatal(err)
	}
	large, err := NewWorkload(prof, 48)
	if err != nil {
		t.Fatal(err)
	}
	if small.Bytes() <= 0 {
		t.Fatalf("Bytes() = %d, want positive", small.Bytes())
	}
	if large.Bytes() <= small.Bytes() {
		t.Fatalf("48-event workload (%d B) not larger than 16-event (%d B)", large.Bytes(), small.Bytes())
	}
	if arena := int64(cap(large.arena)) * 24; large.Bytes() < arena {
		t.Fatalf("Bytes() = %d underestimates the arena alone (%d insts)", large.Bytes(), cap(large.arena))
	}
}

// TestRunnerByteBudget: with a budget that fits roughly one workload,
// the cache evicts under pressure, the accounted footprint stays at or
// below budget once builds settle, and every run still succeeds.
func TestRunnerByteBudget(t *testing.T) {
	r := NewRunner()
	profs := smallSuite()
	one, err := r.Workload(profs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	budget := one.Bytes() + one.Bytes()/2 // room for ~1.5 workloads
	r.SetWorkloadBudget(budget)

	for round := 0; round < 2; round++ {
		for _, p := range profs {
			if _, err := r.RunCell(p.Name, p, espConfig(), 0); err != nil {
				t.Fatalf("run %s: %v", p.Name, err)
			}
			if got := r.CacheBytes(); got > budget {
				t.Fatalf("cache footprint %d exceeds budget %d", got, budget)
			}
		}
	}
	perf := r.Perf()
	if perf.WorkloadEvicts == 0 {
		t.Fatal("three workloads under a 1.5-workload budget evicted nothing")
	}
	if perf.Cells != 6 {
		t.Fatalf("completed %d cells, want 6", perf.Cells)
	}
}

// TestRunnerCacheAdmit: with admission off, misses build uncached
// (counted as bypasses, no reuse, footprint flat) while already-cached
// entries keep serving; turning admission back on restores caching.
func TestRunnerCacheAdmit(t *testing.T) {
	r := NewRunner()
	profs := smallSuite()
	if _, err := r.Workload(profs[0], 0); err != nil {
		t.Fatal(err)
	}
	cached := r.CacheBytes()
	if cached <= 0 {
		t.Fatalf("cached build accounted %d bytes", cached)
	}

	r.SetCacheAdmit(false)
	for i := 0; i < 2; i++ {
		if _, err := r.Workload(profs[1], 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.CacheBytes(); got != cached {
		t.Fatalf("bypass builds grew the cache: %d -> %d", cached, got)
	}
	perf := r.Perf()
	if perf.WorkloadBypasses != 2 {
		t.Fatalf("counted %d bypasses, want 2", perf.WorkloadBypasses)
	}
	// The cached entry still serves while admission is off.
	if _, err := r.Workload(profs[0], 0); err != nil {
		t.Fatal(err)
	}
	if got := r.Perf().WorkloadReuses; got != 1 {
		t.Fatalf("cached entry reused %d times under brownout, want 1", got)
	}

	r.SetCacheAdmit(true)
	if _, err := r.Workload(profs[1], 0); err != nil {
		t.Fatal(err)
	}
	if got := r.CacheBytes(); got <= cached {
		t.Fatalf("cache did not grow after admission restored: %d", got)
	}
}

// TestTrimWorkloadCache: trimming evicts LRU-first down to the target,
// and a workload handed out before the trim stays usable (immutability
// makes eviction safe mid-replay).
func TestTrimWorkloadCache(t *testing.T) {
	r := NewRunner()
	profs := smallSuite()
	for _, p := range profs {
		if _, err := r.Workload(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	w, err := r.Workload(profs[2], 0) // most recently used
	if err != nil {
		t.Fatal(err)
	}
	full := r.CacheBytes()
	target := w.Bytes() // room for exactly the MRU entry
	r.TrimWorkloadCache(target)
	if got := r.CacheBytes(); got > target || got == full {
		t.Fatalf("trim left %d of %d bytes, target %d", got, full, target)
	}
	if got := r.Perf().WorkloadEvicts; got == 0 {
		t.Fatal("trim evicted nothing")
	}
	// The surviving entry should be the most recently used one.
	if _, err := r.Workload(profs[2], 0); err != nil {
		t.Fatal(err)
	}
	if got := r.Perf().WorkloadReuses; got < 2 {
		t.Fatalf("MRU entry did not survive the trim (reuses %d)", got)
	}
	// Evicted-but-held workloads still replay.
	if _, err := r.RunWorkload("held", w, espConfig(), 0); err != nil {
		t.Fatalf("replay of held workload after trim: %v", err)
	}

	r.TrimWorkloadCache(0)
	if got := r.CacheBytes(); got != 0 {
		t.Fatalf("full trim left %d bytes", got)
	}
}
