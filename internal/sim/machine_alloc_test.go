package sim

import (
	"testing"

	"espsim/internal/eventq"
	"espsim/internal/workload"
)

// TestReplayAllocFree pins the PR's headline contract: a warm machine
// replaying a materialized workload performs zero heap allocations. The
// first replay may still size pools and scratch to the workload; every
// replay after that must run entirely out of the machine's own storage,
// for every assist and prefetcher configuration the sweep grid uses.
func TestReplayAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is wall-clock heavy")
	}
	prof := testProfile(t)
	w, err := NewWorkload(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Name: "base"},
		{Name: "nls", NLI: true, NLD: true, StridePF: true},
		{Name: "efetch", EFetch: true},
		{Name: "pif", PIF: true},
		{Name: "ra", NLI: true, NLD: true, Assist: AssistRunahead},
		espConfig(),
	} {
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		m.Replay(w) // warm-up: pools and scratch size themselves here
		if n := testing.AllocsPerRun(3, func() { m.Replay(w) }); n != 0 {
			t.Errorf("%s: warm Replay heap-allocates %v times per run, want 0", cfg.Name, n)
		}
	}
}

// TestReplayAllocFreeScheduled extends the zero-allocation contract to
// the scheduling dimension: a workload materialized under a non-FIFO
// schedule (timed events, reordered queue, arrival-based pending
// windows) replays with zero heap allocations too. The schedule lives
// entirely in the immutable workload plane, so the replay loop must not
// notice it exists.
func TestReplayAllocFreeScheduled(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is wall-clock heavy")
	}
	prof := workload.MobileWeb()
	prof.Events = 60
	for _, policy := range []eventq.SchedPolicy{eventq.SchedFIFO, eventq.SchedEDF} {
		w, err := NewWorkloadSched(prof, 0, policy)
		if err != nil {
			t.Fatal(err)
		}
		if w.Sched() == nil {
			t.Fatalf("%v: timed workload has no schedule stats", policy)
		}
		for _, cfg := range []Config{{Name: "base"}, espConfig()} {
			m, err := NewMachine(cfg)
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name, err)
			}
			m.Replay(w)
			if n := testing.AllocsPerRun(3, func() { m.Replay(w) }); n != 0 {
				t.Errorf("%s@%v: warm Replay heap-allocates %v times per run, want 0", cfg.Name, policy, n)
			}
		}
	}
}

// TestRunnerWarmCellAllocFlat is the same contract one layer up: a warm
// Runner re-running a cached cell (workload plane already materialized,
// machine drawn from the pool) must not allocate beyond the Result
// assembly itself.
func TestRunnerWarmCellAllocFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is wall-clock heavy")
	}
	prof := workload.Bing()
	prof.Events = 30
	cfg := espConfig()
	r := NewRunner()
	if _, err := r.RunCell("warm", prof, cfg, 0); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(3, func() {
		if _, err := r.RunCell("warm", prof, cfg, 0); err != nil {
			t.Error(err)
		}
	})
	// RunCell assembles a fresh Result (one ESPStats box for ESP configs);
	// anything beyond that small constant means the hot path regressed.
	const maxAllocs = 4
	if n > maxAllocs {
		t.Errorf("warm RunCell heap-allocates %v times per run, want <= %d", n, maxAllocs)
	}
}
