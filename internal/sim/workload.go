package sim

import (
	"fmt"

	"espsim/internal/eventq"
	"espsim/internal/trace"
	"espsim/internal/workload"
)

// specLookahead bounds how far past the executed prefix speculative
// streams must exist: the hardware event queue exposes at most 8 future
// events (workload sessions cap VisibleDepth there, matching the paper's
// deepest jump-ahead study). The actual horizon is computed exactly from
// the pending lists; this constant only sizes the session fast path.
const specLookahead = 8

// Workload is one application session materialized once: every event's
// metadata, pending-queue view, and normal + speculative instruction
// streams, with all instructions laid out in a single contiguous arena.
// A Workload is immutable after construction — replays only read it — so
// one Workload can be shared by any number of Machines across goroutines.
//
//esp:plane workload
type Workload struct {
	// App names the application (profile name or caller-chosen label).
	App string

	events []trace.Event
	// nExec is the number of events a replay executes (the session
	// truncated by MaxEvents). Speculative streams extend further, to
	// every event the pending lists can reference.
	nExec int

	// normal[i] is event i's committed instruction stream (i < nExec);
	// spec[i] the pre-execution variant (i < len(spec), the speculative
	// horizon). When an event does not diverge, both share one arena
	// span.
	normal [][]trace.Inst
	spec   [][]trace.Inst

	// pending[i] is the queue view when event i starts. For
	// session-built workloads it is the untrimmed visible window (views
	// into events) and trim is true: Source applies MaxPending at view
	// time, like eventq.SessionSource did. For generic sources the
	// source's own Pending result is stored verbatim and trim is false,
	// matching the old RunSource path, which never applied MaxPending.
	pending [][]trace.Event
	trim    bool

	// arena backs every materialized instruction span. Spans are handed
	// out with full-capacity slice expressions, so even an appending
	// consumer cannot clobber a neighbour.
	arena []trace.Inst
}

// NewWorkload materializes prof's session, truncated to maxEvents when
// positive. The result replays bit-identically to driving the session
// through eventq.SessionSource, for any MaxPending.
//
//esp:ctor
func NewWorkload(prof workload.Profile, maxEvents int) (*Workload, error) {
	sess, err := workload.NewSession(prof)
	if err != nil {
		return nil, fmt.Errorf("esp: building session: %w", err)
	}
	w := &Workload{App: prof.Name, trim: true}
	w.fromSession(sess, maxEvents)
	return w, nil
}

// MaterializeSource snapshots an arbitrary eventq.Source into a
// Workload. A workload.Session behind eventq.SessionSource takes the
// arena fast path; other sources (recorded traces, multi-queue merges)
// are copied stream by stream. Pending views are stored as the source
// returned them, so replays match the old direct-source path exactly.
//
//esp:ctor
func MaterializeSource(app string, src eventq.Source, maxEvents int) *Workload {
	w := &Workload{App: app}
	if ss, ok := src.(eventq.SessionSource); ok && ss.MaxPending <= 0 {
		// Default queue view: identical to the session path, which keeps
		// the untrimmed window and trims per machine at view time.
		w.trim = true
		w.fromSession(ss.S, maxEvents)
		return w
	}
	w.fromSource(src, maxEvents)
	return w
}

// execCount truncates a session of n events by maxEvents.
func execCount(n, maxEvents int) int {
	if maxEvents > 0 && maxEvents < n {
		return maxEvents
	}
	return n
}

// specHorizon returns how many events need speculative streams: the
// executed prefix plus every future event a pending list references,
// clamped to the session length.
func specHorizon(n, nExec int, pending [][]trace.Event) int {
	h := nExec
	for _, ps := range pending {
		for _, ev := range ps {
			if ev.ID >= h {
				h = ev.ID + 1
			}
		}
	}
	if h > n {
		h = n
	}
	return h
}

// record drains s into the arena (at most max instructions, matching
// trace.Record) and returns the span with capacity pinned to its length.
//
//esp:ctor
func (w *Workload) record(s trace.Stream, max int) []trace.Inst {
	start := len(w.arena)
	for {
		if max > 0 && len(w.arena)-start >= max {
			break
		}
		in, ok := s.Next()
		if !ok {
			break
		}
		w.arena = append(w.arena, in)
	}
	return w.arena[start:len(w.arena):len(w.arena)]
}

// copyInsts copies a stream obtained from a generic source into the
// arena and returns the pinned span.
//
//esp:ctor
func (w *Workload) copyInsts(insts []trace.Inst) []trace.Inst {
	start := len(w.arena)
	w.arena = append(w.arena, insts...)
	return w.arena[start:len(w.arena):len(w.arena)]
}

// fromSession materializes a synthetic session. Streams are generated in
// event order exactly as eventq.SessionSource would have on demand; the
// generator reseeds per event, so generation order cannot change a
// stream.
//
//esp:ctor
func (w *Workload) fromSession(sess *workload.Session, maxEvents int) {
	n := len(sess.Events)
	w.events = sess.Events
	w.nExec = execCount(n, maxEvents)

	w.pending = make([][]trace.Event, w.nExec)
	for i := 0; i < w.nExec; i++ {
		d := sess.VisibleDepth[i]
		if rest := n - 1 - i; d > rest {
			d = rest
		}
		w.pending[i] = sess.Events[i+1 : i+1+d]
	}
	nSpec := specHorizon(n, w.nExec, w.pending)

	// Pre-size the arena: one normal stream per executed event, plus a
	// separate speculative stream for diverging and beyond-prefix events.
	total := 0
	for i := 0; i < w.nExec; i++ {
		total += sess.Events[i].Len
		if sess.Events[i].Diverge >= 0 {
			total += sess.Events[i].Len
		}
	}
	for i := w.nExec; i < nSpec; i++ {
		total += sess.Events[i].Len
	}
	w.arena = make([]trace.Inst, 0, total)

	w.normal = make([][]trace.Inst, w.nExec)
	w.spec = make([][]trace.Inst, nSpec)
	for i := 0; i < w.nExec; i++ {
		ev := sess.Events[i]
		w.normal[i] = w.record(sess.Gen.Stream(ev, false), ev.Len)
		if ev.Diverge < 0 {
			// Pre-execution matches normal execution: share the span.
			w.spec[i] = w.normal[i]
		} else {
			w.spec[i] = w.record(sess.Gen.Stream(ev, true), ev.Len)
		}
	}
	for i := w.nExec; i < nSpec; i++ {
		ev := sess.Events[i]
		w.spec[i] = w.record(sess.Gen.Stream(ev, true), ev.Len)
	}
}

// fromSource materializes a generic source by copying its streams. When
// a source hands back the same backing array for both variants (recorded
// traces do), the arena span is shared the same way.
//
//esp:ctor
func (w *Workload) fromSource(src eventq.Source, maxEvents int) {
	n := src.Len()
	w.nExec = execCount(n, maxEvents)

	w.pending = make([][]trace.Event, w.nExec)
	for i := 0; i < w.nExec; i++ {
		w.pending[i] = src.Pending(i)
	}
	nSpec := specHorizon(n, w.nExec, w.pending)

	w.events = make([]trace.Event, w.nExec)
	w.normal = make([][]trace.Inst, w.nExec)
	w.spec = make([][]trace.Inst, nSpec)
	for i := 0; i < w.nExec; i++ {
		w.events[i] = src.Event(i)
		norm := src.Insts(i, false)
		spec := src.Insts(i, true)
		w.normal[i] = w.copyInsts(norm)
		if sameSlice(norm, spec) {
			w.spec[i] = w.normal[i]
		} else {
			w.spec[i] = w.copyInsts(spec)
		}
	}
	for i := w.nExec; i < nSpec; i++ {
		w.spec[i] = w.copyInsts(src.Insts(i, true))
	}
}

func sameSlice(a, b []trace.Inst) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// Events returns the number of events a replay of this workload executes.
func (w *Workload) Events() int { return w.nExec }

// Insts returns the total committed instruction count of a replay.
func (w *Workload) Insts() int64 {
	var total int64
	for _, s := range w.normal {
		total += int64(len(s))
	}
	return total
}

// Source returns a read-only eventq.Source view of the workload.
// maxPending widens the queue view past the default two entries for
// session-built workloads (generic-source workloads keep the pending
// lists their source reported). Views are stateless: any number may be
// used concurrently.
func (w *Workload) Source(maxPending int) eventq.Source {
	return wsource{w: w, maxPending: maxPending}
}

type wsource struct {
	w          *Workload
	maxPending int
}

// Len implements eventq.Source.
func (s wsource) Len() int { return s.w.nExec }

// Event implements eventq.Source.
func (s wsource) Event(i int) trace.Event { return s.w.events[i] }

// Insts implements eventq.Source. Speculative streams exist beyond the
// executed prefix, covering every event the pending lists can name.
func (s wsource) Insts(i int, speculative bool) []trace.Inst {
	if speculative {
		return s.w.spec[i]
	}
	return s.w.normal[i]
}

// Pending implements eventq.Source.
func (s wsource) Pending(i int) []trace.Event {
	p := s.w.pending[i]
	if s.w.trim {
		n := s.maxPending
		if n <= 0 {
			n = 2
		}
		if len(p) > n {
			p = p[:n]
		}
	}
	return p
}
