package sim

import (
	"fmt"

	"espsim/internal/eventq"
	"espsim/internal/trace"
	"espsim/internal/workload"
)

// specLookahead bounds how far past the executed prefix speculative
// streams must exist: the hardware event queue exposes at most 8 future
// events (workload sessions cap VisibleDepth there, matching the paper's
// deepest jump-ahead study). The actual horizon is computed exactly from
// the pending lists; this constant only sizes the session fast path.
const specLookahead = 8

// span locates one event's slice of a backing arena: arena[off:off+n].
// Spans are plain offsets rather than sub-slices so the workload's tables
// are flat POD arrays with no per-event slice headers to chase.
type span struct{ off, n int32 }

// Workload is one application session materialized once: every event's
// metadata, pending-queue view, and normal + speculative instruction
// streams, laid out structure-of-arrays — one contiguous instruction
// arena plus per-event {off,len} spans, and one flattened pending table.
// A Workload is immutable after construction — replays only read it — so
// one Workload can be shared by any number of Machines across goroutines.
//
//esp:plane workload
type Workload struct {
	// App names the application (profile name or caller-chosen label).
	App string

	events []trace.Event
	// nExec is the number of events a replay executes (the session
	// truncated by MaxEvents). Speculative streams extend further, to
	// every event the pending lists can reference.
	nExec int

	// normal[i] spans event i's committed instruction stream in arena
	// (i < nExec); spec[i] the pre-execution variant (i < len(spec), the
	// speculative horizon). When an event does not diverge, both name the
	// same arena span.
	normal []span
	spec   []span

	// pend[i] spans event i's queue view in pendTab. For session-built
	// workloads pendTab is the session's event list itself (views are
	// windows into it) and trim is true: Source applies MaxPending at
	// view time, like eventq.SessionSource did. For generic sources the
	// source's own Pending results are flattened into pendTab verbatim
	// and trim is false, matching the old RunSource path, which never
	// applied MaxPending.
	pendTab []trace.Event
	pend    []span
	trim    bool

	// arena backs every materialized instruction span. Spans are handed
	// out with full-capacity slice expressions, so even an appending
	// consumer cannot clobber a neighbour.
	arena []trace.Inst

	// sched is the dispatch schedule this workload was materialized
	// under, nil for classic FIFO builds of untimed sessions. The
	// events/streams above are already laid out in schedule order, so
	// replay needs no scheduler in the loop — the policy is baked into
	// the immutable plane at build time.
	sched *eventq.Schedule
}

// Sched returns a copy of the responsiveness stats of the schedule the
// workload was built under, or nil when the workload was built without
// one. The copy keeps the immutable plane unaliased — callers may hang
// it off a Result and mutate freely.
func (w *Workload) Sched() *eventq.SchedStats {
	if w.sched == nil {
		return nil
	}
	cp := w.sched.Stats
	cp.Classes = append([]eventq.ClassLatency(nil), cp.Classes...)
	return &cp
}

// NewWorkload materializes prof's session, truncated to maxEvents when
// positive. The result replays bit-identically to driving the session
// through eventq.SessionSource, for any MaxPending.
//
//esp:ctor
func NewWorkload(prof workload.Profile, maxEvents int) (*Workload, error) {
	sess, err := workload.NewSession(prof)
	if err != nil {
		return nil, fmt.Errorf("esp: building session: %w", err)
	}
	w := &Workload{App: prof.Name, trim: true}
	w.fromSession(sess, maxEvents)
	return w, nil
}

// MaterializeSource snapshots an arbitrary eventq.Source into a
// Workload. A workload.Session behind eventq.SessionSource takes the
// arena fast path; other sources (recorded traces, multi-queue merges)
// are copied stream by stream. Pending views are stored as the source
// returned them, so replays match the old direct-source path exactly.
//
//esp:ctor
func MaterializeSource(app string, src eventq.Source, maxEvents int) *Workload {
	w := &Workload{App: app}
	if ss, ok := src.(eventq.SessionSource); ok && ss.MaxPending <= 0 {
		// Default queue view: identical to the session path, which keeps
		// the untrimmed window and trims per machine at view time.
		w.trim = true
		w.fromSession(ss.S, maxEvents)
		return w
	}
	w.fromSource(src, maxEvents)
	return w
}

// NewWorkloadSched materializes prof's session under a dispatch policy:
// the session is truncated to maxEvents, the schedule over those events
// is built once (eventq.BuildSchedule), and events and streams are laid
// out in dispatch order with each event remapped to its slot position —
// the eventq.MultiQueueSource idiom, which keeps per-event data
// placement unique while the original seed keeps every stream
// deterministic. An untimed session orders identically under every
// policy (all arrivals are zero), so its build is bit-identical to
// NewWorkload and only gains the schedule's stats.
//
//esp:ctor
func NewWorkloadSched(prof workload.Profile, maxEvents int, policy eventq.SchedPolicy) (*Workload, error) {
	if !prof.Timed && policy == eventq.SchedFIFO {
		return NewWorkload(prof, maxEvents)
	}
	sess, err := workload.NewSession(prof)
	if err != nil {
		return nil, fmt.Errorf("esp: building session: %w", err)
	}
	nExec := execCount(len(sess.Events), maxEvents)
	sched, err := eventq.BuildSchedule(sess.Events[:nExec], policy)
	if err != nil {
		return nil, fmt.Errorf("esp: building schedule: %w", err)
	}
	w := &Workload{App: prof.Name, trim: true, sched: sched}
	if !anyTimed(sess.Events[:nExec]) {
		// Identity order: the classic layout (including beyond-prefix
		// speculative streams) is exactly right; keep it bit-identical.
		w.fromSession(sess, maxEvents)
		return w, nil
	}
	w.fromSessionSched(sess, nExec, sched)
	return w, nil
}

// MaterializeSourceSched is MaterializeSource under a dispatch policy,
// for recorded traces and other generic sources. Untimed sources under
// FIFO take the classic path unscheduled.
//
//esp:ctor
func MaterializeSourceSched(app string, src eventq.Source, maxEvents int, policy eventq.SchedPolicy) (*Workload, error) {
	n := src.Len()
	nExec := execCount(n, maxEvents)
	evs := make([]trace.Event, nExec)
	timed := false
	for i := range evs {
		evs[i] = src.Event(i)
		if evs[i].Timed() {
			timed = true
		}
	}
	if !timed && policy == eventq.SchedFIFO {
		return MaterializeSource(app, src, maxEvents), nil
	}
	sched, err := eventq.BuildSchedule(evs, policy)
	if err != nil {
		return nil, fmt.Errorf("esp: building schedule: %w", err)
	}
	w := &Workload{App: app, sched: sched}
	if !timed {
		w.fromSource(src, maxEvents)
		return w, nil
	}
	w.fromSourceSched(src, evs, sched)
	return w, nil
}

// anyTimed reports whether any event carries scheduling metadata.
func anyTimed(evs []trace.Event) bool {
	for _, ev := range evs {
		if ev.Timed() {
			return true
		}
	}
	return false
}

// execCount truncates a session of n events by maxEvents.
func execCount(n, maxEvents int) int {
	if maxEvents > 0 && maxEvents < n {
		return maxEvents
	}
	return n
}

// specHorizon returns how many events need speculative streams: the
// executed prefix plus every future event a pending list references,
// clamped to the session length.
func specHorizon(n, nExec int, pendTab []trace.Event, pend []span) int {
	h := nExec
	for _, sp := range pend {
		if sp.n <= 0 {
			continue
		}
		for _, ev := range pendTab[sp.off : sp.off+sp.n] {
			if ev.ID >= h {
				h = ev.ID + 1
			}
		}
	}
	if h > n {
		h = n
	}
	return h
}

// generate walks one event's stream straight into the arena and returns
// its span. The walker is warm scratch shared across all events of the
// build; the generator reseeds per event, so emission order cannot change
// a stream.
//
//esp:ctor
func (w *Workload) generate(wk *workload.Walker, g *workload.Generator, ev trace.Event, speculative bool) span {
	start := len(w.arena)
	wk.Init(g, ev, speculative)
	w.arena = wk.Append(w.arena)
	return span{off: int32(start), n: int32(len(w.arena) - start)}
}

// record drains s into the arena (at most max instructions, matching
// trace.Record) and returns the span.
//
//esp:ctor
func (w *Workload) record(s trace.Stream, max int) span {
	start := len(w.arena)
	for {
		if max > 0 && len(w.arena)-start >= max {
			break
		}
		in, ok := s.Next()
		if !ok {
			break
		}
		w.arena = append(w.arena, in)
	}
	return span{off: int32(start), n: int32(len(w.arena) - start)}
}

// copyInsts copies a stream obtained from a generic source into the
// arena and returns the span.
//
//esp:ctor
func (w *Workload) copyInsts(insts []trace.Inst) span {
	start := len(w.arena)
	w.arena = append(w.arena, insts...)
	return span{off: int32(start), n: int32(len(w.arena) - start)}
}

// fromSession materializes a synthetic session. Streams are generated in
// event order exactly as eventq.SessionSource would have on demand, by
// one reused walker writing directly into the arena.
//
//esp:ctor
func (w *Workload) fromSession(sess *workload.Session, maxEvents int) {
	n := len(sess.Events)
	w.events = sess.Events
	w.nExec = execCount(n, maxEvents)

	// Pending views are windows into the session's own event list: the
	// flattened pending table is that list itself, no copies.
	w.pendTab = sess.Events
	w.pend = make([]span, w.nExec)
	for i := 0; i < w.nExec; i++ {
		d := sess.VisibleDepth[i]
		if rest := n - 1 - i; d > rest {
			d = rest
		}
		w.pend[i] = span{off: int32(i + 1), n: int32(d)}
	}
	nSpec := specHorizon(n, w.nExec, w.pendTab, w.pend)

	// Pre-size the arena: one normal stream per executed event, plus a
	// separate speculative stream for diverging and beyond-prefix events.
	total := 0
	for i := 0; i < w.nExec; i++ {
		total += sess.Events[i].Len
		if sess.Events[i].Diverge >= 0 {
			total += sess.Events[i].Len
		}
	}
	for i := w.nExec; i < nSpec; i++ {
		total += sess.Events[i].Len
	}
	w.arena = make([]trace.Inst, 0, total)

	var wk workload.Walker
	w.normal = make([]span, w.nExec)
	w.spec = make([]span, nSpec)
	for i := 0; i < w.nExec; i++ {
		ev := sess.Events[i]
		w.normal[i] = w.generate(&wk, sess.Gen, ev, false)
		if ev.Diverge < 0 {
			// Pre-execution matches normal execution: share the span.
			w.spec[i] = w.normal[i]
		} else {
			w.spec[i] = w.generate(&wk, sess.Gen, ev, true)
		}
	}
	for i := w.nExec; i < nSpec; i++ {
		ev := sess.Events[i]
		w.spec[i] = w.generate(&wk, sess.Gen, ev, true)
	}
}

// fromSource materializes a generic source by copying its streams. When
// a source hands back the same backing array for both variants (recorded
// traces do), the arena span is shared the same way.
//
//esp:ctor
func (w *Workload) fromSource(src eventq.Source, maxEvents int) {
	n := src.Len()
	w.nExec = execCount(n, maxEvents)

	w.pend = make([]span, w.nExec)
	for i := 0; i < w.nExec; i++ {
		p := src.Pending(i)
		if p == nil {
			// Preserve the source's nil view exactly (off -1 marks it).
			w.pend[i] = span{off: -1}
			continue
		}
		start := len(w.pendTab)
		w.pendTab = append(w.pendTab, p...)
		w.pend[i] = span{off: int32(start), n: int32(len(w.pendTab) - start)}
	}
	nSpec := specHorizon(n, w.nExec, w.pendTab, w.pend)

	w.events = make([]trace.Event, w.nExec)
	w.normal = make([]span, w.nExec)
	w.spec = make([]span, nSpec)
	for i := 0; i < w.nExec; i++ {
		w.events[i] = src.Event(i)
		norm := src.Insts(i, false)
		spec := src.Insts(i, true)
		w.normal[i] = w.copyInsts(norm)
		if sameSlice(norm, spec) {
			w.spec[i] = w.normal[i]
		} else {
			w.spec[i] = w.copyInsts(spec)
		}
	}
	for i := w.nExec; i < nSpec; i++ {
		w.spec[i] = w.copyInsts(src.Insts(i, true))
	}
}

func sameSlice(a, b []trace.Inst) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// schedEvents lays evs out in dispatch order, remapping each event's ID
// to its slot position so per-event data placement stays unique and ESP
// slot matching (which keys on ev.ID) addresses the scheduled stream.
func schedEvents(evs []trace.Event, sched *eventq.Schedule) []trace.Event {
	out := make([]trace.Event, len(sched.Order))
	for k, oi := range sched.Order {
		ev := evs[oi]
		ev.ID = k
		out[k] = ev
	}
	return out
}

// schedWindows derives the hardware event queue's visibility from the
// schedule's virtual clock: when slot k dispatches, the consecutive run
// of later slots whose events have already arrived is resident in the
// queue (capped at the paper's deepest study, 8 entries). Under light
// load the queue is often empty at dispatch — exactly the reduced ESP
// opportunity a real mobile session offers.
func schedWindows(evs []trace.Event, dispatch []int64) []span {
	pend := make([]span, len(evs))
	for k := range evs {
		d := 0
		for d < specLookahead && k+1+d < len(evs) && evs[k+1+d].Arrival <= dispatch[k] {
			d++
		}
		pend[k] = span{off: int32(k + 1), n: int32(d)}
	}
	return pend
}

// fromSessionSched materializes a timed session in dispatch order: the
// scheduled event list (remapped IDs) is its own pending table, queue
// views follow the schedule's virtual clock, and streams are generated
// per scheduled slot. Every pending reference names a scheduled slot,
// so the speculative horizon is the executed prefix itself.
//
//esp:ctor
func (w *Workload) fromSessionSched(sess *workload.Session, nExec int, sched *eventq.Schedule) {
	w.nExec = nExec
	evs := schedEvents(sess.Events[:nExec], sched)
	w.events = evs
	w.pendTab = evs
	w.pend = schedWindows(evs, sched.Dispatch)

	total := 0
	for _, ev := range evs {
		total += ev.Len
		if ev.Diverge >= 0 {
			total += ev.Len
		}
	}
	w.arena = make([]trace.Inst, 0, total)

	var wk workload.Walker
	w.normal = make([]span, nExec)
	w.spec = make([]span, nExec)
	for k, ev := range evs {
		w.normal[k] = w.generate(&wk, sess.Gen, ev, false)
		if ev.Diverge < 0 {
			w.spec[k] = w.normal[k]
		} else {
			w.spec[k] = w.generate(&wk, sess.Gen, ev, true)
		}
	}
}

// fromSourceSched materializes a timed generic source in dispatch
// order, copying each slot's streams from the source's original event
// index. Queue views are schedule-derived (the source's own pending
// lists describe its unscheduled order) and trimmed by MaxPending at
// view time like session builds.
//
//esp:ctor
func (w *Workload) fromSourceSched(src eventq.Source, evs []trace.Event, sched *eventq.Schedule) {
	nExec := len(evs)
	w.nExec = nExec
	w.trim = true
	sevs := schedEvents(evs, sched)
	w.events = sevs
	w.pendTab = sevs
	w.pend = schedWindows(sevs, sched.Dispatch)

	w.normal = make([]span, nExec)
	w.spec = make([]span, nExec)
	for k, oi := range sched.Order {
		norm := src.Insts(int(oi), false)
		spec := src.Insts(int(oi), true)
		w.normal[k] = w.copyInsts(norm)
		if sameSlice(norm, spec) {
			w.spec[k] = w.normal[k]
		} else {
			w.spec[k] = w.copyInsts(spec)
		}
	}
}

// instSpan resolves a span to its capacity-pinned arena sub-slice.
func (w *Workload) instSpan(sp span) []trace.Inst {
	end := sp.off + sp.n
	return w.arena[sp.off:end:end]
}

// Events returns the number of events a replay of this workload executes.
func (w *Workload) Events() int { return w.nExec }

// Insts returns the total committed instruction count of a replay.
func (w *Workload) Insts() int64 {
	var total int64
	for _, sp := range w.normal {
		total += int64(sp.n)
	}
	return total
}

// Source returns a read-only eventq.Source view of the workload.
// maxPending widens the queue view past the default two entries for
// session-built workloads (generic-source workloads keep the pending
// lists their source reported). Views are stateless: any number may be
// used concurrently.
func (w *Workload) Source(maxPending int) eventq.Source {
	return &wsource{w: w, maxPending: maxPending}
}

type wsource struct {
	w          *Workload
	maxPending int
}

// Len implements eventq.Source.
func (s *wsource) Len() int { return s.w.nExec }

// Event implements eventq.Source.
func (s *wsource) Event(i int) trace.Event { return s.w.events[i] }

// Insts implements eventq.Source. Speculative streams exist beyond the
// executed prefix, covering every event the pending lists can name.
func (s *wsource) Insts(i int, speculative bool) []trace.Inst {
	if speculative {
		return s.w.instSpan(s.w.spec[i])
	}
	return s.w.instSpan(s.w.normal[i])
}

// Pending implements eventq.Source: a capacity-pinned view into the
// flattened pending table, never a copy.
func (s *wsource) Pending(i int) []trace.Event {
	sp := s.w.pend[i]
	if sp.off < 0 {
		return nil
	}
	n := int(sp.n)
	if s.w.trim {
		max := s.maxPending
		if max <= 0 {
			max = 2
		}
		if n > max {
			n = max
		}
	}
	end := int(sp.off) + n
	return s.w.pendTab[sp.off:end:end]
}

// PendingInto implements eventq.FlatSource.
func (s *wsource) PendingInto(i int, buf []trace.Event) []trace.Event {
	return append(buf, s.Pending(i)...)
}
