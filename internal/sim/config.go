// Package sim is the simulation engine behind the esp facade. It splits
// the simulator into two planes:
//
//   - the workload plane: a Workload is one application session
//     materialized once — every event's normal and speculative
//     instruction stream laid out in a single contiguous arena — and
//     immutable afterwards, so it can be replayed and shared across
//     goroutines freely;
//
//   - the machine plane: a Machine assembles the core, memory hierarchy,
//     branch predictor, prefetchers and stall-window assist once from a
//     Config, and Reset() restores all of them to cold state without
//     reallocating their tables, so one Machine replays many workloads
//     with an allocation-flat hot loop.
//
// A Runner joins the planes for sweeps: workloads are materialized once
// per application and shared across every configuration, machines are
// recycled per configuration, and per-cell timing/allocation counters
// record what the reuse saved. Errors keep the "esp:" prefix because
// this package is the engine behind the public esp API.
package sim

import (
	"fmt"

	"espsim/internal/core"
	"espsim/internal/cpu"
	"espsim/internal/energy"
	"espsim/internal/eventq"
	"espsim/internal/mem"
	"espsim/internal/runahead"
)

// AssistKind selects the stall-window consumer.
type AssistKind uint8

const (
	// AssistNone: the core idles through LLC-miss stalls (baseline).
	AssistNone AssistKind = iota
	// AssistRunahead: runahead execution pre-executes the same event.
	AssistRunahead
	// AssistESP: Event Sneak Peek pre-executes queued future events.
	AssistESP
)

// Config is a complete machine configuration. It is a comparable value:
// two configs are the same machine exactly when they compare equal,
// which is what the Runner keys its machine pool on.
type Config struct {
	// Name labels the configuration in tables and memoization keys.
	Name string

	// CPU is the timing-model configuration. Leaving the whole struct
	// zero selects cpu.DefaultConfig(); a partially-filled struct is a
	// validation error (see Validate), never a silent fallback.
	CPU cpu.Config

	// NLI enables the next-line instruction prefetcher; NLD the
	// DCU-style next-line data prefetcher; StridePF the stride
	// prefetcher.
	NLI      bool
	NLD      bool
	StridePF bool

	// EFetch and PIF enable the §7 comparison instruction prefetchers
	// (mutually exclusive).
	EFetch bool
	PIF    bool

	// Assist selects none / runahead / ESP; RA and ESP configure them
	// (all-zero structs select the documented defaults).
	Assist AssistKind
	RA     runahead.Config
	ESP    core.Options

	// PerfectL1I, PerfectL1D, PerfectBP idealize structures (Figure 3).
	PerfectL1I bool
	PerfectL1D bool
	PerfectBP  bool

	// MaxEvents truncates the session (0: run everything); MaxPending
	// widens the queue view past 2 for the Figure 13 study.
	MaxEvents  int
	MaxPending int

	// Sched selects the event-queue dispatch policy the workload is
	// scheduled under (zero: FIFO, the paper's drain order). The policy
	// is baked into the workload at build time; it never touches the
	// replay loop.
	Sched eventq.SchedPolicy
}

// Result is the outcome of one simulation.
type Result struct {
	App    string
	Config string

	Insts  int64
	Cycles int64
	IPC    float64

	// IMPKI is L1-I misses per kilo-instruction (Figure 11a); DMissRate
	// the L1-D miss rate (Figure 11b); MispredictRate the branch
	// misprediction rate (Figure 12).
	IMPKI          float64
	DMissRate      float64
	MispredictRate float64

	// ExtraInstPct is the percentage of additional (pre-executed)
	// instructions over the committed ones (Figure 14 annotations).
	ExtraInstPct float64

	CPU cpu.Stats
	L1I mem.CacheStats
	L1D mem.CacheStats
	L2  mem.CacheStats

	// ESPStats / RAStats are present when the corresponding assist ran.
	ESPStats *core.Stats
	RAStats  *runahead.Stats

	// Energy is the absolute Figure 14 breakdown (relative plots divide
	// by a baseline's Total).
	Energy energy.Breakdown

	// Study holds Figure 13 working-set samples when
	// ESP.MeasureWorkingSets was set.
	Study *core.WorkingSetStudy

	// Sched is the responsiveness summary of the dispatch schedule the
	// workload ran under (per-class latency percentiles, deadline-miss
	// rate, priority inversions); nil for classic FIFO cells of untimed
	// workloads.
	Sched *eventq.SchedStats `json:"sched,omitempty"`
}

// Speedup returns how much faster r is than base (base.Cycles/r.Cycles).
func (r Result) Speedup(base Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// effectiveCPU resolves the timing configuration. Only the all-zero
// struct selects DefaultConfig (so `Config{...}` literals keep working);
// any explicitly-set field means the caller owns the whole struct, and
// Validate rejects a partial fill instead of silently discarding it.
func (c Config) effectiveCPU() cpu.Config {
	cc := c.CPU
	if cc == (cpu.Config{}) {
		cc = cpu.DefaultConfig()
	}
	cc.PerfectBP = cc.PerfectBP || c.PerfectBP
	return cc
}

// effectiveRA resolves the runahead configuration (all-zero struct:
// runahead.DefaultConfig).
func (c Config) effectiveRA() runahead.Config {
	if c.RA == (runahead.Config{}) {
		return runahead.DefaultConfig()
	}
	return c.RA
}

// effectiveESP resolves the ESP options (all-zero struct:
// core.DefaultOptions).
func (c Config) effectiveESP() core.Options {
	if c.ESP == (core.Options{}) {
		return core.DefaultOptions()
	}
	return c.ESP
}

// partialHint wraps a sub-config validation error with the resolution
// path: earlier versions treated one magic field (Width, BaseCPI) as the
// "use defaults" sentinel, which silently discarded every other field of
// a partially-filled struct. Now only the all-zero struct means
// "defaults", and a partial fill is an explicit, actionable error.
func partialHint(err error, structName, defaultsName string) error {
	return fmt.Errorf("%w (the %s sub-config is partially filled: fill every required field — start from %s — or leave the whole struct zero to get the defaults)",
		err, structName, defaultsName)
}

// Validate reports whether the configuration can be simulated, with a
// wrapped, actionable error naming the offending field. It checks the
// timing model, the assist selection and its sub-configuration
// (including cachelet geometry for ESP), and the mutually exclusive
// instruction prefetchers. All run paths call it, so an invalid
// configuration yields an error, never a panic.
func (c Config) Validate() error {
	fail := func(err error) error {
		return fmt.Errorf("esp: config %q: %w", c.Name, err)
	}
	if err := c.effectiveCPU().Validate(); err != nil {
		if c.CPU != (cpu.Config{}) {
			err = partialHint(err, "CPU", "cpu.DefaultConfig()")
		}
		return fail(err)
	}
	if c.MaxEvents < 0 {
		return fail(fmt.Errorf("MaxEvents must be non-negative, got %d", c.MaxEvents))
	}
	if c.MaxPending < 0 {
		return fail(fmt.Errorf("MaxPending must be non-negative, got %d", c.MaxPending))
	}
	if c.EFetch && c.PIF {
		return fail(fmt.Errorf("EFetch and PIF are mutually exclusive instruction prefetchers; enable at most one"))
	}
	if !c.Sched.Valid() {
		return fail(fmt.Errorf("unknown scheduler policy %d (have %v)", uint8(c.Sched), eventq.SchedNames()))
	}
	switch c.Assist {
	case AssistNone:
	case AssistRunahead:
		if err := c.effectiveRA().Validate(); err != nil {
			if c.RA != (runahead.Config{}) {
				err = partialHint(err, "RA", "runahead.DefaultConfig()")
			}
			return fail(err)
		}
	case AssistESP:
		opt := c.effectiveESP()
		if err := opt.Validate(); err != nil {
			if c.ESP != (core.Options{}) {
				err = partialHint(err, "ESP", "core.DefaultOptions()")
			}
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("unknown AssistKind %d", c.Assist))
	}
	return nil
}
