package sim

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"espsim/internal/eventq"
	"espsim/internal/workload"
)

func testProfile(t *testing.T) workload.Profile {
	t.Helper()
	prof := workload.Amazon()
	prof.Events = 60
	return prof
}

func espConfig() Config {
	return Config{Name: "esp-nl", NLI: true, NLD: true, Assist: AssistESP}
}

// TestWorkloadMatchesSessionSource checks that a materialized workload's
// Source view is observationally identical to the on-demand
// eventq.SessionSource it replaces, including speculative streams beyond
// the executed prefix and MaxPending trimming.
func TestWorkloadMatchesSessionSource(t *testing.T) {
	prof := testProfile(t)
	sess, err := workload.NewSession(prof)
	if err != nil {
		t.Fatal(err)
	}
	const maxEvents = 48
	w, err := NewWorkload(prof, maxEvents)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxPending := range []int{0, 5} {
		ss := eventq.SessionSource{S: sess, MaxPending: maxPending}
		view := w.Source(maxPending)
		if got := view.Len(); got != maxEvents {
			t.Fatalf("Len() = %d, want %d", got, maxEvents)
		}
		for i := 0; i < view.Len(); i++ {
			if got, want := view.Event(i), ss.Event(i); got != want {
				t.Fatalf("Event(%d) = %+v, want %+v", i, got, want)
			}
			if got, want := view.Insts(i, false), ss.Insts(i, false); !reflect.DeepEqual(got, want) {
				t.Fatalf("Insts(%d, false) differs", i)
			}
			if got, want := view.Insts(i, true), ss.Insts(i, true); !reflect.DeepEqual(got, want) {
				t.Fatalf("Insts(%d, true) differs", i)
			}
			got, want := view.Pending(i), ss.Pending(i)
			if len(got) != len(want) {
				t.Fatalf("Pending(%d) len = %d, want %d (maxPending %d)", i, len(got), len(want), maxPending)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("Pending(%d)[%d] = %+v, want %+v", i, j, got[j], want[j])
				}
			}
			// Every pending event must have a speculative stream.
			for _, ev := range got {
				if s, wantS := view.Insts(ev.ID, true), ss.Insts(ev.ID, true); !reflect.DeepEqual(s, wantS) {
					t.Fatalf("spec Insts(%d) for pending event differs", ev.ID)
				}
			}
		}
	}
}

// TestMachineReuseBitIdentical checks the Reset contract: a machine that
// already ran a workload replays it with results identical to a freshly
// assembled machine's.
func TestMachineReuseBitIdentical(t *testing.T) {
	prof := testProfile(t)
	w, err := NewWorkload(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Name: "base"},
		{Name: "nls", NLI: true, NLD: true, StridePF: true},
		{Name: "ra", NLI: true, NLD: true, Assist: AssistRunahead},
		espConfig(),
	} {
		fresh, err := NewMachine(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		want := fresh.Run(w)

		reused, err := NewMachine(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		reused.Run(w) // dirty the machine
		if got := reused.Run(w); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: reused machine diverged from fresh machine\ngot  %+v\nwant %+v", cfg.Name, got, want)
		}
	}
}

// TestRunnerSharesWorkloadsAndMachines checks the reuse counters: two
// configs over one profile materialize the workload once, and repeated
// cells of one config reuse its pooled machine.
func TestRunnerSharesWorkloadsAndMachines(t *testing.T) {
	prof := testProfile(t)
	r := NewRunner()
	cfgs := []Config{{Name: "base"}, espConfig()}
	for round := 0; round < 2; round++ {
		for _, cfg := range cfgs {
			if _, err := r.RunCell("test", prof, cfg, time.Minute); err != nil {
				t.Fatalf("round %d, %s: %v", round, cfg.Name, err)
			}
		}
	}
	p := r.Perf()
	if p.Cells != 4 {
		t.Fatalf("Cells = %d, want 4", p.Cells)
	}
	if p.WorkloadBuilds != 1 || p.WorkloadReuses != 3 {
		t.Fatalf("workloads = %d built/%d reused, want 1/3", p.WorkloadBuilds, p.WorkloadReuses)
	}
	if p.MachineBuilds != 2 || p.MachineReuses != 2 {
		t.Fatalf("machines = %d built/%d reused, want 2/2", p.MachineBuilds, p.MachineReuses)
	}
}

// TestRunnerIdenticalAcrossPaths checks that a pooled Runner cell equals
// a one-shot machine run.
func TestRunnerIdenticalAcrossPaths(t *testing.T) {
	prof := testProfile(t)
	cfg := espConfig()
	w, err := NewWorkload(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Run(w)

	r := NewRunner()
	for i := 0; i < 2; i++ {
		got, err := r.RunCell("cell", prof, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("runner cell %d diverged from direct machine run", i)
		}
	}
}

// TestMaterializeGenericSource checks the copy path: a multi-queue
// source replays identically whether driven directly or materialized.
func TestMaterializeGenericSource(t *testing.T) {
	profs := []workload.Profile{workload.Amazon(), workload.Bing()}
	var sessions []*workload.Session
	for _, p := range profs {
		p.Events = 40
		s, err := workload.NewSession(p)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	src, err := eventq.NewMultiQueueSource(sessions, 7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := espConfig()

	direct, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := MaterializeSource("mq", src, 0)
	got := direct.Run(w)

	view := w.Source(0)
	for i := 0; i < view.Len(); i++ {
		if !reflect.DeepEqual(view.Insts(i, false), src.Insts(i, false)) {
			t.Fatalf("normal stream %d differs from source", i)
		}
		if !reflect.DeepEqual(view.Pending(i), src.Pending(i)) {
			t.Fatalf("pending %d differs from source", i)
		}
	}
	if got.Insts == 0 || got.Cycles == 0 {
		t.Fatalf("implausible result: %+v", got)
	}
}

// TestRunnerPanicDropsMachine checks panic containment: the error names
// the cell and the poisoned machine is not pooled.
func TestRunnerPanicDropsMachine(t *testing.T) {
	r := NewRunner()
	m, err := NewMachine(Config{Name: "base"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.simulate("boom-cell", m, nil) // nil workload panics in Run
	if err == nil || !strings.Contains(err.Error(), "boom-cell") || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want panic error naming the cell", err)
	}
	r.mu.Lock()
	pooled := len(r.machines[m.cfg])
	r.mu.Unlock()
	if pooled != 0 {
		t.Fatalf("panicked machine was returned to the pool")
	}
}
