package sim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"reflect"
	"strings"
	"sync"
	"testing"

	"espsim/internal/workload"
)

// smallSuite returns three distinct small profiles, for cache tests.
func smallSuite() []workload.Profile {
	out := []workload.Profile{workload.Amazon(), workload.Bing(), workload.Pixlr()}
	for i := range out {
		out[i].Events = 24
	}
	return out
}

// TestRunnerWorkloadLRU exercises the cap: with room for two workloads,
// touching a third evicts the least recently used, and re-requesting the
// evicted key rebuilds it (a build, not a reuse).
func TestRunnerWorkloadLRU(t *testing.T) {
	profs := smallSuite()
	r := NewRunner()
	r.SetWorkloadCap(2)

	wa, err := r.Workload(profs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Workload(profs[1], 0); err != nil {
		t.Fatal(err)
	}
	// Touch A so B becomes the LRU entry, then insert C: B is evicted.
	if again, err := r.Workload(profs[0], 0); err != nil || again != wa {
		t.Fatalf("re-request of cached workload: got (%p, %v), want the shared %p", again, err, wa)
	}
	if _, err := r.Workload(profs[2], 0); err != nil {
		t.Fatal(err)
	}
	p := r.Perf()
	if p.WorkloadBuilds != 3 || p.WorkloadReuses != 1 || p.WorkloadEvicts != 1 {
		t.Fatalf("after insert past cap: perf %+v, want 3 builds / 1 reuse / 1 evict", p)
	}
	// A stayed resident (it was freshened); B was evicted and rebuilds.
	if again, err := r.Workload(profs[0], 0); err != nil || again != wa {
		t.Fatalf("A should still be cached, got (%p, %v)", again, err)
	}
	if _, err := r.Workload(profs[1], 0); err != nil {
		t.Fatal(err)
	}
	p = r.Perf()
	if p.WorkloadBuilds != 4 || p.WorkloadEvicts != 2 {
		t.Fatalf("evicted key must rebuild: perf %+v, want 4 builds / 2 evicts", p)
	}
}

// TestRunnerSetWorkloadCapTrims checks that lowering the cap on a warm
// cache evicts immediately, and that cap < 1 means unbounded.
func TestRunnerSetWorkloadCapTrims(t *testing.T) {
	profs := smallSuite()
	r := NewRunner()
	for _, p := range profs {
		if _, err := r.Workload(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Perf().WorkloadEvicts; got != 0 {
		t.Fatalf("unbounded cache evicted %d workloads", got)
	}
	r.SetWorkloadCap(1)
	if got := r.Perf().WorkloadEvicts; got != 2 {
		t.Fatalf("trim to cap 1: %d evictions, want 2", got)
	}
}

// TestRunnerObserver checks that the observer sees every completed cell
// with its label, app, config and a sane duration.
func TestRunnerObserver(t *testing.T) {
	prof := testProfile(t)
	r := NewRunner()
	var (
		mu     sync.Mutex
		events []CellEvent
	)
	r.SetObserver(func(ev CellEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	cfg := espConfig()
	for i := 0; i < 2; i++ {
		if _, err := r.RunCell("cell", prof, cfg, 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(events) != 2 {
		t.Fatalf("observer saw %d events, want 2", len(events))
	}
	for _, ev := range events {
		if ev.Label != "cell" || ev.App != prof.Name || ev.Config != cfg.Name {
			t.Fatalf("event %+v: wrong identity", ev)
		}
		if ev.Err != nil || ev.Wall <= 0 {
			t.Fatalf("event %+v: want nil error and positive wall time", ev)
		}
	}
}

// TestFaultHookInjectsRunFaults drives every injection shape through
// one runner: an injected error fails the cell (machine pooled again),
// an injected panic takes the containment path (machine dropped, error
// classified ErrPanic), and removing the hook restores clean runs that
// match an uninjected reference bit-for-bit.
func TestFaultHookInjectsRunFaults(t *testing.T) {
	prof := testProfile(t)
	cfg := espConfig()
	r := NewRunner()
	want, err := r.RunCell("ref", prof, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}

	var calls []FaultPoint
	fail := "error"
	r.SetFaultHook(func(p FaultPoint) error {
		calls = append(calls, p)
		if p.Op != "run" {
			return nil
		}
		switch fail {
		case "error":
			return fmt.Errorf("injected")
		case "panic":
			panic("injected panic")
		}
		return nil
	})

	if _, err := r.RunCell("cell", prof, cfg, 0); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("injected error did not surface: %v", err)
	} else if errors.Is(err, ErrPanic) {
		t.Fatalf("plain injected error classified as panic: %v", err)
	}
	fail = "panic"
	if _, err := r.RunCell("cell", prof, cfg, 0); !errors.Is(err, ErrPanic) {
		t.Fatalf("injected panic not classified ErrPanic: %v", err)
	}
	fail = "none"
	res, err := r.RunCell("cell", prof, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatal("post-fault replay deviates from the uninjected reference")
	}
	r.SetFaultHook(nil)
	if _, err := r.RunCell("cell", prof, cfg, 0); err != nil {
		t.Fatalf("removed hook still faults: %v", err)
	}
	if len(calls) == 0 {
		t.Fatal("fault hook never called")
	}
}

// TestFaultHookBuildFailureNotSticky: an injected workload-build failure
// surfaces as ErrBuild, and — unlike a cached workload — is dropped from
// the cache, so the next attempt rebuilds and succeeds.
func TestFaultHookBuildFailureNotSticky(t *testing.T) {
	prof := testProfile(t)
	cfg := espConfig()
	r := NewRunner()
	failures := 1
	r.SetFaultHook(func(p FaultPoint) error {
		if p.Op == "build" && failures > 0 {
			failures--
			return fmt.Errorf("injected build failure")
		}
		return nil
	})
	if _, err := r.RunCell("cell", prof, cfg, 0); !errors.Is(err, ErrBuild) {
		t.Fatalf("injected build failure not classified ErrBuild: %v", err)
	}
	res, err := r.RunCell("cell", prof, cfg, 0)
	if err != nil {
		t.Fatalf("retry after transient build failure: %v", err)
	}
	r.SetFaultHook(nil)
	want, err := NewRunner().RunCell("ref", prof, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatal("rebuilt workload deviates from a fresh runner's result")
	}
	p := r.Perf()
	if p.WorkloadReuses != 0 {
		t.Fatalf("failed build was reused: %+v", p)
	}
}

// workloadDigest hashes every observable byte of a workload: events,
// pending views, and the normal and speculative instruction streams.
func workloadDigest(w *Workload) uint64 {
	h := fnv.New64a()
	put := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	src := w.Source(0)
	for i := 0; i < src.Len(); i++ {
		ev := src.Event(i)
		put(uint64(ev.ID))
		put(uint64(ev.Len))
		put(uint64(ev.Handler))
		for _, p := range src.Pending(i) {
			put(uint64(p.ID))
		}
		for _, spec := range []bool{false, true} {
			for _, in := range src.Insts(i, spec) {
				put(in.PC)
				put(in.Addr)
				put(uint64(in.Kind))
			}
		}
	}
	return h.Sum64()
}

// TestWorkloadImmutableUnderConcurrentReplay is the engine half of the
// service soak: many machines replaying one cached workload concurrently
// must leave it bit-identical (the serve layer relies on this to hand
// cache hits to every request) and must all produce the same result.
func TestWorkloadImmutableUnderConcurrentReplay(t *testing.T) {
	prof := testProfile(t)
	r := NewRunner()
	w, err := r.Workload(prof, 48)
	if err != nil {
		t.Fatal(err)
	}
	before := workloadDigest(w)

	cfgs := []Config{
		{Name: "base", MaxEvents: 48},
		{Name: "esp-nl", NLI: true, NLD: true, Assist: AssistESP, MaxEvents: 48},
		{Name: "ra", Assist: AssistRunahead, MaxEvents: 48},
	}
	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		res, err := r.RunWorkload("ref", w, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	const lapsPerConfig = 8
	var wg sync.WaitGroup
	errs := make(chan error, len(cfgs)*lapsPerConfig)
	for i, cfg := range cfgs {
		for lap := 0; lap < lapsPerConfig; lap++ {
			wg.Add(1)
			go func(i int, cfg Config) {
				defer wg.Done()
				res, err := r.RunWorkload("soak", w, cfg, 0)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res, want[i]) {
					t.Errorf("%s: concurrent replay deviates from reference", cfg.Name)
				}
			}(i, cfg)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if after := workloadDigest(w); after != before {
		t.Fatalf("workload mutated by concurrent replays: digest %x -> %x", before, after)
	}
}
