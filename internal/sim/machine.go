package sim

import (
	"fmt"

	"espsim/internal/branch"
	"espsim/internal/core"
	"espsim/internal/cpu"
	"espsim/internal/energy"
	"espsim/internal/eventq"
	"espsim/internal/mem"
	"espsim/internal/prefetch"
	"espsim/internal/runahead"
	"espsim/internal/trace"
)

// specSource adapts an eventq.Source to ESP's StreamSource: pre-execution
// uses the speculative stream variant (the paper's forked-off renderer
// processes, §5).
type specSource struct{ src eventq.Source }

// SpecInsts implements core.StreamSource.
func (s specSource) SpecInsts(ev trace.Event) []trace.Inst {
	return s.src.Insts(ev.ID, true)
}

// Machine is the machine plane: one simulated core assembled once from a
// Config — hierarchy, branch predictor, prefetchers, and the configured
// stall-window assist — that can replay any number of workloads. Run
// resets every component to cold state first, without reallocating their
// tables, so each replay is bit-identical to a freshly built machine and
// the replay loop is allocation-flat.
//
// A Machine is single-threaded; build one per worker and share the
// (immutable) workloads instead.
type Machine struct {
	cfg  Config //esp:immutable
	hier *mem.Hierarchy
	bp   *branch.Predictor
	c    *cpu.Core

	nli    *prefetch.NextLineI
	dcu    *prefetch.DCU
	stride *prefetch.Stride
	efetch *prefetch.EFetch
	pif    *prefetch.PIF

	ra  *runahead.Engine
	esp *core.ESP

	// Replay scratch, reused across runs so a warm replay never touches
	// the heap: the workload-view box handed to the looper, the ESP
	// stream-source box, and the looper itself (whose queue-view scratch
	// persists inside it).
	src  wsource
	spec specSource
	loop eventq.Looper
}

// NewMachine validates cfg and assembles the machine.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ccfg := cfg.effectiveCPU()

	m := &Machine{cfg: cfg}
	m.hier = mem.DefaultHierarchy()
	m.hier.PerfectL1I = cfg.PerfectL1I
	m.hier.PerfectL1D = cfg.PerfectL1D
	m.bp = branch.New()
	m.c = cpu.New(ccfg, m.hier, m.bp)

	if cfg.NLI {
		m.nli = prefetch.NewNextLineI(m.hier)
		m.c.NLI = m.nli
	}
	if cfg.NLD {
		m.dcu = prefetch.NewDCU(m.hier)
		m.c.DCU = m.dcu
	}
	if cfg.StridePF {
		m.stride = prefetch.NewStride(m.hier)
		m.c.Stride = m.stride
	}
	switch {
	case cfg.EFetch:
		m.efetch = prefetch.NewEFetch(m.hier)
		m.c.FetchObs = m.efetch
	case cfg.PIF:
		m.pif = prefetch.NewPIF(m.hier)
		m.c.FetchObs = m.pif
	}

	switch cfg.Assist {
	case AssistRunahead:
		m.ra = runahead.New(cfg.effectiveRA(), m.hier, m.bp)
		m.c.Assist = m.ra
	case AssistESP:
		// The stream source is bound per replay in Run; the engine is
		// built once.
		espEng, err := core.New(cfg.effectiveESP(), m.hier, m.bp, nil)
		if err != nil {
			return nil, fmt.Errorf("esp: %w", err)
		}
		m.esp = espEng
		m.c.Assist = espEng
	}
	return m, nil
}

// Config returns the configuration the machine was built from.
func (m *Machine) Config() Config { return m.cfg }

// Reset restores every component to its just-constructed cold state
// without reallocating tables: caches are invalidated in place, predictor
// tables are zeroed, assist structures return to their pools. A reset
// machine replays a workload bit-identically to a freshly built one.
func (m *Machine) Reset() {
	m.hier.Reset()
	m.bp.Reset()
	m.c.Reset()
	if m.nli != nil {
		m.nli.Reset()
	}
	if m.dcu != nil {
		m.dcu.Reset()
	}
	if m.stride != nil {
		m.stride.Reset()
	}
	if m.efetch != nil {
		m.efetch.Reset()
	}
	if m.pif != nil {
		m.pif.Reset()
	}
	if m.ra != nil {
		m.ra.Reset()
	}
	if m.esp != nil {
		m.esp.Reset()
	}
	// Replay scratch: already unbound at the end of Replay, but clearing
	// here too keeps Reset self-contained — a reset machine holds no
	// reference to any workload regardless of how its last run ended.
	m.src = wsource{}
	m.spec = specSource{}
	m.loop.Reset()
}

// Run resets the machine and replays w through it, returning the
// simulation result. The workload is only read; the machine's MaxEvents
// was already applied when w was materialized, and MaxPending shapes the
// queue view here.
func (m *Machine) Run(w *Workload) Result {
	m.Replay(w)
	return m.result(w)
}

// Replay resets the machine and replays w through it, leaving the results
// in the machine's statistics (read them via Run, which wraps Replay and
// assembles a Result). This is the allocation-zero hot path: a warm
// machine replaying a materialized workload performs no heap allocations —
// the workload view, stream-source box and looper scratch all live on the
// machine and are rebound in place.
func (m *Machine) Replay(w *Workload) {
	m.Reset()
	m.src = wsource{w: w, maxPending: m.cfg.MaxPending}
	if m.esp != nil {
		m.spec.src = &m.src
		m.esp.Src = &m.spec
	}
	m.loop.Src = &m.src
	m.loop.Core = m.c
	m.loop.MaxEvents = m.cfg.MaxEvents
	m.loop.Run()
	// Unbind the workload so a pooled machine never pins its arena.
	if m.esp != nil {
		m.esp.Src = nil
		m.spec.src = nil
	}
	m.loop.Src = nil
	m.src = wsource{}
}

// result assembles the Result and energy accounting from the machine's
// post-run statistics, plus the workload's build-time schedule summary.
func (m *Machine) result(w *Workload) Result {
	c, hier := m.c, m.hier
	res := Result{
		App:    w.App,
		Config: m.cfg.Name,
		Insts:  c.Stats.Insts,
		Cycles: c.Stats.Cycles,
		IPC:    c.Stats.IPC(),
		CPU:    c.Stats,
		L1I:    hier.L1I.Stats,
		L1D:    hier.L1D.Stats,
		L2:     hier.L2.Stats,
	}
	if c.Stats.Insts > 0 {
		res.IMPKI = float64(hier.L1I.Stats.Misses) / float64(c.Stats.Insts) * 1000
	}
	res.DMissRate = hier.L1D.Stats.MissRate()
	res.MispredictRate = c.Stats.MispredictRate()

	var preExec int64
	act := energy.Activity{
		Cycles:      c.Stats.Cycles,
		Insts:       c.Stats.Insts,
		Branches:    c.Stats.Branches,
		Mispredicts: c.Stats.Mispredicts,
		L1IAccesses: hier.L1I.Stats.Accesses,
		L1DAccesses: hier.L1D.Stats.Accesses,
		L2Accesses:  hier.L2.Stats.Accesses,
		MemAccesses: hier.L2.Stats.Misses,
		Prefetches:  hier.L1I.Stats.PrefetchInstalls + hier.L1D.Stats.PrefetchInstalls,
	}
	if m.esp != nil {
		st := m.esp.Stats
		res.ESPStats = &st
		res.Study = m.esp.Study
		preExec = st.PreExecInsts
		act.L2Accesses += st.CacheletFills
		act.MemAccesses += st.LLCFills
		act.CacheletOps = st.PreExecInsts
		act.ListOps = st.PrefetchI + st.PrefetchD + st.Corrections + st.CacheletFills
	}
	if m.ra != nil {
		st := m.ra.Stats
		res.RAStats = &st
		preExec = st.PreExecInsts
	}
	act.PreExecInsts = preExec
	if c.Stats.Insts > 0 {
		res.ExtraInstPct = float64(preExec) / float64(c.Stats.Insts) * 100
	}
	res.Energy = energy.Compute(act, energy.DefaultModel())
	// Sched() already hands out an owned copy, so the Result can keep it
	// past workload cache evictions.
	res.Sched = w.Sched()
	return res
}
