package sim

import (
	"container/list"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"espsim/internal/eventq"
	"espsim/internal/trace"
	"espsim/internal/workload"
)

// ErrTimeout marks a cell abandoned because it exceeded its time
// budget; errors.Is(err, ErrTimeout) classifies it (the espd service
// maps it to 504).
var ErrTimeout = errors.New("timeout")

// ErrPanic marks a cell whose replay panicked; the machine was dropped,
// never pooled. errors.Is(err, ErrPanic) classifies it (the espd
// resilience layer treats it as retryable).
var ErrPanic = errors.New("simulation panicked")

// ErrBuild marks a workload materialization failure. Failed builds are
// not cached (see Workload), so a retry after a transient failure
// rebuilds instead of replaying the stale error.
var ErrBuild = errors.New("workload build failed")

// FaultPoint identifies one injectable operation for a FaultHook:
// Op is "build" (workload materialization; Config is empty) or "run"
// (one cell replay).
type FaultPoint struct {
	Op     string
	Label  string
	App    string
	Config string
}

// FaultHook is the runner's chaos-injection seam: when installed with
// SetFaultHook it is called before every workload build and every cell
// replay. Returning an error fails the operation; panicking exercises
// the runner's panic containment; sleeping exercises timeouts. A nil
// hook (the production default) costs one nil check per operation.
type FaultHook func(FaultPoint) error

// Perf aggregates what the two-plane split saved across a Runner's
// lifetime: how often workloads and machines were reused instead of
// rebuilt, and how wall-clock time divided between building and
// simulating.
type Perf struct {
	// Cells counts completed simulations.
	Cells int64
	// WorkloadBuilds counts sessions materialized; WorkloadReuses counts
	// cells that replayed an already-materialized workload (cache hits);
	// WorkloadEvicts counts materializations dropped by the LRU cap or
	// byte budget; WorkloadBypasses counts builds that skipped the cache
	// because admission was off (memory brownout).
	WorkloadBuilds   int64
	WorkloadReuses   int64
	WorkloadEvicts   int64
	WorkloadBypasses int64
	// MachineBuilds counts machines assembled; MachineReuses counts
	// cells that reset and reused a pooled machine.
	MachineBuilds int64
	MachineReuses int64
	// BuildWall is time spent materializing workloads and assembling
	// machines; SimWall is time spent replaying.
	BuildWall time.Duration
	SimWall   time.Duration

	// SchedCells counts cells that ran under a materialized schedule
	// and SchedEvents the events those schedules dispatched; the
	// deadline and inversion counters aggregate their outcomes.
	SchedCells         int64
	SchedEvents        int64
	Deadlined          int64
	DeadlineMisses     int64
	PriorityInversions int64
	// SchedClasses aggregates per-class responsiveness across scheduled
	// cells (percentile sums are event-weighted; divide by Events for
	// the weighted mean).
	SchedClasses [trace.NumEventClasses]ClassPerf
}

// ClassPerf accumulates one event class's responsiveness across cells.
type ClassPerf struct {
	Events    int64
	Deadlined int64
	Misses    int64
	P50Sum    float64
	P95Sum    float64
	P99Sum    float64
}

// addSched folds one scheduled cell's stats into the aggregates.
func (p *Perf) addSched(ss *eventq.SchedStats) {
	p.SchedCells++
	p.SchedEvents += int64(ss.Events)
	p.Deadlined += int64(ss.Deadlined)
	p.DeadlineMisses += int64(ss.DeadlineMisses)
	p.PriorityInversions += int64(ss.PriorityInversions)
	for _, cl := range ss.Classes {
		cp := &p.SchedClasses[classIdx(cl.Class)]
		n := float64(cl.Events)
		cp.Events += int64(cl.Events)
		cp.Deadlined += int64(cl.Deadlined)
		cp.Misses += int64(cl.Misses)
		cp.P50Sum += cl.P50 * n
		cp.P95Sum += cl.P95 * n
		cp.P99Sum += cl.P99 * n
	}
}

// classIdx resolves a class name back to its EventClass index.
func classIdx(name string) int {
	for c := 0; c < trace.NumEventClasses; c++ {
		if trace.EventClass(c).String() == name {
			return c
		}
	}
	return 0
}

// SchedString renders the responsiveness aggregates as a one-line
// summary, or "" when no scheduled cell has run.
func (p Perf) SchedString() string {
	if p.SchedCells == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d scheduled cells: %d events, %d/%d deadline misses",
		p.SchedCells, p.SchedEvents, p.DeadlineMisses, p.Deadlined)
	if p.Deadlined > 0 {
		fmt.Fprintf(&b, " (%.1f%%)", float64(p.DeadlineMisses)/float64(p.Deadlined)*100)
	}
	fmt.Fprintf(&b, ", %d priority inversions", p.PriorityInversions)
	for c := 1; c < trace.NumEventClasses; c++ {
		cp := p.SchedClasses[c]
		if cp.Events == 0 {
			continue
		}
		fmt.Fprintf(&b, "; %s p95 %.0f (%d ev, %d miss)",
			trace.EventClass(c), cp.P95Sum/float64(cp.Events), cp.Events, cp.Misses)
	}
	return b.String()
}

// String renders the counters as a one-line summary.
func (p Perf) String() string {
	return fmt.Sprintf("%d cells: workloads %d built/%d reused/%d evicted, machines %d built/%d reused, %v building, %v simulating",
		p.Cells, p.WorkloadBuilds, p.WorkloadReuses, p.WorkloadEvicts, p.MachineBuilds, p.MachineReuses,
		p.BuildWall.Round(time.Millisecond), p.SimWall.Round(time.Millisecond))
}

// CellEvent describes one completed simulation, delivered to the
// observer installed with SetObserver. Wall is replay time only (build
// time is in Perf.BuildWall); Err is non-nil when the replay panicked.
type CellEvent struct {
	Label  string
	App    string
	Config string
	Wall   time.Duration
	Err    error
}

// workloadKey identifies one materialization: the full profile value
// (Profile is a comparable struct of scalars) plus the executed-prefix
// bound and the dispatch policy the schedule was baked under. Two cells
// with equal keys share one Workload.
type workloadKey struct {
	prof      workload.Profile
	maxEvents int
	sched     eventq.SchedPolicy
}

type workloadCell struct {
	once sync.Once
	w    *Workload
	err  error
	// elem is the cell's position in the Runner's LRU list (front =
	// most recently used); nil once evicted.
	elem *list.Element
	// bytes is the workload's accounted footprint, folded into the
	// Runner's cacheBytes once the build completes (zero while
	// building or once evicted).
	bytes int64
}

// Runner joins the planes for sweeps: it materializes each workload once
// (single-flight, shared by every configuration and goroutine) and pools
// one reusable Machine per distinct Config per concurrent worker.
// All methods are safe for concurrent use; results are bit-identical to
// building a fresh machine per cell because Machine.Run resets to cold
// state first.
//
// The workload cache is unbounded by default; a long-lived Runner (the
// espd service) should SetWorkloadCap so distinct (profile, MaxEvents)
// keys evict least-recently-used arenas instead of accumulating.
// Eviction only drops the cache entry — workloads are immutable, so a
// goroutine still replaying an evicted workload is unaffected.
type Runner struct {
	mu          sync.Mutex
	workloads   map[workloadKey]*workloadCell
	lru         list.List // of workloadKey, front = most recent
	workloadCap int
	// workloadBudget bounds the cache in accounted bytes (<= 0:
	// unbounded); cacheBytes is the current accounted total across
	// completed cached builds.
	workloadBudget int64
	cacheBytes     int64
	// noAdmit stops new builds from entering the cache (brownout's
	// no-cache lever); already-cached workloads still serve.
	noAdmit  bool
	machines map[Config][]*Machine
	perf     Perf
	observer func(CellEvent)
	fault    FaultHook
}

// NewRunner returns an empty Runner with an unbounded workload cache.
func NewRunner() *Runner {
	return &Runner{
		workloads: make(map[workloadKey]*workloadCell),
		machines:  make(map[Config][]*Machine),
	}
}

// SetWorkloadCap bounds the workload cache to n materializations,
// evicting least-recently-used entries past it (n < 1: unbounded). The
// cap applies to future insertions and trims the cache immediately.
func (r *Runner) SetWorkloadCap(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workloadCap = n
	r.evictLocked()
}

// SetWorkloadBudget bounds the workload cache to n accounted bytes
// (Workload.Bytes per entry), evicting least-recently-used entries
// past it (n <= 0: unbounded). It composes with SetWorkloadCap —
// whichever bound is tighter evicts first.
func (r *Runner) SetWorkloadBudget(n int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workloadBudget = n
	r.evictLocked()
}

// SetCacheAdmit toggles cache admission for new workload builds. While
// off (memory brownout) a cache miss builds an uncached, unshared
// workload — correct but without reuse — and cached entries keep
// serving; the cache never grows.
func (r *Runner) SetCacheAdmit(on bool) {
	r.mu.Lock()
	r.noAdmit = !on
	r.mu.Unlock()
}

// CacheBytes reports the accounted footprint of the workload cache.
func (r *Runner) CacheBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cacheBytes
}

// TrimWorkloadCache evicts least-recently-used workloads until the
// accounted footprint is at or below target bytes — the brownout
// actor's recovery lever (evicting everything is target 0). Workloads
// mid-replay are unaffected: eviction only drops the cache's
// reference, and workloads are immutable.
func (r *Runner) TrimWorkloadCache(target int64) {
	if target < 0 {
		target = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.cacheBytes > target && r.lru.Len() > 0 {
		r.evictOldestLocked()
	}
}

// SetObserver installs fn to be called after every completed replay
// (successful or panicking), from the replaying goroutine. A nil fn
// removes the observer.
func (r *Runner) SetObserver(fn func(CellEvent)) {
	r.mu.Lock()
	r.observer = fn
	r.mu.Unlock()
}

// SetFaultHook installs h to be consulted before every workload build
// and cell replay (nil removes it). Production servers never set one;
// chaos tests install a deterministic fault.Plan hook so injected
// panics, errors, and stalls are reproducible byte-for-byte.
func (r *Runner) SetFaultHook(h FaultHook) {
	r.mu.Lock()
	r.fault = h
	r.mu.Unlock()
}

// Perf returns a snapshot of the reuse and timing counters.
func (r *Runner) Perf() Perf {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.perf
}

// evictLocked drops least-recently-used workload cells until the cache
// respects both the entry cap and the byte budget. Callers hold r.mu.
func (r *Runner) evictLocked() {
	for r.lru.Len() > 0 {
		overCap := r.workloadCap >= 1 && r.lru.Len() > r.workloadCap
		overBudget := r.workloadBudget > 0 && r.cacheBytes > r.workloadBudget
		if !overCap && !overBudget {
			return
		}
		r.evictOldestLocked()
	}
}

// evictOldestLocked drops the least-recently-used cache entry and
// returns its bytes to the accounted total. Callers hold r.mu and have
// checked the LRU is non-empty.
func (r *Runner) evictOldestLocked() {
	oldest := r.lru.Back()
	key := oldest.Value.(workloadKey)
	r.lru.Remove(oldest)
	if cell, ok := r.workloads[key]; ok {
		cell.elem = nil
		r.cacheBytes -= cell.bytes
		cell.bytes = 0
		delete(r.workloads, key)
		r.perf.WorkloadEvicts++
	}
}

// Workload returns the materialized workload for prof truncated to
// maxEvents, building it on first use and sharing it afterwards.
// Concurrent callers for the same key block on one materialization.
//
// Failed builds are never cached: every waiter on the failing
// materialization observes the same error (wrapped in ErrBuild), but
// the cache entry is dropped immediately, so a later call — a retry
// after a transient failure — materializes from scratch.
func (r *Runner) Workload(prof workload.Profile, maxEvents int) (*Workload, error) {
	return r.WorkloadSched(prof, maxEvents, eventq.SchedFIFO)
}

// WorkloadSched is Workload under an explicit dispatch policy; the
// policy is part of the cache key, so the same profile scheduled two
// ways materializes two arenas.
func (r *Runner) WorkloadSched(prof workload.Profile, maxEvents int, policy eventq.SchedPolicy) (*Workload, error) {
	key := workloadKey{prof: prof, maxEvents: maxEvents, sched: policy}
	r.mu.Lock()
	cell, ok := r.workloads[key]
	if !ok && r.noAdmit {
		// Brownout: build without caching. Correct but unshared — two
		// concurrent misses for the same key build twice rather than
		// grow the cache.
		hook := r.fault
		r.perf.WorkloadBypasses++
		r.mu.Unlock()
		return r.buildWorkload(prof, maxEvents, policy, hook)
	}
	if !ok {
		cell = &workloadCell{}
		r.workloads[key] = cell
		cell.elem = r.lru.PushFront(key)
		r.evictLocked()
	} else if cell.elem != nil {
		r.lru.MoveToFront(cell.elem)
	}
	hook := r.fault
	r.mu.Unlock()

	built := false
	cell.once.Do(func() {
		built = true
		cell.w, cell.err = r.buildWorkload(prof, maxEvents, policy, hook)
	})
	if built && cell.err == nil {
		// Fold the finished build into the byte budget — unless a
		// concurrent eviction already dropped the entry.
		b := cell.w.Bytes()
		r.mu.Lock()
		if r.workloads[key] == cell {
			cell.bytes = b
			r.cacheBytes += b
			r.evictLocked()
		}
		r.mu.Unlock()
	}
	if !built && cell.err == nil {
		r.mu.Lock()
		r.perf.WorkloadReuses++
		r.mu.Unlock()
	}
	if cell.err != nil {
		// Drop the failed materialization so it is not sticky. Guard on
		// identity: a concurrent retry may already have replaced the entry.
		r.mu.Lock()
		if r.workloads[key] == cell {
			delete(r.workloads, key)
			if cell.elem != nil {
				r.lru.Remove(cell.elem)
				cell.elem = nil
			}
		}
		r.mu.Unlock()
	}
	return cell.w, cell.err
}

// buildWorkload materializes one workload with fault-hook and perf
// accounting, shared by the cached and cache-bypass paths.
func (r *Runner) buildWorkload(prof workload.Profile, maxEvents int, policy eventq.SchedPolicy, hook FaultHook) (*Workload, error) {
	start := time.Now()
	var w *Workload
	var err error
	if hook != nil {
		if herr := hook(FaultPoint{Op: "build", Label: prof.Name, App: prof.Name}); herr != nil {
			err = fmt.Errorf("esp: workload %s: %w: %w", prof.Name, ErrBuild, herr)
		}
	}
	if err == nil {
		w, err = NewWorkloadSched(prof, maxEvents, policy)
		if err != nil {
			err = fmt.Errorf("esp: workload %s: %w: %w", prof.Name, ErrBuild, err)
		}
	}
	r.mu.Lock()
	r.perf.BuildWall += time.Since(start)
	r.perf.WorkloadBuilds++
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return w, nil
}

// acquireMachine pops a pooled machine for cfg or assembles one.
func (r *Runner) acquireMachine(cfg Config) (*Machine, error) {
	r.mu.Lock()
	pool := r.machines[cfg]
	if n := len(pool); n > 0 {
		m := pool[n-1]
		r.machines[cfg] = pool[:n-1]
		r.perf.MachineReuses++
		r.mu.Unlock()
		return m, nil
	}
	r.mu.Unlock()

	start := time.Now()
	m, err := NewMachine(cfg)
	r.mu.Lock()
	r.perf.BuildWall += time.Since(start)
	if err == nil {
		r.perf.MachineBuilds++
	}
	r.mu.Unlock()
	return m, err
}

// releaseMachine returns a healthy machine to its configuration's pool.
func (r *Runner) releaseMachine(m *Machine) {
	r.mu.Lock()
	r.machines[m.cfg] = append(r.machines[m.cfg], m)
	r.mu.Unlock()
}

// RunCell simulates one (profile, configuration) cell: the workload is
// materialized once per (profile, MaxEvents) and shared, the machine
// comes from the per-configuration pool. label names the cell in panic
// and timeout errors. A non-positive timeout runs inline; otherwise the
// cell is abandoned with an error after timeout (the worker goroutine
// still returns its machine to the pool when it eventually finishes —
// reuse is safe because Run resets first). A panicking machine is
// dropped, never pooled.
func (r *Runner) RunCell(label string, prof workload.Profile, cfg Config, timeout time.Duration) (Result, error) {
	w, err := r.WorkloadSched(prof, cfg.MaxEvents, cfg.Sched)
	if err != nil {
		return Result{}, err
	}
	return r.RunWorkload(label, w, cfg, timeout)
}

// RunWorkload is RunCell for an already-materialized workload (e.g. one
// built from a generic source).
func (r *Runner) RunWorkload(label string, w *Workload, cfg Config, timeout time.Duration) (Result, error) {
	m, err := r.acquireMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	if timeout <= 0 {
		return r.simulate(label, m, w)
	}
	type cellOut struct {
		res Result
		err error
	}
	ch := make(chan cellOut, 1)
	go func() {
		res, serr := r.simulate(label, m, w)
		ch <- cellOut{res: res, err: serr}
	}()
	select {
	case out := <-ch:
		return out.res, out.err
	case <-time.After(timeout):
		return Result{}, fmt.Errorf("esp: run %s: exceeded %v %w", label, timeout, ErrTimeout)
	}
}

// simulate replays w on m with panic containment and timing accounting,
// notifying the observer (if any) about the completed cell. The fault
// hook (if any) runs first: an injected error fails the cell with the
// untouched machine pooled again; an injected panic takes the same
// containment path as a real simulation panic.
func (r *Runner) simulate(label string, m *Machine, w *Workload) (res Result, err error) {
	r.mu.Lock()
	hook := r.fault
	r.mu.Unlock()
	start := time.Now()
	defer func() {
		elapsed := time.Since(start)
		if p := recover(); p != nil {
			// The machine may hold corrupt state: drop it.
			err = fmt.Errorf("esp: run %s: %w: %v", label, ErrPanic, p)
		} else {
			r.releaseMachine(m)
		}
		r.mu.Lock()
		r.perf.SimWall += elapsed
		if err == nil {
			r.perf.Cells++
			if res.Sched != nil {
				r.perf.addSched(res.Sched)
			}
		}
		obs := r.observer
		r.mu.Unlock()
		if obs != nil {
			obs(CellEvent{Label: label, App: w.App, Config: m.cfg.Name, Wall: elapsed, Err: err})
		}
	}()
	if hook != nil {
		if herr := hook(FaultPoint{Op: "run", Label: label, App: w.App, Config: m.cfg.Name}); herr != nil {
			return Result{}, fmt.Errorf("esp: run %s: %w", label, herr)
		}
	}
	res = m.Run(w)
	return res, nil
}
