package sim

import (
	"fmt"
	"sync"
	"time"

	"espsim/internal/workload"
)

// Perf aggregates what the two-plane split saved across a Runner's
// lifetime: how often workloads and machines were reused instead of
// rebuilt, and how wall-clock time divided between building and
// simulating.
type Perf struct {
	// Cells counts completed simulations.
	Cells int64
	// WorkloadBuilds counts sessions materialized; WorkloadReuses counts
	// cells that replayed an already-materialized workload.
	WorkloadBuilds int64
	WorkloadReuses int64
	// MachineBuilds counts machines assembled; MachineReuses counts
	// cells that reset and reused a pooled machine.
	MachineBuilds int64
	MachineReuses int64
	// BuildWall is time spent materializing workloads and assembling
	// machines; SimWall is time spent replaying.
	BuildWall time.Duration
	SimWall   time.Duration
}

// String renders the counters as a one-line summary.
func (p Perf) String() string {
	return fmt.Sprintf("%d cells: workloads %d built/%d reused, machines %d built/%d reused, %v building, %v simulating",
		p.Cells, p.WorkloadBuilds, p.WorkloadReuses, p.MachineBuilds, p.MachineReuses,
		p.BuildWall.Round(time.Millisecond), p.SimWall.Round(time.Millisecond))
}

// workloadKey identifies one materialization: the full profile value
// (Profile is a comparable struct of scalars) plus the executed-prefix
// bound. Two cells with equal keys share one Workload.
type workloadKey struct {
	prof      workload.Profile
	maxEvents int
}

type workloadCell struct {
	once sync.Once
	w    *Workload
	err  error
}

// Runner joins the planes for sweeps: it materializes each workload once
// (single-flight, shared by every configuration and goroutine) and pools
// one reusable Machine per distinct Config per concurrent worker.
// All methods are safe for concurrent use; results are bit-identical to
// building a fresh machine per cell because Machine.Run resets to cold
// state first.
type Runner struct {
	mu        sync.Mutex
	workloads map[workloadKey]*workloadCell
	machines  map[Config][]*Machine
	perf      Perf
}

// NewRunner returns an empty Runner.
func NewRunner() *Runner {
	return &Runner{
		workloads: make(map[workloadKey]*workloadCell),
		machines:  make(map[Config][]*Machine),
	}
}

// Perf returns a snapshot of the reuse and timing counters.
func (r *Runner) Perf() Perf {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.perf
}

// Workload returns the materialized workload for prof truncated to
// maxEvents, building it on first use and sharing it afterwards.
// Concurrent callers for the same key block on one materialization.
func (r *Runner) Workload(prof workload.Profile, maxEvents int) (*Workload, error) {
	key := workloadKey{prof: prof, maxEvents: maxEvents}
	r.mu.Lock()
	cell, ok := r.workloads[key]
	if !ok {
		cell = &workloadCell{}
		r.workloads[key] = cell
	}
	r.mu.Unlock()

	built := false
	cell.once.Do(func() {
		built = true
		start := time.Now()
		cell.w, cell.err = NewWorkload(prof, maxEvents)
		r.mu.Lock()
		r.perf.BuildWall += time.Since(start)
		r.perf.WorkloadBuilds++
		r.mu.Unlock()
	})
	if !built {
		r.mu.Lock()
		r.perf.WorkloadReuses++
		r.mu.Unlock()
	}
	return cell.w, cell.err
}

// acquireMachine pops a pooled machine for cfg or assembles one.
func (r *Runner) acquireMachine(cfg Config) (*Machine, error) {
	r.mu.Lock()
	pool := r.machines[cfg]
	if n := len(pool); n > 0 {
		m := pool[n-1]
		r.machines[cfg] = pool[:n-1]
		r.perf.MachineReuses++
		r.mu.Unlock()
		return m, nil
	}
	r.mu.Unlock()

	start := time.Now()
	m, err := NewMachine(cfg)
	r.mu.Lock()
	r.perf.BuildWall += time.Since(start)
	if err == nil {
		r.perf.MachineBuilds++
	}
	r.mu.Unlock()
	return m, err
}

// releaseMachine returns a healthy machine to its configuration's pool.
func (r *Runner) releaseMachine(m *Machine) {
	r.mu.Lock()
	r.machines[m.cfg] = append(r.machines[m.cfg], m)
	r.mu.Unlock()
}

// RunCell simulates one (profile, configuration) cell: the workload is
// materialized once per (profile, MaxEvents) and shared, the machine
// comes from the per-configuration pool. label names the cell in panic
// and timeout errors. A non-positive timeout runs inline; otherwise the
// cell is abandoned with an error after timeout (the worker goroutine
// still returns its machine to the pool when it eventually finishes —
// reuse is safe because Run resets first). A panicking machine is
// dropped, never pooled.
func (r *Runner) RunCell(label string, prof workload.Profile, cfg Config, timeout time.Duration) (Result, error) {
	w, err := r.Workload(prof, cfg.MaxEvents)
	if err != nil {
		return Result{}, err
	}
	return r.RunWorkload(label, w, cfg, timeout)
}

// RunWorkload is RunCell for an already-materialized workload (e.g. one
// built from a generic source).
func (r *Runner) RunWorkload(label string, w *Workload, cfg Config, timeout time.Duration) (Result, error) {
	m, err := r.acquireMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	if timeout <= 0 {
		return r.simulate(label, m, w)
	}
	type cellOut struct {
		res Result
		err error
	}
	ch := make(chan cellOut, 1)
	go func() {
		res, err := r.simulate(label, m, w)
		ch <- cellOut{res: res, err: err}
	}()
	select {
	case out := <-ch:
		return out.res, out.err
	case <-time.After(timeout):
		return Result{}, fmt.Errorf("esp: run %s: exceeded %v timeout", label, timeout)
	}
}

// simulate replays w on m with panic containment and timing accounting.
func (r *Runner) simulate(label string, m *Machine, w *Workload) (res Result, err error) {
	start := time.Now()
	defer func() {
		elapsed := time.Since(start)
		if p := recover(); p != nil {
			// The machine may hold corrupt state: drop it.
			err = fmt.Errorf("esp: run %s: panic: %v", label, p)
			return
		}
		r.releaseMachine(m)
		r.mu.Lock()
		r.perf.SimWall += elapsed
		r.perf.Cells++
		r.mu.Unlock()
	}()
	res = m.Run(w)
	return res, nil
}
