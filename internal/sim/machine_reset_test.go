package sim

import (
	"reflect"
	"testing"

	"espsim/internal/workload"
)

// TestDirtyComponentsReplayBitIdentical is the golden-replay backstop
// behind the resetcomplete analyzer: the analyzer proves every field of
// every pooled component is accounted for by its Reset, and this test
// proves the accounting is not vacuous. Each machine component is
// deliberately dirtied through its public mutators — predictor PIR and
// RAS, cache contents, dirty lines and demand stats, prefetcher streak
// state — on top of a full replay of a different workload, and the next
// Run must still be bit-identical to a never-used machine's.
func TestDirtyComponentsReplayBitIdentical(t *testing.T) {
	profA := testProfile(t)
	profB := workload.Bing()
	profB.Events = 40

	wA, err := NewWorkload(profA, 0)
	if err != nil {
		t.Fatal(err)
	}
	wB, err := NewWorkload(profB, 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, cfg := range []Config{
		{Name: "base"},
		{Name: "nls", NLI: true, NLD: true, StridePF: true},
		{Name: "efetch", EFetch: true},
		{Name: "pif", PIF: true},
		{Name: "ra", NLI: true, NLD: true, Assist: AssistRunahead},
		espConfig(),
	} {
		// Golden results come from two never-used machines, so the
		// baseline does not itself depend on Reset being correct.
		freshA, err := NewMachine(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		wantA := freshA.Run(wA)
		freshB, err := NewMachine(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		wantB := freshB.Run(wB)

		dirty, err := NewMachine(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		// Realistic contamination: a full replay of the other workload.
		dirty.Run(wB)
		// Hostile contamination: poke every component's visible state.
		dirty.bp.SetPIR(0xDEADBEEF)
		dirty.bp.ClearRAS()
		for _, addr := range []uint64{0x1000, 0x2040, 0x3080, 0x40C0} {
			dirty.hier.FetchI(addr)
			dirty.hier.AccessD(addr^0xF000, true)
			dirty.hier.PrefetchD(addr + 0x40)
		}
		dirty.hier.L1D.MarkDirty(0x2040 ^ 0xF000)
		if dirty.nli != nil {
			dirty.nli.OnFetch(0x7777)
		}
		if dirty.dcu != nil {
			dirty.dcu.OnAccess(0x8888)
			dirty.dcu.OnAccess(0x8890)
		}
		if dirty.stride != nil {
			dirty.stride.OnAccess(0x100, 0x9000)
			dirty.stride.OnAccess(0x100, 0x9040)
		}
		// Replay scratch and free-lists: make the machine look like a
		// replay that died mid-run — workload still bound to the source
		// and looper boxes, and (for ESP) the engine abandoned inside an
		// event with live sneak-peek slots drawn from its free-lists and
		// never returned by EventEnd. Reset alone must reclaim all of it.
		dirty.src = wsource{w: wB, maxPending: cfg.MaxPending}
		dirty.loop.Src = &dirty.src
		dirty.loop.Core = dirty.c
		dirty.loop.MaxEvents = 1
		if dirty.esp != nil {
			dirty.spec.src = &dirty.src
			dirty.esp.Src = &dirty.spec
			dirty.esp.EventStart(dirty.src.Event(0), dirty.src.Insts(0, false), dirty.src.Pending(0))
		}

		if got := dirty.Run(wA); !reflect.DeepEqual(got, wantA) {
			t.Errorf("%s: dirtied machine diverged on workload A\ngot  %+v\nwant %+v", cfg.Name, got, wantA)
		}
		// Order independence: B after A on the same machine still matches
		// the fresh-machine golden result.
		if got := dirty.Run(wB); !reflect.DeepEqual(got, wantB) {
			t.Errorf("%s: dirtied machine diverged on workload B after A\ngot  %+v\nwant %+v", cfg.Name, got, wantB)
		}
	}
}
