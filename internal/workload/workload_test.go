package workload

import (
	"testing"
	"testing/quick"

	"espsim/internal/trace"
)

func TestHashDeterministic(t *testing.T) {
	if Hash(12345) != Hash(12345) {
		t.Fatal("Hash not deterministic")
	}
	if Hash(1) == Hash(2) {
		t.Fatal("Hash(1) == Hash(2): suspicious collision")
	}
}

func TestRNGReproducible(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := NewRNG(seed)
		v := r.Intn(int(n))
		return v >= 0 && v < int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBoolBias(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) frequency = %.3f, want ~0.3", frac)
	}
}

func TestSuiteProfilesValid(t *testing.T) {
	suite := Suite()
	if len(suite) != 7 {
		t.Fatalf("Suite has %d profiles, want 7", len(suite))
	}
	for _, p := range suite {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.PaperEvents == 0 || p.PaperInsts == 0 {
			t.Errorf("%s: missing Figure 6 paper numbers", p.Name)
		}
	}
}

func TestSuitePaperRatios(t *testing.T) {
	// The simulated sessions must preserve the paper's ordering of
	// instructions-per-event across applications (Figure 6).
	paperIPE := func(p Profile) float64 { return float64(p.PaperInsts) / float64(p.PaperEvents) }
	simIPE := func(p Profile) float64 { return float64(p.MeanEventLen) }
	suite := Suite()
	for i := 0; i < len(suite); i++ {
		for j := i + 1; j < len(suite); j++ {
			a, b := suite[i], suite[j]
			if paperIPE(a) > 1.1*paperIPE(b) && simIPE(a) <= simIPE(b) {
				t.Errorf("insts/event ordering of %s vs %s does not match the paper", a.Name, b.Name)
			}
			if paperIPE(b) > 1.1*paperIPE(a) && simIPE(b) <= simIPE(a) {
				t.Errorf("insts/event ordering of %s vs %s does not match the paper", b.Name, a.Name)
			}
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("gmaps")
	if err != nil || p.Name != "gmaps" {
		t.Fatalf("ByName(gmaps) = %v, %v", p.Name, err)
	}
	if _, err := ByName("notanapp"); err == nil {
		t.Fatal("ByName should reject unknown names")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	mods := []func(*Profile){
		func(p *Profile) { p.Events = 0 },
		func(p *Profile) { p.MeanEventLen = 1 },
		func(p *Profile) { p.Handlers = 0 },
		func(p *Profile) { p.HandlerFootprint = 100 },
		func(p *Profile) { p.LoadFrac = 0.8; p.StoreFrac = 0.3 },
		func(p *Profile) { p.SharedData = 10 },
		func(p *Profile) { p.DepProb = 1.5 },
		func(p *Profile) { p.ReuseFrac = 1.5 },
		func(p *Profile) { p.QueueNext = -0.1 },
	}
	for i, mod := range mods {
		p := Amazon()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mod %d: Validate accepted a bad profile", i)
		}
	}
}

func TestScale(t *testing.T) {
	p := Amazon()
	small := p.Scale(0.5)
	if small.Events != p.Events/2 {
		t.Fatalf("Scale(0.5): %d events, want %d", small.Events, p.Events/2)
	}
	if tiny := p.Scale(0.000001); tiny.Events < 4 {
		t.Fatal("Scale floor of 4 events not applied")
	}
	if same := p.Scale(-1); same.Events != p.Events {
		t.Fatal("non-positive scale should be a no-op")
	}
}

func TestSessionDeterministic(t *testing.T) {
	a, err := NewSession(Bing())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSession(Bing())
	if len(a.Events) != len(b.Events) {
		t.Fatal("session lengths differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs between identical sessions", i)
		}
		if a.VisibleDepth[i] != b.VisibleDepth[i] {
			t.Fatalf("queue depth %d differs between identical sessions", i)
		}
	}
}

func TestSessionInterleavesHandlers(t *testing.T) {
	s, err := NewSession(Amazon())
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].Handler == s.Events[i-1].Handler {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d consecutive events share a handler; interleaving is the point (§2.1)", same)
	}
}

func TestSessionEventLengths(t *testing.T) {
	p := CNN()
	s, err := NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, ev := range s.Events {
		if ev.Len < 256 || ev.Len > 8*p.MeanEventLen {
			t.Fatalf("event %d length %d outside clamp", ev.ID, ev.Len)
		}
		total += int64(ev.Len)
	}
	mean := float64(total) / float64(len(s.Events))
	if mean < 0.6*float64(p.MeanEventLen) || mean > 1.6*float64(p.MeanEventLen) {
		t.Fatalf("mean event length %.0f far from profile mean %d", mean, p.MeanEventLen)
	}
}

func TestSessionDependenceRate(t *testing.T) {
	p := Amazon()
	p.Events = 2000
	s, err := NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	dep := 0
	for _, ev := range s.Events {
		if ev.Diverge >= 0 {
			dep++
			if ev.Diverge >= ev.Len {
				t.Fatalf("event %d diverge index %d beyond length %d", ev.ID, ev.Diverge, ev.Len)
			}
		}
	}
	frac := float64(dep) / float64(len(s.Events))
	if frac < p.DepProb/2 || frac > p.DepProb*2 {
		t.Fatalf("dependent-event fraction %.3f far from DepProb %.3f", frac, p.DepProb)
	}
}

func TestPendingRespectsDepth(t *testing.T) {
	s, err := NewSession(Amazon())
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Events {
		p2 := s.Pending(i)
		if len(p2) > 2 {
			t.Fatalf("Pending returned %d events, max 2", len(p2))
		}
		if len(p2) > s.VisibleDepth[i] {
			t.Fatalf("Pending exceeds visible depth at %d", i)
		}
		for k, ev := range p2 {
			if ev.ID != i+1+k {
				t.Fatalf("Pending(%d)[%d] = event %d, want %d", i, k, ev.ID, i+1+k)
			}
		}
		p8 := s.PendingN(i, 8)
		if len(p8) < len(p2) {
			t.Fatal("PendingN(8) returned fewer events than Pending")
		}
	}
}

func TestStreamReplayIdentical(t *testing.T) {
	// The cornerstone of ESP: re-running an event's stream must produce
	// the identical instruction sequence (paper §5: pre-executions match
	// normal executions with >99% accuracy; exactly, absent divergence).
	s, err := NewSession(Facebook())
	if err != nil {
		t.Fatal(err)
	}
	ev := s.Events[3]
	ev.Diverge = -1
	a := trace.Record(s.Gen.Stream(ev, false), ev.Len)
	b := trace.Record(s.Gen.Stream(ev, true), ev.Len)
	if len(a) != len(b) || len(a) != ev.Len {
		t.Fatalf("lengths: normal %d speculative %d want %d", len(a), len(b), ev.Len)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("inst %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestStreamDivergence(t *testing.T) {
	s, err := NewSession(Amazon())
	if err != nil {
		t.Fatal(err)
	}
	ev := s.Events[0]
	ev.Diverge = ev.Len / 2
	normal := trace.Record(s.Gen.Stream(ev, false), ev.Len)
	spec := trace.Record(s.Gen.Stream(ev, true), ev.Len)
	for i := 0; i < ev.Diverge; i++ {
		if normal[i] != spec[i] {
			t.Fatalf("streams differ at %d, before divergence point %d", i, ev.Diverge)
		}
	}
	differs := false
	for i := ev.Diverge; i < len(normal) && i < len(spec); i++ {
		if normal[i] != spec[i] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("speculative stream never diverged after the divergence point")
	}
}

func TestStreamInstructionMix(t *testing.T) {
	p := Amazon()
	s, err := NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	var loads, stores, branches, total int
	for _, ev := range s.Events[:20] {
		for _, in := range trace.Record(s.Gen.Stream(ev, false), ev.Len) {
			total++
			switch in.Kind {
			case trace.Load:
				loads++
			case trace.Store:
				stores++
			case trace.Branch:
				branches++
			}
		}
	}
	lf, sf, bf := float64(loads)/float64(total), float64(stores)/float64(total), float64(branches)/float64(total)
	if lf < 0.15 || lf > 0.35 {
		t.Errorf("load fraction %.3f outside [0.15, 0.35]", lf)
	}
	if sf < 0.04 || sf > 0.18 {
		t.Errorf("store fraction %.3f outside [0.04, 0.18]", sf)
	}
	if bf < 0.06 || bf > 0.20 {
		t.Errorf("branch fraction %.3f outside [0.06, 0.20]", bf)
	}
}

func TestStreamBranchTargetsValid(t *testing.T) {
	s, err := NewSession(Pixlr())
	if err != nil {
		t.Fatal(err)
	}
	ev := s.Events[0]
	insts := trace.Record(s.Gen.Stream(ev, false), ev.Len)
	for i := 0; i < len(insts)-1; i++ {
		if insts[i].NextPC() != insts[i+1].PC {
			t.Fatalf("control-flow break at %d: NextPC %#x but next inst at %#x",
				i, insts[i].NextPC(), insts[i+1].PC)
		}
	}
}

func TestStreamCodeDataDisjoint(t *testing.T) {
	s, err := NewSession(GDocs())
	if err != nil {
		t.Fatal(err)
	}
	ev := s.Events[0]
	for _, in := range trace.Record(s.Gen.Stream(ev, false), ev.Len) {
		if in.Kind == trace.Load || in.Kind == trace.Store {
			if in.Addr < sharedBase {
				t.Fatalf("data address %#x inside code space", in.Addr)
			}
		}
		if in.PC >= sharedBase {
			t.Fatalf("PC %#x inside data space", in.PC)
		}
	}
}

func TestStreamWorkingSetScalesWithLength(t *testing.T) {
	s, err := NewSession(GMaps())
	if err != nil {
		t.Fatal(err)
	}
	lines := func(ev trace.Event) int {
		seen := make(map[uint64]bool)
		for _, in := range trace.Record(s.Gen.Stream(ev, false), ev.Len) {
			seen[trace.Line(in.PC)] = true
		}
		return len(seen)
	}
	short := s.Events[0]
	short.Len = 2000
	long := s.Events[0]
	long.Len = 32000
	ls, ll := lines(short), lines(long)
	if ll <= ls {
		t.Fatalf("long event touched %d lines, short %d; want more for longer", ll, ls)
	}
	// Sub-linear: 16x longer should touch clearly less than 16x the code.
	if float64(ll) > 14*float64(ls) {
		t.Fatalf("footprint scaling looks linear: %d vs %d lines", ll, ls)
	}
}

func TestGeneratorRejectsInvalidProfile(t *testing.T) {
	p := Amazon()
	p.Events = 0
	if _, err := New(p); err == nil {
		t.Fatal("New accepted an invalid profile")
	}
	if _, err := NewSession(p); err == nil {
		t.Fatal("NewSession accepted an invalid profile")
	}
}

func TestQueueDepthDistribution(t *testing.T) {
	p := Amazon()
	p.Events = 4000
	s, err := NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	atLeast1, atLeast2 := 0, 0
	for _, d := range s.VisibleDepth {
		if d >= 1 {
			atLeast1++
		}
		if d >= 2 {
			atLeast2++
		}
	}
	f1 := float64(atLeast1) / float64(p.Events)
	f2 := float64(atLeast2) / float64(p.Events)
	if f1 < p.QueueNext-0.05 || f1 > p.QueueNext+0.05 {
		t.Errorf("P(depth>=1) = %.3f, want ~%.2f", f1, p.QueueNext)
	}
	if f2 < p.QueueSecond-0.05 || f2 > p.QueueSecond+0.05 {
		t.Errorf("P(depth>=2) = %.3f, want ~%.2f", f2, p.QueueSecond)
	}
}

func TestProfilesHaveActions(t *testing.T) {
	for _, p := range Suite() {
		if p.Actions == "" {
			t.Errorf("%s: missing Figure 6 actions description", p.Name)
		}
	}
}

func TestCodeIntensityValidated(t *testing.T) {
	p := Amazon()
	p.CodeIntensity = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative CodeIntensity accepted")
	}
	// Zero means "default": usable as-is.
	p.CodeIntensity = 0
	if _, err := New(p); err != nil {
		t.Fatalf("zero CodeIntensity should default to 1: %v", err)
	}
}

func TestCodeIntensityWidensFootprint(t *testing.T) {
	lines := func(p Profile) int {
		s, err := NewSession(p)
		if err != nil {
			t.Fatal(err)
		}
		ev := s.Events[0]
		seen := map[uint64]bool{}
		for _, in := range trace.Record(s.Gen.Stream(ev, false), ev.Len) {
			seen[trace.Line(in.PC)] = true
		}
		return len(seen)
	}
	base := Amazon()
	wide := Amazon()
	wide.CodeIntensity = 2.5
	if lines(wide) <= lines(base) {
		t.Fatal("higher CodeIntensity did not widen the event footprint")
	}
}
