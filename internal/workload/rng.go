package workload

// Deterministic hashing and pseudo-random generation.
//
// All "static" program properties (what code lives at a PC: block length,
// branch class, call targets, biases, instruction kinds) are pure functions
// of (program seed, PC) via Hash, so every dynamic instance of a handler
// executes the same code. All "dynamic" behaviour (data-dependent branch
// outcomes, memory addresses) flows from a per-event RNG, so replaying an
// event — e.g. for speculative pre-execution — reproduces it exactly.

// Hash mixes x with splitmix64's finalizer. It is the basis for all static
// code properties.
func Hash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash2 mixes two values.
func Hash2(a, b uint64) uint64 { return Hash(a ^ Hash(b)) }

// RNG is a splitmix64 pseudo-random generator. The zero value is a valid
// (seed-0) generator; use NewRNG for an explicit seed.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) RNG { return RNG{state: seed} }

// Next returns the next 64 pseudo-random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int { return int(r.Next() % uint64(n)) }

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 { return float64(r.Next()>>11) / (1 << 53) }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Reseed replaces the generator state, decorrelating the sequence from its
// past. Used to model speculative pre-executions diverging from the normal
// execution path.
func (r *RNG) Reseed(salt uint64) { r.state = Hash2(r.state, salt) }
