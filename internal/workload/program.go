package workload

import (
	"math"

	"espsim/internal/trace"
)

// Address-space layout. Code and data live in disjoint regions so the
// simulator's I- and D-side structures never alias.
const (
	runtimeBase  = 0x1000_0000 // shared JS-engine/runtime code
	handlerSpace = 0x4000_0000 // per-handler code regions, 16 MiB apart
	handlerSlot  = 1 << 24
	sharedBase   = 0x1_0000_0000 // shared application state
	heapSpace    = 0x2_0000_0000 // per-event private heaps
	strideSpace  = 0x4_0000_0000 // per-event sequentially-walked arrays

	// funcBytes is the size of one "function" window. Calls target
	// function entries; conditional branches stay within the window.
	funcBytes = 1024

	// maxCallDepth bounds the simulated call stack.
	maxCallDepth = 16

	// hotFuncs is the size of each code region's hot-function subset;
	// HotCallFrac of call sites target it (the code working set that
	// gives real applications their I-cache temporal locality).
	hotFuncs = 40

	// reusePoolSize is the per-event pool of recently touched data
	// addresses; ReuseFrac of references re-touch one of them.
	reusePoolSize = 192

	// heapRecycle is the number of distinct per-event heap arenas before
	// the allocator recycles one: a freed arena is still L2-resident when
	// it is reallocated, as with real allocators, so event-private data
	// costs L1 misses but rarely memory accesses.
	heapRecycle = 24

	// indirectTargets is the number of distinct targets an indirect
	// dispatch site can reach; indirectSkew is the probability of the
	// dominant one (what the iBTB can learn).
	indirectTargets = 4
	indirectSkew    = 0.80

	// wsScale scales an event's code working set with len^0.8 — longer
	// events touch more code, but sub-linearly (about 13 functions for a
	// 5,600-instruction event).
	wsScale = 0.0095
)

// Branch class thresholds, per mille of all block-terminating branches.
// DataDepBranch from the profile carves its share out of the biased
// conditional class, so the total always sums to 1000.
const (
	loopPM     = 110 // backward loop branches with static trip counts
	callPM     = 140 // direct calls (RuntimeFrac of sites target runtime code)
	retPM      = 120 // returns
	indirectPM = 40  // indirect dispatch (8 possible targets per site)
	jumpPM     = 80  // unconditional forward jumps
	// remaining 540 per mille: conditional branches, split between
	// data-dependent (profile.DataDepBranch of ALL branches) and biased.
)

// condBias is the taken (or not-taken) probability of a biased branch.
const condBias = 0.955

// Generator synthesizes replayable event instruction streams for one
// application profile. It implements trace.Program.
type Generator struct {
	prof            Profile
	handlerFuncs    int // functions per handler region
	runtimeFuncs    int // functions in the runtime region
	dataDepPM       int
	loadPM          int // straight-line load threshold, per mille
	storePM         int // straight-line load+store threshold, per mille
	sharedWords     uint64
	sharedHotWords  uint64
	heapWords       uint64
	heapStrideBytes uint64
}

// New returns a generator for the profile.
func New(p Profile) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.CodeIntensity == 0 {
		p.CodeIntensity = 1
	}
	heapStride := uint64(p.EventHeap+4095) &^ 4095
	return &Generator{
		prof:            p,
		handlerFuncs:    p.HandlerFootprint / funcBytes,
		runtimeFuncs:    p.RuntimeFootprint / funcBytes,
		dataDepPM:       int(p.DataDepBranch * 1000),
		loadPM:          int(p.LoadFrac * 1000),
		storePM:         int((p.LoadFrac + p.StoreFrac) * 1000),
		sharedWords:     uint64(p.SharedData) / 8,
		sharedHotWords:  uint64(p.SharedData) / 8 / 16,
		heapWords:       uint64(p.EventHeap) / 8,
		heapStrideBytes: heapStride,
	}, nil
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

func (g *Generator) handlerBase(h int) uint64 {
	return handlerSpace + uint64(h)*handlerSlot
}

// EntryPC returns the first instruction address of a handler type.
func (g *Generator) EntryPC(handler int) uint64 { return g.handlerBase(handler) }

// regionOf returns the base and function count of the code region
// containing pc.
func (g *Generator) regionOf(pc uint64) (base uint64, funcs int) {
	if pc < handlerSpace {
		return runtimeBase, g.runtimeFuncs
	}
	slot := (pc - handlerSpace) / handlerSlot
	return handlerSpace + slot*handlerSlot, g.handlerFuncs
}

// static returns the static-code hash for pc: every property of the
// instruction at pc derives from it, so all dynamic instances of the same
// code agree.
func (g *Generator) static(pc uint64) uint64 { return Hash2(g.prof.Seed, pc) }

// blockLen returns the instruction count of the basic block starting at pc
// (5..14, mean 9.5, giving a ~10.5% branch fraction).
func (g *Generator) blockLen(pc uint64) int { return 5 + int(g.static(pc)%10) }

// Stream implements trace.Program. Each call allocates an independent
// stream; hot paths that materialize many events should reuse one Walker
// via Init/Append instead.
func (g *Generator) Stream(ev trace.Event, speculative bool) trace.Stream {
	s := &stream{}
	s.w.Init(g, ev, speculative)
	return s
}

// stream adapts a Walker to the pull-based trace.Stream interface.
type stream struct{ w Walker }

// Next implements trace.Stream.
func (s *stream) Next() (trace.Inst, bool) { return s.w.Next() }

// Init points the walker at an event, discarding any previous state. The
// working-set, call-stack and loop-table scratch keep their storage, so a
// warm walker generates a stream without touching the heap.
func (w *Walker) Init(g *Generator, ev trace.Event, speculative bool) {
	stack, ws, loops := w.stack[:0], w.ws[:0], w.loops
	*w = Walker{
		g:         g,
		rng:       NewRNG(ev.Seed),
		limit:     ev.Len,
		divergeAt: -1,
		pc:        g.EntryPC(ev.Handler),
		heapBase:  heapSpace + uint64(ev.ID%heapRecycle)*g.heapStrideBytes,
		stridePtr: strideSpace + uint64(ev.ID)*(64<<10),
		stack:     stack,
		ws:        ws,
		loops:     loops,
	}
	w.loops.clear()
	if speculative && ev.Diverge >= 0 {
		w.divergeAt = ev.Diverge
	}
	w.buildWorkingSet(ev.Handler, ev.Len)
	w.curBlockLen = g.blockLen(w.pc)
	w.blockRemain = w.curBlockLen
}

// Append generates every remaining instruction of the event directly into
// dst and returns the extended slice. It is the bulk equivalent of
// draining Next and emits the exact same sequence. The straight-line body
// of each block runs as one inner loop with the divergence and limit
// checks hoisted to run boundaries, so the per-instruction work is just
// the static classification and (for memory ops) the address draw.
func (w *Walker) Append(dst []trace.Inst) []trace.Inst {
	g := w.g
	for w.emitted < w.limit {
		if w.emitted == w.divergeAt {
			w.rng.Reseed(0xD17E46E)
		}
		if w.blockRemain <= 1 {
			in := w.branch()
			w.emitted++
			dst = append(dst, in)
			continue
		}
		// Straight-line run: up to the block's branch, the event limit,
		// or the divergence point — whichever comes first.
		n := w.blockRemain - 1
		if rem := w.limit - w.emitted; n > rem {
			n = rem
		}
		if w.divergeAt > w.emitted && n > w.divergeAt-w.emitted {
			n = w.divergeAt - w.emitted
		}
		pc := w.pc
		for j := 0; j < n; j++ {
			in := trace.Inst{PC: pc, Kind: trace.ALU}
			r := int(Hash2(g.prof.Seed, pc) >> 7 % 1000)
			switch {
			case r < g.loadPM:
				in.Kind = trace.Load
				in.Addr = w.loadAddr()
			case r < g.storePM:
				in.Kind = trace.Store
				in.Addr = w.storeAddr()
			}
			pc += trace.InstBytes
			dst = append(dst, in)
		}
		w.pc = pc
		w.blockRemain -= n
		w.emitted += n
	}
	return dst
}

// buildWorkingSet draws the event's code working set: the handful of
// functions this event iterates over. Real event handlers execute many
// instructions over little code (loops over DOM nodes, repeated helper
// calls); it is the *interleaving* of events with different working sets
// that destroys locality (paper §2.1), and it is this small per-event
// working set that lets the paper's 5.5 KB cachelet capture 95% of
// pre-execution reuse (Figure 13). The working set is drawn before any
// possible divergence point, so speculative pre-executions agree on it.
func (s *Walker) buildWorkingSet(handler, eventLen int) {
	g := s.g
	hbase := g.handlerBase(handler)
	hHot := min(hotFuncs, g.handlerFuncs)
	rHot := min(hotFuncs, g.runtimeFuncs)
	// Longer events touch more code, but sub-linearly: a long event
	// (spreadsheet recalculation, map tile math) is long because it
	// loops over data, not because it runs more code. This keeps miss
	// streams within prediction-list reach for every app, as the paper's
	// per-app results require.
	n := 4 + int(g.prof.CodeIntensity*wsScale*math.Pow(float64(eventLen), 0.8))
	nCold := 1 + n/12
	nHandler := (n - nCold) * 3 / 5
	nRuntime := n - nCold - nHandler
	if s.rng.Bool(1 - g.prof.HotCallFrac) {
		nCold++
	}
	for ; nHandler > 0; nHandler-- {
		s.ws = append(s.ws, hbase+uint64(s.rng.Intn(hHot))*funcBytes)
	}
	for ; nRuntime > 0; nRuntime-- {
		s.ws = append(s.ws, runtimeBase+uint64(s.rng.Intn(rHot))*funcBytes)
	}
	// Cold code: rarely-exercised paths drawn from the full footprint.
	for ; nCold > 0; nCold-- {
		if s.rng.Bool(0.5) {
			s.ws = append(s.ws, hbase+uint64(s.rng.Intn(g.handlerFuncs))*funcBytes)
		} else {
			s.ws = append(s.ws, runtimeBase+uint64(s.rng.Intn(g.runtimeFuncs))*funcBytes)
		}
	}
}

// wsTarget picks a call/dispatch target from the event's working set,
// skewed toward its first entries (the hottest helpers).
func (s *Walker) wsTarget() uint64 {
	n := len(s.ws)
	k := s.rng.Intn(n)
	if s.rng.Bool(0.5) {
		k = s.rng.Intn((n + 1) / 2) // revisit the hot half more often
	}
	return s.ws[k]
}

// Walker generates one event's dynamic instructions, on demand via Next
// or in bulk via Append. Unlike a fresh Stream per event, a Walker is
// re-initializable: Init retargets it at another event while its scratch
// (call stack, working set, loop table) keeps its storage, so warm
// regeneration of a whole session allocates nothing.
type Walker struct {
	g           *Generator
	rng         RNG
	limit       int
	emitted     int
	divergeAt   int
	pc          uint64
	blockRemain int
	curBlockLen int
	stack       []uint64
	loops       loopTable
	heapBase    uint64
	stridePtr   uint64
	strideRun   int
	newRun      int
	pool        [reusePoolSize]uint64
	poolLen     int
	poolPos     int
	ws          []uint64 // the event's code working set (function bases)
}

// loopTable tracks in-flight loop iteration counts per branch PC. It is
// an open-addressed exact-match hash table with the observable behavior
// of a map[uint64]int8 whose missing keys read as zero, but its storage
// survives clear() so a warm walker never reallocates it. Key 0 marks an
// empty cell; loop branch PCs live in the runtime/handler regions
// (>= 0x1000_0000), so a real key can never be 0.
type loopTable struct {
	keys []uint64
	vals []int8
	n    int
}

func (t *loopTable) clear() {
	for i := range t.keys {
		t.keys[i] = 0
	}
	t.n = 0
}

func (t *loopTable) get(pc uint64) int8 {
	if len(t.keys) == 0 {
		return 0
	}
	mask := uint64(len(t.keys) - 1)
	for i := (pc >> 2) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case pc:
			return t.vals[i]
		case 0:
			return 0
		}
	}
}

func (t *loopTable) set(pc uint64, v int8) {
	if 4*(t.n+1) > 3*len(t.keys) {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	for i := (pc >> 2) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case pc:
			t.vals[i] = v
			return
		case 0:
			t.keys[i], t.vals[i] = pc, v
			t.n++
			return
		}
	}
}

func (t *loopTable) grow() {
	old := *t
	size := 2 * len(old.keys)
	if size < 64 {
		size = 64
	}
	t.keys = make([]uint64, size)
	t.vals = make([]int8, size)
	t.n = 0
	for i, k := range old.keys {
		if k != 0 {
			t.set(k, old.vals[i])
		}
	}
}

// newBurst decides whether this reference opens or continues a burst of
// new (cold) addresses. Cache misses in real programs cluster — an object
// traversal touches several new lines in quick succession — which is what
// lets runahead execution convert the followers of a blocking miss into
// prefetches (Figure 11b). The expected fraction of new references stays
// at 1-ReuseFrac.
func (s *Walker) newBurst() bool {
	if s.newRun > 0 {
		// Burst members are interleaved with ordinary reuse references,
		// spreading the cluster across a few hundred instructions —
		// beyond what the ROB alone can overlap, but within reach of a
		// runahead episode.
		if s.rng.Bool(0.025) {
			s.newRun--
			return true
		}
		return false
	}
	const meanBurst = 7.5 // E[4 + Intn(8)] + the opening reference
	if s.rng.Bool((1 - s.g.prof.ReuseFrac) / (1 + meanBurst)) {
		s.newRun = 4 + s.rng.Intn(8)
		return true
	}
	return false
}

// burstAddr returns the next address of a cold traversal: a pointer chase
// through rarely-touched shared state (cold DOM subtrees, fresh JSON).
func (s *Walker) burstAddr() uint64 {
	g := s.g
	return sharedBase + (s.rng.Next()%g.sharedWords)*8
}

// Next implements trace.Stream.
func (s *Walker) Next() (trace.Inst, bool) {
	if s.emitted >= s.limit {
		return trace.Inst{}, false
	}
	if s.emitted == s.divergeAt {
		// The event depended on a skipped predecessor: from here on the
		// speculative path decorrelates from the normal execution.
		s.rng.Reseed(0xD17E46E)
	}
	var in trace.Inst
	if s.blockRemain > 1 {
		in = s.straightLine()
	} else {
		in = s.branch()
	}
	s.emitted++
	return in, true
}

// straightLine emits the next non-branch instruction of the current block.
func (s *Walker) straightLine() trace.Inst {
	g := s.g
	in := trace.Inst{PC: s.pc, Kind: trace.ALU}
	r := int(g.static(s.pc) >> 7 % 1000)
	switch {
	case r < g.loadPM:
		in.Kind = trace.Load
		in.Addr = s.loadAddr()
	case r < g.storePM:
		in.Kind = trace.Store
		in.Addr = s.storeAddr()
	}
	s.pc += trace.InstBytes
	s.blockRemain--
	return in
}

// branch emits the block-terminating branch and establishes the next block.
func (s *Walker) branch() trace.Inst {
	g := s.g
	pc := s.pc
	h := g.static(pc)
	in := trace.Inst{PC: pc, Kind: trace.Branch}
	cls := int(h >> 17 % 1000)
	switch {
	case cls < loopPM:
		s.loop(&in, h)
	case cls < loopPM+callPM:
		s.call(&in, h)
	case cls < loopPM+callPM+retPM:
		s.ret(&in, h)
	case cls < loopPM+callPM+retPM+indirectPM:
		s.indirect(&in, h)
	case cls < loopPM+callPM+retPM+indirectPM+jumpPM:
		in.Taken = true
		in.Addr = s.forwardTarget(pc, h)
	case cls < loopPM+callPM+retPM+indirectPM+jumpPM+g.dataDepPM:
		// Data-dependent conditional: a coin flip per dynamic instance.
		in.Taken = s.rng.Bool(0.5)
		in.Addr = s.forwardTarget(pc, h)
	default:
		// Biased conditional: strongly but not perfectly predictable.
		takenBiased := h>>40&1 == 0
		follow := s.rng.Bool(condBias)
		in.Taken = takenBiased == follow
		in.Addr = s.forwardTarget(pc, h)
	}
	s.redirect(in.NextPC())
	return in
}

// loop fills in a backward branch with a static trip count (3..16); the
// loop predictor and local predictor can learn these.
func (s *Walker) loop(in *trace.Inst, h uint64) {
	blockStart := in.PC - uint64(s.blockLenAtEnd()-1)*trace.InstBytes
	trip := int8(4 + h>>23%16)
	c := s.loops.get(in.PC) + 1
	if c >= trip {
		s.loops.set(in.PC, 0)
		in.Taken = false
	} else {
		s.loops.set(in.PC, c)
		in.Taken = true
	}
	in.Addr = blockStart
}

// blockLenAtEnd recovers the current block's length from its start: the
// branch sits blockLen-1 instructions after the block start, so walk back.
func (s *Walker) blockLenAtEnd() int {
	// The block started where blockRemain was set; since we only call this
	// when blockRemain == 1 we can recompute from the stored start below.
	return s.curBlockLen
}

func (s *Walker) call(in *trace.Inst, h uint64) {
	in.Taken = true
	in.Call = true
	// Calls target the event's working set: the same handful of helpers,
	// revisited over and over.
	in.Addr = s.wsTarget()
	if len(s.stack) < maxCallDepth {
		s.stack = append(s.stack, in.PC+trace.InstBytes)
	} else {
		// Deep recursion guard: degrade to a jump (no matching return).
		in.Call = false
		in.Addr = s.forwardTarget(in.PC, h)
	}
}

func (s *Walker) ret(in *trace.Inst, h uint64) {
	in.Taken = true
	if n := len(s.stack); n > 0 {
		in.Ret = true
		in.Addr = s.stack[n-1]
		s.stack = s.stack[:n-1]
	} else {
		in.Addr = s.forwardTarget(in.PC, h)
	}
}

// indirect models a dispatch site choosing among the event's working-set
// functions at run time, skewed toward a dominant target (what the iBTB
// can learn); it exercises the iBTB and B-List-Target.
func (s *Walker) indirect(in *trace.Inst, h uint64) {
	in.Taken = true
	in.Indirect = true
	if s.rng.Bool(indirectSkew) {
		in.Addr = s.ws[h%uint64(len(s.ws))] // site-dominant target
	} else {
		in.Addr = s.wsTarget()
	}
}

// forwardTarget returns a static, mostly-forward target inside the same
// function window as pc.
func (s *Walker) forwardTarget(pc, h uint64) uint64 {
	base, _ := s.g.regionOf(pc)
	fb := base + (pc-base)&^uint64(funcBytes-1)
	off := ((pc - fb) + (16+h>>47%120)*trace.InstBytes) % funcBytes
	return fb + off&^3
}

// redirect moves the stream to the next block at pc, wrapping back into a
// valid code region if sequential execution ran off the end of one.
func (s *Walker) redirect(pc uint64) {
	base, funcs := s.g.regionOf(pc)
	limit := base + uint64(funcs)*funcBytes
	if pc >= limit || pc < base {
		pc = base + (pc-base)%uint64(funcs*funcBytes)
		pc &^= 3
	}
	s.pc = pc
	s.curBlockLen = s.g.blockLen(pc)
	s.blockRemain = s.curBlockLen
}

// loadAddr picks the effective address of a load: continue or start a
// sequential array walk (stride/DCU-prefetchable), re-touch a recent
// address (temporal locality), or reference a new location per the
// profile's data mix.
func (s *Walker) loadAddr() uint64 {
	g := s.g
	if s.strideRun > 0 {
		s.strideRun--
		s.stridePtr += 8
		return s.stridePtr
	}
	if s.rng.Bool(g.prof.StrideFrac) {
		s.strideRun = 6 + s.rng.Intn(10)
		s.stridePtr += 8
		return s.stridePtr
	}
	if !s.newBurst() && s.poolLen > 0 {
		return s.pool[s.rng.Intn(s.poolLen)]
	}
	var addr uint64
	switch {
	case s.newRun > 0:
		addr = s.burstAddr()
	case s.rng.Bool(g.prof.SharedFrac):
		addr = s.sharedAddr()
	default:
		addr = s.heapBase + (s.rng.Next()%g.heapWords)*8
	}
	s.remember(addr)
	return addr
}

// storeAddr picks the effective address of a store: usually something
// recently touched, otherwise mostly the event's private heap, sometimes
// shared state (the source of inter-event dependences).
func (s *Walker) storeAddr() uint64 {
	if !s.newBurst() && s.poolLen > 0 {
		return s.pool[s.rng.Intn(s.poolLen)]
	}
	var addr uint64
	if s.rng.Bool(0.75) {
		addr = s.heapBase + (s.rng.Next()%s.g.heapWords)*8
	} else {
		addr = s.sharedAddr()
	}
	s.remember(addr)
	return addr
}

// remember adds addr to the event's recently-touched pool.
func (s *Walker) remember(addr uint64) {
	s.pool[s.poolPos] = addr
	s.poolPos = (s.poolPos + 1) % reusePoolSize
	if s.poolLen < reusePoolSize {
		s.poolLen++
	}
}

func (s *Walker) sharedAddr() uint64 {
	g := s.g
	if s.rng.Bool(g.prof.HotFrac) {
		return sharedBase + (s.rng.Next()%g.sharedHotWords)*8
	}
	return sharedBase + (s.rng.Next()%g.sharedWords)*8
}
