package workload

import (
	"math"

	"espsim/internal/trace"
)

// Session is one application browsing session: the ordered list of events
// the looper thread will execute, plus the queue-occupancy schedule that
// determines which future events ESP can see (paper §2.2, §6.6).
type Session struct {
	// Gen generates the instruction streams for the session's events.
	Gen *Generator
	// Events is the execution order.
	Events []trace.Event
	// VisibleDepth[i] is how many future events are already enqueued
	// when event i starts executing. The hardware event queue exposes at
	// most two of them; the Figure 13 design-space study looks deeper.
	VisibleDepth []int
}

// NewSession builds the session for a profile. Sessions are fully
// deterministic in the profile (including its Seed).
func NewSession(p Profile) (*Session, error) {
	gen, err := New(p)
	if err != nil {
		return nil, err
	}
	rng := NewRNG(Hash2(p.Seed, 0x5E55104))
	s := &Session{
		Gen:          gen,
		Events:       make([]trace.Event, p.Events),
		VisibleDepth: make([]int, p.Events),
	}
	prevHandler := -1
	for i := range s.Events {
		// Consecutive events come from different handler types: the
		// fine-grained interleaving of varied tasks that destroys
		// locality in asynchronous programs (paper §2.1).
		h := rng.Intn(p.Handlers)
		if h == prevHandler && p.Handlers > 1 {
			h = (h + 1 + rng.Intn(p.Handlers-1)) % p.Handlers
		}
		prevHandler = h

		ln := eventLen(&rng, p)
		div := -1
		if rng.Bool(p.DepProb) {
			div = rng.Intn(ln)
		}
		s.Events[i] = trace.Event{
			ID:      i,
			Handler: h,
			Seed:    Hash2(p.Seed, 0xE0E47+uint64(i)),
			Len:     ln,
			Diverge: div,
		}
		s.VisibleDepth[i] = queueDepth(&rng, p)
	}
	if p.Timed {
		timeEvents(s, p)
	}
	return s, nil
}

// timeEvents runs the timed second pass of a mobile-web profile: each
// event draws a class from the mix, takes that class's priority and a
// length rescale, advances the shared arrival clock by the class's gap,
// and receives a deadline inside the class window. The pass uses its
// own RNG stream so the untimed sampling above stays byte-identical to
// profiles that predate the scheduling dimension.
func timeEvents(s *Session, p Profile) {
	trng := NewRNG(Hash2(p.Seed, 0x71AED5))
	var totalW float64
	for _, cs := range p.Mix {
		if cs.Weight > 0 {
			totalW += cs.Weight
		}
	}
	var t int64
	for i := range s.Events {
		cs := pickClass(&trng, &p, totalW)
		ev := &s.Events[i]
		ev.Class = cs.Class
		ev.Prio = cs.Prio
		if cs.LenScale > 0 && cs.LenScale != 1 {
			ln := int(float64(ev.Len) * cs.LenScale)
			if ln < 256 {
				ln = 256
			}
			if max := 8 * p.MeanEventLen; ln > max {
				ln = max
			}
			ev.Len = ln
			if ev.Diverge >= ev.Len {
				ev.Diverge = ev.Len - 1
			}
		}
		// Arrivals are cumulative, so they are non-decreasing and FIFO
		// dispatch order equals queue order.
		t += int64(cs.MeanGap/2) + int64(trng.Intn(cs.MeanGap+1))
		ev.Arrival = t
		if cs.DeadlineHi > 0 {
			off := cs.DeadlineLo
			if cs.DeadlineHi > cs.DeadlineLo {
				off += trng.Intn(cs.DeadlineHi - cs.DeadlineLo + 1)
			}
			ev.Deadline = t + int64(off) + int64(p.DeadlineSlack)
		}
	}
}

// pickClass draws one active mix entry, weighted.
func pickClass(rng *RNG, p *Profile, totalW float64) ClassSpec {
	r := rng.Float64() * totalW
	for _, cs := range p.Mix {
		if cs.Weight <= 0 {
			continue
		}
		if r < cs.Weight {
			return cs
		}
		r -= cs.Weight
	}
	for i := len(p.Mix) - 1; i >= 0; i-- {
		if p.Mix[i].Weight > 0 {
			return p.Mix[i]
		}
	}
	return ClassSpec{}
}

// queueDepth samples how many future events are resident in the software
// queue: P(>=1) = QueueNext, P(>=2) = QueueSecond, with a geometric tail
// beyond that (deep occupancy is rare; §6.6 finds little opportunity
// beyond two events).
func queueDepth(rng *RNG, p Profile) int {
	if !rng.Bool(p.QueueNext) {
		return 0
	}
	if !rng.Bool(p.QueueSecond / math.Max(p.QueueNext, 1e-9)) {
		return 1
	}
	d := 2
	for d < 8 && rng.Bool(0.55) {
		d++
	}
	return d
}

// eventLen samples a lognormal-ish event length around the profile mean.
// The sum of four uniforms approximates a normal deviate; the exponential
// map gives the long right tail real event-length distributions show.
func eventLen(rng *RNG, p Profile) int {
	g := rng.Float64() + rng.Float64() + rng.Float64() + rng.Float64() - 2 // ~N(0, 0.58)
	ln := float64(p.MeanEventLen) * math.Exp(p.EventLenSpread*g)
	// Recentre so the mean stays near MeanEventLen despite exp's skew.
	ln /= math.Exp(p.EventLenSpread * p.EventLenSpread / 6)
	n := int(ln)
	const minLen = 256
	if n < minLen {
		n = minLen
	}
	if max := 8 * p.MeanEventLen; n > max {
		n = max
	}
	return n
}

// TotalInsts returns the exact instruction count of the session's events.
func (s *Session) TotalInsts() int64 {
	var t int64
	for _, ev := range s.Events {
		t += int64(ev.Len)
	}
	return t
}

// Pending returns the future events visible in the queue when event i
// starts: at most two, per the paper's 2-entry hardware event queue.
func (s *Session) Pending(i int) []trace.Event { return s.PendingN(i, 2) }

// PendingN returns up to n visible future events; the Figure 13 study
// uses n up to 8. The result is a capacity-pinned view into Events —
// no copy — and must be treated as read-only.
func (s *Session) PendingN(i, n int) []trace.Event {
	d := s.VisibleDepth[i]
	if d > n {
		d = n
	}
	if rest := len(s.Events) - 1 - i; d > rest {
		d = rest
	}
	return s.Events[i+1 : i+1+d : i+1+d]
}
