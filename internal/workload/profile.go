// Package workload synthesizes asynchronous-program instruction traces
// that are statistically calibrated to the seven Web 2.0 applications the
// paper evaluates (Figure 6): amazon, bing, cnn, facebook, gmaps, gdocs
// and pixlr.
//
// The paper recorded Chromium renderer-process traces of live browsing
// sessions; those traces are not available, so this package substitutes a
// deterministic generator that reproduces the execution properties ESP
// exploits (DESIGN.md §2): many short events of varied handler types,
// large instruction footprints, cold data misses, mostly-independent
// events that occasionally depend on a predecessor, and events resident in
// the queue before they run.
package workload

import (
	"fmt"

	"espsim/internal/trace"
)

// ClassSpec describes one event class of a timed (mobile-web) profile:
// its share of the event mix, scheduling priority, arrival cadence,
// deadline window, and how its events' lengths relate to the profile
// mean. All fields are scalars so Profile stays comparable (profiles
// key workload caches).
type ClassSpec struct {
	// Class labels events drawn from this spec.
	Class trace.EventClass
	// Weight is the spec's relative share of the event mix; zero
	// disables the entry.
	Weight float64
	// Prio is the scheduling priority (lower = more urgent).
	Prio uint8
	// MeanGap is the mean inter-arrival gap contributed to the global
	// arrival clock when an event of this class is posted, in
	// instruction units (gaps are uniform in [MeanGap/2, 3*MeanGap/2]).
	MeanGap int
	// DeadlineLo/DeadlineHi bound the uniform deadline offset after
	// arrival, in instruction units. DeadlineHi == 0 means events of
	// this class carry no deadline.
	DeadlineLo int
	DeadlineHi int
	// LenScale multiplies the sampled event length (0 or 1 = profile
	// default): input handlers are short, network completions long.
	LenScale float64
}

// Profile describes one application workload. The seven presets are
// scaled-down versions of the paper's sessions (Figure 6): event lengths
// and counts are divided by ScaleDivisor while the ratios between
// applications — and the footprint-to-cache-size ratios that produce the
// paper's miss rates — are preserved.
type Profile struct {
	// Name is the application name as it appears in the paper's figures;
	// Actions describes the browsing session (Figure 6's "Actions
	// performed" column).
	Name    string
	Actions string

	// PaperEvents and PaperInsts are the session sizes reported in
	// Figure 6 (instructions in millions are stored as absolute counts).
	PaperEvents int
	PaperInsts  int64

	// Events is the number of events simulated; MeanEventLen the mean
	// instructions per event (lognormal-ish spread of EventLenSpread).
	Events         int
	MeanEventLen   int
	EventLenSpread float64

	// Handlers is the number of distinct handler types; consecutive
	// events come from different handlers (fine-grained interleaving).
	Handlers int

	// HandlerFootprint is the code bytes reachable per handler type;
	// RuntimeFootprint the shared JS-engine/runtime code all handlers
	// call into; RuntimeFrac the fraction of call sites that target it.
	HandlerFootprint int
	RuntimeFootprint int
	RuntimeFrac      float64

	// LoadFrac/StoreFrac are per-instruction memory mix (of non-branch
	// slots); BranchFrac emerges from the mean basic-block length.
	LoadFrac  float64
	StoreFrac float64

	// SharedData is the application-state data region (bytes);
	// EventHeap the per-event private allocation (cold on first touch);
	// SharedFrac the fraction of new data references into shared state;
	// StrideFrac the probability a load starts a sequential array walk
	// (what a stride/DCU prefetcher can catch);
	// HotFrac is the fraction of shared refs that hit a hot 1/16 subset;
	// ReuseFrac is the probability a data reference re-touches a recent
	// address (temporal locality — it sets the L1-D hit rate).
	SharedData int
	EventHeap  int
	SharedFrac float64
	StrideFrac float64
	HotFrac    float64
	ReuseFrac  float64

	// HotCallFrac is the fraction of call sites that target a small hot
	// subset of functions (code temporal locality — it sets the I-cache
	// behaviour together with the footprints).
	HotCallFrac float64

	// CodeIntensity scales how much code an event of a given length
	// touches (1.0 = suite default; 0 means 1). Code-diverse
	// applications (spreadsheet formulas, map rendering paths) sit
	// above 1.
	CodeIntensity float64

	// DataDepBranch is the fraction of conditional branches whose
	// outcome is data dependent (unpredictable across event instances).
	DataDepBranch float64

	// DepProb is the probability that an event depends on an earlier
	// pending event, making its pre-execution diverge (paper §5: >99%
	// of pre-executions match normal execution).
	DepProb float64

	// QueueNext and QueueSecond are the probabilities that, when an
	// event begins executing, the next (resp. second-next) event is
	// already resident in the event queue (paper §2.2: events wait tens
	// of microseconds; §6.6: a third pending event is rarely visible).
	QueueNext   float64
	QueueSecond float64

	// Timed enables the mobile-web scheduling dimension: events carry
	// class, priority, arrival time and deadline sampled from Mix.
	// Untimed profiles (the paper suite) are byte-identical to builds
	// that predate this field.
	Timed bool

	// Mix is the event-class mix of a timed profile; entries with zero
	// Weight are inactive. Fixed-size so Profile stays comparable.
	Mix [4]ClassSpec

	// DeadlineSlack is added to every sampled deadline, in instruction
	// units. The metamorphic suite uses it to prove slack monotonicity
	// (more slack never increases the miss rate).
	DeadlineSlack int

	// Seed decorrelates applications from one another.
	Seed uint64
}

// ScaleDivisor is the default factor by which paper session sizes are
// divided for the simulated profiles, chosen so the full experiment suite
// runs in minutes. cmd/espsim and cmd/espbench accept -scale to trade
// run time for longer sessions.
const ScaleDivisor = 10

// Validate reports whether the profile's parameters are usable.
func (p *Profile) Validate() error {
	switch {
	case p.Events <= 0:
		return fmt.Errorf("workload %q: Events must be positive", p.Name)
	case p.MeanEventLen < 64:
		return fmt.Errorf("workload %q: MeanEventLen %d too small", p.Name, p.MeanEventLen)
	case p.Handlers <= 0:
		return fmt.Errorf("workload %q: Handlers must be positive", p.Name)
	case p.HandlerFootprint < 4096 || p.RuntimeFootprint < 4096:
		return fmt.Errorf("workload %q: code footprints must be >= 4KiB", p.Name)
	case p.LoadFrac < 0 || p.StoreFrac < 0 || p.LoadFrac+p.StoreFrac > 0.9:
		return fmt.Errorf("workload %q: bad memory mix", p.Name)
	case p.SharedData < 4096 || p.EventHeap < 256:
		return fmt.Errorf("workload %q: data regions too small", p.Name)
	case p.DepProb < 0 || p.DepProb > 1:
		return fmt.Errorf("workload %q: DepProb out of range", p.Name)
	case p.ReuseFrac < 0 || p.ReuseFrac > 0.999:
		return fmt.Errorf("workload %q: ReuseFrac out of range", p.Name)
	case p.HotCallFrac < 0 || p.HotCallFrac > 1:
		return fmt.Errorf("workload %q: HotCallFrac out of range", p.Name)
	case p.CodeIntensity < 0 || p.CodeIntensity > 8:
		return fmt.Errorf("workload %q: CodeIntensity out of range", p.Name)
	case p.QueueNext < 0 || p.QueueNext > 1 || p.QueueSecond < 0 || p.QueueSecond > 1:
		return fmt.Errorf("workload %q: queue probabilities out of range", p.Name)
	case p.DeadlineSlack < 0:
		return fmt.Errorf("workload %q: DeadlineSlack must be non-negative", p.Name)
	}
	if p.Timed {
		active := 0
		for i, cs := range p.Mix {
			if cs.Weight == 0 {
				continue
			}
			switch {
			case cs.Weight < 0:
				return fmt.Errorf("workload %q: Mix[%d] negative Weight", p.Name, i)
			case cs.Class == trace.ClassNone || cs.Class >= trace.NumEventClasses:
				return fmt.Errorf("workload %q: Mix[%d] invalid event class", p.Name, i)
			case cs.MeanGap <= 0:
				return fmt.Errorf("workload %q: Mix[%d] MeanGap must be positive", p.Name, i)
			case cs.DeadlineLo < 0 || cs.DeadlineHi < cs.DeadlineLo:
				return fmt.Errorf("workload %q: Mix[%d] bad deadline window", p.Name, i)
			case cs.LenScale < 0 || cs.LenScale > 8:
				return fmt.Errorf("workload %q: Mix[%d] LenScale out of range", p.Name, i)
			}
			active++
		}
		if active == 0 {
			return fmt.Errorf("workload %q: Timed profile needs at least one active Mix entry", p.Name)
		}
	}
	return nil
}

// TotalInsts returns the approximate instructions the profile simulates.
func (p *Profile) TotalInsts() int64 { return int64(p.Events) * int64(p.MeanEventLen) }

// Scale returns a copy of the profile with event count multiplied by f
// (event lengths are left unchanged so per-event microarchitectural
// behaviour is preserved). f must be positive.
func (p Profile) Scale(f float64) Profile {
	if f <= 0 {
		f = 1
	}
	p.Events = int(float64(p.Events) * f)
	if p.Events < 4 {
		p.Events = 4
	}
	return p
}

func base(name string, seed uint64) Profile {
	return Profile{
		Name:             name,
		EventLenSpread:   0.8,
		Handlers:         24,
		HandlerFootprint: 96 << 10,
		RuntimeFootprint: 384 << 10,
		RuntimeFrac:      0.30,
		LoadFrac:         0.26,
		StoreFrac:        0.10,
		SharedData:       3 << 20,
		EventHeap:        12 << 10,
		SharedFrac:       0.45,
		StrideFrac:       0.004,
		HotFrac:          0.80,
		ReuseFrac:        0.965,
		HotCallFrac:      0.66,
		CodeIntensity:    1.0,
		DataDepBranch:    0.06,
		DepProb:          0.02,
		QueueNext:        0.96,
		QueueSecond:      0.85,
		Seed:             seed,
	}
}

// Amazon models the e-commerce session (search, click result, related
// item): many short events over a large retail-page handler set.
func Amazon() Profile {
	p := base("amazon", 0xA3A201)
	p.PaperEvents, p.PaperInsts = 7787, 434e6
	p.Actions = "Search for a pair of headphones, click on one result, go to a related item"
	p.Events, p.MeanEventLen = 380, 5600
	p.Handlers = 30
	return p
}

// Bing models the search session: short events, moderate footprint.
func Bing() Profile {
	p := base("bing", 0xB1B902)
	p.PaperEvents, p.PaperInsts = 4858, 259e6
	p.Actions = `Search for the term "Roger Federer", go to new results`
	p.Events, p.MeanEventLen = 250, 5300
	p.Handlers = 22
	p.HandlerFootprint = 72 << 10
	return p
}

// CNN models the news session: very many events, large article DOM state.
func CNN() Profile {
	p := base("cnn", 0xC2C903)
	p.PaperEvents, p.PaperInsts = 13409, 1230e6
	p.Actions = "Click on the headline, go to world news"
	p.Events, p.MeanEventLen = 300, 9200
	p.Handlers = 34
	p.SharedData = 4 << 20
	return p
}

// Facebook models the social-networking session: longer events, heavy
// shared state, more inter-event dependence.
func Facebook() Profile {
	p := base("facebook", 0xF4F904)
	p.PaperEvents, p.PaperInsts = 9305, 2165e6
	p.Actions = "Visit own homepage, go to communities, go to pictures"
	p.Events, p.MeanEventLen = 110, 23300
	p.Handlers = 36
	p.HandlerFootprint = 112 << 10
	p.DepProb = 0.03
	return p
}

// GMaps models the interactive-maps session: long compute-heavy events
// (tile math), data-intensive with some strided access.
func GMaps() Profile {
	p := base("gmaps", 0x69A905)
	p.PaperEvents, p.PaperInsts = 7298, 2722e6
	p.Actions = "Search for two addresses, get driving, public transit and biking directions"
	p.Events, p.MeanEventLen = 64, 37300
	p.Handlers = 28
	p.StrideFrac = 0.02
	p.SharedData = 5 << 20
	p.CodeIntensity = 1.7
	p.ReuseFrac = 0.977
	return p
}

// GDocs models the spreadsheet session: the longest events in the suite.
func GDocs() Profile {
	p := base("gdocs", 0x6D0906)
	p.PaperEvents, p.PaperInsts = 1714, 809e6
	p.Actions = "Open a spreadsheet, insert data, add 5 values"
	p.Events, p.MeanEventLen = 44, 47200
	p.Handlers = 26
	p.HandlerFootprint = 128 << 10
	p.CodeIntensity = 1.7
	p.ReuseFrac = 0.977
	return p
}

// Pixlr models the image-editing session: a small number of filter
// events, the smallest session in the suite, heavily strided pixel data.
func Pixlr() Profile {
	p := base("pixlr", 0x919707)
	p.PaperEvents, p.PaperInsts = 465, 26e6
	p.Actions = "Add various filters to an image uploaded from the computer"
	p.Events, p.MeanEventLen = 96, 5600
	p.Handlers = 14
	p.StrideFrac = 0.035
	p.HandlerFootprint = 64 << 10
	p.SharedData = 2 << 20
	return p
}

// MobileWeb models an interactive mobile browsing session at moderate
// load (~0.6 looper utilization): taps and scrolls (input), frame
// callbacks (render), timers, and network completions, each with the
// deadline windows PES reports for its class — input wants ~100 ms
// budgets, frames ~2 vsyncs, timers and network are elastic. Deadlines
// and gaps are in instruction units on the same virtual clock the
// scheduler simulates.
func MobileWeb() Profile {
	p := base("mobileweb", 0x30B11E08)
	p.Actions = "Scroll a news feed, tap two stories, pull to refresh"
	p.Events, p.MeanEventLen = 320, 5200
	p.Handlers = 28
	p.Timed = true
	p.Mix = [4]ClassSpec{
		{Class: trace.ClassInput, Weight: 0.25, Prio: 0, MeanGap: 9000, DeadlineLo: 8000, DeadlineHi: 16000, LenScale: 0.6},
		{Class: trace.ClassRender, Weight: 0.30, Prio: 1, MeanGap: 7000, DeadlineLo: 16000, DeadlineHi: 32000, LenScale: 1.0},
		{Class: trace.ClassTimer, Weight: 0.25, Prio: 2, MeanGap: 9000, DeadlineLo: 40000, DeadlineHi: 80000, LenScale: 1.1},
		{Class: trace.ClassNetwork, Weight: 0.20, Prio: 3, MeanGap: 12000, DeadlineLo: 80000, DeadlineHi: 160000, LenScale: 1.4},
	}
	return p
}

// MobileHeavy is the overload variant (~0.9 looper utilization): the
// same class structure under a burstier cadence, where scheduling
// policy — not raw speed — decides which deadlines are sacrificed.
func MobileHeavy() Profile {
	p := base("mobileheavy", 0x30B11E09)
	p.Actions = "Open a media-heavy page mid-load, scroll while ads and trackers fire"
	p.Events, p.MeanEventLen = 280, 6400
	p.Handlers = 32
	p.Timed = true
	p.Mix = [4]ClassSpec{
		{Class: trace.ClassInput, Weight: 0.25, Prio: 0, MeanGap: 7000, DeadlineLo: 10000, DeadlineHi: 20000, LenScale: 0.6},
		{Class: trace.ClassRender, Weight: 0.30, Prio: 1, MeanGap: 6000, DeadlineLo: 16000, DeadlineHi: 33000, LenScale: 1.0},
		{Class: trace.ClassTimer, Weight: 0.25, Prio: 2, MeanGap: 7000, DeadlineLo: 50000, DeadlineHi: 100000, LenScale: 1.1},
		{Class: trace.ClassNetwork, Weight: 0.20, Prio: 3, MeanGap: 9000, DeadlineLo: 90000, DeadlineHi: 180000, LenScale: 1.5},
	}
	return p
}

// Suite returns the seven paper benchmarks in figure order.
func Suite() []Profile {
	return []Profile{Amazon(), Bing(), CNN(), Facebook(), GMaps(), GDocs(), Pixlr()}
}

// MobileSuite returns the timed mobile-web profiles. They are kept out
// of Suite so the paper's figures and the default sweep grid are
// unchanged; espd and espsim accept them by name.
func MobileSuite() []Profile {
	return []Profile{MobileWeb(), MobileHeavy()}
}

// ByName returns the named profile, or an error listing valid names.
func ByName(name string) (Profile, error) {
	all := append(Suite(), MobileSuite()...)
	for _, p := range all {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, 0, len(all))
	for _, p := range all {
		names = append(names, p.Name)
	}
	return Profile{}, fmt.Errorf("workload: unknown application %q (valid: %v)", name, names)
}
