// Package workload synthesizes asynchronous-program instruction traces
// that are statistically calibrated to the seven Web 2.0 applications the
// paper evaluates (Figure 6): amazon, bing, cnn, facebook, gmaps, gdocs
// and pixlr.
//
// The paper recorded Chromium renderer-process traces of live browsing
// sessions; those traces are not available, so this package substitutes a
// deterministic generator that reproduces the execution properties ESP
// exploits (DESIGN.md §2): many short events of varied handler types,
// large instruction footprints, cold data misses, mostly-independent
// events that occasionally depend on a predecessor, and events resident in
// the queue before they run.
package workload

import "fmt"

// Profile describes one application workload. The seven presets are
// scaled-down versions of the paper's sessions (Figure 6): event lengths
// and counts are divided by ScaleDivisor while the ratios between
// applications — and the footprint-to-cache-size ratios that produce the
// paper's miss rates — are preserved.
type Profile struct {
	// Name is the application name as it appears in the paper's figures;
	// Actions describes the browsing session (Figure 6's "Actions
	// performed" column).
	Name    string
	Actions string

	// PaperEvents and PaperInsts are the session sizes reported in
	// Figure 6 (instructions in millions are stored as absolute counts).
	PaperEvents int
	PaperInsts  int64

	// Events is the number of events simulated; MeanEventLen the mean
	// instructions per event (lognormal-ish spread of EventLenSpread).
	Events         int
	MeanEventLen   int
	EventLenSpread float64

	// Handlers is the number of distinct handler types; consecutive
	// events come from different handlers (fine-grained interleaving).
	Handlers int

	// HandlerFootprint is the code bytes reachable per handler type;
	// RuntimeFootprint the shared JS-engine/runtime code all handlers
	// call into; RuntimeFrac the fraction of call sites that target it.
	HandlerFootprint int
	RuntimeFootprint int
	RuntimeFrac      float64

	// LoadFrac/StoreFrac are per-instruction memory mix (of non-branch
	// slots); BranchFrac emerges from the mean basic-block length.
	LoadFrac  float64
	StoreFrac float64

	// SharedData is the application-state data region (bytes);
	// EventHeap the per-event private allocation (cold on first touch);
	// SharedFrac the fraction of new data references into shared state;
	// StrideFrac the probability a load starts a sequential array walk
	// (what a stride/DCU prefetcher can catch);
	// HotFrac is the fraction of shared refs that hit a hot 1/16 subset;
	// ReuseFrac is the probability a data reference re-touches a recent
	// address (temporal locality — it sets the L1-D hit rate).
	SharedData int
	EventHeap  int
	SharedFrac float64
	StrideFrac float64
	HotFrac    float64
	ReuseFrac  float64

	// HotCallFrac is the fraction of call sites that target a small hot
	// subset of functions (code temporal locality — it sets the I-cache
	// behaviour together with the footprints).
	HotCallFrac float64

	// CodeIntensity scales how much code an event of a given length
	// touches (1.0 = suite default; 0 means 1). Code-diverse
	// applications (spreadsheet formulas, map rendering paths) sit
	// above 1.
	CodeIntensity float64

	// DataDepBranch is the fraction of conditional branches whose
	// outcome is data dependent (unpredictable across event instances).
	DataDepBranch float64

	// DepProb is the probability that an event depends on an earlier
	// pending event, making its pre-execution diverge (paper §5: >99%
	// of pre-executions match normal execution).
	DepProb float64

	// QueueNext and QueueSecond are the probabilities that, when an
	// event begins executing, the next (resp. second-next) event is
	// already resident in the event queue (paper §2.2: events wait tens
	// of microseconds; §6.6: a third pending event is rarely visible).
	QueueNext   float64
	QueueSecond float64

	// Seed decorrelates applications from one another.
	Seed uint64
}

// ScaleDivisor is the default factor by which paper session sizes are
// divided for the simulated profiles, chosen so the full experiment suite
// runs in minutes. cmd/espsim and cmd/espbench accept -scale to trade
// run time for longer sessions.
const ScaleDivisor = 10

// Validate reports whether the profile's parameters are usable.
func (p *Profile) Validate() error {
	switch {
	case p.Events <= 0:
		return fmt.Errorf("workload %q: Events must be positive", p.Name)
	case p.MeanEventLen < 64:
		return fmt.Errorf("workload %q: MeanEventLen %d too small", p.Name, p.MeanEventLen)
	case p.Handlers <= 0:
		return fmt.Errorf("workload %q: Handlers must be positive", p.Name)
	case p.HandlerFootprint < 4096 || p.RuntimeFootprint < 4096:
		return fmt.Errorf("workload %q: code footprints must be >= 4KiB", p.Name)
	case p.LoadFrac < 0 || p.StoreFrac < 0 || p.LoadFrac+p.StoreFrac > 0.9:
		return fmt.Errorf("workload %q: bad memory mix", p.Name)
	case p.SharedData < 4096 || p.EventHeap < 256:
		return fmt.Errorf("workload %q: data regions too small", p.Name)
	case p.DepProb < 0 || p.DepProb > 1:
		return fmt.Errorf("workload %q: DepProb out of range", p.Name)
	case p.ReuseFrac < 0 || p.ReuseFrac > 0.999:
		return fmt.Errorf("workload %q: ReuseFrac out of range", p.Name)
	case p.HotCallFrac < 0 || p.HotCallFrac > 1:
		return fmt.Errorf("workload %q: HotCallFrac out of range", p.Name)
	case p.CodeIntensity < 0 || p.CodeIntensity > 8:
		return fmt.Errorf("workload %q: CodeIntensity out of range", p.Name)
	case p.QueueNext < 0 || p.QueueNext > 1 || p.QueueSecond < 0 || p.QueueSecond > 1:
		return fmt.Errorf("workload %q: queue probabilities out of range", p.Name)
	}
	return nil
}

// TotalInsts returns the approximate instructions the profile simulates.
func (p *Profile) TotalInsts() int64 { return int64(p.Events) * int64(p.MeanEventLen) }

// Scale returns a copy of the profile with event count multiplied by f
// (event lengths are left unchanged so per-event microarchitectural
// behaviour is preserved). f must be positive.
func (p Profile) Scale(f float64) Profile {
	if f <= 0 {
		f = 1
	}
	p.Events = int(float64(p.Events) * f)
	if p.Events < 4 {
		p.Events = 4
	}
	return p
}

func base(name string, seed uint64) Profile {
	return Profile{
		Name:             name,
		EventLenSpread:   0.8,
		Handlers:         24,
		HandlerFootprint: 96 << 10,
		RuntimeFootprint: 384 << 10,
		RuntimeFrac:      0.30,
		LoadFrac:         0.26,
		StoreFrac:        0.10,
		SharedData:       3 << 20,
		EventHeap:        12 << 10,
		SharedFrac:       0.45,
		StrideFrac:       0.004,
		HotFrac:          0.80,
		ReuseFrac:        0.965,
		HotCallFrac:      0.66,
		CodeIntensity:    1.0,
		DataDepBranch:    0.06,
		DepProb:          0.02,
		QueueNext:        0.96,
		QueueSecond:      0.85,
		Seed:             seed,
	}
}

// Amazon models the e-commerce session (search, click result, related
// item): many short events over a large retail-page handler set.
func Amazon() Profile {
	p := base("amazon", 0xA3A201)
	p.PaperEvents, p.PaperInsts = 7787, 434e6
	p.Actions = "Search for a pair of headphones, click on one result, go to a related item"
	p.Events, p.MeanEventLen = 380, 5600
	p.Handlers = 30
	return p
}

// Bing models the search session: short events, moderate footprint.
func Bing() Profile {
	p := base("bing", 0xB1B902)
	p.PaperEvents, p.PaperInsts = 4858, 259e6
	p.Actions = `Search for the term "Roger Federer", go to new results`
	p.Events, p.MeanEventLen = 250, 5300
	p.Handlers = 22
	p.HandlerFootprint = 72 << 10
	return p
}

// CNN models the news session: very many events, large article DOM state.
func CNN() Profile {
	p := base("cnn", 0xC2C903)
	p.PaperEvents, p.PaperInsts = 13409, 1230e6
	p.Actions = "Click on the headline, go to world news"
	p.Events, p.MeanEventLen = 300, 9200
	p.Handlers = 34
	p.SharedData = 4 << 20
	return p
}

// Facebook models the social-networking session: longer events, heavy
// shared state, more inter-event dependence.
func Facebook() Profile {
	p := base("facebook", 0xF4F904)
	p.PaperEvents, p.PaperInsts = 9305, 2165e6
	p.Actions = "Visit own homepage, go to communities, go to pictures"
	p.Events, p.MeanEventLen = 110, 23300
	p.Handlers = 36
	p.HandlerFootprint = 112 << 10
	p.DepProb = 0.03
	return p
}

// GMaps models the interactive-maps session: long compute-heavy events
// (tile math), data-intensive with some strided access.
func GMaps() Profile {
	p := base("gmaps", 0x69A905)
	p.PaperEvents, p.PaperInsts = 7298, 2722e6
	p.Actions = "Search for two addresses, get driving, public transit and biking directions"
	p.Events, p.MeanEventLen = 64, 37300
	p.Handlers = 28
	p.StrideFrac = 0.02
	p.SharedData = 5 << 20
	p.CodeIntensity = 1.7
	p.ReuseFrac = 0.977
	return p
}

// GDocs models the spreadsheet session: the longest events in the suite.
func GDocs() Profile {
	p := base("gdocs", 0x6D0906)
	p.PaperEvents, p.PaperInsts = 1714, 809e6
	p.Actions = "Open a spreadsheet, insert data, add 5 values"
	p.Events, p.MeanEventLen = 44, 47200
	p.Handlers = 26
	p.HandlerFootprint = 128 << 10
	p.CodeIntensity = 1.7
	p.ReuseFrac = 0.977
	return p
}

// Pixlr models the image-editing session: a small number of filter
// events, the smallest session in the suite, heavily strided pixel data.
func Pixlr() Profile {
	p := base("pixlr", 0x919707)
	p.PaperEvents, p.PaperInsts = 465, 26e6
	p.Actions = "Add various filters to an image uploaded from the computer"
	p.Events, p.MeanEventLen = 96, 5600
	p.Handlers = 14
	p.StrideFrac = 0.035
	p.HandlerFootprint = 64 << 10
	p.SharedData = 2 << 20
	return p
}

// Suite returns the seven paper benchmarks in figure order.
func Suite() []Profile {
	return []Profile{Amazon(), Bing(), CNN(), Facebook(), GMaps(), GDocs(), Pixlr()}
}

// ByName returns the named profile, or an error listing valid names.
func ByName(name string) (Profile, error) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, 0, 7)
	for _, p := range Suite() {
		names = append(names, p.Name)
	}
	return Profile{}, fmt.Errorf("workload: unknown application %q (valid: %v)", name, names)
}
