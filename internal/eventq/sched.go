package eventq

import (
	"fmt"
	"math"
	"sort"

	"espsim/internal/stats"
	"espsim/internal/trace"
)

// This file makes the order in which the looper drains the event queue a
// first-class, pluggable dimension. The paper's evaluation drains FIFO;
// PES (see PAPERS.md) shows mobile-web responsiveness is won by
// reordering the queue around deadlines, and "Asynchronous Programming
// in a Prioritized Form" supplies the priority semantics. A Schedule is
// materialized once at workload build time from event metadata alone —
// it is part of the immutable workload plane, so warm replay stays
// allocation-zero and bit-identical regardless of policy.

// SchedPolicy selects how ready events are ordered for dispatch.
type SchedPolicy uint8

const (
	// SchedFIFO dispatches events in arrival order (the paper's model).
	SchedFIFO SchedPolicy = iota
	// SchedPriority dispatches the lowest-Prio ready event first
	// (strict priority; lower value = more urgent).
	SchedPriority
	// SchedEDF dispatches the ready event with the earliest deadline
	// first; events without deadlines run after all deadlined work.
	SchedEDF
	// SchedSlack is the PES-style deadline-aware policy: it dispatches
	// the ready event with the least slack (deadline minus service
	// time) first, so long events near their deadlines preempt short
	// events with room to spare.
	SchedSlack

	// NumSchedPolicies is the number of defined policies.
	NumSchedPolicies = 4
)

// String returns the policy's canonical name.
func (p SchedPolicy) String() string {
	switch p {
	case SchedFIFO:
		return "fifo"
	case SchedPriority:
		return "prio"
	case SchedEDF:
		return "edf"
	case SchedSlack:
		return "slack"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Valid reports whether p names a defined policy.
func (p SchedPolicy) Valid() bool { return p < NumSchedPolicies }

// SchedNames lists the canonical policy names in policy order.
func SchedNames() []string { return []string{"fifo", "prio", "edf", "slack"} }

// SchedByName resolves a policy name. The empty string is FIFO, so
// callers that never mention scheduling get the paper's drain order.
func SchedByName(name string) (SchedPolicy, error) {
	switch name {
	case "", "fifo":
		return SchedFIFO, nil
	case "prio", "priority":
		return SchedPriority, nil
	case "edf":
		return SchedEDF, nil
	case "slack", "pes":
		return SchedSlack, nil
	default:
		return 0, fmt.Errorf("eventq: unknown scheduler policy %q (have %v)", name, SchedNames())
	}
}

// A Scheduler orders ready events for dispatch. Less reports whether a
// should dispatch before b when both are ready; it must be a pure
// function of the two events (a strict weak ordering), because the
// dispatch loop breaks remaining ties by queue position to keep
// schedules deterministic.
type Scheduler interface {
	// Name labels the scheduler in stats and config strings.
	Name() string
	// Less reports whether ready event a dispatches before ready
	// event b.
	Less(a, b trace.Event) bool
}

// ForPolicy returns the built-in Scheduler implementing p.
func ForPolicy(p SchedPolicy) (Scheduler, error) {
	switch p {
	case SchedFIFO:
		return fifoSched{}, nil
	case SchedPriority:
		return prioSched{}, nil
	case SchedEDF:
		return edfSched{}, nil
	case SchedSlack:
		return slackSched{}, nil
	default:
		return nil, fmt.Errorf("eventq: invalid scheduler policy %d", uint8(p))
	}
}

// effDeadline maps "no deadline" (zero) to +inf so deadline-aware
// policies run undeadlined events after all deadlined work.
func effDeadline(e trace.Event) int64 {
	if e.Deadline == 0 {
		return math.MaxInt64
	}
	return e.Deadline
}

// satAdd returns a+b, saturating at the int64 range instead of
// wrapping. Hostile traces carry deadlines near the integer extremes;
// schedule arithmetic must stay ordered, not overflow.
func satAdd(a, b int64) int64 {
	s := a + b
	if b > 0 && s < a {
		return math.MaxInt64
	}
	if b < 0 && s > a {
		return math.MinInt64
	}
	return s
}

// satSub returns a-b with the same saturation rule.
func satSub(a, b int64) int64 {
	if b == math.MinInt64 {
		// -b overflows; a - MinInt64 == a + MaxInt64 + 1.
		return satAdd(satAdd(a, math.MaxInt64), 1)
	}
	return satAdd(a, -b)
}

// effSlack is the slack policy's static key. Slack at any common
// decision time t is deadline - t - service; the shared t cancels, so
// deadline - service orders candidates identically at every decision
// point. An event with no deadline has infinite slack — subtracting a
// finite service time from infinity is still infinity, which keeps
// untimed events tied (FIFO degeneration) rather than ordered by length.
func effSlack(e trace.Event) int64 {
	if e.Deadline == 0 {
		return math.MaxInt64
	}
	return satSub(e.Deadline, serviceLen(e))
}

// serviceLen clamps an event's instruction count to a non-negative
// service time (hostile traces can carry negative lengths).
func serviceLen(e trace.Event) int64 {
	if e.Len < 0 {
		return 0
	}
	return int64(e.Len)
}

type fifoSched struct{}

func (fifoSched) Name() string { return "fifo" }
func (fifoSched) Less(a, b trace.Event) bool {
	return a.Arrival < b.Arrival
}

type prioSched struct{}

func (prioSched) Name() string { return "prio" }
func (prioSched) Less(a, b trace.Event) bool {
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.Arrival < b.Arrival
}

type edfSched struct{}

func (edfSched) Name() string { return "edf" }
func (edfSched) Less(a, b trace.Event) bool {
	da, db := effDeadline(a), effDeadline(b)
	if da != db {
		return da < db
	}
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.Arrival < b.Arrival
}

type slackSched struct{}

func (slackSched) Name() string { return "slack" }
func (slackSched) Less(a, b trace.Event) bool {
	sa, sb := effSlack(a), effSlack(b)
	if sa != sb {
		return sa < sb
	}
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.Arrival < b.Arrival
}

// ClassLatency is the responsiveness summary for one event class under
// one schedule: latency percentiles (completion minus arrival, in
// instruction units) and deadline outcomes.
type ClassLatency struct {
	Class     string  `json:"class"`
	Events    int     `json:"events"`
	P50       float64 `json:"p50"`
	P95       float64 `json:"p95"`
	P99       float64 `json:"p99"`
	Deadlined int     `json:"deadlined,omitempty"`
	Misses    int     `json:"misses,omitempty"`
	MissRate  float64 `json:"miss_rate,omitempty"`
}

// SchedStats summarizes a schedule's responsiveness: deadline outcomes,
// priority inversions, and per-class latency percentiles. All figures
// are pure functions of event metadata, computed once at build time.
type SchedStats struct {
	Policy             string         `json:"policy"`
	Events             int            `json:"events"`
	Deadlined          int            `json:"deadlined"`
	DeadlineMisses     int            `json:"deadline_misses"`
	MissRate           float64        `json:"miss_rate"`
	PriorityInversions int            `json:"priority_inversions"`
	Classes            []ClassLatency `json:"classes,omitempty"`
}

// Schedule is a materialized dispatch order for one event list: the
// permutation the looper replays, the virtual dispatch and completion
// time of each slot, and the responsiveness stats those times imply. It
// is immutable after construction and shared by every machine replaying
// the workload.
//
//esp:plane eventq
type Schedule struct {
	// Order[k] is the index (into the scheduled event list) of the
	// event dispatched k-th. It is a permutation of [0, len).
	Order []int32
	// Dispatch[k] and Complete[k] are the virtual times at which the
	// k-th dispatched event starts and finishes.
	Dispatch []int64
	Complete []int64
	// Stats summarizes deadline and latency outcomes of this order.
	Stats SchedStats
}

// BuildSchedule simulates a single non-preemptive virtual-time dispatch
// loop over evs under the named policy and returns the materialized
// schedule. Virtual time advances in instruction units: an event is
// ready once its Arrival has passed, the scheduler picks among ready
// events, and dispatching an event occupies the looper for its service
// length. Untimed events (all arrivals zero) are all ready at once, so
// every policy degenerates to a deterministic tie-break on queue
// position — FIFO order.
//
//esp:ctor
func BuildSchedule(evs []trace.Event, policy SchedPolicy) (*Schedule, error) {
	sched, err := ForPolicy(policy)
	if err != nil {
		return nil, err
	}
	return BuildScheduleWith(evs, sched), nil
}

// BuildScheduleWith is BuildSchedule with a caller-supplied Scheduler.
//
//esp:ctor
func BuildScheduleWith(evs []trace.Event, sched Scheduler) *Schedule {
	n := len(evs)
	order := make([]int32, 0, n)
	dispatch := make([]int64, 0, n)
	complete := make([]int64, 0, n)

	// Admit events into the ready heap in arrival order.
	byArr := make([]int32, n)
	for i := range byArr {
		byArr[i] = int32(i)
	}
	sort.SliceStable(byArr, func(a, b int) bool {
		return evs[byArr[a]].Arrival < evs[byArr[b]].Arrival
	})

	h := readyHeap{evs: evs, sched: sched}
	var prioReady [256]int32
	inversions := 0
	var t int64
	if n > 0 {
		t = evs[byArr[0]].Arrival
	}
	next := 0
	for len(order) < n {
		for next < n && evs[byArr[next]].Arrival <= t {
			h.push(byArr[next])
			prioReady[evs[byArr[next]].Prio]++
			next++
		}
		if h.empty() {
			t = evs[byArr[next]].Arrival
			continue
		}
		i := h.pop()
		p := evs[i].Prio
		prioReady[p]--
		for q := uint8(0); q < p; q++ {
			// A more urgent event was ready and had to wait: one
			// priority inversion, counted once per dispatch.
			if prioReady[q] > 0 {
				inversions++
				break
			}
		}
		c := satAdd(t, serviceLen(evs[i]))
		order = append(order, i)
		dispatch = append(dispatch, t)
		complete = append(complete, c)
		t = c
	}

	return &Schedule{
		Order:    order,
		Dispatch: dispatch,
		Complete: complete,
		Stats:    scheduleStats(evs, sched.Name(), order, complete, inversions),
	}
}

// scheduleStats computes the responsiveness summary for a dispatch
// order: per-class latency percentiles, deadline misses, and the
// inversion count observed during dispatch.
func scheduleStats(evs []trace.Event, policy string, order []int32, complete []int64, inversions int) SchedStats {
	st := SchedStats{
		Policy:             policy,
		Events:             len(order),
		PriorityInversions: inversions,
	}
	var lats [trace.NumEventClasses][]float64
	var deadlined, misses [trace.NumEventClasses]int
	for k, i := range order {
		ev := evs[i]
		cl := ev.Class
		if int(cl) >= trace.NumEventClasses {
			cl = trace.ClassNone
		}
		lats[cl] = append(lats[cl], float64(satSub(complete[k], ev.Arrival)))
		if ev.Deadline != 0 {
			st.Deadlined++
			deadlined[cl]++
			if complete[k] > ev.Deadline {
				st.DeadlineMisses++
				misses[cl]++
			}
		}
	}
	if st.Deadlined > 0 {
		st.MissRate = float64(st.DeadlineMisses) / float64(st.Deadlined)
	}
	for c := 0; c < trace.NumEventClasses; c++ {
		if len(lats[c]) == 0 {
			continue
		}
		cl := ClassLatency{
			Class:     trace.EventClass(c).String(),
			Events:    len(lats[c]),
			P50:       stats.Percentile(lats[c], 0.50),
			P95:       stats.Percentile(lats[c], 0.95),
			P99:       stats.Percentile(lats[c], 0.99),
			Deadlined: deadlined[c],
			Misses:    misses[c],
		}
		if deadlined[c] > 0 {
			cl.MissRate = float64(misses[c]) / float64(deadlined[c])
		}
		st.Classes = append(st.Classes, cl)
	}
	return st
}

// readyHeap is a binary min-heap of ready event indices, ordered by the
// scheduler's Less with queue position as the final tie-break (so every
// pop is deterministic even when the policy is indifferent).
type readyHeap struct {
	evs   []trace.Event
	sched Scheduler
	idx   []int32
}

func (h *readyHeap) empty() bool { return len(h.idx) == 0 }

func (h *readyHeap) less(a, b int32) bool {
	if h.sched.Less(h.evs[a], h.evs[b]) {
		return true
	}
	if h.sched.Less(h.evs[b], h.evs[a]) {
		return false
	}
	return a < b
}

func (h *readyHeap) push(i int32) {
	h.idx = append(h.idx, i)
	k := len(h.idx) - 1
	for k > 0 {
		parent := (k - 1) / 2
		if !h.less(h.idx[k], h.idx[parent]) {
			break
		}
		h.idx[k], h.idx[parent] = h.idx[parent], h.idx[k]
		k = parent
	}
}

func (h *readyHeap) pop() int32 {
	top := h.idx[0]
	last := len(h.idx) - 1
	h.idx[0] = h.idx[last]
	h.idx = h.idx[:last]
	k := 0
	for {
		l, r := 2*k+1, 2*k+2
		small := k
		if l < len(h.idx) && h.less(h.idx[l], h.idx[small]) {
			small = l
		}
		if r < len(h.idx) && h.less(h.idx[r], h.idx[small]) {
			small = r
		}
		if small == k {
			break
		}
		h.idx[k], h.idx[small] = h.idx[small], h.idx[k]
		k = small
	}
	return top
}
