// Package eventq models the software side of the asynchronous runtime:
// the looper thread that dequeues events from the event queue and executes
// them one at a time (paper §2.2, Figure 2), and the enqueue/dequeue
// intrinsics that expose the queue to the hardware (§4.1).
package eventq

import (
	"espsim/internal/cpu"
	"espsim/internal/trace"
	"espsim/internal/workload"
)

// LooperOverhead is the number of queue-management instructions the
// looper thread executes between events. The paper measures about 70 and
// ESP uses that window to start prefetching before an event begins (§3.6).
const LooperOverhead = 70

// Source supplies the ordered events of a session, their instruction
// streams, and the queue-occupancy view the hardware event queue sees.
type Source interface {
	// Len returns the number of events in the session.
	Len() int
	// Event returns event i's metadata.
	Event(i int) trace.Event
	// Insts materializes event i's dynamic instruction stream. When
	// speculative is true the stream is the pre-execution variant (which
	// diverges at Event(i).Diverge if the event depends on a skipped
	// predecessor).
	Insts(i int, speculative bool) []trace.Inst
	// Pending returns the future events visible in the queue when event
	// i starts executing (at most two, matching the 2-entry hardware
	// event queue).
	Pending(i int) []trace.Event
}

// SessionSource adapts a synthetic workload session to Source.
// MaxPending widens the queue view beyond the default two entries for the
// Figure 13 deep jump-ahead study.
type SessionSource struct {
	S          *workload.Session
	MaxPending int
}

// Len implements Source.
func (ss SessionSource) Len() int { return len(ss.S.Events) }

// Event implements Source.
func (ss SessionSource) Event(i int) trace.Event { return ss.S.Events[i] }

// Insts implements Source.
func (ss SessionSource) Insts(i int, speculative bool) []trace.Inst {
	ev := ss.S.Events[i]
	return trace.Record(ss.S.Gen.Stream(ev, speculative), ev.Len)
}

// Pending implements Source.
func (ss SessionSource) Pending(i int) []trace.Event {
	n := ss.MaxPending
	if n <= 0 {
		n = 2
	}
	return ss.S.PendingN(i, n)
}

// TraceSource adapts recorded traces (e.g. loaded from an ESPT file) to
// Source. Speculative streams equal normal streams, and queue occupancy
// is always full — recorded traces carry no arrival information.
type TraceSource struct{ Events []trace.EventTrace }

// Len implements Source.
func (ts TraceSource) Len() int { return len(ts.Events) }

// Event implements Source.
func (ts TraceSource) Event(i int) trace.Event { return ts.Events[i].Event }

// Insts implements Source.
func (ts TraceSource) Insts(i int, _ bool) []trace.Inst { return ts.Events[i].Insts }

// Pending implements Source.
func (ts TraceSource) Pending(i int) []trace.Event {
	var out []trace.Event
	for j := i + 1; j <= i+2 && j < len(ts.Events); j++ {
		out = append(out, ts.Events[j].Event)
	}
	return out
}

// Looper drives a session through a core: the simulated equivalent of the
// browser's looper thread polling the event queue.
type Looper struct {
	Src  Source
	Core *cpu.Core

	// MaxEvents truncates the session when positive (for tests).
	MaxEvents int
}

// Run executes the whole session and returns total cycles consumed.
func (l *Looper) Run() int64 {
	n := l.Src.Len()
	if l.MaxEvents > 0 && l.MaxEvents < n {
		n = l.MaxEvents
	}
	start := l.Core.Stats.Cycles
	assist := l.Core.Assist
	for i := 0; i < n; i++ {
		ev := l.Src.Event(i)
		insts := l.Src.Insts(i, false)
		if assist != nil {
			assist.EventStart(ev, insts, l.Src.Pending(i))
		}
		l.Core.BeginEvent(ev.Handler)
		// Queue management runs between dequeue and handler entry; ESP
		// overlaps its pre-event prefetches with it (§3.6).
		l.Core.RunFiller(LooperOverhead)
		l.Core.RunEvent(insts)
		if assist != nil {
			assist.EventEnd(ev)
		}
		// The handler returned to the looper's dispatch loop: the call
		// stack (and with it the RAS) is realigned to the loop's depth.
		l.Core.BP.ClearRAS()
	}
	return l.Core.Stats.Cycles - start
}
