// Package eventq models the software side of the asynchronous runtime:
// the looper thread that dequeues events from the event queue and executes
// them one at a time (paper §2.2, Figure 2), and the enqueue/dequeue
// intrinsics that expose the queue to the hardware (§4.1).
package eventq

import (
	"espsim/internal/cpu"
	"espsim/internal/trace"
	"espsim/internal/workload"
)

// LooperOverhead is the number of queue-management instructions the
// looper thread executes between events. The paper measures about 70 and
// ESP uses that window to start prefetching before an event begins (§3.6).
const LooperOverhead = 70

// Source supplies the ordered events of a session, their instruction
// streams, and the queue-occupancy view the hardware event queue sees.
type Source interface {
	// Len returns the number of events in the session.
	Len() int
	// Event returns event i's metadata.
	Event(i int) trace.Event
	// Insts materializes event i's dynamic instruction stream. When
	// speculative is true the stream is the pre-execution variant (which
	// diverges at Event(i).Diverge if the event depends on a skipped
	// predecessor).
	Insts(i int, speculative bool) []trace.Inst
	// Pending returns the future events visible in the queue when event
	// i starts executing (at most two, matching the 2-entry hardware
	// event queue).
	Pending(i int) []trace.Event
}

// FlatSource is implemented by sources whose queue views can be produced
// without building a slice per call: PendingInto appends event i's view
// to buf and returns the extended slice, so a caller that owns buf reads
// queue views allocation-free and without aliasing source internals.
// Looper prefers this path via type assertion; span-backed sources
// (sim.Workload views) and the scratch-backed legacy sources implement it.
type FlatSource interface {
	Source
	PendingInto(i int, buf []trace.Event) []trace.Event
}

// SessionSource adapts a synthetic workload session to Source.
// MaxPending widens the queue view beyond the default two entries for the
// Figure 13 deep jump-ahead study.
type SessionSource struct {
	S          *workload.Session
	MaxPending int
}

// Len implements Source.
func (ss SessionSource) Len() int { return len(ss.S.Events) }

// Event implements Source.
func (ss SessionSource) Event(i int) trace.Event { return ss.S.Events[i] }

// Insts implements Source.
func (ss SessionSource) Insts(i int, speculative bool) []trace.Inst {
	ev := ss.S.Events[i]
	return trace.Record(ss.S.Gen.Stream(ev, speculative), ev.Len)
}

// Pending implements Source.
func (ss SessionSource) Pending(i int) []trace.Event {
	n := ss.MaxPending
	if n <= 0 {
		n = 2
	}
	return ss.S.PendingN(i, n)
}

// PendingInto implements FlatSource.
func (ss SessionSource) PendingInto(i int, buf []trace.Event) []trace.Event {
	return append(buf, ss.Pending(i)...)
}

// TraceSource adapts recorded traces (e.g. loaded from an ESPT file) to
// Source. Speculative streams equal normal streams, and queue occupancy
// is always full — recorded traces carry no arrival information.
//
// Methods are on the pointer: Pending reuses a receiver-resident scratch
// array sized for the 2-entry hardware queue, so a replay loop calling it
// per event never touches the heap. The returned view is valid until the
// next Pending call; concurrent replays must use separate TraceSources
// (or the caller-buffered PendingInto).
type TraceSource struct {
	Events []trace.EventTrace

	pend [2]trace.Event
}

// Len implements Source.
func (ts *TraceSource) Len() int { return len(ts.Events) }

// Event implements Source.
func (ts *TraceSource) Event(i int) trace.Event { return ts.Events[i].Event }

// Insts implements Source.
func (ts *TraceSource) Insts(i int, _ bool) []trace.Inst { return ts.Events[i].Insts }

// Pending implements Source.
func (ts *TraceSource) Pending(i int) []trace.Event {
	n := 0
	for j := i + 1; j <= i+2 && j < len(ts.Events); j++ {
		ts.pend[n] = ts.Events[j].Event
		n++
	}
	return ts.pend[:n:n]
}

// PendingInto implements FlatSource.
func (ts *TraceSource) PendingInto(i int, buf []trace.Event) []trace.Event {
	for j := i + 1; j <= i+2 && j < len(ts.Events); j++ {
		buf = append(buf, ts.Events[j].Event)
	}
	return buf
}

// Looper drives a session through a core: the simulated equivalent of the
// browser's looper thread polling the event queue. A Looper may be reused
// across runs; its queue-view scratch then keeps its storage.
type Looper struct {
	Src  Source
	Core *cpu.Core

	// MaxEvents truncates the session when positive (for tests).
	MaxEvents int

	// pend is the queue-view scratch handed to FlatSource.PendingInto.
	pend []trace.Event
}

// Reset unbinds the looper from its source and core so a pooled owner
// never pins them, keeping the queue-view scratch storage for reuse.
func (l *Looper) Reset() {
	l.Src, l.Core = nil, nil
	l.MaxEvents = 0
	l.pend = l.pend[:0]
}

// Run executes the whole session and returns total cycles consumed.
func (l *Looper) Run() int64 {
	n := l.Src.Len()
	if l.MaxEvents > 0 && l.MaxEvents < n {
		n = l.MaxEvents
	}
	start := l.Core.Stats.Cycles
	assist := l.Core.Assist
	// Span-friendly sources fill the looper's own scratch: the per-event
	// queue view costs no allocation and never aliases source state.
	flat, _ := l.Src.(FlatSource)
	for i := 0; i < n; i++ {
		ev := l.Src.Event(i)
		insts := l.Src.Insts(i, false)
		if assist != nil {
			var pending []trace.Event
			if flat != nil {
				l.pend = flat.PendingInto(i, l.pend[:0])
				pending = l.pend
			} else {
				pending = l.Src.Pending(i)
			}
			assist.EventStart(ev, insts, pending)
		}
		l.Core.BeginEvent(ev.Handler)
		// Queue management runs between dequeue and handler entry; ESP
		// overlaps its pre-event prefetches with it (§3.6).
		l.Core.RunFiller(LooperOverhead)
		l.Core.RunEvent(insts)
		if assist != nil {
			assist.EventEnd(ev)
		}
		// The handler returned to the looper's dispatch loop: the call
		// stack (and with it the RAS) is realigned to the loop's depth.
		l.Core.BP.ClearRAS()
	}
	return l.Core.Stats.Cycles - start
}
