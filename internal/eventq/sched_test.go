package eventq

import (
	"encoding/binary"
	"math"
	"reflect"
	"sync"
	"testing"

	"espsim/internal/trace"
	"espsim/internal/workload"
)

// timedEvents materializes the mobile-web session's event metadata: the
// canonical timed stream the scheduler properties are checked against.
func timedEvents(t *testing.T) []trace.Event {
	t.Helper()
	s, err := workload.NewSession(workload.MobileWeb())
	if err != nil {
		t.Fatal(err)
	}
	return s.Events
}

// allPolicies enumerates every defined policy.
func allPolicies() []SchedPolicy {
	ps := make([]SchedPolicy, 0, NumSchedPolicies)
	for p := SchedPolicy(0); p.Valid(); p++ {
		ps = append(ps, p)
	}
	return ps
}

// checkPermutation fails unless order is a permutation of [0, n).
func checkPermutation(t *testing.T, order []int32, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("schedule has %d slots, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for k, i := range order {
		if i < 0 || int(i) >= n {
			t.Fatalf("slot %d dispatches out-of-range event %d", k, i)
		}
		if seen[i] {
			t.Fatalf("event %d dispatched twice", i)
		}
		seen[i] = true
	}
}

// TestScheduleIsPermutation: whatever the policy, a schedule dispatches
// every event exactly once — scheduling reorders work, never drops or
// duplicates it.
func TestScheduleIsPermutation(t *testing.T) {
	evs := timedEvents(t)
	for _, p := range allPolicies() {
		sch, err := BuildSchedule(evs, p)
		if err != nil {
			t.Fatal(err)
		}
		checkPermutation(t, sch.Order, len(evs))
		if sch.Stats.Events != len(evs) {
			t.Errorf("%v: stats cover %d events, want %d", p, sch.Stats.Events, len(evs))
		}
	}
}

// TestScheduleTimesConsistent: dispatch times never go backwards, no
// event dispatches before it arrives, and completion is dispatch plus
// service.
func TestScheduleTimesConsistent(t *testing.T) {
	evs := timedEvents(t)
	for _, p := range allPolicies() {
		sch, err := BuildSchedule(evs, p)
		if err != nil {
			t.Fatal(err)
		}
		for k, i := range sch.Order {
			ev := evs[i]
			if k > 0 && sch.Dispatch[k] < sch.Dispatch[k-1] {
				t.Fatalf("%v: dispatch time went backwards at slot %d", p, k)
			}
			if sch.Dispatch[k] < ev.Arrival {
				t.Fatalf("%v: slot %d dispatched at %d before arrival %d", p, k, sch.Dispatch[k], ev.Arrival)
			}
			if want := satAdd(sch.Dispatch[k], serviceLen(ev)); sch.Complete[k] != want {
				t.Fatalf("%v: slot %d complete %d, want dispatch+service %d", p, k, sch.Complete[k], want)
			}
		}
	}
}

// TestStrictPriorityNoInversions: under SchedPriority the dispatched
// event is always a most-urgent ready event, so the inversion counter —
// and a post-hoc scan of the schedule — must both read zero.
func TestStrictPriorityNoInversions(t *testing.T) {
	evs := timedEvents(t)
	sch, err := BuildSchedule(evs, SchedPriority)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Stats.PriorityInversions != 0 {
		t.Fatalf("strict priority reported %d inversions", sch.Stats.PriorityInversions)
	}
	// Post-hoc: at each dispatch, no later-dispatched event that was
	// already ready may be strictly more urgent.
	for k, i := range sch.Order {
		for _, j := range sch.Order[k+1:] {
			if evs[j].Arrival <= sch.Dispatch[k] && evs[j].Prio < evs[i].Prio {
				t.Fatalf("slot %d ran prio %d while ready event %d had prio %d",
					k, evs[i].Prio, j, evs[j].Prio)
			}
		}
	}
}

// TestEDFPicksEarliestDeadline: at each dispatch, no ready event still
// waiting has a strictly earlier effective deadline than the one chosen.
func TestEDFPicksEarliestDeadline(t *testing.T) {
	evs := timedEvents(t)
	sch, err := BuildSchedule(evs, SchedEDF)
	if err != nil {
		t.Fatal(err)
	}
	for k, i := range sch.Order {
		for _, j := range sch.Order[k+1:] {
			if evs[j].Arrival <= sch.Dispatch[k] && effDeadline(evs[j]) < effDeadline(evs[i]) {
				t.Fatalf("slot %d ran deadline %d while ready event %d had deadline %d",
					k, effDeadline(evs[i]), j, effDeadline(evs[j]))
			}
		}
	}
}

// TestUntimedDegeneratesToFIFO: with no arrivals, priorities, or
// deadlines, every policy ties on every comparison, the queue-position
// tie-break decides, and the schedule is the identity permutation. This
// is the property that lets untimed workloads build bit-identically
// whatever the configured policy.
func TestUntimedDegeneratesToFIFO(t *testing.T) {
	evs := make([]trace.Event, 17)
	for i := range evs {
		evs[i] = trace.Event{ID: i, Len: 100 + i}
	}
	for _, p := range allPolicies() {
		sch, err := BuildSchedule(evs, p)
		if err != nil {
			t.Fatal(err)
		}
		for k, i := range sch.Order {
			if int(i) != k {
				t.Fatalf("%v: untimed slot %d dispatches event %d, want identity order", p, k, i)
			}
		}
	}
}

// TestScheduleDeterministic: concurrent builds of the same schedule are
// bit-identical — the property that lets espd share one workload plane
// across goroutines. Run under -race this also proves BuildSchedule
// touches no shared state.
func TestScheduleDeterministic(t *testing.T) {
	evs := timedEvents(t)
	for _, p := range allPolicies() {
		const builders = 4
		out := make([]*Schedule, builders)
		var wg sync.WaitGroup
		for g := 0; g < builders; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				sch, err := BuildSchedule(evs, p)
				if err == nil {
					out[g] = sch
				}
			}(g)
		}
		wg.Wait()
		for g := 1; g < builders; g++ {
			if out[g] == nil || out[0] == nil {
				t.Fatalf("%v: build %d failed", p, g)
			}
			if !reflect.DeepEqual(out[0], out[g]) {
				t.Fatalf("%v: concurrent builds diverged", p)
			}
		}
	}
}

// TestSchedByNameRoundTrip: every policy's String resolves back to
// itself, and the documented aliases resolve.
func TestSchedByNameRoundTrip(t *testing.T) {
	for _, p := range allPolicies() {
		got, err := SchedByName(p.String())
		if err != nil || got != p {
			t.Fatalf("SchedByName(%q) = %v, %v", p.String(), got, err)
		}
	}
	for alias, want := range map[string]SchedPolicy{
		"": SchedFIFO, "priority": SchedPriority, "pes": SchedSlack,
	} {
		if got, err := SchedByName(alias); err != nil || got != want {
			t.Fatalf("SchedByName(%q) = %v, %v", alias, got, err)
		}
	}
	if _, err := SchedByName("bogus"); err == nil {
		t.Fatal("SchedByName accepted a bogus name")
	}
	if p := SchedPolicy(NumSchedPolicies); p.Valid() {
		t.Fatal("out-of-range policy reports Valid")
	}
}

// FuzzSchedulerConfig decodes an arbitrary byte string into a policy
// and an event list with hostile metadata — deadlines at the integer
// extremes, past-due deadlines, negative lengths, arbitrary priorities —
// and demands BuildSchedule neither panics nor produces a malformed
// schedule: the order is a permutation, times are monotone, and the
// stats stay finite.
func FuzzSchedulerConfig(f *testing.F) {
	mk := func(policy byte, evs ...[4]int64) []byte {
		buf := []byte{policy}
		for _, e := range evs {
			var b [32]byte
			for i, v := range e {
				binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
			}
			buf = append(buf, b[:]...)
		}
		return buf
	}
	f.Add(mk(0))
	f.Add(mk(1, [4]int64{0, 0, 0, 0}))
	f.Add(mk(2, [4]int64{100, 5000, 1 << 8, 400}, [4]int64{50, 0, 2 << 8, 900}))
	f.Add(mk(3, [4]int64{0, math.MinInt64, 0, math.MaxInt64}))
	f.Add(mk(2, [4]int64{math.MaxInt64, math.MaxInt64, 255 << 8, math.MaxInt64}))
	f.Add(mk(2, [4]int64{-1000, -5, 3 << 8, -77}))          // past-due, negative length
	f.Add(mk(3, [4]int64{math.MinInt64, 1, 0, 1}))          // slack underflow
	f.Add(mk(9, [4]int64{0, 0, 0, 0}))                      // invalid policy
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		policy := SchedPolicy(data[0] % (NumSchedPolicies + 1)) // one past the end: exercise the error path
		data = data[1:]
		const rec = 32
		n := len(data) / rec
		if n > 256 {
			n = 256
		}
		evs := make([]trace.Event, n)
		for i := range evs {
			b := data[i*rec:]
			evs[i] = trace.Event{
				ID:       i,
				Arrival:  int64(binary.LittleEndian.Uint64(b)),
				Deadline: int64(binary.LittleEndian.Uint64(b[8:])),
				Prio:     uint8(binary.LittleEndian.Uint64(b[16:]) >> 8),
				Class:    trace.EventClass(binary.LittleEndian.Uint64(b[16:]) % trace.NumEventClasses),
				Len:      int(int64(binary.LittleEndian.Uint64(b[24:]))),
			}
		}
		sch, err := BuildSchedule(evs, policy)
		if !policy.Valid() {
			if err == nil {
				t.Fatal("invalid policy accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("valid policy rejected: %v", err)
		}
		checkPermutation(t, sch.Order, n)
		for k := range sch.Order {
			if k > 0 && sch.Dispatch[k] < sch.Dispatch[k-1] {
				t.Fatalf("dispatch time went backwards at slot %d", k)
			}
			if sch.Complete[k] < sch.Dispatch[k] {
				t.Fatalf("slot %d completes at %d before dispatch %d", k, sch.Complete[k], sch.Dispatch[k])
			}
		}
		st := sch.Stats
		if st.DeadlineMisses > st.Deadlined || st.Deadlined > st.Events {
			t.Fatalf("impossible deadline accounting: %+v", st)
		}
		if math.IsNaN(st.MissRate) || st.MissRate < 0 || st.MissRate > 1 {
			t.Fatalf("miss rate out of range: %v", st.MissRate)
		}
		for _, cl := range st.Classes {
			if math.IsNaN(cl.P50) || math.IsNaN(cl.P95) || math.IsNaN(cl.P99) {
				t.Fatalf("NaN percentile in class %q", cl.Class)
			}
		}
	})
}
