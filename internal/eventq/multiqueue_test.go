package eventq

import (
	"testing"

	"espsim/internal/workload"
)

func twoSessions(t *testing.T) []*workload.Session {
	t.Helper()
	a := workload.Amazon()
	a.Events = 20
	b := workload.Bing()
	b.Events = 12
	sa, err := workload.NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := workload.NewSession(b)
	if err != nil {
		t.Fatal(err)
	}
	return []*workload.Session{sa, sb}
}

func TestMultiQueueMergesEverything(t *testing.T) {
	src, err := NewMultiQueueSource(twoSessions(t), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 32 {
		t.Fatalf("Len = %d, want 32", src.Len())
	}
	counts := map[int]int{}
	for i := 0; i < src.Len(); i++ {
		counts[src.Queue(i)]++
		if src.Event(i).ID != i {
			t.Fatalf("event %d has ID %d; IDs must be the merged order", i, src.Event(i).ID)
		}
	}
	if counts[0] != 20 || counts[1] != 12 {
		t.Fatalf("queue counts %v", counts)
	}
}

func TestMultiQueueRejectsEmpty(t *testing.T) {
	if _, err := NewMultiQueueSource(nil, 1, 0); err == nil {
		t.Fatal("empty queue set accepted")
	}
}

func TestMultiQueuePerfectPredictions(t *testing.T) {
	src, err := NewMultiQueueSource(twoSessions(t), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < src.Len(); i++ {
		for k, ev := range src.Pending(i) {
			if ev.ID != i+1+k {
				t.Fatalf("prediction at %d slot %d is event %d; with rate 0 it must be exact", i, k, ev.ID)
			}
		}
	}
}

func TestMultiQueueMispredictions(t *testing.T) {
	src, err := NewMultiQueueSource(twoSessions(t), 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i := 0; i < src.Len(); i++ {
		p := src.Pending(i)
		if len(p) > 0 && p[0].ID != i+1 {
			wrong++
		}
	}
	if wrong == 0 {
		t.Fatal("misprediction rate 1.0 produced no wrong predictions")
	}
}

func TestMultiQueueStreamsDeterministic(t *testing.T) {
	mk := func() *MultiQueueSource {
		src, err := NewMultiQueueSource(twoSessions(t), 7, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	a, b := mk(), mk()
	for i := 0; i < a.Len(); i++ {
		ia, ib := a.Insts(i, false), b.Insts(i, false)
		if len(ia) != len(ib) {
			t.Fatalf("event %d stream lengths differ", i)
		}
		for j := range ia {
			if ia[j] != ib[j] {
				t.Fatalf("event %d inst %d differs", i, j)
			}
		}
	}
}

func TestMultiQueueSpecMatchesNormal(t *testing.T) {
	src, err := NewMultiQueueSource(twoSessions(t), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if src.Event(i).Diverge >= 0 {
			continue
		}
		n, s := src.Insts(i, false), src.Insts(i, true)
		for j := range n {
			if n[j] != s[j] {
				t.Fatalf("event %d: speculative stream diverged at %d without a divergence point", i, j)
			}
		}
	}
}
