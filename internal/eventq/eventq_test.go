package eventq

import (
	"testing"

	"espsim/internal/branch"
	"espsim/internal/cpu"
	"espsim/internal/mem"
	"espsim/internal/trace"
	"espsim/internal/workload"
)

func newSession(t *testing.T) *workload.Session {
	t.Helper()
	p := workload.Pixlr()
	p.Events = 24
	s, err := workload.NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionSourceBasics(t *testing.T) {
	s := newSession(t)
	src := SessionSource{S: s}
	if src.Len() != 24 {
		t.Fatalf("Len = %d", src.Len())
	}
	ev := src.Event(3)
	if ev.ID != 3 {
		t.Fatalf("Event(3).ID = %d", ev.ID)
	}
	insts := src.Insts(3, false)
	if len(insts) != ev.Len {
		t.Fatalf("Insts length %d, want %d", len(insts), ev.Len)
	}
	if got := src.Pending(0); len(got) > 2 {
		t.Fatalf("Pending returned %d", len(got))
	}
}

func TestSessionSourceMaxPending(t *testing.T) {
	s := newSession(t)
	deep := SessionSource{S: s, MaxPending: 8}
	shallow := SessionSource{S: s}
	for i := 0; i < src0Len(s); i++ {
		if len(deep.Pending(i)) < len(shallow.Pending(i)) {
			t.Fatal("deeper view returned fewer events")
		}
	}
}

func src0Len(s *workload.Session) int { return len(s.Events) }

func TestTraceSource(t *testing.T) {
	events := []trace.EventTrace{
		{Event: trace.Event{ID: 0, Len: 2}, Insts: []trace.Inst{{PC: 4}, {PC: 8}}},
		{Event: trace.Event{ID: 1, Len: 1}, Insts: []trace.Inst{{PC: 16}}},
		{Event: trace.Event{ID: 2, Len: 1}, Insts: []trace.Inst{{PC: 32}}},
	}
	src := &TraceSource{Events: events}
	if src.Len() != 3 {
		t.Fatalf("Len = %d", src.Len())
	}
	if got := src.Pending(0); len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("Pending(0) = %+v", got)
	}
	if got := src.Pending(2); len(got) != 0 {
		t.Fatalf("Pending(last) = %+v", got)
	}
	if len(src.Insts(0, true)) != 2 {
		t.Fatal("Insts broken")
	}
}

type hookAssist struct {
	starts, ends []int
	pendings     [][]trace.Event
}

func (h *hookAssist) EventStart(ev trace.Event, _ []trace.Inst, pending []trace.Event) {
	h.starts = append(h.starts, ev.ID)
	h.pendings = append(h.pendings, pending)
}
func (h *hookAssist) EventEnd(ev trace.Event)              { h.ends = append(h.ends, ev.ID) }
func (h *hookAssist) OnInst(idx int) int                   { return idx + 1 }
func (h *hookAssist) CorrectBranch(int, trace.Inst) bool   { return false }
func (h *hookAssist) OnStall(cpu.StallKind, int, int) bool { return false }

func TestLooperRunsAllEvents(t *testing.T) {
	s := newSession(t)
	src := SessionSource{S: s}
	core := cpu.New(cpu.DefaultConfig(), mem.DefaultHierarchy(), branch.New())
	ha := &hookAssist{}
	core.Assist = ha
	l := Looper{Src: src, Core: core}
	cycles := l.Run()
	if cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	if len(ha.starts) != 24 || len(ha.ends) != 24 {
		t.Fatalf("hooks: %d starts %d ends", len(ha.starts), len(ha.ends))
	}
	for i := range ha.starts {
		if ha.starts[i] != i || ha.ends[i] != i {
			t.Fatal("events out of order")
		}
	}
	var want int64
	for _, ev := range s.Events {
		want += int64(ev.Len) + LooperOverhead
	}
	if core.Stats.Insts != want {
		t.Fatalf("Insts = %d, want %d (events + looper overhead)", core.Stats.Insts, want)
	}
}

func TestLooperMaxEvents(t *testing.T) {
	s := newSession(t)
	core := cpu.New(cpu.DefaultConfig(), mem.DefaultHierarchy(), branch.New())
	ha := &hookAssist{}
	core.Assist = ha
	l := Looper{Src: SessionSource{S: s}, Core: core, MaxEvents: 5}
	l.Run()
	if len(ha.starts) != 5 {
		t.Fatalf("MaxEvents ignored: %d events ran", len(ha.starts))
	}
}

func TestLooperPendingMatchesSession(t *testing.T) {
	s := newSession(t)
	core := cpu.New(cpu.DefaultConfig(), mem.DefaultHierarchy(), branch.New())
	ha := &hookAssist{}
	core.Assist = ha
	(&Looper{Src: SessionSource{S: s}, Core: core}).Run()
	for i, p := range ha.pendings {
		want := s.Pending(i)
		if len(p) != len(want) {
			t.Fatalf("event %d: pending %d, want %d", i, len(p), len(want))
		}
	}
}

func TestLooperDeterministic(t *testing.T) {
	run := func() int64 {
		s := newSession(t)
		core := cpu.New(cpu.DefaultConfig(), mem.DefaultHierarchy(), branch.New())
		return (&Looper{Src: SessionSource{S: s}, Core: core}).Run()
	}
	if run() != run() {
		t.Fatal("looper run not deterministic")
	}
}
