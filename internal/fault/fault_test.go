package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"espsim/internal/sim"
)

// TestPlanDeterministic: two plans with the same seed assign identical
// faults; a different seed assigns a different pattern somewhere.
func TestPlanDeterministic(t *testing.T) {
	apps := []string{"amazon", "bing", "cnn", "gmaps", "pixlr", "facebook", "gdocs"}
	configs := []string{"base", "NL", "ESP+NL", "Runahead+NL"}
	a := &Plan{Seed: 42, RunRate: 0.5, BuildRate: 0.3}
	b := &Plan{Seed: 42, RunRate: 0.5, BuildRate: 0.3}
	c := &Plan{Seed: 43, RunRate: 0.5, BuildRate: 0.3}
	same, diff := true, false
	for _, app := range apps {
		if a.BuildFault(app) != b.BuildFault(app) {
			same = false
		}
		for _, cfg := range configs {
			if a.RunFault(app, cfg) != b.RunFault(app, cfg) {
				same = false
			}
			if a.RunFault(app, cfg) != c.RunFault(app, cfg) {
				diff = true
			}
		}
	}
	if !same {
		t.Fatal("equal seeds produced different fault assignments")
	}
	if !diff {
		t.Fatal("different seeds produced identical fault assignments (hash ignores seed?)")
	}
}

// TestPlanHookRecoversAfterFailFirst: a faulted cell fails exactly
// FailFirst attempts, then passes; an Always cell never recovers.
func TestPlanHookRecoversAfterFailFirst(t *testing.T) {
	p := &Plan{Seed: 1, RunRate: 1, FailFirst: 2}
	p.Always("stuck", "cfg", Error)
	hook := p.Hook()

	pt := sim.FaultPoint{Op: "run", App: "transient", Config: "cfg"}
	// RunRate 1: every cell faults; the kind depends on the hash, so
	// count failures rather than asserting the shape.
	fails := 0
	for i := 0; i < 5; i++ {
		err := callContained(hook, pt)
		if err != nil {
			fails++
			if !errors.Is(err, ErrInjected) && !errors.Is(err, errPanicked) {
				t.Fatalf("attempt %d: unexpected error %v", i, err)
			}
		}
	}
	if k := p.RunFault("transient", "cfg"); k == Slow {
		if fails != 0 {
			t.Fatalf("slow faults must not error, got %d failures", fails)
		}
	} else if fails != 2 {
		t.Fatalf("faulted cell failed %d attempts, want FailFirst=2", fails)
	}

	stuck := sim.FaultPoint{Op: "run", App: "stuck", Config: "cfg"}
	for i := 0; i < 4; i++ {
		if err := callContained(hook, stuck); err == nil {
			t.Fatalf("Always cell recovered on attempt %d", i)
		}
	}
}

// errPanicked distinguishes a contained panic in callContained.
var errPanicked = errors.New("panicked")

func callContained(hook sim.FaultHook, pt sim.FaultPoint) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%v: %w", p, errPanicked)
		}
	}()
	return hook(pt)
}

// TestPlanSlowStalls: a Slow fault sleeps for SleepFor before letting
// the operation proceed.
func TestPlanSlowStalls(t *testing.T) {
	p := &Plan{Seed: 5, SleepFor: 30 * time.Millisecond, FailFirst: 1}
	p.Always("laggy", "cfg", Slow)
	hook := p.Hook()
	start := time.Now()
	if err := hook(sim.FaultPoint{Op: "run", App: "laggy", Config: "cfg"}); err != nil {
		t.Fatalf("slow fault errored: %v", err)
	}
	if elapsed := time.Since(start); elapsed < p.SleepFor {
		t.Fatalf("slow fault stalled %v, want >= %v", elapsed, p.SleepFor)
	}
}

// TestRetryPolicyBackoff: doubling, capping, and jitter bounds.
func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond, JitterFrac: 0.5}.WithDefaults()
	for retries, want := range map[int]time.Duration{1: 10 * time.Millisecond, 2: 20 * time.Millisecond, 3: 40 * time.Millisecond, 4: 40 * time.Millisecond} {
		if got := p.backoff(retries, nil); got != want {
			t.Fatalf("backoff(%d) without jitter = %v, want %v", retries, got, want)
		}
	}
}

// TestExecutorRetriesThenSucceeds: a cell that fails twice under a
// 3-attempt budget succeeds with 3 attempts and 2 counted retries.
func TestExecutorRetriesThenSucceeds(t *testing.T) {
	e := NewExecutor(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}, nil, nil, 1)
	calls := 0
	out := e.Run(context.Background(), "k", func(attempt int) error {
		calls++
		if attempt != calls {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		if attempt < 3 {
			return fmt.Errorf("transient")
		}
		return nil
	})
	if out.Err != nil || out.Attempts != 3 || out.Skipped {
		t.Fatalf("outcome %+v, want success on attempt 3", out)
	}
	if e.Retries() != 2 {
		t.Fatalf("retries %d, want 2", e.Retries())
	}
}

// TestExecutorRespectsBudgetAndClassifier: the budget bounds attempts,
// and a non-retryable error stops immediately.
func TestExecutorRespectsBudgetAndClassifier(t *testing.T) {
	permanent := errors.New("permanent")
	retryable := func(err error) bool { return !errors.Is(err, permanent) }
	e := NewExecutor(RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}, nil, retryable, 1)

	calls := 0
	out := e.Run(context.Background(), "k", func(int) error { calls++; return fmt.Errorf("always") })
	if out.Err == nil || out.Attempts != 4 || calls != 4 {
		t.Fatalf("budget: outcome %+v after %d calls", out, calls)
	}

	calls = 0
	out = e.Run(context.Background(), "k2", func(int) error { calls++; return permanent })
	if out.Attempts != 1 || calls != 1 || !errors.Is(out.Err, permanent) {
		t.Fatalf("non-retryable: outcome %+v after %d calls", out, calls)
	}
}

// TestExecutorStopsOnCanceledContext: no retries for a dead client.
func TestExecutorStopsOnCanceledContext(t *testing.T) {
	e := NewExecutor(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}, nil, nil, 1)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	out := e.Run(ctx, "k", func(int) error {
		calls++
		cancel()
		return fmt.Errorf("fails while client leaves")
	})
	if calls != 1 || out.Err == nil {
		t.Fatalf("canceled context still retried: %d calls, %+v", calls, out)
	}
}

// TestBreakerQuarantinesAndProbes walks the full state machine:
// threshold failures open the breaker, Allow then denies (skips
// counted), cooldown admits exactly one probe, a failed probe re-opens,
// a successful probe closes.
func TestBreakerQuarantinesAndProbes(t *testing.T) {
	b := NewBreakerSet(3, time.Hour)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !b.Allow("cell") {
			t.Fatalf("closed breaker denied attempt %d", i)
		}
		b.Record("cell", false)
	}
	if b.OpenCount() != 1 || b.Trips() != 1 {
		t.Fatalf("after 3 failures: open %d trips %d, want 1/1", b.OpenCount(), b.Trips())
	}
	if b.Allow("cell") {
		t.Fatal("open breaker admitted work inside cooldown")
	}
	if b.Skips() != 1 {
		t.Fatalf("skips %d, want 1", b.Skips())
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(2 * time.Hour)
	if !b.Allow("cell") {
		t.Fatal("half-open breaker denied the probe")
	}
	if b.Allow("cell") {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Record("cell", false) // probe fails: re-open for a fresh cooldown
	if b.Allow("cell") {
		t.Fatal("re-opened breaker admitted work")
	}

	now = now.Add(2 * time.Hour)
	if !b.Allow("cell") {
		t.Fatal("second probe denied")
	}
	b.Record("cell", true)
	if b.OpenCount() != 0 {
		t.Fatalf("successful probe left %d breakers open", b.OpenCount())
	}
	if !b.Allow("cell") {
		t.Fatal("closed breaker denies work")
	}

	// Unrelated keys are independent.
	if !b.Allow("other") {
		t.Fatal("independent key denied")
	}
}

// TestExecutorWithBreakerSkips: once the breaker opens, Run reports
// skipped without attempting.
func TestExecutorWithBreakerSkips(t *testing.T) {
	b := NewBreakerSet(2, time.Hour)
	e := NewExecutor(RetryPolicy{MaxAttempts: 1, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}, b, nil, 1)
	for i := 0; i < 2; i++ {
		if out := e.Run(context.Background(), "cell", func(int) error { return fmt.Errorf("down") }); out.Skipped {
			t.Fatalf("attempt %d skipped before threshold", i)
		}
	}
	calls := 0
	out := e.Run(context.Background(), "cell", func(int) error { calls++; return nil })
	if !out.Skipped || !errors.Is(out.Err, ErrBreakerOpen) || calls != 0 {
		t.Fatalf("quarantined cell still ran: %+v, %d calls", out, calls)
	}
}

// TestNilBreakerSet: a nil set is a valid no-op.
func TestNilBreakerSet(t *testing.T) {
	var b *BreakerSet
	if !b.Allow("x") {
		t.Fatal("nil breaker denied")
	}
	b.Record("x", false)
	if b.OpenCount() != 0 || b.Trips() != 0 || b.Skips() != 0 {
		t.Fatal("nil breaker has state")
	}
	if NewBreakerSet(0, time.Second) != nil {
		t.Fatal("threshold 0 must disable the breaker")
	}
}
