package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// ErrNet marks a node-level network failure manufactured by a NetPlan
// (or a real transport error the cluster wraps): the worker was
// unreachable, stalled, partitioned, or answered a server error.
// Classify maps it to KindNet ahead of KindInjected, so an injected
// network fault still reads as a network fault.
var ErrNet = errors.New("network fault")

// NetKind enumerates the network fault shapes a NetPlan can inject
// between the coordinator and one worker — the node-level analogue of
// Kind.
type NetKind uint8

const (
	// NetNone leaves the call untouched.
	NetNone NetKind = iota
	// NetDrop fails the call before it reaches the worker, like a
	// refused connection or a dropped packet.
	NetDrop
	// NetStall delays the call by the plan's StallFor before letting it
	// proceed — a slow or congested link, not a dead one.
	NetStall
	// NetErr makes the worker answer a 5xx-shaped server error.
	NetErr
	// NetPartition drops every call to the worker until Heal — the
	// quarantine shape a node breaker must absorb.
	NetPartition
)

// String names a NetKind for logs and test output.
func (k NetKind) String() string {
	switch k {
	case NetNone:
		return "none"
	case NetDrop:
		return "drop"
	case NetStall:
		return "stall"
	case NetErr:
		return "5xx"
	case NetPartition:
		return "partition"
	default:
		return fmt.Sprintf("netkind(%d)", uint8(k))
	}
}

// NetPlan is a deterministic network fault plan, layered on the PR 5
// cell plan: which (worker, operation) calls fault and how, all
// derived from Seed by hashing — never from time or global randomness
// — so one seed reproduces one cluster chaos run byte-for-byte. The
// zero value injects nothing.
//
// Rates stack: a hashed draw in [0, 1) lands in the drop band, then
// the stall band, then the 5xx band, else no fault. A faulted
// (worker, operation) pair fails its first FailFirst calls and then
// clears — the flaky-link shape rescheduling must absorb — while
// Always and Partition registrations never clear — the dead-node shape
// a breaker must quarantine.
type NetPlan struct {
	// Seed fixes every fault decision.
	Seed int64
	// DropRate, StallRate, ErrRate are the stacked fractions of
	// (worker, operation) pairs that drop, stall, or answer 5xx.
	DropRate  float64
	StallRate float64
	ErrRate   float64
	// FailFirst is how many calls of a faulted pair fail before it
	// clears (minimum 1 once the plan decides to fault).
	FailFirst int
	// StallFor is the delay for NetStall faults.
	StallFor time.Duration

	mu     sync.Mutex
	counts map[string]int
	always map[string]NetKind
	parts  map[string]bool
}

// Always registers a worker that faults with kind on every call,
// regardless of rates.
func (p *NetPlan) Always(worker string, kind NetKind) {
	p.mu.Lock()
	if p.always == nil {
		p.always = make(map[string]NetKind)
	}
	p.always[worker] = kind
	p.mu.Unlock()
}

// Partition makes every call to worker drop until Heal — a network
// partition or a dead process, as the coordinator cannot tell them
// apart.
func (p *NetPlan) Partition(worker string) {
	p.mu.Lock()
	if p.parts == nil {
		p.parts = make(map[string]bool)
	}
	p.parts[worker] = true
	p.mu.Unlock()
}

// Heal ends worker's partition.
func (p *NetPlan) Heal(worker string) {
	p.mu.Lock()
	delete(p.parts, worker)
	p.mu.Unlock()
}

// Partitioned reports whether worker is currently partitioned.
func (p *NetPlan) Partitioned(worker string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.parts[worker]
}

// hashNet derives the deterministic fault decision for one
// (worker, operation) pair from the seed alone.
func (p *NetPlan) hashNet(worker, op string) NetKind {
	total := p.DropRate + p.StallRate + p.ErrRate
	if total <= 0 {
		return NetNone
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|net|%s|%s", p.Seed, worker, op)
	v := float64(h.Sum64()%100000) / 100000
	switch {
	case v < p.DropRate:
		return NetDrop
	case v < p.DropRate+p.StallRate:
		return NetStall
	case v < total:
		return NetErr
	default:
		return NetNone
	}
}

// Peek reports the kind a (worker, operation) pair is assigned without
// consuming an attempt — introspection for tests asserting coverage.
// Partition and Always registrations take precedence over rates.
func (p *NetPlan) Peek(worker, op string) NetKind {
	p.mu.Lock()
	part := p.parts[worker]
	k, ok := p.always[worker]
	p.mu.Unlock()
	if part {
		return NetPartition
	}
	if ok {
		return k
	}
	return p.hashNet(worker, op)
}

// Fault decides one call's fate, consuming an attempt: hashed faults
// clear after FailFirst calls, Partition and Always never do.
func (p *NetPlan) Fault(worker, op string) NetKind {
	if p == nil {
		return NetNone
	}
	p.mu.Lock()
	if p.parts[worker] {
		p.mu.Unlock()
		return NetPartition
	}
	if k, ok := p.always[worker]; ok {
		p.mu.Unlock()
		return k
	}
	p.mu.Unlock()

	kind := p.hashNet(worker, op)
	if kind == NetNone {
		return NetNone
	}
	key := worker + "|" + op
	p.mu.Lock()
	if p.counts == nil {
		p.counts = make(map[string]int)
	}
	attempt := p.counts[key]
	p.counts[key]++
	p.mu.Unlock()
	failFirst := p.FailFirst
	if failFirst < 1 {
		failFirst = 1
	}
	if attempt >= failFirst {
		return NetNone
	}
	return kind
}
