package fault

import (
	"context"
	"errors"

	"espsim/internal/sim"
	"espsim/internal/trace"
)

// ErrorKind is the typed, exhaustive classification of a failed
// operation — the wire value of a sweep cell's "error_kind" and the
// label the cluster coordinator attaches to a failed shard. Every
// sentinel the engine or the resilience layer can produce maps to
// exactly one kind (see Classify); the serving layers never invent
// ad-hoc strings.
type ErrorKind string

const (
	// KindNone classifies a nil error.
	KindNone ErrorKind = ""
	// KindTimeout: the cell blew its simulation deadline (sim.ErrTimeout).
	KindTimeout ErrorKind = "timeout"
	// KindPanic: the cell panicked and was contained (sim.ErrPanic).
	KindPanic ErrorKind = "panic"
	// KindBuild: workload materialization failed (sim.ErrBuild).
	KindBuild ErrorKind = "build"
	// KindNet: a node-level network fault — drop, stall-induced
	// transport failure, 5xx, or partition (ErrNet).
	KindNet ErrorKind = "net"
	// KindInjected: a chaos plan manufactured the failure (ErrInjected).
	KindInjected ErrorKind = "injected"
	// KindBreakerOpen: the operation was never attempted because its
	// circuit breaker is quarantining it (ErrBreakerOpen).
	KindBreakerOpen ErrorKind = "breaker_open"
	// KindCanceled: the client went away or the deadline passed before
	// the work ran (context.Canceled / context.DeadlineExceeded).
	KindCanceled ErrorKind = "canceled"
	// KindConfig: the request named an unknown workload/configuration or
	// carried incoherent knobs; assigned at validation sites, never by
	// Classify (validation errors carry no sentinel).
	KindConfig ErrorKind = "config"
	// KindQuota: a tenant exhausted one of its quotas — queue depth,
	// in-flight cells, cumulative cell budget, or token-bucket rate
	// (tenantq.ErrQuota; espd maps it to 429).
	KindQuota ErrorKind = "quota"
	// KindBrownout: the daemon is degrading under memory pressure and
	// refused work its brownout level does not admit
	// (tenantq.ErrBrownout; espd maps it to 503).
	KindBrownout ErrorKind = "brownout"
	// KindShed: the work was dropped because it provably could not
	// finish before its deadline — shed at admission or per cell, never
	// attempted (tenantq.ErrDeadlineShed; espd maps it to 504).
	KindShed ErrorKind = "deadline_shed"
	// KindError is the fallback for an unclassified failure.
	KindError ErrorKind = "error"
)

// Kinds enumerates every ErrorKind a cell or shard can report,
// KindNone excluded. Tests iterate this to keep the taxonomy closed:
// adding a kind without extending Classify (or vice versa) fails them.
func Kinds() []ErrorKind {
	return []ErrorKind{
		KindTimeout, KindPanic, KindBuild, KindNet, KindInjected,
		KindBreakerOpen, KindCanceled, KindConfig, KindQuota,
		KindBrownout, KindShed, KindError,
	}
}

// Classify maps an error to its ErrorKind. Order matters and is part
// of the contract: a timeout wrapping an injected stall is still a
// timeout, a build failure wrapping an injected error is still a build
// failure, and a network fault manufactured by a NetPlan is a network
// fault before it is an injection.
func Classify(err error) ErrorKind {
	var ks *kindSentinel
	switch {
	case err == nil:
		return KindNone
	case errors.Is(err, sim.ErrTimeout):
		return KindTimeout
	case errors.Is(err, sim.ErrPanic):
		return KindPanic
	case errors.Is(err, sim.ErrBuild):
		return KindBuild
	case errors.Is(err, trace.ErrBadTrace):
		// A malformed trace is a materialization failure: the workload
		// never existed, exactly like a build error.
		return KindBuild
	case errors.Is(err, ErrNet):
		return KindNet
	case errors.Is(err, ErrInjected):
		return KindInjected
	case errors.Is(err, ErrBreakerOpen):
		return KindBreakerOpen
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return KindCanceled
	case errors.As(err, &ks):
		return ks.kind
	default:
		return KindError
	}
}

// Sentinel builds a package-level error that carries its own ErrorKind,
// for sentinels declared outside this package: Classify recovers the
// kind with errors.As, so the declaring package never needs an
// errors.Is case added here. The engine-priority cases above still win
// when they wrap one of these — a timeout wrapping a kind-carrying
// sentinel is still a timeout.
func Sentinel(msg string, k ErrorKind) error {
	return &kindSentinel{msg: msg, kind: k}
}

type kindSentinel struct {
	msg  string
	kind ErrorKind
}

func (e *kindSentinel) Error() string { return e.msg }

// Retryable reports whether a failure is worth another attempt on the
// same node: timeouts (a transient stall may clear), panics (the
// poisoned machine was dropped), build failures (the runner un-caches
// them so a retry rebuilds), and injected faults. Network faults are
// deliberately not retryable at cell granularity — the coordinator
// reschedules the whole shard on a peer instead. Validation errors,
// dead clients, and breaker skips are final.
func Retryable(err error) bool {
	switch Classify(err) {
	case KindTimeout, KindPanic, KindBuild, KindInjected:
		return true
	default:
		return false
	}
}
