package fault

import (
	"sync"
	"time"
)

// breaker states. A cell's breaker opens after threshold consecutive
// failures; after cooldown it half-opens, letting exactly one probe
// through — success closes it, failure re-opens it for another
// cooldown.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

type breakerCell struct {
	state    int
	fails    int // consecutive failures
	trips    int // consecutive closed→open (or re-open) transitions; drives escalation
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// BreakerSet is a family of circuit breakers keyed by string — one per
// (app, config) cell in espd — so a cell that fails persistently is
// quarantined (reported skipped) instead of burning a worker slot and
// a retry budget on every sweep. Safe for concurrent use.
type BreakerSet struct {
	threshold   int
	cooldown    time.Duration
	maxCooldown time.Duration // 0: no escalation, every quarantine lasts cooldown
	now         func() time.Time

	mu    sync.Mutex
	cells map[string]*breakerCell
	open  int
	trips int64
	skips int64
}

// NewBreakerSet builds a set that opens a key after threshold
// consecutive failures and half-opens it after cooldown. threshold < 1
// returns nil: a nil *BreakerSet is valid and never trips.
func NewBreakerSet(threshold int, cooldown time.Duration) *BreakerSet {
	if threshold < 1 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &BreakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		cells:     make(map[string]*breakerCell),
	}
}

// NewEscalatingBreakerSet builds a set whose quarantine escalates: the
// first trip of a key lasts cooldown, each consecutive re-trip doubles
// it, capped at maxCooldown; one success resets the escalation. This
// is the node-granularity shape the cluster coordinator uses — a flaky
// worker that keeps failing its half-open probe is quarantined for
// longer and longer instead of being re-offered work every cooldown.
func NewEscalatingBreakerSet(threshold int, cooldown, maxCooldown time.Duration) *BreakerSet {
	b := NewBreakerSet(threshold, cooldown)
	if b == nil {
		return nil
	}
	if maxCooldown < b.cooldown {
		maxCooldown = b.cooldown
	}
	b.maxCooldown = maxCooldown
	return b
}

// cooldownFor is the effective quarantine for a cell given its
// consecutive-trip count; call with the set's lock held.
func (b *BreakerSet) cooldownFor(c *breakerCell) time.Duration {
	cd := b.cooldown
	if b.maxCooldown <= 0 {
		return cd
	}
	for i := 1; i < c.trips && cd < b.maxCooldown; i++ {
		cd *= 2
	}
	if cd > b.maxCooldown {
		cd = b.maxCooldown
	}
	return cd
}

// Allow reports whether key may attempt work now. An open breaker past
// its cooldown admits a single half-open probe; a denied call is
// counted as a skip.
func (b *BreakerSet) Allow(key string) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.cells[key]
	if !ok {
		return true
	}
	switch c.state {
	case stateClosed:
		return true
	case stateOpen:
		if b.now().Sub(c.openedAt) >= b.cooldownFor(c) {
			c.state = stateHalfOpen
			c.probing = true
			return true
		}
	case stateHalfOpen:
		if !c.probing {
			c.probing = true
			return true
		}
	}
	b.skips++
	return false
}

// Record feeds one attempt's outcome back for key.
func (b *BreakerSet) Record(key string, ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.cells[key]
	if c == nil {
		c = &breakerCell{}
		b.cells[key] = c
	}
	if ok {
		if c.state != stateClosed {
			b.open--
		}
		c.state = stateClosed
		c.fails = 0
		c.trips = 0
		c.probing = false
		return
	}
	c.fails++
	switch c.state {
	case stateHalfOpen:
		// The probe failed: back to a (possibly escalated) cooldown.
		c.state = stateOpen
		c.openedAt = b.now()
		c.probing = false
		c.trips++
		b.trips++
	case stateClosed:
		if c.fails >= b.threshold {
			c.state = stateOpen
			c.openedAt = b.now()
			c.trips++
			b.open++
			b.trips++
		}
	}
}

// StateOf reports a key's breaker state — "closed", "open", or
// "half_open" — without side effects (unlike Allow, it admits no
// probe and counts no skip). The coordinator's metrics and placement
// read this.
func (b *BreakerSet) StateOf(key string) string {
	if b == nil {
		return "closed"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.cells[key]
	if !ok {
		return "closed"
	}
	switch c.state {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// OpenCount reports how many keys are currently quarantined (open or
// half-open) — the readiness probe's signal.
func (b *BreakerSet) OpenCount() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// Trips reports cumulative closed→open (and failed-probe re-open)
// transitions; Skips reports attempts denied by an open breaker.
func (b *BreakerSet) Trips() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Skips reports attempts denied by an open breaker.
func (b *BreakerSet) Skips() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.skips
}
