package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"espsim/internal/sim"
)

// TestEverySentinelMapsToExactlyOneKind is the drift guard the typed
// taxonomy exists for: every error sentinel the engine or resilience
// layer can produce classifies to exactly one ErrorKind, that kind is
// in Kinds(), and no two non-context sentinels share a kind.
func TestEverySentinelMapsToExactlyOneKind(t *testing.T) {
	sentinels := []struct {
		name string
		err  error
		want ErrorKind
	}{
		{"sim.ErrTimeout", sim.ErrTimeout, KindTimeout},
		{"sim.ErrPanic", sim.ErrPanic, KindPanic},
		{"sim.ErrBuild", sim.ErrBuild, KindBuild},
		{"fault.ErrNet", ErrNet, KindNet},
		{"fault.ErrInjected", ErrInjected, KindInjected},
		{"fault.ErrBreakerOpen", ErrBreakerOpen, KindBreakerOpen},
		{"context.Canceled", context.Canceled, KindCanceled},
		{"context.DeadlineExceeded", context.DeadlineExceeded, KindCanceled},
		// The overload sentinels live in tenantq (which imports this
		// package), so the table exercises the kind-carrying constructor
		// they are declared with; tenantq's own tests pin the exported
		// variables.
		{"Sentinel(KindQuota)", Sentinel("tenant quota exhausted", KindQuota), KindQuota},
		{"Sentinel(KindBrownout)", Sentinel("brownout refused work", KindBrownout), KindBrownout},
		{"Sentinel(KindShed)", Sentinel("deadline shed", KindShed), KindShed},
	}
	known := make(map[ErrorKind]bool)
	for _, k := range Kinds() {
		if known[k] {
			t.Fatalf("Kinds() lists %q twice", k)
		}
		known[k] = true
	}
	seen := make(map[ErrorKind]string)
	for _, tc := range sentinels {
		got := Classify(tc.err)
		if got != tc.want {
			t.Errorf("%s classifies as %q, want %q", tc.name, got, tc.want)
		}
		if got == KindError || got == KindNone {
			t.Errorf("%s fell through to %q: every sentinel needs its own kind", tc.name, got)
		}
		if !known[got] {
			t.Errorf("%s classifies to %q, which Kinds() does not list", tc.name, got)
		}
		// Wrapping must not change the classification.
		if wrapped := Classify(fmt.Errorf("outer: %w", tc.err)); wrapped != got {
			t.Errorf("%s wrapped classifies as %q, bare as %q", tc.name, wrapped, got)
		}
		if prev, dup := seen[got]; dup && got != KindCanceled {
			t.Errorf("%s and %s both classify as %q", tc.name, prev, got)
		}
		seen[got] = tc.name
	}
	if Classify(nil) != KindNone {
		t.Errorf("Classify(nil) = %q, want KindNone", Classify(nil))
	}
	if Classify(errors.New("mystery")) != KindError {
		t.Errorf("unclassified error = %q, want KindError", Classify(errors.New("mystery")))
	}
}

// TestClassifyPrecedence pins the documented order: the outermost
// meaningful sentinel wins when failures wrap each other.
func TestClassifyPrecedence(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrorKind
	}{
		{"timeout wrapping injected", fmt.Errorf("%w: %w", sim.ErrTimeout, ErrInjected), KindTimeout},
		{"build wrapping injected", fmt.Errorf("%w: %w", sim.ErrBuild, ErrInjected), KindBuild},
		{"net wrapping injected", fmt.Errorf("%w: %w", ErrNet, ErrInjected), KindNet},
		{"panic wrapping injected", fmt.Errorf("%w: %w", sim.ErrPanic, ErrInjected), KindPanic},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestRetryable pins which kinds are worth a same-node retry: network
// faults are not (the coordinator reschedules the shard instead).
func TestRetryable(t *testing.T) {
	if !Retryable(sim.ErrTimeout) || !Retryable(sim.ErrPanic) || !Retryable(sim.ErrBuild) || !Retryable(ErrInjected) {
		t.Error("timeout/panic/build/injected must be retryable")
	}
	if Retryable(ErrNet) || Retryable(context.Canceled) || Retryable(ErrBreakerOpen) || Retryable(errors.New("mystery")) {
		t.Error("net/canceled/breaker/unknown must not be retryable")
	}
}

// TestNetPlanDeterministicAndRecovering: one seed yields one fault
// assignment; hashed faults clear after FailFirst calls; Partition and
// Always never clear.
func TestNetPlanDeterministic(t *testing.T) {
	mk := func() *NetPlan {
		return &NetPlan{Seed: 42, DropRate: 0.3, StallRate: 0.2, ErrRate: 0.2, FailFirst: 2}
	}
	a, b := mk(), mk()
	workers := []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}
	faulted := 0
	for _, w := range workers {
		ka, kb := a.Peek(w, "sweep"), b.Peek(w, "sweep")
		if ka != kb {
			t.Fatalf("worker %s: same seed decided %v and %v", w, ka, kb)
		}
		if ka != NetNone {
			faulted++
			// Consumes FailFirst attempts, then clears.
			if got := a.Fault(w, "sweep"); got != ka {
				t.Fatalf("worker %s: first Fault %v, Peek said %v", w, got, ka)
			}
			if got := a.Fault(w, "sweep"); got != ka {
				t.Fatalf("worker %s: second Fault %v, want %v (FailFirst=2)", w, got, ka)
			}
			if got := a.Fault(w, "sweep"); got != NetNone {
				t.Fatalf("worker %s: third Fault %v, want recovered", w, got)
			}
		}
	}
	if faulted == 0 {
		t.Fatal("seed 42 at 70% stacked rates faulted no worker out of 8")
	}

	p := &NetPlan{Seed: 1}
	p.Partition("dead")
	for i := 0; i < 3; i++ {
		if got := p.Fault("dead", "sweep"); got != NetPartition {
			t.Fatalf("partitioned worker call %d: %v", i, got)
		}
	}
	if !p.Partitioned("dead") {
		t.Fatal("Partitioned lost the registration")
	}
	p.Heal("dead")
	if got := p.Fault("dead", "sweep"); got != NetNone {
		t.Fatalf("healed worker still faults: %v", got)
	}
	p.Always("flaky", NetErr)
	for i := 0; i < 3; i++ {
		if got := p.Fault("flaky", "probe"); got != NetErr {
			t.Fatalf("Always worker call %d: %v", i, got)
		}
	}
}

// TestBreakerEscalation: consecutive trips double the quarantine up to
// the cap, and one success resets the ladder.
func TestBreakerEscalation(t *testing.T) {
	base := 10 * time.Second
	b := NewEscalatingBreakerSet(1, base, 40*time.Second)
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }

	trip := func() {
		b.Record("node", false)
	}
	advance := func(d time.Duration) { clock = clock.Add(d) }

	trip() // trip 1: cooldown 10s
	if b.Allow("node") {
		t.Fatal("freshly tripped breaker admitted work")
	}
	advance(base)
	if !b.Allow("node") {
		t.Fatal("cooldown elapsed, probe not admitted")
	}
	trip() // probe failed → trip 2: cooldown 20s
	advance(base)
	if b.Allow("node") {
		t.Fatal("escalated breaker admitted a probe after only the base cooldown")
	}
	advance(base)
	if !b.Allow("node") {
		t.Fatal("doubled cooldown elapsed, probe not admitted")
	}
	trip() // trip 3: cooldown 40s (capped)
	advance(39 * time.Second)
	if b.Allow("node") {
		t.Fatal("escalated breaker admitted a probe before 40s")
	}
	advance(time.Second)
	if !b.Allow("node") {
		t.Fatal("capped cooldown elapsed, probe not admitted")
	}
	b.Record("node", true) // success resets the ladder
	if b.StateOf("node") != "closed" {
		t.Fatalf("state after recovery: %s", b.StateOf("node"))
	}
	trip()
	advance(base)
	if !b.Allow("node") {
		t.Fatal("escalation ladder did not reset on success")
	}
}

// TestBreakerStateOf: introspection reports the state without admitting
// probes or counting skips.
func TestBreakerStateOf(t *testing.T) {
	b := NewBreakerSet(2, time.Hour)
	if b.StateOf("k") != "closed" {
		t.Fatalf("unknown key state: %s", b.StateOf("k"))
	}
	b.Record("k", false)
	if b.StateOf("k") != "closed" {
		t.Fatalf("below-threshold state: %s", b.StateOf("k"))
	}
	b.Record("k", false)
	if b.StateOf("k") != "open" {
		t.Fatalf("tripped state: %s", b.StateOf("k"))
	}
	if got := b.Skips(); got != 0 {
		t.Fatalf("StateOf counted %d skips", got)
	}
	var nilSet *BreakerSet
	if nilSet.StateOf("k") != "closed" {
		t.Fatal("nil set must report closed")
	}
}
