// Package fault is the resilience layer of the simulation engine: a
// deterministic, seeded fault injector (Plan) that drives chaos tests
// byte-for-byte reproducibly through sim.Runner's FaultHook seam, plus
// the recovery machinery the espd service threads around every sweep
// cell — bounded retries with exponential backoff (RetryPolicy), a
// per-cell circuit breaker that quarantines persistently failing cells
// (BreakerSet), and an Executor combining the two.
//
// The paper's core move is speculation under failure: make forward
// progress while the primary path stalls, recover cleanly when the
// speculation was wasted. This package is the serving-layer analogue —
// a sweep keeps making forward progress while individual cells panic,
// stall, or fail to build, and recovers the wasted work by retrying,
// quarantining, or resuming from a checkpoint instead of aborting the
// grid.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"espsim/internal/sim"
)

// ErrInjected marks an error manufactured by a Plan, so tests and the
// service's error classifier can tell injected faults from organic
// ones: errors.Is(err, fault.ErrInjected).
var ErrInjected = errors.New("injected fault")

// Kind enumerates the fault shapes a Plan can inject into one cell.
type Kind uint8

const (
	// None leaves the operation untouched.
	None Kind = iota
	// Error fails the operation with an ErrInjected-wrapped error.
	Error
	// Panic panics inside the operation, exercising the runner's
	// containment (the machine is dropped, the error carries
	// sim.ErrPanic).
	Panic
	// Slow stalls the operation by the plan's SleepFor before letting it
	// proceed, so a cell with a tighter deadline times out.
	Slow
	// BuildFail fails the workload materialization ("build" ops) with an
	// ErrInjected-wrapped error; the runner drops the failed build from
	// its cache so a retry rebuilds.
	BuildFail
)

// String names a Kind for logs and test output.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Slow:
		return "slow"
	case BuildFail:
		return "build_fail"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Plan is a deterministic fault plan: which (app, config) cells fault,
// how, and for how many attempts, all derived from Seed by hashing —
// never from time or global randomness — so one seed reproduces one
// chaos run byte-for-byte. The zero value injects nothing; fill the
// exported knobs, then install Hook on a sim.Runner.
//
// A faulted cell fails its first FailFirst attempts and then behaves
// normally, which is exactly the shape retry machinery must recover
// from; cells registered with Always fail every attempt, which is
// exactly the shape a circuit breaker must quarantine.
type Plan struct {
	// Seed fixes every fault decision.
	Seed int64
	// RunRate is the fraction of distinct (app, config) replay cells
	// that fault, in [0, 1].
	RunRate float64
	// BuildRate is the fraction of distinct apps whose workload
	// materialization faults, in [0, 1].
	BuildRate float64
	// FailFirst is how many attempts of a faulted operation fail before
	// it recovers (minimum 1 once the plan decides to fault).
	FailFirst int
	// SleepFor is the stall duration for Slow faults.
	SleepFor time.Duration

	mu     sync.Mutex
	counts map[string]int
	always map[string]Kind
}

// Always registers a cell that faults with kind on every replay
// attempt, regardless of rates — the breaker-quarantine shape.
func (p *Plan) Always(app, config string, kind Kind) {
	p.mu.Lock()
	if p.always == nil {
		p.always = make(map[string]Kind)
	}
	p.always[app+"/"+config] = kind
	p.mu.Unlock()
}

// hashDecide derives the deterministic fault decision for one operation
// from the seed alone.
func (p *Plan) hashDecide(op, app, config string, rate float64) Kind {
	if rate <= 0 {
		return None
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s", p.Seed, op, app, config)
	v := h.Sum64()
	if float64(v%10000) >= rate*10000 {
		return None
	}
	if op == "build" {
		return BuildFail
	}
	// Spread the run-fault kinds deterministically across faulted cells.
	switch (v / 10000) % 3 {
	case 0:
		return Error
	case 1:
		return Panic
	default:
		return Slow
	}
}

// RunFault reports the kind a replay of (app, config) is assigned —
// introspection for tests asserting fault coverage.
func (p *Plan) RunFault(app, config string) Kind {
	p.mu.Lock()
	k, ok := p.always[app+"/"+config]
	p.mu.Unlock()
	if ok {
		return k
	}
	return p.hashDecide("run", app, config, p.RunRate)
}

// BuildFault reports whether app's workload materialization faults.
func (p *Plan) BuildFault(app string) bool {
	return p.hashDecide("build", app, "", p.BuildRate) != None
}

// Hook adapts the plan to the runner's injection seam. The returned
// hook tracks per-operation attempt counts so a faulted operation
// recovers after FailFirst failures (Always cells never recover).
func (p *Plan) Hook() sim.FaultHook {
	return func(pt sim.FaultPoint) error {
		var kind Kind
		forever := false
		switch pt.Op {
		case "build":
			if p.BuildFault(pt.App) {
				kind = BuildFail
			}
		case "run":
			p.mu.Lock()
			k, ok := p.always[pt.App+"/"+pt.Config]
			p.mu.Unlock()
			if ok {
				kind, forever = k, true
			} else {
				kind = p.hashDecide("run", pt.App, pt.Config, p.RunRate)
			}
		}
		if kind == None {
			return nil
		}

		key := pt.Op + "|" + pt.App + "|" + pt.Config
		p.mu.Lock()
		if p.counts == nil {
			p.counts = make(map[string]int)
		}
		attempt := p.counts[key]
		p.counts[key]++
		p.mu.Unlock()
		failFirst := p.FailFirst
		if failFirst < 1 {
			failFirst = 1
		}
		if !forever && attempt >= failFirst {
			return nil
		}

		switch kind {
		case Error:
			return fmt.Errorf("fault: run %s/%s attempt %d: %w", pt.App, pt.Config, attempt+1, ErrInjected)
		case Panic:
			panic(fmt.Sprintf("fault: injected panic in %s/%s attempt %d", pt.App, pt.Config, attempt+1))
		case Slow:
			time.Sleep(p.SleepFor)
			return nil
		case BuildFail:
			return fmt.Errorf("fault: build %s attempt %d: %w", pt.App, attempt+1, ErrInjected)
		}
		return nil
	}
}
