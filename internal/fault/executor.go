package fault

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen marks a cell that was never attempted because its
// circuit breaker is quarantining it.
var ErrBreakerOpen = errors.New("breaker open")

// Outcome is what one Executor.Run produced: how many attempts ran,
// whether the breaker skipped the cell entirely, and the final error
// (nil on success).
type Outcome struct {
	Attempts int
	Skipped  bool
	Err      error
}

// Executor runs one cell's work under the full recovery stack: breaker
// admission first, then up to RetryPolicy.MaxAttempts attempts with
// jittered exponential backoff between them, feeding every outcome back
// into the breaker. Safe for concurrent use; one Executor is meant to
// live as long as its server so the counters aggregate across sweeps.
type Executor struct {
	policy    RetryPolicy
	breakers  *BreakerSet
	retryable func(error) bool

	mu  sync.Mutex
	rng *rand.Rand

	retries atomic.Int64
}

// NewExecutor assembles an Executor. breakers may be nil (no
// quarantine); retryable nil retries every error; seed fixes the
// backoff jitter stream.
func NewExecutor(policy RetryPolicy, breakers *BreakerSet, retryable func(error) bool, seed int64) *Executor {
	return &Executor{
		policy:    policy.WithDefaults(),
		breakers:  breakers,
		retryable: retryable,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Policy returns the executor's effective (defaulted) retry policy.
func (e *Executor) Policy() RetryPolicy { return e.policy }

// Breakers returns the executor's breaker set (may be nil).
func (e *Executor) Breakers() *BreakerSet { return e.breakers }

// Retries reports cumulative re-attempts (attempts beyond each cell's
// first).
func (e *Executor) Retries() int64 { return e.retries.Load() }

// Run executes run under the policy. key selects the circuit breaker;
// run receives the 1-based attempt number. Retrying stops on success,
// on a non-retryable error, when the attempt budget is exhausted, when
// ctx is done, or when the breaker opens mid-retry.
func (e *Executor) Run(ctx context.Context, key string, run func(attempt int) error) Outcome {
	if !e.breakers.Allow(key) {
		return Outcome{Skipped: true, Err: ErrBreakerOpen}
	}
	for attempt := 1; ; attempt++ {
		err := run(attempt)
		e.breakers.Record(key, err == nil)
		if err == nil {
			return Outcome{Attempts: attempt}
		}
		if attempt >= e.policy.MaxAttempts || ctx.Err() != nil {
			return Outcome{Attempts: attempt, Err: err}
		}
		if e.retryable != nil && !e.retryable(err) {
			return Outcome{Attempts: attempt, Err: err}
		}
		if !e.breakers.Allow(key) {
			// Quarantined mid-retry: report the organic error, not the
			// breaker — the cell was attempted.
			return Outcome{Attempts: attempt, Err: err}
		}
		e.mu.Lock()
		wait := e.policy.backoff(attempt, e.rng)
		e.mu.Unlock()
		e.retries.Add(1)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return Outcome{Attempts: attempt, Err: err}
		}
	}
}
