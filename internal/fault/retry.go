package fault

import (
	"math/rand"
	"time"
)

// RetryPolicy bounds how the Executor re-runs a failed cell:
// exponential backoff from BaseBackoff doubling up to MaxBackoff, with
// a uniform ±JitterFrac fraction of jitter so retried cells from
// concurrent batches do not stampede in lockstep. The zero value means
// "defaults" (3 attempts, 25ms..1s, 20% jitter); MaxAttempts 1
// disables retrying without disabling the rest of the machinery.
type RetryPolicy struct {
	MaxAttempts int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	JitterFrac  float64
}

// WithDefaults fills unset fields.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.JitterFrac < 0 || p.JitterFrac >= 1 {
		p.JitterFrac = 0.2
	}
	return p
}

// backoff computes the sleep before retry number retries (1-based),
// jittered by rng.
func (p RetryPolicy) backoff(retries int, rng *rand.Rand) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < retries && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.JitterFrac > 0 && rng != nil {
		spread := 1 + p.JitterFrac*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * spread)
	}
	return d
}
