package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// fuzzRecord derives record i's deterministic payload (sizes vary from
// empty through a few hundred bytes so frames straddle mutation
// positions).
func fuzzRecord(seed int64, i int) []byte {
	n := int((seed+int64(i)*31)%307+307) % 307 // 0..306
	rec := make([]byte, n)
	for b := range rec {
		rec[b] = byte(seed) + byte(i*7) + byte(b*13)
	}
	return rec
}

// buildJournal writes a clean journal with n records and returns its
// raw bytes plus the written record set.
func buildJournal(t *testing.T, path string, seed int64, n int) (raw []byte, written [][]byte) {
	t.Helper()
	header := Meta{Version: 1, SweepID: "fuzz", Digest: fmt.Sprintf("%x", seed)}.Encode()
	j, _, _, err := Open(path, header)
	if err != nil {
		t.Fatalf("building journal: %v", err)
	}
	for i := 0; i < n; i++ {
		rec := fuzzRecord(seed, i)
		written = append(written, rec)
		if err := j.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw, written
}

// frameRanges locates every record frame's [start, end) in raw, so the
// duplication mutation can copy a whole frame.
func frameRanges(raw []byte) [][2]int {
	var ranges [][2]int
	off := len(magic)
	first := true
	for off+8 <= len(raw) {
		length := int(binary.LittleEndian.Uint32(raw[off : off+4]))
		end := off + 8 + length
		if length > maxRecordBytes || end > len(raw) {
			break
		}
		if !first { // skip the header frame
			ranges = append(ranges, [2]int{off, end})
		}
		first = false
		off = end
	}
	return ranges
}

// FuzzJournalReplay drives replay through adversarial damage — random
// truncation, bit flips anywhere (CRC frames included), duplicated
// record frames, appended garbage — and holds the two safety
// properties the resume path relies on: replay never panics, and it
// never yields a record that was not written (a duplicated written
// record is fine; a fabricated one is not). After any successful open
// the journal must still accept appends and replay them.
func FuzzJournalReplay(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(0), uint32(20), uint8(0))
	f.Add(int64(2), uint8(5), uint8(1), uint32(60), uint8(3))
	f.Add(int64(3), uint8(1), uint8(2), uint32(0), uint8(0))
	f.Add(int64(4), uint8(8), uint8(3), uint32(999), uint8(7))
	f.Add(int64(5), uint8(0), uint8(1), uint32(9), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRecords, mutKind uint8, pos uint32, bit uint8) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.espj")
		raw, written := buildJournal(t, path, seed, int(nRecords%12))

		mutated := append([]byte(nil), raw...)
		switch mutKind % 4 {
		case 0: // random truncation
			if len(mutated) > 0 {
				mutated = mutated[:int(pos)%(len(mutated)+1)]
			}
		case 1: // bit flip anywhere, CRC and length fields included
			if len(mutated) > 0 {
				mutated[int(pos)%len(mutated)] ^= 1 << (bit % 8)
			}
		case 2: // duplicate one record frame at the tail
			if ranges := frameRanges(raw); len(ranges) > 0 {
				r := ranges[int(pos)%len(ranges)]
				mutated = append(mutated, raw[r[0]:r[1]]...)
			}
		case 3: // appended garbage derived from the inputs
			junk := make([]byte, int(pos)%64)
			for i := range junk {
				junk[i] = byte(seed) ^ byte(i) ^ bit
			}
			mutated = append(mutated, junk...)
		}
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}

		isWritten := func(rec []byte) bool {
			for _, w := range written {
				if bytes.Equal(rec, w) {
					return true
				}
			}
			return false
		}

		// Read-only replay first: same properties, no mutation.
		if _, records, _, err := Peek(path); err == nil {
			for i, rec := range records {
				if !isWritten(rec) {
					t.Fatalf("peek yielded record %d that was never written (%d bytes)", i, len(rec))
				}
			}
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("peek failed with a non-corruption error: %v", err)
		}

		header := Meta{Version: 1, SweepID: "fuzz", Digest: fmt.Sprintf("%x", seed)}.Encode()
		j, _, records, err := Open(path, header)
		if err != nil {
			// Damage in the magic or header frame is refused loudly;
			// anything else must not error.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open failed with a non-corruption error: %v", err)
			}
			return
		}
		for i, rec := range records {
			if !isWritten(rec) {
				t.Fatalf("replay yielded record %d that was never written (%d bytes)", i, len(rec))
			}
		}

		// The survivor journal is append-ready: a new record lands after
		// the replayed prefix and both survive a reopen.
		extra := []byte("post-damage append")
		if err := j.Append(extra); err != nil {
			t.Fatalf("append after replay: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		_, records2, err := func() ([]byte, [][]byte, error) {
			j2, h, r, e := Open(path, header)
			if e == nil {
				j2.Close()
			}
			return h, r, e
		}()
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		if len(records2) != len(records)+1 || !bytes.Equal(records2[len(records2)-1], extra) {
			t.Fatalf("reopen replayed %d records, want %d ending in the append", len(records2), len(records)+1)
		}
		for i, rec := range records2[:len(records)] {
			if !bytes.Equal(rec, records[i]) {
				t.Fatalf("record %d changed across reopen", i)
			}
		}
	})
}

// TestFuzzRecordCRCSanity pins the helper the fuzzer trusts: frame
// ranges computed by frameRanges are exactly the frames readFrame
// accepts.
func TestFuzzRecordCRCSanity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sanity.espj")
	raw, written := buildJournal(t, path, 7, 5)
	ranges := frameRanges(raw)
	if len(ranges) != len(written) {
		t.Fatalf("frameRanges found %d frames, want %d", len(ranges), len(written))
	}
	for i, r := range ranges {
		payload := raw[r[0]+8 : r[1]]
		if !bytes.Equal(payload, written[i]) {
			t.Fatalf("frame %d payload mismatch", i)
		}
		sum := binary.LittleEndian.Uint32(raw[r[0]+4 : r[0]+8])
		if crc32.ChecksumIEEE(payload) != sum {
			t.Fatalf("frame %d CRC mismatch", i)
		}
	}
}
