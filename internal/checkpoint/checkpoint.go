// Package checkpoint implements the crash-safe journal espd uses to
// make sweeps resumable: an append-only file of length+CRC framed
// records behind a versioned header, fsync'd on every append, and
// torn-write tolerant on replay — a crash mid-append (or a corrupted
// tail) costs exactly the records after the last intact one, never the
// file.
//
// Layout:
//
//	magic   [8]byte  "ESPJRNL1"
//	header  frame    (opaque caller bytes, e.g. a sweep descriptor)
//	record  frame*   (opaque caller bytes, appended over time)
//
// where every frame is:
//
//	length  uint32 LE   payload byte count
//	crc32   uint32 LE   IEEE CRC of the payload
//	payload [length]byte
//
// Replay reads frames until EOF or the first damaged frame (short
// header, short payload, CRC mismatch, or an implausible length);
// everything from the damaged frame on is truncated away before
// appending resumes, so the journal is always a valid prefix of what
// was written.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// magic identifies a journal file and pins the format version; bumping
// the format means a new magic, and old files fail Open loudly instead
// of replaying garbage.
var magic = [8]byte{'E', 'S', 'P', 'J', 'R', 'N', 'L', '1'}

// maxRecordBytes bounds a frame's declared length on replay. A torn or
// corrupted length field must not make replay allocate gigabytes; any
// frame claiming more than this is treated as tail damage.
const maxRecordBytes = 16 << 20

// ErrCorrupt reports a journal whose magic or header frame is damaged —
// unlike a torn tail, there is nothing safe to resume from.
//
//esp:exempt local persistence error, matched with errors.Is at the serve/cluster resume sites; never reaches fault.Classify as a cell outcome
var ErrCorrupt = errors.New("checkpoint: journal corrupt")

// ErrClosed reports an Append against a journal that was already
// closed — a drained daemon must never write past its own shutdown.
//
//esp:exempt daemon-internal lifecycle error; never crosses the sweep wire, so it carries no ErrorKind
var ErrClosed = errors.New("checkpoint: journal closed")

// Meta is the typed journal header shared by espd sweeps and espcoord
// shard handoff: which sweep (and, for a coordinator-sharded grid,
// which shard) the records belong to, and a digest pinning every
// request knob that shapes results. A journal whose digest does not
// match the work being resumed must not be replayed — it would splice
// cells from a different grid.
type Meta struct {
	Version int    `json:"version"`
	SweepID string `json:"sweep_id"`
	Shard   string `json:"shard,omitempty"`
	Digest  string `json:"digest"`
}

// Encode renders the header frame payload.
func (m Meta) Encode() []byte {
	b, _ := json.Marshal(m) // no unmarshalable fields
	return b
}

// DecodeMeta parses a header frame payload.
func DecodeMeta(raw []byte) (Meta, error) {
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return Meta{}, fmt.Errorf("checkpoint: decoding header: %w", err)
	}
	return m, nil
}

// Journal is an open, append-ready checkpoint file. Not safe for
// concurrent use; callers serialize Append (espd holds one mutex per
// sweep journal).
type Journal struct {
	f      *os.File
	closed bool
}

// Open opens the journal at path, creating it (with header) if absent.
// On an existing file it verifies the magic, replays the header and
// every intact record, truncates any torn tail, and positions for
// append. The stored header is returned so the caller can check it
// still describes the same work before trusting the records.
func Open(path string, header []byte) (j *Journal, storedHeader []byte, records [][]byte, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("checkpoint: open %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()

	info, err := f.Stat()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("checkpoint: stat %s: %w", path, err)
	}
	if info.Size() == 0 {
		// Fresh journal: magic + header frame, durably.
		if _, err = f.Write(magic[:]); err != nil {
			return nil, nil, nil, fmt.Errorf("checkpoint: write magic: %w", err)
		}
		if err = writeFrame(f, header); err != nil {
			return nil, nil, nil, err
		}
		if err = f.Sync(); err != nil {
			return nil, nil, nil, fmt.Errorf("checkpoint: sync %s: %w", path, err)
		}
		syncDir(path)
		return &Journal{f: f}, header, nil, nil
	}

	var gotMagic [8]byte
	if _, err = io.ReadFull(f, gotMagic[:]); err != nil || gotMagic != magic {
		return nil, nil, nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	offset := int64(len(magic))
	storedHeader, n, ok, err := readFrame(f)
	if err != nil {
		return nil, nil, nil, err
	}
	if !ok || storedHeader == nil {
		return nil, nil, nil, fmt.Errorf("%w: %s: damaged header frame", ErrCorrupt, path)
	}
	offset += n

	for {
		rec, n, ok, rerr := readFrame(f)
		if rerr != nil {
			return nil, nil, nil, rerr
		}
		if !ok {
			break // torn tail: keep the intact prefix
		}
		if rec == nil {
			break // clean EOF
		}
		records = append(records, rec)
		offset += n
	}
	// Drop whatever follows the last intact record (no-op when clean).
	if err = f.Truncate(offset); err != nil {
		return nil, nil, nil, fmt.Errorf("checkpoint: truncate torn tail of %s: %w", path, err)
	}
	if _, err = f.Seek(offset, io.SeekStart); err != nil {
		return nil, nil, nil, fmt.Errorf("checkpoint: seek %s: %w", path, err)
	}
	return &Journal{f: f}, storedHeader, records, nil
}

// Append writes one record frame and fsyncs, so a record that Append
// reported written survives a crash.
func (j *Journal) Append(rec []byte) error {
	if j.closed {
		return ErrClosed
	}
	if err := writeFrame(j.f, rec); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	return nil
}

// Close fsyncs and releases the file, and guards against further
// appends. Every Append already synced its own frame, so the final
// sync is belt-and-suspenders for a drained (not crashed) shutdown: a
// journal a daemon closed on its way out is bit-complete on disk, with
// no torn tail for the successor to truncate. Idempotent.
func (j *Journal) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	return nil
}

// Peek replays a journal read-only: the decoded header, every intact
// record, and whether a torn tail was found (reported, not truncated —
// Peek must not mutate a file another process may still own). This is
// the coordinator's handoff view: when a worker dies mid-shard, Peek
// on its shard journal tells the coordinator what completed and lets
// it digest-check the header before resuming the rest on a peer.
func Peek(path string) (meta Meta, records [][]byte, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, nil, false, fmt.Errorf("checkpoint: peek %s: %w", path, err)
	}
	defer f.Close()

	var gotMagic [8]byte
	if _, rerr := io.ReadFull(f, gotMagic[:]); rerr != nil || gotMagic != magic {
		return Meta{}, nil, false, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	rawHeader, _, ok, err := readFrame(f)
	if err != nil {
		return Meta{}, nil, false, err
	}
	if !ok || rawHeader == nil {
		return Meta{}, nil, false, fmt.Errorf("%w: %s: damaged header frame", ErrCorrupt, path)
	}
	meta, err = DecodeMeta(rawHeader)
	if err != nil {
		return Meta{}, nil, false, fmt.Errorf("%w: %s: unreadable header", ErrCorrupt, path)
	}
	for {
		rec, _, ok, rerr := readFrame(f)
		if rerr != nil {
			return Meta{}, nil, false, rerr
		}
		if !ok {
			return meta, records, true, nil // torn tail
		}
		if rec == nil {
			return meta, records, false, nil // clean EOF
		}
		records = append(records, rec)
	}
}

// writeFrame emits length + CRC + payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("checkpoint: write frame payload: %w", err)
	}
	return nil
}

// readFrame reads one frame. It returns (nil, 0, true, nil) translated
// as clean EOF via rec == nil, ok == true; a short or corrupt frame is
// (nil, 0, false, nil) — tail damage, not an error; I/O failures are
// errors.
func readFrame(r io.Reader) (rec []byte, size int64, ok bool, err error) {
	var hdr [8]byte
	n, rerr := io.ReadFull(r, hdr[:])
	//esp:exempt io.ReadFull documents it returns unwrapped io.EOF/ErrUnexpectedEOF; identity is the fast path here
	if rerr == io.EOF && n == 0 {
		return nil, 0, true, nil // clean end
	}
	//esp:exempt io.ReadFull documents it returns unwrapped io.EOF/ErrUnexpectedEOF; identity is the fast path here
	if rerr == io.ErrUnexpectedEOF || (rerr == io.EOF && n > 0) {
		return nil, 0, false, nil // torn frame header
	}
	if rerr != nil {
		return nil, 0, false, fmt.Errorf("checkpoint: read frame header: %w", rerr)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxRecordBytes {
		return nil, 0, false, nil // implausible length: tail damage
	}
	payload := make([]byte, length)
	if _, rerr := io.ReadFull(r, payload); rerr != nil {
		//esp:exempt io.ReadFull documents it returns unwrapped io.EOF/ErrUnexpectedEOF; identity is the fast path here
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			return nil, 0, false, nil // torn payload
		}
		return nil, 0, false, fmt.Errorf("checkpoint: read frame payload: %w", rerr)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, false, nil // bit rot or torn overwrite
	}
	return payload, int64(len(hdr)) + int64(length), true, nil
}

// syncDir fsyncs the journal's directory so a freshly created file's
// directory entry is durable too; best-effort (some filesystems refuse
// directory fsync).
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
