package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openFresh(t *testing.T, path string, header []byte) *Journal {
	t.Helper()
	j, gotHeader, records, err := Open(path, header)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotHeader, header) || len(records) != 0 {
		t.Fatalf("fresh journal: header %q records %d", gotHeader, len(records))
	}
	return j
}

// TestRoundTrip: records written by Append come back on reopen, in
// order, with the stored header.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.espj")
	j := openFresh(t, path, []byte("header-v1"))
	want := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma with a longer payload")}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, header, records, err := Open(path, []byte("ignored on reopen"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if string(header) != "header-v1" {
		t.Fatalf("stored header %q, want the original", header)
	}
	if len(records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(records), len(want))
	}
	for i := range want {
		if !bytes.Equal(records[i], want[i]) {
			t.Fatalf("record %d: %q, want %q", i, records[i], want[i])
		}
	}
	// Appends continue after a replay.
	if err := j2.Append([]byte("delta")); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailTruncated simulates every crash-mid-append shape: a torn
// frame header, a torn payload, a corrupted CRC, and an implausible
// length. Replay must keep the intact prefix, drop the tail, and leave
// the file appendable.
func TestTornTailTruncated(t *testing.T) {
	intact := [][]byte{[]byte("one"), []byte("two")}
	cases := []struct {
		name string
		tear func([]byte) []byte
	}{
		{"torn frame header", func(b []byte) []byte { return append(b, 0x03, 0x00) }},
		{"torn payload", func(b []byte) []byte {
			return append(b, 0x10, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x', 'y')
		}},
		{"corrupt crc", func(b []byte) []byte {
			return append(b, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 'h', 'i')
		}},
		{"implausible length", func(b []byte) []byte {
			return append(b, 0xff, 0xff, 0xff, 0x7f, 0x00, 0x00, 0x00, 0x00, 'z')
		}},
		{"random garbage", func(b []byte) []byte { return append(b, bytes.Repeat([]byte{0xa5}, 37)...) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "sweep.espj")
			j := openFresh(t, path, []byte("hdr"))
			for _, rec := range intact {
				if err := j.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			goodSize := len(raw)
			if err := os.WriteFile(path, tc.tear(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			j2, header, records, err := Open(path, nil)
			if err != nil {
				t.Fatalf("torn tail must not fail open: %v", err)
			}
			if string(header) != "hdr" || len(records) != len(intact) {
				t.Fatalf("after tear: header %q, %d records, want hdr/%d", header, len(records), len(intact))
			}
			// The tail was physically truncated, and appending resumes
			// cleanly where the intact prefix ended.
			if info, err := os.Stat(path); err != nil || info.Size() != int64(goodSize) {
				t.Fatalf("file size %v after truncate, want %d", info.Size(), goodSize)
			}
			if err := j2.Append([]byte("three")); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			_, _, records, err = Open(path, nil)
			if err != nil || len(records) != 3 {
				t.Fatalf("re-replay after post-tear append: %d records, err %v", len(records), err)
			}
		})
	}
}

// TestCorruptHeaderRefused: damage before the first record is not
// recoverable and must be loud.
func TestCorruptHeaderRefused(t *testing.T) {
	for _, tc := range []struct {
		name string
		raw  []byte
	}{
		{"bad magic", []byte("NOTAJRNLxxxxxxxx")},
		{"magic only", []byte("ESPJRNL1")},
		{"torn header frame", append([]byte("ESPJRNL1"), 0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 'p')},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "sweep.espj")
			if err := os.WriteFile(path, tc.raw, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, _, err := Open(path, nil); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corrupt journal opened: %v", err)
			}
		})
	}
}

// TestManyRecords keeps framing honest across sizes around buffer
// boundaries.
func TestManyRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.espj")
	j := openFresh(t, path, []byte("h"))
	var want [][]byte
	for i := 0; i < 64; i++ {
		rec := bytes.Repeat([]byte{byte(i)}, i*17%256)
		want = append(want, rec)
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	_, _, records, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(want) {
		t.Fatalf("%d records, want %d", len(records), len(want))
	}
	for i := range want {
		if !bytes.Equal(records[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestOpenRejectsUnreadableDir: the error path is an error, not a
// panic.
func TestOpenRejectsUnreadableDir(t *testing.T) {
	if _, _, _, err := Open(filepath.Join(t.TempDir(), "no", "such", "dir", "x.espj"), nil); err == nil {
		t.Fatal("open in a missing directory succeeded")
	} else if errors.Is(err, ErrCorrupt) {
		t.Fatalf("I/O failure misclassified as corruption: %v", err)
	}
}

// TestPeekReadOnly: Peek replays header and records without taking
// over the file — a torn tail is reported, not truncated.
func TestPeekReadOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.espj")
	meta := Meta{Version: 1, SweepID: "s1", Shard: "amazon", Digest: "abc"}
	j := openFresh(t, path, meta.Encode())
	want := [][]byte{[]byte("r0"), []byte("r1"), []byte("r2")}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, records, torn, err := Peek(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("peeked meta %+v, want %+v", got, meta)
	}
	if torn {
		t.Fatal("clean journal reported torn")
	}
	if len(records) != len(want) {
		t.Fatalf("peeked %d records, want %d", len(records), len(want))
	}
	for i := range want {
		if !bytes.Equal(records[i], want[i]) {
			t.Fatalf("record %d: %q, want %q", i, records[i], want[i])
		}
	}

	// Tear the tail: Peek reports it and must not shrink the file.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tornRaw := append(raw, 0x07, 0x00, 0x00)
	if err := os.WriteFile(path, tornRaw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, records, torn, err = Peek(path)
	if err != nil || !torn || len(records) != len(want) {
		t.Fatalf("torn peek: %d records torn=%v err=%v", len(records), torn, err)
	}
	if info, err := os.Stat(path); err != nil || info.Size() != int64(len(tornRaw)) {
		t.Fatalf("Peek mutated the file: size %d, want %d", info.Size(), len(tornRaw))
	}

	// Missing file and corrupt headers are loud.
	if _, _, _, err := Peek(filepath.Join(t.TempDir(), "nope.espj")); err == nil {
		t.Fatal("peek of a missing journal succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.espj")
	if err := os.WriteFile(bad, []byte("NOTAJRNLxxxxxxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Peek(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt peek: %v", err)
	}
}

// TestCloseGuardsAppends: Close fsyncs, is idempotent, and a
// post-close Append is refused with ErrClosed instead of writing
// through a dead handle.
func TestCloseGuardsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.espj")
	j := openFresh(t, path, []byte("h"))
	if err := j.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := j.Append([]byte("two")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	_, _, records, err := Open(path, nil)
	if err != nil || len(records) != 1 {
		t.Fatalf("journal after close: %d records, err %v", len(records), err)
	}
}

// TestMetaRoundTrip: Encode/DecodeMeta are inverses and reject
// garbage.
func TestMetaRoundTrip(t *testing.T) {
	m := Meta{Version: 1, SweepID: "fig9", Shard: "cnn", Digest: "deadbeef"}
	got, err := DecodeMeta(m.Encode())
	if err != nil || got != m {
		t.Fatalf("round trip: %+v, err %v", got, err)
	}
	if _, err := DecodeMeta([]byte("not json")); err == nil {
		t.Fatal("DecodeMeta accepted garbage")
	}
}
