// Package energy models the energy accounting of §6.7 and Figure 14. The
// paper uses McPAT 1.2 and CACTI 5.3; we substitute an activity-based
// coefficient model over the same counters (DESIGN.md §2): per-structure
// dynamic energies, static energy proportional to run time, wasted
// wrong-path work proportional to mispredictions, and the extra
// instructions ESP pre-executes.
package energy

// Model holds per-event energy coefficients in arbitrary consistent
// units (normalized joules; only relative energy is reported, so the
// absolute scale cancels).
type Model struct {
	// PerInst is the dynamic energy of fetching, decoding, renaming and
	// executing one instruction (core datapath).
	PerInst float64
	// PerL1, PerL2, PerMem are per-access energies of each level.
	PerL1  float64
	PerL2  float64
	PerMem float64
	// PerBranch is the predictor lookup+update energy.
	PerBranch float64
	// PerCachelet and PerList are ESP's small-structure access energies.
	PerCachelet float64
	PerList     float64
	// WrongPathPerMispredict is the wasted dynamic work of one pipeline
	// flush (fetching and partially executing wrong-path instructions).
	WrongPathPerMispredict float64
	// StaticPerCycle is leakage plus clock power per cycle.
	StaticPerCycle float64
}

// DefaultModel returns coefficients scaled for the Figure 7 core at 32nm,
// 1.2V. The ratios (DRAM ≫ L2 ≫ L1 ≫ datapath) follow CACTI-class
// models.
func DefaultModel() Model {
	return Model{
		PerInst:                0.32,
		PerL1:                  0.05,
		PerL2:                  0.45,
		PerMem:                 2.6,
		PerBranch:              0.02,
		PerCachelet:            0.012,
		PerList:                0.005,
		WrongPathPerMispredict: 2.2,
		StaticPerCycle:         0.15,
	}
}

// Activity is the counter bundle one simulation produces.
type Activity struct {
	Cycles       int64
	Insts        int64
	PreExecInsts int64 // instructions executed in ESP/runahead modes
	Branches     int64
	Mispredicts  int64
	L1IAccesses  int64
	L1DAccesses  int64
	L2Accesses   int64
	MemAccesses  int64
	Prefetches   int64 // prefetch installs (bus + array write energy)
	CacheletOps  int64
	ListOps      int64
}

// Breakdown is the Figure 14 decomposition: branch-misprediction energy,
// static energy, and the rest of the dynamic energy.
type Breakdown struct {
	Mispredict float64
	Static     float64
	Dynamic    float64
}

// Total returns the sum of the components.
func (b Breakdown) Total() float64 { return b.Mispredict + b.Static + b.Dynamic }

// RelativeTo scales the breakdown so that base.Total() == 1, which is how
// Figure 14 plots energy relative to the next-line baseline.
func (b Breakdown) RelativeTo(base Breakdown) Breakdown {
	t := base.Total()
	if t == 0 {
		return Breakdown{}
	}
	return Breakdown{Mispredict: b.Mispredict / t, Static: b.Static / t, Dynamic: b.Dynamic / t}
}

// Compute evaluates the model over an activity bundle.
func Compute(a Activity, m Model) Breakdown {
	var b Breakdown
	b.Static = float64(a.Cycles) * m.StaticPerCycle
	b.Mispredict = float64(a.Mispredicts) * m.WrongPathPerMispredict
	b.Dynamic = float64(a.Insts+a.PreExecInsts)*m.PerInst +
		float64(a.Branches)*m.PerBranch +
		float64(a.L1IAccesses+a.L1DAccesses)*m.PerL1 +
		float64(a.L2Accesses)*m.PerL2 +
		float64(a.MemAccesses)*m.PerMem +
		float64(a.Prefetches)*(m.PerL1+m.PerL2) +
		float64(a.CacheletOps)*m.PerCachelet +
		float64(a.ListOps)*m.PerList
	return b
}
