package energy

import (
	"testing"
	"testing/quick"
)

func act() Activity {
	return Activity{
		Cycles: 1_000_000, Insts: 500_000, Branches: 60_000, Mispredicts: 6_000,
		L1IAccesses: 120_000, L1DAccesses: 160_000, L2Accesses: 9_000, MemAccesses: 2_500,
		Prefetches: 4_000,
	}
}

func TestComputePositiveComponents(t *testing.T) {
	b := Compute(act(), DefaultModel())
	if b.Static <= 0 || b.Dynamic <= 0 || b.Mispredict <= 0 {
		t.Fatalf("non-positive components: %+v", b)
	}
	if b.Total() != b.Static+b.Dynamic+b.Mispredict {
		t.Fatal("Total != sum of components")
	}
}

func TestExtraInstructionsCostEnergy(t *testing.T) {
	a := act()
	base := Compute(a, DefaultModel())
	a.PreExecInsts = 100_000
	a.CacheletOps = 100_000
	esp := Compute(a, DefaultModel())
	if esp.Total() <= base.Total() {
		t.Fatal("pre-executed instructions must cost energy")
	}
	if esp.Static != base.Static {
		t.Fatal("static energy depends only on cycles")
	}
}

func TestFewerCyclesLessStatic(t *testing.T) {
	a := act()
	b := a
	b.Cycles /= 2
	if Compute(b, DefaultModel()).Static >= Compute(a, DefaultModel()).Static {
		t.Fatal("halving run time must halve static energy")
	}
}

func TestRelativeTo(t *testing.T) {
	base := Compute(act(), DefaultModel())
	rel := base.RelativeTo(base)
	if tot := rel.Total(); tot < 0.999 || tot > 1.001 {
		t.Fatalf("self-relative total = %v, want 1", tot)
	}
	var zero Breakdown
	if z := base.RelativeTo(zero); z.Total() != 0 {
		t.Fatal("relative to zero should degrade to zero, not NaN")
	}
}

func TestMemoryDominatesPerAccess(t *testing.T) {
	m := DefaultModel()
	if !(m.PerMem > m.PerL2 && m.PerL2 > m.PerL1 && m.PerL1 > 0) {
		t.Fatalf("energy hierarchy inverted: %+v", m)
	}
}

func TestComputeMonotone(t *testing.T) {
	f := func(extra uint32) bool {
		a := act()
		b := a
		b.MemAccesses += int64(extra % 1_000_000)
		return Compute(b, DefaultModel()).Total() >= Compute(a, DefaultModel()).Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
