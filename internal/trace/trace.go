// Package trace defines the instruction-level currency of the simulator:
// dynamic instruction records, replayable instruction streams, and the
// event metadata that ties streams to the asynchronous runtime.
//
// The paper drives its evaluation with instruction traces of Chromium's
// renderer process (Section 5). We reproduce that pipeline with synthetic
// but statistically calibrated traces (package workload); everything above
// the generator consumes only the types defined here, so recorded traces
// and synthetic traces are interchangeable.
package trace

// Kind classifies a dynamic instruction. The timing model only needs to
// know whether an instruction touches memory, transfers control, or
// occupies an execution slot.
type Kind uint8

const (
	// ALU is any non-memory, non-control instruction.
	ALU Kind = iota
	// Load reads memory at Inst.Addr.
	Load
	// Store writes memory at Inst.Addr.
	Store
	// Branch is a control transfer; Taken/Target/Indirect describe it.
	Branch
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case ALU:
		return "alu"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return "unknown"
	}
}

// InstBytes is the fixed instruction size. A fixed-size RISC-like encoding
// keeps program-counter arithmetic trivial; the paper's traces are x86 but
// nothing in ESP depends on variable-length encoding.
const InstBytes = 4

// LineBytes is the cache line size used throughout (Figure 7).
const LineBytes = 64

// Inst is one dynamic instruction. The record is deliberately 24 bytes:
// workload planes hold millions of these and every replay streams them
// end-to-end, so record width is replay memory bandwidth.
type Inst struct {
	// PC is the instruction's virtual address.
	PC uint64
	// Addr is the instruction's data address: the effective memory
	// address for Load/Store, and the branch target for Branch. No
	// instruction kind carries both meanings, so they share one field.
	Addr uint64
	// Kind classifies the instruction.
	Kind Kind
	// Taken reports whether a Branch was taken.
	Taken bool
	// Indirect reports whether a Branch computed its target at run time
	// (indirect call/jump); such branches consult the iBTB.
	Indirect bool
	// Call marks a Branch that pushes a return address; Ret marks one
	// that returns through it. They drive the return address stack.
	Call bool
	Ret  bool
}

// NextPC returns the address of the instruction that follows i in the
// dynamic stream.
func (i Inst) NextPC() uint64 {
	if i.Kind == Branch && i.Taken {
		return i.Addr
	}
	return i.PC + InstBytes
}

// Line returns the cache line address (tag | index bits) containing addr.
func Line(addr uint64) uint64 { return addr &^ (LineBytes - 1) }

// Stream is a replayable sequence of dynamic instructions for one event.
// Next returns false when the event has retired its last instruction.
type Stream interface {
	Next() (Inst, bool)
}

// EventClass groups events by the kind of asynchronous work they carry.
// The classes mirror the mobile-web taxonomy from PES: user input, frame
// rendering, timer callbacks, and network completions. ClassNone marks
// events from untimed workloads that carry no class information.
type EventClass uint8

const (
	// ClassNone is the zero class: the event carries no class metadata.
	ClassNone EventClass = iota
	// ClassInput is a user-input handler (tap, scroll, key).
	ClassInput
	// ClassRender is a frame-rendering callback (rAF, style/layout).
	ClassRender
	// ClassTimer is a timer expiry (setTimeout/setInterval).
	ClassTimer
	// ClassNetwork is a network completion (XHR/fetch callback).
	ClassNetwork

	// NumEventClasses is the number of distinct EventClass values.
	NumEventClasses = 5
)

// String returns a short mnemonic for the class.
func (c EventClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassInput:
		return "input"
	case ClassRender:
		return "render"
	case ClassTimer:
		return "timer"
	case ClassNetwork:
		return "network"
	default:
		return "unknown"
	}
}

// Event is one unit of asynchronous work: a handler invocation posted to
// the software event queue.
type Event struct {
	// ID is the event's position in the session's execution order.
	ID int
	// Handler identifies the handler type (callback function) invoked.
	Handler int
	// Seed makes the event's dynamic behaviour reproducible.
	Seed uint64
	// Len is the approximate number of instructions the event retires.
	Len int
	// Diverge, when >= 0, is the instruction index at which a speculative
	// pre-execution of this event diverges from its eventual normal
	// execution (the event depended on an earlier, skipped event). A
	// value of -1 means pre-execution matches normal execution exactly.
	Diverge int
	// Class groups the event for scheduling and responsiveness metrics.
	// ClassNone (the zero value) marks events with no class metadata.
	Class EventClass
	// Prio is the event's scheduling priority; lower values are more
	// urgent. Only consulted by priority-aware schedulers.
	Prio uint8
	// Arrival is the virtual time (in instruction units) at which the
	// event was posted to the queue. Untimed workloads leave it zero.
	Arrival int64
	// Deadline is the virtual time by which the event should complete;
	// zero means the event carries no deadline.
	Deadline int64
}

// Timed reports whether the event carries any scheduling metadata
// (class, priority, arrival, or deadline).
func (e Event) Timed() bool {
	return e.Class != ClassNone || e.Prio != 0 || e.Arrival != 0 || e.Deadline != 0
}

// Program produces replayable instruction streams for events. Stream may
// be called any number of times for the same event; each call restarts the
// event from its first instruction.
type Program interface {
	// Stream returns ev's instruction stream. When speculative is true the
	// stream is the pre-execution variant, which follows the normal stream
	// until ev.Diverge and then departs from it.
	Stream(ev Event, speculative bool) Stream
}

// SliceStream adapts a materialized instruction slice to the Stream
// interface.
type SliceStream struct {
	insts []Inst //esp:immutable
	pos   int
}

// NewSliceStream returns a Stream that yields insts in order.
func NewSliceStream(insts []Inst) *SliceStream { return &SliceStream{insts: insts} }

// Next implements Stream.
func (s *SliceStream) Next() (Inst, bool) {
	if s.pos >= len(s.insts) {
		return Inst{}, false
	}
	i := s.insts[s.pos]
	s.pos++
	return i, true
}

// Reset rewinds the stream to the first instruction.
func (s *SliceStream) Reset() { s.pos = 0 }

// Record drains a stream into a slice, up to max instructions
// (max <= 0 means unbounded).
func Record(s Stream, max int) []Inst {
	var out []Inst
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		in, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, in)
	}
}
