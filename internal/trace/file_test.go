package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// validPayload returns one encoded event with a known instruction mix.
func validPayload(t *testing.T) []byte {
	t.Helper()
	r := rand.New(rand.NewSource(3))
	var buf bytes.Buffer
	if err := WriteFile(&buf, []EventTrace{randomEventTrace(r, 0)}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadFileBadVersionDistinct(t *testing.T) {
	in := []byte{'E', 'S', 'P', 'T', 9, 0}
	_, err := ReadFile(bytes.NewReader(in))
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("ErrBadVersion must wrap ErrBadTrace, got %v", err)
	}
	if !strings.Contains(err.Error(), "unsupported version 9") {
		t.Fatalf("version error lacks the offending byte: %v", err)
	}
}

// TestWriteFileVersionSelection: untimed traces keep the legacy v1
// encoding byte-for-byte; any scheduling metadata switches the file to
// v2.
func TestWriteFileVersionSelection(t *testing.T) {
	untimed := []EventTrace{{Event: Event{ID: 0, Len: 1, Diverge: -1}, Insts: []Inst{{PC: 0x40}}}}
	var buf bytes.Buffer
	if err := WriteFile(&buf, untimed); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[4]; got != 1 {
		t.Fatalf("untimed trace encoded as version %d, want 1", got)
	}
	timed := []EventTrace{{Event: Event{ID: 0, Len: 1, Diverge: -1, Deadline: 500}, Insts: []Inst{{PC: 0x40}}}}
	buf.Reset()
	if err := WriteFile(&buf, timed); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[4]; got != 2 {
		t.Fatalf("timed trace encoded as version %d, want 2", got)
	}
	got, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Event.Deadline != 500 {
		t.Fatalf("deadline lost across round trip: %+v", got[0].Event)
	}
}

// TestReadFileRejectsBadClass: a v2 payload whose class byte is outside
// the defined event classes is malformed, not silently clamped.
func TestReadFileRejectsBadClass(t *testing.T) {
	in := []byte{'E', 'S', 'P', 'T', 2, 1, // one event
		0, 0, // id, handler
		0, 0, 0, 0, 0, 0, 0, 0, // seed
		1,               // diverge varint (-1)
		NumEventClasses, // class out of range
	}
	_, err := ReadFile(bytes.NewReader(in))
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("want ErrBadTrace, got %v", err)
	}
	if !strings.Contains(err.Error(), "class") {
		t.Fatalf("error does not name the class section: %v", err)
	}
}

func TestReadFileTrailingGarbageDistinct(t *testing.T) {
	in := append(validPayload(t), 0xEE)
	_, err := ReadFile(bytes.NewReader(in))
	if !errors.Is(err, ErrTrailingGarbage) {
		t.Fatalf("want ErrTrailingGarbage, got %v", err)
	}
	if errors.Is(err, ErrBadVersion) {
		t.Fatal("trailing-garbage error must be distinct from the version error")
	}
	if !strings.Contains(err.Error(), "byte offset") {
		t.Fatalf("error lacks byte-offset context: %v", err)
	}
}

func TestReadFileErrorsCarryOffsets(t *testing.T) {
	full := validPayload(t)
	// Truncate at every section boundary of the fixed-layout prefix and
	// a spread of points inside the instruction payload.
	cuts := []int{0, 1, 3, 4, 5} // inside magic, after magic, version
	for n := 6; n < len(full)-1; n += 3 {
		cuts = append(cuts, n)
	}
	for _, n := range cuts {
		_, err := ReadFile(bytes.NewReader(full[:n]))
		if err == nil {
			t.Fatalf("truncation at byte %d of %d accepted", n, len(full))
		}
		if !errors.Is(err, ErrBadTrace) {
			t.Fatalf("truncation at %d: error does not wrap ErrBadTrace: %v", n, err)
		}
		if n >= 4 && !strings.Contains(err.Error(), "byte offset") {
			t.Fatalf("truncation at %d: error lacks byte-offset context: %v", n, err)
		}
	}
}

// header emits magic+version+event count, the common prefix for
// hand-built payloads.
func header(nEvents uint64) []byte {
	out := []byte{'E', 'S', 'P', 'T', fileVersion}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], nEvents)
	return append(out, buf[:n]...)
}

func TestReadFileLimitsEvents(t *testing.T) {
	in := header(100)
	_, err := ReadFileLimits(bytes.NewReader(in), Limits{MaxEvents: 10})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge for event-count bomb, got %v", err)
	}
}

func TestReadFileLimitsInsts(t *testing.T) {
	// One event declaring 2^40 instructions in a handful of bytes.
	in := header(1)
	var buf [binary.MaxVarintLen64]byte
	in = append(in, 0, 0)                 // id, handler
	in = append(in, make([]byte, 8)...)   // seed
	in = append(in, 0)                    // diverge = 0
	n := binary.PutUvarint(buf[:], 1<<40) // inst count
	in = append(in, buf[:n]...)
	_, err := ReadFileLimits(bytes.NewReader(in), Limits{MaxInsts: 1 << 20})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge for instruction-count bomb, got %v", err)
	}
}

func TestReadFileLimitsBytes(t *testing.T) {
	full := validPayload(t)
	_, err := ReadFileLimits(bytes.NewReader(full), Limits{MaxTraceBytes: 8})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge under a byte budget, got %v", err)
	}
	// The same payload decodes cleanly when the budget is sufficient.
	if _, err := ReadFileLimits(bytes.NewReader(full), Limits{MaxTraceBytes: int64(len(full))}); err != nil {
		t.Fatalf("payload within budget rejected: %v", err)
	}
}

func TestReadFileDeclaredCountBombDoesNotPreallocate(t *testing.T) {
	// A 12-byte input declaring 2^25 events must fail on EOF without
	// first allocating 2^25 EventTrace headers (~3 GiB).
	in := header(1 << 25)
	_, err := ReadFile(bytes.NewReader(in))
	if err == nil {
		t.Fatal("header-only bomb accepted")
	}
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("want ErrBadTrace, got %v", err)
	}
}
