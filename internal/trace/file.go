package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// File format (little-endian, varint-compressed):
//
//	magic "ESPT" | version u8 | event count uvarint
//	per event: id uvarint | handler uvarint | seed u64 | diverge varint |
//	           [v2: class u8 | prio u8 | arrival varint | deadline varint |]
//	           inst count uvarint | insts...
//	per inst:  kind u8 (bit0-1 kind, bit2 taken, bit3 indirect,
//	           bit4 call, bit5 ret) |
//	           pc delta varint | addr uvarint (mem only) |
//	           target delta varint (taken branches only)
//
// PC and target are delta-encoded against the previous instruction's PC,
// which keeps sequential code to ~2 bytes per instruction.
//
// Version 2 adds the scheduling metadata block (class/prio/arrival/
// deadline) per event. WriteFile emits version 1 when every event's
// scheduling metadata is zero, so traces from untimed workloads stay
// byte-identical to the legacy encoding.

var fileMagic = [4]byte{'E', 'S', 'P', 'T'}

const (
	fileVersion      = 1
	fileVersionTimed = 2
)

// Decode errors. Every error returned by ReadFile wraps ErrBadTrace, so
// callers can match the whole family with errors.Is(err, ErrBadTrace);
// the more specific sentinels below additionally identify the distinct
// failure modes that tooling wants to tell apart.
var (
	// ErrBadTrace reports a malformed trace file.
	ErrBadTrace = errors.New("trace: malformed trace file")
	// ErrBadVersion reports a well-formed magic followed by a version
	// byte this decoder does not understand.
	ErrBadVersion = fmt.Errorf("%w: unsupported version", ErrBadTrace)
	// ErrTrailingGarbage reports extra bytes after the last encoded
	// event: the file is not a pure ESPT payload.
	ErrTrailingGarbage = fmt.Errorf("%w: trailing garbage after last event", ErrBadTrace)
	// ErrTooLarge reports a trace that exceeds the decoder's Limits
	// before it is fully decoded (a decode bomb, or limits set too low).
	ErrTooLarge = fmt.Errorf("%w: exceeds decode limits", ErrBadTrace)
)

// Limits bounds what the decoder will materialize from an untrusted
// ESPT payload. A corrupt or hostile file can declare arbitrarily large
// event and instruction counts in a handful of bytes; the limits cap the
// decoded size so ReadFile fails with ErrTooLarge instead of exhausting
// memory. The zero value of any field means "no limit on that axis".
type Limits struct {
	// MaxTraceBytes caps the encoded input size consumed from the
	// reader, in bytes.
	MaxTraceBytes int64
	// MaxEvents caps the number of events in the file.
	MaxEvents uint64
	// MaxInsts caps the total instruction count across all events
	// (each decoded Inst occupies 40 bytes in memory).
	MaxInsts uint64
}

// DefaultLimits returns the limits ReadFile applies: 1 GiB of encoded
// input, 64 Mi events and 256 Mi total instructions (~10 GiB decoded, an
// order of magnitude above the largest session cmd/tracegen emits).
func DefaultLimits() Limits {
	return Limits{
		MaxTraceBytes: 1 << 30,
		MaxEvents:     1 << 26,
		MaxInsts:      1 << 28,
	}
}

// EventTrace is a fully materialized event: its metadata plus every
// dynamic instruction it retires.
type EventTrace struct {
	Event Event
	Insts []Inst
}

// WriteFile encodes events to w in the ESPT binary format. The version
// byte is 1 unless at least one event carries scheduling metadata
// (class, priority, arrival, or deadline), in which case version 2 is
// emitted with the extra per-event block.
func WriteFile(w io.Writer, events []EventTrace) error {
	ver := byte(fileVersion)
	for _, et := range events {
		if et.Event.Timed() {
			ver = fileVersionTimed
			break
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(ver); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(events))); err != nil {
		return err
	}
	for _, et := range events {
		ev := et.Event
		if err := putUvarint(uint64(ev.ID)); err != nil {
			return err
		}
		if err := putUvarint(uint64(ev.Handler)); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf[:8], ev.Seed)
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
		if err := putVarint(int64(ev.Diverge)); err != nil {
			return err
		}
		if ver == fileVersionTimed {
			if err := bw.WriteByte(byte(ev.Class)); err != nil {
				return err
			}
			if err := bw.WriteByte(ev.Prio); err != nil {
				return err
			}
			if err := putVarint(ev.Arrival); err != nil {
				return err
			}
			if err := putVarint(ev.Deadline); err != nil {
				return err
			}
		}
		if err := putUvarint(uint64(len(et.Insts))); err != nil {
			return err
		}
		prevPC := uint64(0)
		for _, in := range et.Insts {
			hdr := byte(in.Kind) & 0x3
			if in.Taken {
				hdr |= 1 << 2
			}
			if in.Indirect {
				hdr |= 1 << 3
			}
			if in.Call {
				hdr |= 1 << 4
			}
			if in.Ret {
				hdr |= 1 << 5
			}
			if err := bw.WriteByte(hdr); err != nil {
				return err
			}
			if err := putVarint(int64(in.PC) - int64(prevPC)); err != nil {
				return err
			}
			prevPC = in.PC
			if in.Kind == Load || in.Kind == Store {
				if err := putUvarint(in.Addr); err != nil {
					return err
				}
			}
			if in.Kind == Branch && in.Taken {
				if err := putVarint(int64(in.Addr) - int64(in.PC)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// traceReader reads bytes from an ESPT payload while tracking the byte
// offset (for error context) and enforcing Limits.MaxTraceBytes. It
// implements io.ByteReader so binary.ReadUvarint/ReadVarint can consume
// it directly.
type traceReader struct {
	br  *bufio.Reader
	off int64
	max int64 // 0 = unlimited
}

// ReadByte implements io.ByteReader.
func (r *traceReader) ReadByte() (byte, error) {
	if r.max > 0 && r.off >= r.max {
		return 0, fmt.Errorf("%w: input larger than %d bytes", ErrTooLarge, r.max)
	}
	b, err := r.br.ReadByte()
	if err != nil {
		return 0, err
	}
	r.off++
	return b, nil
}

func (r *traceReader) readFull(p []byte) error {
	for i := range p {
		b, err := r.ReadByte()
		if err != nil {
			//esp:exempt bufio.Reader.ReadByte returns unwrapped io.EOF; this is the decoder's per-byte hot path
			if err == io.EOF && i > 0 {
				return io.ErrUnexpectedEOF
			}
			return err
		}
		p[i] = b
	}
	return nil
}

// fail wraps err with the decode context ReadFile promises: the section
// being decoded and the byte offset the decoder had reached.
func (r *traceReader) fail(section string, err error) error {
	if errors.Is(err, ErrBadTrace) {
		return fmt.Errorf("%w (decoding %s at byte offset %d)", err, section, r.off)
	}
	return fmt.Errorf("%w: %v (decoding %s at byte offset %d)", ErrBadTrace, err, section, r.off)
}

// preallocCap bounds the initial capacity of a slice whose length n was
// declared by untrusted input: allocate at most cap entries up front and
// let append grow the rest, so a lying header cannot force a huge
// allocation before the decoder hits EOF.
func preallocCap(n, cap uint64) int {
	if n > cap {
		return int(cap)
	}
	return int(n)
}

// ReadFile decodes an ESPT trace previously written by WriteFile,
// applying DefaultLimits. Use ReadFileLimits to set explicit bounds.
func ReadFile(r io.Reader) ([]EventTrace, error) {
	return ReadFileLimits(r, DefaultLimits())
}

// ReadFileLimits decodes an ESPT trace under the given limits. The input
// is untrusted: any syntactic corruption, truncation, trailing garbage
// or limit violation yields an error wrapping ErrBadTrace (never a panic
// or an unbounded allocation), with the byte offset of the failure.
func ReadFileLimits(r io.Reader, lim Limits) ([]EventTrace, error) {
	tr := &traceReader{br: bufio.NewReader(r), max: lim.MaxTraceBytes}
	var magic [4]byte
	if err := tr.readFull(magic[:]); err != nil {
		return nil, tr.fail("magic", err)
	}
	if magic != fileMagic {
		return nil, tr.fail("magic", fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:]))
	}
	ver, err := tr.ReadByte()
	if err != nil {
		return nil, tr.fail("version", err)
	}
	if ver != fileVersion && ver != fileVersionTimed {
		return nil, tr.fail("version", fmt.Errorf("%w %d (decoder supports %d and %d)",
			ErrBadVersion, ver, fileVersion, fileVersionTimed))
	}
	nEvents, err := binary.ReadUvarint(tr)
	if err != nil {
		return nil, tr.fail("event count", err)
	}
	if lim.MaxEvents > 0 && nEvents > lim.MaxEvents {
		return nil, tr.fail("event count",
			fmt.Errorf("%w: %d events (limit %d)", ErrTooLarge, nEvents, lim.MaxEvents))
	}
	var totalInsts uint64
	events := make([]EventTrace, 0, preallocCap(nEvents, 1024))
	for e := uint64(0); e < nEvents; e++ {
		section := fmt.Sprintf("event %d", e)
		var et EventTrace
		id, err := binary.ReadUvarint(tr)
		if err != nil {
			return nil, tr.fail(section+" id", err)
		}
		handler, err := binary.ReadUvarint(tr)
		if err != nil {
			return nil, tr.fail(section+" handler", err)
		}
		var seedBuf [8]byte
		if err := tr.readFull(seedBuf[:]); err != nil {
			return nil, tr.fail(section+" seed", err)
		}
		diverge, err := binary.ReadVarint(tr)
		if err != nil {
			return nil, tr.fail(section+" diverge", err)
		}
		var class EventClass
		var prio uint8
		var arrival, deadline int64
		if ver == fileVersionTimed {
			cb, err := tr.ReadByte()
			if err != nil {
				return nil, tr.fail(section+" class", err)
			}
			if cb >= NumEventClasses {
				return nil, tr.fail(section+" class",
					fmt.Errorf("%w: event class %d out of range", ErrBadTrace, cb))
			}
			class = EventClass(cb)
			if prio, err = tr.ReadByte(); err != nil {
				return nil, tr.fail(section+" prio", err)
			}
			if arrival, err = binary.ReadVarint(tr); err != nil {
				return nil, tr.fail(section+" arrival", err)
			}
			if deadline, err = binary.ReadVarint(tr); err != nil {
				return nil, tr.fail(section+" deadline", err)
			}
		}
		nInsts, err := binary.ReadUvarint(tr)
		if err != nil {
			return nil, tr.fail(section+" instruction count", err)
		}
		totalInsts += nInsts
		if lim.MaxInsts > 0 && (totalInsts > lim.MaxInsts || nInsts > lim.MaxInsts) {
			return nil, tr.fail(section+" instruction count",
				fmt.Errorf("%w: %d total instructions (limit %d)", ErrTooLarge, totalInsts, lim.MaxInsts))
		}
		et.Event = Event{
			ID:       int(id),
			Handler:  int(handler),
			Seed:     binary.LittleEndian.Uint64(seedBuf[:]),
			Len:      int(nInsts),
			Diverge:  int(diverge),
			Class:    class,
			Prio:     prio,
			Arrival:  arrival,
			Deadline: deadline,
		}
		et.Insts = make([]Inst, 0, preallocCap(nInsts, 4096))
		prevPC := uint64(0)
		for k := uint64(0); k < nInsts; k++ {
			hdr, err := tr.ReadByte()
			if err != nil {
				return nil, tr.fail(fmt.Sprintf("event %d inst %d", e, k), err)
			}
			in := Inst{
				Kind:     Kind(hdr & 0x3),
				Taken:    hdr&(1<<2) != 0,
				Indirect: hdr&(1<<3) != 0,
				Call:     hdr&(1<<4) != 0,
				Ret:      hdr&(1<<5) != 0,
			}
			dpc, err := binary.ReadVarint(tr)
			if err != nil {
				return nil, tr.fail(fmt.Sprintf("event %d inst %d pc", e, k), err)
			}
			in.PC = uint64(int64(prevPC) + dpc)
			prevPC = in.PC
			if in.Kind == Load || in.Kind == Store {
				if in.Addr, err = binary.ReadUvarint(tr); err != nil {
					return nil, tr.fail(fmt.Sprintf("event %d inst %d addr", e, k), err)
				}
			}
			if in.Kind == Branch && in.Taken {
				dt, err := binary.ReadVarint(tr)
				if err != nil {
					return nil, tr.fail(fmt.Sprintf("event %d inst %d target", e, k), err)
				}
				in.Addr = uint64(int64(in.PC) + dt)
			}
			et.Insts = append(et.Insts, in)
		}
		events = append(events, et)
	}
	// Probe past the last event on the raw reader (not counted against
	// MaxTraceBytes) so a payload that ends exactly at the byte limit is
	// still verified to end cleanly.
	if _, err := tr.br.ReadByte(); err == nil {
		return nil, tr.fail("end of file", ErrTrailingGarbage)
		//esp:exempt bufio.Reader.ReadByte returns unwrapped io.EOF; identity is the intended probe
	} else if err != io.EOF {
		return nil, tr.fail("end of file", err)
	}
	return events, nil
}
