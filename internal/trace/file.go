package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// File format (little-endian, varint-compressed):
//
//	magic "ESPT" | version u8 | event count uvarint
//	per event: id uvarint | handler uvarint | seed u64 | diverge varint |
//	           inst count uvarint | insts...
//	per inst:  kind u8 (bit0-1 kind, bit2 taken, bit3 indirect,
//	           bit4 call, bit5 ret) |
//	           pc delta varint | addr uvarint (mem only) |
//	           target delta varint (taken branches only)
//
// PC and target are delta-encoded against the previous instruction's PC,
// which keeps sequential code to ~2 bytes per instruction.

var fileMagic = [4]byte{'E', 'S', 'P', 'T'}

const fileVersion = 1

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// EventTrace is a fully materialized event: its metadata plus every
// dynamic instruction it retires.
type EventTrace struct {
	Event Event
	Insts []Inst
}

// WriteFile encodes events to w in the ESPT binary format.
func WriteFile(w io.Writer, events []EventTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(fileVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(events))); err != nil {
		return err
	}
	for _, et := range events {
		ev := et.Event
		if err := putUvarint(uint64(ev.ID)); err != nil {
			return err
		}
		if err := putUvarint(uint64(ev.Handler)); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf[:8], ev.Seed)
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
		if err := putVarint(int64(ev.Diverge)); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(et.Insts))); err != nil {
			return err
		}
		prevPC := uint64(0)
		for _, in := range et.Insts {
			hdr := byte(in.Kind) & 0x3
			if in.Taken {
				hdr |= 1 << 2
			}
			if in.Indirect {
				hdr |= 1 << 3
			}
			if in.Call {
				hdr |= 1 << 4
			}
			if in.Ret {
				hdr |= 1 << 5
			}
			if err := bw.WriteByte(hdr); err != nil {
				return err
			}
			if err := putVarint(int64(in.PC) - int64(prevPC)); err != nil {
				return err
			}
			prevPC = in.PC
			if in.Kind == Load || in.Kind == Store {
				if err := putUvarint(in.Addr); err != nil {
					return err
				}
			}
			if in.Kind == Branch && in.Taken {
				if err := putVarint(int64(in.Target) - int64(in.PC)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadFile decodes an ESPT trace previously written by WriteFile.
func ReadFile(r io.Reader) ([]EventTrace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if ver != fileVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, ver)
	}
	nEvents, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	const maxEvents = 1 << 26
	if nEvents > maxEvents {
		return nil, fmt.Errorf("%w: implausible event count %d", ErrBadTrace, nEvents)
	}
	events := make([]EventTrace, 0, nEvents)
	for e := uint64(0); e < nEvents; e++ {
		var et EventTrace
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		handler, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		var seedBuf [8]byte
		if _, err := io.ReadFull(br, seedBuf[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		diverge, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		nInsts, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		const maxInsts = 1 << 30
		if nInsts > maxInsts {
			return nil, fmt.Errorf("%w: implausible instruction count %d", ErrBadTrace, nInsts)
		}
		et.Event = Event{
			ID:      int(id),
			Handler: int(handler),
			Seed:    binary.LittleEndian.Uint64(seedBuf[:]),
			Len:     int(nInsts),
			Diverge: int(diverge),
		}
		et.Insts = make([]Inst, 0, nInsts)
		prevPC := uint64(0)
		for k := uint64(0); k < nInsts; k++ {
			hdr, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
			}
			in := Inst{
				Kind:     Kind(hdr & 0x3),
				Taken:    hdr&(1<<2) != 0,
				Indirect: hdr&(1<<3) != 0,
				Call:     hdr&(1<<4) != 0,
				Ret:      hdr&(1<<5) != 0,
			}
			dpc, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
			}
			in.PC = uint64(int64(prevPC) + dpc)
			prevPC = in.PC
			if in.Kind == Load || in.Kind == Store {
				if in.Addr, err = binary.ReadUvarint(br); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
				}
			}
			if in.Kind == Branch && in.Taken {
				dt, err := binary.ReadVarint(br)
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
				}
				in.Target = uint64(int64(in.PC) + dt)
			}
			et.Insts = append(et.Insts, in)
		}
		events = append(events, et)
	}
	return events, nil
}
