package trace

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// fuzzLimits keeps fuzz inputs from allocating their way past the
// harness: any input that decodes to more than this is rejected.
func fuzzLimits() Limits {
	return Limits{MaxTraceBytes: 1 << 20, MaxEvents: 1 << 12, MaxInsts: 1 << 16}
}

// encodeTraces is WriteFile into a byte slice, for seeding.
func encodeTraces(t testing.TB, events []EventTrace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFile(&buf, events); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return buf.Bytes()
}

// FuzzReadFile feeds arbitrary bytes to the decoder. The property: it
// never panics, never allocates past the limits, and anything it does
// accept re-encodes and re-decodes to the same events.
func FuzzReadFile(f *testing.F) {
	r := rand.New(rand.NewSource(1))
	f.Add([]byte{})
	f.Add([]byte("ESPT"))
	f.Add([]byte{'E', 'S', 'P', 'T', 1, 0})
	f.Add([]byte{'E', 'S', 'P', 'T', 2, 0})                      // timed format, empty
	f.Add([]byte{'E', 'S', 'P', 'T', 3, 0})                      // bad version
	f.Add([]byte{'E', 'S', 'P', 'T', 1, 0xff, 0xff, 0xff, 0xff}) // huge count
	f.Add(encodeTraces(f, nil))
	f.Add(encodeTraces(f, []EventTrace{randomEventTrace(r, 0)}))
	f.Add(encodeTraces(f, []EventTrace{randomEventTrace(r, 0), randomEventTrace(r, 1)}))
	f.Add(append(encodeTraces(f, []EventTrace{randomEventTrace(r, 2)}), 0xAA)) // trailing garbage
	// Timed (v2) seeds with hostile scheduling metadata: deadlines at
	// the int64 extremes, past-due deadlines, and every class byte
	// (including out-of-range ones the decoder must reject).
	f.Add(encodeTraces(f, []EventTrace{{
		Event: Event{ID: 0, Len: 1, Diverge: -1, Class: ClassInput, Prio: 255,
			Arrival: math.MaxInt64, Deadline: math.MinInt64},
		Insts: []Inst{{PC: 0x40000000}},
	}}))
	f.Add(encodeTraces(f, []EventTrace{{
		Event: Event{ID: 0, Len: 1, Diverge: -1, Class: ClassNetwork, Prio: 1,
			Arrival: -1, Deadline: -1000},
		Insts: []Inst{{PC: 0x40000000}},
	}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadFileLimits(bytes.NewReader(data), fuzzLimits())
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("decode error does not wrap ErrBadTrace: %v", err)
			}
			return
		}
		var total uint64
		for _, et := range events {
			total += uint64(len(et.Insts))
		}
		if total > fuzzLimits().MaxInsts {
			t.Fatalf("accepted %d instructions past the %d limit", total, fuzzLimits().MaxInsts)
		}
		// Accepted input must re-encode losslessly (the encoder emits
		// canonical varints, so the re-encoding is also decodable).
		again, err := ReadFileLimits(bytes.NewReader(encodeTraces(t, events)), fuzzLimits())
		if err != nil {
			t.Fatalf("re-decoding accepted input: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("re-decode: %d events, want %d", len(again), len(events))
		}
		for i := range events {
			if again[i].Event != events[i].Event || len(again[i].Insts) != len(events[i].Insts) {
				t.Fatalf("event %d changed across re-encode", i)
			}
		}
	})
}

// FuzzRoundTrip drives the encoder and decoder with generated sessions:
// every writable trace must read back exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(1))
	f.Add(int64(42), uint8(8))
	f.Add(int64(-7), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		r := rand.New(rand.NewSource(seed))
		events := make([]EventTrace, 0, n%16)
		for i := 0; i < int(n%16); i++ {
			events = append(events, randomEventTrace(r, i))
		}
		data := encodeTraces(t, events)
		got, err := ReadFile(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("ReadFile of WriteFile output: %v", err)
		}
		if len(got) != len(events) {
			t.Fatalf("got %d events, want %d", len(got), len(events))
		}
		for i := range events {
			if got[i].Event != events[i].Event {
				t.Fatalf("event %d metadata: got %+v want %+v", i, got[i].Event, events[i].Event)
			}
			if len(got[i].Insts) != len(events[i].Insts) {
				t.Fatalf("event %d: %d insts, want %d", i, len(got[i].Insts), len(events[i].Insts))
			}
			for j := range events[i].Insts {
				if got[i].Insts[j] != events[i].Insts[j] {
					t.Fatalf("event %d inst %d differs", i, j)
				}
			}
		}
	})
}
