package trace

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{ALU: "alu", Load: "load", Store: "store", Branch: "branch", Kind(9): "unknown"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestNextPCSequential(t *testing.T) {
	in := Inst{PC: 0x1000, Kind: ALU}
	if got := in.NextPC(); got != 0x1004 {
		t.Fatalf("NextPC = %#x, want 0x1004", got)
	}
}

func TestNextPCTakenBranch(t *testing.T) {
	in := Inst{PC: 0x1000, Kind: Branch, Taken: true, Addr: 0x2000}
	if got := in.NextPC(); got != 0x2000 {
		t.Fatalf("NextPC = %#x, want 0x2000", got)
	}
}

func TestNextPCNotTakenBranch(t *testing.T) {
	in := Inst{PC: 0x1000, Kind: Branch, Taken: false, Addr: 0x2000}
	if got := in.NextPC(); got != 0x1004 {
		t.Fatalf("NextPC = %#x, want fall-through 0x1004", got)
	}
}

func TestLine(t *testing.T) {
	for _, c := range []struct{ addr, want uint64 }{
		{0, 0}, {63, 0}, {64, 64}, {0x12345, 0x12340}, {^uint64(0), ^uint64(63)},
	} {
		if got := Line(c.addr); got != c.want {
			t.Errorf("Line(%#x) = %#x, want %#x", c.addr, got, c.want)
		}
	}
}

func TestLineIdempotent(t *testing.T) {
	f := func(addr uint64) bool { return Line(Line(addr)) == Line(addr) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineAligned(t *testing.T) {
	f := func(addr uint64) bool { return Line(addr)%LineBytes == 0 && Line(addr) <= addr }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSliceStream(t *testing.T) {
	insts := []Inst{{PC: 4}, {PC: 8}, {PC: 12}}
	s := NewSliceStream(insts)
	for i, want := range insts {
		got, ok := s.Next()
		if !ok || got.PC != want.PC {
			t.Fatalf("inst %d: got %+v ok=%v", i, got, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream should be exhausted")
	}
	s.Reset()
	if in, ok := s.Next(); !ok || in.PC != 4 {
		t.Fatal("Reset did not rewind")
	}
}

func TestRecordBounded(t *testing.T) {
	insts := make([]Inst, 100)
	s := NewSliceStream(insts)
	if got := Record(s, 10); len(got) != 10 {
		t.Fatalf("Record(max=10) returned %d insts", len(got))
	}
}

func TestRecordUnbounded(t *testing.T) {
	insts := make([]Inst, 57)
	if got := Record(NewSliceStream(insts), 0); len(got) != 57 {
		t.Fatalf("Record(max=0) returned %d insts, want 57", len(got))
	}
}

func randomEventTrace(r *rand.Rand, id int) EventTrace {
	n := 1 + r.Intn(200)
	et := EventTrace{
		Event: Event{ID: id, Handler: r.Intn(32), Seed: r.Uint64(), Len: n, Diverge: r.Intn(n+1) - 1},
	}
	// Half the generated traces carry timed metadata, so round-trip
	// tests and fuzz seeds cover both ESPT versions. Deadlines draw from
	// the full int64 range including past-due and the extremes.
	if r.Intn(2) == 0 {
		et.Event.Class = EventClass(r.Intn(NumEventClasses))
		et.Event.Prio = uint8(r.Intn(256))
		et.Event.Arrival = r.Int63n(1 << 40)
		switch r.Intn(4) {
		case 0:
			et.Event.Deadline = et.Event.Arrival + r.Int63n(1<<20) + 1
		case 1:
			et.Event.Deadline = -r.Int63n(1 << 40) // past-due / hostile
		case 2:
			et.Event.Deadline = math.MaxInt64 - r.Int63n(4)
		}
	}
	pc := uint64(0x40000000)
	for i := 0; i < n; i++ {
		in := Inst{PC: pc, Kind: Kind(r.Intn(4))}
		switch in.Kind {
		case Load, Store:
			in.Addr = r.Uint64() >> 16
		case Branch:
			in.Taken = r.Intn(2) == 0
			if in.Taken {
				in.Addr = pc + uint64(r.Intn(4096)) - 2048
				in.Indirect = r.Intn(8) == 0
				in.Call = !in.Indirect && r.Intn(4) == 0
				in.Ret = !in.Indirect && !in.Call && r.Intn(4) == 0
			}
		}
		et.Insts = append(et.Insts, in)
		pc = in.NextPC()
	}
	return et
}

func TestFileRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var events []EventTrace
	for i := 0; i < 20; i++ {
		events = append(events, randomEventTrace(r, i))
	}
	var buf bytes.Buffer
	if err := WriteFile(&buf, events); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(&buf)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i].Event != events[i].Event {
			t.Errorf("event %d metadata: got %+v want %+v", i, got[i].Event, events[i].Event)
		}
		if len(got[i].Insts) != len(events[i].Insts) {
			t.Fatalf("event %d: got %d insts want %d", i, len(got[i].Insts), len(events[i].Insts))
		}
		for j := range events[i].Insts {
			if got[i].Insts[j] != events[i].Insts[j] {
				t.Fatalf("event %d inst %d: got %+v want %+v", i, j, got[i].Insts[j], events[i].Insts[j])
			}
		}
	}
}

func TestFileRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		events := []EventTrace{randomEventTrace(r, 0)}
		var buf bytes.Buffer
		if err := WriteFile(&buf, events); err != nil {
			return false
		}
		got, err := ReadFile(&buf)
		if err != nil || len(got) != 1 || len(got[0].Insts) != len(events[0].Insts) {
			return false
		}
		for j := range events[0].Insts {
			if got[0].Insts[j] != events[0].Insts[j] {
				return false
			}
		}
		return got[0].Event == events[0].Event
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFileRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("ESPT\xff"),         // bad version
		[]byte("ESPT\x01\xff\xff"), // truncated varint payload
		[]byte("ESP"),              // short magic
		{'E', 'S', 'P', 'T', 1, 1}, // promises one event, delivers none
	} {
		if _, err := ReadFile(bytes.NewReader(in)); err == nil {
			t.Errorf("ReadFile(%q) succeeded, want error", in)
		}
	}
}

func TestFileEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFile(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: got %v, %v", got, err)
	}
}

func TestReadFileNeverPanics(t *testing.T) {
	// The decoder must reject arbitrary garbage with an error, never a
	// panic or a runaway allocation.
	f := func(data []byte) bool {
		_, err := ReadFile(bytes.NewReader(data))
		_ = err // any outcome but a panic is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFilePrefixCorruption(t *testing.T) {
	// Corrupting a valid file at any truncation point must error, not
	// panic.
	r := rand.New(rand.NewSource(7))
	events := []EventTrace{randomEventTrace(r, 0)}
	var buf bytes.Buffer
	if err := WriteFile(&buf, events); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n += 7 {
		if _, err := ReadFile(bytes.NewReader(full[:n])); err == nil && n < len(full)-1 {
			t.Fatalf("truncation at %d of %d accepted", n, len(full))
		}
	}
}
