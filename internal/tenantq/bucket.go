package tenantq

import "time"

// bucket is a token bucket in cell units: rate cells/second refill,
// capped at burst. The zero value is an always-full bucket (rate 0
// callers never consult it). Not safe for concurrent use — the Queue
// mutex guards it.
type bucket struct {
	rate   float64 // cells per second
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64, now time.Time) bucket {
	return bucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take consumes n tokens at time now; false leaves the bucket
// untouched (refill still applied), so a rejected request does not
// penalize the next one.
func (b *bucket) take(n float64, now time.Time) bool {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}
