// Package tenantq is the overload-robustness layer of the serving
// stack: weighted deficit-round-robin (DRR) fair queueing across
// tenants, per-tenant quotas (in-flight cells, queue depth, cumulative
// cell budget) and token-bucket rate limits, and a brownout controller
// that degrades service gracefully under memory pressure instead of
// letting the daemon OOM.
//
// The unit of cost everywhere is the simulation cell: a /run request
// costs one cell, a sweep batch costs one cell per configuration.
// Fairness is therefore measured in completed cells, which is what a
// tenant actually pays for — a greedy tenant flooding wide sweeps
// cannot starve a tenant of small runs, because DRR grants each round
// in proportion to configured weight regardless of request shape.
package tenantq

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"espsim/internal/fault"
)

// DefaultTenant names the tenant legacy clients (no tenant field, no
// X-ESP-Tenant header) are accounted under.
const DefaultTenant = "default"

// ErrQuota marks an acquisition refused because the tenant exhausted a
// quota: queue depth, cumulative cell budget, token-bucket rate, or a
// single request wider than its in-flight allowance. espd maps it to
// 429 — the client may retry later; the work was never queued.
var ErrQuota = fault.Sentinel("tenantq: tenant quota exhausted", fault.KindQuota)

// ErrBrownout marks work refused because the daemon is degrading under
// memory pressure and its current brownout level does not admit the
// request shape. espd maps it to 503 — retry against a healthier
// replica, or smaller.
var ErrBrownout = fault.Sentinel("tenantq: brownout: degraded under memory pressure", fault.KindBrownout)

// ErrDeadlineShed marks work dropped because it provably could not
// finish before its deadline — shed without simulating, so the cycles
// go to requests that can still make it. espd maps it to 504.
var ErrDeadlineShed = fault.Sentinel("tenantq: deadline shed: cannot finish in time", fault.KindShed)

// TenantConfig is one tenant's share and limits. The zero value means
// weight 1 with every quota unlimited.
type TenantConfig struct {
	// Weight is the tenant's DRR share: under saturation a tenant
	// completes Weight/ΣWeight of all cells (<= 0: 1).
	Weight float64
	// MaxInFlight caps the tenant's concurrently admitted cells; a
	// request wider than the cap alone is rejected outright, narrower
	// ones queue until the tenant's own cells drain (0: unlimited).
	MaxInFlight int
	// MaxQueue caps how many acquisitions may wait at once; past it new
	// ones are rejected with ErrQuota instead of queueing (0: unlimited).
	MaxQueue int
	// CellBudget caps the tenant's cumulative admitted cells over the
	// queue's lifetime (0: unlimited).
	CellBudget int64
	// Rate refills a token bucket in cells/second consumed at admission;
	// an empty bucket rejects with ErrQuota (0: unlimited). Burst is the
	// bucket size (<= 0: max(Rate, 1)).
	Rate  float64
	Burst float64
}

func (c TenantConfig) weight() float64 {
	if c.Weight <= 0 {
		return 1
	}
	return c.Weight
}

// Options configures a Queue.
type Options struct {
	// Slots bounds concurrently granted acquisitions — the worker-slot
	// pool DRR arbitrates (required, >= 1).
	Slots int
	// Quantum is the DRR round size in cells per unit weight (<= 0: 8,
	// about one sweep batch). Smaller quanta interleave tenants more
	// finely; larger ones batch better.
	Quantum float64
	// Default applies to tenants not listed in Tenants.
	Default TenantConfig
	// Tenants overrides per-tenant configuration by name.
	Tenants map[string]TenantConfig
	// MaxTenants bounds distinct tenant names the queue will track, a
	// cardinality guard against tenant-id spray: past it, acquisitions
	// under new names are rejected with ErrQuota (<= 0: 256).
	MaxTenants int
}

func (o Options) withDefaults() Options {
	if o.Slots < 1 {
		o.Slots = 1
	}
	if o.Quantum <= 0 {
		o.Quantum = 8
	}
	if o.MaxTenants <= 0 {
		o.MaxTenants = 256
	}
	return o
}

// waiter is one blocked Acquire.
type waiter struct {
	tn      *tenant
	cost    int
	ready   chan struct{}
	granted bool
}

// tenant is one tenant's queue state. Everything is guarded by the
// Queue mutex.
type tenant struct {
	name string
	cfg  TenantConfig

	deficit  float64
	waiters  []*waiter
	inRing   bool
	inFlight int   // admitted, unreleased cells
	consumed int64 // cumulative admitted cells
	bucket   bucket

	// Counters for /metrics. admitted/completed move at grant/release;
	// shed and brownout are fed by the serving layer via Count*.
	admitted  int64
	completed int64
	quota     int64
	shed      int64
	brownout  int64
}

// Queue is the DRR fair queue: Acquire blocks until the tenant is
// granted a slot in deficit-round-robin order, quotas permitting.
// Safe for concurrent use.
type Queue struct {
	mu      sync.Mutex
	opt     Options
	tenants map[string]*tenant
	// ring holds tenants with waiters in round-robin order; cur is the
	// tenant being served. A tenant's turn lasts until its deficit can
	// no longer cover its head waiter — slots running out pauses the
	// turn, it does not end it. A tenant whose backlog drains leaves
	// the ring and forfeits its deficit (standard DRR: no banking while
	// idle).
	ring []*tenant
	cur  int
	// fresh is true when ring[cur] has not yet been credited this turn;
	// it keeps resumed dispatches (after a release) from re-crediting
	// the mid-turn tenant.
	fresh    bool
	grants   int  // slots currently held
	degraded bool // brownout: effective slots halved

	now func() time.Time // injectable for bucket tests
}

// New assembles a Queue.
func New(opt Options) *Queue {
	return &Queue{
		opt:     opt.withDefaults(),
		tenants: make(map[string]*tenant),
		fresh:   true,
		now:     time.Now,
	}
}

// Slots reports the configured concurrency bound (before degradation).
func (q *Queue) Slots() int { return q.opt.Slots }

// SetDegraded halves the effective slot pool while on (never below
// one) — the brownout controller's half-concurrency lever. Turning it
// off re-dispatches immediately.
func (q *Queue) SetDegraded(on bool) {
	q.mu.Lock()
	q.degraded = on
	q.dispatchLocked()
	q.mu.Unlock()
}

func (q *Queue) slotsLocked() int {
	if q.degraded {
		if s := q.opt.Slots / 2; s >= 1 {
			return s
		}
		return 1
	}
	return q.opt.Slots
}

// tenantLocked finds or creates a tenant's state; nil means the
// distinct-tenant cap is hit and name is new.
func (q *Queue) tenantLocked(name string) *tenant {
	if tn, ok := q.tenants[name]; ok {
		return tn
	}
	if len(q.tenants) >= q.opt.MaxTenants {
		return nil
	}
	cfg, ok := q.opt.Tenants[name]
	if !ok {
		cfg = q.opt.Default
	}
	tn := &tenant{name: name, cfg: cfg}
	if cfg.Rate > 0 {
		burst := cfg.Burst
		if burst <= 0 {
			burst = cfg.Rate
			if burst < 1 {
				burst = 1
			}
		}
		tn.bucket = newBucket(cfg.Rate, burst, q.now())
	}
	q.tenants[name] = tn
	return tn
}

// Acquire blocks until tenant is granted a slot for cost cells, in DRR
// order across tenants, or ctx dies. The returned release must be
// called exactly once when the admitted work finishes. Quota
// violations fail fast with ErrQuota, before queueing.
func (q *Queue) Acquire(ctx context.Context, name string, cost int) (release func(), err error) {
	if cost < 1 {
		cost = 1
	}
	q.mu.Lock()
	tn := q.tenantLocked(name)
	if tn == nil {
		q.mu.Unlock()
		return nil, fmt.Errorf("%w: %d distinct tenants already tracked", ErrQuota, q.opt.MaxTenants)
	}
	if rej := q.quotaLocked(tn, cost); rej != nil {
		tn.quota++
		q.mu.Unlock()
		return nil, rej
	}
	if tn.cfg.Rate > 0 && !tn.bucket.take(float64(cost), q.now()) {
		tn.quota++
		q.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q over its rate of %g cells/s", ErrQuota, name, tn.cfg.Rate)
	}
	w := &waiter{tn: tn, cost: cost, ready: make(chan struct{})}
	tn.waiters = append(tn.waiters, w)
	if !tn.inRing {
		tn.inRing = true
		q.ring = append(q.ring, tn)
	}
	q.dispatchLocked()
	granted := w.granted
	q.mu.Unlock()

	if !granted {
		select {
		case <-w.ready:
		case <-ctx.Done():
			q.mu.Lock()
			if !w.granted {
				q.abandonLocked(w)
				q.mu.Unlock()
				return nil, ctx.Err()
			}
			// Granted in the race window: the slot is ours, give it back.
			q.releaseLocked(tn, cost)
			q.mu.Unlock()
			return nil, ctx.Err()
		}
	}
	return func() {
		q.mu.Lock()
		q.releaseLocked(tn, cost)
		q.mu.Unlock()
	}, nil
}

// quotaLocked checks the fail-fast quotas (everything but rate, which
// consumes tokens and so runs after these pass).
func (q *Queue) quotaLocked(tn *tenant, cost int) error {
	cfg := tn.cfg
	if cfg.MaxInFlight > 0 && cost > cfg.MaxInFlight {
		return fmt.Errorf("%w: tenant %q: %d cells exceed the in-flight allowance of %d", ErrQuota, tn.name, cost, cfg.MaxInFlight)
	}
	if cfg.MaxQueue > 0 && len(tn.waiters) >= cfg.MaxQueue {
		return fmt.Errorf("%w: tenant %q queue full (%d waiting)", ErrQuota, tn.name, len(tn.waiters))
	}
	if cfg.CellBudget > 0 && tn.consumed+int64(cost) > cfg.CellBudget {
		return fmt.Errorf("%w: tenant %q cell budget exhausted (%d of %d used)", ErrQuota, tn.name, tn.consumed, cfg.CellBudget)
	}
	return nil
}

// abandonLocked removes a never-granted waiter (canceled context).
func (q *Queue) abandonLocked(w *waiter) {
	tn := w.tn
	for i, cand := range tn.waiters {
		if cand == w {
			tn.waiters = append(tn.waiters[:i], tn.waiters[i+1:]...)
			break
		}
	}
	if len(tn.waiters) == 0 && tn.inRing {
		q.unlinkLocked(tn)
	}
}

// releaseLocked returns a grant's slot and cells, then re-dispatches.
func (q *Queue) releaseLocked(tn *tenant, cost int) {
	tn.inFlight -= cost
	tn.completed += int64(cost)
	q.grants--
	q.dispatchLocked()
}

// unlinkLocked drops tn from the ring, keeping cur pointing at the
// same next tenant. An idle tenant forfeits its deficit.
func (q *Queue) unlinkLocked(tn *tenant) {
	for i, cand := range q.ring {
		if cand == tn {
			q.ring = append(q.ring[:i], q.ring[i+1:]...)
			if i < q.cur {
				q.cur--
			} else if i == q.cur {
				// ring[cur] now names a different tenant: its turn is new.
				q.fresh = true
			}
			break
		}
	}
	tn.inRing = false
	tn.deficit = 0
	if q.cur >= len(q.ring) {
		q.cur = 0
	}
}

// dispatchLocked is the DRR scheduler: serve ring[cur] until its
// deficit cannot cover its head waiter, then advance and credit the
// next tenant quantum*weight. Running out of slots pauses the current
// turn (the next release resumes it, without re-crediting); a full lap
// of blocked tenants stops the scan.
func (q *Queue) dispatchLocked() {
	// idle counts consecutive turns with neither a grant nor deficit
	// growth. Deficit growth is progress — a tenant whose head waiter
	// costs several rounds of credit converges toward it lap by lap —
	// so the scan only stops once a full lap of turns is truly stuck
	// (everyone in-flight-capped or banked out).
	idle := 0
	for len(q.ring) > 0 {
		if q.grants >= q.slotsLocked() {
			return
		}
		if q.cur >= len(q.ring) {
			q.cur = 0
		}
		tn := q.ring[q.cur]
		credited := q.fresh
		progressed := false
		if q.fresh {
			before := tn.deficit
			tn.deficit += q.opt.Quantum * tn.cfg.weight()
			// Cap banked credit at one round past the head waiter, so a
			// tenant stalled on its in-flight cap cannot hoard an
			// unbounded burst for later.
			if bank := float64(tn.waiters[0].cost) + q.opt.Quantum*tn.cfg.weight(); tn.deficit > bank {
				tn.deficit = bank
			}
			progressed = tn.deficit > before
			q.fresh = false
		}
		for len(tn.waiters) > 0 && q.grants < q.slotsLocked() {
			w := tn.waiters[0]
			if float64(w.cost) > tn.deficit {
				break
			}
			if tn.cfg.MaxInFlight > 0 && tn.inFlight+w.cost > tn.cfg.MaxInFlight {
				break
			}
			tn.waiters = tn.waiters[1:]
			tn.deficit -= float64(w.cost)
			tn.inFlight += w.cost
			tn.consumed += int64(w.cost)
			tn.admitted += int64(w.cost)
			q.grants++
			w.granted = true
			close(w.ready)
			progressed = true
		}
		if progressed {
			idle = 0
		}
		if len(tn.waiters) == 0 {
			q.unlinkLocked(tn) // sets fresh: ring[cur] is a new tenant
			continue
		}
		if q.grants >= q.slotsLocked() {
			// Paused mid-turn: deficit and cur stand, the next release
			// resumes here.
			return
		}
		// Turn over: deficit short or in-flight capped. Advance. A
		// resumed turn ending (credited in an earlier dispatch, spent
		// now) is not stuck — it happens at most once per call, and the
		// next turn gets fresh credit.
		q.cur++
		q.fresh = true
		if credited && !progressed {
			idle++
			if idle >= len(q.ring) {
				return
			}
		}
	}
}

// CountShed attributes deadline-shed cells to a tenant (serving-layer
// bookkeeping; the queue itself never sheds).
func (q *Queue) CountShed(name string, cells int64) {
	q.mu.Lock()
	if tn := q.tenantLocked(name); tn != nil {
		tn.shed += cells
	}
	q.mu.Unlock()
}

// CountBrownout attributes one brownout rejection to a tenant.
func (q *Queue) CountBrownout(name string) {
	q.mu.Lock()
	if tn := q.tenantLocked(name); tn != nil {
		tn.brownout++
	}
	q.mu.Unlock()
}

// QueuedAcquisitions is the total waiting-acquisition gauge across
// tenants; zero when nothing is blocked (leak tests assert this).
func (q *Queue) QueuedAcquisitions() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, tn := range q.tenants {
		n += len(tn.waiters)
	}
	return n
}

// InFlightCells is the total admitted-unreleased gauge across tenants.
func (q *Queue) InFlightCells() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, tn := range q.tenants {
		n += tn.inFlight
	}
	return n
}

// TenantSnapshot is one tenant's row in /metrics: two gauges (queue
// depth, in-flight cells) and the cumulative counters.
type TenantSnapshot struct {
	Tenant           string  `json:"tenant"`
	Weight           float64 `json:"weight"`
	QueueDepth       int64   `json:"queue_depth"`
	InFlightCells    int64   `json:"in_flight_cells"`
	AdmittedCells    int64   `json:"admitted_cells"`
	CompletedCells   int64   `json:"completed_cells"`
	RejectedQuota    int64   `json:"rejected_quota"`
	ShedDeadline     int64   `json:"shed_deadline"`
	RejectedBrownout int64   `json:"rejected_brownout"`
}

// Snapshot renders every tracked tenant, sorted by name for stable
// /metrics output.
func (q *Queue) Snapshot() []TenantSnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(q.tenants))
	for _, tn := range q.tenants {
		out = append(out, TenantSnapshot{
			Tenant:           tn.name,
			Weight:           tn.cfg.weight(),
			QueueDepth:       int64(len(tn.waiters)),
			InFlightCells:    int64(tn.inFlight),
			AdmittedCells:    tn.admitted,
			CompletedCells:   tn.completed,
			RejectedQuota:    tn.quota,
			ShedDeadline:     tn.shed,
			RejectedBrownout: tn.brownout,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
