package tenantq

import (
	"sync"
	"sync/atomic"
)

// BrownoutLevel is how far the daemon has degraded under memory
// pressure. Levels are cumulative: each keeps every restriction of the
// ones below it.
type BrownoutLevel int32

const (
	// BrownNormal: full service.
	BrownNormal BrownoutLevel = iota
	// BrownNoCache: new workload materializations are not cached (and
	// the cache is trimmed to the calm watermark); cached workloads
	// still serve.
	BrownNoCache
	// BrownHalfConcurrency: additionally, the fair queue's slot pool is
	// halved, shrinking every tenant's share proportionally.
	BrownHalfConcurrency
	// BrownSmallOnly: additionally, only explicitly bounded small grids
	// are admitted; everything else is refused with ErrBrownout.
	BrownSmallOnly
)

// String names the level for logs and /metrics.
func (l BrownoutLevel) String() string {
	switch l {
	case BrownNormal:
		return "normal"
	case BrownNoCache:
		return "no_cache"
	case BrownHalfConcurrency:
		return "half_concurrency"
	case BrownSmallOnly:
		return "small_only"
	default:
		return "unknown"
	}
}

// BrownoutConfig shapes the controller. Budget is the byte budget the
// watermarks are fractions of; the zero value of every other field
// gets a sensible default.
type BrownoutConfig struct {
	// Budget is the memory budget in bytes (<= 0 disables the
	// controller: Observe always reports BrownNormal).
	Budget int64
	// Enter[i] engages level i+1 when usage >= Enter[i]*Budget
	// (default {0.80, 0.90, 0.97}). Escalation is immediate — pressure
	// does not wait.
	Enter [3]float64
	// Exit[i] is level i+1's calm watermark (default {0.70, 0.80,
	// 0.90}): recovery requires usage at/below it.
	Exit [3]float64
	// RecoverAfter is how many consecutive calm observations step the
	// level down once — the hysteresis that stops flapping (default 4).
	RecoverAfter int
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.Enter == [3]float64{} {
		c.Enter = [3]float64{0.80, 0.90, 0.97}
	}
	if c.Exit == [3]float64{} {
		c.Exit = [3]float64{0.70, 0.80, 0.90}
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 4
	}
	return c
}

// Brownout is the watermark state machine: feed it usage observations,
// read the level. Escalation is immediate (to the highest level whose
// entry watermark usage reaches); recovery is stepwise with
// hysteresis — RecoverAfter consecutive observations at/below the
// current level's exit watermark step down one level.
type Brownout struct {
	mu    sync.Mutex
	cfg   BrownoutConfig
	level atomic.Int32
	calm  int

	escalations atomic.Int64
	recoveries  atomic.Int64
}

// NewBrownout assembles a controller; nil-safe methods make a disabled
// controller (Budget <= 0) equivalent to no controller at all.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	return &Brownout{cfg: cfg.withDefaults()}
}

// Level reads the current level without observing.
func (b *Brownout) Level() BrownoutLevel {
	if b == nil {
		return BrownNormal
	}
	return BrownoutLevel(b.level.Load())
}

// TrimTarget is the byte usage the actor should trim the cache toward
// while browned out: the first level's calm watermark, so recovery is
// reachable.
func (b *Brownout) TrimTarget() int64 {
	if b == nil || b.cfg.Budget <= 0 {
		return 0
	}
	return int64(b.cfg.Exit[0] * float64(b.cfg.Budget))
}

// Observe feeds one usage sample (bytes) and returns the level after
// applying it.
func (b *Brownout) Observe(usage int64) BrownoutLevel {
	if b == nil || b.cfg.Budget <= 0 {
		return BrownNormal
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := BrownoutLevel(b.level.Load())
	target := BrownNormal
	for i := 2; i >= 0; i-- {
		if float64(usage) >= b.cfg.Enter[i]*float64(b.cfg.Budget) {
			target = BrownoutLevel(i + 1)
			break
		}
	}
	switch {
	case target > cur:
		cur = target
		b.calm = 0
		b.escalations.Add(1)
	case cur > BrownNormal && float64(usage) <= b.cfg.Exit[cur-1]*float64(b.cfg.Budget):
		b.calm++
		if b.calm >= b.cfg.RecoverAfter {
			cur--
			b.calm = 0
			b.recoveries.Add(1)
		}
	default:
		// In the hysteresis band (or at normal): hold, reset calm.
		b.calm = 0
	}
	b.level.Store(int32(cur))
	return cur
}

// BrownoutSnapshot is the /metrics view of the controller.
type BrownoutSnapshot struct {
	Level       string `json:"level"`
	Budget      int64  `json:"budget_bytes"`
	Escalations int64  `json:"escalations"`
	Recoveries  int64  `json:"recoveries"`
}

// Snapshot renders the controller state.
func (b *Brownout) Snapshot() BrownoutSnapshot {
	if b == nil {
		return BrownoutSnapshot{Level: BrownNormal.String()}
	}
	return BrownoutSnapshot{
		Level:       b.Level().String(),
		Budget:      b.cfg.Budget,
		Escalations: b.escalations.Load(),
		Recoveries:  b.recoveries.Load(),
	}
}
