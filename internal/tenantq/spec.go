package tenantq

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseTenants turns repeated CLI tenant specs into a configuration
// map. Each spec is
//
//	name=weight[:cell_budget]
//
// where weight is the tenant's DRR share (> 0) and the optional
// cell_budget caps its cumulative admitted cells over the process
// lifetime (> 0). espd and espcoord both speak this grammar, so a
// fleet and its workers can be configured from the same flags.
func ParseTenants(specs []string) (map[string]TenantConfig, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	out := make(map[string]TenantConfig, len(specs))
	for _, spec := range specs {
		name, rest, ok := strings.Cut(spec, "=")
		if !ok || name == "" || rest == "" {
			return nil, fmt.Errorf("tenant spec %q is not name=weight[:cell_budget]", spec)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("tenant %q configured twice", name)
		}
		weightStr, budgetStr, hasBudget := strings.Cut(rest, ":")
		weight, err := strconv.ParseFloat(weightStr, 64)
		if err != nil || weight <= 0 {
			return nil, fmt.Errorf("tenant %q: weight %q must be a number > 0", name, weightStr)
		}
		cfg := TenantConfig{Weight: weight}
		if hasBudget {
			budget, err := strconv.ParseInt(budgetStr, 10, 64)
			if err != nil || budget <= 0 {
				return nil, fmt.Errorf("tenant %q: cell budget %q must be an integer > 0", name, budgetStr)
			}
			cfg.CellBudget = budget
		}
		out[name] = cfg
	}
	return out, nil
}
