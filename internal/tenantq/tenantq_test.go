package tenantq

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"espsim/internal/fault"
)

// drain waits until the queue reports n queued acquisitions.
func waitQueued(t *testing.T, q *Queue, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for q.QueuedAcquisitions() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queued acquisitions stuck at %d, want %d", q.QueuedAcquisitions(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// collectGrantOrder floods the queue with perTenant unit-cost
// acquisitions for each weighted tenant while one blocker holds the
// single slot, then releases the blocker and records the tenant name
// of every grant in order (each grantee releases immediately, so
// grants serialize through the one slot).
func collectGrantOrder(t *testing.T, weights map[string]float64, perTenant int, quantum float64) []string {
	t.Helper()
	tenants := make(map[string]TenantConfig, len(weights))
	for name, w := range weights {
		tenants[name] = TenantConfig{Weight: w}
	}
	q := New(Options{Slots: 1, Quantum: quantum, Tenants: tenants})

	blockerRelease, err := q.Acquire(context.Background(), "blocker", 1)
	if err != nil {
		t.Fatalf("blocker acquire: %v", err)
	}

	total := perTenant * len(weights)
	order := make(chan string, total)
	var wg sync.WaitGroup
	for name := range weights {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				release, err := q.Acquire(context.Background(), name, 1)
				if err != nil {
					t.Errorf("acquire %s: %v", name, err)
					return
				}
				order <- name
				release()
			}(name)
		}
	}
	waitQueued(t, q, total)
	blockerRelease()
	wg.Wait()
	close(order)

	got := make([]string, 0, total)
	for name := range order {
		got = append(got, name)
	}
	return got
}

// TestDRRProportionality is the fairness property the ISSUE demands:
// dispatch order is a permutation of everything enqueued, and within
// any backlogged prefix each tenant's granted-cell count tracks its
// weight share to within one DRR round.
func TestDRRProportionality(t *testing.T) {
	weights := map[string]float64{"a": 1, "b": 2, "c": 4}
	const perTenant = 140
	order := collectGrantOrder(t, weights, perTenant, 1)

	// Permutation: every acquisition granted exactly once.
	counts := map[string]int{}
	for _, name := range order {
		counts[name]++
	}
	if len(order) != perTenant*len(weights) {
		t.Fatalf("granted %d acquisitions, enqueued %d", len(order), perTenant*len(weights))
	}
	for name := range weights {
		if counts[name] != perTenant {
			t.Fatalf("tenant %s granted %d times, enqueued %d", name, counts[name], perTenant)
		}
	}

	// Weight-proportionality while every tenant is still backlogged:
	// with quantum 1 and unit costs a full lap grants exactly weight_t
	// cells per tenant, so any prefix deviates from the ideal share by
	// at most one round.
	var sumW float64
	for _, w := range weights {
		sumW += w
	}
	running := map[string]float64{}
	backlogged := func() bool {
		for name := range weights {
			if running[name] >= perTenant {
				return false
			}
		}
		return true
	}
	for n, name := range order {
		if !backlogged() {
			break
		}
		running[name]++
		for tn, w := range weights {
			ideal := float64(n+1) * w / sumW
			slack := w + 1 // one DRR round of that tenant, plus rounding
			if diff := running[tn] - ideal; diff > slack || diff < -slack {
				t.Fatalf("after %d grants tenant %s has %v cells, ideal %.1f (slack %v): order unfair",
					n+1, tn, running[tn], ideal, slack)
			}
		}
	}
}

// TestDRRRandomizedNoStarvation: random weights, every acquisition is
// eventually granted exactly once and heavier tenants never complete
// fewer cells than lighter ones over the full run.
func TestDRRRandomizedNoStarvation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	weights := map[string]float64{}
	for i := 0; i < 5; i++ {
		weights[fmt.Sprintf("t%d", i)] = 1 + rng.Float64()*7
	}
	const perTenant = 60
	order := collectGrantOrder(t, weights, perTenant, 4)
	counts := map[string]int{}
	for _, name := range order {
		counts[name]++
	}
	for name := range weights {
		if counts[name] != perTenant {
			t.Fatalf("tenant %s granted %d of %d acquisitions", name, counts[name], perTenant)
		}
	}
}

func mustQuota(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("expected ErrQuota, got nil")
	}
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("expected ErrQuota, got %v", err)
	}
	if k := fault.Classify(err); k != fault.KindQuota {
		t.Fatalf("quota error classifies as %q", k)
	}
}

func TestQuotaQueueDepth(t *testing.T) {
	q := New(Options{Slots: 1, Default: TenantConfig{MaxQueue: 2}})
	release, err := q.Acquire(context.Background(), "t", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			rel, err := q.Acquire(context.Background(), "t", 1)
			if err == nil {
				defer rel()
			}
			errs <- err
		}()
	}
	waitQueued(t, q, 2)
	_, err = q.Acquire(context.Background(), "t", 1)
	mustQuota(t, err)
	release()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("queued acquisition failed: %v", err)
		}
	}
}

func TestQuotaCellBudget(t *testing.T) {
	q := New(Options{Slots: 4, Default: TenantConfig{CellBudget: 3}})
	rel, err := q.Acquire(context.Background(), "t", 2)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	_, err = q.Acquire(context.Background(), "t", 2)
	mustQuota(t, err) // 2 consumed + 2 > 3: the budget is cumulative
	rel, err = q.Acquire(context.Background(), "t", 1)
	if err != nil {
		t.Fatalf("within budget: %v", err)
	}
	rel()
}

func TestQuotaRate(t *testing.T) {
	q := New(Options{Slots: 8, Default: TenantConfig{Rate: 1, Burst: 2}})
	clock := time.Unix(1000, 0)
	q.now = func() time.Time { return clock }

	rel, err := q.Acquire(context.Background(), "t", 2)
	if err != nil {
		t.Fatalf("burst acquire: %v", err)
	}
	rel()
	_, err = q.Acquire(context.Background(), "t", 1)
	mustQuota(t, err)
	clock = clock.Add(time.Second) // refills one token
	rel, err = q.Acquire(context.Background(), "t", 1)
	if err != nil {
		t.Fatalf("refilled acquire: %v", err)
	}
	rel()
}

func TestQuotaInFlight(t *testing.T) {
	q := New(Options{Slots: 4, Default: TenantConfig{MaxInFlight: 2}})
	// Wider than the allowance: rejected outright, it could never run.
	_, err := q.Acquire(context.Background(), "t", 3)
	mustQuota(t, err)

	rel1, err := q.Acquire(context.Background(), "t", 2)
	if err != nil {
		t.Fatal(err)
	}
	// At the in-flight cap the next acquisition queues (not rejected)
	// and is granted when the tenant's own cells drain.
	granted := make(chan struct{})
	go func() {
		rel, err := q.Acquire(context.Background(), "t", 1)
		if err != nil {
			t.Errorf("queued acquire: %v", err)
			return
		}
		close(granted)
		rel()
	}()
	waitQueued(t, q, 1)
	select {
	case <-granted:
		t.Fatal("granted past MaxInFlight")
	case <-time.After(20 * time.Millisecond):
	}
	rel1()
	<-granted
}

func TestMaxTenantsCardinalityGuard(t *testing.T) {
	q := New(Options{Slots: 4, MaxTenants: 2})
	for _, name := range []string{"a", "b"} {
		rel, err := q.Acquire(context.Background(), name, 1)
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	_, err := q.Acquire(context.Background(), "c", 1)
	mustQuota(t, err)
}

func TestAcquireCancelCleansUp(t *testing.T) {
	q := New(Options{Slots: 1})
	release, err := q.Acquire(context.Background(), "holder", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() {
		_, err := q.Acquire(ctx, "t", 1)
		errs <- err
	}()
	waitQueued(t, q, 1)
	cancel()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire returned %v", err)
	}
	if n := q.QueuedAcquisitions(); n != 0 {
		t.Fatalf("abandoned waiter leaked: %d queued", n)
	}
	release()
	if n := q.InFlightCells(); n != 0 {
		t.Fatalf("in-flight gauge leaked: %d", n)
	}
	for _, snap := range q.Snapshot() {
		if snap.QueueDepth != 0 || snap.InFlightCells != 0 {
			t.Fatalf("tenant %s gauges leaked: %+v", snap.Tenant, snap)
		}
	}
}

func TestSetDegradedHalvesSlots(t *testing.T) {
	q := New(Options{Slots: 4})
	q.SetDegraded(true)
	granted := make(chan func(), 4)
	for i := 0; i < 4; i++ {
		go func() {
			rel, err := q.Acquire(context.Background(), "t", 1)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			granted <- rel
		}()
	}
	rels := make([]func(), 0, 4)
	for i := 0; i < 2; i++ {
		rels = append(rels, <-granted)
	}
	select {
	case <-granted:
		t.Fatal("degraded queue granted a third slot of four")
	case <-time.After(20 * time.Millisecond):
	}
	q.SetDegraded(false)
	for i := 0; i < 2; i++ {
		rels = append(rels, <-granted)
	}
	for _, rel := range rels {
		rel()
	}
	if n := q.InFlightCells(); n != 0 {
		t.Fatalf("in-flight gauge leaked: %d", n)
	}
}

// TestSentinelKinds pins the wire classification of the three overload
// sentinels, wrapped and bare — the satellite contract behind the
// distinct 429/503/504 statuses.
func TestSentinelKinds(t *testing.T) {
	cases := []struct {
		err  error
		want fault.ErrorKind
	}{
		{ErrQuota, fault.KindQuota},
		{ErrBrownout, fault.KindBrownout},
		{ErrDeadlineShed, fault.KindShed},
	}
	for _, tc := range cases {
		if got := fault.Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %q, want %q", tc.err, got, tc.want)
		}
		wrapped := fmt.Errorf("outer: %w", tc.err)
		if got := fault.Classify(wrapped); got != tc.want {
			t.Errorf("Classify(wrapped %v) = %q, want %q", tc.err, got, tc.want)
		}
		if fault.Retryable(tc.err) {
			t.Errorf("%v must not be retryable: the work was refused by policy", tc.err)
		}
	}
}

// TestConcurrentChurn hammers the queue from many goroutines under
// -race and asserts every gauge drains to zero.
func TestConcurrentChurn(t *testing.T) {
	q := New(Options{Slots: 3, Default: TenantConfig{MaxInFlight: 8}})
	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", g%4)
			for i := 0; i < 50; i++ {
				rel, err := q.Acquire(context.Background(), name, 1+i%3)
				if err != nil {
					t.Errorf("churn acquire: %v", err)
					return
				}
				rel()
			}
		}(g)
	}
	wg.Wait()
	if n := q.QueuedAcquisitions(); n != 0 {
		t.Fatalf("queued gauge leaked: %d", n)
	}
	if n := q.InFlightCells(); n != 0 {
		t.Fatalf("in-flight gauge leaked: %d", n)
	}
	var completed int64
	for _, snap := range q.Snapshot() {
		completed += snap.CompletedCells
		if snap.AdmittedCells != snap.CompletedCells {
			t.Fatalf("tenant %s admitted %d but completed %d", snap.Tenant, snap.AdmittedCells, snap.CompletedCells)
		}
	}
	if completed == 0 {
		t.Fatal("no cells completed")
	}
}
