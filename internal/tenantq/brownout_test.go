package tenantq

import "testing"

// TestBrownoutEscalation: escalation is immediate to the highest level
// whose entry watermark the usage crosses; nothing waits on calm counts.
func TestBrownoutEscalation(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Budget: 100})
	if got := b.Observe(50); got != BrownNormal {
		t.Fatalf("50%% usage → %v, want normal", got)
	}
	if got := b.Observe(80); got != BrownNoCache {
		t.Fatalf("80%% usage → %v, want no_cache", got)
	}
	if got := b.Observe(90); got != BrownHalfConcurrency {
		t.Fatalf("90%% usage → %v, want half_concurrency", got)
	}
	if got := b.Observe(97); got != BrownSmallOnly {
		t.Fatalf("97%% usage → %v, want small_only", got)
	}
	// Straight from normal to the top in one observation.
	b2 := NewBrownout(BrownoutConfig{Budget: 100})
	if got := b2.Observe(99); got != BrownSmallOnly {
		t.Fatalf("spike to 99%% → %v, want small_only", got)
	}
	if b2.Snapshot().Escalations != 1 {
		t.Fatalf("spike counted %d escalations, want 1", b2.Snapshot().Escalations)
	}
}

// TestBrownoutRecoveryHysteresis: stepping down takes RecoverAfter
// consecutive calm observations, one level at a time, and the band
// between exit and enter holds the level while resetting the calm run.
func TestBrownoutRecoveryHysteresis(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Budget: 100, RecoverAfter: 2})
	b.Observe(99) // small_only
	if got := b.Observe(85); got != BrownSmallOnly {
		t.Fatalf("first calm observation stepped down early: %v", got)
	}
	if got := b.Observe(85); got != BrownHalfConcurrency {
		t.Fatalf("second calm observation → %v, want half_concurrency", got)
	}
	// Hysteresis band for level 2 is (80, 90): holds and resets calm.
	b.Observe(75)
	if got := b.Observe(85); got != BrownHalfConcurrency {
		t.Fatalf("band observation dropped the level: %v", got)
	}
	if got := b.Observe(75); got != BrownHalfConcurrency {
		t.Fatalf("calm run must restart after a band observation: %v", got)
	}
	if got := b.Observe(75); got != BrownNoCache {
		t.Fatalf("two calm observations → %v, want no_cache", got)
	}
	b.Observe(60)
	if got := b.Observe(60); got != BrownNormal {
		t.Fatalf("final recovery → %v, want normal", got)
	}
	snap := b.Snapshot()
	if snap.Recoveries != 3 {
		t.Fatalf("counted %d recoveries, want 3", snap.Recoveries)
	}
	if snap.Level != "normal" {
		t.Fatalf("snapshot level %q, want normal", snap.Level)
	}
}

// TestBrownoutReEscalationResetsCalm: pressure during recovery throws
// away the calm run.
func TestBrownoutReEscalationResetsCalm(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Budget: 100, RecoverAfter: 2})
	b.Observe(85) // no_cache
	b.Observe(65) // calm 1
	b.Observe(92) // re-escalates to half_concurrency
	if got := b.Level(); got != BrownHalfConcurrency {
		t.Fatalf("re-escalation → %v", got)
	}
	b.Observe(70)
	if got := b.Observe(70); got != BrownNoCache {
		t.Fatalf("fresh calm run → %v, want no_cache", got)
	}
}

func TestBrownoutDisabledAndNil(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Budget: 0})
	if got := b.Observe(1 << 40); got != BrownNormal {
		t.Fatalf("disabled controller browned out: %v", got)
	}
	if b.TrimTarget() != 0 {
		t.Fatalf("disabled TrimTarget = %d", b.TrimTarget())
	}
	var nilB *Brownout
	if nilB.Level() != BrownNormal || nilB.Observe(1) != BrownNormal {
		t.Fatal("nil controller must report normal")
	}
	if nilB.Snapshot().Level != "normal" {
		t.Fatal("nil snapshot must report normal")
	}
}

func TestBrownoutTrimTarget(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Budget: 1000})
	if got := b.TrimTarget(); got != 700 {
		t.Fatalf("TrimTarget = %d, want 700 (Exit[0] × Budget)", got)
	}
}

func TestBrownoutLevelStrings(t *testing.T) {
	want := map[BrownoutLevel]string{
		BrownNormal:          "normal",
		BrownNoCache:         "no_cache",
		BrownHalfConcurrency: "half_concurrency",
		BrownSmallOnly:       "small_only",
		BrownoutLevel(9):     "unknown",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("level %d String() = %q, want %q", l, l.String(), s)
		}
	}
}
