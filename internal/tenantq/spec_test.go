package tenantq

import "testing"

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants([]string{"team-a=2", "team-b=0.5:10000"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d tenants, want 2", len(got))
	}
	if cfg := got["team-a"]; cfg.Weight != 2 || cfg.CellBudget != 0 {
		t.Errorf("team-a parsed as %+v, want weight 2 and no budget", cfg)
	}
	if cfg := got["team-b"]; cfg.Weight != 0.5 || cfg.CellBudget != 10000 {
		t.Errorf("team-b parsed as %+v, want weight 0.5 budget 10000", cfg)
	}

	if got, err := ParseTenants(nil); got != nil || err != nil {
		t.Errorf("empty specs: got %v, %v; want nil, nil", got, err)
	}

	for _, bad := range []string{
		"noequals", "=2", "a=", "a=zero", "a=-1", "a=0",
		"a=1:", "a=1:x", "a=1:-5", "a=1:0",
	} {
		if _, err := ParseTenants([]string{bad}); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
	if _, err := ParseTenants([]string{"a=1", "a=2"}); err == nil {
		t.Error("duplicate tenant name parsed without error")
	}
}
