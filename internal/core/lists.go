package core

import "espsim/internal/trace"

// The prediction lists (§3.5, §4.2, §4.3): compressed circular queues that
// record, during pre-execution, the cache blocks the cachelets had to
// fill and the branches the predictor got wrong. Entries are stored
// decoded; the bit-accounting below enforces the paper's byte budgets so
// capacity effects (long events exhausting their lists) are faithful.

// AccessRec is one I-list or D-list record: a cache line that a
// pre-execution had to fill, and the instruction count (from the event's
// start) at which it was needed — the timestamp that makes normal-mode
// prefetches timely.
type AccessRec struct {
	Line  uint64
	Count int32
}

// I/D-list entry encoding costs in bits (§4.2): 8-bit block offset,
// 3-bit contiguous-block count, 7-bit instruction-count offset, 1 large
// offset bit. A large offset spills the full 26-bit block address into
// the next two entries.
const (
	accessEntryBits = 8 + 3 + 7 + 1
	accessLargeBits = 2 * accessEntryBits
	maxSmallOffset  = 127 // signed 8-bit block-address delta
	maxContig       = 7   // 3-bit contiguous count
	maxCountDelta   = 127 // 7-bit instruction-count delta
)

// accessList is an I-list or D-list with byte-budget accounting.
type accessList struct {
	recs    []AccessRec
	bits    int
	capBits int

	// reserved is the space still occupied by another event's
	// not-yet-consumed entries in the same physical circular queue
	// (§4.2: the event in ESP-1 records after the entries the normal
	// event is still reading; space frees as they are consumed).
	reserved int

	haveLast  bool
	lastLine  uint64
	lastCount int32
	contig    int

	// Full counts records rejected for lack of space.
	Full int64
}

func newAccessList(capBytes int) accessList { return accessList{capBits: capBytes * 8} }

// reset restores the list to its just-constructed state at the given
// budget, keeping the record array's capacity. A truncated-and-appended
// record slice holds exactly what a fresh one would, so a reset list is
// behaviourally identical to newAccessList.
func (l *accessList) reset(capBytes int) {
	recs := l.recs[:0]
	*l = accessList{recs: recs, capBits: capBytes * 8}
}

// setCapacity grows (or shrinks) the byte budget; used when a slot is
// promoted from ESP-2 to ESP-1 and its list moves to the larger queue.
func (l *accessList) setCapacity(capBytes int) { l.capBits = capBytes * 8 }

// unbounded removes the capacity limit (ideal ESP).
func (l *accessList) unbounded() { l.capBits = 1 << 40 }

// setReserved updates the space held by the co-resident consuming event.
func (l *accessList) setReserved(bits int) { l.reserved = bits }

// consumedBits estimates the queue space freed once the first n of the
// list's records have been read by the normal execution.
func (l *accessList) consumedBits(n int) int {
	if len(l.recs) == 0 {
		return l.bits
	}
	if n >= len(l.recs) {
		return l.bits
	}
	return l.bits * n / len(l.recs)
}

// remainingBits is the space the list's unconsumed tail still occupies.
func (l *accessList) remainingBits(consumed int) int {
	return l.bits - l.consumedBits(consumed)
}

// add records a fill of line at instruction count. It returns false when
// the list is full.
func (l *accessList) add(line uint64, count int32) bool {
	if l.haveLast && line == l.lastLine+trace.LineBytes && l.contig < maxContig &&
		count-l.lastCount <= maxCountDelta {
		// Extends the previous entry's contiguous run: free.
		l.contig++
		l.lastLine = line
		l.recs = append(l.recs, AccessRec{Line: line, Count: count})
		return true
	}
	cost := accessEntryBits
	if l.haveLast {
		delta := int64(line>>6) - int64(l.lastLine>>6)
		if delta > maxSmallOffset || delta < -maxSmallOffset {
			cost += accessLargeBits
		}
		// Instruction-count deltas beyond 7 bits need extension entries.
		for d := count - l.lastCount; d > maxCountDelta; d -= maxCountDelta {
			cost += accessEntryBits
		}
	}
	if l.bits+l.reserved+cost > l.capBits {
		l.Full++
		return false
	}
	l.bits += cost
	l.haveLast, l.lastLine, l.lastCount, l.contig = true, line, count, 0
	l.recs = append(l.recs, AccessRec{Line: line, Count: count})
	return true
}

// BranchRec is one B-list record: a branch the pre-execution mispredicted,
// with its architectural outcome, so just-in-time training can correct it
// during the normal execution.
type BranchRec struct {
	PC       uint64
	Target   uint64
	Count    int32
	Taken    bool
	Indirect bool
}

// B-List-Direction entry: 4-bit PC offset + direction bit + indirect bit;
// the first two entries of every thirty carry the running instruction
// count. B-List-Target entry: 16-bit target offset + 1 escape bit, with
// far targets spilling into two more entries (§4.3).
const (
	branchDirBits   = 6
	branchCountBits = 2 * branchDirBits
	countPeriod     = 30
	maxPCDelta      = 15 // 4-bit PC offset, in instructions
	branchTgtBits   = 17
	branchTgtFar    = 2 * branchTgtBits
)

// branchList combines B-List-Direction and B-List-Target accounting.
type branchList struct {
	recs []BranchRec

	dirBits, dirCap int
	tgtBits, tgtCap int

	// reserved: space still held by the consuming event's unread
	// entries in the shared circular queue (see accessList.reserved).
	reserved int

	haveLast bool
	lastPC   uint64
	n        int

	// Full counts records rejected because B-List-Direction is out of
	// space; TgtFull counts indirect records dropped because only
	// B-List-Target is (the much smaller queue — its exhaustion must not
	// suggest the whole list is done).
	Full    int64
	TgtFull int64
}

func newBranchList(dirBytes, tgtBytes int) branchList {
	return branchList{dirCap: dirBytes * 8, tgtCap: tgtBytes * 8}
}

// reset restores the list to its just-constructed state at the given
// budgets, keeping the record array's capacity (see accessList.reset).
func (l *branchList) reset(dirBytes, tgtBytes int) {
	recs := l.recs[:0]
	*l = branchList{recs: recs, dirCap: dirBytes * 8, tgtCap: tgtBytes * 8}
}

func (l *branchList) setCapacity(dirBytes, tgtBytes int) {
	l.dirCap, l.tgtCap = dirBytes*8, tgtBytes*8
}

func (l *branchList) unbounded() { l.dirCap, l.tgtCap = 1<<40, 1<<40 }

// setReserved updates the space held by the co-resident consuming event.
func (l *branchList) setReserved(bits int) { l.reserved = bits }

// consumedBits estimates the queue space freed once the first n records
// have been read.
func (l *branchList) consumedBits(n int) int {
	if len(l.recs) == 0 || n >= len(l.recs) {
		return l.dirBits
	}
	return l.dirBits * n / len(l.recs)
}

// remainingBits is the space the unconsumed tail still occupies.
func (l *branchList) remainingBits(consumed int) int {
	return l.dirBits - l.consumedBits(consumed)
}

// full reports whether even a minimal new record cannot fit.
func (l *accessList) full() bool {
	return l.bits+l.reserved+accessEntryBits > l.capBits
}

// fullDir reports whether even a minimal direction record cannot fit.
func (l *branchList) fullDir() bool {
	return l.dirBits+l.reserved+branchDirBits+branchCountBits > l.dirCap
}

// add records a mispredicted branch. It returns false when the relevant
// queue is out of space.
func (l *branchList) add(r BranchRec) bool {
	cost := branchDirBits
	if l.n%countPeriod == 0 {
		cost += branchCountBits
	}
	if l.haveLast {
		if d := int64(r.PC>>2) - int64(l.lastPC>>2); d > maxPCDelta || d < 0 {
			cost += 2 * branchDirBits // escape: spill the PC offset
		}
	}
	tgtCost := 0
	if r.Indirect && r.Taken {
		tgtCost = branchTgtBits
		if d := int64(r.Target) - int64(r.PC); d > 1<<15 || d < -(1<<15) {
			tgtCost += branchTgtFar
		}
	}
	if l.dirBits+l.reserved+cost > l.dirCap {
		l.Full++
		return false
	}
	if l.tgtBits+tgtCost > l.tgtCap {
		// A corrected direction without a corrected target cannot fix an
		// indirect branch; drop the record, but only the target queue is
		// full.
		l.TgtFull++
		return false
	}
	l.dirBits += cost
	l.tgtBits += tgtCost
	l.haveLast, l.lastPC = true, r.PC
	l.n++
	l.recs = append(l.recs, r)
	return true
}
