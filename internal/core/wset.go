package core

import (
	"math"
	"sort"

	"espsim/internal/mem"
)

// WorkingSetStudy aggregates per-event, per-mode reuse profiles of
// pre-executions, reproducing the cachelet-sizing analysis of §6.6 and
// Figure 13: the maximum working set of events in each ESP mode, and the
// capacity needed to capture a given fraction of reuse in a given
// fraction of events.
type WorkingSetStudy struct {
	// samples[mode] collects one entry per (event, mode) pre-execution.
	samples [][]wsSample
}

type wsSample struct {
	iUnique int
	dUnique int
	// Lines needed to capture 95/85/75% of reuse.
	i95, i85, i75 int
	d95, d85, d75 int
}

// NewWorkingSetStudy returns a study for the given jump-ahead depth.
func NewWorkingSetStudy(depth int) *WorkingSetStudy {
	return &WorkingSetStudy{samples: make([][]wsSample, depth)}
}

// Merge folds another study's samples into st (mode-wise). Used to
// aggregate the Figure 13 data across the benchmark suite.
func (st *WorkingSetStudy) Merge(other *WorkingSetStudy) {
	if other == nil {
		return
	}
	for len(st.samples) < len(other.samples) {
		st.samples = append(st.samples, nil)
	}
	for m, ss := range other.samples {
		st.samples[m] = append(st.samples[m], ss...)
	}
}

// AddSample folds one (event, mode) pre-execution profile into the study.
func (st *WorkingSetStudy) AddSample(mode int, i, d *mem.WorkingSet) {
	if mode < 0 || mode >= len(st.samples) {
		return
	}
	st.samples[mode] = append(st.samples[mode], wsSample{
		iUnique: i.Unique(), dUnique: d.Unique(),
		i95: i.LinesFor(0.95), i85: i.LinesFor(0.85), i75: i.LinesFor(0.75),
		d95: d.LinesFor(0.95), d85: d.LinesFor(0.85), d75: d.LinesFor(0.75),
	})
}

// ModeReport is one Figure 13 series entry for a single ESP mode.
type ModeReport struct {
	Mode   int // 1-based: ESP-1, ESP-2, ...
	Events int
	// MaxLines is the largest working set observed (the "Max" series);
	// Lines95/85/75 the capacity capturing that reuse fraction in 95% of
	// events (the sizing rule of §6.6).
	MaxLines int
	Lines95  int
	Lines85  int
	Lines75  int
}

// ReportI returns the instruction-side report; ReportD the data side.
func (st *WorkingSetStudy) ReportI() []ModeReport { return st.report(true) }

// ReportD returns the data-side Figure 13 report.
func (st *WorkingSetStudy) ReportD() []ModeReport { return st.report(false) }

func (st *WorkingSetStudy) report(instr bool) []ModeReport {
	out := make([]ModeReport, 0, len(st.samples))
	for mode, ss := range st.samples {
		r := ModeReport{Mode: mode + 1, Events: len(ss)}
		if len(ss) > 0 {
			var uniq, l95, l85, l75 []int
			for _, s := range ss {
				if instr {
					uniq = append(uniq, s.iUnique)
					l95, l85, l75 = append(l95, s.i95), append(l85, s.i85), append(l75, s.i75)
				} else {
					uniq = append(uniq, s.dUnique)
					l95, l85, l75 = append(l95, s.d95), append(l85, s.d85), append(l75, s.d75)
				}
			}
			r.MaxLines = maxOf(uniq)
			r.Lines95 = percentileInt(l95, 0.95)
			r.Lines85 = percentileInt(l85, 0.95)
			r.Lines75 = percentileInt(l75, 0.95)
		}
		out = append(out, r)
	}
	return out
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// percentileInt returns the value at quantile q of xs (nearest rank).
func percentileInt(xs []int, q float64) int {
	if len(xs) == 0 {
		return 0
	}
	s := make([]int, len(xs))
	copy(s, xs)
	sort.Ints(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
