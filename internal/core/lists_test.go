package core

import (
	"testing"
	"testing/quick"

	"espsim/internal/trace"
)

func TestAccessListSequential(t *testing.T) {
	l := newAccessList(499)
	for i := 0; i < 8; i++ {
		if !l.add(uint64(0x1000+i*trace.LineBytes), int32(i*10)) {
			t.Fatalf("add %d rejected", i)
		}
	}
	if len(l.recs) != 8 {
		t.Fatalf("recs = %d", len(l.recs))
	}
	// One base entry + 7 contiguous extensions: only one entry's bits.
	if l.bits != accessEntryBits {
		t.Fatalf("contiguous run cost %d bits, want %d", l.bits, accessEntryBits)
	}
}

func TestAccessListContigLimit(t *testing.T) {
	l := newAccessList(499)
	// 9 contiguous lines: the 3-bit contig field holds 7 extensions, so
	// the 9th line starts a new entry.
	for i := 0; i < 9; i++ {
		l.add(uint64(i*trace.LineBytes), int32(i))
	}
	if l.bits != 2*accessEntryBits {
		t.Fatalf("9 contiguous lines cost %d bits, want %d", l.bits, 2*accessEntryBits)
	}
}

func TestAccessListLargeOffsetCost(t *testing.T) {
	l := newAccessList(499)
	l.add(0x10000, 0)
	near := l.bits
	l.add(0x10000+64*trace.LineBytes, 10) // 64 lines away: small offset
	small := l.bits - near
	l.add(0x900000, 20) // far away: large offset escape
	large := l.bits - near - small
	if small != accessEntryBits {
		t.Fatalf("small-offset entry cost %d", small)
	}
	if large != accessEntryBits+accessLargeBits {
		t.Fatalf("large-offset entry cost %d, want %d", large, accessEntryBits+accessLargeBits)
	}
}

func TestAccessListCountExtension(t *testing.T) {
	l := newAccessList(499)
	l.add(0x1000, 0)
	before := l.bits
	l.add(0x1000+2*trace.LineBytes, 300) // count delta 300 needs 2 extension entries
	cost := l.bits - before
	if cost != accessEntryBits+2*accessEntryBits {
		t.Fatalf("count-extension cost %d bits", cost)
	}
}

func TestAccessListCapacity(t *testing.T) {
	l := newAccessList(10) // 80 bits: 4 scattered entries max
	added := 0
	for i := 0; i < 100; i++ {
		if l.add(uint64(i)*0x100000, int32(i)) {
			added++
		}
	}
	if added == 0 || added > 4 {
		t.Fatalf("10-byte list accepted %d scattered entries", added)
	}
	if l.Full == 0 {
		t.Fatal("Full counter not incremented")
	}
}

func TestAccessListUnbounded(t *testing.T) {
	l := newAccessList(1)
	l.unbounded()
	for i := 0; i < 1000; i++ {
		if !l.add(uint64(i)*0x100000, int32(i)) {
			t.Fatal("unbounded list rejected a record")
		}
	}
}

func TestAccessListGrowCapacityOnPromotion(t *testing.T) {
	l := newAccessList(8)
	for i := 0; i < 50; i++ {
		l.add(uint64(i)*0x100000, int32(i))
	}
	if l.Full == 0 {
		t.Fatal("expected a full ESP-2 list")
	}
	l.setCapacity(499)
	if !l.add(0x9999999, 60) {
		t.Fatal("promoted list rejected a record despite new capacity")
	}
}

func TestAccessListBitsNeverExceedCap(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		l := newAccessList(68)
		x := seed
		for i := 0; i < int(n); i++ {
			x = x*6364136223846793005 + 1442695040888963407
			l.add(x%(1<<26)*64, int32(i*3))
		}
		return l.bits <= l.capBits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBranchListBasic(t *testing.T) {
	l := newBranchList(566, 41)
	if !l.add(BranchRec{PC: 0x1000, Count: 5, Taken: true}) {
		t.Fatal("rejected first record")
	}
	if len(l.recs) != 1 {
		t.Fatal("record missing")
	}
}

func TestBranchListPCEscape(t *testing.T) {
	l := newBranchList(566, 41)
	l.add(BranchRec{PC: 0x1000, Count: 0})
	near := l.dirBits
	l.add(BranchRec{PC: 0x1000 + 10*trace.InstBytes, Count: 1})
	small := l.dirBits - near
	l.add(BranchRec{PC: 0x9000, Count: 2}) // far: escape
	far := l.dirBits - near - small
	if small != branchDirBits {
		t.Fatalf("near record cost %d", small)
	}
	if far != 3*branchDirBits {
		t.Fatalf("far record cost %d, want %d", far, 3*branchDirBits)
	}
}

func TestBranchListCountPeriod(t *testing.T) {
	l := newBranchList(566, 41)
	l.add(BranchRec{PC: 0x1000, Count: 0})
	if l.dirBits != branchDirBits+branchCountBits {
		t.Fatalf("first record should carry the instruction count: %d bits", l.dirBits)
	}
}

func TestBranchListTargetBudget(t *testing.T) {
	l := newBranchList(10000, 6) // 48 bits of target budget: 2 indirect records
	accepted := 0
	for i := 0; i < 10; i++ {
		if l.add(BranchRec{
			PC: uint64(0x1000 + i*4), Count: int32(i),
			Taken: true, Indirect: true, Target: uint64(0x1100 + i*4),
		}) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("6-byte target list accepted %d indirect records, want 2", accepted)
	}
	if l.TgtFull == 0 || l.Full != 0 {
		t.Fatalf("target exhaustion misaccounted: Full=%d TgtFull=%d", l.Full, l.TgtFull)
	}
	// Direction-only records must still be accepted.
	if !l.add(BranchRec{PC: 0x5000, Count: 100, Taken: true}) {
		t.Fatal("direction-only record rejected after target exhaustion")
	}
}

func TestBranchListDirCapacity(t *testing.T) {
	l := newBranchList(6, 41) // 48 bits: a handful of records
	accepted := 0
	for i := 0; i < 50; i++ {
		if l.add(BranchRec{PC: uint64(0x1000 + i*4), Count: int32(i), Taken: i%2 == 0}) {
			accepted++
		}
	}
	if accepted == 0 || accepted >= 50 {
		t.Fatalf("accepted %d", accepted)
	}
	if l.Full == 0 {
		t.Fatal("Full not counted")
	}
}

func TestBranchListFarTargetCost(t *testing.T) {
	l := newBranchList(566, 41)
	l.add(BranchRec{PC: 0x1000, Count: 0, Taken: true, Indirect: true, Target: 0x1200})
	near := l.tgtBits
	if near != branchTgtBits {
		t.Fatalf("near target cost %d", near)
	}
	l.add(BranchRec{PC: 0x1004, Count: 1, Taken: true, Indirect: true, Target: 0x4000_0000})
	if l.tgtBits-near != branchTgtBits+branchTgtFar {
		t.Fatalf("far target cost %d", l.tgtBits-near)
	}
}
