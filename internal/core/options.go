// Package core implements Event Sneak Peek (ESP), the paper's
// contribution: a hardware event queue exposed to the core, speculative
// pre-execution of queued future events during LLC-miss stall windows,
// isolated L0 cachelets for the pre-executions, compressed hardware lists
// recording what the pre-executions fetched and mispredicted, and the
// normal-mode machinery that replays those lists as timely prefetches and
// just-in-time branch-predictor training (§3, §4).
package core

import (
	"fmt"

	"espsim/internal/mem"
)

// BPMode selects how pre-execution interacts with the branch predictor —
// the design points of Figure 12.
type BPMode uint8

const (
	// BPShared: pre-execution predicts and trains through the normal
	// context's PIR and tables ("no extra H/W" in Figure 12).
	BPShared BPMode = iota
	// BPSeparatePIR: each ESP mode has its own Path Information
	// Register; tables are shared ("separate context"). This is the ESP
	// design (§4.3).
	BPSeparatePIR
	// BPReplicate: each ESP mode has a full private copy of the
	// predictor, warmed during pre-execution and installed when the
	// event executes normally ("separate context and tables").
	BPReplicate
)

// String names the mode.
func (m BPMode) String() string {
	switch m {
	case BPShared:
		return "shared"
	case BPSeparatePIR:
		return "separate-pir"
	case BPReplicate:
		return "replicated-tables"
	default:
		return "unknown"
	}
}

// Sizes are the capacities of ESP's hardware structures per mode
// (Figure 8). Index 0 is ESP-1, index 1 is ESP-2; jump-ahead depths
// beyond 2 (used only by the Figure 13 design-space study) reuse the
// ESP-2 sizes.
type Sizes struct {
	ICacheletBytes [2]int
	ICacheletWays  [2]int
	DCacheletBytes [2]int
	DCacheletWays  [2]int
	IListBytes     [2]int
	DListBytes     [2]int
	BListDirBytes  [2]int
	BListTgtBytes  [2]int
}

// DefaultSizes mirrors Figure 8: 5.5 KB / 0.5 KB cachelets (11 of 12 ways
// to ESP-1, the rotating reserved way to ESP-2), 499 B / 68 B I-lists,
// 510 B / 57 B D-lists, 566 B / 80 B B-List-Direction and 41 B / 6 B
// B-List-Target circular queues.
func DefaultSizes() Sizes {
	return Sizes{
		ICacheletBytes: [2]int{5632, 512},
		ICacheletWays:  [2]int{11, 1},
		DCacheletBytes: [2]int{5632, 512},
		DCacheletWays:  [2]int{11, 1},
		IListBytes:     [2]int{499, 68},
		DListBytes:     [2]int{510, 57},
		BListDirBytes:  [2]int{566, 80},
		BListTgtBytes:  [2]int{41, 6},
	}
}

func (s Sizes) mode(i int) int {
	if i <= 0 {
		return 0
	}
	return 1
}

// Validate checks every per-mode capacity: the cachelets must form legal
// cache geometries (the engine builds a fresh pair per tracked event)
// and the list budgets must hold at least one record each.
func (s Sizes) Validate() error {
	modeName := [2]string{"ESP-1", "ESP-2"}
	for m := 0; m < 2; m++ {
		if err := mem.CheckGeometry(modeName[m]+" I-cachelet", s.ICacheletBytes[m], s.ICacheletWays[m]); err != nil {
			return fmt.Errorf("core: bad cachelet geometry: %w", err)
		}
		if err := mem.CheckGeometry(modeName[m]+" D-cachelet", s.DCacheletBytes[m], s.DCacheletWays[m]); err != nil {
			return fmt.Errorf("core: bad cachelet geometry: %w", err)
		}
		for _, b := range []struct {
			name  string
			bytes int
		}{
			{"IListBytes", s.IListBytes[m]},
			{"DListBytes", s.DListBytes[m]},
			{"BListDirBytes", s.BListDirBytes[m]},
			{"BListTgtBytes", s.BListTgtBytes[m]},
		} {
			if b.bytes < 1 {
				return fmt.Errorf("core: %s %s is %d bytes; every list needs capacity for at least one record", modeName[m], b.name, b.bytes)
			}
		}
	}
	return nil
}

// Options configures an ESP engine.
type Options struct {
	// UseI, UseD and UseB enable consumption of the I-list (instruction
	// prefetch), D-list (data prefetch) and B-lists (just-in-time branch
	// training). Recording always happens; these gate the benefit, which
	// is how Figure 10 isolates the sources of performance.
	UseI bool
	UseD bool
	UseB bool

	// Naive selects the hypothetical design of Figure 10 that has no
	// cachelets or lists: pre-execution fetches straight into L1/L2 and
	// trains the live predictor, like runahead would.
	Naive bool

	// BPMode selects the Figure 12 branch-predictor design point.
	BPMode BPMode

	// JumpDepth is the number of events ESP may jump ahead (the paper
	// settles on 2; the Figure 13 study sweeps up to 8).
	JumpDepth int

	// Ideal removes capacity limits: unbounded cachelets and lists with
	// perfectly timely prefetches ("ideal ESP" in Figure 11).
	Ideal bool

	// MeasureWorkingSets attaches the Figure 13 reuse profiler to every
	// pre-execution (slow; for the design-space study only).
	MeasureWorkingSets bool

	// Sizes are the structure capacities (Figure 8).
	Sizes Sizes

	// BaseCPI is the pre-execution pseudo-retirement rate;
	// SwitchPenalty the pipeline-drain cost of entering an ESP mode;
	// MispredictPenalty the pre-execution's own flush cost;
	// PrefetchLead the list-prefetch lookahead in instructions (§3.6);
	// PreEventWindow the looper-overhead head start (§3.6);
	// MinLead is the smallest useful prefetch lead in instructions.
	BaseCPI           float64
	SwitchPenalty     int
	MispredictPenalty int
	PrefetchLead      int
	PreEventWindow    int
	MinLead           int

	// DirtyHazardPeriod: every n-th dirty eviction from a D-cachelet
	// poisons the remainder of that pre-execution (§4.4: lost store
	// values can send pre-execution down a wrong path). 0 disables.
	DirtyHazardPeriod int

	// MinWindow is the smallest stall window worth jumping into: the
	// MSHR knows when the blocking fill returns, and entering an ESP
	// mode for less than the drain + flush costs only loses cycles
	// (overlapped misses expose very short windows).
	MinWindow int

	// IdleCore selects the §7 alternative the paper argues against:
	// pre-execution runs continuously on a second, otherwise-idle core
	// instead of inside the main core's stall windows. The helper has
	// its own L1-sized private caches (no cachelets needed), never
	// disturbs the main pipeline (no drain/flush costs), but pays
	// IdleTransfer cycles per event to ship live-ins over and the
	// gathered lists back — and it costs a whole core.
	IdleCore     bool
	IdleTransfer int
}

// IdleCoreOptions returns the §7 idle-core design point: ESP's recording
// and replay machinery driven by a dedicated helper core.
func IdleCoreOptions() Options {
	o := DefaultOptions()
	o.IdleCore = true
	o.IdleTransfer = 400
	// The helper core uses its own 32 KB L1-sized caches.
	o.Sizes.ICacheletBytes = [2]int{32 << 10, 32 << 10}
	o.Sizes.ICacheletWays = [2]int{8, 8}
	o.Sizes.DCacheletBytes = [2]int{32 << 10, 32 << 10}
	o.Sizes.DCacheletWays = [2]int{8, 8}
	return o
}

// DefaultOptions returns the full ESP design of the paper.
func DefaultOptions() Options {
	return Options{
		UseI:              true,
		UseD:              true,
		UseB:              true,
		BPMode:            BPSeparatePIR,
		JumpDepth:         2,
		Sizes:             DefaultSizes(),
		BaseCPI:           0.95,
		SwitchPenalty:     8,
		MispredictPenalty: 15,
		PrefetchLead:      190,
		PreEventWindow:    70,
		MinLead:           30,
		DirtyHazardPeriod: 4,
		MinWindow:         28,
	}
}

// Validate reports whether the options are coherent, including the
// cachelet geometry and list capacities of Sizes. New is the only
// constructor and calls it, so an ESP engine never exists with options
// that could later panic mid-simulation.
func (o *Options) Validate() error {
	switch {
	case o.JumpDepth < 1 || o.JumpDepth > 8:
		return fmt.Errorf("core: JumpDepth %d out of range [1,8]", o.JumpDepth)
	case o.BaseCPI <= 0:
		return fmt.Errorf("core: BaseCPI must be positive, got %g (start from DefaultOptions)", o.BaseCPI)
	case o.PrefetchLead < 0 || o.PreEventWindow < 0:
		return fmt.Errorf("core: prefetch windows must be non-negative, got lead=%d window=%d", o.PrefetchLead, o.PreEventWindow)
	case o.MinLead < 0:
		return fmt.Errorf("core: MinLead must be non-negative, got %d", o.MinLead)
	case o.SwitchPenalty < 0 || o.MispredictPenalty < 0:
		return fmt.Errorf("core: penalties must be non-negative, got switch=%d mispredict=%d", o.SwitchPenalty, o.MispredictPenalty)
	case o.MinWindow < 0:
		return fmt.Errorf("core: MinWindow must be non-negative, got %d", o.MinWindow)
	case o.DirtyHazardPeriod < 0:
		return fmt.Errorf("core: DirtyHazardPeriod must be non-negative, got %d", o.DirtyHazardPeriod)
	case o.BPMode > BPReplicate:
		return fmt.Errorf("core: unknown BPMode %d", o.BPMode)
	case o.IdleTransfer < 0:
		return fmt.Errorf("core: IdleTransfer must be non-negative, got %d", o.IdleTransfer)
	}
	if err := o.Sizes.Validate(); err != nil {
		return err
	}
	return nil
}

// BudgetRow is one line of the Figure 8 hardware-budget table.
type BudgetRow struct {
	Structure   string
	Description string
	ESP1Bytes   int
	ESP2Bytes   int
}

// HardwareBudget reproduces Figure 8: the storage ESP adds per mode.
func HardwareBudget(s Sizes) []BudgetRow {
	return []BudgetRow{
		{"L1-I Cachelet", "12-way total, 64B lines, 2-cycle hit", s.ICacheletBytes[0], s.ICacheletBytes[1]},
		{"L1-D Cachelet", "12-way total, 64B lines, 2-cycle hit", s.DCacheletBytes[0], s.DCacheletBytes[1]},
		{"I-List", "circular queue", s.IListBytes[0], s.IListBytes[1]},
		{"D-List", "circular queue", s.DListBytes[0], s.DListBytes[1]},
		{"B-List-Direction", "circular queue", s.BListDirBytes[0], s.BListDirBytes[1]},
		{"B-List-Target", "circular queue", s.BListTgtBytes[0], s.BListTgtBytes[1]},
		{"RRAT", "32-entry retirement RAT", 28, 28},
		{"HW Event Queue", "2-entry queue", 8, 8},
		{"Special Registers", "PC, SP, Flags, ESP-mode", 12, 12},
	}
}

// BudgetTotal sums a budget column: mode 0 for ESP-1, 1 for ESP-2.
func BudgetTotal(rows []BudgetRow, mode int) int {
	t := 0
	for _, r := range rows {
		if mode == 0 {
			t += r.ESP1Bytes
		} else {
			t += r.ESP2Bytes
		}
	}
	return t
}
