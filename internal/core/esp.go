package core

import (
	"fmt"

	"espsim/internal/branch"
	"espsim/internal/cpu"
	"espsim/internal/mem"
	"espsim/internal/trace"
)

// StreamSource materializes the speculative pre-execution stream of a
// queued event (the paper's forked-off renderer executions, §5).
type StreamSource interface {
	SpecInsts(ev trace.Event) []trace.Inst
}

// Stats counts ESP activity.
type Stats struct {
	// PreExecInsts is the extra instructions executed in ESP modes — the
	// paper reports +21.2% on average (Figure 14).
	PreExecInsts int64
	// CacheletFills counts cachelet misses filled from L2/memory;
	// LLCFills those that had to go to memory (mode-escalation points).
	CacheletFills int64
	LLCFills      int64
	// ModeEntries[i] counts entries into ESP-(i+1).
	ModeEntries [8]int64
	// PrefetchI/PrefetchD count list prefetches issued in normal mode;
	// SkippedLate those suppressed for arriving hopelessly late.
	PrefetchI   int64
	PrefetchD   int64
	SkippedLate int64
	// Corrections counts branches fixed by just-in-time B-list training.
	Corrections int64
	// ListFull counts records dropped because a list filled up; RecI,
	// RecD and RecB count records accepted into each list kind.
	ListFull int64
	RecI     int64
	RecD     int64
	RecB     int64
	// DirtyHazards counts dirty D-cachelet evictions; Poisonings the
	// pre-executions degraded by one (§4.4).
	DirtyHazards int64
	Poisonings   int64
	// EventsPreExecuted counts events that got any pre-execution;
	// EventsConsumed those whose records were used in normal mode;
	// SlotMismatches queue-prediction misses that discarded records.
	EventsPreExecuted int64
	EventsConsumed    int64
	SlotMismatches    int64
}

// slot is one hardware event-queue entry plus the per-mode execution
// context of the event it tracks: its speculative stream position (the
// re-entrancy state of §3.4), PIR, cachelets and prediction lists.
type slot struct {
	ev    trace.Event
	valid bool

	// started is the EU ("execution underway") bit of §4.1.
	started bool
	insts   []trace.Inst
	pos     int

	fetchLine uint64
	haveLine  bool

	pir     uint64
	ras     branch.RASState
	replica *branch.Predictor

	icl *mem.Cache
	dcl *mem.Cache

	ilist accessList
	dlist accessList
	blist branchList

	hazards  int
	poisoned bool

	// delay is the remaining live-in transfer time before an idle-core
	// helper may start pre-executing this event (§7 alternative).
	delay float64

	preExecuted bool

	// ws holds per-mode reuse profilers for the Figure 13 study,
	// indexed by depth (nil entries for unvisited modes). The slice's
	// storage survives scrubbing, so the study never reallocates it.
	ws []*wsPair
}

type wsPair struct {
	i *mem.WorkingSet
	d *mem.WorkingSet
}

// listsFull reports whether none of the three prediction lists can hold
// even a minimal further record: pre-executing this event gathers
// nothing. Space can reappear as the normal event drains the shared
// circular queue, so this is re-evaluated per stall.
func (s *slot) listsFull() bool {
	return s.ilist.full() && s.dlist.full() && s.blist.fullDir()
}

// ESP is the Event Sneak Peek engine; it implements cpu.Assist.
type ESP struct {
	Opt  Options           //esp:immutable
	Hier *mem.Hierarchy    //esp:immutable
	BP   *branch.Predictor //esp:immutable
	Src  StreamSource

	// Stats accumulates across the run.
	Stats Stats

	slots []*slot

	// Consumption state for the current normal event.
	cons                *slot
	consI, consD, consB int
	curIdx              int

	// consWake is the next instruction index at which advanceConsumption
	// has any record to process: the per-instruction hook compares one
	// integer and returns until then, instead of rescanning three list
	// heads every retired instruction.
	consWake int

	// idleBudget accumulates helper-core cycles in the IdleCore design.
	idleBudget float64

	// Study collects Figure 13 working-set samples when enabled.
	Study *WorkingSetStudy

	// Recycling pools. The engine simulates one hardware structure set
	// being reused event after event, so the software mirrors it: retired
	// slots, their cachelets (bucketed by geometry) and replica
	// predictors go back to these intrusive free-lists instead of the
	// garbage collector. A pooled structure is always reset to cold state
	// before reuse, keeping results bit-identical to allocate-fresh. The
	// cachelet buckets are a linear-scanned slice, not a map: an engine
	// sees at most a handful of geometries, and bucket lookup sits on the
	// per-event rotation path.
	cachePools []cachePool
	slotPool   []*slot
	bpPool     []*branch.Predictor

	// runWindow/promote scratch, reused across calls.
	readyAt     []float64
	done        []bool
	lineScratch []uint64
}

// instNever is the OnInst wake value meaning "no per-instruction work
// left this event".
const instNever = int(^uint(0) >> 1)

// cacheGeom keys the cachelet pool: cachelets are interchangeable
// exactly when their geometry matches.
type cacheGeom struct{ bytes, ways int }

// cachePool is one geometry bucket of the cachelet free-list.
type cachePool struct {
	geom cacheGeom
	free []*mem.Cache
}

// New returns an ESP engine sharing the core's hierarchy and predictor.
func New(opt Options, h *mem.Hierarchy, bp *branch.Predictor, src StreamSource) (*ESP, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	e := &ESP{Opt: opt, Hier: h, BP: bp, Src: src}
	e.slots = make([]*slot, opt.JumpDepth)
	for i := range e.slots {
		e.slots[i] = &slot{}
	}
	e.readyAt = make([]float64, opt.JumpDepth)
	e.done = make([]bool, opt.JumpDepth)
	if opt.MeasureWorkingSets {
		e.Study = NewWorkingSetStudy(opt.JumpDepth)
	}
	return e, nil
}

// Reset restores the engine to its just-constructed state without
// reallocating its structures: every slot is scrubbed back to the pool's
// cold state, statistics are zeroed, and pooled cachelets, lists and
// replica predictors keep their storage. Src points at the workload
// being replayed and is cleared; the caller installs the next workload's
// stream source before running again.
func (e *ESP) Reset() {
	if e.cons != nil {
		e.freeSlot(e.cons)
		e.cons = nil
	}
	for _, s := range e.slots {
		e.scrubSlot(s)
	}
	e.Stats = Stats{}
	e.consI, e.consD, e.consB = 0, 0, 0
	e.curIdx = 0
	e.consWake = 0
	e.idleBudget = 0
	e.Src = nil
	if e.Opt.MeasureWorkingSets {
		e.Study = NewWorkingSetStudy(e.Opt.JumpDepth)
	}
	// Scratch is rebuilt before every use, but scrub it anyway: a
	// recycled engine must be field-for-field identical to a fresh one.
	clear(e.readyAt)
	clear(e.done)
	e.lineScratch = e.lineScratch[:0]
}

// scrubSlot releases a slot's cachelets and replica to the pools and
// restores the zero state a fresh &slot{} would have (the list record
// arrays keep their capacity; truncated-and-appended slices hold exactly
// what fresh ones would).
func (e *ESP) scrubSlot(s *slot) {
	e.releaseSlotRes(s)
	il, dl, bl := s.ilist, s.dlist, s.blist
	il.reset(0)
	dl.reset(0)
	bl.reset(0, 0)
	ws := clearPairs(s.ws)
	*s = slot{ilist: il, dlist: dl, blist: bl, ws: ws}
}

// clearPairs empties a study-pair slice while keeping its storage.
func clearPairs(ws []*wsPair) []*wsPair {
	for i := range ws {
		ws[i] = nil
	}
	return ws[:0]
}

// takeSlot pops a pooled slot (or builds the first few).
func (e *ESP) takeSlot() *slot {
	if n := len(e.slotPool); n > 0 {
		s := e.slotPool[n-1]
		e.slotPool = e.slotPool[:n-1]
		return s
	}
	return &slot{}
}

// freeSlot scrubs a rotated-out slot and pools it for reuse.
func (e *ESP) freeSlot(s *slot) {
	e.scrubSlot(s)
	e.slotPool = append(e.slotPool, s)
}

// releaseSlotRes returns a slot's cachelets and replica predictor to
// their pools, reset to cold state.
func (e *ESP) releaseSlotRes(s *slot) {
	e.releaseCache(s.icl)
	e.releaseCache(s.dcl)
	s.icl, s.dcl = nil, nil
	if s.replica != nil {
		e.bpPool = append(e.bpPool, s.replica)
		s.replica = nil
	}
}

func (e *ESP) releaseCache(c *mem.Cache) {
	if c == nil {
		return
	}
	c.Reset()
	g := cacheGeom{c.SizeBytes(), c.Ways()}
	for i := range e.cachePools {
		if e.cachePools[i].geom == g {
			e.cachePools[i].free = append(e.cachePools[i].free, c)
			return
		}
	}
	e.cachePools = append(e.cachePools, cachePool{geom: g, free: []*mem.Cache{c}})
}

// resetSlot points a slot at a (new) future event, discarding any state
// from a previous occupant. The slot's cachelets and list storage are
// recycled through the pools, never reallocated.
func (e *ESP) resetSlot(s *slot, depth int, ev trace.Event, valid bool) {
	m := e.Opt.Sizes.mode(depth)
	sz := e.Opt.Sizes
	e.releaseSlotRes(s)
	il, dl, bl := s.ilist, s.dlist, s.blist
	ws := clearPairs(s.ws)
	*s = slot{ev: ev, valid: valid, ilist: il, dlist: dl, blist: bl, ws: ws}
	if e.Opt.Ideal {
		s.icl = e.cachelet("I-cachelet", 4<<20, 16)
		s.dcl = e.cachelet("D-cachelet", 4<<20, 16)
		s.ilist.reset(0)
		s.dlist.reset(0)
		s.blist.reset(0, 0)
		s.ilist.unbounded()
		s.dlist.unbounded()
		s.blist.unbounded()
	} else {
		s.icl = e.cachelet("I-cachelet", sz.ICacheletBytes[m], sz.ICacheletWays[m])
		s.dcl = e.cachelet("D-cachelet", sz.DCacheletBytes[m], sz.DCacheletWays[m])
		s.ilist.reset(sz.IListBytes[m])
		s.dlist.reset(sz.DListBytes[m])
		s.blist.reset(sz.BListDirBytes[m], sz.BListTgtBytes[m])
	}
	if valid {
		s.pir = e.BP.PIR()
	}
	if valid && e.Opt.IdleCore {
		s.delay = float64(e.Opt.IdleTransfer)
	}
}

// cachelet acquires a per-slot cachelet, from the geometry-keyed pool
// when one is available (pooled cachelets are reset to cold state, so
// reuse is bit-identical to building fresh). Geometry was checked by
// Options.Validate in New (and the Ideal-mode sizes are compiled-in
// constants), so a build failure here is an internal invariant
// violation — the panic is unreachable from any input that passed
// validation.
func (e *ESP) cachelet(name string, bytes, ways int) *mem.Cache {
	g := cacheGeom{bytes, ways}
	for i := range e.cachePools {
		p := &e.cachePools[i]
		if p.geom != g {
			continue
		}
		if n := len(p.free); n > 0 {
			c := p.free[n-1]
			p.free[n-1] = nil
			p.free = p.free[:n-1]
			return c
		}
		break
	}
	c, err := mem.NewCache(name, bytes, ways)
	if err != nil {
		panic(fmt.Sprintf("core: internal invariant: cachelet geometry escaped validation: %v", err))
	}
	return c
}

// promote upgrades a slot that moved one step closer to execution: its
// cachelet contents migrate into the larger ESP-1 cachelets (the event
// keeps its reserved way and gains ten more, §4.2) and its lists move to
// the larger circular queues.
func (e *ESP) promote(s *slot, newDepth int) {
	if !s.valid || e.Opt.Ideal {
		return
	}
	m := e.Opt.Sizes.mode(newDepth)
	om := e.Opt.Sizes.mode(newDepth + 1)
	if m == om {
		return
	}
	sz := e.Opt.Sizes
	icl := e.cachelet("I-cachelet", sz.ICacheletBytes[m], sz.ICacheletWays[m])
	e.lineScratch = s.icl.AppendLines(e.lineScratch[:0])
	for _, l := range e.lineScratch {
		icl.Install(l, false)
	}
	dcl := e.cachelet("D-cachelet", sz.DCacheletBytes[m], sz.DCacheletWays[m])
	e.lineScratch = s.dcl.AppendLines(e.lineScratch[:0])
	for _, l := range e.lineScratch {
		dcl.Install(l, false)
	}
	e.releaseCache(s.icl)
	e.releaseCache(s.dcl)
	s.icl, s.dcl = icl, dcl
	s.ilist.setCapacity(sz.IListBytes[m])
	s.dlist.setCapacity(sz.DListBytes[m])
	s.blist.setCapacity(sz.BListDirBytes[m], sz.BListTgtBytes[m])
}

// EventStart implements cpu.Assist: rotate the hardware event queue,
// activate the departing slot's records for consumption, and resync the
// queue with the software queue's pending events.
func (e *ESP) EventStart(ev trace.Event, _ []trace.Inst, pending []trace.Event) {
	// The slot that tracked this event supplies the prediction records.
	e.cons = nil
	if s := e.slots[0]; s.valid && s.ev.ID == ev.ID {
		e.finishStudy(s)
		if s.preExecuted {
			e.cons = s
			e.Stats.EventsConsumed++
			if e.Opt.BPMode == BPReplicate && s.replica != nil {
				e.installReplica(s.replica)
			}
		}
	} else if e.slots[0].valid {
		// The software runtime predicted the wrong next event (§4.5):
		// the "incorrect prediction" bit discards the gathered records.
		e.Stats.SlotMismatches++
		e.finishStudy(e.slots[0])
	}
	e.consI, e.consD, e.consB = 0, 0, 0
	e.curIdx = -e.Opt.PreEventWindow
	if e.Opt.IdleCore {
		// The gathered lists are shipped back from the helper core: the
		// pre-event head start is spent on the transfer.
		e.curIdx = 0
	}

	// Rotate: every remaining slot moves one position forward. The
	// departing slot may live on as e.cons until this event ends; if it
	// was not consumed it is recycled immediately.
	departing := e.slots[0]
	copy(e.slots, e.slots[1:])
	e.slots[len(e.slots)-1] = e.takeSlot()
	if departing != e.cons {
		e.freeSlot(departing)
	}

	// Resync slots with the pending events now visible in the queue.
	for i := range e.slots {
		s := e.slots[i]
		if i < len(pending) {
			if s.valid && s.ev.ID == pending[i].ID {
				e.promote(s, i)
				continue
			}
			if s.valid {
				e.Stats.SlotMismatches++
				e.finishStudy(s)
			}
			e.resetSlot(s, i, pending[i], true)
		} else if s.valid {
			// No longer visible in the software queue: drop it.
			e.finishStudy(s)
			e.resetSlot(s, i, trace.Event{}, false)
		}
	}

	// The new ESP-1 entry records into the same physical circular queues
	// the departing event is still consuming from (§4.2): its capacity
	// grows as consumption drains them.
	e.updateReservations()

	// Pre-event window: the looper's queue-management instructions give
	// list prefetches a head start (§3.6).
	e.advanceConsumption()
	e.refreshWake()
}

// refreshWake recomputes consWake: the smallest instruction index at
// which advanceConsumption has any record within reach. I/D records are
// reached when curIdx+PrefetchLead meets the head record's Count; B
// records are dropped when curIdx passes Count. Any earlier call is a
// no-op, so skipping until consWake is bit-identical to calling every
// instruction. CorrectBranch can advance consB between wake-ups, which
// only ever moves the true wake later — a stale (smaller) consWake costs
// a harmless extra scan, never a missed one.
func (e *ESP) refreshWake() {
	wake := instNever
	c := e.cons
	if c == nil {
		e.consWake = wake
		return
	}
	if e.Opt.UseI && e.consI < len(c.ilist.recs) {
		if w := int(c.ilist.recs[e.consI].Count) - e.Opt.PrefetchLead; w < wake {
			wake = w
		}
	}
	if e.Opt.UseD && e.consD < len(c.dlist.recs) {
		if w := int(c.dlist.recs[e.consD].Count) - e.Opt.PrefetchLead; w < wake {
			wake = w
		}
	}
	if e.Opt.UseB && e.consB < len(c.blist.recs) {
		if w := int(c.blist.recs[e.consB].Count) + 1; w < wake {
			wake = w
		}
	}
	e.consWake = wake
}

// updateReservations charges the unconsumed tail of the current event's
// records against the ESP-1 slot's list capacity.
func (e *ESP) updateReservations() {
	s := e.slots[0]
	if s == e.cons {
		return // defensive: never self-reserve
	}
	if e.cons == nil {
		s.ilist.setReserved(0)
		s.dlist.setReserved(0)
		s.blist.setReserved(0)
		return
	}
	s.ilist.setReserved(e.cons.ilist.remainingBits(e.consI))
	s.dlist.setReserved(e.cons.dlist.remainingBits(e.consD))
	s.blist.setReserved(e.cons.blist.remainingBits(e.consB))
}

// EventEnd implements cpu.Assist. The consumed slot was rotated out of
// the queue at EventStart and nothing references it past this point, so
// it is recycled.
func (e *ESP) EventEnd(trace.Event) {
	if e.cons != nil {
		e.freeSlot(e.cons)
		e.cons = nil
	}
	e.updateReservations()
}

// OnInst implements cpu.Assist: track progress and issue timely list
// prefetches PrefetchLead instructions ahead of their recorded use. The
// consWake threshold is also the return value: between record wake-ups
// the three list heads cannot match, so the core skips the call
// entirely (curIdx is only ever read by advanceConsumption, which only
// runs on a wake-up, so it never goes stale observably). CorrectBranch
// can consume a B record between wake-ups, making consWake point at an
// already-drained record; the wake then fires once as a no-op scan and
// reschedules — never skips work.
func (e *ESP) OnInst(idx int) int {
	e.curIdx = idx
	if e.cons != nil && idx >= e.consWake {
		e.advanceConsumption()
		e.refreshWake()
	}
	if e.Opt.IdleCore {
		// The helper core runs continuously alongside the main core: its
		// cycle budget accrues per retired instruction.
		e.idleBudget += idleCycleRate
		if e.idleBudget >= idleQuantum {
			b := e.idleBudget
			e.idleBudget = 0
			e.runWindow(b)
		}
		return idx + 1
	}
	if e.cons == nil {
		return instNever
	}
	return e.consWake
}

// idleCycleRate approximates the helper-core cycles that pass per
// main-core instruction (the main core's CPI); idleQuantum batches the
// helper's simulation for efficiency.
const (
	idleCycleRate = 1.8
	idleQuantum   = 256
)

func (e *ESP) advanceConsumption() {
	c := e.cons
	if c == nil {
		return
	}
	horizon := int32(e.curIdx + e.Opt.PrefetchLead)
	minLead := int32(e.Opt.MinLead)
	if e.Opt.Ideal {
		minLead = 0
	}
	if e.Opt.UseI {
		for e.consI < len(c.ilist.recs) && c.ilist.recs[e.consI].Count <= horizon {
			r := c.ilist.recs[e.consI]
			e.consI++
			if r.Count-int32(e.curIdx) < minLead {
				e.Stats.SkippedLate++
				continue
			}
			e.Hier.PrefetchI(r.Line)
			e.Stats.PrefetchI++
		}
	}
	if e.Opt.UseD {
		for e.consD < len(c.dlist.recs) && c.dlist.recs[e.consD].Count <= horizon {
			r := c.dlist.recs[e.consD]
			e.consD++
			if r.Count-int32(e.curIdx) < minLead {
				e.Stats.SkippedLate++
				continue
			}
			e.Hier.PrefetchD(r.Line)
			e.Stats.PrefetchD++
		}
	}
	if e.Opt.UseB {
		// Drop stale records (divergence leaves unmatched entries behind).
		for e.consB < len(c.blist.recs) && c.blist.recs[e.consB].Count < int32(e.curIdx) {
			e.consB++
		}
	}
}

// CorrectBranch implements cpu.Assist: just-in-time training from the
// B-lists guarantees a correct prediction for branches the pre-execution
// saw mispredicted (§3.6, §4.3).
func (e *ESP) CorrectBranch(idx int, in trace.Inst) bool {
	c := e.cons
	if c == nil || !e.Opt.UseB {
		return false
	}
	for e.consB < len(c.blist.recs) && c.blist.recs[e.consB].Count < int32(idx) {
		e.consB++
	}
	if e.consB < len(c.blist.recs) {
		r := c.blist.recs[e.consB]
		if r.Count == int32(idx) && r.PC == in.PC {
			e.consB++
			e.Stats.Corrections++
			return true
		}
	}
	return false
}

// misfetchCost is the decoder re-steer bubble paid inside pre-execution
// when a direct branch misses the BTB.
const misfetchCost = 5

// preExecResult describes why a pre-execution step stopped.
type preExecResult uint8

const (
	preExecBudget preExecResult = iota // stall window exhausted
	preExecEnd                         // event's stream ended
	preExecLLC                         // cachelet fill missed the LLC
)

// OnStall implements cpu.Assist: jump ahead into pending events for the
// duration of the stall window (§3.1, §3.2). Within the window the
// controller switches between the pending-event contexts whenever the
// active one blocks on an LLC fill: the fill proceeds in the background
// while another queued event pre-executes, and the blocked context
// resumes as soon as its line returns — the re-entrant execution contexts
// of §3.4 make the switch a PIR/RRAT swap.
func (e *ESP) OnStall(_ cpu.StallKind, _ int, budget int) bool {
	if e.Opt.IdleCore {
		// The idle-core design leaves the main core's stalls idle: all
		// pre-execution happens on the helper (driven from OnInst).
		return false
	}
	if budget < e.Opt.MinWindow {
		return false
	}
	return e.runWindow(float64(budget))
}

// runWindow pre-executes pending events for a window of cycles — a stall
// window in the ESP design, a helper-core quantum in the idle-core one.
func (e *ESP) runWindow(window float64) bool {
	// Reservations are only ever read inside this window (list full/add
	// checks), so recomputing them here once is exactly equivalent to the
	// old per-retired-instruction update.
	e.updateReservations()
	before := e.Stats.PreExecInsts
	t := 0.0
	n := len(e.slots)
	readyAt := e.readyAt[:n]
	done := e.done[:n]
	for i := 0; i < n; i++ {
		readyAt[i], done[i] = 0, false
	}
	for t < window {
		// Pick the closest-to-execution runnable context.
		run := -1
		next := window
		for i := 0; i < n; i++ {
			s := e.slots[i]
			if done[i] || !s.valid || (s.listsFull() && !e.Opt.Naive) {
				continue
			}
			if readyAt[i] <= t {
				run = i
				break
			}
			if readyAt[i] < next {
				next = readyAt[i]
			}
		}
		if run < 0 {
			if next >= window {
				break // nothing can run again within this window
			}
			t = next // wait for the earliest background fill
			continue
		}
		s := e.slots[run]
		if s.delay > 0 {
			// Live-in transfer to the helper core still in flight.
			use := s.delay
			if use > window-t {
				use = window - t
			}
			s.delay -= use
			t += use
			continue
		}
		b := window - t - float64(e.Opt.SwitchPenalty)
		if b <= 0 {
			break
		}
		e.Stats.ModeEntries[run]++
		res, llcLat := e.runSlot(s, run, &b)
		t = window - b // runSlot consumed (budget - b) cycles
		switch res {
		case preExecBudget:
			t = window
		case preExecEnd:
			done[run] = true // fully pre-executed; jump one deeper
		case preExecLLC:
			readyAt[run] = t + float64(llcLat)
		}
	}
	used := e.Stats.PreExecInsts > before
	if used && e.Opt.BPMode == BPShared {
		// The no-extra-hardware design point shares one RAS; returning
		// to the normal event must clear it, since it may hold
		// pre-executed frames (§4.1).
		e.BP.ClearRAS()
	}
	return used
}

// runSlot pre-executes slot s (in ESP mode depth+1) until the budget is
// exhausted, the event ends, or a fill misses the LLC.
func (e *ESP) runSlot(s *slot, depth int, b *float64) (preExecResult, int) {
	if !s.started {
		s.insts = e.Src.SpecInsts(s.ev)
		s.started = true
		if !s.preExecuted {
			s.preExecuted = true
			e.Stats.EventsPreExecuted++
		}
		if e.Opt.BPMode == BPReplicate {
			var r *branch.Predictor
			if n := len(e.bpPool); n > 0 {
				r = e.bpPool[n-1]
				e.bpPool = e.bpPool[:n-1]
			} else {
				r = new(branch.Predictor)
			}
			*r = *e.BP // full overwrite: pooled state cannot leak through
			s.replica = r
		}
	}
	bp := e.BP
	switch e.Opt.BPMode {
	case BPSeparatePIR:
		// The ESP design replicates the branch "context" per mode: the
		// PIR (§4.3) and the small RAS; the prediction tables are shared,
		// with the loop predictor's in-flight iteration counters frozen
		// so the normal event's loops stay in sync.
		savedPIR, savedRAS := bp.PIR(), bp.SnapshotRAS()
		bp.SetPIR(s.pir)
		bp.RestoreRAS(s.ras)
		bp.LoopReadOnly = true
		defer func() {
			s.pir, s.ras = bp.PIR(), bp.SnapshotRAS()
			bp.SetPIR(savedPIR)
			bp.RestoreRAS(savedRAS)
			bp.LoopReadOnly = false
		}()
	case BPReplicate:
		bp = s.replica
	}
	ws := e.studyPair(s, depth)

	// The loop runs on locals (budget, position, instruction counter) and
	// writes them back at each exit, keeping the per-instruction body free
	// of memory round-trips through s, e.Stats, and the budget pointer.
	var (
		bud      = *b
		baseCPI  = e.Opt.BaseCPI
		insts    = s.insts
		pos      = s.pos
		preInsts int64
	)
	for bud > 0 {
		if pos >= len(insts) {
			s.pos, *b = pos, bud
			e.Stats.PreExecInsts += preInsts
			return preExecEnd, 0
		}
		in := &insts[pos]
		bud -= baseCPI

		// Instruction fetch through the I-cachelet.
		if l := trace.Line(in.PC); !s.haveLine || l != s.fetchLine {
			s.haveLine, s.fetchLine = true, l
			if ws != nil {
				ws.i.Touch(in.PC)
			}
			if res, lat := e.fetchPre(s, in.PC, int32(pos), &bud); res == preExecLLC {
				s.pos, *b = pos, bud
				e.Stats.PreExecInsts += preInsts
				return preExecLLC, lat
			}
		}

		switch in.Kind {
		case trace.Branch:
			pred := bp.PredictUpdate(in)
			miss := branch.Mispredicted(pred, *in)
			if branch.Misfetched(pred, *in) {
				bud -= misfetchCost
			}
			if miss {
				bud -= float64(e.Opt.MispredictPenalty)
				if !e.Opt.Naive && !s.poisoned {
					if s.blist.add(BranchRec{
						PC: in.PC, Target: in.Addr, Count: int32(pos),
						Taken: in.Taken, Indirect: in.Indirect,
					}) {
						e.Stats.RecB++
					} else {
						e.Stats.ListFull++
					}
				}
			}
			if in.Taken {
				s.haveLine = false
			}

		case trace.Load, trace.Store:
			if ws != nil {
				ws.d.Touch(in.Addr)
			}
			if res, lat := e.accessPre(s, in, int32(pos), &bud); res == preExecLLC {
				s.pos, *b = pos, bud
				e.Stats.PreExecInsts += preInsts
				return preExecLLC, lat
			}
		}
		pos++
		preInsts++
	}
	s.pos, *b = pos, bud
	e.Stats.PreExecInsts += preInsts
	return preExecBudget, 0
}

// fetchPre services a pre-execution instruction fetch: through the
// I-cachelet normally, or straight into the shared hierarchy in the naive
// design. On an LLC miss the line is installed before returning, so the
// re-entrant resume proceeds past it.
func (e *ESP) fetchPre(s *slot, pc uint64, pos int32, b *float64) (preExecResult, int) {
	if e.Opt.Naive {
		level, lat := e.Hier.FetchI(pc)
		if level == mem.LevelMem {
			return preExecLLC, lat
		}
		*b -= float64(lat)
		return preExecBudget, 0
	}
	if s.icl.Access(pc, false) {
		return preExecBudget, 0
	}
	lat, llc := e.Hier.FillLatency(pc)
	e.Stats.CacheletFills++
	e.record(s, &s.ilist, trace.Line(pc), pos)
	if llc {
		e.Stats.LLCFills++
		return preExecLLC, lat
	}
	*b -= float64(lat)
	return preExecBudget, 0
}

// accessPre services a pre-execution data access through the D-cachelet
// (stores stay local to it: no write-back, no coherence, §3.4, §4.4).
func (e *ESP) accessPre(s *slot, in *trace.Inst, pos int32, b *float64) (preExecResult, int) {
	write := in.Kind == trace.Store
	if e.Opt.Naive {
		level, lat := e.Hier.AccessD(in.Addr, write)
		if level == mem.LevelMem {
			return preExecLLC, lat
		}
		if level == mem.LevelL2 {
			*b -= float64(lat)
		}
		return preExecBudget, 0
	}
	dirtyBefore := s.dcl.Stats.DirtyEvictions
	if s.dcl.Access(in.Addr, write) {
		return preExecBudget, 0
	}
	if s.dcl.Stats.DirtyEvictions > dirtyBefore {
		e.dirtyHazard(s)
	}
	lat, llc := e.Hier.FillLatency(in.Addr)
	e.Stats.CacheletFills++
	e.record(s, &s.dlist, trace.Line(in.Addr), pos)
	if llc {
		e.Stats.LLCFills++
		return preExecLLC, lat
	}
	*b -= float64(lat)
	return preExecBudget, 0
}

// record appends an access to a prediction list unless the design has no
// lists (naive) or the pre-execution has been poisoned by a lost dirty
// line — poisoned records target perturbed addresses, modelling the
// wrong-path hints of §4.4.
func (e *ESP) record(s *slot, l *accessList, line uint64, count int32) {
	if e.Opt.Naive {
		return
	}
	if s.poisoned {
		line ^= 1 << 18 // wrong-path hint: prefetches will be useless
	}
	if l.add(line, count) {
		if l == &s.ilist {
			e.Stats.RecI++
		} else {
			e.Stats.RecD++
		}
	} else {
		e.Stats.ListFull++
	}
}

// dirtyHazard accounts a dirty D-cachelet eviction: the lost store values
// may steer the rest of this pre-execution down a wrong path (§4.4).
func (e *ESP) dirtyHazard(s *slot) {
	e.Stats.DirtyHazards++
	s.hazards++
	if p := e.Opt.DirtyHazardPeriod; p > 0 && s.hazards%p == 0 && !s.poisoned {
		s.poisoned = true
		e.Stats.Poisonings++
	}
}

// installReplica copies a warmed replicated predictor into the live one,
// preserving the live PIR and RAS (Figure 12's "separate context and
// tables" design point).
func (e *ESP) installReplica(r *branch.Predictor) {
	pir := e.BP.PIR()
	ras := e.BP.SnapshotRAS()
	stats := e.BP.Stats
	*e.BP = *r
	e.BP.SetPIR(pir)
	e.BP.RestoreRAS(ras)
	e.BP.Stats = stats
}

func (e *ESP) studyPair(s *slot, depth int) *wsPair {
	if e.Study == nil {
		return nil
	}
	for len(s.ws) <= depth {
		s.ws = append(s.ws, nil)
	}
	p := s.ws[depth]
	if p == nil {
		p = &wsPair{i: mem.NewWorkingSet(), d: mem.NewWorkingSet()}
		s.ws[depth] = p
	}
	return p
}

// finishStudy folds a slot's per-mode reuse profiles into the study.
// Per-depth samples land in independent per-depth slices, so the
// slice-ordered walk produces the same study as the old map iteration.
func (e *ESP) finishStudy(s *slot) {
	if e.Study == nil || len(s.ws) == 0 {
		return
	}
	for depth, p := range s.ws {
		if p != nil {
			e.Study.AddSample(depth, p.i, p.d)
		}
	}
	s.ws = clearPairs(s.ws)
}
