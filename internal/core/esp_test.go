package core

import (
	"testing"

	"espsim/internal/branch"
	"espsim/internal/cpu"
	"espsim/internal/mem"
	"espsim/internal/trace"
)

// fakeSource serves hand-built speculative streams keyed by event ID.
type fakeSource struct {
	streams map[int][]trace.Inst
	calls   int
}

func (f *fakeSource) SpecInsts(ev trace.Event) []trace.Inst {
	f.calls++
	return f.streams[ev.ID]
}

// mkStream builds a stream with one cold line every lineEvery insts and a
// cold load every loadEvery insts.
func mkStream(n int, base uint64, loadEvery int) []trace.Inst {
	out := make([]trace.Inst, n)
	pc := base
	for i := range out {
		out[i] = trace.Inst{PC: pc, Kind: trace.ALU}
		if loadEvery > 0 && i%loadEvery == loadEvery/2 {
			out[i].Kind = trace.Load
			out[i].Addr = 0x8_0000_0000 + base + uint64(i)*trace.LineBytes
		}
		pc += trace.InstBytes
	}
	return out
}

func testESP(t *testing.T, opt Options) (*ESP, *fakeSource, *mem.Hierarchy, *branch.Predictor) {
	t.Helper()
	h := mem.DefaultHierarchy()
	bp := branch.New()
	src := &fakeSource{streams: map[int][]trace.Inst{}}
	e, err := New(opt, h, bp, src)
	if err != nil {
		t.Fatal(err)
	}
	return e, src, h, bp
}

func ev(id, n int) trace.Event { return trace.Event{ID: id, Handler: id % 4, Len: n, Diverge: -1} }

func TestOptionsValidate(t *testing.T) {
	bad := DefaultOptions()
	bad.JumpDepth = 9
	if _, err := New(bad, mem.DefaultHierarchy(), branch.New(), &fakeSource{}); err == nil {
		t.Fatal("JumpDepth 9 accepted")
	}
	bad = DefaultOptions()
	bad.BaseCPI = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero BaseCPI accepted")
	}
}

func TestHardwareBudgetMatchesFigure8(t *testing.T) {
	rows := HardwareBudget(DefaultSizes())
	esp1 := BudgetTotal(rows, 0)
	esp2 := BudgetTotal(rows, 1)
	// Paper: 12.6 KB and 1.2 KB.
	if esp1 < 12500 || esp1 > 13100 {
		t.Fatalf("ESP-1 budget %d B, want ~12.6 KB", esp1)
	}
	if esp2 < 1150 || esp2 > 1350 {
		t.Fatalf("ESP-2 budget %d B, want ~1.2 KB", esp2)
	}
}

func TestPreExecutionRecordsFills(t *testing.T) {
	e, src, _, _ := testESP(t, DefaultOptions())
	src.streams[1] = mkStream(400, 0x10000, 20)
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 400)})
	if !e.OnStall(cpu.StallD, 0, 2000) {
		t.Fatal("stall not used despite a pending event")
	}
	if e.Stats.PreExecInsts == 0 || e.Stats.CacheletFills == 0 {
		t.Fatalf("nothing pre-executed: %+v", e.Stats)
	}
	if e.Stats.RecI == 0 || e.Stats.RecD == 0 {
		t.Fatalf("no records gathered: %+v", e.Stats)
	}
}

func TestNoPendingNoJump(t *testing.T) {
	e, _, _, _ := testESP(t, DefaultOptions())
	e.EventStart(ev(0, 100), nil, nil)
	if e.OnStall(cpu.StallD, 0, 1000) {
		t.Fatal("jumped ahead with an empty queue")
	}
}

func TestReentrantPreExecution(t *testing.T) {
	e, src, _, _ := testESP(t, DefaultOptions())
	src.streams[1] = mkStream(4000, 0x10000, 25)
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 4000)})
	e.OnStall(cpu.StallD, 0, 300)
	first := e.Stats.PreExecInsts
	if first == 0 {
		t.Fatal("first stall pre-executed nothing")
	}
	e.OnStall(cpu.StallD, 10, 300)
	if e.Stats.PreExecInsts <= first {
		t.Fatal("second stall did not resume pre-execution")
	}
	if src.calls != 1 {
		t.Fatalf("stream materialized %d times, want 1 (EU bit)", src.calls)
	}
}

func TestJumpEscalatesToESP2(t *testing.T) {
	e, src, _, _ := testESP(t, DefaultOptions())
	// Event 1 is one instruction long: ends immediately, forcing a jump
	// to event 2.
	src.streams[1] = mkStream(1, 0x10000, 0)
	src.streams[2] = mkStream(400, 0x20000, 20)
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 1), ev(2, 400)})
	e.OnStall(cpu.StallD, 0, 2000)
	if e.Stats.ModeEntries[1] == 0 {
		t.Fatal("never entered ESP-2")
	}
}

func TestConsumptionIssuesPrefetches(t *testing.T) {
	e, src, h, _ := testESP(t, DefaultOptions())
	stream := mkStream(600, 0x10000, 30)
	src.streams[1] = stream
	// Pre-execute event 1 deeply during event 0.
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 600)})
	for i := 0; i < 20; i++ {
		e.OnStall(cpu.StallD, i, 1000)
	}
	recs := e.Stats.RecI
	if recs == 0 {
		t.Fatal("no I records")
	}
	// Event 1 now runs normally.
	e.EventEnd(ev(0, 100))
	e.EventStart(ev(1, 600), stream, []trace.Event{ev(2, 600)})
	for i := 0; i < 600; i++ {
		e.OnInst(i)
	}
	if e.Stats.PrefetchI == 0 || e.Stats.PrefetchD == 0 {
		t.Fatalf("no prefetches issued: %+v", e.Stats)
	}
	// The prefetched lines are exactly the recorded ones: they must be
	// resident now.
	if !h.L1I.Probe(0x10000) {
		t.Fatal("first code line of the pre-executed event not prefetched")
	}
	if e.Stats.EventsConsumed != 1 {
		t.Fatalf("EventsConsumed = %d", e.Stats.EventsConsumed)
	}
}

func TestPrefetchLeadRespected(t *testing.T) {
	e, src, h, _ := testESP(t, DefaultOptions())
	stream := mkStream(2000, 0x10000, 0)
	src.streams[1] = stream
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 2000)})
	for i := 0; i < 30; i++ {
		e.OnStall(cpu.StallD, i, 1000)
	}
	e.EventEnd(ev(0, 100))
	e.EventStart(ev(1, 2000), stream, nil)
	// Immediately after event start, only entries within the pre-event
	// window + lookahead should have been prefetched, not the deep tail.
	deepLine := trace.Line(stream[1900].PC)
	if h.L1I.Probe(deepLine) {
		t.Fatal("deep-tail line prefetched too early (ignores the 190-inst lookahead)")
	}
	e.OnInst(1900 - e.Opt.PrefetchLead + 1)
	if !h.L1I.Probe(deepLine) {
		t.Fatal("lookahead reached the entry but no prefetch was issued")
	}
}

func TestCorrectBranchMatchesRecordedMispredicts(t *testing.T) {
	opt := DefaultOptions()
	e, src, h, _ := testESP(t, opt)
	// A stream with an unpredictable branch pattern at a fixed PC.
	var stream []trace.Inst
	pc := uint64(0x10000)
	for i := 0; i < 300; i++ {
		if i%10 == 5 {
			taken := (i/10)%2 == 0
			stream = append(stream, trace.Inst{PC: pc, Kind: trace.Branch, Taken: taken, Addr: pc + 4})
		} else {
			stream = append(stream, trace.Inst{PC: pc, Kind: trace.ALU})
		}
		pc += 4
	}
	src.streams[1] = stream
	// Warm code so pre-execution runs deep.
	for _, in := range stream {
		h.L2.Install(in.PC, false)
	}
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, len(stream))})
	for i := 0; i < 10; i++ {
		e.OnStall(cpu.StallD, i, 2000)
	}
	if e.Stats.RecB == 0 {
		t.Fatal("no branch mispredictions recorded during pre-execution")
	}
	e.EventEnd(ev(0, 100))
	e.EventStart(ev(1, len(stream)), stream, nil)
	corrected := 0
	for i, in := range stream {
		e.OnInst(i)
		if in.Kind == trace.Branch && e.CorrectBranch(i, in) {
			corrected++
		}
	}
	if corrected == 0 {
		t.Fatal("B-list corrections never fired")
	}
	if int64(corrected) != e.Stats.Corrections {
		t.Fatalf("corrections miscounted: %d vs %d", corrected, e.Stats.Corrections)
	}
}

func TestCorrectBranchRejectsUnrecorded(t *testing.T) {
	e, _, _, _ := testESP(t, DefaultOptions())
	e.EventStart(ev(0, 100), nil, nil)
	if e.CorrectBranch(5, trace.Inst{PC: 0x1234, Kind: trace.Branch}) {
		t.Fatal("corrected a branch with no records at all")
	}
}

func TestDivergedRecordsDoNotMatch(t *testing.T) {
	e, src, h, _ := testESP(t, DefaultOptions())
	// Speculative stream differs from the normal one entirely (models a
	// dependent event: Diverge=0).
	spec := mkStream(300, 0x50000, 20)
	normal := mkStream(300, 0x90000, 20)
	src.streams[1] = spec
	for _, in := range spec {
		h.L2.Install(in.PC, false)
	}
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 300)})
	for i := 0; i < 10; i++ {
		e.OnStall(cpu.StallD, i, 2000)
	}
	e.EventEnd(ev(0, 100))
	e.EventStart(ev(1, 300), normal, nil)
	for i, in := range normal {
		e.OnInst(i)
		if in.Kind == trace.Branch && e.CorrectBranch(i, in) {
			t.Fatal("corrected a branch from a diverged pre-execution")
		}
	}
	// Prefetches were issued, but for the wrong lines.
	if h.L1I.Probe(0x90000) {
		t.Fatal("normal path line cannot have been prefetched from the diverged stream")
	}
}

func TestSlotMismatchDiscardsRecords(t *testing.T) {
	e, src, _, _ := testESP(t, DefaultOptions())
	src.streams[1] = mkStream(300, 0x10000, 20)
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 300)})
	e.OnStall(cpu.StallD, 0, 2000)
	e.EventEnd(ev(0, 100))
	// A different event than predicted arrives (the §4.5 case).
	e.EventStart(ev(7, 300), mkStream(300, 0x70000, 0), nil)
	if e.cons != nil {
		t.Fatal("records consumed despite queue mispredict")
	}
	if e.Stats.SlotMismatches == 0 {
		t.Fatal("mismatch not counted")
	}
}

func TestCacheletIsolation(t *testing.T) {
	e, src, h, _ := testESP(t, DefaultOptions())
	// Pre-executed stores go to the D-cachelet only.
	stream := []trace.Inst{
		{PC: 0x10000, Kind: trace.Store, Addr: 0x8_0000_1000},
		{PC: 0x10004, Kind: trace.ALU},
	}
	src.streams[1] = stream
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 2)})
	e.OnStall(cpu.StallD, 0, 1000)
	if h.L1D.Probe(0x8_0000_1000) {
		t.Fatal("pre-executed store leaked into L1D")
	}
	if h.L2.Probe(0x8_0000_1000) {
		t.Fatal("pre-executed store leaked into L2")
	}
}

func TestNaiveModePollutesSharedCaches(t *testing.T) {
	opt := DefaultOptions()
	opt.Naive = true
	opt.UseI, opt.UseD, opt.UseB = false, false, false
	opt.BPMode = BPShared
	e, src, h, _ := testESP(t, opt)
	stream := mkStream(200, 0x30000, 10)
	src.streams[1] = stream
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 200)})
	e.OnStall(cpu.StallD, 0, 3000)
	if e.Stats.PreExecInsts == 0 {
		t.Fatal("naive mode did not pre-execute")
	}
	if !h.L1I.Probe(0x30000) {
		t.Fatal("naive mode should fetch straight into L1I")
	}
	if e.Stats.RecI != 0 {
		t.Fatal("naive mode has no lists")
	}
}

func TestPromotionKeepsRecords(t *testing.T) {
	e, src, h, _ := testESP(t, DefaultOptions())
	src.streams[2] = mkStream(300, 0x20000, 20)
	for _, in := range src.streams[2] {
		h.L2.Install(in.PC, false)
	}
	// Event 2 is pre-executed while it is second in the queue (ESP-2).
	src.streams[1] = mkStream(1, 0x10000, 0) // tiny: forces escalation
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 1), ev(2, 300)})
	e.OnStall(cpu.StallD, 0, 3000)
	if e.Stats.ModeEntries[1] == 0 {
		t.Fatal("test setup: ESP-2 never entered")
	}
	recs := e.Stats.RecI
	// Event 1 runs (event 2 promotes to ESP-1), then event 2 runs.
	e.EventEnd(ev(0, 100))
	e.EventStart(ev(1, 1), src.streams[1], []trace.Event{ev(2, 300)})
	e.EventEnd(ev(1, 1))
	e.EventStart(ev(2, 300), src.streams[2], nil)
	for i := 0; i < 300; i++ {
		e.OnInst(i)
	}
	if recs == 0 || e.Stats.PrefetchI == 0 {
		t.Fatalf("records gathered in ESP-2 were not consumed after promotion: recs=%d prefI=%d",
			recs, e.Stats.PrefetchI)
	}
	// Both event 1 (fully pre-executed, trivially) and event 2 consumed.
	if e.Stats.EventsConsumed != 2 {
		t.Fatalf("EventsConsumed = %d", e.Stats.EventsConsumed)
	}
}

func TestListsFullStopsJumping(t *testing.T) {
	opt := DefaultOptions()
	// Minuscule lists: fill immediately.
	opt.Sizes.IListBytes = [2]int{2, 2}
	opt.Sizes.DListBytes = [2]int{2, 2}
	opt.Sizes.BListDirBytes = [2]int{2, 2}
	e, src, h, bp := testESP(t, opt)
	_ = bp
	var stream []trace.Inst
	pc := uint64(0x10000)
	for i := 0; i < 2000; i++ {
		in := trace.Inst{PC: pc, Kind: trace.ALU}
		switch i % 9 {
		case 3:
			in.Kind = trace.Load
			in.Addr = 0x8_0000_0000 + uint64(i)*64
		case 6:
			in = trace.Inst{PC: pc, Kind: trace.Branch, Taken: i%2 == 0, Addr: pc + 4}
		}
		stream = append(stream, in)
		pc += 4
	}
	src.streams[1] = stream
	for _, in := range stream {
		h.L2.Install(in.PC, false)
	}
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 2000)})
	for i := 0; i < 50; i++ {
		e.OnStall(cpu.StallD, i, 500)
	}
	used := e.Stats.PreExecInsts
	before := e.Stats.ModeEntries[0]
	// Further stalls must be declined: everything is full.
	if e.OnStall(cpu.StallD, 60, 500) {
		t.Fatal("stall used although all lists are full")
	}
	if e.Stats.ModeEntries[0] != before || e.Stats.PreExecInsts != used {
		t.Fatal("pre-execution continued with full lists")
	}
}

func TestSeparatePIRRestoresNormalContext(t *testing.T) {
	e, src, h, bp := testESP(t, DefaultOptions())
	var stream []trace.Inst
	pc := uint64(0x10000)
	for i := 0; i < 200; i++ {
		in := trace.Inst{PC: pc, Kind: trace.Branch, Taken: i%2 == 0, Addr: pc + 8}
		stream = append(stream, in)
		pc = in.NextPC()
	}
	src.streams[1] = stream
	for _, in := range stream {
		h.L2.Install(in.PC, false)
	}
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 200)})
	bp.SetPIR(0x1A2B)
	ras := bp.SnapshotRAS()
	e.OnStall(cpu.StallD, 0, 2000)
	if bp.PIR() != 0x1A2B {
		t.Fatalf("normal PIR clobbered: %#x", bp.PIR())
	}
	if bp.SnapshotRAS() != ras {
		t.Fatal("normal RAS clobbered")
	}
	if bp.LoopReadOnly {
		t.Fatal("loop predictor left frozen after pre-execution")
	}
}

func TestReplicateModeInstallsWarmedTables(t *testing.T) {
	opt := DefaultOptions()
	opt.BPMode = BPReplicate
	opt.UseB = false
	e, src, h, bp := testESP(t, opt)
	// A perfectly biased branch at one PC, repeated: the replica learns it.
	var stream []trace.Inst
	for i := 0; i < 64; i++ {
		stream = append(stream, trace.Inst{PC: 0x10000, Kind: trace.Branch, Taken: true, Addr: 0x10000})
	}
	src.streams[1] = stream
	h.L2.Install(0x10000, false)
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 64)})
	e.OnStall(cpu.StallD, 0, 5000)
	if e.Stats.PreExecInsts == 0 {
		t.Fatal("nothing pre-executed")
	}
	e.EventEnd(ev(0, 100))
	e.EventStart(ev(1, 64), stream, nil)
	pred := bp.Predict(stream[0])
	if !pred.Taken || pred.Target != 0x10000 {
		t.Fatalf("replica training not installed: %+v", pred)
	}
}

func TestDirtyEvictionPoisoning(t *testing.T) {
	opt := DefaultOptions()
	opt.DirtyHazardPeriod = 1 // poison on the first dirty eviction
	e, src, h, _ := testESP(t, opt)
	// Stores to many distinct lines overflow the D-cachelet with dirty
	// lines.
	var stream []trace.Inst
	pc := uint64(0x10000)
	for i := 0; i < 400; i++ {
		stream = append(stream, trace.Inst{PC: pc, Kind: trace.Store, Addr: 0x8_0000_0000 + uint64(i)*64})
		pc += 4
	}
	src.streams[1] = stream
	for _, in := range stream {
		h.L2.Install(in.PC, false)
		h.L2.Install(in.Addr, false)
	}
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 400)})
	for i := 0; i < 20; i++ {
		e.OnStall(cpu.StallD, i, 2000)
	}
	if e.Stats.DirtyHazards == 0 {
		t.Fatal("no dirty evictions despite store overflow")
	}
	if e.Stats.Poisonings == 0 {
		t.Fatal("poisoning never triggered with period 1")
	}
}

func TestIdealModeUnbounded(t *testing.T) {
	opt := DefaultOptions()
	opt.Ideal = true
	e, src, h, _ := testESP(t, opt)
	stream := mkStream(3000, 0x10000, 15)
	src.streams[1] = stream
	for _, in := range stream {
		h.L2.Install(in.PC, false)
	}
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 3000)})
	for i := 0; i < 100; i++ {
		e.OnStall(cpu.StallD, i, 2000)
	}
	if e.Stats.ListFull != 0 {
		t.Fatalf("ideal mode dropped %d records", e.Stats.ListFull)
	}
}

func TestWorkingSetStudyCollects(t *testing.T) {
	opt := DefaultOptions()
	opt.MeasureWorkingSets = true
	e, src, h, _ := testESP(t, opt)
	stream := mkStream(300, 0x10000, 20)
	src.streams[1] = stream
	for _, in := range stream {
		h.L2.Install(in.PC, false)
	}
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 300)})
	e.OnStall(cpu.StallD, 0, 3000)
	e.EventEnd(ev(0, 100))
	e.EventStart(ev(1, 300), stream, nil) // consumes + finalizes study
	reports := e.Study.ReportI()
	if len(reports) != opt.JumpDepth {
		t.Fatalf("%d mode reports", len(reports))
	}
	if reports[0].Events == 0 || reports[0].MaxLines == 0 {
		t.Fatalf("ESP-1 study empty: %+v", reports[0])
	}
}

func TestWorkingSetStudyMerge(t *testing.T) {
	a, b := NewWorkingSetStudy(2), NewWorkingSetStudy(2)
	ws := mem.NewWorkingSet()
	ws.Touch(0)
	ws.Touch(64)
	a.AddSample(0, ws, ws)
	b.AddSample(0, ws, ws)
	b.AddSample(1, ws, ws)
	a.Merge(b)
	a.Merge(nil)
	if a.ReportI()[0].Events != 2 || a.ReportI()[1].Events != 1 {
		t.Fatalf("merge wrong: %+v", a.ReportI())
	}
}

func TestStudyPercentileHelpers(t *testing.T) {
	if got := percentileInt([]int{5, 1, 9, 3}, 0.5); got != 3 {
		t.Fatalf("percentileInt = %d", got)
	}
	if got := percentileInt(nil, 0.5); got != 0 {
		t.Fatalf("percentileInt(nil) = %d", got)
	}
	if got := maxOf([]int{2, 9, 4}); got != 9 {
		t.Fatalf("maxOf = %d", got)
	}
}

func TestBPModeString(t *testing.T) {
	for m, want := range map[BPMode]string{
		BPShared: "shared", BPSeparatePIR: "separate-pir", BPReplicate: "replicated-tables", BPMode(9): "unknown",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func TestRecordCountsMonotonic(t *testing.T) {
	// List entries are timestamped by instruction count; consumption
	// relies on them being non-decreasing.
	e, src, h, _ := testESP(t, DefaultOptions())
	stream := mkStream(1500, 0x10000, 12)
	src.streams[1] = stream
	for _, in := range stream {
		h.L2.Install(in.PC, false)
	}
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 1500)})
	for i := 0; i < 40; i++ {
		e.OnStall(cpu.StallD, i, 800)
	}
	s := e.slots[0]
	check := func(name string, recs []AccessRec) {
		for i := 1; i < len(recs); i++ {
			if recs[i].Count < recs[i-1].Count {
				t.Fatalf("%s counts regress at %d: %d < %d", name, i, recs[i].Count, recs[i-1].Count)
			}
		}
	}
	check("ilist", s.ilist.recs)
	check("dlist", s.dlist.recs)
	for i := 1; i < len(s.blist.recs); i++ {
		if s.blist.recs[i].Count < s.blist.recs[i-1].Count {
			t.Fatal("blist counts regress")
		}
	}
}

func TestMinWindowDeclined(t *testing.T) {
	opt := DefaultOptions()
	e, src, _, _ := testESP(t, opt)
	src.streams[1] = mkStream(400, 0x10000, 20)
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 400)})
	if e.OnStall(cpu.StallD, 0, opt.MinWindow-1) {
		t.Fatal("window below MinWindow must be declined")
	}
	if e.Stats.PreExecInsts != 0 {
		t.Fatal("declined window still pre-executed")
	}
}

func TestSharedQueueReservationFreesWithConsumption(t *testing.T) {
	// While the current event's records are unconsumed they occupy the
	// shared circular queue; consumption must free capacity for the next
	// event's recording (§4.2).
	e, src, h, _ := testESP(t, DefaultOptions())
	s1 := mkStream(2000, 0x10000, 10)
	s2 := mkStream(2000, 0x90000, 10)
	src.streams[1] = s1
	src.streams[2] = s2
	for _, in := range append(append([]trace.Inst{}, s1...), s2...) {
		h.L2.Install(in.PC, false)
	}
	e.EventStart(ev(0, 100), nil, []trace.Event{ev(1, 2000)})
	for i := 0; i < 60; i++ {
		e.OnStall(cpu.StallD, i, 800)
	}
	e.EventEnd(ev(0, 100))
	// Event 1 executes; event 2 is now in ESP-1, recording into the
	// queue event 1 is draining.
	e.EventStart(ev(1, 2000), s1, []trace.Event{ev(2, 2000)})
	reservedAtStart := e.slots[0].ilist.reserved
	for i := 0; i < 1900; i++ {
		e.OnInst(i)
	}
	// Reservations are recomputed lazily on entry to each pre-execution
	// window (the only place they are read); mirror that entry here.
	e.updateReservations()
	reservedLate := e.slots[0].ilist.reserved
	if reservedAtStart == 0 {
		t.Skip("event 1 recorded nothing; reservation path not exercised")
	}
	if reservedLate >= reservedAtStart {
		t.Fatalf("reservation did not shrink with consumption: %d -> %d",
			reservedAtStart, reservedLate)
	}
}
