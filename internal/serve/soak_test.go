package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"reflect"
	"sync"
	"testing"

	esp "espsim"
	"espsim/internal/workload"
)

// TestSoakMixedConfigs hammers one Server with interleaved requests for
// a mixed (app, config) population and asserts the defining property of
// a correct cache: every response is bit-identical to the sequential
// reference, independent of interleaving. Cross-request state leakage —
// one request's machine or workload bleeding into another's result —
// would show up as a deviation (and under -race, as a report).
// The engine-level half (cache-hit workload arenas are never mutated)
// is TestWorkloadImmutableUnderConcurrentReplay in internal/sim.
func TestSoakMixedConfigs(t *testing.T) {
	const maxEvents = 32
	apps := []string{"amazon", "bing", "pixlr"}
	configs := []string{"base", "NL+S", "Runahead+NL", "ESP+NL", "NaiveESP+NL"}

	// Sequential reference, through the plain single-cell path.
	type cellKey struct{ app, config string }
	want := make(map[cellKey]esp.Result)
	for _, app := range apps {
		prof, err := workload.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range configs {
			cfg, err := esp.ConfigByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg.MaxEvents = maxEvents
			res, err := esp.Run(prof, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want[cellKey{app, name}] = jsonRoundTrip(t, res)
		}
	}

	s := testServer(t, Options{Workers: 4, QueueDepth: 256, WorkloadCap: 8})
	const (
		goroutines   = 12
		perGoroutine = 10
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the grid in its own shuffled order, so
			// the server sees a different interleaving every run.
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			for i := 0; i < perGoroutine; i++ {
				key := cellKey{
					app:    apps[rng.Intn(len(apps))],
					config: configs[rng.Intn(len(configs))],
				}
				rec := post(t, s, "/run", RunRequest{App: key.app, Config: key.config, MaxEvents: maxEvents})
				if rec.Code != http.StatusOK {
					t.Errorf("goroutine %d: %s/%s: status %d, body %s", g, key.app, key.config, rec.Code, rec.Body.String())
					return
				}
				var resp RunResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Errorf("goroutine %d: %s/%s: decoding: %v", g, key.app, key.config, err)
					return
				}
				if !reflect.DeepEqual(resp.Result, want[key]) {
					t.Errorf("goroutine %d: %s/%s: result depends on interleaving", g, key.app, key.config)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// The cache served hot workloads throughout; one more sequential lap
	// confirms the soak left no residue behind.
	for key, w := range want {
		rec := post(t, s, "/run", RunRequest{App: key.app, Config: key.config, MaxEvents: maxEvents})
		var resp RunResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("post-soak %s/%s: %v", key.app, key.config, err)
		}
		if !reflect.DeepEqual(resp.Result, w) {
			t.Fatalf("post-soak %s/%s: cached workload or pooled machine was mutated by the soak", key.app, key.config)
		}
	}
	if got := s.met.CellErrors.Load(); got != 0 {
		t.Fatalf("%d cell errors during soak", got)
	}
}
