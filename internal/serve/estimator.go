package serve

import (
	"sync"
	"time"
)

// estimator predicts one cell's wall time from history, for
// deadline-aware admission: an exponentially weighted moving average
// per (app, config) cell, with an all-cells average as the fallback
// for cells never seen. It deliberately under-promises — an unknown
// cell estimates zero (never shed), so shedding only ever fires on
// evidence.
type estimator struct {
	mu     sync.Mutex
	perKey map[string]time.Duration
	global time.Duration
}

// ewmaAlpha is the smoothing factor: high enough to track a workload
// shift within a few cells, low enough that one slow outlier does not
// triple the estimate.
const ewmaAlpha = 0.3

func newEstimator() *estimator {
	return &estimator{perKey: make(map[string]time.Duration)}
}

// observe folds one completed cell's wall time into the averages.
func (e *estimator) observe(app, config string, wall time.Duration) {
	key := app + "/" + config
	e.mu.Lock()
	defer e.mu.Unlock()
	if prev, ok := e.perKey[key]; ok {
		e.perKey[key] = prev + time.Duration(ewmaAlpha*float64(wall-prev))
	} else {
		e.perKey[key] = wall
	}
	if e.global == 0 {
		e.global = wall
	} else {
		e.global += time.Duration(ewmaAlpha * float64(wall-e.global))
	}
}

// estimate predicts one cell's wall time; zero means no evidence (the
// caller must not shed on it).
func (e *estimator) estimate(app, config string) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if est, ok := e.perKey[app+"/"+config]; ok {
		return est
	}
	return e.global
}

// cannotFinish is the shed predicate: true when the deadline has
// already passed, or the evidence-backed estimate exceeds what is
// left. A zero deadline never sheds; a zero estimate only sheds
// already-expired work.
func (e *estimator) cannotFinish(app, config string, deadline, now time.Time) bool {
	if deadline.IsZero() {
		return false
	}
	rem := deadline.Sub(now)
	if rem <= 0 {
		return true
	}
	est := e.estimate(app, config)
	return est > 0 && est > rem
}
