package serve

// Drain semantics with work in flight: Drain must wait for running
// sweep cells (not abandon them), new admissions must bounce with 503
// the moment draining begins, and the journal a drained sweep leaves
// behind must be replayable by the next daemon.

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
	"time"

	"espsim/internal/sim"
)

func TestDrainWaitsForInflightSweep(t *testing.T) {
	dir := t.TempDir()
	golden := readGoldenCorpus(t)

	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	hook := func(pt sim.FaultPoint) error {
		if pt.Op == "run" {
			started <- struct{}{}
			<-gate
		}
		return nil
	}
	s := testServer(t, Options{Workers: 2, CheckpointDir: dir, FaultHook: hook})

	req := SweepRequest{
		Apps:      []string{"amazon", "bing"},
		Configs:   []string{"base", "ESP+NL"},
		SweepID:   "drain-test",
		MaxEvents: goldenMaxEvents,
	}
	sweepDone := make(chan SweepResponse, 1)
	go func() {
		rec := post(t, s, "/sweep", req)
		var resp SweepResponse
		if rec.Code == http.StatusOK {
			_ = json.Unmarshal(rec.Body.Bytes(), &resp)
		}
		sweepDone <- resp
	}()
	<-started // a cell is wedged inside the engine

	// Draining begins mid-sweep: new admissions bounce, liveness stays
	// green, readiness goes red, the sweep keeps running.
	s.BeginDrain()
	if rec := post(t, s, "/run", RunRequest{App: "cnn", Config: "base", MaxEvents: 8}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("new /run during drain: status %d, want 503", rec.Code)
	}
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz during drain: status %d, want 200", rec.Code)
	}
	if rec := get(t, s, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: status %d, want 503", rec.Code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(ctx) }()
	select {
	case err := <-drainDone:
		t.Fatalf("Drain returned (%v) while a sweep cell is still running", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Release the engine: the sweep finishes all four cells, and only
	// then does Drain return.
	close(gate)
	resp := <-sweepDone
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if len(resp.Cells) != 4 {
		t.Fatalf("in-flight sweep returned %d cells, want 4", len(resp.Cells))
	}
	for _, cell := range resp.Cells {
		key := cell.App + "/" + cell.Config
		if cell.Result == nil {
			t.Fatalf("cell %s: drained away instead of finishing: %+v", key, cell)
		}
		if !reflect.DeepEqual(*cell.Result, golden[key]) {
			t.Errorf("cell %s: result deviates from golden corpus", key)
		}
	}
	assertDrained(t, s)

	// The journal the drained daemon left is complete and replayable:
	// a successor resumes every cell without simulating anything.
	s2 := testServer(t, Options{Workers: 2, CheckpointDir: dir})
	rec := post(t, s2, "/sweep", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("resume sweep: status %d: %s", rec.Code, rec.Body.String())
	}
	var resumeResp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resumeResp); err != nil {
		t.Fatal(err)
	}
	for _, cell := range resumeResp.Cells {
		key := cell.App + "/" + cell.Config
		if !cell.Resumed || cell.Result == nil || !reflect.DeepEqual(*cell.Result, golden[key]) {
			t.Errorf("cell %s: not replayed from the drained daemon's journal: %+v", key, cell)
		}
	}
}
