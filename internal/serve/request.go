// Package serve implements espd, the simulation service: an HTTP API
// that runs (application, configuration) cells — the paper's Fig 9/10
// grid shape — on a bounded pool of sim.Runner workers with an LRU
// workload cache, same-workload request batching, and backpressure.
package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	esp "espsim"
	"espsim/internal/eventq"
	"espsim/internal/sim"
	"espsim/internal/tenantq"
	"espsim/internal/trace"
	"espsim/internal/workload"
)

// RunRequest is the body of POST /run: one simulation cell. Exactly one
// of App (a preset application name) or TraceB64 (a base64-encoded ESPT
// trace file) selects the workload; Config names a preset machine
// configuration (see esp.ConfigNames).
type RunRequest struct {
	App      string `json:"app,omitempty"`
	TraceB64 string `json:"trace_b64,omitempty"`
	Config   string `json:"config"`

	// Scale multiplies the preset's event count (0: 1.0). Ignored for
	// inline traces.
	Scale float64 `json:"scale,omitempty"`
	// MaxEvents truncates the session when positive; MaxPending widens
	// the queue view past the default two entries.
	MaxEvents  int `json:"max_events,omitempty"`
	MaxPending int `json:"max_pending,omitempty"`
	// TimeoutMs bounds the cell's simulation time (0: server default).
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Sched selects the event-queue dispatch policy ("fifo", "prio",
	// "edf", "slack"; empty: FIFO). Equivalent to an "@policy" suffix
	// on Config; setting both to different policies is an error.
	Sched string `json:"sched,omitempty"`
	// Tenant names the tenant this request is accounted and fair-queued
	// under (also settable via the X-ESP-Tenant header; both set and
	// disagreeing is a 400). Empty means the "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// DeadlineMs is a client deadline relative to arrival: the request
	// is worthless after arrival+DeadlineMs, so work that provably
	// cannot finish by then is shed with 504 instead of simulated.
	// Zero means no deadline; negative means already expired (useful
	// for coordinators propagating an exhausted budget).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// SweepRequest is the body of POST /sweep: a grid of cells. Apps empty
// means the whole seven-application suite. Cells are batched by
// workload: every configuration of one application runs back to back on
// one worker, sharing the materialized arena and pooled machines.
//
// SweepID (optional) makes the sweep resumable when the server has a
// checkpoint directory: completed cells are journaled as they finish,
// and a later sweep with the same ID — after a daemon crash or a client
// retry — replays them from disk instead of re-simulating.
type SweepRequest struct {
	Apps    []string `json:"apps,omitempty"`
	Configs []string `json:"configs"`
	SweepID string   `json:"sweep_id,omitempty"`

	// Shard labels this sweep as one shard of a coordinator-sharded
	// grid (espcoord sets it to the shard's application). It never
	// shapes results — it tags logs and metrics and scopes the journal
	// conflict check, so one sweep_id cannot be reused across shards.
	Shard string `json:"shard,omitempty"`

	Scale      float64 `json:"scale,omitempty"`
	MaxEvents  int     `json:"max_events,omitempty"`
	MaxPending int     `json:"max_pending,omitempty"`
	TimeoutMs  int     `json:"timeout_ms,omitempty"`
	// Sched applies one dispatch policy to every cell of the grid;
	// per-config "@policy" suffixes in Configs override it per cell
	// only when they agree (disagreement is a 400).
	Sched string `json:"sched,omitempty"`
	// Tenant and DeadlineMs follow RunRequest semantics: fair-queueing
	// identity and a relative deadline past which cells are shed.
	Tenant     string `json:"tenant,omitempty"`
	DeadlineMs int64  `json:"deadline_ms,omitempty"`
}

// RunResponse is the body of a successful POST /run.
type RunResponse struct {
	Result esp.Result `json:"result"`
	WallMs float64    `json:"wall_ms"`
}

// SweepCell is one cell of a SweepResponse: a result or a structured
// per-cell error (one failed cell does not fail the sweep — panic
// isolation, retries, and timeouts degrade per cell). The sweep is
// never all-or-nothing: every requested cell comes back with exactly
// one of Result, Error, or Skipped.
type SweepCell struct {
	App    string      `json:"app"`
	Config string      `json:"config"`
	Result *esp.Result `json:"result,omitempty"`
	// Error is the final attempt's message; ErrorKind classifies it
	// ("timeout", "panic", "build", "injected", "canceled", "config",
	// "error") so clients can branch without parsing prose.
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
	// Attempts counts how many times the cell ran (0 when skipped or
	// resumed).
	Attempts int `json:"attempts,omitempty"`
	// Skipped is "breaker_open" when the cell's circuit breaker
	// quarantined it: the cell was not attempted and did not burn a
	// retry budget.
	Skipped string `json:"skipped,omitempty"`
	// Resumed is true when Result was replayed from the sweep's
	// checkpoint journal instead of simulated.
	Resumed bool `json:"resumed,omitempty"`
}

// SweepResponse is the body of a successful POST /sweep, cells in
// app-major request order.
type SweepResponse struct {
	Cells  []SweepCell `json:"cells"`
	WallMs float64     `json:"wall_ms"`
}

// maxScale bounds the event-count multiplier a request may ask for: the
// largest session at scale 64 is still minutes, not days.
const maxScale = 64

// decodeStrict unmarshals JSON rejecting unknown fields and trailing
// garbage, so a typo'd field name is a 400, not a silently ignored knob.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}

// ParseRunRequest decodes and validates a POST /run body. Workload and
// configuration names are resolved here (so errors are 400s), but the
// inline trace — if any — is only syntax-checked later, under the
// server's limits, by resolve.
func ParseRunRequest(data []byte) (RunRequest, error) {
	var req RunRequest
	if err := decodeStrict(data, &req); err != nil {
		return RunRequest{}, fmt.Errorf("decoding run request: %w", err)
	}
	if err := req.validate(); err != nil {
		return RunRequest{}, err
	}
	return req, nil
}

func (req *RunRequest) validate() error {
	switch {
	case req.App == "" && req.TraceB64 == "":
		return fmt.Errorf("one of \"app\" or \"trace_b64\" is required (apps: %s)", strings.Join(appNames(), ", "))
	case req.App != "" && req.TraceB64 != "":
		return fmt.Errorf("\"app\" and \"trace_b64\" are mutually exclusive")
	case req.Config == "":
		return fmt.Errorf("\"config\" is required (one of: %s)", strings.Join(esp.ConfigNames(), ", "))
	case req.Scale < 0 || req.Scale > maxScale:
		return fmt.Errorf("\"scale\" must be in (0, %d], got %g", maxScale, req.Scale)
	case req.MaxEvents < 0:
		return fmt.Errorf("\"max_events\" must be non-negative, got %d", req.MaxEvents)
	case req.MaxPending < 0:
		return fmt.Errorf("\"max_pending\" must be non-negative, got %d", req.MaxPending)
	case req.TimeoutMs < 0:
		return fmt.Errorf("\"timeout_ms\" must be non-negative, got %d", req.TimeoutMs)
	}
	if req.App != "" {
		if _, err := workload.ByName(req.App); err != nil {
			return err
		}
	}
	if req.TraceB64 != "" && req.Scale != 0 && req.Scale != 1 {
		return fmt.Errorf("\"scale\" does not apply to an inline trace")
	}
	if err := validateID("tenant", req.Tenant); err != nil {
		return err
	}
	if err := validateDeadline(req.DeadlineMs); err != nil {
		return err
	}
	if _, err := cellConfig(req.Config, req.Sched, 0, 0); err != nil {
		return err
	}
	return nil
}

// maxDeadlineMs bounds a relative deadline to 24 hours: anything larger
// is a typo (and would overflow Duration math long before mattering).
const maxDeadlineMs = 24 * 60 * 60 * 1000

// validateDeadline bounds deadline_ms. Negative values are legal —
// "already expired" — but bounded too, so arrival+deadline stays inside
// Duration range.
func validateDeadline(ms int64) error {
	if ms > maxDeadlineMs || ms < -maxDeadlineMs {
		return fmt.Errorf("\"deadline_ms\" must be within ±%d (24h), got %d", int64(maxDeadlineMs), ms)
	}
	return nil
}

// ParseSweepRequest decodes and validates a POST /sweep body.
func ParseSweepRequest(data []byte) (SweepRequest, error) {
	var req SweepRequest
	if err := decodeStrict(data, &req); err != nil {
		return SweepRequest{}, fmt.Errorf("decoding sweep request: %w", err)
	}
	switch {
	case len(req.Configs) == 0:
		return SweepRequest{}, fmt.Errorf("\"configs\" is required (one or more of: %s)", strings.Join(esp.ConfigNames(), ", "))
	case req.Scale < 0 || req.Scale > maxScale:
		return SweepRequest{}, fmt.Errorf("\"scale\" must be in (0, %d], got %g", maxScale, req.Scale)
	case req.MaxEvents < 0:
		return SweepRequest{}, fmt.Errorf("\"max_events\" must be non-negative, got %d", req.MaxEvents)
	case req.MaxPending < 0:
		return SweepRequest{}, fmt.Errorf("\"max_pending\" must be non-negative, got %d", req.MaxPending)
	case req.TimeoutMs < 0:
		return SweepRequest{}, fmt.Errorf("\"timeout_ms\" must be non-negative, got %d", req.TimeoutMs)
	}
	if err := validateID("sweep_id", req.SweepID); err != nil {
		return SweepRequest{}, err
	}
	if err := validateID("shard", req.Shard); err != nil {
		return SweepRequest{}, err
	}
	if err := validateID("tenant", req.Tenant); err != nil {
		return SweepRequest{}, err
	}
	if err := validateDeadline(req.DeadlineMs); err != nil {
		return SweepRequest{}, err
	}
	for _, app := range req.Apps {
		if _, err := workload.ByName(app); err != nil {
			return SweepRequest{}, err
		}
	}
	for _, name := range req.Configs {
		if _, err := cellConfig(name, req.Sched, 0, 0); err != nil {
			return SweepRequest{}, err
		}
	}
	return req, nil
}

// validateID keeps sweep and shard IDs filename-safe: sweep IDs name
// the checkpoint journal on disk, so path separators, dots-only names,
// and unbounded lengths are rejected at the request boundary.
func validateID(field, id string) error {
	if id == "" {
		return nil
	}
	if len(id) > 64 {
		return fmt.Errorf("%q must be at most 64 characters, got %d", field, len(id))
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("%q may only contain [A-Za-z0-9._-], got %q", field, id)
		}
	}
	if strings.Trim(id, ".") == "" {
		return fmt.Errorf("%q must not be only dots", field)
	}
	return nil
}

// cellConfig materializes the machine configuration for one cell: the
// named preset (with any "@policy" scheduling suffix), the request's
// explicit scheduler (applied unless the name already pinned a
// different one), and the truncation and queue-view overrides.
func cellConfig(name, sched string, maxEvents, maxPending int) (esp.Config, error) {
	cfg, err := esp.ConfigByName(name)
	if err != nil {
		return esp.Config{}, err
	}
	if sched != "" {
		p, err := esp.SchedByName(sched)
		if err != nil {
			return esp.Config{}, err
		}
		switch {
		case cfg.Sched == p:
			// The name's suffix and the explicit field agree.
		case strings.Contains(name, "@"):
			// Any explicit @policy suffix — including @fifo — pins the
			// policy; a disagreeing "sched" field is a contradictory
			// request, not an override.
			return esp.Config{}, fmt.Errorf("config %q pins scheduler %q but \"sched\" asks for %q",
				name, cfg.Sched, p)
		default:
			cfg = esp.SchedConfig(cfg, p)
		}
	}
	if maxEvents > 0 {
		cfg.MaxEvents = maxEvents
	}
	if maxPending > 0 {
		cfg.MaxPending = maxPending
	}
	return cfg, nil
}

// scaledProfile resolves a preset application at the requested scale.
func scaledProfile(app string, scale float64) (workload.Profile, error) {
	prof, err := workload.ByName(app)
	if err != nil {
		return workload.Profile{}, err
	}
	if scale != 0 && scale != 1 {
		prof = prof.Scale(scale)
	}
	return prof, nil
}

// traceWorkload decodes an inline base64 ESPT trace under lim and
// materializes it under the requested dispatch policy (v2 traces carry
// per-event scheduling metadata). Inline traces bypass the LRU cache
// (they have no stable identity), but still share the pooled machines.
func traceWorkload(traceB64 string, maxEvents int, policy esp.SchedPolicy, lim trace.Limits) (*sim.Workload, error) {
	raw, err := base64.StdEncoding.DecodeString(traceB64)
	if err != nil {
		return nil, fmt.Errorf("decoding trace_b64: %w", err)
	}
	events, err := trace.ReadFileLimits(bytes.NewReader(raw), lim)
	if err != nil {
		return nil, fmt.Errorf("decoding inline trace: %w", err)
	}
	return sim.MaterializeSourceSched("trace", &eventq.TraceSource{Events: events}, maxEvents, policy)
}

// resolve turns one validated (app-or-trace, config) pair into the two
// planes a runner needs. Preset workloads go through the runner's LRU
// cache keyed by (profile, MaxEvents) — which subsumes (app, scale),
// since scale changes the profile value — so concurrent requests share
// one materialized arena.
func resolve(r *sim.Runner, req RunRequest, lim trace.Limits) (*sim.Workload, esp.Config, error) {
	cfg, err := cellConfig(req.Config, req.Sched, req.MaxEvents, req.MaxPending)
	if err != nil {
		return nil, esp.Config{}, err
	}
	if req.TraceB64 != "" {
		w, err := traceWorkload(req.TraceB64, cfg.MaxEvents, cfg.Sched, lim)
		return w, cfg, err
	}
	prof, err := scaledProfile(req.App, req.Scale)
	if err != nil {
		return nil, esp.Config{}, err
	}
	w, err := r.WorkloadSched(prof, cfg.MaxEvents, cfg.Sched)
	return w, cfg, err
}

// appNames lists the paper-suite applications. It doubles as the
// default /sweep grid, so the timed mobile-web profiles stay out of it;
// they are requested by name (workload.ByName accepts them).
func appNames() []string {
	ps := workload.Suite()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// timeoutOf resolves a per-request timeout against the server default.
func timeoutOf(ms int, def time.Duration) time.Duration {
	if ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return def
}

// tenantHeader is the transport-level tenant identity, for clients that
// cannot touch the body (proxies, coordinators re-dispatching opaque
// requests).
const tenantHeader = "X-ESP-Tenant"

// resolveTenant joins the body field and the header into one tenant
// name: either may set it, both only in agreement, and legacy clients
// that set neither land on the "default" tenant.
func resolveTenant(field, header string) (string, error) {
	if err := validateID("tenant", header); err != nil {
		return "", err
	}
	switch {
	case field != "" && header != "" && field != header:
		return "", fmt.Errorf("\"tenant\" %q and %s header %q disagree", field, tenantHeader, header)
	case field != "":
		return field, nil
	case header != "":
		return header, nil
	}
	return tenantq.DefaultTenant, nil
}

// deadlineOf anchors a relative deadline at the request's arrival.
// Zero DeadlineMs means none (zero time); negative is already expired.
func deadlineOf(ms int64, arrival time.Time) time.Time {
	if ms == 0 {
		return time.Time{}
	}
	return arrival.Add(time.Duration(ms) * time.Millisecond)
}
