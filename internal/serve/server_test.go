package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	esp "espsim"
	"espsim/internal/eventq"
	"espsim/internal/serve/metrics"
	"espsim/internal/trace"
	"espsim/internal/workload"
)

// quietLogger keeps request logs out of test output.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testServer(t *testing.T, opt Options) *Server {
	t.Helper()
	if opt.Logger == nil {
		opt.Logger = quietLogger()
	}
	return New(opt)
}

// post sends a JSON body and returns the recorded response.
func post(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, h, path, data)
}

func postRaw(t *testing.T, h http.Handler, path string, data []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// decodeResult unpacks a RunResponse body.
func decodeResult(t *testing.T, rec *httptest.ResponseRecorder) esp.Result {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding run response: %v", err)
	}
	return resp.Result
}

// jsonRoundTrip normalizes an in-memory Result through JSON so it is
// comparable with one decoded off the wire (both sides shortest-form
// float encoding; exact for float64).
func jsonRoundTrip(t *testing.T, res esp.Result) esp.Result {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var out esp.Result
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunMatchesDirect: the service path must be bit-identical to a
// direct esp.Run of the same cell.
func TestRunMatchesDirect(t *testing.T) {
	s := testServer(t, Options{Workers: 2})
	got := decodeResult(t, post(t, s, "/run", RunRequest{App: "amazon", Config: "base", MaxEvents: 32}))

	cfg := esp.BaselineConfig()
	cfg.MaxEvents = 32
	want, err := esp.Run(workload.Amazon(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want = jsonRoundTrip(t, want); !reflect.DeepEqual(got, want) {
		t.Fatalf("service result deviates from esp.Run:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunScheduled: the "sched" field selects a dispatch policy and
// the response matches a direct esp.Run of the @policy config,
// responsiveness stats included. The explicit field and an @policy
// name suffix must be interchangeable.
func TestRunScheduled(t *testing.T) {
	s := testServer(t, Options{Workers: 2})
	got := decodeResult(t, post(t, s, "/run", RunRequest{App: "mobileweb", Config: "base", Sched: "edf", MaxEvents: 32}))

	cfg := esp.SchedConfig(esp.BaselineConfig(), esp.SchedEDF)
	cfg.MaxEvents = 32
	want, err := esp.Run(workload.MobileWeb(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Sched == nil || want.Sched.Policy != "edf" {
		t.Fatalf("direct run carries no EDF stats: %+v", want.Sched)
	}
	if want = jsonRoundTrip(t, want); !reflect.DeepEqual(got, want) {
		t.Fatalf("scheduled service result deviates from esp.Run:\n got %+v\nwant %+v", got, want)
	}
	suffixed := decodeResult(t, post(t, s, "/run", RunRequest{App: "mobileweb", Config: "base@edf", MaxEvents: 32}))
	if !reflect.DeepEqual(suffixed, want) {
		t.Fatalf("@edf suffix deviates from the sched field")
	}
}

// TestRunScaledWorkload: scale shrinks the session the same way
// Profile.Scale does.
func TestRunScaledWorkload(t *testing.T) {
	s := testServer(t, Options{Workers: 1})
	got := decodeResult(t, post(t, s, "/run", RunRequest{App: "pixlr", Config: "NL", Scale: 0.25}))

	prof := workload.Pixlr().Scale(0.25)
	want, err := esp.Run(prof, esp.NLConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want = jsonRoundTrip(t, want); !reflect.DeepEqual(got, want) {
		t.Fatalf("scaled service result deviates from esp.Run")
	}
}

// TestRunInlineTrace: a base64 ESPT trace replays identically to
// esp.RunSource over the same events.
func TestRunInlineTrace(t *testing.T) {
	prof := workload.Bing()
	prof.Events = 16
	sess, err := workload.NewSession(prof)
	if err != nil {
		t.Fatal(err)
	}
	events := make([]trace.EventTrace, len(sess.Events))
	for i, ev := range sess.Events {
		events[i] = trace.EventTrace{Event: ev, Insts: trace.Record(sess.Gen.Stream(ev, false), ev.Len)}
	}
	var buf bytes.Buffer
	if err := trace.WriteFile(&buf, events); err != nil {
		t.Fatal(err)
	}

	s := testServer(t, Options{Workers: 1})
	got := decodeResult(t, post(t, s, "/run", RunRequest{
		TraceB64: base64.StdEncoding.EncodeToString(buf.Bytes()),
		Config:   "NL+S",
	}))

	want, err := esp.RunSource("trace", &eventq.TraceSource{Events: events}, esp.NLSConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want = jsonRoundTrip(t, want); !reflect.DeepEqual(got, want) {
		t.Fatalf("inline-trace service result deviates from esp.RunSource")
	}
}

// TestRunRejectsBadRequests: every malformed body is a 400 with a JSON
// error, never a 500 or a silently defaulted field.
func TestRunRejectsBadRequests(t *testing.T) {
	s := testServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"empty", ``},
		{"not json", `{"app"`},
		{"unknown field", `{"app":"amazon","config":"base","warp":9}`},
		{"trailing garbage", `{"app":"amazon","config":"base"} extra`},
		{"missing workload", `{"config":"base"}`},
		{"missing config", `{"app":"amazon"}`},
		{"unknown app", `{"app":"altavista","config":"base"}`},
		{"unknown config", `{"app":"amazon","config":"warpdrive"}`},
		{"app and trace", `{"app":"amazon","trace_b64":"aGk=","config":"base"}`},
		{"negative max_events", `{"app":"amazon","config":"base","max_events":-1}`},
		{"negative timeout", `{"app":"amazon","config":"base","timeout_ms":-5}`},
		{"huge scale", `{"app":"amazon","config":"base","scale":1e9}`},
		{"scaled trace", `{"trace_b64":"aGk=","config":"base","scale":2}`},
		{"bad base64", `{"trace_b64":"!!!","config":"base"}`},
		{"unknown sched", `{"app":"mobileweb","config":"base","sched":"warp"}`},
		{"sched contradicts pinned config", `{"app":"mobileweb","config":"base@fifo","sched":"edf"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postRaw(t, s, "/run", []byte(tc.body))
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", rec.Code, rec.Body.String())
			}
			var e errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q is not a JSON error", rec.Body.String())
			}
		})
	}
	if rec := get(t, s, "/run"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run: status %d, want 405", rec.Code)
	}
	if got := s.met.BadRequests.Load(); got != int64(len(cases)) {
		t.Fatalf("bad-request counter %d, want %d", got, len(cases))
	}
}

// TestQueueFullReturns429: with every ticket taken, the next request is
// rejected immediately — backpressure, not unbounded queueing.
func TestQueueFullReturns429(t *testing.T) {
	s := testServer(t, Options{Workers: 1, QueueDepth: 1})
	for i := 0; i < cap(s.tickets); i++ {
		s.tickets <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(s.tickets); i++ {
			<-s.tickets
		}
	}()
	rec := post(t, s, "/run", RunRequest{App: "amazon", Config: "base", MaxEvents: 8})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	if got := s.met.Rejected.Load(); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}
	rec = post(t, s, "/sweep", SweepRequest{Apps: []string{"amazon"}, Configs: []string{"base"}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("sweep during full queue: status %d, want 429", rec.Code)
	}
}

// TestTimeoutReturns504: an absurdly small per-request budget times the
// cell out with 504 and counts it.
func TestTimeoutReturns504(t *testing.T) {
	s := testServer(t, Options{Workers: 1})
	rec := post(t, s, "/run", RunRequest{App: "gmaps", Config: "ESP+NL", TimeoutMs: 1})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", rec.Code, rec.Body.String())
	}
	if got := s.met.Timeouts.Load(); got != 1 {
		t.Fatalf("timeout counter %d, want 1", got)
	}
}

// TestSweepBatchesGrid: a sweep returns cells in app-major request
// order, each bit-identical to direct esp.Run, and the engine counters
// show the batching shared workloads and machines.
func TestSweepBatchesGrid(t *testing.T) {
	s := testServer(t, Options{Workers: 2})
	apps := []string{"amazon", "bing"}
	configs := []string{"base", "ESP+NL"}
	rec := post(t, s, "/sweep", SweepRequest{Apps: apps, Configs: configs, MaxEvents: 32})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body.String())
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) != len(apps)*len(configs) {
		t.Fatalf("%d cells, want %d", len(resp.Cells), len(apps)*len(configs))
	}
	i := 0
	for _, app := range apps {
		for _, name := range configs {
			cell := resp.Cells[i]
			i++
			if cell.App != app || cell.Config != name {
				t.Fatalf("cell %d is %s/%s, want %s/%s (app-major order)", i-1, cell.App, cell.Config, app, name)
			}
			if cell.Error != "" || cell.Result == nil {
				t.Fatalf("cell %s/%s failed: %s", app, name, cell.Error)
			}
			prof, err := workload.ByName(app)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := esp.ConfigByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg.MaxEvents = 32
			want, err := esp.Run(prof, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if want = jsonRoundTrip(t, want); !reflect.DeepEqual(*cell.Result, want) {
				t.Fatalf("cell %s/%s deviates from esp.Run", app, name)
			}
		}
	}
	perf := s.runner.Perf()
	if perf.WorkloadBuilds != int64(len(apps)) {
		t.Fatalf("workload builds %d, want one per app (%d)", perf.WorkloadBuilds, len(apps))
	}
	if perf.WorkloadReuses == 0 {
		t.Fatalf("batching produced no workload cache hits: %+v", perf)
	}
}

// TestSweepIsolatesCellFailures: a cell that times out degrades alone;
// the rest of the grid still answers.
func TestSweepIsolatesCellFailures(t *testing.T) {
	s := testServer(t, Options{Workers: 1})
	// gmaps at full scale cannot finish in 1ms; amazon at 8 events can.
	rec := post(t, s, "/sweep", SweepRequest{Apps: []string{"gmaps"}, Configs: []string{"ESP+NL"}, TimeoutMs: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 with degraded cells", rec.Code)
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) != 1 || resp.Cells[0].Error == "" || resp.Cells[0].Result != nil {
		t.Fatalf("expected a per-cell timeout error, got %+v", resp.Cells)
	}
}

// TestHealthzAndDrain: liveness stays green while draining (the
// process is alive; killing it would abort the drain), readiness goes
// red so load balancers stop routing, new work is rejected, and Drain
// returns once in-flight requests finish.
func TestHealthzAndDrain(t *testing.T) {
	s := testServer(t, Options{Workers: 1})
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthy healthz: status %d", rec.Code)
	}
	if rec := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("healthy readyz: status %d", rec.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("draining healthz (liveness): status %d, want 200", rec.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(get(t, s, "/healthz").Body.Bytes(), &h); err != nil || h.Status != "draining" {
		t.Fatalf("draining healthz body: %+v, %v", h, err)
	}
	if rec := get(t, s, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: status %d, want 503", rec.Code)
	}
	if rec := post(t, s, "/run", RunRequest{App: "amazon", Config: "base", MaxEvents: 8}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /run: status %d, want 503", rec.Code)
	}
	if rec := get(t, s, "/metrics"); rec.Code != http.StatusOK {
		t.Fatalf("metrics must stay readable while draining: status %d", rec.Code)
	}
}

// TestReadyzQuarantineThreshold: when breakers quarantine more than
// half the preset grid, readiness fails even though the process is
// healthy.
func TestReadyzQuarantineThreshold(t *testing.T) {
	s := testServer(t, Options{Workers: 1, BreakerThreshold: 1, BreakerCooldown: time.Hour})
	preset := len(appNames()) * len(esp.ConfigNames())
	breakers := s.exec.Breakers()
	// Trip just over half the preset cells' breakers directly — the
	// request path to the same state is the chaos soak's job.
	for i := 0; i <= preset/2; i++ {
		breakers.Record(fmt.Sprintf("cell-%d", i), false)
	}
	rec := get(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with %d/%d breakers open: status %d, want 503", preset/2+1, preset, rec.Code)
	}
	var resp readyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Status != "quarantined" {
		t.Fatalf("readyz body: %+v, %v", resp, err)
	}
	// One recovery flips readiness back.
	breakers.Record("cell-0", true)
	if rec := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz after recovery: status %d, want 200", rec.Code)
	}
}

// TestMetricsEndpoint: after traffic, every layer of the snapshot is
// populated — request counters, engine reuse counters, the histogram.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t, Options{Workers: 2, QueueDepth: 4, WorkloadCap: 8})
	for i := 0; i < 3; i++ {
		if rec := post(t, s, "/run", RunRequest{App: "amazon", Config: "base", MaxEvents: 16}); rec.Code != http.StatusOK {
			t.Fatalf("run %d: status %d", i, rec.Code)
		}
	}
	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics is not valid JSON: %v", err)
	}
	if snap.Requests.Run != 3 {
		t.Fatalf("run requests %d, want 3", snap.Requests.Run)
	}
	if snap.Engine.Cells != 3 || snap.Engine.WorkloadBuilds != 1 || snap.Engine.WorkloadReuses != 2 {
		t.Fatalf("engine counters %+v, want 3 cells over 1 build + 2 cache hits", snap.Engine)
	}
	if snap.Engine.MachineReuses != 2 {
		t.Fatalf("machine reuses %d, want 2", snap.Engine.MachineReuses)
	}
	if snap.Cells.Completed != 3 || snap.CellLatency.Count != 3 {
		t.Fatalf("cell counters: %+v / latency count %d, want 3", snap.Cells, snap.CellLatency.Count)
	}
	if snap.Queue.Capacity != 6 || snap.Queue.Workers != 2 {
		t.Fatalf("queue geometry %+v, want capacity 6 / workers 2", snap.Queue)
	}
	var total int64
	for _, c := range snap.CellLatency.Counts {
		total += c
	}
	if total != snap.CellLatency.Count {
		t.Fatalf("histogram counts sum %d != count %d", total, snap.CellLatency.Count)
	}
}

// TestWorkloadCacheEviction: a cache capped below the distinct-workload
// count evicts and the service keeps answering correctly.
func TestWorkloadCacheEviction(t *testing.T) {
	s := testServer(t, Options{Workers: 1, WorkloadCap: 1})
	for _, app := range []string{"amazon", "bing", "amazon"} {
		if rec := post(t, s, "/run", RunRequest{App: app, Config: "base", MaxEvents: 16}); rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", app, rec.Code)
		}
	}
	perf := s.runner.Perf()
	if perf.WorkloadEvicts == 0 {
		t.Fatalf("cap-1 cache over 2 apps never evicted: %+v", perf)
	}
	if perf.WorkloadBuilds != 3 {
		t.Fatalf("workload builds %d, want 3 (amazon rebuilt after eviction)", perf.WorkloadBuilds)
	}
}

// TestOversizeBodyRejected: a body past MaxRequestBytes is refused.
func TestOversizeBodyRejected(t *testing.T) {
	s := testServer(t, Options{Workers: 1, MaxRequestBytes: 128})
	big := fmt.Sprintf(`{"app":"amazon","config":"base","trace_b64":%q}`, bytes.Repeat([]byte{'A'}, 256))
	rec := postRaw(t, s, "/run", []byte(big))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for oversize body", rec.Code)
	}
}
