package serve

// Chaos soak: the acceptance gate for the resilience layer. A seeded
// fault plan makes a 4-application × 4-configuration sweep panic, stall
// past its deadline, and fail workload builds; the sweep must still
// return every cell, the recovered cells must be bit-identical to the
// golden corpus, a persistently failing cell must trip its breaker, and
// a sweep killed mid-flight must resume from its journal — including
// after a torn tail write — on a fresh server.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"espsim/internal/fault"
	"espsim/internal/serve/metrics"
	"espsim/internal/sim"
)

// The chaos grid: a 4×4 subset of the golden corpus, so every
// successful cell has a known-bit-exact expected result.
var (
	chaosApps    = []string{"amazon", "bing", "cnn", "facebook"}
	chaosConfigs = []string{"base", "NaiveESP+NL", "Runahead+NL", "ESP+NL"}
)

// chaosSweepReq is the one sweep body both the faulted run and the
// resume run submit; the journal digest requires them identical.
func chaosSweepReq(sweepID string, timeoutMs int) SweepRequest {
	return SweepRequest{
		Apps:      chaosApps,
		Configs:   chaosConfigs,
		SweepID:   sweepID,
		MaxEvents: goldenMaxEvents,
		TimeoutMs: timeoutMs,
	}
}

// postSweep submits req and decodes the (expected-200) response.
func postSweep(t *testing.T, s *Server, req SweepRequest) SweepResponse {
	t.Helper()
	rec := post(t, s, "/sweep", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep status %d: %s", rec.Code, rec.Body.String())
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding sweep response: %v", err)
	}
	if want := len(chaosApps) * len(chaosConfigs); len(resp.Cells) != want {
		t.Fatalf("sweep returned %d cells, want %d", len(resp.Cells), want)
	}
	return resp
}

func metricsSnapshot(t *testing.T, s *Server) metrics.Snapshot {
	t.Helper()
	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	return snap
}

// TestChaosSoak runs the grid under a seeded fault plan (injected
// errors, panics, deadline-blowing stalls, and build failures on over a
// quarter of the cells) plus one cell that never recovers. Every cell
// must come back; recovered cells must match the golden corpus exactly
// with the exact retry count the plan predicts; the unrecoverable cell
// must trip its breaker and be quarantined — not re-attempted — on the
// resubmission, which replays everything else from the journal.
func TestChaosSoak(t *testing.T) {
	// The deadline must clear an organic cell comfortably (the largest
	// golden cell costs well under a second even with the race detector
	// on) while the injected stall overshoots it decisively.
	const (
		timeoutMs = 3000
		sleepFor  = 8 * time.Second
	)
	plan := &fault.Plan{Seed: 1, RunRate: 0.35, BuildRate: 0.3, FailFirst: 1, SleepFor: sleepFor}
	plan.Always("cnn", "ESP+NL", fault.Error) // the breaker-quarantine cell

	// The plan is introspectable: assert the seed actually faults at
	// least a quarter of the grid before trusting the soak means much.
	faulted, kinds := 0, map[fault.Kind]int{}
	for _, app := range chaosApps {
		for ci, cfg := range chaosConfigs {
			k := plan.RunFault(app, cfg)
			kinds[k]++
			if k != fault.None || (ci == 0 && plan.BuildFault(app)) {
				faulted++
			}
		}
	}
	total := len(chaosApps) * len(chaosConfigs)
	if faulted*4 < total {
		t.Fatalf("seed faults %d/%d cells, want >= 25%%", faulted, total)
	}
	for _, k := range []fault.Kind{fault.Error, fault.Panic, fault.Slow} {
		if kinds[k] == 0 {
			t.Fatalf("seed injects no %v faults; kinds: %v", k, kinds)
		}
	}

	dir := t.TempDir()
	s := testServer(t, Options{
		Workers:          4,
		CheckpointDir:    dir,
		FaultHook:        plan.Hook(),
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
		Retry:            fault.RetryPolicy{MaxAttempts: 3, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond},
	})
	golden := readGoldenCorpus(t)

	resp := postSweep(t, s, chaosSweepReq("chaos-soak", timeoutMs))
	for i, cell := range resp.Cells {
		key := cell.App + "/" + cell.Config
		states := 0
		for _, on := range []bool{cell.Result != nil, cell.Error != "", cell.Skipped != ""} {
			if on {
				states++
			}
		}
		if states != 1 {
			t.Fatalf("cell %s: want exactly one of result/error/skipped, got %+v", key, cell)
		}
		if cell.App == "cnn" && cell.Config == "ESP+NL" {
			if cell.ErrorKind != "injected" || cell.Attempts != 3 {
				t.Errorf("unrecoverable cell %s: kind %q attempts %d, want injected/3: %+v", key, cell.ErrorKind, cell.Attempts, cell)
			}
			continue
		}
		if cell.Result == nil {
			t.Errorf("cell %s: no result: %+v", key, cell)
			continue
		}
		if !reflect.DeepEqual(*cell.Result, golden[key]) {
			t.Errorf("cell %s: recovered result deviates from golden corpus", key)
		}
		// The plan makes retry counts exactly predictable: one extra
		// attempt per injected run fault, and one on the batch's first
		// cell when the app's workload build faults.
		want := 1
		if plan.RunFault(cell.App, cell.Config) != fault.None {
			want++
		}
		if i%len(chaosConfigs) == 0 && plan.BuildFault(cell.App) {
			want++
		}
		if cell.Attempts != want {
			t.Errorf("cell %s: %d attempts, want %d", key, cell.Attempts, want)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	snap := metricsSnapshot(t, s)
	if snap.Resilience.Retries < 6 {
		t.Errorf("retries %d, want >= 6 (one per recoverable fault, two for the breaker cell)", snap.Resilience.Retries)
	}
	if snap.Resilience.BreakerTrips != 1 || snap.Resilience.BreakerOpen != 1 {
		t.Errorf("breaker trips %d open %d, want 1/1", snap.Resilience.BreakerTrips, snap.Resilience.BreakerOpen)
	}
	if snap.Cells.Timeouts < 1 {
		t.Errorf("timeouts %d, want >= 1 (the slow cell must blow its deadline)", snap.Cells.Timeouts)
	}

	// Resubmission: the 15 completed cells replay from the journal; the
	// quarantined cell is skipped by its breaker without an attempt.
	resp2 := postSweep(t, s, chaosSweepReq("chaos-soak", timeoutMs))
	resumed := 0
	for _, cell := range resp2.Cells {
		key := cell.App + "/" + cell.Config
		if cell.App == "cnn" && cell.Config == "ESP+NL" {
			if cell.Skipped != "breaker_open" || cell.Attempts != 0 {
				t.Errorf("quarantined cell %s: %+v, want skipped=breaker_open with 0 attempts", key, cell)
			}
			continue
		}
		if !cell.Resumed || cell.Result == nil {
			t.Errorf("cell %s: not resumed from journal: %+v", key, cell)
			continue
		}
		resumed++
		if !reflect.DeepEqual(*cell.Result, golden[key]) {
			t.Errorf("cell %s: resumed result deviates from golden corpus", key)
		}
	}
	if resumed != total-1 {
		t.Errorf("resumed %d cells, want %d", resumed, total-1)
	}
	snap = metricsSnapshot(t, s)
	if snap.Resilience.ResumedCells != int64(total-1) {
		t.Errorf("resumed_cells metric %d, want %d", snap.Resilience.ResumedCells, total-1)
	}
	if snap.Resilience.BreakerSkips < 1 {
		t.Errorf("breaker_skips %d, want >= 1", snap.Resilience.BreakerSkips)
	}
	// One quarantined cell out of the whole preset grid is not enough to
	// fail readiness.
	if rec := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Errorf("readyz with one open breaker: status %d, want 200", rec.Code)
	}
	assertDrained(t, s)
}

// TestChaosCrashResume kills a sweep mid-flight — the fault hook cancels
// the client and flips the server draining after the sixth cell starts —
// then tears the journal's tail and resumes the sweep on a brand-new
// server. The journaled cells must replay bit-identically; the rest must
// simulate fresh; every cell must end green.
func TestChaosCrashResume(t *testing.T) {
	dir := t.TempDir()
	golden := readGoldenCorpus(t)
	req := chaosSweepReq("chaos-crash", 0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var srv *Server
	var ops atomic.Int32
	hook := func(pt sim.FaultPoint) error {
		// The "crash": after six cells have started, the client vanishes
		// and the daemon begins draining, exactly as a SIGTERM mid-sweep
		// would unfold. Cells already past this hook run to completion
		// and journal; the rest are abandoned.
		if pt.Op == "run" && ops.Add(1) == 6 {
			srv.BeginDrain()
			cancel()
		}
		return nil
	}
	srv = testServer(t, Options{Workers: 2, CheckpointDir: dir, FaultHook: hook})

	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpReq := httptest.NewRequest(http.MethodPost, "/sweep", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httpReq)
	if rec.Code != http.StatusOK {
		t.Fatalf("interrupted sweep status %d: %s", rec.Code, rec.Body.String())
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	completed, canceled := 0, 0
	for _, cell := range resp.Cells {
		switch {
		case cell.Result != nil:
			completed++
		case cell.ErrorKind == "canceled":
			canceled++
		default:
			t.Errorf("interrupted cell %s/%s: %+v, want result or canceled", cell.App, cell.Config, cell)
		}
	}
	if completed < 1 || canceled < 1 {
		t.Fatalf("interrupted sweep: %d completed, %d canceled — the kill must land mid-sweep", completed, canceled)
	}
	assertDrained(t, srv)
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain after interrupted sweep: %v", err)
	}

	// Simulate the torn write a real crash can leave: a frame header
	// promising more bytes than exist. Replay must truncate it, not
	// refuse the journal.
	path := filepath.Join(dir, "chaos-crash.espj")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xEE, 0x03, 0x00, 0x00, 0xDE, 0xAD, 0xBE, 0xEF, 0x01}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The replacement daemon: same checkpoint directory, no faults.
	s2 := testServer(t, Options{Workers: 2, CheckpointDir: dir})
	resp2 := postSweep(t, s2, req)
	resumed := 0
	for _, cell := range resp2.Cells {
		key := cell.App + "/" + cell.Config
		if cell.Result == nil {
			t.Errorf("cell %s after resume: %+v, want result", key, cell)
			continue
		}
		if !reflect.DeepEqual(*cell.Result, golden[key]) {
			t.Errorf("cell %s after resume: result deviates from golden corpus (resumed=%v)", key, cell.Resumed)
		}
		if cell.Resumed {
			resumed++
		}
	}
	if resumed != completed {
		t.Errorf("resumed %d cells, want the %d the crashed run journaled", resumed, completed)
	}
	if snap := metricsSnapshot(t, s2); snap.Resilience.ResumedCells != int64(completed) {
		t.Errorf("resumed_cells metric %d, want %d", snap.Resilience.ResumedCells, completed)
	}
	assertDrained(t, s2)
}
