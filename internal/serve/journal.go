package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"

	esp "espsim"
	"espsim/internal/checkpoint"
	"espsim/internal/fault"
)

// The journal header is a checkpoint.Meta: sweep identity, optional
// shard label, and a digest pinning every request knob that influences
// results; a journal whose digest does not match the resubmitted
// request must not be resumed from — it would splice cells from a
// different grid into this one.

// journalRecord is one completed cell, as journaled. Results travel as
// JSON exactly like the wire responses, so a resumed cell is
// bit-identical to the one originally returned (float64 round-trips
// exactly).
type journalRecord struct {
	App    string     `json:"app"`
	Config string     `json:"config"`
	Result esp.Result `json:"result"`
}

// SweepDigest hashes the result-shaping parameters of a sweep request.
// TimeoutMs, SweepID, and Shard are deliberately excluded: they change
// whether (or where) cells run, never what a finished cell contains.
// Exported so the espcoord coordinator can digest-check a dead
// worker's shard journal before handing its cells to a peer.
func SweepDigest(apps []string, req SweepRequest) string {
	canonical, _ := json.Marshal(struct {
		Apps       []string `json:"apps"`
		Configs    []string `json:"configs"`
		Scale      float64  `json:"scale"`
		MaxEvents  int      `json:"max_events"`
		MaxPending int      `json:"max_pending"`
	}{apps, req.Configs, req.Scale, req.MaxEvents, req.MaxPending})
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// errSweepConflict marks a sweep ID reused for a different grid (or
// already running); the handler maps it to 409.
var errSweepConflict = errors.New("sweep conflict")

// sweepJournal is the per-sweep checkpoint: a serialized append handle
// plus the cells replayed at open.
type sweepJournal struct {
	mu   sync.Mutex
	j    *checkpoint.Journal
	done map[string]*esp.Result // "app/config" -> replayed result
}

// openSweepJournal opens (or creates) the journal for req under dir and
// replays completed cells. A header digest mismatch is an
// errSweepConflict; a record that fails to decode is skipped (the cell
// simply re-runs), because a journaled record is advisory — the
// simulator can always recompute it.
func openSweepJournal(dir string, apps []string, req SweepRequest, log *slog.Logger) (*sweepJournal, error) {
	want := checkpoint.Meta{Version: 1, SweepID: req.SweepID, Shard: req.Shard, Digest: SweepDigest(apps, req)}
	path := filepath.Join(dir, req.SweepID+".espj")
	j, storedHeader, records, err := checkpoint.Open(path, want.Encode())
	if err != nil {
		return nil, err
	}
	stored, derr := checkpoint.DecodeMeta(storedHeader)
	if derr != nil || stored.Version != 1 {
		j.Close()
		return nil, fmt.Errorf("%w: journal %s has an unreadable header", errSweepConflict, path)
	}
	if stored.Digest != want.Digest || stored.SweepID != want.SweepID || stored.Shard != want.Shard {
		j.Close()
		return nil, fmt.Errorf("%w: sweep_id %q was journaled for a different grid (digest %s shard %q, this request %s shard %q)",
			errSweepConflict, req.SweepID, stored.Digest, stored.Shard, want.Digest, want.Shard)
	}

	done := make(map[string]*esp.Result, len(records))
	for i, raw := range records {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			log.Warn("sweep journal: skipping undecodable record", "sweep_id", req.SweepID, "record", i, "err", err.Error())
			continue
		}
		res := rec.Result
		done[rec.App+"/"+rec.Config] = &res
	}
	return &sweepJournal{j: j, done: done}, nil
}

// resumed returns the journaled result for a cell, if any.
func (sj *sweepJournal) resumed(app, config string) *esp.Result {
	if sj == nil {
		return nil
	}
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.done[app+"/"+config]
}

// append journals one completed cell, serialized across the sweep's
// concurrent app batches.
func (sj *sweepJournal) append(app, config string, res esp.Result) error {
	if sj == nil {
		return nil
	}
	raw, err := json.Marshal(journalRecord{App: app, Config: config, Result: res})
	if err != nil {
		return err
	}
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.j.Append(raw)
}

// close fsyncs and releases the journal file; the final sync makes a
// drained shutdown's journal bit-complete for whoever resumes it.
func (sj *sweepJournal) close() error {
	if sj == nil {
		return nil
	}
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.j.Close()
}

// errKind classifies a cell error for SweepCell.ErrorKind via the
// shared fault taxonomy, so espd and espcoord agree on every string.
func errKind(err error) string {
	return string(fault.Classify(err))
}
