package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"

	esp "espsim"
	"espsim/internal/checkpoint"
	"espsim/internal/fault"
	"espsim/internal/sim"
)

// journalHeader describes the sweep a journal belongs to. Digest pins
// every request knob that influences results; a journal whose digest
// does not match the resubmitted request must not be resumed from — it
// would splice cells from a different grid into this one.
type journalHeader struct {
	Version int    `json:"version"`
	SweepID string `json:"sweep_id"`
	Digest  string `json:"digest"`
}

// journalRecord is one completed cell, as journaled. Results travel as
// JSON exactly like the wire responses, so a resumed cell is
// bit-identical to the one originally returned (float64 round-trips
// exactly).
type journalRecord struct {
	App    string     `json:"app"`
	Config string     `json:"config"`
	Result esp.Result `json:"result"`
}

// sweepDigest hashes the result-shaping parameters of a sweep request.
// TimeoutMs and SweepID are deliberately excluded: they change whether
// cells finish, never what a finished cell contains.
func sweepDigest(apps []string, req SweepRequest) string {
	canonical, _ := json.Marshal(struct {
		Apps       []string `json:"apps"`
		Configs    []string `json:"configs"`
		Scale      float64  `json:"scale"`
		MaxEvents  int      `json:"max_events"`
		MaxPending int      `json:"max_pending"`
	}{apps, req.Configs, req.Scale, req.MaxEvents, req.MaxPending})
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// errSweepConflict marks a sweep ID reused for a different grid (or
// already running); the handler maps it to 409.
var errSweepConflict = errors.New("sweep conflict")

// sweepJournal is the per-sweep checkpoint: a serialized append handle
// plus the cells replayed at open.
type sweepJournal struct {
	mu   sync.Mutex
	j    *checkpoint.Journal
	done map[string]*esp.Result // "app/config" -> replayed result
}

// openSweepJournal opens (or creates) the journal for req under dir and
// replays completed cells. A header digest mismatch is an
// errSweepConflict; a record that fails to decode is skipped (the cell
// simply re-runs), because a journaled record is advisory — the
// simulator can always recompute it.
func openSweepJournal(dir string, apps []string, req SweepRequest, log *slog.Logger) (*sweepJournal, error) {
	header, _ := json.Marshal(journalHeader{Version: 1, SweepID: req.SweepID, Digest: sweepDigest(apps, req)})
	path := filepath.Join(dir, req.SweepID+".espj")
	j, storedHeader, records, err := checkpoint.Open(path, header)
	if err != nil {
		return nil, err
	}
	var stored journalHeader
	if err := json.Unmarshal(storedHeader, &stored); err != nil || stored.Version != 1 {
		j.Close()
		return nil, fmt.Errorf("%w: journal %s has an unreadable header", errSweepConflict, path)
	}
	var want journalHeader
	_ = json.Unmarshal(header, &want)
	if stored.Digest != want.Digest || stored.SweepID != want.SweepID {
		j.Close()
		return nil, fmt.Errorf("%w: sweep_id %q was journaled for a different grid (digest %s, this request %s)",
			errSweepConflict, req.SweepID, stored.Digest, want.Digest)
	}

	done := make(map[string]*esp.Result, len(records))
	for i, raw := range records {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			log.Warn("sweep journal: skipping undecodable record", "sweep_id", req.SweepID, "record", i, "err", err.Error())
			continue
		}
		res := rec.Result
		done[rec.App+"/"+rec.Config] = &res
	}
	return &sweepJournal{j: j, done: done}, nil
}

// resumed returns the journaled result for a cell, if any.
func (sj *sweepJournal) resumed(app, config string) *esp.Result {
	if sj == nil {
		return nil
	}
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.done[app+"/"+config]
}

// append journals one completed cell, serialized across the sweep's
// concurrent app batches.
func (sj *sweepJournal) append(app, config string, res esp.Result) error {
	if sj == nil {
		return nil
	}
	raw, err := json.Marshal(journalRecord{App: app, Config: config, Result: res})
	if err != nil {
		return err
	}
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.j.Append(raw)
}

// close releases the journal file.
func (sj *sweepJournal) close() {
	if sj == nil {
		return
	}
	sj.mu.Lock()
	defer sj.mu.Unlock()
	sj.j.Close()
}

// errKind classifies a cell error for SweepCell.ErrorKind. Order
// matters: a timeout wrapping an injected sleep is still a timeout, and
// a build failure wrapping an injected error is still a build failure.
func errKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, sim.ErrTimeout):
		return "timeout"
	case errors.Is(err, sim.ErrPanic):
		return "panic"
	case errors.Is(err, sim.ErrBuild):
		return "build"
	case errors.Is(err, fault.ErrInjected):
		return "injected"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return "error"
	}
}

// retryableCellErr decides which failures are worth another attempt:
// timeouts (an injected or transient stall may clear), panics (the
// machine was dropped; a fresh one may survive), build failures (the
// runner un-caches them precisely so retries can rebuild), and injected
// faults. Validation errors and dead clients are not retryable.
func retryableCellErr(err error) bool {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, sim.ErrTimeout), errors.Is(err, sim.ErrPanic),
		errors.Is(err, sim.ErrBuild), errors.Is(err, fault.ErrInjected):
		return true
	default:
		return false
	}
}
