package serve

import (
	"encoding/json"
	"testing"

	esp "espsim"
	"espsim/internal/trace"
)

// fuzzTraceLimits keeps inline-trace decoding cheap enough for the fuzz
// engine while still exercising the full decode path.
func fuzzTraceLimits() trace.Limits {
	return trace.Limits{MaxTraceBytes: 1 << 16, MaxEvents: 1 << 8, MaxInsts: 1 << 12}
}

// FuzzRunRequest feeds arbitrary bytes to the POST /run decoder. The
// properties: it never panics; everything it accepts re-validates,
// re-marshals, and re-parses to the same request (so a request that
// survives the decoder is canonical); and an accepted inline trace can
// be handed to the trace decoder without panicking, whatever it holds.
func FuzzRunRequest(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"app":"amazon","config":"base"}`))
	f.Add([]byte(`{"app":"gmaps","config":"ESP+NL","scale":0.5,"max_events":32,"max_pending":4,"timeout_ms":1000}`))
	f.Add([]byte(`{"trace_b64":"RVNQVAEA","config":"NL+S"}`)) // "ESPT\x01\x00": empty trace
	f.Add([]byte(`{"trace_b64":"!!!","config":"base"}`))
	f.Add([]byte(`{"app":"amazon","config":"base","warp":9}`))
	f.Add([]byte(`{"app":"amazon","config":"base"} trailing`))
	f.Add([]byte(`{"app":"amazon","trace_b64":"aGk=","config":"base"}`))
	f.Add([]byte(`{"app":"amazon","config":"base","scale":-1}`))
	f.Add([]byte(`{"configs":["base"],"apps":["amazon"]}`))
	f.Add([]byte(`{"app":"mobileweb","config":"base","sched":"edf"}`))
	f.Add([]byte(`{"app":"mobileweb","config":"base@edf","sched":"prio"}`))
	f.Add([]byte(`{"app":"amazon","config":"base","sched":"bogus"}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`"just a string"`))
	f.Add([]byte(`{"app":"amazon","config":"base","tenant":"team-a","deadline_ms":500}`))
	f.Add([]byte(`{"app":"amazon","config":"base","tenant":"no/slashes"}`))
	f.Add([]byte(`{"app":"amazon","config":"base","deadline_ms":-1}`))
	f.Add([]byte(`{"configs":["base"],"tenant":"t.1","deadline_ms":9223372036854775807}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRunRequest(data)
		// The sweep decoder shares the strict-decode machinery; it gets
		// the same never-panic shake for free.
		_, _ = ParseSweepRequest(data)
		if err != nil {
			return
		}
		if err := req.validate(); err != nil {
			t.Fatalf("accepted request fails re-validation: %v", err)
		}
		encoded, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-marshal: %v", err)
		}
		again, err := ParseRunRequest(encoded)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, encoded)
		}
		if again != req {
			t.Fatalf("request not canonical: %+v -> %+v", req, again)
		}
		if req.TraceB64 != "" {
			// Inline traces are only syntax-checked at materialization time
			// (under the server's limits): bad base64 or a malformed trace
			// must come back as an error, never a panic. The trace fuzzers
			// own the deeper decode properties.
			policy, _ := esp.SchedByName(req.Sched)
			w, err := traceWorkload(req.TraceB64, req.MaxEvents, policy, fuzzTraceLimits())
			if (w == nil) == (err == nil) {
				t.Fatalf("traceWorkload returned workload=%v err=%v", w != nil, err)
			}
		}
	})
}
