package serve

// Leak detection for the admission machinery: every request path —
// success, rejection, cancellation, timeout, conflict, drain — must
// return its queue ticket and worker slot. The gauges these tests pin
// to zero are the same channels admit and acquireWorker use, so a
// missing release on any error path shows up as a stuck count, not a
// slow leak in production.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"espsim/internal/fault"
	"espsim/internal/sim"
)

// assertDrained asserts the admission machinery is fully released: the
// queue-depth gauge, the ticket channel, and the tenant fair queue's
// gauges (queued acquisitions, in-flight cells) are all empty. Handlers
// release in defers that complete before ServeHTTP returns, so no
// polling is needed after a response is observed.
func assertDrained(t *testing.T, s *Server) {
	t.Helper()
	if d := s.met.QueueDepth.Load(); d != 0 {
		t.Errorf("queue-depth gauge %d, want 0", d)
	}
	if n := len(s.tickets); n != 0 {
		t.Errorf("%d admission tickets still held, want 0", n)
	}
	if n := s.tq.QueuedAcquisitions(); n != 0 {
		t.Errorf("%d fair-queue waiters still queued, want 0", n)
	}
	if n := s.tq.InFlightCells(); n != 0 {
		t.Errorf("%d tenant cells still in flight, want 0", n)
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

// doRun posts a /run request under ctx (so tests can model a client
// hanging up while queued).
func doRun(s *Server, ctx context.Context, body RunRequest) *httptest.ResponseRecorder {
	data, _ := json.Marshal(body)
	req := httptest.NewRequest(http.MethodPost, "/run", bytes.NewReader(data)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestAdmissionNoLeakUnderContention drives the contended paths — 429
// queue-full rejection and 499 client-gone-while-queued — against a
// single-worker server whose one worker is wedged on a gate, then
// asserts every ticket and slot came back.
func TestAdmissionNoLeakUnderContention(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 32)
	hook := func(pt sim.FaultPoint) error {
		if pt.Op == "run" {
			started <- struct{}{}
			<-gate
		}
		return nil
	}
	s := testServer(t, Options{Workers: 1, QueueDepth: 1, FaultHook: hook})

	// r1 wedges the only worker inside the engine.
	r1 := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		r1 <- doRun(s, context.Background(), RunRequest{App: "amazon", Config: "base", MaxEvents: 8})
	}()
	<-started

	// r2 takes the last ticket and queues for the worker.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	r2 := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		r2 <- doRun(s, ctx2, RunRequest{App: "amazon", Config: "base", MaxEvents: 8})
	}()
	waitFor(t, func() bool { return s.met.QueueDepth.Load() == 2 })

	// Queue full: a third request is rejected immediately.
	if rec := post(t, s, "/run", RunRequest{App: "amazon", Config: "base", MaxEvents: 8}); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full /run: status %d, want 429", rec.Code)
	}
	if rec := post(t, s, "/sweep", SweepRequest{Configs: []string{"base"}, MaxEvents: 8}); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full /sweep: status %d, want 429", rec.Code)
	}
	if d := s.met.QueueDepth.Load(); d != 2 {
		t.Fatalf("rejected requests moved the gauge: %d, want 2", d)
	}

	// r2's client hangs up while queued: 499, ticket released.
	cancel2()
	if rec := <-r2; rec.Code != statusClientGone {
		t.Fatalf("canceled queued /run: status %d, want %d", rec.Code, statusClientGone)
	}
	waitFor(t, func() bool { return s.met.QueueDepth.Load() == 1 })

	// Un-wedge the worker; r1 completes normally.
	close(gate)
	if rec := <-r1; rec.Code != http.StatusOK {
		t.Fatalf("gated /run: status %d, want 200: %s", rec.Code, rec.Body.String())
	}
	assertDrained(t, s)
}

// TestErrorPathsNoLeak sweeps the cheap failure paths — malformed
// bodies, wrong methods, cell timeouts, partially failing sweeps, sweep
// conflicts, unusable checkpoint directories, and draining — asserting
// the admission gauges return to zero after each.
func TestErrorPathsNoLeak(t *testing.T) {
	slow := &fault.Plan{Seed: 7, SleepFor: 500 * time.Millisecond}
	slow.Always("bing", "base", fault.Slow)
	wreck := &fault.Plan{Seed: 9}
	wreck.Always("amazon", "base", fault.Error)
	wreck.Always("bing", "base", fault.Panic)

	dir := t.TempDir()
	notADir := filepath.Join(dir, "notadir")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		opt  Options
		want int
		req  func(t *testing.T, s *Server) *httptest.ResponseRecorder
	}{
		{"bad run body", Options{}, http.StatusBadRequest, func(t *testing.T, s *Server) *httptest.ResponseRecorder {
			return postRaw(t, s, "/run", []byte("{nope"))
		}},
		{"bad sweep body", Options{}, http.StatusBadRequest, func(t *testing.T, s *Server) *httptest.ResponseRecorder {
			return postRaw(t, s, "/sweep", []byte(`{"configs":[]}`))
		}},
		{"wrong method", Options{}, http.StatusMethodNotAllowed, func(t *testing.T, s *Server) *httptest.ResponseRecorder {
			return get(t, s, "/run")
		}},
		{"unknown app", Options{}, http.StatusBadRequest, func(t *testing.T, s *Server) *httptest.ResponseRecorder {
			return post(t, s, "/run", RunRequest{App: "nope", Config: "base"})
		}},
		{"cell timeout", Options{Workers: 1, FaultHook: slow.Hook()}, http.StatusGatewayTimeout, func(t *testing.T, s *Server) *httptest.ResponseRecorder {
			return post(t, s, "/run", RunRequest{App: "bing", Config: "base", MaxEvents: 8, TimeoutMs: 40})
		}},
		{"journal dir unusable", Options{CheckpointDir: filepath.Join(notADir, "sub")}, http.StatusInternalServerError, func(t *testing.T, s *Server) *httptest.ResponseRecorder {
			return post(t, s, "/sweep", SweepRequest{Apps: []string{"amazon"}, Configs: []string{"base"}, SweepID: "j", MaxEvents: 8})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testServer(t, tc.opt)
			if rec := tc.req(t, s); rec.Code != tc.want {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.want, rec.Body.String())
			}
			assertDrained(t, s)
		})
	}

	t.Run("sweep with failing cells", func(t *testing.T) {
		// Breaker disabled, one retry: the sweep returns 200 with
		// structured per-cell errors and releases everything.
		s := testServer(t, Options{
			Workers:          2,
			BreakerThreshold: -1,
			FaultHook:        wreck.Hook(),
			Retry:            fault.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		})
		rec := post(t, s, "/sweep", SweepRequest{Apps: []string{"amazon", "bing"}, Configs: []string{"base", "ESP+NL"}, MaxEvents: 8})
		if rec.Code != http.StatusOK {
			t.Fatalf("sweep status %d: %s", rec.Code, rec.Body.String())
		}
		var resp SweepResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		kinds := map[string]string{}
		for _, cell := range resp.Cells {
			kinds[cell.App+"/"+cell.Config] = cell.ErrorKind
			if cell.Error == "" && cell.Result == nil {
				t.Errorf("cell %s/%s came back empty: %+v", cell.App, cell.Config, cell)
			}
		}
		if kinds["amazon/base"] != "injected" || kinds["bing/base"] != "panic" {
			t.Errorf("error kinds %v, want amazon/base=injected bing/base=panic", kinds)
		}
		assertDrained(t, s)
	})

	t.Run("sweep conflicts", func(t *testing.T) {
		s := testServer(t, Options{Workers: 1, CheckpointDir: t.TempDir()})
		// A sweep_id still in flight is refused outright.
		if !s.claimSweep("dup") {
			t.Fatal("claimSweep")
		}
		if rec := post(t, s, "/sweep", SweepRequest{Apps: []string{"amazon"}, Configs: []string{"base"}, SweepID: "dup", MaxEvents: 8}); rec.Code != http.StatusConflict {
			t.Fatalf("in-flight sweep_id: status %d, want 409", rec.Code)
		}
		s.releaseSweep("dup")
		assertDrained(t, s)

		// A sweep_id journaled for a different grid is refused too.
		if rec := post(t, s, "/sweep", SweepRequest{Apps: []string{"amazon"}, Configs: []string{"base"}, SweepID: "grid", MaxEvents: 8}); rec.Code != http.StatusOK {
			t.Fatalf("first grid: status %d", rec.Code)
		}
		if rec := post(t, s, "/sweep", SweepRequest{Apps: []string{"bing"}, Configs: []string{"base"}, SweepID: "grid", MaxEvents: 8}); rec.Code != http.StatusConflict {
			t.Fatalf("reused sweep_id on a different grid: status %d, want 409", rec.Code)
		}
		assertDrained(t, s)
	})

	t.Run("draining", func(t *testing.T) {
		s := testServer(t, Options{Workers: 1})
		s.BeginDrain()
		if rec := post(t, s, "/run", RunRequest{App: "amazon", Config: "base", MaxEvents: 8}); rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("draining /run: status %d, want 503", rec.Code)
		}
		if rec := post(t, s, "/sweep", SweepRequest{Configs: []string{"base"}, MaxEvents: 8}); rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("draining /sweep: status %d, want 503", rec.Code)
		}
		assertDrained(t, s)
	})
}
