package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	esp "espsim"
	"espsim/internal/serve/metrics"
)

// goldenMaxEvents mirrors the corpus truncation in golden_test.go.
const goldenMaxEvents = 48

// readGoldenCorpus loads the repository's golden determinism corpus:
// every (app, config) cell the engine must reproduce bit-for-bit.
func readGoldenCorpus(t *testing.T) map[string]esp.Result {
	t.Helper()
	data, err := os.ReadFile("../../testdata/golden.json")
	if err != nil {
		t.Fatalf("reading golden corpus: %v", err)
	}
	var golden map[string]esp.Result
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("decoding golden corpus: %v", err)
	}
	if len(golden) == 0 {
		t.Fatal("golden corpus is empty")
	}
	return golden
}

type goldenCell struct {
	app, config string
	want        esp.Result
}

func goldenCells(t *testing.T) []goldenCell {
	t.Helper()
	golden := readGoldenCorpus(t)
	cells := make([]goldenCell, 0, len(golden))
	for key, want := range golden {
		app, config, ok := strings.Cut(key, "/")
		if !ok {
			t.Fatalf("malformed golden key %q", key)
		}
		cells = append(cells, goldenCell{app: app, config: config, want: want})
	}
	return cells
}

// TestServiceGoldenParity is the acceptance gate for espd: 64
// concurrent POST /run requests covering every golden cell must return
// results bit-identical to the corpus (i.e. to direct esp.Run), while
// /metrics shows the load actually shared cached workloads and pooled
// machines. Under -race (tier 1) this doubles as the service-path
// data-race check.
func TestServiceGoldenParity(t *testing.T) {
	cells := goldenCells(t)
	s := testServer(t, Options{Workers: 4, QueueDepth: 64, WorkloadCap: 16})

	const requests = 64
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		cell := cells[i%len(cells)]
		wg.Add(1)
		go func(i int, cell goldenCell) {
			defer wg.Done()
			rec := post(t, s, "/run", RunRequest{App: cell.app, Config: cell.config, MaxEvents: goldenMaxEvents})
			if rec.Code != http.StatusOK {
				t.Errorf("request %d (%s/%s): status %d, body %s", i, cell.app, cell.config, rec.Code, rec.Body.String())
				return
			}
			var resp RunResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Errorf("request %d (%s/%s): decoding: %v", i, cell.app, cell.config, err)
				return
			}
			if !reflect.DeepEqual(resp.Result, cell.want) {
				t.Errorf("request %d (%s/%s): service result deviates from golden corpus", i, cell.app, cell.config)
			}
		}(i, cell)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	if snap.Engine.Cells != requests {
		t.Errorf("engine ran %d cells, want %d", snap.Engine.Cells, requests)
	}
	if snap.Engine.WorkloadReuses == 0 {
		t.Errorf("64 requests over %d workloads produced zero workload-cache hits: %+v", 7, snap.Engine)
	}
	if snap.Engine.MachineReuses == 0 {
		t.Errorf("64 requests over the machine pool produced zero machine reuses: %+v", snap.Engine)
	}
	if snap.Cells.Errors != 0 {
		t.Errorf("%d cell errors under golden load", snap.Cells.Errors)
	}
	if snap.CellLatency.Count != requests {
		t.Errorf("latency histogram observed %d cells, want %d", snap.CellLatency.Count, requests)
	}
}
