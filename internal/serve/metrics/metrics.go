// Package metrics is the observability plane of the espd service: the
// counters that Sweep.Summary tracks per sweep (cells run, workload and
// machine reuse) promoted into one long-lived, concurrency-safe type,
// plus the request-layer counters (queue depth, rejections, timeouts)
// and a per-cell latency histogram that only a daemon needs.
//
// Everything is lock-free atomics, so the hot path (one Observe per
// simulated cell, a few Adds per request) costs nanoseconds; Snapshot
// assembles a consistent-enough JSON view for GET /metrics.
package metrics

import (
	"sync/atomic"
	"time"

	"espsim/internal/tenantq"
)

// latencyBoundsMs are the histogram bucket upper bounds in milliseconds;
// the final implicit bucket is +Inf. They span a sub-millisecond golden
// cell to a multi-minute full-scale sweep cell.
var latencyBoundsMs = [15]int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000, 60000}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// Observe calls.
type Histogram struct {
	counts [len(latencyBoundsMs) + 1]atomic.Int64
	sumNs  atomic.Int64
	n      atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ms := d.Milliseconds()
	i := 0
	for i < len(latencyBoundsMs) && ms > latencyBoundsMs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.n.Add(1)
}

// HistogramSnapshot is the wire form of a Histogram: parallel bounds and
// counts (the last count is the +Inf bucket), plus count and mean.
type HistogramSnapshot struct {
	BoundsMs []int64 `json:"bounds_ms"`
	Counts   []int64 `json:"counts"`
	Count    int64   `json:"count"`
	MeanMs   float64 `json:"mean_ms"`
}

// Snapshot renders the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		BoundsMs: latencyBoundsMs[:],
		Counts:   make([]int64, len(h.counts)),
		Count:    h.n.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.MeanMs = float64(h.sumNs.Load()) / float64(s.Count) / 1e6
	}
	return s
}

// Metrics holds every service counter. The zero value is not ready;
// use New.
type Metrics struct {
	start time.Time

	// Request layer.
	RunRequests   atomic.Int64
	SweepRequests atomic.Int64
	ShardRequests atomic.Int64 // sweeps carrying a coordinator shard label
	JournalPeeks  atomic.Int64 // GET /journalz handoff inspections
	BadRequests   atomic.Int64
	Rejected      atomic.Int64 // 429: queue full
	Draining      atomic.Int64 // 503: shutdown in progress
	Timeouts      atomic.Int64
	CellsOK       atomic.Int64
	CellErrors    atomic.Int64
	QueueDepth    atomic.Int64 // admitted requests not yet finished

	// Overload layer: per-tenant quota refusals (429), cells shed
	// because they provably could not meet their deadline (504), and
	// work refused by the memory-pressure brownout (503).
	QuotaRejected    atomic.Int64
	DeadlineShed     atomic.Int64
	BrownoutRejected atomic.Int64

	// Resilience layer: cells replayed from a sweep's checkpoint journal
	// instead of simulated, and journal appends that failed (the cell
	// still succeeded; only its crash-safety record is missing).
	ResumedCells  atomic.Int64
	JournalErrors atomic.Int64
	SweepConflict atomic.Int64 // 409: sweep_id reused for a different grid or still running

	// CellLatency observes simulated-cell wall times (from the engine
	// observer, so batched sweep cells are measured individually).
	CellLatency Histogram
}

// New returns a Metrics anchored at now (uptime accounting).
func New() *Metrics {
	return &Metrics{start: time.Now()}
}

// Engine mirrors sim.Perf on the wire: the reuse counters the sweep
// engine tracks, reported cumulatively for the daemon's lifetime.
type Engine struct {
	Cells          int64 `json:"cells"`
	WorkloadBuilds int64 `json:"workload_builds"`
	WorkloadReuses int64 `json:"workload_cache_hits"`
	WorkloadEvicts int64 `json:"workload_evictions"`
	// WorkloadBypasses counts builds that skipped the cache under
	// memory brownout; CacheBytes is the cache's accounted footprint
	// (a gauge).
	WorkloadBypasses int64 `json:"workload_bypasses"`
	CacheBytes       int64 `json:"workload_cache_bytes"`
	MachineBuilds    int64 `json:"machine_builds"`
	MachineReuses    int64 `json:"machine_reuses"`
	BuildWallMs      int64 `json:"build_wall_ms"`
	SimWallMs        int64 `json:"sim_wall_ms"`

	// Sched aggregates responsiveness across every cell that ran under
	// a materialized dispatch schedule; omitted until one has.
	Sched *SchedEngine `json:"sched,omitempty"`
}

// SchedEngine mirrors the runner's scheduled-cell aggregates: deadline
// outcomes, priority inversions, and per-class latency summaries
// (event-weighted means of per-cell percentiles).
type SchedEngine struct {
	Cells              int64              `json:"cells"`
	Events             int64              `json:"events"`
	Deadlined          int64              `json:"deadlined"`
	DeadlineMisses     int64              `json:"deadline_misses"`
	MissRate           float64            `json:"miss_rate"`
	PriorityInversions int64              `json:"priority_inversions"`
	Classes            []SchedEngineClass `json:"classes,omitempty"`
}

// SchedEngineClass is one event class's aggregate responsiveness.
type SchedEngineClass struct {
	Class     string  `json:"class"`
	Events    int64   `json:"events"`
	Deadlined int64   `json:"deadlined"`
	Misses    int64   `json:"misses"`
	P50       float64 `json:"p50"`
	P95       float64 `json:"p95"`
	P99       float64 `json:"p99"`
}

// Snapshot is the GET /metrics document. Node is the worker's
// self-reported name (espd -name), so a coordinator scraping a fleet
// can label each snapshot without tracking URLs out of band.
type Snapshot struct {
	UptimeMs int64  `json:"uptime_ms"`
	Node     string `json:"node,omitempty"`

	Requests struct {
		Run          int64 `json:"run"`
		Sweep        int64 `json:"sweep"`
		Shard        int64 `json:"shard"`
		JournalPeeks int64 `json:"journal_peeks"`
		Bad          int64 `json:"bad"`
		Rejected     int64 `json:"rejected"`
		Draining     int64 `json:"draining"`
	} `json:"requests"`

	Cells struct {
		Completed int64 `json:"completed"`
		Errors    int64 `json:"errors"`
		Timeouts  int64 `json:"timeouts"`
	} `json:"cells"`

	Queue struct {
		Depth    int64 `json:"depth"`
		Capacity int   `json:"capacity"`
		Workers  int   `json:"workers"`
	} `json:"queue"`

	// Resilience reports the recovery machinery: retry and breaker
	// activity (filled by the server from its executor), plus
	// checkpoint/resume traffic. BreakerOpen is a gauge; the rest are
	// cumulative.
	Resilience struct {
		Retries       int64 `json:"retries"`
		BreakerTrips  int64 `json:"breaker_trips"`
		BreakerSkips  int64 `json:"breaker_skips"`
		BreakerOpen   int64 `json:"breaker_open"`
		ResumedCells  int64 `json:"resumed_cells"`
		JournalErrors int64 `json:"journal_errors"`
		SweepConflict int64 `json:"sweep_conflicts"`
	} `json:"resilience"`

	// Overload reports the tenant-scale robustness layer: quota and
	// brownout refusals, deadline sheds, and the brownout controller's
	// current level (filled by the server).
	Overload struct {
		QuotaRejected    int64 `json:"quota_rejected"`
		DeadlineShed     int64 `json:"deadline_shed"`
		BrownoutRejected int64 `json:"brownout_rejected"`

		Brownout *tenantq.BrownoutSnapshot `json:"brownout,omitempty"`
	} `json:"overload"`

	// Tenants is the per-tenant breakdown: gauges (queue depth,
	// in-flight cells) and cumulative admission/completion/refusal
	// counters, sorted by tenant name. Filled by the server.
	Tenants []tenantq.TenantSnapshot `json:"tenants,omitempty"`

	Engine Engine `json:"engine"`

	CellLatency HistogramSnapshot `json:"cell_latency"`
}

// Snapshot renders the request-layer counters; the caller fills in
// Engine (from sim.Perf) and the Queue capacities.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	s.UptimeMs = time.Since(m.start).Milliseconds()
	s.Requests.Run = m.RunRequests.Load()
	s.Requests.Sweep = m.SweepRequests.Load()
	s.Requests.Shard = m.ShardRequests.Load()
	s.Requests.JournalPeeks = m.JournalPeeks.Load()
	s.Requests.Bad = m.BadRequests.Load()
	s.Requests.Rejected = m.Rejected.Load()
	s.Requests.Draining = m.Draining.Load()
	s.Cells.Completed = m.CellsOK.Load()
	s.Cells.Errors = m.CellErrors.Load()
	s.Cells.Timeouts = m.Timeouts.Load()
	s.Queue.Depth = m.QueueDepth.Load()
	s.Overload.QuotaRejected = m.QuotaRejected.Load()
	s.Overload.DeadlineShed = m.DeadlineShed.Load()
	s.Overload.BrownoutRejected = m.BrownoutRejected.Load()
	s.Resilience.ResumedCells = m.ResumedCells.Load()
	s.Resilience.JournalErrors = m.JournalErrors.Load()
	s.Resilience.SweepConflict = m.SweepConflict.Load()
	s.CellLatency = m.CellLatency.Snapshot()
	return s
}
