package serve

// Overload-robustness tests: tenant fair queueing under saturation,
// deadline-aware shedding (including the zero-simulation sweep fast
// path), per-tenant quotas, and memory-pressure brownout degradation.
// Every test ends with assertDrained, so the new admission paths join
// the leak contract the rest of the suite enforces.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"espsim/internal/serve/metrics"
	"espsim/internal/sim"
	"espsim/internal/tenantq"
)

// snapshotAdmitted reads per-tenant admitted-cell counts.
func snapshotAdmitted(s *Server) map[string]int64 {
	out := map[string]int64{}
	for _, row := range s.tq.Snapshot() {
		out[row.Tenant] = row.AdmittedCells
	}
	return out
}

// TestTenantFairnessUnderSaturation is the fairness proof at the HTTP
// layer: four tenants with DRR weights 1:1:2:4 flood a single-worker
// daemon with far more requests than it can serve. While the backlog
// holds, each tenant's share of admitted cells must track its weight
// share within 10 percentage points — no tenant starves, and no tenant
// wins more than its weight buys.
func TestTenantFairnessUnderSaturation(t *testing.T) {
	slow := func(pt sim.FaultPoint) error {
		if pt.Op == "run" {
			time.Sleep(time.Millisecond)
		}
		return nil
	}
	weights := map[string]float64{"t1": 1, "t2": 1, "t3": 2, "t4": 4}
	tenants := map[string]tenantq.TenantConfig{}
	for name, w := range weights {
		tenants[name] = tenantq.TenantConfig{Weight: w}
	}
	s := testServer(t, Options{
		Workers:       1,
		QueueDepth:    500,
		Tenants:       tenants,
		TenantQuantum: 1,
		FaultHook:     slow,
	})

	const perTenant = 100
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for name := range weights {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				doRun(s, ctx, RunRequest{App: "amazon", Config: "base", MaxEvents: 8, Tenant: tenant})
			}(name)
		}
	}

	// Sample mid-backlog: after 64 grants every tenant still has dozens
	// queued, so shares reflect the fair queue, not the tail.
	var counts map[string]int64
	var total int64
	waitFor(t, func() bool {
		counts = snapshotAdmitted(s)
		total = 0
		for _, c := range counts {
			total += c
		}
		return total >= 64
	})
	var weightSum float64
	for _, w := range weights {
		weightSum += w
	}
	for name, w := range weights {
		ideal := float64(total) * w / weightSum
		tol := 0.10*float64(total) + 2 // 10% + one DRR round of slack
		if diff := float64(counts[name]) - ideal; diff > tol || diff < -tol {
			t.Errorf("tenant %s admitted %d of %d cells, ideal %.1f (weight %g/%g), tolerance %.1f",
				name, counts[name], total, ideal, w, weightSum, tol)
		}
		if counts[name] == 0 {
			t.Errorf("tenant %s starved: 0 of %d grants", name, total)
		}
	}

	cancel() // release the backlog: queued requests 499 out
	wg.Wait()
	assertDrained(t, s)
}

// TestSweepExpiredDeadlineFastPath: a sweep whose deadline is already
// exhausted (a coordinator propagating a spent budget sends a negative
// deadline_ms) comes back 504 with the full grid as structured shed
// cells — well under 50ms, with zero cells simulated, no journal claim,
// and the shed accounted to the tenant.
func TestSweepExpiredDeadlineFastPath(t *testing.T) {
	s := testServer(t, Options{Workers: 2, CheckpointDir: t.TempDir()})
	start := time.Now()
	rec := post(t, s, "/sweep", SweepRequest{
		Apps: []string{"amazon", "bing"}, Configs: []string{"base", "ESP+NL"},
		SweepID: "expired", Tenant: "late", DeadlineMs: -1, MaxEvents: 8,
	})
	wall := time.Since(start)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired sweep: status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if wall > 50*time.Millisecond {
		t.Errorf("shed fast path took %v, want < 50ms", wall)
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) != 4 {
		t.Fatalf("shed response has %d cells, want the full 4-cell grid", len(resp.Cells))
	}
	for _, cell := range resp.Cells {
		if cell.ErrorKind != "deadline_shed" || cell.Result != nil {
			t.Errorf("cell %s/%s: kind %q result %v, want deadline_shed and no result", cell.App, cell.Config, cell.ErrorKind, cell.Result)
		}
	}
	if cells := s.runner.Perf().Cells; cells != 0 {
		t.Errorf("shed sweep simulated %d cells, want 0", cells)
	}
	if got := s.met.DeadlineShed.Load(); got != 4 {
		t.Errorf("DeadlineShed counter %d, want 4", got)
	}
	rows := snapshotShed(s)
	if rows["late"] != 4 {
		t.Errorf("tenant \"late\" shed accounting %d, want 4", rows["late"])
	}
	// The sweep_id was never claimed: an immediate resubmission with
	// time on the clock runs normally.
	if rec := post(t, s, "/sweep", SweepRequest{
		Apps: []string{"amazon"}, Configs: []string{"base"}, SweepID: "expired", MaxEvents: 8,
	}); rec.Code != http.StatusOK {
		t.Fatalf("resubmission after shed: status %d: %s", rec.Code, rec.Body.String())
	}
	assertDrained(t, s)
}

func snapshotShed(s *Server) map[string]int64 {
	out := map[string]int64{}
	for _, row := range s.tq.Snapshot() {
		out[row.Tenant] = row.ShedDeadline
	}
	return out
}

// TestRunDeadlineShedOnEvidence: once the estimator has seen a cell run
// slow, a /run of the same cell with a deadline shorter than the
// estimate is shed with 504 before burning a worker; a deadline the
// estimate fits is admitted.
func TestRunDeadlineShedOnEvidence(t *testing.T) {
	slow := func(pt sim.FaultPoint) error {
		if pt.Op == "run" {
			time.Sleep(60 * time.Millisecond)
		}
		return nil
	}
	s := testServer(t, Options{Workers: 1, FaultHook: slow})
	// Train: one honest run puts ~60ms of evidence behind amazon/base.
	if rec := post(t, s, "/run", RunRequest{App: "amazon", Config: "base", MaxEvents: 8}); rec.Code != http.StatusOK {
		t.Fatalf("training run: status %d: %s", rec.Code, rec.Body.String())
	}
	before := s.runner.Perf().Cells
	rec := post(t, s, "/run", RunRequest{App: "amazon", Config: "base", MaxEvents: 8, DeadlineMs: 10})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("10ms deadline against ~60ms evidence: status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if got := s.runner.Perf().Cells; got != before {
		t.Errorf("shed run still simulated (%d -> %d cells)", before, got)
	}
	if got := s.met.DeadlineShed.Load(); got != 1 {
		t.Errorf("DeadlineShed counter %d, want 1", got)
	}
	// A generous deadline clears the predicate and runs.
	if rec := post(t, s, "/run", RunRequest{App: "amazon", Config: "base", MaxEvents: 8, DeadlineMs: 5000}); rec.Code != http.StatusOK {
		t.Fatalf("5s deadline: status %d: %s", rec.Code, rec.Body.String())
	}
	assertDrained(t, s)
}

// TestTenantQuotaAndHeader: a tenant's cumulative cell budget refuses
// the overflow with 429 (kind quota, counted per tenant and globally),
// the X-ESP-Tenant header is honored, and a header/body disagreement is
// a 400.
func TestTenantQuotaAndHeader(t *testing.T) {
	s := testServer(t, Options{
		Workers: 1,
		Tenants: map[string]tenantq.TenantConfig{"capped": {CellBudget: 2}},
	})
	runReq := RunRequest{App: "amazon", Config: "base", MaxEvents: 8}
	for i := 0; i < 2; i++ {
		if rec := post(t, s, "/run", withTenantHeader(t, runReq, "capped")); rec.Code != http.StatusOK {
			t.Fatalf("budgeted run %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	rec := post(t, s, "/run", withTenantHeader(t, runReq, "capped"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget run: status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if got := s.met.QuotaRejected.Load(); got != 1 {
		t.Errorf("QuotaRejected counter %d, want 1", got)
	}

	// Other tenants are untouched by the capped tenant's budget.
	if rec := post(t, s, "/run", runReq); rec.Code != http.StatusOK {
		t.Fatalf("default-tenant run: status %d: %s", rec.Code, rec.Body.String())
	}

	// Body and header disagreeing is a contradiction, not a choice.
	req2 := runReq
	req2.Tenant = "somebody"
	data, _ := json.Marshal(req2)
	hreq := httptest.NewRequest(http.MethodPost, "/run", bytes.NewReader(data))
	hreq.Header.Set(tenantHeader, "else")
	hrec := httptest.NewRecorder()
	s.ServeHTTP(hrec, hreq)
	if hrec.Code != http.StatusBadRequest {
		t.Fatalf("disagreeing tenant field/header: status %d, want 400: %s", hrec.Code, hrec.Body.String())
	}

	// /metrics carries the per-tenant breakdown and overload counters.
	var snap metrics.Snapshot
	if err := json.Unmarshal(get(t, s, "/metrics").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Overload.QuotaRejected != 1 {
		t.Errorf("/metrics overload.quota_rejected = %d, want 1", snap.Overload.QuotaRejected)
	}
	found := false
	for _, row := range snap.Tenants {
		if row.Tenant == "capped" {
			found = true
			if row.AdmittedCells != 2 || row.RejectedQuota != 1 {
				t.Errorf("tenant row %+v, want admitted 2 rejected_quota 1", row)
			}
		}
	}
	if !found {
		t.Error("/metrics has no row for tenant \"capped\"")
	}
	assertDrained(t, s)
}

// TestBrownoutDegradationAndRecovery: with a memory budget far below
// one workload, the first cached build drives the controller to its
// deepest level — unbounded requests get 503, small bounded ones still
// run (uncached, counted as bypasses) — and once the trim has the
// footprint back under the exit watermarks, the controller walks back
// to normal on its own.
func TestBrownoutDegradationAndRecovery(t *testing.T) {
	// The budget is exactly one 32-event amazon workload: the runner's
	// own eviction leaves the cache at 100% of budget (past every entry
	// watermark), which is precisely the sustained pressure the
	// controller exists for.
	wl, _, err := resolve(sim.NewRunner(), RunRequest{App: "amazon", Config: "base", MaxEvents: 32}, Options{}.withDefaults().TraceLimits)
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, Options{
		Workers:   2,
		MemBudget: wl.Bytes(),
		// Slow recovery (ticks are 5ms, 20 calm ticks per step) keeps
		// the browned-out window comfortably wider than the assertions
		// inside it, while full recovery still lands well under a second.
		Brownout:         tenantq.BrownoutConfig{RecoverAfter: 20},
		BrownoutInterval: 5 * time.Millisecond,
	})
	defer s.Close()

	// First run caches a workload and blows the budget.
	if rec := post(t, s, "/run", RunRequest{App: "amazon", Config: "base", MaxEvents: 32, Tenant: "heavy"}); rec.Code != http.StatusOK {
		t.Fatalf("first run: status %d: %s", rec.Code, rec.Body.String())
	}
	waitFor(t, func() bool { return s.brown.Level() == tenantq.BrownSmallOnly })

	// Unbounded work is refused while browned out...
	rec := post(t, s, "/run", RunRequest{App: "bing", Config: "base", Tenant: "heavy"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unbounded run under brownout: status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if got := s.met.BrownoutRejected.Load(); got != 1 {
		t.Errorf("BrownoutRejected counter %d, want 1", got)
	}
	// ...but small bounded grids still serve, bypassing the cache.
	if rec := post(t, s, "/run", RunRequest{App: "bing", Config: "base", MaxEvents: 8, Tenant: "heavy"}); rec.Code != http.StatusOK {
		t.Fatalf("small run under brownout: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := s.runner.Perf().WorkloadBypasses; got == 0 {
		t.Error("brownout run did not bypass the workload cache")
	}

	// The trim emptied the cache, so calm observations walk the
	// controller back down to normal and caching resumes.
	waitFor(t, func() bool { return s.brown.Level() == tenantq.BrownNormal })
	if rec := post(t, s, "/run", RunRequest{App: "bing", Config: "base", Tenant: "heavy"}); rec.Code != http.StatusOK {
		t.Fatalf("unbounded run after recovery: status %d: %s", rec.Code, rec.Body.String())
	}

	var snap metrics.Snapshot
	if err := json.Unmarshal(get(t, s, "/metrics").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Overload.Brownout == nil {
		t.Fatal("/metrics overload.brownout missing with a memory budget set")
	}
	if snap.Overload.Brownout.Escalations == 0 || snap.Overload.Brownout.Recoveries == 0 {
		t.Errorf("brownout snapshot %+v, want escalations and recoveries counted", *snap.Overload.Brownout)
	}
	assertDrained(t, s)
}

// withTenantHeader posts via the body field — the helper exists so the
// quota test reads as "the capped tenant" at each call site.
func withTenantHeader(t *testing.T, req RunRequest, tenant string) RunRequest {
	t.Helper()
	req.Tenant = tenant
	return req
}
