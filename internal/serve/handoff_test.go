package serve

// The drain/handoff contract the cluster plane builds on: a drained
// (not killed) daemon leaves its sweep journals fsync'd, closed, and
// torn-tail free even when the drain deadline abandons a wedged
// handler, and /journalz exposes a read-only peek of any journal so a
// coordinator can digest-check a dead worker's shard before resuming
// it on a peer.

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"espsim/internal/checkpoint"
	"espsim/internal/sim"
)

// smallSweep submits a sweep expected to succeed with wantCells cells
// (postSweep is pinned to the full chaos grid).
func smallSweep(t *testing.T, s *Server, req SweepRequest, wantCells int) SweepResponse {
	t.Helper()
	rec := post(t, s, "/sweep", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep status %d: %s", rec.Code, rec.Body.String())
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding sweep response: %v", err)
	}
	if len(resp.Cells) != wantCells {
		t.Fatalf("sweep returned %d cells, want %d", len(resp.Cells), wantCells)
	}
	return resp
}

// TestDrainThenResumeJournalIntact wedges a sweep's second cell inside
// the engine, drains past the deadline (the handler is abandoned), and
// closes the server. The journal on disk must already hold the first
// cell, intact and peekable; a successor daemon must replay it and
// recompute only the wedged cell, bit-identical to the golden corpus.
func TestDrainThenResumeJournalIntact(t *testing.T) {
	dir := t.TempDir()
	golden := readGoldenCorpus(t)

	gate := make(chan struct{})
	wedged := make(chan struct{})
	var runs atomic.Int64
	hook := func(pt sim.FaultPoint) error {
		if pt.Op == "run" && runs.Add(1) == 2 {
			close(wedged)
			<-gate
		}
		return nil
	}
	s := testServer(t, Options{Workers: 1, CheckpointDir: dir, FaultHook: hook})

	req := SweepRequest{
		Apps:      []string{"amazon"},
		Configs:   []string{"base", "ESP+NL"},
		SweepID:   "drain-resume",
		Shard:     "amazon",
		MaxEvents: goldenMaxEvents,
	}
	sweepDone := make(chan SweepResponse, 1)
	go func() {
		rec := post(t, s, "/sweep", req)
		var resp SweepResponse
		if rec.Code == http.StatusOK {
			_ = json.Unmarshal(rec.Body.Bytes(), &resp)
		}
		sweepDone <- resp
	}()
	<-wedged // cell 1 journaled, cell 2 stuck inside the engine

	// The drain deadline expires with the handler still wedged; Close
	// must fsync and release the journal anyway.
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain returned clean with a wedged handler")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// What a successor (or coordinator) sees on disk: a complete,
	// untorn journal holding exactly the finished cell.
	meta, records, torn, err := checkpoint.Peek(filepath.Join(dir, req.SweepID+".espj"))
	if err != nil {
		t.Fatalf("peeking the drained journal: %v", err)
	}
	if torn {
		t.Fatal("drained journal has a torn tail; Close must leave it bit-complete")
	}
	if meta.SweepID != req.SweepID || meta.Shard != req.Shard || meta.Digest != SweepDigest(req.Apps, req) {
		t.Fatalf("journal meta %+v does not describe the sweep", meta)
	}
	if len(records) != 1 {
		t.Fatalf("journal holds %d records, want exactly the pre-wedge cell", len(records))
	}

	// Release the engine: the abandoned handler finishes; its append
	// lands on a closed journal and is counted, not silently dropped,
	// and the response still carries the computed result.
	close(gate)
	resp := <-sweepDone
	if len(resp.Cells) != 2 || resp.Cells[1].Result == nil {
		t.Fatalf("wedged sweep response incomplete: %+v", resp.Cells)
	}
	if got := s.met.JournalErrors.Load(); got != 1 {
		t.Fatalf("append after Close counted %d journal errors, want 1", got)
	}

	// A successor resumes the journaled cell and recomputes the other;
	// both match the golden corpus.
	s2 := testServer(t, Options{Workers: 1, CheckpointDir: dir})
	resumed := smallSweep(t, s2, req, 2)
	for _, cell := range resumed.Cells {
		key := cell.App + "/" + cell.Config
		if cell.Result == nil || !reflect.DeepEqual(*cell.Result, golden[key]) {
			t.Errorf("cell %s: deviates from golden corpus after handoff: %+v", key, cell)
		}
	}
	if !resumed.Cells[0].Resumed || resumed.Cells[1].Resumed {
		t.Errorf("want exactly the journaled cell replayed, got resumed=%v,%v",
			resumed.Cells[0].Resumed, resumed.Cells[1].Resumed)
	}
}

// TestJournalzPeek drives the handoff endpoint: a finished sweep's
// journal is readable over HTTP with the right meta and cell keys, and
// the error paths (missing id, bad id, unknown sweep, checkpointing
// disabled) are typed statuses, not 500s.
func TestJournalzPeek(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, Options{Name: "w7", Workers: 2, CheckpointDir: dir})

	req := SweepRequest{
		Apps:      []string{"amazon"},
		Configs:   []string{"base", "ESP+NL"},
		SweepID:   "peek-me",
		Shard:     "amazon",
		MaxEvents: goldenMaxEvents,
	}
	smallSweep(t, s, req, 2)

	rec := get(t, s, "/journalz?sweep_id=peek-me")
	if rec.Code != http.StatusOK {
		t.Fatalf("journalz: status %d: %s", rec.Code, rec.Body.String())
	}
	var jz journalzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &jz); err != nil {
		t.Fatal(err)
	}
	if jz.Meta.SweepID != "peek-me" || jz.Meta.Shard != "amazon" || jz.Meta.Digest != SweepDigest(req.Apps, req) {
		t.Fatalf("journalz meta %+v does not describe the sweep", jz.Meta)
	}
	if jz.Torn {
		t.Fatal("journalz reports a torn tail on a cleanly closed journal")
	}
	want := map[string]bool{"amazon/base": true, "amazon/ESP+NL": true}
	if len(jz.Cells) != len(want) {
		t.Fatalf("journalz cells %v, want both grid cells", jz.Cells)
	}
	for _, c := range jz.Cells {
		if !want[c] {
			t.Fatalf("journalz yielded unknown cell %q", c)
		}
	}

	for path, wantCode := range map[string]int{
		"/journalz":                   http.StatusBadRequest, // no sweep_id
		"/journalz?sweep_id=a/b":      http.StatusBadRequest, // path separator
		"/journalz?sweep_id=no-sweep": http.StatusNotFound,
	} {
		if rec := get(t, s, path); rec.Code != wantCode {
			t.Errorf("GET %s: status %d, want %d", path, rec.Code, wantCode)
		}
	}
	noCkpt := testServer(t, Options{Workers: 1})
	if rec := get(t, noCkpt, "/journalz?sweep_id=peek-me"); rec.Code != http.StatusNotFound {
		t.Errorf("journalz without checkpointing: status %d, want 404", rec.Code)
	}

	snap := metricsSnapshot(t, s)
	if snap.Node != "w7" {
		t.Errorf("metrics node %q, want the -name label", snap.Node)
	}
	if snap.Requests.Shard != 1 {
		t.Errorf("shard-labeled sweeps counted %d, want 1", snap.Requests.Shard)
	}
	if snap.Requests.JournalPeeks < 1 {
		t.Error("journal peeks not counted")
	}
}
