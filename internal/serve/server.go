package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	esp "espsim"
	"espsim/internal/checkpoint"
	"espsim/internal/fault"
	"espsim/internal/serve/metrics"
	"espsim/internal/sim"
	"espsim/internal/tenantq"
	"espsim/internal/trace"
)

// Options configures a Server. The zero value gets sensible defaults
// from withDefaults.
type Options struct {
	// Name identifies this daemon in logs and /metrics (espd -name); a
	// coordinator uses it to label fleet members (default "espd").
	Name string
	// Workers bounds how many simulation cells (or sweep batches) run
	// concurrently (default: NumCPU).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker beyond the ones running; a request arriving past
	// Workers+QueueDepth is rejected with 429 (default: 64).
	QueueDepth int
	// WorkloadCap bounds the runner's LRU workload cache (default: 32
	// materialized arenas; < 0 means unbounded).
	WorkloadCap int
	// DefaultTimeout bounds one cell's simulation when the request does
	// not set timeout_ms (default: 2 minutes).
	DefaultTimeout time.Duration
	// MaxRequestBytes bounds a request body (default: 8 MiB).
	MaxRequestBytes int64
	// TraceLimits bounds inline ESPT traces (default: 4 MiB encoded,
	// 64Ki events, 4Mi instructions).
	TraceLimits trace.Limits
	// Logger receives structured request logs (default: slog.Default).
	Logger *slog.Logger

	// Retry bounds per-cell re-attempts inside a sweep (zero value:
	// 3 attempts, 25ms..1s exponential backoff, 20% jitter; MaxAttempts
	// 1 disables retrying).
	Retry fault.RetryPolicy
	// BreakerThreshold is how many consecutive failures quarantine one
	// (app, config) cell (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long a quarantined cell stays open before a
	// half-open probe is admitted (default 30s).
	BreakerCooldown time.Duration
	// CheckpointDir enables crash-safe sweep journaling: sweeps carrying
	// a sweep_id append completed cells to <dir>/<sweep_id>.espj and
	// resume from it. Empty disables journaling.
	CheckpointDir string
	// FaultHook installs a chaos injector on the runner (see
	// sim.FaultHook). Testing only; nil in production.
	FaultHook sim.FaultHook

	// TenantDefault applies to tenants with no entry in Tenants (zero
	// value: weight 1, no quotas); Tenants overrides per tenant name.
	// TenantQuantum is the fair queue's DRR round in cells per unit
	// weight (0: 8). MaxTenants bounds distinct tenant names tracked
	// (0: 256).
	TenantDefault tenantq.TenantConfig
	Tenants       map[string]tenantq.TenantConfig
	TenantQuantum float64
	MaxTenants    int

	// MemBudget bounds the workload cache in accounted bytes and arms
	// the brownout controller: past its watermarks the daemon stops
	// caching new workloads, halves concurrency, then admits only small
	// bounded grids — degrading instead of dying. 0 disables both.
	MemBudget int64
	// Brownout tunes the controller's watermarks and hysteresis; its
	// Budget field is overridden by MemBudget.
	Brownout tenantq.BrownoutConfig
	// BrownoutInterval is the background observation cadence — how
	// quickly the controller notices recovery while the daemon idles
	// (default 200ms; admissions also observe synchronously).
	BrownoutInterval time.Duration
	// SmallGridMax is the largest cells×max_events product the deepest
	// brownout level still admits; requests without an explicit
	// max_events bound are never "small" (default 4096).
	SmallGridMax int
}

func (o Options) withDefaults() Options {
	if o.Name == "" {
		o.Name = "espd"
	}
	if o.Workers < 1 {
		o.Workers = runtime.NumCPU()
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.QueueDepth < 0 {
		o.QueueDepth = 0
	}
	if o.WorkloadCap == 0 {
		o.WorkloadCap = 32
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 2 * time.Minute
	}
	if o.MaxRequestBytes <= 0 {
		o.MaxRequestBytes = 8 << 20
	}
	if o.TraceLimits == (trace.Limits{}) {
		o.TraceLimits = trace.Limits{MaxTraceBytes: 4 << 20, MaxEvents: 64 << 10, MaxInsts: 4 << 20}
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	o.Retry = o.Retry.WithDefaults()
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 30 * time.Second
	}
	if o.BrownoutInterval <= 0 {
		o.BrownoutInterval = 200 * time.Millisecond
	}
	if o.SmallGridMax <= 0 {
		o.SmallGridMax = 4096
	}
	return o
}

// Server is the espd simulation service. One Server owns one sim.Runner
// — so every request shares the LRU workload cache and the per-config
// machine pools — plus the admission machinery (worker slots, queue
// tickets) and the metrics the runner's observer feeds.
//
// Create with New, mount anywhere via http.Handler, stop with Drain.
type Server struct {
	opt    Options
	log    *slog.Logger
	runner *sim.Runner
	met    *metrics.Metrics

	// tickets is admission control: capacity Workers+QueueDepth. A
	// request that cannot take a ticket without blocking is rejected
	// with 429. tq is the execution bound — Workers slots handed out by
	// weighted fair queueing across tenants, with per-tenant quotas.
	tickets chan struct{}
	tq      *tenantq.Queue

	// est predicts cell wall times for deadline-aware admission; brown
	// is the memory-pressure controller (nil when MemBudget is 0).
	est   *estimator
	brown *tenantq.Brownout

	stop     chan struct{}
	stopOnce sync.Once

	// exec wraps every sweep cell in the recovery stack: breaker
	// admission, bounded retries with jittered backoff.
	exec *fault.Executor

	// activeSweeps guards the checkpoint journals: at most one in-flight
	// sweep per sweep_id, so two concurrent resubmissions cannot
	// interleave appends into one file. openJournals tracks the live
	// handles so Close can fsync-release any a handler has not yet.
	sweepMu      sync.Mutex
	activeSweeps map[string]struct{}
	openJournals map[string]*sweepJournal

	draining atomic.Bool
	inflight sync.WaitGroup

	mux *http.ServeMux
}

// New assembles a Server.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:          opt,
		log:          opt.Logger,
		runner:       sim.NewRunner(),
		met:          metrics.New(),
		tickets:      make(chan struct{}, opt.Workers+opt.QueueDepth),
		est:          newEstimator(),
		stop:         make(chan struct{}),
		activeSweeps: make(map[string]struct{}),
		openJournals: make(map[string]*sweepJournal),
		mux:          http.NewServeMux(),
	}
	s.tq = tenantq.New(tenantq.Options{
		Slots:      opt.Workers,
		Quantum:    opt.TenantQuantum,
		Default:    opt.TenantDefault,
		Tenants:    opt.Tenants,
		MaxTenants: opt.MaxTenants,
	})
	breakers := fault.NewBreakerSet(opt.BreakerThreshold, opt.BreakerCooldown)
	s.exec = fault.NewExecutor(opt.Retry, breakers, fault.Retryable, 1)
	if opt.WorkloadCap > 0 {
		s.runner.SetWorkloadCap(opt.WorkloadCap)
	}
	if opt.FaultHook != nil {
		s.runner.SetFaultHook(opt.FaultHook)
	}
	// Thread the observability layer through the engine: every replayed
	// cell — including cells inside sweep batches and abandoned
	// (timed-out) cells finishing late — lands in the histogram.
	s.runner.SetObserver(func(ev sim.CellEvent) {
		s.met.CellLatency.Observe(ev.Wall)
		if ev.Err != nil {
			s.met.CellErrors.Add(1)
		} else {
			s.met.CellsOK.Add(1)
			s.est.observe(ev.App, ev.Config, ev.Wall)
		}
	})
	if opt.MemBudget > 0 {
		bcfg := opt.Brownout
		bcfg.Budget = opt.MemBudget
		s.brown = tenantq.NewBrownout(bcfg)
		s.runner.SetWorkloadBudget(opt.MemBudget)
		go s.brownoutLoop()
	}
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/journalz", s.handleJournalz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s
}

// Close fsyncs and releases every sweep journal still open — the last
// step of a clean shutdown, after Drain has returned (or given up).
// Handlers normally close their own journals on the way out; Close
// covers the drain-deadline case where a handler was abandoned mid
// sweep, so the journal on disk ends bit-complete with no torn tail
// for the resuming daemon (or a coordinator handoff) to truncate.
// Journal closes are idempotent, making the handler/Close race safe.
// It also stops the brownout observation loop.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.sweepMu.Lock()
	open := make(map[string]*sweepJournal, len(s.openJournals))
	for id, jr := range s.openJournals {
		open[id] = jr
	}
	s.sweepMu.Unlock()
	var first error
	for id, jr := range open {
		if err := jr.close(); err != nil {
			s.met.JournalErrors.Add(1)
			s.log.Error("closing sweep journal", "sweep_id", id, "err", err.Error())
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// Runner exposes the engine, so an embedding process can pre-warm the
// cache or read Perf directly.
func (s *Server) Runner() *sim.Runner { return s.runner }

// ServeHTTP implements http.Handler with panic isolation: a panic that
// escapes a handler (the runner already contains simulation panics) is
// answered with 500 instead of killing the daemon's connection.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			s.log.Error("handler panic", "path", r.URL.Path, "panic", fmt.Sprint(p))
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// BeginDrain flips the server not-ready without waiting: new work gets
// 503, /readyz fails so load balancers stop routing, in-flight requests
// keep running. Call it before http.Server.Shutdown so readiness turns
// false while connections are still being served, then Drain to wait.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
}

// Drain stops admitting work (every endpoint but /healthz and /metrics
// answers 503, /readyz reports not ready) and waits for in-flight
// requests, bounded by ctx. Call after http.Server.Shutdown has stopped
// accepting connections.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// admit takes a queue ticket without blocking. The returned release
// must be called exactly once.
func (s *Server) admit() (release func(), ok bool) {
	select {
	case s.tickets <- struct{}{}:
		s.met.QueueDepth.Add(1)
		return func() {
			<-s.tickets
			s.met.QueueDepth.Add(-1)
		}, true
	default:
		return nil, false
	}
}

// acquireWorker blocks until the fair queue grants the tenant a worker
// slot for cost cells, the tenant's quota refuses it (fail-fast
// tenantq.ErrQuota), or the client goes away.
func (s *Server) acquireWorker(ctx context.Context, tenant string, cost int) (release func(), err error) {
	return s.tq.Acquire(ctx, tenant, cost)
}

// observeBrownout feeds the controller the cache's accounted footprint
// and applies whatever level it lands on. Called synchronously on every
// admission (so pressure reacts within one request) and from the
// background loop (so recovery happens while idle).
func (s *Server) observeBrownout() tenantq.BrownoutLevel {
	if s.brown == nil {
		return tenantq.BrownNormal
	}
	level := s.brown.Observe(s.runner.CacheBytes())
	s.applyBrownout(level)
	return level
}

// applyBrownout translates a level into engine knobs. Every transition
// is applied idempotently: the knobs are cheap sets, so re-applying the
// current level on every observation costs nothing and needs no state.
func (s *Server) applyBrownout(level tenantq.BrownoutLevel) {
	s.runner.SetCacheAdmit(level < tenantq.BrownNoCache)
	if level >= tenantq.BrownNoCache {
		s.runner.TrimWorkloadCache(s.brown.TrimTarget())
	}
	s.tq.SetDegraded(level >= tenantq.BrownHalfConcurrency)
}

// brownoutLoop re-observes on a timer so the controller walks back down
// through its hysteresis while no requests arrive. Stopped by Close.
func (s *Server) brownoutLoop() {
	tick := time.NewTicker(s.opt.BrownoutInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.observeBrownout()
		case <-s.stop:
			return
		}
	}
}

// smallGrid reports whether a request is small enough for the deepest
// brownout level: a bounded cells×max_events product under SmallGridMax.
// Unbounded requests (max_events 0) are never small.
func (s *Server) smallGrid(cells, maxEvents int) bool {
	return maxEvents > 0 && cells*maxEvents <= s.opt.SmallGridMax
}

// enter gates every mutating endpoint: it registers the request with
// the drain group and rejects when draining. exit must be called when
// the handler returns (iff ok).
func (s *Server) enter(w http.ResponseWriter) (exit func(), ok bool) {
	s.inflight.Add(1)
	if s.draining.Load() {
		s.inflight.Done()
		s.met.Draining.Add(1)
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
		return nil, false
	}
	return func() { s.inflight.Done() }, true
}

// readBody slurps a bounded request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opt.MaxRequestBytes))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	return body, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	s.met.RunRequests.Add(1)
	exit, ok := s.enter(w)
	if !ok {
		return
	}
	defer exit()

	body, err := s.readBody(w, r)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := ParseRunRequest(body)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tenant, err := resolveTenant(req.Tenant, r.Header.Get(tenantHeader))
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	deadline := deadlineOf(req.DeadlineMs, time.Now())

	// Overload admission ladder, cheapest refusal first: brownout (503),
	// deadline shed (504, zero simulation), queue tickets (429), then
	// the tenant fair queue (quota 429, or a granted slot).
	if level := s.observeBrownout(); level >= tenantq.BrownSmallOnly && !s.smallGrid(1, req.MaxEvents) {
		s.met.BrownoutRejected.Add(1)
		s.tq.CountBrownout(tenant)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("%w (%s): only bounded runs with max_events <= %d are admitted", tenantq.ErrBrownout, level, s.opt.SmallGridMax))
		return
	}
	estApp := req.App
	if estApp == "" {
		estApp = "trace"
	}
	if s.est.cannotFinish(estApp, req.Config, deadline, time.Now()) {
		s.met.DeadlineShed.Add(1)
		s.tq.CountShed(tenant, 1)
		writeError(w, http.StatusGatewayTimeout,
			fmt.Errorf("%w: %s/%s cannot finish within deadline_ms=%d", tenantq.ErrDeadlineShed, estApp, req.Config, req.DeadlineMs))
		return
	}

	release, ok := s.admit()
	if !ok {
		s.met.Rejected.Add(1)
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("queue full (%d in flight)", cap(s.tickets)))
		return
	}
	defer release()
	releaseWorker, err := s.acquireWorker(r.Context(), tenant, 1)
	if err != nil {
		if errors.Is(err, tenantq.ErrQuota) {
			s.met.QuotaRejected.Add(1)
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, statusClientGone, fmt.Errorf("client went away: %w", err))
		return
	}
	defer releaseWorker()

	start := time.Now()
	wl, cfg, err := resolve(s.runner, req, s.opt.TraceLimits)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Queue wait may have consumed the deadline; re-check before
	// simulating, and never simulate past what is left of it.
	timeout := timeoutOf(req.TimeoutMs, s.opt.DefaultTimeout)
	if !deadline.IsZero() {
		rem := time.Until(deadline)
		if rem <= 0 || s.est.cannotFinish(wl.App, cfg.Name, deadline, time.Now()) {
			s.met.DeadlineShed.Add(1)
			s.tq.CountShed(tenant, 1)
			writeError(w, http.StatusGatewayTimeout,
				fmt.Errorf("%w: deadline exhausted while queued", tenantq.ErrDeadlineShed))
			return
		}
		if rem < timeout {
			timeout = rem
		}
	}
	label := "run/" + wl.App + "/" + cfg.Name
	res, err := s.runner.RunWorkload(label, wl, cfg, timeout)
	wall := time.Since(start)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, sim.ErrTimeout) {
			status = http.StatusGatewayTimeout
			s.met.Timeouts.Add(1)
		}
		s.log.Error("run", "app", wl.App, "config", cfg.Name, "status", status, "wall_ms", wall.Milliseconds(), "err", err.Error())
		writeError(w, status, err)
		return
	}
	s.log.Info("run", "app", wl.App, "config", cfg.Name, "status", http.StatusOK, "wall_ms", wall.Milliseconds())
	writeJSON(w, http.StatusOK, RunResponse{Result: res, WallMs: float64(wall.Microseconds()) / 1e3})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	s.met.SweepRequests.Add(1)
	exit, ok := s.enter(w)
	if !ok {
		return
	}
	defer exit()

	body, err := s.readBody(w, r)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := ParseSweepRequest(body)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	apps := req.Apps
	if len(apps) == 0 {
		apps = appNames()
	}
	if req.Shard != "" {
		s.met.ShardRequests.Add(1)
	}
	tenant, err := resolveTenant(req.Tenant, r.Header.Get(tenantHeader))
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	arrival := time.Now()
	deadline := deadlineOf(req.DeadlineMs, arrival)
	gridCells := len(apps) * len(req.Configs)

	if level := s.observeBrownout(); level >= tenantq.BrownSmallOnly && !s.smallGrid(gridCells, req.MaxEvents) {
		s.met.BrownoutRejected.Add(1)
		s.tq.CountBrownout(tenant)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("%w (%s): only grids with cells*max_events <= %d are admitted", tenantq.ErrBrownout, level, s.opt.SmallGridMax))
		return
	}

	// Deadline fast path: when every cell provably cannot finish, answer
	// 504 with the full shed grid immediately — zero simulation, no
	// journal claim, no queueing. A coordinator propagating an exhausted
	// budget (negative deadline_ms) always lands here.
	if !deadline.IsZero() {
		now := time.Now()
		allShed := true
		for _, app := range apps {
			for _, name := range req.Configs {
				if !s.est.cannotFinish(app, name, deadline, now) {
					allShed = false
					break
				}
			}
			if !allShed {
				break
			}
		}
		if allShed {
			cells := make([]SweepCell, 0, gridCells)
			for _, app := range apps {
				for _, name := range req.Configs {
					cells = append(cells, SweepCell{
						App:       app,
						Config:    name,
						Error:     fmt.Sprintf("shed: cannot finish within deadline_ms=%d", req.DeadlineMs),
						ErrorKind: string(fault.KindShed),
					})
				}
			}
			s.met.DeadlineShed.Add(int64(gridCells))
			s.tq.CountShed(tenant, int64(gridCells))
			s.log.Info("sweep shed", "tenant", tenant, "cells", gridCells, "deadline_ms", req.DeadlineMs)
			writeJSON(w, http.StatusGatewayTimeout, SweepResponse{Cells: cells, WallMs: float64(time.Since(arrival).Microseconds()) / 1e3})
			return
		}
	}

	// Checkpoint/resume: a sweep_id on a journaling server replays
	// completed cells from disk and appends new ones as they finish. The
	// id is claimed for the duration of the sweep so concurrent
	// resubmissions cannot interleave appends into one file.
	var jr *sweepJournal
	if req.SweepID != "" && s.opt.CheckpointDir != "" {
		if !s.claimSweep(req.SweepID) {
			s.met.SweepConflict.Add(1)
			writeError(w, http.StatusConflict, fmt.Errorf("sweep %q is already running", req.SweepID))
			return
		}
		defer s.releaseSweep(req.SweepID)
		var err error
		jr, err = openSweepJournal(s.opt.CheckpointDir, apps, req, s.log)
		if err != nil {
			if errors.Is(err, errSweepConflict) {
				s.met.SweepConflict.Add(1)
				writeError(w, http.StatusConflict, err)
				return
			}
			s.log.Error("sweep journal", "sweep_id", req.SweepID, "err", err.Error())
			writeError(w, http.StatusInternalServerError, fmt.Errorf("opening sweep journal: %w", err))
			return
		}
		s.trackJournal(req.SweepID, jr)
		defer s.untrackJournal(req.SweepID, jr)
	}

	// The whole sweep is one admission unit; each application is one
	// batch that holds a worker slot while its configurations run back
	// to back, so they share the materialized workload and reuse pooled
	// machines with no interleaving cells evicting them.
	release, ok := s.admit()
	if !ok {
		s.met.Rejected.Add(1)
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("queue full (%d in flight)", cap(s.tickets)))
		return
	}
	defer release()

	start := time.Now()
	timeout := timeoutOf(req.TimeoutMs, s.opt.DefaultTimeout)
	cells := make([]SweepCell, len(apps)*len(req.Configs))
	var wg sync.WaitGroup
	for ai, app := range apps {
		wg.Add(1)
		go func(ai int, app string) {
			defer wg.Done()
			batch := cells[ai*len(req.Configs) : (ai+1)*len(req.Configs)]
			for ci, name := range req.Configs {
				batch[ci] = SweepCell{App: app, Config: name}
				if res := jr.resumed(app, name); res != nil {
					batch[ci].Result = res
					batch[ci].Resumed = true
					s.met.ResumedCells.Add(1)
				}
			}
			if allDone(batch) {
				return // fully resumed: no worker slot needed
			}
			outstanding := 0
			for ci := range batch {
				if batch[ci].Result == nil {
					outstanding++
				}
			}
			// The batch's fair-queue cost is its outstanding cell count,
			// so a tenant sweeping the full grid weighs accordingly
			// against a tenant running single cells.
			releaseWorker, err := s.acquireWorker(r.Context(), tenant, outstanding)
			if err != nil {
				if errors.Is(err, tenantq.ErrQuota) {
					s.met.QuotaRejected.Add(int64(outstanding))
				}
				for ci := range batch {
					if batch[ci].Result == nil {
						batch[ci].Error = fmt.Sprintf("batch not admitted: %v", err)
						batch[ci].ErrorKind = errKind(err)
					}
				}
				return
			}
			defer releaseWorker()
			s.runBatch(r.Context(), tenant, app, req, batch, timeout, deadline, jr)
		}(ai, app)
	}
	wg.Wait()
	wall := time.Since(start)

	failed, skipped, resumed, shed := 0, 0, 0, 0
	for i := range cells {
		switch {
		case cells[i].ErrorKind == string(fault.KindShed):
			shed++
			failed++
		case cells[i].Error != "":
			failed++
		case cells[i].Skipped != "":
			skipped++
		case cells[i].Resumed:
			resumed++
		}
	}
	status := http.StatusOK
	if len(cells) > 0 && shed == len(cells) {
		// Nothing at all could run in time: the partial-results contract
		// still holds (every cell is present), but the status says so.
		status = http.StatusGatewayTimeout
	}
	s.log.Info("sweep", "apps", len(apps), "configs", len(req.Configs), "cells", len(cells), "failed", failed,
		"skipped", skipped, "resumed", resumed, "shed", shed, "tenant", tenant, "shard", req.Shard, "wall_ms", wall.Milliseconds())
	writeJSON(w, status, SweepResponse{Cells: cells, WallMs: float64(wall.Microseconds()) / 1e3})
}

// claimSweep registers a sweep_id as in flight; false means another
// request holds it.
func (s *Server) claimSweep(id string) bool {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if _, busy := s.activeSweeps[id]; busy {
		return false
	}
	s.activeSweeps[id] = struct{}{}
	return true
}

func (s *Server) releaseSweep(id string) {
	s.sweepMu.Lock()
	delete(s.activeSweeps, id)
	s.sweepMu.Unlock()
}

// trackJournal registers a live journal handle for Close.
func (s *Server) trackJournal(id string, jr *sweepJournal) {
	s.sweepMu.Lock()
	s.openJournals[id] = jr
	s.sweepMu.Unlock()
}

// untrackJournal closes a sweep's journal (fsync included) and drops it
// from the registry; append errors already counted, so only the close
// failure is reported here.
func (s *Server) untrackJournal(id string, jr *sweepJournal) {
	s.sweepMu.Lock()
	delete(s.openJournals, id)
	s.sweepMu.Unlock()
	if err := jr.close(); err != nil {
		s.met.JournalErrors.Add(1)
		s.log.Error("closing sweep journal", "sweep_id", id, "err", err.Error())
	}
}

// allDone reports whether every cell of a batch already has a result.
func allDone(batch []SweepCell) bool {
	for i := range batch {
		if batch[i].Result == nil {
			return false
		}
	}
	return true
}

// runBatch executes one application's outstanding cells sequentially on
// the calling worker, each under the full recovery stack: breaker
// admission (a quarantined cell is skipped, not attempted), bounded
// retries with backoff for retryable failures, structured per-cell
// errors, and a journal append for every success. The workload is
// materialized (or LRU-hit) once for the whole batch. A cell that
// provably cannot finish by the request deadline is shed (never
// simulated) so the rest of the grid comes back as partial results.
func (s *Server) runBatch(ctx context.Context, tenant, app string, req SweepRequest, batch []SweepCell, timeout time.Duration, deadline time.Time, jr *sweepJournal) {
	prof, err := scaledProfile(app, req.Scale)
	if err != nil {
		for ci := range batch {
			if batch[ci].Result == nil {
				batch[ci].Error = err.Error()
				batch[ci].ErrorKind = "config"
			}
		}
		return
	}
	for ci := range batch {
		cell := &batch[ci]
		if cell.Result != nil {
			continue // resumed from the journal
		}
		if ctx.Err() != nil {
			// The client is gone: stop burning worker time. Journaled
			// cells survive for the resubmission.
			cell.Error = fmt.Sprintf("batch canceled: %v", ctx.Err())
			cell.ErrorKind = "canceled"
			continue
		}
		cfg, err := cellConfig(cell.Config, req.Sched, req.MaxEvents, req.MaxPending)
		if err != nil {
			cell.Error = err.Error()
			cell.ErrorKind = "config"
			continue
		}
		cellTimeout := timeout
		if !deadline.IsZero() {
			if s.est.cannotFinish(app, cfg.Name, deadline, time.Now()) {
				cell.Error = fmt.Sprintf("shed: cannot finish within deadline_ms=%d", req.DeadlineMs)
				cell.ErrorKind = string(fault.KindShed)
				s.met.DeadlineShed.Add(1)
				s.tq.CountShed(tenant, 1)
				continue
			}
			if rem := time.Until(deadline); rem < cellTimeout {
				cellTimeout = rem
			}
		}
		key := app + "/" + cfg.Name
		var res esp.Result
		out := s.exec.Run(ctx, key, func(attempt int) error {
			// Every cell goes through the runner's cache: the first call
			// materializes, the rest of the batch hits the same arena.
			var rerr error
			res, rerr = s.runner.RunCell("sweep/"+key, prof, cfg, cellTimeout)
			if rerr != nil {
				if errors.Is(rerr, sim.ErrTimeout) {
					s.met.Timeouts.Add(1)
				}
				s.log.Warn("sweep cell", "cell", key, "attempt", attempt, "err", rerr.Error())
			}
			return rerr
		})
		cell.Attempts = out.Attempts
		if out.Skipped {
			cell.Skipped = "breaker_open"
			continue
		}
		if out.Err != nil {
			cell.Error = out.Err.Error()
			cell.ErrorKind = errKind(out.Err)
			continue
		}
		cell.Result = &res
		if err := jr.append(app, cell.Config, res); err != nil {
			s.met.JournalErrors.Add(1)
			s.log.Error("sweep journal append", "cell", key, "err", err.Error())
		}
	}
}

// journalzResponse is the GET /journalz view of one sweep journal: the
// header meta plus the "app/config" cells already journaled. This is
// the coordinator's handoff probe — when a worker dies mid-shard, a
// peek at its journal (over HTTP here, or straight off a shared
// checkpoint dir) says which cells are already durable and carries the
// digest to check before the rest of the shard resumes on a peer.
type journalzResponse struct {
	Meta  checkpoint.Meta `json:"meta"`
	Cells []string        `json:"cells"`
	Torn  bool            `json:"torn,omitempty"`
}

func (s *Server) handleJournalz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	id := r.URL.Query().Get("sweep_id")
	if id == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("\"sweep_id\" query parameter is required"))
		return
	}
	if err := validateID("sweep_id", id); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.opt.CheckpointDir == "" {
		writeError(w, http.StatusNotFound, fmt.Errorf("checkpointing is disabled on this daemon"))
		return
	}
	s.met.JournalPeeks.Add(1)
	meta, records, torn, err := checkpoint.Peek(filepath.Join(s.opt.CheckpointDir, id+".espj"))
	switch {
	case errors.Is(err, os.ErrNotExist):
		writeError(w, http.StatusNotFound, fmt.Errorf("no journal for sweep %q", id))
		return
	case errors.Is(err, checkpoint.ErrCorrupt):
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := journalzResponse{Meta: meta, Cells: make([]string, 0, len(records)), Torn: torn}
	for _, raw := range records {
		var rec journalRecord
		if json.Unmarshal(raw, &rec) == nil {
			resp.Cells = append(resp.Cells, rec.App+"/"+rec.Config)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	snap := s.met.Snapshot()
	snap.Node = s.opt.Name
	perf := s.runner.Perf()
	snap.Engine = metrics.Engine{
		Cells:            perf.Cells,
		WorkloadBuilds:   perf.WorkloadBuilds,
		WorkloadReuses:   perf.WorkloadReuses,
		WorkloadEvicts:   perf.WorkloadEvicts,
		WorkloadBypasses: perf.WorkloadBypasses,
		CacheBytes:       s.runner.CacheBytes(),
		MachineBuilds:    perf.MachineBuilds,
		MachineReuses:    perf.MachineReuses,
		BuildWallMs:      perf.BuildWall.Milliseconds(),
		SimWallMs:        perf.SimWall.Milliseconds(),
	}
	if perf.SchedCells > 0 {
		se := &metrics.SchedEngine{
			Cells:              perf.SchedCells,
			Events:             perf.SchedEvents,
			Deadlined:          perf.Deadlined,
			DeadlineMisses:     perf.DeadlineMisses,
			PriorityInversions: perf.PriorityInversions,
		}
		if perf.Deadlined > 0 {
			se.MissRate = float64(perf.DeadlineMisses) / float64(perf.Deadlined)
		}
		for c := 1; c < trace.NumEventClasses; c++ {
			cp := perf.SchedClasses[c]
			if cp.Events == 0 {
				continue
			}
			se.Classes = append(se.Classes, metrics.SchedEngineClass{
				Class:     trace.EventClass(c).String(),
				Events:    cp.Events,
				Deadlined: cp.Deadlined,
				Misses:    cp.Misses,
				P50:       cp.P50Sum / float64(cp.Events),
				P95:       cp.P95Sum / float64(cp.Events),
				P99:       cp.P99Sum / float64(cp.Events),
			})
		}
		snap.Engine.Sched = se
	}
	snap.Queue.Capacity = cap(s.tickets)
	snap.Queue.Workers = s.opt.Workers
	snap.Tenants = s.tq.Snapshot()
	if s.brown != nil {
		bs := s.brown.Snapshot()
		snap.Overload.Brownout = &bs
	}
	breakers := s.exec.Breakers()
	snap.Resilience.Retries = s.exec.Retries()
	snap.Resilience.BreakerTrips = breakers.Trips()
	snap.Resilience.BreakerSkips = breakers.Skips()
	snap.Resilience.BreakerOpen = int64(breakers.OpenCount())
	writeJSON(w, http.StatusOK, snap)
}

type healthResponse struct {
	Status   string `json:"status"`
	UptimeMs int64  `json:"uptime_ms"`
}

// handleHealthz is liveness: the process is up and serving — 200 even
// while draining (a draining daemon is alive; killing it because a
// probe failed would abort the drain). Routability is /readyz's job.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	h := healthResponse{Status: "ok", UptimeMs: s.met.Snapshot().UptimeMs}
	if s.draining.Load() {
		h.Status = "draining"
	}
	writeJSON(w, http.StatusOK, h)
}

type readyResponse struct {
	Status      string `json:"status"`
	BreakerOpen int    `json:"breaker_open,omitempty"`
	PresetCells int    `json:"preset_cells,omitempty"`
}

// handleReadyz is readiness: 503 while draining, and 503 while the
// circuit breakers have quarantined more than half the preset
// (app, config) grid — a daemon whose engine is mostly quarantined
// should shed traffic to healthier replicas rather than answer sweeps
// full of breaker_open cells.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	resp := readyResponse{
		Status:      "ready",
		BreakerOpen: s.exec.Breakers().OpenCount(),
		PresetCells: len(appNames()) * len(esp.ConfigNames()),
	}
	code := http.StatusOK
	switch {
	case s.draining.Load():
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	case resp.BreakerOpen*2 > resp.PresetCells:
		resp.Status = "quarantined"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// statusClientGone is the nginx-convention 499 "client closed request":
// the client's context died while the request waited for a worker.
const statusClientGone = 499

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is gone; nothing left to signal
}
