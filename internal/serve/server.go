package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	esp "espsim"
	"espsim/internal/serve/metrics"
	"espsim/internal/sim"
	"espsim/internal/trace"
)

// Options configures a Server. The zero value gets sensible defaults
// from withDefaults.
type Options struct {
	// Workers bounds how many simulation cells (or sweep batches) run
	// concurrently (default: NumCPU).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker beyond the ones running; a request arriving past
	// Workers+QueueDepth is rejected with 429 (default: 64).
	QueueDepth int
	// WorkloadCap bounds the runner's LRU workload cache (default: 32
	// materialized arenas; < 0 means unbounded).
	WorkloadCap int
	// DefaultTimeout bounds one cell's simulation when the request does
	// not set timeout_ms (default: 2 minutes).
	DefaultTimeout time.Duration
	// MaxRequestBytes bounds a request body (default: 8 MiB).
	MaxRequestBytes int64
	// TraceLimits bounds inline ESPT traces (default: 4 MiB encoded,
	// 64Ki events, 4Mi instructions).
	TraceLimits trace.Limits
	// Logger receives structured request logs (default: slog.Default).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = runtime.NumCPU()
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.QueueDepth < 0 {
		o.QueueDepth = 0
	}
	if o.WorkloadCap == 0 {
		o.WorkloadCap = 32
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 2 * time.Minute
	}
	if o.MaxRequestBytes <= 0 {
		o.MaxRequestBytes = 8 << 20
	}
	if o.TraceLimits == (trace.Limits{}) {
		o.TraceLimits = trace.Limits{MaxTraceBytes: 4 << 20, MaxEvents: 64 << 10, MaxInsts: 4 << 20}
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Server is the espd simulation service. One Server owns one sim.Runner
// — so every request shares the LRU workload cache and the per-config
// machine pools — plus the admission machinery (worker slots, queue
// tickets) and the metrics the runner's observer feeds.
//
// Create with New, mount anywhere via http.Handler, stop with Drain.
type Server struct {
	opt    Options
	log    *slog.Logger
	runner *sim.Runner
	met    *metrics.Metrics

	// tickets is admission control: capacity Workers+QueueDepth. A
	// request that cannot take a ticket without blocking is rejected
	// with 429. work is the execution bound: capacity Workers.
	tickets chan struct{}
	work    chan struct{}

	draining atomic.Bool
	inflight sync.WaitGroup

	mux *http.ServeMux
}

// New assembles a Server.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:     opt,
		log:     opt.Logger,
		runner:  sim.NewRunner(),
		met:     metrics.New(),
		tickets: make(chan struct{}, opt.Workers+opt.QueueDepth),
		work:    make(chan struct{}, opt.Workers),
		mux:     http.NewServeMux(),
	}
	if opt.WorkloadCap > 0 {
		s.runner.SetWorkloadCap(opt.WorkloadCap)
	}
	// Thread the observability layer through the engine: every replayed
	// cell — including cells inside sweep batches and abandoned
	// (timed-out) cells finishing late — lands in the histogram.
	s.runner.SetObserver(func(ev sim.CellEvent) {
		s.met.CellLatency.Observe(ev.Wall)
		if ev.Err != nil {
			s.met.CellErrors.Add(1)
		} else {
			s.met.CellsOK.Add(1)
		}
	})
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Runner exposes the engine, so an embedding process can pre-warm the
// cache or read Perf directly.
func (s *Server) Runner() *sim.Runner { return s.runner }

// ServeHTTP implements http.Handler with panic isolation: a panic that
// escapes a handler (the runner already contains simulation panics) is
// answered with 500 instead of killing the daemon's connection.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			s.log.Error("handler panic", "path", r.URL.Path, "panic", fmt.Sprint(p))
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// Drain stops admitting work (every endpoint but /healthz and /metrics
// answers 503) and waits for in-flight requests, bounded by ctx. Call
// after http.Server.Shutdown has stopped accepting connections.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// admit takes a queue ticket without blocking. The returned release
// must be called exactly once.
func (s *Server) admit() (release func(), ok bool) {
	select {
	case s.tickets <- struct{}{}:
		s.met.QueueDepth.Add(1)
		return func() {
			<-s.tickets
			s.met.QueueDepth.Add(-1)
		}, true
	default:
		return nil, false
	}
}

// acquireWorker blocks until a worker slot frees up or the client goes
// away.
func (s *Server) acquireWorker(ctx context.Context) (release func(), err error) {
	select {
	case s.work <- struct{}{}:
		return func() { <-s.work }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// enter gates every mutating endpoint: it registers the request with
// the drain group and rejects when draining. exit must be called when
// the handler returns (iff ok).
func (s *Server) enter(w http.ResponseWriter) (exit func(), ok bool) {
	s.inflight.Add(1)
	if s.draining.Load() {
		s.inflight.Done()
		s.met.Draining.Add(1)
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
		return nil, false
	}
	return func() { s.inflight.Done() }, true
}

// readBody slurps a bounded request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opt.MaxRequestBytes))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	return body, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	s.met.RunRequests.Add(1)
	exit, ok := s.enter(w)
	if !ok {
		return
	}
	defer exit()

	body, err := s.readBody(w, r)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := ParseRunRequest(body)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}

	release, ok := s.admit()
	if !ok {
		s.met.Rejected.Add(1)
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("queue full (%d in flight)", cap(s.tickets)))
		return
	}
	defer release()
	releaseWorker, err := s.acquireWorker(r.Context())
	if err != nil {
		writeError(w, statusClientGone, fmt.Errorf("client went away: %w", err))
		return
	}
	defer releaseWorker()

	start := time.Now()
	wl, cfg, err := resolve(s.runner, req, s.opt.TraceLimits)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	label := "run/" + wl.App + "/" + cfg.Name
	res, err := s.runner.RunWorkload(label, wl, cfg, timeoutOf(req.TimeoutMs, s.opt.DefaultTimeout))
	wall := time.Since(start)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, sim.ErrTimeout) {
			status = http.StatusGatewayTimeout
			s.met.Timeouts.Add(1)
		}
		s.log.Error("run", "app", wl.App, "config", cfg.Name, "status", status, "wall_ms", wall.Milliseconds(), "err", err.Error())
		writeError(w, status, err)
		return
	}
	s.log.Info("run", "app", wl.App, "config", cfg.Name, "status", http.StatusOK, "wall_ms", wall.Milliseconds())
	writeJSON(w, http.StatusOK, RunResponse{Result: res, WallMs: float64(wall.Microseconds()) / 1e3})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	s.met.SweepRequests.Add(1)
	exit, ok := s.enter(w)
	if !ok {
		return
	}
	defer exit()

	body, err := s.readBody(w, r)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := ParseSweepRequest(body)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	apps := req.Apps
	if len(apps) == 0 {
		apps = appNames()
	}

	// The whole sweep is one admission unit; each application is one
	// batch that holds a worker slot while its configurations run back
	// to back, so they share the materialized workload and reuse pooled
	// machines with no interleaving cells evicting them.
	release, ok := s.admit()
	if !ok {
		s.met.Rejected.Add(1)
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("queue full (%d in flight)", cap(s.tickets)))
		return
	}
	defer release()

	start := time.Now()
	timeout := timeoutOf(req.TimeoutMs, s.opt.DefaultTimeout)
	cells := make([]SweepCell, len(apps)*len(req.Configs))
	var wg sync.WaitGroup
	for ai, app := range apps {
		wg.Add(1)
		go func(ai int, app string) {
			defer wg.Done()
			batch := cells[ai*len(req.Configs) : (ai+1)*len(req.Configs)]
			for ci, name := range req.Configs {
				batch[ci] = SweepCell{App: app, Config: name}
			}
			releaseWorker, err := s.acquireWorker(r.Context())
			if err != nil {
				for ci := range batch {
					batch[ci].Error = fmt.Sprintf("batch canceled: %v", err)
				}
				return
			}
			defer releaseWorker()
			s.runBatch(app, req, batch, timeout)
		}(ai, app)
	}
	wg.Wait()
	wall := time.Since(start)

	failed := 0
	for i := range cells {
		if cells[i].Error != "" {
			failed++
		}
	}
	s.log.Info("sweep", "apps", len(apps), "configs", len(req.Configs),
		"cells", len(cells), "failed", failed, "wall_ms", wall.Milliseconds())
	writeJSON(w, http.StatusOK, SweepResponse{Cells: cells, WallMs: float64(wall.Microseconds()) / 1e3})
}

// runBatch executes one application's cells sequentially on the calling
// worker. The workload is materialized (or LRU-hit) once for the whole
// batch; cell failures — timeouts, panics — degrade per cell, exactly
// like Harness.RunAll's sweeps.
func (s *Server) runBatch(app string, req SweepRequest, batch []SweepCell, timeout time.Duration) {
	prof, err := scaledProfile(app, req.Scale)
	if err != nil {
		for ci := range batch {
			batch[ci].Error = err.Error()
		}
		return
	}
	for ci := range batch {
		cfg, err := cellConfig(batch[ci].Config, req.MaxEvents, req.MaxPending)
		if err == nil {
			// Every cell goes through the runner's cache: the first call
			// materializes, the rest of the batch hits the same arena (the
			// lookup is a map access, so per-cell accounting costs nothing).
			var res esp.Result
			res, err = s.runner.RunCell("sweep/"+app+"/"+cfg.Name, prof, cfg, timeout)
			if err == nil {
				batch[ci].Result = &res
				continue
			}
			if errors.Is(err, sim.ErrTimeout) {
				s.met.Timeouts.Add(1)
			}
		}
		batch[ci].Error = err.Error()
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	snap := s.met.Snapshot()
	perf := s.runner.Perf()
	snap.Engine = metrics.Engine{
		Cells:          perf.Cells,
		WorkloadBuilds: perf.WorkloadBuilds,
		WorkloadReuses: perf.WorkloadReuses,
		WorkloadEvicts: perf.WorkloadEvicts,
		MachineBuilds:  perf.MachineBuilds,
		MachineReuses:  perf.MachineReuses,
		BuildWallMs:    perf.BuildWall.Milliseconds(),
		SimWallMs:      perf.SimWall.Milliseconds(),
	}
	snap.Queue.Capacity = cap(s.tickets)
	snap.Queue.Workers = cap(s.work)
	writeJSON(w, http.StatusOK, snap)
}

type healthResponse struct {
	Status   string `json:"status"`
	UptimeMs int64  `json:"uptime_ms"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	h := healthResponse{Status: "ok", UptimeMs: s.met.Snapshot().UptimeMs}
	code := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// statusClientGone is the nginx-convention 499 "client closed request":
// the client's context died while the request waited for a worker.
const statusClientGone = 499

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is gone; nothing left to signal
}
