package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	esp "espsim"
	"espsim/internal/checkpoint"
	"espsim/internal/fault"
	"espsim/internal/serve/metrics"
	"espsim/internal/sim"
	"espsim/internal/trace"
)

// Options configures a Server. The zero value gets sensible defaults
// from withDefaults.
type Options struct {
	// Name identifies this daemon in logs and /metrics (espd -name); a
	// coordinator uses it to label fleet members (default "espd").
	Name string
	// Workers bounds how many simulation cells (or sweep batches) run
	// concurrently (default: NumCPU).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker beyond the ones running; a request arriving past
	// Workers+QueueDepth is rejected with 429 (default: 64).
	QueueDepth int
	// WorkloadCap bounds the runner's LRU workload cache (default: 32
	// materialized arenas; < 0 means unbounded).
	WorkloadCap int
	// DefaultTimeout bounds one cell's simulation when the request does
	// not set timeout_ms (default: 2 minutes).
	DefaultTimeout time.Duration
	// MaxRequestBytes bounds a request body (default: 8 MiB).
	MaxRequestBytes int64
	// TraceLimits bounds inline ESPT traces (default: 4 MiB encoded,
	// 64Ki events, 4Mi instructions).
	TraceLimits trace.Limits
	// Logger receives structured request logs (default: slog.Default).
	Logger *slog.Logger

	// Retry bounds per-cell re-attempts inside a sweep (zero value:
	// 3 attempts, 25ms..1s exponential backoff, 20% jitter; MaxAttempts
	// 1 disables retrying).
	Retry fault.RetryPolicy
	// BreakerThreshold is how many consecutive failures quarantine one
	// (app, config) cell (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long a quarantined cell stays open before a
	// half-open probe is admitted (default 30s).
	BreakerCooldown time.Duration
	// CheckpointDir enables crash-safe sweep journaling: sweeps carrying
	// a sweep_id append completed cells to <dir>/<sweep_id>.espj and
	// resume from it. Empty disables journaling.
	CheckpointDir string
	// FaultHook installs a chaos injector on the runner (see
	// sim.FaultHook). Testing only; nil in production.
	FaultHook sim.FaultHook
}

func (o Options) withDefaults() Options {
	if o.Name == "" {
		o.Name = "espd"
	}
	if o.Workers < 1 {
		o.Workers = runtime.NumCPU()
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.QueueDepth < 0 {
		o.QueueDepth = 0
	}
	if o.WorkloadCap == 0 {
		o.WorkloadCap = 32
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 2 * time.Minute
	}
	if o.MaxRequestBytes <= 0 {
		o.MaxRequestBytes = 8 << 20
	}
	if o.TraceLimits == (trace.Limits{}) {
		o.TraceLimits = trace.Limits{MaxTraceBytes: 4 << 20, MaxEvents: 64 << 10, MaxInsts: 4 << 20}
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	o.Retry = o.Retry.WithDefaults()
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 30 * time.Second
	}
	return o
}

// Server is the espd simulation service. One Server owns one sim.Runner
// — so every request shares the LRU workload cache and the per-config
// machine pools — plus the admission machinery (worker slots, queue
// tickets) and the metrics the runner's observer feeds.
//
// Create with New, mount anywhere via http.Handler, stop with Drain.
type Server struct {
	opt    Options
	log    *slog.Logger
	runner *sim.Runner
	met    *metrics.Metrics

	// tickets is admission control: capacity Workers+QueueDepth. A
	// request that cannot take a ticket without blocking is rejected
	// with 429. work is the execution bound: capacity Workers.
	tickets chan struct{}
	work    chan struct{}

	// exec wraps every sweep cell in the recovery stack: breaker
	// admission, bounded retries with jittered backoff.
	exec *fault.Executor

	// activeSweeps guards the checkpoint journals: at most one in-flight
	// sweep per sweep_id, so two concurrent resubmissions cannot
	// interleave appends into one file. openJournals tracks the live
	// handles so Close can fsync-release any a handler has not yet.
	sweepMu      sync.Mutex
	activeSweeps map[string]struct{}
	openJournals map[string]*sweepJournal

	draining atomic.Bool
	inflight sync.WaitGroup

	mux *http.ServeMux
}

// New assembles a Server.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:          opt,
		log:          opt.Logger,
		runner:       sim.NewRunner(),
		met:          metrics.New(),
		tickets:      make(chan struct{}, opt.Workers+opt.QueueDepth),
		work:         make(chan struct{}, opt.Workers),
		activeSweeps: make(map[string]struct{}),
		openJournals: make(map[string]*sweepJournal),
		mux:          http.NewServeMux(),
	}
	breakers := fault.NewBreakerSet(opt.BreakerThreshold, opt.BreakerCooldown)
	s.exec = fault.NewExecutor(opt.Retry, breakers, fault.Retryable, 1)
	if opt.WorkloadCap > 0 {
		s.runner.SetWorkloadCap(opt.WorkloadCap)
	}
	if opt.FaultHook != nil {
		s.runner.SetFaultHook(opt.FaultHook)
	}
	// Thread the observability layer through the engine: every replayed
	// cell — including cells inside sweep batches and abandoned
	// (timed-out) cells finishing late — lands in the histogram.
	s.runner.SetObserver(func(ev sim.CellEvent) {
		s.met.CellLatency.Observe(ev.Wall)
		if ev.Err != nil {
			s.met.CellErrors.Add(1)
		} else {
			s.met.CellsOK.Add(1)
		}
	})
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/journalz", s.handleJournalz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s
}

// Close fsyncs and releases every sweep journal still open — the last
// step of a clean shutdown, after Drain has returned (or given up).
// Handlers normally close their own journals on the way out; Close
// covers the drain-deadline case where a handler was abandoned mid
// sweep, so the journal on disk ends bit-complete with no torn tail
// for the resuming daemon (or a coordinator handoff) to truncate.
// Journal closes are idempotent, making the handler/Close race safe.
func (s *Server) Close() error {
	s.sweepMu.Lock()
	open := make(map[string]*sweepJournal, len(s.openJournals))
	for id, jr := range s.openJournals {
		open[id] = jr
	}
	s.sweepMu.Unlock()
	var first error
	for id, jr := range open {
		if err := jr.close(); err != nil {
			s.met.JournalErrors.Add(1)
			s.log.Error("closing sweep journal", "sweep_id", id, "err", err.Error())
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// Runner exposes the engine, so an embedding process can pre-warm the
// cache or read Perf directly.
func (s *Server) Runner() *sim.Runner { return s.runner }

// ServeHTTP implements http.Handler with panic isolation: a panic that
// escapes a handler (the runner already contains simulation panics) is
// answered with 500 instead of killing the daemon's connection.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			s.log.Error("handler panic", "path", r.URL.Path, "panic", fmt.Sprint(p))
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// BeginDrain flips the server not-ready without waiting: new work gets
// 503, /readyz fails so load balancers stop routing, in-flight requests
// keep running. Call it before http.Server.Shutdown so readiness turns
// false while connections are still being served, then Drain to wait.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
}

// Drain stops admitting work (every endpoint but /healthz and /metrics
// answers 503, /readyz reports not ready) and waits for in-flight
// requests, bounded by ctx. Call after http.Server.Shutdown has stopped
// accepting connections.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// admit takes a queue ticket without blocking. The returned release
// must be called exactly once.
func (s *Server) admit() (release func(), ok bool) {
	select {
	case s.tickets <- struct{}{}:
		s.met.QueueDepth.Add(1)
		return func() {
			<-s.tickets
			s.met.QueueDepth.Add(-1)
		}, true
	default:
		return nil, false
	}
}

// acquireWorker blocks until a worker slot frees up or the client goes
// away.
func (s *Server) acquireWorker(ctx context.Context) (release func(), err error) {
	select {
	case s.work <- struct{}{}:
		return func() { <-s.work }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// enter gates every mutating endpoint: it registers the request with
// the drain group and rejects when draining. exit must be called when
// the handler returns (iff ok).
func (s *Server) enter(w http.ResponseWriter) (exit func(), ok bool) {
	s.inflight.Add(1)
	if s.draining.Load() {
		s.inflight.Done()
		s.met.Draining.Add(1)
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
		return nil, false
	}
	return func() { s.inflight.Done() }, true
}

// readBody slurps a bounded request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opt.MaxRequestBytes))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	return body, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	s.met.RunRequests.Add(1)
	exit, ok := s.enter(w)
	if !ok {
		return
	}
	defer exit()

	body, err := s.readBody(w, r)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := ParseRunRequest(body)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}

	release, ok := s.admit()
	if !ok {
		s.met.Rejected.Add(1)
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("queue full (%d in flight)", cap(s.tickets)))
		return
	}
	defer release()
	releaseWorker, err := s.acquireWorker(r.Context())
	if err != nil {
		writeError(w, statusClientGone, fmt.Errorf("client went away: %w", err))
		return
	}
	defer releaseWorker()

	start := time.Now()
	wl, cfg, err := resolve(s.runner, req, s.opt.TraceLimits)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	label := "run/" + wl.App + "/" + cfg.Name
	res, err := s.runner.RunWorkload(label, wl, cfg, timeoutOf(req.TimeoutMs, s.opt.DefaultTimeout))
	wall := time.Since(start)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, sim.ErrTimeout) {
			status = http.StatusGatewayTimeout
			s.met.Timeouts.Add(1)
		}
		s.log.Error("run", "app", wl.App, "config", cfg.Name, "status", status, "wall_ms", wall.Milliseconds(), "err", err.Error())
		writeError(w, status, err)
		return
	}
	s.log.Info("run", "app", wl.App, "config", cfg.Name, "status", http.StatusOK, "wall_ms", wall.Milliseconds())
	writeJSON(w, http.StatusOK, RunResponse{Result: res, WallMs: float64(wall.Microseconds()) / 1e3})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	s.met.SweepRequests.Add(1)
	exit, ok := s.enter(w)
	if !ok {
		return
	}
	defer exit()

	body, err := s.readBody(w, r)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := ParseSweepRequest(body)
	if err != nil {
		s.met.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	apps := req.Apps
	if len(apps) == 0 {
		apps = appNames()
	}
	if req.Shard != "" {
		s.met.ShardRequests.Add(1)
	}

	// Checkpoint/resume: a sweep_id on a journaling server replays
	// completed cells from disk and appends new ones as they finish. The
	// id is claimed for the duration of the sweep so concurrent
	// resubmissions cannot interleave appends into one file.
	var jr *sweepJournal
	if req.SweepID != "" && s.opt.CheckpointDir != "" {
		if !s.claimSweep(req.SweepID) {
			s.met.SweepConflict.Add(1)
			writeError(w, http.StatusConflict, fmt.Errorf("sweep %q is already running", req.SweepID))
			return
		}
		defer s.releaseSweep(req.SweepID)
		var err error
		jr, err = openSweepJournal(s.opt.CheckpointDir, apps, req, s.log)
		if err != nil {
			if errors.Is(err, errSweepConflict) {
				s.met.SweepConflict.Add(1)
				writeError(w, http.StatusConflict, err)
				return
			}
			s.log.Error("sweep journal", "sweep_id", req.SweepID, "err", err.Error())
			writeError(w, http.StatusInternalServerError, fmt.Errorf("opening sweep journal: %w", err))
			return
		}
		s.trackJournal(req.SweepID, jr)
		defer s.untrackJournal(req.SweepID, jr)
	}

	// The whole sweep is one admission unit; each application is one
	// batch that holds a worker slot while its configurations run back
	// to back, so they share the materialized workload and reuse pooled
	// machines with no interleaving cells evicting them.
	release, ok := s.admit()
	if !ok {
		s.met.Rejected.Add(1)
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("queue full (%d in flight)", cap(s.tickets)))
		return
	}
	defer release()

	start := time.Now()
	timeout := timeoutOf(req.TimeoutMs, s.opt.DefaultTimeout)
	cells := make([]SweepCell, len(apps)*len(req.Configs))
	var wg sync.WaitGroup
	for ai, app := range apps {
		wg.Add(1)
		go func(ai int, app string) {
			defer wg.Done()
			batch := cells[ai*len(req.Configs) : (ai+1)*len(req.Configs)]
			for ci, name := range req.Configs {
				batch[ci] = SweepCell{App: app, Config: name}
				if res := jr.resumed(app, name); res != nil {
					batch[ci].Result = res
					batch[ci].Resumed = true
					s.met.ResumedCells.Add(1)
				}
			}
			if allDone(batch) {
				return // fully resumed: no worker slot needed
			}
			releaseWorker, err := s.acquireWorker(r.Context())
			if err != nil {
				for ci := range batch {
					if batch[ci].Result == nil {
						batch[ci].Error = fmt.Sprintf("batch canceled: %v", err)
						batch[ci].ErrorKind = "canceled"
					}
				}
				return
			}
			defer releaseWorker()
			s.runBatch(r.Context(), app, req, batch, timeout, jr)
		}(ai, app)
	}
	wg.Wait()
	wall := time.Since(start)

	failed, skipped, resumed := 0, 0, 0
	for i := range cells {
		switch {
		case cells[i].Error != "":
			failed++
		case cells[i].Skipped != "":
			skipped++
		case cells[i].Resumed:
			resumed++
		}
	}
	s.log.Info("sweep", "apps", len(apps), "configs", len(req.Configs), "cells", len(cells),
		"failed", failed, "skipped", skipped, "resumed", resumed, "shard", req.Shard, "wall_ms", wall.Milliseconds())
	writeJSON(w, http.StatusOK, SweepResponse{Cells: cells, WallMs: float64(wall.Microseconds()) / 1e3})
}

// claimSweep registers a sweep_id as in flight; false means another
// request holds it.
func (s *Server) claimSweep(id string) bool {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if _, busy := s.activeSweeps[id]; busy {
		return false
	}
	s.activeSweeps[id] = struct{}{}
	return true
}

func (s *Server) releaseSweep(id string) {
	s.sweepMu.Lock()
	delete(s.activeSweeps, id)
	s.sweepMu.Unlock()
}

// trackJournal registers a live journal handle for Close.
func (s *Server) trackJournal(id string, jr *sweepJournal) {
	s.sweepMu.Lock()
	s.openJournals[id] = jr
	s.sweepMu.Unlock()
}

// untrackJournal closes a sweep's journal (fsync included) and drops it
// from the registry; append errors already counted, so only the close
// failure is reported here.
func (s *Server) untrackJournal(id string, jr *sweepJournal) {
	s.sweepMu.Lock()
	delete(s.openJournals, id)
	s.sweepMu.Unlock()
	if err := jr.close(); err != nil {
		s.met.JournalErrors.Add(1)
		s.log.Error("closing sweep journal", "sweep_id", id, "err", err.Error())
	}
}

// allDone reports whether every cell of a batch already has a result.
func allDone(batch []SweepCell) bool {
	for i := range batch {
		if batch[i].Result == nil {
			return false
		}
	}
	return true
}

// runBatch executes one application's outstanding cells sequentially on
// the calling worker, each under the full recovery stack: breaker
// admission (a quarantined cell is skipped, not attempted), bounded
// retries with backoff for retryable failures, structured per-cell
// errors, and a journal append for every success. The workload is
// materialized (or LRU-hit) once for the whole batch.
func (s *Server) runBatch(ctx context.Context, app string, req SweepRequest, batch []SweepCell, timeout time.Duration, jr *sweepJournal) {
	prof, err := scaledProfile(app, req.Scale)
	if err != nil {
		for ci := range batch {
			if batch[ci].Result == nil {
				batch[ci].Error = err.Error()
				batch[ci].ErrorKind = "config"
			}
		}
		return
	}
	for ci := range batch {
		cell := &batch[ci]
		if cell.Result != nil {
			continue // resumed from the journal
		}
		if ctx.Err() != nil {
			// The client is gone: stop burning worker time. Journaled
			// cells survive for the resubmission.
			cell.Error = fmt.Sprintf("batch canceled: %v", ctx.Err())
			cell.ErrorKind = "canceled"
			continue
		}
		cfg, err := cellConfig(cell.Config, req.Sched, req.MaxEvents, req.MaxPending)
		if err != nil {
			cell.Error = err.Error()
			cell.ErrorKind = "config"
			continue
		}
		key := app + "/" + cfg.Name
		var res esp.Result
		out := s.exec.Run(ctx, key, func(attempt int) error {
			// Every cell goes through the runner's cache: the first call
			// materializes, the rest of the batch hits the same arena.
			var rerr error
			res, rerr = s.runner.RunCell("sweep/"+key, prof, cfg, timeout)
			if rerr != nil {
				if errors.Is(rerr, sim.ErrTimeout) {
					s.met.Timeouts.Add(1)
				}
				s.log.Warn("sweep cell", "cell", key, "attempt", attempt, "err", rerr.Error())
			}
			return rerr
		})
		cell.Attempts = out.Attempts
		if out.Skipped {
			cell.Skipped = "breaker_open"
			continue
		}
		if out.Err != nil {
			cell.Error = out.Err.Error()
			cell.ErrorKind = errKind(out.Err)
			continue
		}
		cell.Result = &res
		if err := jr.append(app, cell.Config, res); err != nil {
			s.met.JournalErrors.Add(1)
			s.log.Error("sweep journal append", "cell", key, "err", err.Error())
		}
	}
}

// journalzResponse is the GET /journalz view of one sweep journal: the
// header meta plus the "app/config" cells already journaled. This is
// the coordinator's handoff probe — when a worker dies mid-shard, a
// peek at its journal (over HTTP here, or straight off a shared
// checkpoint dir) says which cells are already durable and carries the
// digest to check before the rest of the shard resumes on a peer.
type journalzResponse struct {
	Meta  checkpoint.Meta `json:"meta"`
	Cells []string        `json:"cells"`
	Torn  bool            `json:"torn,omitempty"`
}

func (s *Server) handleJournalz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	id := r.URL.Query().Get("sweep_id")
	if id == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("\"sweep_id\" query parameter is required"))
		return
	}
	if err := validateID("sweep_id", id); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.opt.CheckpointDir == "" {
		writeError(w, http.StatusNotFound, fmt.Errorf("checkpointing is disabled on this daemon"))
		return
	}
	s.met.JournalPeeks.Add(1)
	meta, records, torn, err := checkpoint.Peek(filepath.Join(s.opt.CheckpointDir, id+".espj"))
	switch {
	case errors.Is(err, os.ErrNotExist):
		writeError(w, http.StatusNotFound, fmt.Errorf("no journal for sweep %q", id))
		return
	case errors.Is(err, checkpoint.ErrCorrupt):
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := journalzResponse{Meta: meta, Cells: make([]string, 0, len(records)), Torn: torn}
	for _, raw := range records {
		var rec journalRecord
		if json.Unmarshal(raw, &rec) == nil {
			resp.Cells = append(resp.Cells, rec.App+"/"+rec.Config)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	snap := s.met.Snapshot()
	snap.Node = s.opt.Name
	perf := s.runner.Perf()
	snap.Engine = metrics.Engine{
		Cells:          perf.Cells,
		WorkloadBuilds: perf.WorkloadBuilds,
		WorkloadReuses: perf.WorkloadReuses,
		WorkloadEvicts: perf.WorkloadEvicts,
		MachineBuilds:  perf.MachineBuilds,
		MachineReuses:  perf.MachineReuses,
		BuildWallMs:    perf.BuildWall.Milliseconds(),
		SimWallMs:      perf.SimWall.Milliseconds(),
	}
	if perf.SchedCells > 0 {
		se := &metrics.SchedEngine{
			Cells:              perf.SchedCells,
			Events:             perf.SchedEvents,
			Deadlined:          perf.Deadlined,
			DeadlineMisses:     perf.DeadlineMisses,
			PriorityInversions: perf.PriorityInversions,
		}
		if perf.Deadlined > 0 {
			se.MissRate = float64(perf.DeadlineMisses) / float64(perf.Deadlined)
		}
		for c := 1; c < trace.NumEventClasses; c++ {
			cp := perf.SchedClasses[c]
			if cp.Events == 0 {
				continue
			}
			se.Classes = append(se.Classes, metrics.SchedEngineClass{
				Class:     trace.EventClass(c).String(),
				Events:    cp.Events,
				Deadlined: cp.Deadlined,
				Misses:    cp.Misses,
				P50:       cp.P50Sum / float64(cp.Events),
				P95:       cp.P95Sum / float64(cp.Events),
				P99:       cp.P99Sum / float64(cp.Events),
			})
		}
		snap.Engine.Sched = se
	}
	snap.Queue.Capacity = cap(s.tickets)
	snap.Queue.Workers = cap(s.work)
	breakers := s.exec.Breakers()
	snap.Resilience.Retries = s.exec.Retries()
	snap.Resilience.BreakerTrips = breakers.Trips()
	snap.Resilience.BreakerSkips = breakers.Skips()
	snap.Resilience.BreakerOpen = int64(breakers.OpenCount())
	writeJSON(w, http.StatusOK, snap)
}

type healthResponse struct {
	Status   string `json:"status"`
	UptimeMs int64  `json:"uptime_ms"`
}

// handleHealthz is liveness: the process is up and serving — 200 even
// while draining (a draining daemon is alive; killing it because a
// probe failed would abort the drain). Routability is /readyz's job.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	h := healthResponse{Status: "ok", UptimeMs: s.met.Snapshot().UptimeMs}
	if s.draining.Load() {
		h.Status = "draining"
	}
	writeJSON(w, http.StatusOK, h)
}

type readyResponse struct {
	Status      string `json:"status"`
	BreakerOpen int    `json:"breaker_open,omitempty"`
	PresetCells int    `json:"preset_cells,omitempty"`
}

// handleReadyz is readiness: 503 while draining, and 503 while the
// circuit breakers have quarantined more than half the preset
// (app, config) grid — a daemon whose engine is mostly quarantined
// should shed traffic to healthier replicas rather than answer sweeps
// full of breaker_open cells.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	resp := readyResponse{
		Status:      "ready",
		BreakerOpen: s.exec.Breakers().OpenCount(),
		PresetCells: len(appNames()) * len(esp.ConfigNames()),
	}
	code := http.StatusOK
	switch {
	case s.draining.Load():
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	case resp.BreakerOpen*2 > resp.PresetCells:
		resp.Status = "quarantined"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// statusClientGone is the nginx-convention 499 "client closed request":
// the client's context died while the request waited for a worker.
const statusClientGone = 499

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is gone; nothing left to signal
}
