// Package runahead implements runahead execution [16, 26, 25], the
// paper's main point of comparison. On an LLC *data* miss the core keeps
// fetching and pseudo-executing the instructions that follow the miss in
// the same event: independent loads and stores warm the data cache (their
// misses become prefetches), fetched lines warm the instruction cache,
// and branches can train the predictor.
//
// The paper highlights two structural limits that ESP escapes (§1):
// runahead stalls on instruction-cache misses (it cannot fetch past an
// LLC I-miss), and it only finds independent work in the shadow of the
// blocking load, a window limited by the miss-dependence chain. Both
// limits are modelled here.
package runahead

import (
	"fmt"

	"espsim/internal/branch"
	"espsim/internal/cpu"
	"espsim/internal/mem"
	"espsim/internal/trace"
	"espsim/internal/workload"
)

// Config parametrizes the runahead engine.
type Config struct {
	// WarmI installs fetched instruction lines into the hierarchy.
	WarmI bool
	// WarmD performs the data accesses of independent instructions,
	// turning their misses into prefetches. This is runahead's main
	// benefit and the only one enabled in the "Runahead-D" configuration
	// of Figure 11b.
	WarmD bool
	// TrainBP updates the branch predictor during runahead (with the PIR
	// and RAS checkpointed around the episode).
	TrainBP bool
	// DepFrac is the fraction of memory instructions in the runahead
	// window that are data-dependent on the blocking load (directly or
	// transitively) and therefore marked invalid and skipped.
	DepFrac float64
	// BranchDepFrac is the fraction of branches in the window whose
	// outcome depends on the blocking load: they resolve INV, so their
	// outcome is just the predictor's own guess (no training value) and
	// a wrong guess sends the rest of the episode down the wrong path.
	BranchDepFrac float64
	// WrongPathStop is the probability an INV branch derails the episode.
	WrongPathStop float64
	// BaseCPI is the pseudo-retirement rate during runahead: faster than
	// real retirement, since invalid results never stall execution.
	BaseCPI float64
	// EnterCost is the budget consumed checkpointing and redirecting
	// into runahead mode.
	EnterCost int
}

// Validate reports whether the configuration is coherent, naming the
// offending field. The zero Config is NOT valid: start from
// DefaultConfig or DataOnlyConfig.
func (c Config) Validate() error {
	switch {
	case c.BaseCPI <= 0:
		return fmt.Errorf("runahead: BaseCPI must be positive, got %g (start from DefaultConfig)", c.BaseCPI)
	case c.DepFrac < 0 || c.DepFrac > 1:
		return fmt.Errorf("runahead: DepFrac must be in [0,1], got %g", c.DepFrac)
	case c.BranchDepFrac < 0 || c.BranchDepFrac > 1:
		return fmt.Errorf("runahead: BranchDepFrac must be in [0,1], got %g", c.BranchDepFrac)
	case c.WrongPathStop < 0 || c.WrongPathStop > 1:
		return fmt.Errorf("runahead: WrongPathStop must be in [0,1], got %g", c.WrongPathStop)
	case c.EnterCost < 0:
		return fmt.Errorf("runahead: EnterCost must be non-negative, got %d", c.EnterCost)
	}
	return nil
}

// DefaultConfig returns the full runahead configuration used in Figure 9.
func DefaultConfig() Config {
	return Config{
		WarmI: true, WarmD: true, TrainBP: true,
		DepFrac: 0.25, BranchDepFrac: 0.10, WrongPathStop: 0.25,
		BaseCPI: 0.22, EnterCost: 4,
	}
}

// DataOnlyConfig returns the "Runahead-D" configuration of Figure 11b:
// warm the data cache only, leave the predictor untouched.
func DataOnlyConfig() Config {
	c := DefaultConfig()
	c.WarmI, c.TrainBP = false, false
	return c
}

// Stats counts runahead activity.
type Stats struct {
	// Episodes counts entered runahead windows; PreExecInsts the
	// pseudo-executed instructions (they cost energy, Figure 14).
	Episodes     int64
	PreExecInsts int64
	// StoppedOnIMiss counts episodes cut short by an LLC instruction
	// miss — the structural limit ESP does not have.
	StoppedOnIMiss int64
}

// Engine implements cpu.Assist.
type Engine struct {
	Cfg  Config            //esp:immutable
	Hier *mem.Hierarchy    //esp:immutable
	BP   *branch.Predictor //esp:immutable

	// Stats accumulates across the run.
	Stats Stats

	cur   []trace.Inst
	curEv trace.Event
}

// New returns a runahead engine over the shared hierarchy and predictor.
func New(cfg Config, h *mem.Hierarchy, bp *branch.Predictor) *Engine {
	return &Engine{Cfg: cfg, Hier: h, BP: bp}
}

// Reset restores the engine's run state (statistics and the
// current-event tracking) to its just-constructed values. The shared
// hierarchy and predictor are reset by their owners.
func (e *Engine) Reset() {
	e.Stats = Stats{}
	e.cur, e.curEv = nil, trace.Event{}
}

// EventStart implements cpu.Assist.
func (e *Engine) EventStart(ev trace.Event, insts []trace.Inst, _ []trace.Event) {
	e.cur, e.curEv = insts, ev
}

// EventEnd implements cpu.Assist.
func (e *Engine) EventEnd(trace.Event) { e.cur = nil }

// OnInst implements cpu.Assist: runahead does no per-instruction work
// (all activity happens inside stall windows), so it asks never to be
// called again this event.
func (e *Engine) OnInst(int) int { return int(^uint(0) >> 1) }

// CorrectBranch implements cpu.Assist: runahead has no deferred
// prediction mechanism; its predictor training acts through the shared
// tables directly.
func (e *Engine) CorrectBranch(int, trace.Inst) bool { return false }

// OnStall implements cpu.Assist: pseudo-execute the instructions that
// follow the blocking access until the budget runs out, the event ends,
// or fetch blocks on an LLC instruction miss.
func (e *Engine) OnStall(kind cpu.StallKind, idx int, budget int) bool {
	if kind == cpu.StallI || e.cur == nil {
		// Runahead is triggered by data misses only; an instruction miss
		// leaves the front end empty with nothing to pre-execute.
		return false
	}
	b := float64(budget - e.Cfg.EnterCost)
	if b <= 0 {
		return false
	}
	e.Stats.Episodes++
	var (
		ras       branch.RASState
		savedPIR  uint64
		fetchLine uint64
		haveLine  bool
		cur       = e.cur
		baseCPI   = e.Cfg.BaseCPI
		preInsts  int64
	)
	if e.Cfg.TrainBP {
		ras = e.BP.SnapshotRAS()
		savedPIR = e.BP.PIR()
	}
window:
	for j := idx + 1; j < len(cur) && b > 0; j++ {
		in := &cur[j]
		b -= baseCPI
		preInsts++

		if l := trace.Line(in.PC); !haveLine || l != fetchLine {
			haveLine, fetchLine = true, l
			// Runahead fetches through the normal front end: L1-I hits
			// are free; L2 hits cost their latency; an LLC instruction
			// miss blocks fetch and ends the episode.
			if !e.Hier.L1I.Probe(in.PC) {
				lat, llcMiss := e.Hier.FillLatency(in.PC)
				if llcMiss {
					e.Stats.StoppedOnIMiss++
					break window
				}
				b -= float64(lat)
				if e.Cfg.WarmI {
					e.Hier.PrefetchI(in.PC)
				}
			}
		}

		switch in.Kind {
		case trace.Branch:
			if dependent(e.curEv.Seed, idx, j, e.Cfg.BranchDepFrac) {
				// The branch's input is INV: runahead follows the
				// predictor's guess. A wrong guess derails the episode
				// onto a wrong path; either way there is nothing to
				// learn from it.
				if wrongPath(e.curEv.Seed, idx, j, e.Cfg.WrongPathStop) {
					break window
				}
				continue
			}
			if e.Cfg.TrainBP {
				e.BP.PredictUpdate(in)
			}
			if in.Taken {
				haveLine = false
			}
		case trace.Load, trace.Store:
			if !e.Cfg.WarmD {
				continue
			}
			// Instructions dependent on the blocking load are invalid in
			// runahead mode and perform no access.
			if dependent(e.curEv.Seed, idx, j, e.Cfg.DepFrac) {
				continue
			}
			// Misses under runahead do not block; they become prefetches.
			e.Hier.AccessD(in.Addr, in.Kind == trace.Store)
		}
	}
	e.Stats.PreExecInsts += preInsts
	if e.Cfg.TrainBP {
		e.BP.RestoreRAS(ras)
		e.BP.SetPIR(savedPIR)
	}
	return true
}

// wrongPath deterministically decides whether an INV branch derailed the
// episode.
func wrongPath(seed uint64, missIdx, instIdx int, p float64) bool {
	h := workload.Hash2(seed^0x77A7, uint64(missIdx)<<32|uint64(uint32(instIdx)))
	return float64(h%1000) < p*1000
}

// dependent deterministically marks a fraction of the runahead window's
// memory instructions as transitively dependent on the blocking load.
func dependent(seed uint64, missIdx, instIdx int, frac float64) bool {
	h := workload.Hash2(seed, uint64(missIdx)<<32|uint64(uint32(instIdx)))
	return float64(h%1000) < frac*1000
}
