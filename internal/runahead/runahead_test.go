package runahead

import (
	"testing"

	"espsim/internal/branch"
	"espsim/internal/cpu"
	"espsim/internal/mem"
	"espsim/internal/trace"
)

func mkEngine(cfg Config) (*Engine, *mem.Hierarchy, *branch.Predictor) {
	h := mem.DefaultHierarchy()
	bp := branch.New()
	return New(cfg, h, bp), h, bp
}

// eventWithColdLoads builds an event whose tail contains cold loads.
func eventWithColdLoads() []trace.Inst {
	var insts []trace.Inst
	pc := uint64(0x1000)
	for i := 0; i < 400; i++ {
		in := trace.Inst{PC: pc, Kind: trace.ALU}
		if i%25 == 10 {
			in.Kind = trace.Load
			in.Addr = 0x8_0000_0000 + uint64(i)*4096
		}
		insts = append(insts, in)
		pc += trace.InstBytes
	}
	return insts
}

func TestIgnoresInstructionStalls(t *testing.T) {
	e, _, _ := mkEngine(DefaultConfig())
	e.EventStart(trace.Event{}, eventWithColdLoads(), nil)
	if e.OnStall(cpu.StallI, 0, 100) {
		t.Fatal("runahead must not act on instruction-miss stalls")
	}
	if e.Stats.Episodes != 0 {
		t.Fatal("episode counted for an I-stall")
	}
}

func TestWarmsDataCache(t *testing.T) {
	e, h, _ := mkEngine(DefaultConfig())
	insts := eventWithColdLoads()
	// Warm the code lines so fetch doesn't block the episode.
	for _, in := range insts {
		h.L2.Install(in.PC, false)
		h.L1I.Install(in.PC, false)
	}
	e.EventStart(trace.Event{Seed: 7}, insts, nil)
	if !e.OnStall(cpu.StallD, 10, 120) {
		t.Fatal("episode did not run")
	}
	if e.Stats.Episodes != 1 || e.Stats.PreExecInsts == 0 {
		t.Fatalf("stats: %+v", e.Stats)
	}
	// At least one of the following cold loads must now be resident.
	warmed := 0
	for i := 11; i < len(insts); i++ {
		if insts[i].Kind == trace.Load && h.L1D.Probe(insts[i].Addr) {
			warmed++
		}
	}
	if warmed == 0 {
		t.Fatal("runahead warmed nothing")
	}
}

func TestStopsOnLLCInstructionMiss(t *testing.T) {
	e, h, _ := mkEngine(DefaultConfig())
	insts := eventWithColdLoads()
	// Warm only the first few lines: fetch hits a cold line quickly.
	for _, in := range insts[:64] {
		h.L2.Install(in.PC, false)
		h.L1I.Install(in.PC, false)
	}
	e.EventStart(trace.Event{Seed: 7}, insts, nil)
	e.OnStall(cpu.StallD, 0, 500)
	if e.Stats.StoppedOnIMiss != 1 {
		t.Fatalf("StoppedOnIMiss = %d, want 1", e.Stats.StoppedOnIMiss)
	}
}

func TestDataOnlyConfigLeavesPredictorAlone(t *testing.T) {
	cfg := DataOnlyConfig()
	if cfg.TrainBP || cfg.WarmI || !cfg.WarmD {
		t.Fatalf("DataOnlyConfig wrong: %+v", cfg)
	}
	e, h, bp := mkEngine(cfg)
	pirBefore := bp.PIR()
	insts := eventWithColdLoads()
	for _, in := range insts {
		h.L2.Install(in.PC, false)
		h.L1I.Install(in.PC, false)
	}
	e.EventStart(trace.Event{Seed: 9}, insts, nil)
	e.OnStall(cpu.StallD, 0, 200)
	if bp.PIR() != pirBefore {
		t.Fatal("Runahead-D touched the predictor")
	}
}

func TestPIRAndRASRestored(t *testing.T) {
	e, h, bp := mkEngine(DefaultConfig())
	var insts []trace.Inst
	pc := uint64(0x1000)
	for i := 0; i < 200; i++ {
		in := trace.Inst{PC: pc, Kind: trace.ALU}
		if i%10 == 5 {
			in = trace.Inst{PC: pc, Kind: trace.Branch, Taken: true, Call: true, Addr: pc + 4}
		}
		insts = append(insts, in)
		pc = in.NextPC()
	}
	for _, in := range insts {
		h.L2.Install(in.PC, false)
		h.L1I.Install(in.PC, false)
	}
	pir := bp.PIR()
	ras := bp.SnapshotRAS()
	e.EventStart(trace.Event{Seed: 5}, insts, nil)
	e.OnStall(cpu.StallD, 0, 300)
	if e.Stats.PreExecInsts == 0 {
		t.Fatal("episode did not run")
	}
	if bp.PIR() != pir {
		t.Fatal("PIR not restored after runahead")
	}
	if bp.SnapshotRAS() != ras {
		t.Fatal("RAS not restored after runahead")
	}
}

func TestBudgetBoundsWindow(t *testing.T) {
	e, h, _ := mkEngine(DefaultConfig())
	insts := eventWithColdLoads()
	for _, in := range insts {
		h.L2.Install(in.PC, false)
		h.L1I.Install(in.PC, false)
	}
	e.EventStart(trace.Event{Seed: 3}, insts, nil)
	e.OnStall(cpu.StallD, 0, 50)
	small := e.Stats.PreExecInsts
	e2, h2, _ := mkEngine(DefaultConfig())
	for _, in := range insts {
		h2.L2.Install(in.PC, false)
		h2.L1I.Install(in.PC, false)
	}
	e2.EventStart(trace.Event{Seed: 3}, insts, nil)
	e2.OnStall(cpu.StallD, 0, 500)
	if small >= e2.Stats.PreExecInsts {
		t.Fatalf("larger budget should pre-execute more: %d vs %d", small, e2.Stats.PreExecInsts)
	}
}

func TestTinyBudgetDeclined(t *testing.T) {
	e, _, _ := mkEngine(DefaultConfig())
	e.EventStart(trace.Event{}, eventWithColdLoads(), nil)
	if e.OnStall(cpu.StallD, 0, e.Cfg.EnterCost) {
		t.Fatal("budget smaller than the entry cost must be declined")
	}
}

func TestEventEndClearsWindow(t *testing.T) {
	e, _, _ := mkEngine(DefaultConfig())
	ev := trace.Event{}
	e.EventStart(ev, eventWithColdLoads(), nil)
	e.EventEnd(ev)
	if e.OnStall(cpu.StallD, 0, 200) {
		t.Fatal("no current event: stall must be declined")
	}
}

func TestDependentDeterministic(t *testing.T) {
	for i := 0; i < 50; i++ {
		if dependent(42, 10, i, 0.3) != dependent(42, 10, i, 0.3) {
			t.Fatal("dependence marking not deterministic")
		}
	}
	// Fraction roughly honoured.
	n, hits := 10000, 0
	for i := 0; i < n; i++ {
		if dependent(42, 10, i, 0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("dependent fraction %.3f, want ~0.3", frac)
	}
}
