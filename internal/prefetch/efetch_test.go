package prefetch

import (
	"testing"

	"espsim/internal/mem"
	"espsim/internal/trace"
)

func lines(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*trace.LineBytes
	}
	return out
}

func feed(e *EFetch, seq []uint64) {
	for _, l := range seq {
		e.OnFetch(l, mem.LevelMem)
	}
}

func TestEFetchReplaysLearnedSequence(t *testing.T) {
	h := mem.DefaultHierarchy()
	e := NewEFetch(h)
	seq := lines(0x10000, 20)

	e.BeginEvent(7)
	feed(e, seq)
	if e.Stats.Issued != 0 {
		t.Fatal("first execution has nothing to replay")
	}
	e.BeginEvent(7) // second instance of the same handler
	if e.Stats.Issued == 0 {
		t.Fatal("no prefetches primed at event start")
	}
	// The first lines must already be prefetched.
	if !h.L1I.Probe(seq[0]) || !h.L1I.Probe(seq[1]) {
		t.Fatal("primed prefetches missing from L1I")
	}
	feed(e, seq[:10])
	if !h.L1I.Probe(seq[14]) {
		t.Fatal("replay did not stay ahead of the demand stream")
	}
}

func TestEFetchPerHandlerSequences(t *testing.T) {
	h := mem.DefaultHierarchy()
	e := NewEFetch(h)
	a, b := lines(0x10000, 10), lines(0x90000, 10)
	e.BeginEvent(1)
	feed(e, a)
	e.BeginEvent(2)
	feed(e, b)
	e.BeginEvent(1)
	if h.L1I.Probe(b[0]) {
		t.Fatal("handler 1's replay leaked handler 2's lines")
	}
	if !h.L1I.Probe(a[0]) {
		t.Fatal("handler 1's own sequence not replayed")
	}
}

func TestEFetchToleratesLocalDivergence(t *testing.T) {
	h := mem.DefaultHierarchy()
	e := NewEFetch(h)
	seq := lines(0x10000, 30)
	e.BeginEvent(3)
	feed(e, seq)
	e.BeginEvent(3)
	// This instance skips a few lines in the middle.
	variant := append(append([]uint64{}, seq[:5]...), seq[9:]...)
	feed(e, variant)
	if !h.L1I.Probe(seq[25]) {
		t.Fatal("replay gave up after a local divergence")
	}
}

func TestEFetchBudgetEviction(t *testing.T) {
	h := mem.DefaultHierarchy()
	e := NewEFetch(h)
	e.MaxLines = 30
	e.BeginEvent(1)
	feed(e, lines(0x10000, 20))
	e.BeginEvent(2)
	feed(e, lines(0x90000, 20))
	e.BeginEvent(3) // commits handler 2; must evict handler 1 (LRU)
	if e.StoredLines() > e.MaxLines {
		t.Fatalf("budget exceeded: %d lines stored", e.StoredLines())
	}
}

func feedPIF(p *PIF, seq []uint64, levels []mem.Level) {
	for i, l := range seq {
		lvl := mem.LevelMem
		if levels != nil {
			lvl = levels[i]
		}
		p.OnFetch(l, lvl)
	}
}

func TestPIFStreamsAfterRepeat(t *testing.T) {
	h := mem.DefaultHierarchy()
	p := NewPIF(h)
	seq := lines(0x40000, 30)
	feedPIF(p, seq, nil) // record the stream (all misses)
	if p.Stats.Issued != 0 {
		t.Fatal("nothing should replay on first sight")
	}
	// The same stream recurs: the first miss triggers a replay of its
	// recorded successors.
	p.OnFetch(seq[0], mem.LevelMem)
	if p.Stats.Issued == 0 {
		t.Fatal("repeat miss did not trigger a stream")
	}
	if !h.L1I.Probe(seq[1]) || !h.L1I.Probe(seq[3]) {
		t.Fatal("stream successors not prefetched")
	}
}

func TestPIFAdvancesOnHits(t *testing.T) {
	h := mem.DefaultHierarchy()
	p := NewPIF(h)
	seq := lines(0x40000, 40)
	feedPIF(p, seq, nil)
	p.OnFetch(seq[0], mem.LevelMem) // trigger
	issued := p.Stats.Issued
	// Demand hits walking the stream keep the replay ahead.
	for _, l := range seq[1:20] {
		p.OnFetch(l, mem.LevelL1)
	}
	if p.Stats.Issued <= issued {
		t.Fatal("stream did not advance with demand hits")
	}
	if !h.L1I.Probe(seq[22]) {
		t.Fatal("deep stream line not prefetched")
	}
}

func TestPIFHistoryWrapsSafely(t *testing.T) {
	h := mem.DefaultHierarchy()
	p := NewPIF(h)
	p.HistorySize = 64
	for rep := 0; rep < 4; rep++ {
		feedPIF(p, lines(uint64(0x40000+rep*0x10000), 40), nil)
	}
	if len(p.hist) != 64 {
		t.Fatalf("history grew past its bound: %d", len(p.hist))
	}
	// Current-generation index entries must stay within the live history;
	// stale-generation entries are dead by construction and ignored.
	for l, v := range p.index {
		if v&^(1<<32-1) != p.gen {
			continue
		}
		pos := int(uint32(v))
		if pos >= len(p.hist) || p.hist[pos] != l {
			t.Fatalf("stale index entry %#x -> %d", l, pos)
		}
	}
}

func TestPIFUnknownMissNoStream(t *testing.T) {
	h := mem.DefaultHierarchy()
	p := NewPIF(h)
	p.OnFetch(0x40000, mem.LevelMem)
	if p.Stats.Issued != 0 {
		t.Fatal("cold miss with empty history must not prefetch")
	}
}
