package prefetch

import (
	"espsim/internal/mem"
	"espsim/internal/trace"
)

// PIF is a simplified model of Proactive Instruction Fetch (Ferdman et
// al., MICRO 2011), the temporal-streaming instruction prefetcher the
// paper compares against in §7. PIF records the retire-order stream of
// instruction cache lines in a large global history buffer; when a
// demand fetch matches a line seen before, it replays the lines that
// followed it last time as prefetches.
//
// PIF is powerful but pays for it in state — the paper quotes ~15× ESP's
// hardware budget for its history and index — and, unlike ESP, its
// history interleaves all events' streams, so the fine-grained event
// interleaving of asynchronous programs dilutes its streams.
type PIF struct {
	h *mem.Hierarchy //esp:immutable

	// HistorySize bounds the circular history (in line records);
	// StreamDegree is how many successor lines are replayed per trigger.
	HistorySize  int //esp:immutable
	StreamDegree int //esp:immutable

	hist []uint64
	head int
	// index maps line -> most recent history position, with the position
	// tagged by the generation (gen<<32 | pos) it was written in. Reset
	// bumps gen instead of clearing the map: entries from earlier replays
	// read as absent but their buckets stay allocated, so a warm replay
	// repopulates the same key set without touching the heap.
	index map[uint64]uint64 //esp:exempt invalidated wholesale by Reset's generation bump: stale-gen values read as absent
	gen   uint64
	last  uint64

	// stream replay state: position in history being followed.
	streamPos int
	streaming bool

	// Stats counts issued prefetches.
	Stats Stats
}

// NewPIF returns a PIF with the paper-comparable budget (~48K history
// records ≈ 190 KB, 15× ESP).
func NewPIF(h *mem.Hierarchy) *PIF {
	return &PIF{
		h:            h,
		HistorySize:  48 << 10,
		StreamDegree: 6,
		index:        make(map[uint64]uint64),
	}
}

// Reset restores the prefetcher to its just-constructed cold state,
// keeping the history buffer and index map allocated. Invalidating the
// index is one generation bump, not a map clear.
func (p *PIF) Reset() {
	p.hist = p.hist[:0]
	p.head = 0
	p.gen += 1 << 32
	p.last = 0
	p.streamPos, p.streaming = 0, false
	p.Stats = Stats{}
}

// BeginEvent implements cpu.FetchObserver; PIF has no notion of events —
// its history is one global stream.
func (p *PIF) BeginEvent(int) {}

// OnFetch implements cpu.FetchObserver: append to the history and, on an
// L1 miss, look the line up in the history and stream its successors.
func (p *PIF) OnFetch(addr uint64, level mem.Level) {
	l := trace.Line(addr)
	if l == p.last {
		return
	}
	p.last = l

	v, ok := p.index[l]
	seen := ok && v&^(1<<32-1) == p.gen
	prev := int(uint32(v))

	// Record into the circular history.
	if len(p.hist) < p.HistorySize {
		p.hist = append(p.hist, l)
		p.index[l] = p.gen | uint64(len(p.hist)-1)
	} else {
		old := p.hist[p.head]
		if p.index[old] == p.gen|uint64(p.head) {
			delete(p.index, old)
		}
		p.hist[p.head] = l
		p.index[l] = p.gen | uint64(p.head)
		p.head = (p.head + 1) % p.HistorySize
	}

	if level == mem.LevelL1 {
		// Hits keep an active stream advancing.
		if p.streaming {
			p.advance(prev, seen)
		}
		return
	}
	// A miss triggers a new stream from the line's previous occurrence.
	if seen {
		p.streamPos = prev
		p.streaming = true
		p.replay()
	} else {
		p.streaming = false
	}
}

// advance follows the active stream while the demand stream stays within
// a short window of it (temporal streams tolerate small reorderings).
func (p *PIF) advance(prev int, seen bool) {
	if !seen || len(p.hist) == 0 {
		return
	}
	const window = 16
	n := len(p.hist)
	dist := (prev - p.streamPos + n) % n
	if dist > 0 && dist <= window {
		p.streamPos = prev
		p.replay()
	}
}

// replay prefetches the StreamDegree history successors of streamPos.
func (p *PIF) replay() {
	n := len(p.hist)
	if n == 0 {
		return
	}
	pos := p.streamPos
	for k := 0; k < p.StreamDegree; k++ {
		pos = (pos + 1) % n
		if pos == p.head && n == p.HistorySize {
			break // reached the write frontier
		}
		p.h.PrefetchI(p.hist[pos])
		p.Stats.Issued++
	}
}
