package prefetch

import (
	"testing"

	"espsim/internal/mem"
	"espsim/internal/trace"
)

func hier() *mem.Hierarchy {
	h := mem.DefaultHierarchy()
	h.NearTimelyPct = 100 // deterministic timeliness for tests
	return h
}

func TestNextLineIPrefetchesSuccessor(t *testing.T) {
	h := hier()
	p := NewNextLineI(h)
	h.FetchI(0x1000) // warm the line itself
	p.OnFetch(0x1000)
	if !h.L2.Probe(0x1040) {
		t.Fatal("next line not prefetched into L2")
	}
	if p.Stats.Issued != 1 {
		t.Fatalf("Issued = %d", p.Stats.Issued)
	}
}

func TestNextLineIOncePerLine(t *testing.T) {
	h := hier()
	p := NewNextLineI(h)
	p.OnFetch(0x1000)
	p.OnFetch(0x1004)
	p.OnFetch(0x1038)
	if p.Stats.Issued != 1 {
		t.Fatalf("Issued = %d, want 1 for same-line fetches", p.Stats.Issued)
	}
	p.OnFetch(0x1040)
	if p.Stats.Issued != 2 {
		t.Fatalf("Issued = %d after crossing a line", p.Stats.Issued)
	}
}

func TestNextLineITimeliness(t *testing.T) {
	h := hier()
	p := NewNextLineI(h)
	// Cold successor: L2 only.
	p.OnFetch(0x5000)
	if h.L1I.Probe(0x5040) {
		t.Fatal("cold next-line prefetch must not reach L1I")
	}
	// Now that 0x5040 is L2-resident, a repeat prefetch reaches L1I.
	p.OnFetch(0x5000 + 2*trace.LineBytes)
	p.OnFetch(0x5000)
	if !h.L1I.Probe(0x5040) {
		t.Fatal("warm, timely next-line prefetch should reach L1I")
	}
}

func TestDCURequiresStreak(t *testing.T) {
	h := hier()
	p := NewDCU(h)
	for i := 0; i < streakLen-1; i++ {
		p.OnAccess(0x8000)
	}
	if p.Stats.Issued != 0 {
		t.Fatal("DCU fired before the streak completed")
	}
	p.OnAccess(0x8000)
	if p.Stats.Issued != 1 {
		t.Fatal("DCU should fire after 4 consecutive same-line accesses")
	}
	if !h.L2.Probe(0x8040) {
		t.Fatal("DCU prefetch did not land")
	}
}

func TestDCUStreakResetOnLineChange(t *testing.T) {
	h := hier()
	p := NewDCU(h)
	p.OnAccess(0x8000)
	p.OnAccess(0x8000)
	p.OnAccess(0x9000) // breaks the streak
	p.OnAccess(0x8000)
	p.OnAccess(0x8000)
	p.OnAccess(0x8000)
	if p.Stats.Issued != 0 {
		t.Fatal("streak should have been reset by the interleaved access")
	}
}

func TestStrideDetectsStride(t *testing.T) {
	h := hier()
	p := NewStride(h)
	pc := uint64(0x1234)
	for i := 0; i < 4; i++ {
		p.OnAccess(pc, uint64(0x10000+i*256))
	}
	if p.Stats.Issued == 0 {
		t.Fatal("stride prefetcher never fired on a perfect stride")
	}
	// Prefetches land two strides ahead.
	if !h.L2.Probe(0x10000 + 3*256 + 2*256) {
		t.Fatal("stride prefetch target missing")
	}
}

func TestStrideIgnoresRandom(t *testing.T) {
	h := hier()
	p := NewStride(h)
	pc := uint64(0x1234)
	addrs := []uint64{0x1000, 0x9000, 0x2000, 0x7000, 0x3000}
	for _, a := range addrs {
		p.OnAccess(pc, a)
	}
	if p.Stats.Issued != 0 {
		t.Fatalf("stride fired %d times on random addresses", p.Stats.Issued)
	}
}

func TestStrideZeroStrideSafe(t *testing.T) {
	h := hier()
	p := NewStride(h)
	for i := 0; i < 10; i++ {
		p.OnAccess(0x100, 0x8000) // same address every time
	}
	if p.Stats.Issued != 0 {
		t.Fatal("zero stride must not prefetch")
	}
}

func TestStridePerPCTracking(t *testing.T) {
	h := hier()
	p := NewStride(h)
	// Two PCs with different strides, interleaved: both must be detected.
	for i := 0; i < 5; i++ {
		p.OnAccess(0x100, uint64(0x10000+i*128))
		p.OnAccess(0x200, uint64(0x80000+i*512))
	}
	if p.Stats.Issued < 4 {
		t.Fatalf("interleaved strides poorly tracked: %d issues", p.Stats.Issued)
	}
}
