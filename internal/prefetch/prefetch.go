// Package prefetch implements the baseline hardware prefetchers the paper
// compares against and composes with (Figure 7, §5): a next-line
// instruction prefetcher [5], an Intel DCU-style next-line data prefetcher
// that waits for consecutive accesses to the same line before prefetching
// [15], and a 256-entry PC-indexed stride prefetcher.
package prefetch

import (
	"espsim/internal/mem"
	"espsim/internal/trace"
)

// Stats counts prefetch decisions (installation usefulness is tracked by
// the caches themselves).
type Stats struct {
	// Issued counts prefetch requests sent to the hierarchy.
	Issued int64
}

// NextLineI is the next-line instruction prefetcher: every demand fetch of
// line L triggers a prefetch of line L+1.
type NextLineI struct {
	h        *mem.Hierarchy //esp:immutable
	lastLine uint64
	// Stats counts issued prefetches.
	Stats Stats
}

// NewNextLineI returns a next-line instruction prefetcher that installs
// into h.
func NewNextLineI(h *mem.Hierarchy) *NextLineI { return &NextLineI{h: h} }

// Reset restores the prefetcher to its just-constructed cold state.
func (p *NextLineI) Reset() {
	p.lastLine = 0
	p.Stats = Stats{}
}

// OnFetch observes a demand instruction fetch of addr.
func (p *NextLineI) OnFetch(addr uint64) {
	l := trace.Line(addr)
	if l == p.lastLine {
		return // still in the same line; already prefetched its successor
	}
	p.lastLine = l
	p.h.PrefetchINear(l + trace.LineBytes)
	p.Stats.Issued++
}

// DCU is Intel's next-line data prefetcher: it waits for streakLen
// consecutive accesses to the same data line, then prefetches the next
// line (§5).
type DCU struct {
	h      *mem.Hierarchy //esp:immutable
	line   uint64
	streak int
	// Stats counts issued prefetches.
	Stats Stats
}

// streakLen is the number of consecutive same-line accesses DCU requires.
const streakLen = 4

// NewDCU returns a DCU prefetcher installing into h.
func NewDCU(h *mem.Hierarchy) *DCU { return &DCU{h: h} }

// Reset restores the prefetcher to its just-constructed cold state.
func (p *DCU) Reset() {
	p.line, p.streak = 0, 0
	p.Stats = Stats{}
}

// OnAccess observes a demand data access.
func (p *DCU) OnAccess(addr uint64) {
	l := trace.Line(addr)
	if l != p.line {
		p.line = l
		p.streak = 1
		return
	}
	p.streak++
	if p.streak == streakLen {
		p.h.PrefetchDNear(l + trace.LineBytes)
		p.Stats.Issued++
	}
}

type strideEntry struct {
	tag    uint32
	last   uint64
	stride int64
	conf   uint8
	valid  bool
}

// Stride is a 256-entry PC-indexed stride data prefetcher (Figure 7 lists
// a 256-entry stride prefetcher alongside the next-line data prefetcher).
type Stride struct {
	h       *mem.Hierarchy //esp:immutable
	entries [256]strideEntry
	// Stats counts issued prefetches.
	Stats Stats
}

// NewStride returns a stride prefetcher installing into h.
func NewStride(h *mem.Hierarchy) *Stride { return &Stride{h: h} }

// Reset invalidates every table entry without reallocating the table.
func (p *Stride) Reset() {
	p.entries = [256]strideEntry{}
	p.Stats = Stats{}
}

// OnAccess observes a demand data access by the load/store at pc.
func (p *Stride) OnAccess(pc, addr uint64) {
	e := &p.entries[(pc>>2)%256]
	tag := uint32(pc >> 2)
	if !e.valid || e.tag != tag {
		*e = strideEntry{tag: tag, last: addr, valid: true}
		return
	}
	s := int64(addr) - int64(e.last)
	e.last = addr
	if s == 0 {
		return
	}
	if s == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = s
		e.conf = 0
	}
	if e.conf >= 2 {
		p.h.PrefetchDNear(uint64(int64(addr) + 2*e.stride))
		p.Stats.Issued++
	}
}
