package prefetch

import (
	"espsim/internal/mem"
	"espsim/internal/trace"
)

// EFetch is a simplified model of the event-signature instruction
// prefetcher the paper compares against in §7 ("EFetch: optimizing
// instruction fetch for event-driven web applications", Chadha et al.,
// PACT 2014). EFetch exploits the same observation as ESP — event-driven
// programs repeat handler types — but from the *past*: it records the
// sequence of instruction cache lines each handler type touched on its
// previous execution and replays it as prefetches on the next execution
// of the same handler, advancing with the demand fetch stream.
//
// Against ESP's ~13 KB, EFetch's signature tables cost tens of kilobytes
// (the paper quotes 3× ESP's budget), and its predictions come from a
// *different dynamic instance* of the handler, so per-event variation
// (this event's particular working set) degrades accuracy — the
// structural weakness ESP's pre-execution of the *actual* pending event
// avoids.
type EFetch struct {
	h *mem.Hierarchy //esp:immutable

	// Lookahead is how many predicted lines stay prefetched ahead of the
	// demand stream; MaxLines bounds the total stored lines (hardware
	// budget); MaxPerEvent bounds one handler's recorded sequence.
	Lookahead   int //esp:immutable
	MaxLines    int //esp:immutable
	MaxPerEvent int //esp:immutable

	seqs  map[int][]uint64 // handler -> last execution's line sequence
	lru   []int            // handlers in recency order (front = MRU)
	total int

	cur     int      // handler of the running event
	rec     []uint64 // lines recorded for the running event
	lastRec uint64

	pred    []uint64 // predicted sequence being replayed
	pos     int      // match position in pred
	issued  int      // prefetch frontier in pred
	matched bool

	// Stats counts issued prefetches.
	Stats Stats
}

// NewEFetch returns an EFetch with the paper-comparable default budget
// (~12K stored lines ≈ 39 KB of 26-bit line addresses, 3× ESP).
func NewEFetch(h *mem.Hierarchy) *EFetch {
	return &EFetch{
		h:           h,
		Lookahead:   8,
		MaxLines:    12 << 10,
		MaxPerEvent: 768,
		seqs:        make(map[int][]uint64),
		cur:         -1,
	}
}

// Reset restores the prefetcher to its just-constructed cold state,
// keeping the signature map, its per-handler sequence storage, and the
// recording buffers allocated: handlers repeat across replays, so a warm
// prefetcher re-records into the capacity it grew last time.
func (e *EFetch) Reset() {
	for h, s := range e.seqs {
		e.seqs[h] = s[:0]
	}
	e.lru = e.lru[:0]
	e.total = 0
	e.cur = -1
	e.rec = e.rec[:0]
	e.lastRec = 0
	e.pred = nil
	e.pos, e.issued, e.matched = 0, 0, false
	e.Stats = Stats{}
}

// BeginEvent implements cpu.FetchObserver: store the finished event's
// sequence, load the new handler's prediction, and prime the first
// prefetches (EFetch, like ESP, can start before the handler's first
// instruction).
func (e *EFetch) BeginEvent(handler int) {
	e.finish()
	e.cur = handler
	e.rec = e.rec[:0]
	e.lastRec = 0
	e.pred = e.seqs[handler]
	e.pos, e.issued, e.matched = 0, 0, len(e.pred) > 0
	e.touch(handler)
	e.issueAhead()
}

// OnFetch implements cpu.FetchObserver: record the demand line and
// advance the replay pointer when the demand stream matches the
// prediction (with a small resync window for skipped lines).
func (e *EFetch) OnFetch(addr uint64, _ mem.Level) {
	l := trace.Line(addr)
	if l != e.lastRec && len(e.rec) < e.MaxPerEvent {
		e.rec = append(e.rec, l)
		e.lastRec = l
	}
	if !e.matched {
		return
	}
	const resync = 16
	for k := 0; k < resync && e.pos+k < len(e.pred); k++ {
		if e.pred[e.pos+k] == l {
			e.pos += k + 1
			e.issueAhead()
			return
		}
	}
	// No match near the pointer: this instance took a locally different
	// path. Drift forward at the demand rate — handler instances share
	// most of their code even when block order differs — and resume
	// matching when the streams reconverge.
	if e.pos < len(e.pred) {
		e.pos++
		e.issueAhead()
	} else {
		e.matched = false
	}
}

// issueAhead keeps Lookahead predicted lines prefetched past the match
// pointer.
func (e *EFetch) issueAhead() {
	for e.issued < e.pos+e.Lookahead && e.issued < len(e.pred) {
		e.h.PrefetchI(e.pred[e.issued])
		e.issued++
		e.Stats.Issued++
	}
}

// finish commits the recorded sequence as the handler's new signature,
// evicting least-recently-used handlers past the line budget.
func (e *EFetch) finish() {
	if e.cur < 0 || len(e.rec) == 0 {
		return
	}
	old := len(e.seqs[e.cur])
	// Overwrite the handler's previous sequence in place: its capacity is
	// reused, so a warm replay records without touching the heap.
	seq := append(e.seqs[e.cur][:0], e.rec...)
	e.seqs[e.cur] = seq
	e.total += len(seq) - old
	for e.total > e.MaxLines && len(e.lru) > 0 {
		victim := e.lru[len(e.lru)-1]
		if victim == e.cur && len(e.lru) > 1 {
			victim = e.lru[len(e.lru)-2]
			e.lru = append(e.lru[:len(e.lru)-2], e.cur)
		} else {
			e.lru = e.lru[:len(e.lru)-1]
		}
		e.total -= len(e.seqs[victim])
		// Truncate rather than delete: the modeled hardware budget is
		// e.total (line records), which this frees in full; keeping the
		// slice's capacity lets the handler re-record allocation-free
		// when it comes around again.
		e.seqs[victim] = e.seqs[victim][:0]
		if victim == e.cur {
			break
		}
	}
}

// touch moves handler to the front of the recency list.
func (e *EFetch) touch(handler int) {
	for i, h := range e.lru {
		if h == handler {
			copy(e.lru[1:i+1], e.lru[:i])
			e.lru[0] = handler
			return
		}
	}
	e.lru = append(e.lru, 0)
	copy(e.lru[1:], e.lru)
	e.lru[0] = handler
}

// StoredLines reports the table occupancy (for hardware-budget tables).
func (e *EFetch) StoredLines() int { return e.total }
