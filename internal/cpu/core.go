// Package cpu is the trace-driven timing model of the simulated core
// (Figure 7: 4-wide out-of-order, 96-entry ROB, Pentium M branch
// predictor, 15-cycle misprediction penalty).
//
// The model is penalty-based: every retired instruction costs the
// dependency-limited base CPI, and microarchitectural events add exposed
// stall cycles on top — front-end instruction-miss stalls, branch
// misprediction flushes, and last-level-cache data misses that reach the
// head of the ROB. Exposed LLC-miss windows are offered to an Assist
// (runahead execution or ESP), which is exactly the hook the paper's
// technique lives behind: "Instead of stalling on long latency cache
// misses, ESP jumps ahead to pre-execute future events" (§1).
package cpu

import (
	"fmt"

	"espsim/internal/branch"
	"espsim/internal/mem"
	"espsim/internal/prefetch"
	"espsim/internal/trace"
)

// StallKind distinguishes the two LLC-miss stall sources.
type StallKind uint8

const (
	// StallI is a front-end stall: an instruction fetch missed the LLC.
	StallI StallKind = iota
	// StallD is a back-end stall: a data access missed the LLC and
	// reached the head of the ROB.
	StallD
)

// String names the stall kind.
func (k StallKind) String() string {
	if k == StallI {
		return "I"
	}
	return "D"
}

// Assist observes the normal execution and receives exposed stall windows.
// Implementations: runahead.Engine and core.ESP (the paper's technique).
// A nil Assist on the Core means a plain baseline.
type Assist interface {
	// EventStart announces that ev is about to execute normally. insts is
	// its full dynamic instruction stream, and pending lists the future
	// events currently visible in the software event queue (at most two).
	EventStart(ev trace.Event, insts []trace.Inst, pending []trace.Event)
	// EventEnd announces that ev has retired its last instruction.
	EventEnd(ev trace.Event)
	// OnInst is called before instruction idx of the current event
	// retires; assists use it to issue timely prefetches. It returns the
	// lowest future index at which it must be called again — idx+1 for
	// every instruction, math.MaxInt for not again this event — letting
	// the core skip the dispatch entirely while the assist has nothing
	// scheduled. The contract resets at EventStart: the core always calls
	// OnInst for instruction 0.
	OnInst(idx int) (nextWake int)
	// CorrectBranch reports whether the assist guarantees a correct
	// prediction for the branch at idx (ESP's just-in-time B-list
	// training, §3.6). The predictor is still trained on the outcome.
	CorrectBranch(idx int, in trace.Inst) bool
	// OnStall offers the assist an exposed stall window of budget cycles
	// starting at instruction idx. It returns true if the assist used the
	// window (the core then charges the pipeline-flush cost of returning
	// from speculative execution, §4.1).
	OnStall(kind StallKind, idx int, budget int) bool
}

// FetchObserver watches the demand instruction-fetch stream: event
// boundaries and the resolved level of every fetched line. The
// event-aware instruction prefetchers the paper compares against in §7
// (EFetch, PIF) hook in here.
type FetchObserver interface {
	// BeginEvent announces the handler type of the event about to run.
	BeginEvent(handler int)
	// OnFetch observes one demand fetch of addr's line, satisfied at
	// the given hierarchy level.
	OnFetch(addr uint64, level mem.Level)
}

// Config parametrizes the timing model.
type Config struct {
	// Width is the issue width; ROB the reorder-buffer capacity.
	Width int
	ROB   int
	// BaseCPI is the dependency-limited cycles per instruction with a
	// perfect memory system and predictor.
	BaseCPI float64
	// MispredictPenalty is the branch misprediction flush cost.
	MispredictPenalty int
	// MisfetchPenalty is the decoder re-steer bubble when a correctly
	// predicted direct branch missed the BTB.
	MisfetchPenalty int
	// L2IExposure and L2DExposure are the fractions of an L2-hit miss
	// latency that the out-of-order window fails to hide (front-end
	// misses are barely hidden; data misses mostly are).
	L2IExposure float64
	L2DExposure float64
	// MemIExposed and MemDExposed are the exposed cycles of an LLC miss:
	// the 101-cycle idle DRAM latency plus queueing and row-activation
	// delays under load (data misses overlap slightly with ROB drain).
	MemIExposed int
	MemDExposed int
	// MLPFactor scales the exposed cost of an LLC data miss that falls
	// within ROB instructions of the previous one (memory-level
	// parallelism: overlapped misses).
	MLPFactor float64
	// ExitFlushPenalty is charged to the normal execution each time an
	// assist used a stall window: returning from speculative execution
	// flushes the pipeline like a misprediction (§4.1).
	ExitFlushPenalty int
	// PerfectBP makes every branch predicted correctly (Figure 3).
	PerfectBP bool
}

// Validate reports whether the configuration is coherent, with an
// actionable error naming the offending field. The zero Config is NOT
// valid: callers that want defaults should start from DefaultConfig.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0:
		return fmt.Errorf("cpu: Width must be positive, got %d (start from DefaultConfig)", c.Width)
	case c.ROB <= 0:
		return fmt.Errorf("cpu: ROB must be positive, got %d", c.ROB)
	case c.BaseCPI <= 0:
		return fmt.Errorf("cpu: BaseCPI must be positive, got %g", c.BaseCPI)
	case c.MispredictPenalty < 0:
		return fmt.Errorf("cpu: MispredictPenalty must be non-negative, got %d", c.MispredictPenalty)
	case c.MisfetchPenalty < 0:
		return fmt.Errorf("cpu: MisfetchPenalty must be non-negative, got %d", c.MisfetchPenalty)
	case c.L2IExposure < 0 || c.L2IExposure > 1:
		return fmt.Errorf("cpu: L2IExposure must be in [0,1], got %g", c.L2IExposure)
	case c.L2DExposure < 0 || c.L2DExposure > 1:
		return fmt.Errorf("cpu: L2DExposure must be in [0,1], got %g", c.L2DExposure)
	case c.MemIExposed < 0 || c.MemDExposed < 0:
		return fmt.Errorf("cpu: exposed memory latencies must be non-negative, got I=%d D=%d", c.MemIExposed, c.MemDExposed)
	case c.MLPFactor < 0 || c.MLPFactor > 1:
		return fmt.Errorf("cpu: MLPFactor must be in [0,1], got %g", c.MLPFactor)
	case c.ExitFlushPenalty < 0:
		return fmt.Errorf("cpu: ExitFlushPenalty must be non-negative, got %d", c.ExitFlushPenalty)
	}
	return nil
}

// DefaultConfig mirrors Figure 7 with calibrated exposure factors.
func DefaultConfig() Config {
	return Config{
		Width:             4,
		ROB:               96,
		BaseCPI:           0.95,
		MispredictPenalty: 15,
		MisfetchPenalty:   5,
		L2IExposure:       0.8,
		L2DExposure:       0.3,
		MemIExposed:       120,
		MemDExposed:       115,
		MLPFactor:         0.15,
		ExitFlushPenalty:  8,
	}
}

// Stats aggregates the timing outcome of a run.
type Stats struct {
	Insts  int64
	Cycles int64

	// Cycle breakdown (sums to ~Cycles).
	BaseCycles    int64
	IMissCycles   int64
	DMissCycles   int64
	BranchCycles  int64
	AssistPenalty int64

	// Event counts.
	Branches    int64
	Mispredicts int64
	Misfetches  int64
	LLCMissI    int64
	LLCMissD    int64

	// Stall windows offered to and used by the assist.
	StallsOffered int64
	StallsUsed    int64
	StallCycles   int64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

// MispredictRate returns the branch misprediction rate.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Insts += other.Insts
	s.Cycles += other.Cycles
	s.BaseCycles += other.BaseCycles
	s.IMissCycles += other.IMissCycles
	s.DMissCycles += other.DMissCycles
	s.BranchCycles += other.BranchCycles
	s.AssistPenalty += other.AssistPenalty
	s.Branches += other.Branches
	s.Mispredicts += other.Mispredicts
	s.Misfetches += other.Misfetches
	s.LLCMissI += other.LLCMissI
	s.LLCMissD += other.LLCMissD
	s.StallsOffered += other.StallsOffered
	s.StallsUsed += other.StallsUsed
	s.StallCycles += other.StallCycles
}

// Core executes event instruction streams against the memory hierarchy,
// branch predictor and optional prefetchers, accumulating Stats.
type Core struct {
	Cfg  Config            //esp:immutable
	Hier *mem.Hierarchy    //esp:immutable
	BP   *branch.Predictor //esp:immutable

	// Optional baseline prefetchers (nil disables each).
	NLI    *prefetch.NextLineI //esp:immutable
	DCU    *prefetch.DCU       //esp:immutable
	Stride *prefetch.Stride    //esp:immutable

	// FetchObs, when non-nil, watches every demand instruction fetch and
	// event boundary: the hook the event-aware instruction prefetchers
	// the paper compares against in §7 (EFetch, PIF) attach to.
	FetchObs FetchObserver //esp:immutable

	// Assist receives stall windows and branch-correction queries
	// (nil for the plain baseline).
	Assist Assist //esp:immutable

	// Stats accumulates across RunEvent calls.
	Stats Stats

	fetchLine    uint64
	fetchValid   bool
	lastLLCDInst int64 // global instruction index of the previous LLC data miss
	globalInst   int64
}

// New returns a core over the given hierarchy and predictor.
func New(cfg Config, h *mem.Hierarchy, bp *branch.Predictor) *Core {
	return &Core{Cfg: cfg, Hier: h, BP: bp, lastLLCDInst: -1 << 40}
}

// Reset restores the core's run state (statistics, fetch-line tracking,
// MLP history) to its just-constructed values. The wired-up hierarchy,
// predictor, prefetchers and assist are structure, not state, and are
// left attached; callers reset those separately.
func (c *Core) Reset() {
	c.Stats = Stats{}
	c.fetchLine, c.fetchValid = 0, false
	c.lastLLCDInst = -1 << 40
	c.globalInst = 0
}

// BeginEvent announces the next event's handler type to the fetch
// observer (called by the looper before RunEvent).
func (c *Core) BeginEvent(handler int) {
	if c.FetchObs != nil {
		c.FetchObs.BeginEvent(handler)
	}
}

// RunEvent executes one event's instruction stream to completion and
// returns the cycles it consumed. Assist hooks EventStart/EventEnd are the
// caller's (looper's) responsibility; RunEvent only drives the
// per-instruction hooks. The loop is specialized on assist presence: a
// baseline core pays no per-instruction interface dispatch at all, and
// both variants keep the fetch-line and MLP trackers in locals, written
// back once per event (nothing outside this loop can observe them
// mid-event — the assists never see the Core).
func (c *Core) RunEvent(insts []trace.Inst) int64 {
	var st Stats
	var cycles float64
	if c.Assist != nil {
		cycles = c.runAssisted(insts, &st)
	} else {
		cycles = c.runPlain(insts, &st)
	}
	st.Insts = int64(len(insts))
	st.BaseCycles = int64(float64(st.Insts) * c.Cfg.BaseCPI)
	st.Cycles = int64(cycles)
	c.Stats.Add(st)
	return st.Cycles
}

// runPlain is the no-assist event loop: stall windows are counted but
// never offered, and branches never query CorrectBranch.
func (c *Core) runPlain(insts []trace.Inst, st *Stats) float64 {
	cfg := &c.Cfg
	var (
		cycles     float64
		perInst    = cfg.BaseCPI
		hier       = c.Hier
		bp         = c.BP
		nli        = c.NLI
		fetchObs   = c.FetchObs
		dcu        = c.DCU
		stride     = c.Stride
		fetchValid = c.fetchValid
		fetchLine  = c.fetchLine
		global     = c.globalInst
		lastLLCD   = c.lastLLCDInst
		rob        = int64(cfg.ROB)
	)
	for idx := range insts {
		in := &insts[idx]
		cycles += perInst

		// Instruction fetch: one hierarchy access per line transition.
		if line := trace.Line(in.PC); !fetchValid || line != fetchLine {
			fetchValid, fetchLine = true, line
			level, lat := hier.FetchI(in.PC)
			if nli != nil {
				nli.OnFetch(in.PC)
			}
			if fetchObs != nil {
				fetchObs.OnFetch(in.PC, level)
			}
			switch level {
			case mem.LevelL2:
				p := cfg.L2IExposure * float64(lat)
				cycles += p
				st.IMissCycles += int64(p)
			case mem.LevelMem:
				st.LLCMissI++
				exposed := cfg.MemIExposed
				cycles += float64(exposed)
				st.IMissCycles += int64(exposed)
				st.StallsOffered++
				st.StallCycles += int64(exposed)
			}
		}

		switch in.Kind {
		case trace.Branch:
			st.Branches++
			correct := cfg.PerfectBP
			misfetch := false
			if !correct {
				pred := bp.PredictUpdate(in)
				correct = !branch.Mispredicted(pred, *in)
				misfetch = branch.Misfetched(pred, *in)
			}
			switch {
			case !correct:
				st.Mispredicts++
				cycles += float64(cfg.MispredictPenalty)
				st.BranchCycles += int64(cfg.MispredictPenalty)
			case misfetch:
				st.Misfetches++
				cycles += float64(cfg.MisfetchPenalty)
				st.BranchCycles += int64(cfg.MisfetchPenalty)
			}
			if in.Taken {
				fetchValid = false // redirect: next fetch re-accesses I$
			}

		case trace.Load, trace.Store:
			level, lat := hier.AccessD(in.Addr, in.Kind == trace.Store)
			if dcu != nil {
				dcu.OnAccess(in.Addr)
			}
			if stride != nil {
				stride.OnAccess(in.PC, in.Addr)
			}
			switch level {
			case mem.LevelL2:
				p := cfg.L2DExposure * float64(lat)
				cycles += p
				st.DMissCycles += int64(p)
			case mem.LevelMem:
				st.LLCMissD++
				exposed := cfg.MemDExposed
				if global-lastLLCD < rob {
					// Overlapped with the previous miss: MLP.
					exposed = int(float64(exposed) * cfg.MLPFactor)
				}
				lastLLCD = global
				cycles += float64(exposed)
				st.DMissCycles += int64(exposed)
				st.StallsOffered++
				st.StallCycles += int64(exposed)
			}
		}
		global++
	}
	c.fetchValid, c.fetchLine = fetchValid, fetchLine
	c.globalInst, c.lastLLCDInst = global, lastLLCD
	return cycles
}

// runAssisted is the event loop with an assist attached: per-instruction
// progress hook, branch-correction queries, and exposed stall windows
// offered for pre-execution.
func (c *Core) runAssisted(insts []trace.Inst, st *Stats) float64 {
	cfg := &c.Cfg
	var (
		cycles     float64
		assist     = c.Assist
		perInst    = cfg.BaseCPI
		hier       = c.Hier
		bp         = c.BP
		nli        = c.NLI
		fetchObs   = c.FetchObs
		dcu        = c.DCU
		stride     = c.Stride
		fetchValid = c.fetchValid
		fetchLine  = c.fetchLine
		global     = c.globalInst
		lastLLCD   = c.lastLLCDInst
		rob        = int64(cfg.ROB)
		wake       = 0
	)
	for idx := range insts {
		in := &insts[idx]
		if idx >= wake {
			wake = assist.OnInst(idx)
		}
		cycles += perInst

		// Instruction fetch: one hierarchy access per line transition.
		if line := trace.Line(in.PC); !fetchValid || line != fetchLine {
			fetchValid, fetchLine = true, line
			level, lat := hier.FetchI(in.PC)
			if nli != nil {
				nli.OnFetch(in.PC)
			}
			if fetchObs != nil {
				fetchObs.OnFetch(in.PC, level)
			}
			switch level {
			case mem.LevelL2:
				p := cfg.L2IExposure * float64(lat)
				cycles += p
				st.IMissCycles += int64(p)
			case mem.LevelMem:
				st.LLCMissI++
				exposed := cfg.MemIExposed
				cycles += float64(exposed)
				st.IMissCycles += int64(exposed)
				c.offerStall(StallI, idx, exposed, &cycles, st)
			}
		}

		switch in.Kind {
		case trace.Branch:
			st.Branches++
			correct := cfg.PerfectBP
			misfetch := false
			if !correct && assist.CorrectBranch(idx, *in) {
				correct = true
			}
			if !correct {
				pred := bp.PredictUpdate(in)
				correct = !branch.Mispredicted(pred, *in)
				misfetch = branch.Misfetched(pred, *in)
			} else if !cfg.PerfectBP {
				// Corrected branch: the prediction is suppressed but the
				// predictor still trains on the architectural outcome.
				bp.Update(*in)
			}
			switch {
			case !correct:
				st.Mispredicts++
				cycles += float64(cfg.MispredictPenalty)
				st.BranchCycles += int64(cfg.MispredictPenalty)
			case misfetch:
				st.Misfetches++
				cycles += float64(cfg.MisfetchPenalty)
				st.BranchCycles += int64(cfg.MisfetchPenalty)
			}
			if in.Taken {
				fetchValid = false // redirect: next fetch re-accesses I$
			}

		case trace.Load, trace.Store:
			level, lat := hier.AccessD(in.Addr, in.Kind == trace.Store)
			if dcu != nil {
				dcu.OnAccess(in.Addr)
			}
			if stride != nil {
				stride.OnAccess(in.PC, in.Addr)
			}
			switch level {
			case mem.LevelL2:
				p := cfg.L2DExposure * float64(lat)
				cycles += p
				st.DMissCycles += int64(p)
			case mem.LevelMem:
				st.LLCMissD++
				exposed := cfg.MemDExposed
				if global-lastLLCD < rob {
					// Overlapped with the previous miss: MLP.
					exposed = int(float64(exposed) * cfg.MLPFactor)
				}
				lastLLCD = global
				cycles += float64(exposed)
				st.DMissCycles += int64(exposed)
				c.offerStall(StallD, idx, exposed, &cycles, st)
			}
		}
		global++
	}
	c.fetchValid, c.fetchLine = fetchValid, fetchLine
	c.globalInst, c.lastLLCDInst = global, lastLLCD
	return cycles
}

// offerStall hands an exposed LLC-miss window to the assist and charges
// the speculation-exit flush if it was used.
func (c *Core) offerStall(kind StallKind, idx, exposed int, cycles *float64, st *Stats) {
	st.StallsOffered++
	st.StallCycles += int64(exposed)
	if c.Assist == nil {
		return
	}
	if c.Assist.OnStall(kind, idx, exposed) {
		st.StallsUsed++
		*cycles += float64(c.Cfg.ExitFlushPenalty)
		st.AssistPenalty += int64(c.Cfg.ExitFlushPenalty)
	}
}

// RunFiller charges n instructions of warm, stall-free execution (the
// looper thread's queue-management instructions between events, §3.6).
func (c *Core) RunFiller(n int) {
	c.Stats.Insts += int64(n)
	add := int64(float64(n) * c.Cfg.BaseCPI)
	c.Stats.Cycles += add
	c.Stats.BaseCycles += add
	c.globalInst += int64(n)
}
