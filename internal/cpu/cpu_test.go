package cpu

import (
	"testing"

	"espsim/internal/branch"
	"espsim/internal/mem"
	"espsim/internal/trace"
)

func testCore() *Core {
	return New(DefaultConfig(), mem.DefaultHierarchy(), branch.New())
}

// seqInsts builds n straight-line ALU instructions.
func seqInsts(n int, base uint64) []trace.Inst {
	out := make([]trace.Inst, n)
	for i := range out {
		out[i] = trace.Inst{PC: base + uint64(i)*trace.InstBytes, Kind: trace.ALU}
	}
	return out
}

func TestBaseCPIAccounting(t *testing.T) {
	c := testCore()
	c.Hier.PerfectL1I = true
	cyc := c.RunEvent(seqInsts(10000, 0x1000))
	want := int64(float64(10000) * c.Cfg.BaseCPI)
	if cyc < want-1 || cyc > want+1 {
		t.Fatalf("cycles = %d, want ~%d for stall-free code", cyc, want)
	}
}

func TestIMissCharged(t *testing.T) {
	c := testCore()
	cyc := c.RunEvent(seqInsts(16, 0x1000)) // one line, cold
	base := int64(float64(16) * c.Cfg.BaseCPI)
	if cyc < base+int64(c.Cfg.MemIExposed) {
		t.Fatalf("cold I-fetch not charged: %d cycles", cyc)
	}
	if c.Stats.LLCMissI != 1 {
		t.Fatalf("LLCMissI = %d", c.Stats.LLCMissI)
	}
}

func TestDMissCharged(t *testing.T) {
	c := testCore()
	c.Hier.PerfectL1I = true
	insts := seqInsts(4, 0x1000)
	insts[2] = trace.Inst{PC: insts[2].PC, Kind: trace.Load, Addr: 0x8_0000_0000}
	c.RunEvent(insts)
	if c.Stats.LLCMissD != 1 {
		t.Fatalf("LLCMissD = %d", c.Stats.LLCMissD)
	}
	if c.Stats.DMissCycles < int64(c.Cfg.MemDExposed) {
		t.Fatalf("DMissCycles = %d", c.Stats.DMissCycles)
	}
}

func TestMLPOverlapCheaper(t *testing.T) {
	// Two LLC misses within the ROB window must cost less than two
	// isolated ones.
	run := func(gap int) int64 {
		c := testCore()
		c.Hier.PerfectL1I = true
		var insts []trace.Inst
		insts = append(insts, trace.Inst{PC: 0x1000, Kind: trace.Load, Addr: 0x8_0000_0000})
		insts = append(insts, seqInsts(gap, 0x2000)...)
		insts = append(insts, trace.Inst{PC: 0x3000, Kind: trace.Load, Addr: 0x9_0000_0000})
		c.RunEvent(insts)
		return c.Stats.DMissCycles
	}
	near, far := run(10), run(500)
	if near >= far {
		t.Fatalf("overlapped misses (%d cyc) should cost less than isolated (%d cyc)", near, far)
	}
}

func TestMispredictPenalty(t *testing.T) {
	c := testCore()
	c.Hier.PerfectL1I = true
	// A 50/50 branch pattern the predictor cannot learn perfectly.
	var insts []trace.Inst
	for i := 0; i < 400; i++ {
		insts = append(insts, trace.Inst{
			PC: 0x1000, Kind: trace.Branch, Taken: i%2 == 0, Addr: 0x1040,
		})
	}
	c.RunEvent(insts)
	if c.Stats.Mispredicts == 0 {
		t.Fatal("alternating branch should mispredict sometimes")
	}
	if c.Stats.BranchCycles < c.Stats.Mispredicts*int64(c.Cfg.MispredictPenalty) {
		t.Fatal("mispredict cycles under-charged")
	}
}

func TestPerfectBPNoPenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerfectBP = true
	c := New(cfg, mem.DefaultHierarchy(), branch.New())
	c.Hier.PerfectL1I = true
	var insts []trace.Inst
	for i := 0; i < 100; i++ {
		insts = append(insts, trace.Inst{PC: 0x1000, Kind: trace.Branch, Taken: i%2 == 0, Addr: 0x1000})
	}
	c.RunEvent(insts)
	if c.Stats.Mispredicts != 0 || c.Stats.BranchCycles != 0 {
		t.Fatalf("perfect BP charged penalties: %+v", c.Stats)
	}
}

func TestMisfetchCheaperThanMispredict(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MisfetchPenalty >= cfg.MispredictPenalty {
		t.Fatal("misfetch must be cheaper than mispredict")
	}
	c := New(cfg, mem.DefaultHierarchy(), branch.New())
	c.Hier.PerfectL1I = true
	// Always-taken branches with rotating PCs large enough to thrash the
	// BTB generate misfetches (direction is learned, targets are not).
	var insts []trace.Inst
	for i := 0; i < 3000; i++ {
		pc := uint64(0x1000 + (i%2500)*2048*4)
		insts = append(insts, trace.Inst{PC: pc, Kind: trace.Branch, Taken: true, Addr: pc + 64})
	}
	c.RunEvent(insts)
	if c.Stats.Misfetches == 0 {
		t.Fatal("expected misfetches from BTB-thrashing taken branches")
	}
}

func TestPerfectEverythingBeatsBaseline(t *testing.T) {
	mk := func(perfect bool) int64 {
		cfg := DefaultConfig()
		cfg.PerfectBP = perfect
		h := mem.DefaultHierarchy()
		h.PerfectL1I, h.PerfectL1D = perfect, perfect
		c := New(cfg, h, branch.New())
		var insts []trace.Inst
		for i := 0; i < 5000; i++ {
			pc := uint64(0x1000 + (i%700)*256)
			switch i % 5 {
			case 0:
				insts = append(insts, trace.Inst{PC: pc, Kind: trace.Load, Addr: uint64(i%97) * 4096})
			case 1:
				insts = append(insts, trace.Inst{PC: pc, Kind: trace.Branch, Taken: i%3 == 0, Addr: pc + 128})
			default:
				insts = append(insts, trace.Inst{PC: pc, Kind: trace.ALU})
			}
		}
		return c.RunEvent(insts)
	}
	if perfect, base := mk(true), mk(false); perfect >= base {
		t.Fatalf("perfect machine (%d) not faster than baseline (%d)", perfect, base)
	}
}

// recordingAssist captures the hook sequence.
type recordingAssist struct {
	onInst   int
	stalls   []StallKind
	budgets  []int
	corrects int
	use      bool
}

func (r *recordingAssist) EventStart(trace.Event, []trace.Inst, []trace.Event) {}
func (r *recordingAssist) EventEnd(trace.Event)                                {}
func (r *recordingAssist) OnInst(idx int) int                                  { r.onInst++; return idx + 1 }
func (r *recordingAssist) CorrectBranch(int, trace.Inst) bool {
	r.corrects++
	return false
}
func (r *recordingAssist) OnStall(k StallKind, _ int, b int) bool {
	r.stalls = append(r.stalls, k)
	r.budgets = append(r.budgets, b)
	return r.use
}

func TestAssistReceivesStalls(t *testing.T) {
	c := testCore()
	ra := &recordingAssist{}
	c.Assist = ra
	insts := seqInsts(64, 0x1000) // 4 cold lines
	insts = append(insts, trace.Inst{PC: insts[63].PC + 4, Kind: trace.Load, Addr: 0x8_0000_0000})
	c.RunEvent(insts)
	if ra.onInst != len(insts) {
		t.Fatalf("OnInst called %d times, want %d", ra.onInst, len(insts))
	}
	var nI, nD int
	for _, k := range ra.stalls {
		if k == StallI {
			nI++
		} else {
			nD++
		}
	}
	if nI == 0 || nD == 0 {
		t.Fatalf("expected both stall kinds, got I=%d D=%d", nI, nD)
	}
	for _, b := range ra.budgets {
		if b <= 0 {
			t.Fatal("non-positive stall budget")
		}
	}
}

func TestAssistUsePaysExitFlush(t *testing.T) {
	run := func(use bool) int64 {
		c := testCore()
		c.Assist = &recordingAssist{use: use}
		return c.RunEvent(seqInsts(64, 0x1000))
	}
	unused, used := run(false), run(true)
	if used <= unused {
		t.Fatalf("using stalls must charge the exit flush: used=%d unused=%d", used, unused)
	}
}

func TestAssistCorrectBranchSuppressesPenalty(t *testing.T) {
	// An assist that corrects every branch must eliminate mispredicts.
	c := testCore()
	c.Hier.PerfectL1I = true
	c.Assist = &correctingAssist{}
	var insts []trace.Inst
	for i := 0; i < 200; i++ {
		insts = append(insts, trace.Inst{PC: 0x2000, Kind: trace.Branch, Taken: i%2 == 0, Addr: 0x2040})
	}
	c.RunEvent(insts)
	if c.Stats.Mispredicts != 0 {
		t.Fatalf("corrected branches still mispredicted %d times", c.Stats.Mispredicts)
	}
}

type correctingAssist struct{ recordingAssist }

func (c *correctingAssist) CorrectBranch(int, trace.Inst) bool { return true }

func TestRunFiller(t *testing.T) {
	c := testCore()
	c.RunFiller(700)
	if c.Stats.Insts != 700 {
		t.Fatalf("Insts = %d", c.Stats.Insts)
	}
	want := int64(700 * c.Cfg.BaseCPI)
	if c.Stats.Cycles != want {
		t.Fatalf("Cycles = %d, want %d", c.Stats.Cycles, want)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Insts: 1, Cycles: 2, Branches: 3, Mispredicts: 4, LLCMissI: 5, StallCycles: 6, Misfetches: 7}
	b := a
	a.Add(b)
	if a.Insts != 2 || a.Cycles != 4 || a.Branches != 6 || a.Mispredicts != 8 ||
		a.LLCMissI != 10 || a.StallCycles != 12 || a.Misfetches != 14 {
		t.Fatalf("Add broken: %+v", a)
	}
}

func TestIPCAndRates(t *testing.T) {
	s := Stats{Insts: 100, Cycles: 200, Branches: 10, Mispredicts: 1}
	if s.IPC() != 0.5 {
		t.Fatalf("IPC = %v", s.IPC())
	}
	if s.MispredictRate() != 0.1 {
		t.Fatalf("MispredictRate = %v", s.MispredictRate())
	}
	var zero Stats
	if zero.IPC() != 0 || zero.MispredictRate() != 0 {
		t.Fatal("zero stats should not divide by zero")
	}
}

func TestDeterministicRun(t *testing.T) {
	mk := func() Stats {
		c := testCore()
		var insts []trace.Inst
		for i := 0; i < 3000; i++ {
			pc := uint64(0x1000 + (i%211)*64)
			switch i % 4 {
			case 0:
				insts = append(insts, trace.Inst{PC: pc, Kind: trace.Load, Addr: uint64((i * 7919) % 100000)})
			case 1:
				insts = append(insts, trace.Inst{PC: pc, Kind: trace.Branch, Taken: i%7 < 3, Addr: pc + 256})
			default:
				insts = append(insts, trace.Inst{PC: pc, Kind: trace.ALU})
			}
		}
		c.RunEvent(insts)
		return c.Stats
	}
	if mk() != mk() {
		t.Fatal("core run not deterministic")
	}
}
