// Package grid defines this fixture's plane type.
package grid

// Grid is immutable after construction: one instance is shared by
// every reader without locks.
//esp:plane grid
type Grid struct {
	Cells []int
	N     int
}

// New may write freely: it is a constructor of the defining package.
//esp:ctor
func New(n int) *Grid {
	g := &Grid{}
	g.N = n
	g.Cells = make([]int, n)
	for i := range g.Cells {
		g.Cells[i] = i
	}
	return g
}

// Mutate is not a constructor, even inside the defining package.
func Mutate(g *Grid) {
	g.N = 7 // want `write to field N of grid-plane type grid\.Grid outside a constructor`
}

// Read-only access is always fine.
func Read(g *Grid) int {
	return g.N + g.Cells[0]
}
