module planefix

go 1.22
