// Package other consumes the plane type from outside its package:
// every mutation shape must be flagged.
package other

import "planefix/grid"

func Fill(g *grid.Grid) {
	g.Cells[0] = 1 // want `write to field Cells of grid-plane type grid\.Grid outside a constructor`
	clear(g.Cells) // want `clearing field Cells of grid-plane type grid\.Grid outside a constructor`
	p := &g.N      // want `taking the address of field N of grid-plane type grid\.Grid outside a constructor`
	_ = p
}

func Replace(g *grid.Grid) {
	*g = grid.Grid{} // want `write to the pointed-to value of grid-plane type grid\.Grid outside a constructor`
}

// Rebuild is annotated, but a constructor of another package still may
// not write the plane: only the defining package's constructors count.
//esp:ctor
func Rebuild(g *grid.Grid) {
	g.N = 0 // want `write to field N of grid-plane type grid\.Grid outside a constructor`
}

// Fresh builds a new value, which is always allowed.
func Fresh() *grid.Grid {
	return grid.New(3)
}
