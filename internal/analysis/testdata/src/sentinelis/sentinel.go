// Package sentfix exercises the sentinelis analyzer: identity
// comparisons against wrappable sentinels, in every shape.
package sentfix

import (
	"errors"
	"io"
)

var ErrThing = errors.New("thing")

func compare(err error) int {
	if err == ErrThing { // want `== comparison against sentinel sentfix\.ErrThing`
		return 1
	}
	if err != io.EOF { // want `!= comparison against sentinel io\.EOF`
		return 2
	}
	if ErrThing == err { // want `== comparison against sentinel sentfix\.ErrThing`
		return 3
	}
	return 0
}

func switches(err error) int {
	switch err {
	case ErrThing: // want `switch case compares error against sentinel sentfix\.ErrThing by identity`
		return 1
	case nil:
		return 2
	}
	return 0
}

func fine(err, other error) bool {
	if err == nil { // nil checks are identity by design
		return true
	}
	if errors.Is(err, ErrThing) { // the contract
		return true
	}
	if err == other { // not a sentinel comparison
		return true
	}
	//esp:exempt fixture: deliberate unwrapped fast path
	return err == io.EOF
}

// Compare keeps the helpers referenced.
func Compare(err error) int {
	if fine(err, nil) {
		return compare(err) + switches(err)
	}
	return 0
}
