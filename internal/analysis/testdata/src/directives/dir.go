// Package dirfix exercises the directive parser's malformed-comment
// diagnostics: a typo must never silently disable a check.
package dirfix

// want `unknown esp: directive "bogus"`
//esp:bogus something
var A = 1

// want `esp:exempt requires an argument`
//esp:exempt
var B = 2

// want `esp: directives must start exactly with //esp:`
// esp:immutable
var C = 3

//esp:immutable
var D = 4
