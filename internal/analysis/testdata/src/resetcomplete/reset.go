// Package resetfix exercises the resetcomplete analyzer: every
// accounting shape it accepts, and the leaks it must flag.
package resetfix

// Good accounts for every field: direct zeroing, clear(), a delegated
// sub-reset, a same-receiver helper, and an annotated config field.
type Good struct {
	cfg  int //esp:immutable
	n    int
	m    map[string]int
	sub  Sub
	note string
}

func (g *Good) Reset() {
	g.n = 0
	clear(g.m)
	g.sub.Reset()
	g.scrub()
}

func (g *Good) scrub() { g.note = "" }

type Sub struct{ x int }

func (s *Sub) Reset() { s.x = 0 }

// Whole is overwritten wholesale: *w = Whole{} accounts for everything.
type Whole struct {
	a int
	b string
}

func (w *Whole) Reset() { *w = Whole{} }

// Pool scrubs its pooled elements through a range loop (the element
// flows into a call) and truncates its free list.
type Pool struct {
	slots []*Sub
	free  []*Sub
}

func (p *Pool) Reset() {
	for _, s := range p.slots {
		s.Reset()
	}
	p.free = p.free[:0]
}

// Bad forgets two fields: a recycled Bad would leak them.
type Bad struct {
	ok     int
	kept   int            // want `field resetfix\.Bad\.kept survives \(\*Bad\)\.Reset`
	leaked map[string]int // want `field resetfix\.Bad\.leaked survives \(\*Bad\)\.Reset`
}

func (b *Bad) Reset() { b.ok = 0 }

// ReadOnlyRange shows a range that merely reads does not count as a
// scrub: the element never flows into a call and the field is never
// overwritten.
type ReadOnlyRange struct {
	slots []int // want `field resetfix\.ReadOnlyRange\.slots survives`
}

func (r *ReadOnlyRange) Reset() {
	n := 0
	for _, s := range r.slots {
		n += s
	}
	_ = n
}

// NotPooled has a Reset with parameters, which is not the pooled-reset
// contract; the analyzer must leave it alone.
type NotPooled struct {
	stale int
}

func (n *NotPooled) Reset(to int) { _ = to }
