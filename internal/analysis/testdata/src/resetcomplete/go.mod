module resetfix

go 1.22
