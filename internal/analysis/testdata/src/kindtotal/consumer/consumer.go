// Package consumer declares sentinels against the fixture taxonomy:
// every way of being covered, and every way of falling through.
package consumer

import (
	"errors"
	"fmt"

	"kindfix/fault"
)

// Covered: the constructor carries a non-unknown kind.
var ErrCtor = fault.Sentinel("ctor-built", fault.Boom)

// Covered: wraps a sentinel Classify tests with errors.Is.
var ErrWrapped = fmt.Errorf("consumer: %w", fault.ErrNet)

// Covered: alias of a covered sentinel.
var ErrAlias = ErrWrapped

// Covered: waived with a reason.
//esp:exempt fixture: handled locally, never classified
var ErrWaived = errors.New("waived")

// Not covered: a bare sentinel falls to the unknown fallback.
var ErrBare = errors.New("bare") // want `exported sentinel consumer\.ErrBare classifies to the unknown fallback Kind`

// Not covered: constructor-built, but with the unknown fallback kind.
var ErrWrongKind = fault.Sentinel("wrong", fault.Err) // want `exported sentinel consumer\.ErrWrongKind classifies to the unknown fallback Kind`

// Not covered: wraps only an unclassified sentinel.
var ErrBadWrap = fmt.Errorf("outer: %w", ErrBare) // want `exported sentinel consumer\.ErrBadWrap classifies to the unknown fallback Kind`

// Unexported sentinels are not part of the wire contract.
var errLocal = errors.New("local")

// Use reads every sentinel so the fixture type-checks without vet noise.
func Use() []error {
	return []error{ErrCtor, ErrAlias, ErrWaived, errLocal}
}

func dispatch(k fault.Kind) int {
	switch k { // want `switch over Kind is not exhaustive: missing Boom, Err, None`
	case fault.Net:
		return 1
	}
	return 0
}

func dispatchDefault(k fault.Kind) int {
	switch k {
	case fault.Net:
		return 1
	default:
		return 0
	}
}

func dispatchTotal(k fault.Kind) int {
	switch k {
	case fault.None, fault.Net, fault.Boom, fault.Err:
		return 1
	}
	return 0
}

// Dispatch keeps the switch helpers referenced.
func Dispatch(k fault.Kind) int {
	return dispatch(k) + dispatchDefault(k) + dispatchTotal(k)
}
