module kindfix

go 1.22
