// Package fault is a miniature error taxonomy: the shape kindtotal
// discovers (a string-backed kind type, Classify, a kind-carrying
// constructor).
package fault

import "errors"

// Kind classifies a failure.
type Kind string

const (
	None Kind = ""
	Net  Kind = "net"
	Boom Kind = "boom"
	Err  Kind = "error"
)

// ErrNet is classified below, so it is covered.
var ErrNet = errors.New("net down")

// Classify maps an error to its Kind.
func Classify(err error) Kind {
	var ks *kindErr
	switch {
	case err == nil:
		return None
	case errors.Is(err, ErrNet):
		return Net
	case errors.As(err, &ks):
		return ks.kind
	default:
		return Err
	}
}

// Sentinel builds an error that carries its own Kind.
func Sentinel(msg string, k Kind) error { return &kindErr{msg: msg, kind: k} }

type kindErr struct {
	msg  string
	kind Kind
}

func (e *kindErr) Error() string { return e.msg }
