package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerResetComplete proves the pooled-machine contract: a type that
// exposes a Reset() method is recycled by the machine plane, and a
// reset instance must be bit-identical to a freshly built one. Every
// struct field must therefore be accounted for by Reset — assigned,
// cleared, delegated to a sub-reset, scrubbed through a range loop, or
// declared out of scope with //esp:immutable (configuration/wiring
// that never carries run state). A new field that Reset forgets is
// exactly the bug class that silently corrupts speculative replay
// until a golden soak catches it; this pass makes it a compile-time
// error instead.
var AnalyzerResetComplete = &Analyzer{
	Name: "resetcomplete",
	Doc:  "every field of a type with a Reset() method must be reset, delegated, or annotated //esp:immutable",
	Run:  runResetComplete,
}

// resetLike reports whether a method name is a state-restoring
// delegate: calling it on a field accounts for that field.
func resetLike(name string) bool {
	l := strings.ToLower(name)
	return strings.HasPrefix(l, "reset") || strings.HasPrefix(l, "clear") ||
		strings.HasPrefix(l, "scrub") || strings.HasPrefix(l, "free")
}

func runResetComplete(pass *Pass) {
	// Index this package's methods by (receiver named type, name) so
	// Reset bodies can be followed through same-receiver helper calls
	// (e.g. Cache.Reset -> c.Clear + c.ResetStats).
	methods := map[types.Object]map[string]*ast.FuncDecl{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			named := recvNamed(pass, fd)
			if named == nil {
				continue
			}
			obj := named.Obj()
			if methods[obj] == nil {
				methods[obj] = map[string]*ast.FuncDecl{}
			}
			methods[obj][fd.Name.Name] = fd
		}
	}

	for obj, byName := range methods {
		reset, ok := byName["Reset"]
		if !ok || reset.Body == nil {
			continue
		}
		if reset.Type.Params.NumFields() != 0 || reset.Type.Results.NumFields() != 0 {
			continue // not the pooled-reset contract
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		acc := &resetAccounting{
			pass:    pass,
			methods: byName,
			fields:  map[string]bool{},
			visited: map[*ast.FuncDecl]bool{},
		}
		acc.follow(reset)

		if acc.all {
			continue
		}
		typeName := pass.Pkg.Types.Name() + "." + obj.Name()
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if acc.fields[fld.Name()] {
				continue
			}
			if pass.Module.ann.has(pass.Module.Fset, fld.Pos(), "immutable") {
				continue
			}
			pass.Reportf(fld.Pos(),
				"zero it in Reset, call a Reset/Clear method on it, or annotate //esp:immutable if it is configuration, //esp:exempt <reason> otherwise",
				"field %s.%s survives (*%s).Reset: a recycled instance would leak it into the next replay",
				typeName, fld.Name(), obj.Name())
		}
	}
}

// recvNamed resolves a method's receiver to its named type.
func recvNamed(pass *Pass, fd *ast.FuncDecl) *types.Named {
	t := pass.typeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// resetAccounting walks reset-path method bodies flow-insensitively,
// recording which receiver fields are restored.
type resetAccounting struct {
	pass    *Pass
	methods map[string]*ast.FuncDecl
	fields  map[string]bool
	all     bool // *recv = T{...} overwrote everything
	visited map[*ast.FuncDecl]bool
}

// follow accumulates the accounting of one method body.
func (a *resetAccounting) follow(fd *ast.FuncDecl) {
	if a.visited[fd] || fd.Body == nil {
		return
	}
	a.visited[fd] = true
	recv := a.recvObj(fd)
	if recv == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				a.account(recv, lhs)
			}
		case *ast.IncDecStmt:
			a.account(recv, n.X)
		case *ast.CallExpr:
			a.call(recv, n)
		case *ast.RangeStmt:
			a.rangeScrub(recv, n)
		}
		return true
	})
}

func (a *resetAccounting) recvObj(fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) != 1 {
		return nil
	}
	return a.pass.Pkg.Info.Defs[names[0]]
}

// fieldOf returns the field name when e is recv.f (through parens,
// indexing, or a star).
func (a *resetAccounting) fieldOf(recv types.Object, e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && a.pass.Pkg.Info.Uses[id] == recv {
				return x.Sel.Name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// account records an assignment target: recv.f (any shape) marks f;
// *recv = ... marks every field.
func (a *resetAccounting) account(recv types.Object, lhs ast.Expr) {
	if star, ok := ast.Unparen(lhs).(*ast.StarExpr); ok {
		if id, ok := ast.Unparen(star.X).(*ast.Ident); ok && a.pass.Pkg.Info.Uses[id] == recv {
			a.all = true
			return
		}
	}
	if f, ok := a.fieldOf(recv, lhs); ok {
		a.fields[f] = true
	}
}

// call handles clear(recv.f), recv.f.ResetLike(), and recursion into
// same-receiver helper methods.
func (a *resetAccounting) call(recv types.Object, c *ast.CallExpr) {
	// clear(recv.f)
	if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "clear" && len(c.Args) == 1 {
		if f, ok := a.fieldOf(recv, c.Args[0]); ok {
			a.fields[f] = true
		}
		return
	}
	sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// recv.helper(...): follow the helper's own accounting.
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && a.pass.Pkg.Info.Uses[id] == recv {
		if helper, ok := a.methods[sel.Sel.Name]; ok {
			sub := &resetAccounting{pass: a.pass, methods: a.methods, fields: a.fields, visited: a.visited}
			sub.follow(helper)
			a.all = a.all || sub.all
		}
		return
	}
	// recv.f.Reset() / recv.f.Clear(): delegated sub-reset.
	if resetLike(sel.Sel.Name) {
		if f, ok := a.fieldOf(recv, sel.X); ok {
			a.fields[f] = true
		}
	}
}

// rangeScrub accounts `for _, v := range recv.f { recv.scrub(v) }` and
// `for i := range recv.f { recv.f[i] = ... }` — element-wise resets of
// a pooled collection. The element must actually flow into a call or
// be overwritten; a read-only range does not count.
func (a *resetAccounting) rangeScrub(recv types.Object, r *ast.RangeStmt) {
	f, ok := a.fieldOf(recv, r.X)
	if !ok || r.Body == nil {
		return
	}
	var valObj types.Object
	if id, ok := r.Value.(*ast.Ident); ok {
		valObj = a.pass.Pkg.Info.Defs[id]
	}
	used := false
	ast.Inspect(r.Body, func(n ast.Node) bool {
		if used {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if valObj == nil {
				return true
			}
			for _, arg := range n.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && a.pass.Pkg.Info.Uses[id] == valObj {
					used = true
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && a.pass.Pkg.Info.Uses[id] == valObj {
					used = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if fn, ok := a.fieldOf(recv, lhs); ok && fn == f {
					used = true
				}
			}
		}
		return true
	})
	if used {
		a.fields[f] = true
	}
}
