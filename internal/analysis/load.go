package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, comment-bearing package of the module
// under analysis. Test files (_test.go) are excluded: the contracts
// govern shipped code, and fixtures/tests legitimately poke invariants.
type Package struct {
	// Path is the import path; Dir the directory it was loaded from.
	Path string
	Dir  string

	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors collects go/types errors; analysis proceeds best-effort
	// but the driver surfaces them (a package that does not compile
	// cannot be proven to uphold anything).
	TypeErrors []error
}

// Module is a loaded module: the unit esplint analyzes. Loading is
// source-based and self-contained — in-module imports are resolved by
// recursive loading, standard-library imports through the toolchain's
// export data (with a from-source fallback), so the only requirement
// is a readable GOROOT.
type Module struct {
	Fset *token.FileSet
	// Path is the module path from go.mod; Root its directory.
	Path string
	Root string

	// Pkgs are the packages matched by the load patterns, in a stable
	// (dependency-respecting) order. byPath additionally holds
	// in-module dependencies pulled in by imports.
	Pkgs   []*Package
	byPath map[string]*Package

	ann      *annotations
	std      types.Importer
	stdSrc   types.Importer
	loading  map[string]bool
	patterns []string

	planeCache map[types.Object]string
	kindCache  *kindTaxonomy
}

// Load parses and type-checks the packages of the module rooted at
// root (the directory containing go.mod) that match patterns.
// Patterns are directories relative to root; a "/..." suffix matches
// recursively ("./..." loads the whole module). testdata, vendor, and
// hidden/underscore directories are always skipped.
func Load(root string, patterns ...string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	m := &Module{
		Fset:     fset,
		Path:     modPath,
		Root:     root,
		byPath:   map[string]*Package{},
		ann:      newAnnotations(),
		std:      importer.Default(),
		stdSrc:   importer.ForCompiler(fset, "source", nil),
		loading:  map[string]bool{},
		patterns: patterns,
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := m.resolve(patterns)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		pkg, err := m.load(m.importPath(dir))
		if err != nil {
			return nil, err
		}
		if pkg != nil && !containsPkg(m.Pkgs, pkg) {
			m.Pkgs = append(m.Pkgs, pkg)
		}
	}
	return m, nil
}

// TypeErrors returns every type-checking error across the loaded
// packages, in package order.
func (m *Module) TypeErrors() []error {
	var errs []error
	for _, p := range m.Pkgs {
		errs = append(errs, p.TypeErrors...)
	}
	return errs
}

// modulePath reads the module path out of root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("esplint: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("esplint: no module line in %s/go.mod", root)
}

// resolve expands patterns into package directories under the root.
func (m *Module) resolve(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		dir := filepath.Join(m.Root, filepath.FromSlash(pat))
		if rel, err := filepath.Rel(m.Root, dir); err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("esplint: pattern %q escapes the module root", pat)
		}
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("esplint: pattern %q matches no directory", pat)
		}
		if !recursive {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if skipDir(d.Name()) && path != dir {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// skipDir reports whether a directory never contributes packages.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// hasGoFiles reports whether dir holds at least one non-test .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// importPath maps a directory under the root to its import path.
func (m *Module) importPath(dir string) string {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

// dirOf inverts importPath.
func (m *Module) dirOf(ipath string) string {
	if ipath == m.Path {
		return m.Root
	}
	rel := strings.TrimPrefix(ipath, m.Path+"/")
	return filepath.Join(m.Root, filepath.FromSlash(rel))
}

// load parses and type-checks one in-module package (memoized).
func (m *Module) load(ipath string) (*Package, error) {
	if pkg, ok := m.byPath[ipath]; ok {
		return pkg, nil
	}
	if m.loading[ipath] {
		return nil, fmt.Errorf("esplint: import cycle through %s", ipath)
	}
	m.loading[ipath] = true
	defer delete(m.loading, ipath)

	dir := m.dirOf(ipath)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("esplint: %s: %w", ipath, err)
	}
	var names []string
	for _, e := range ents {
		if isSourceFile(e) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil
	}

	pkg := &Package{Path: ipath, Dir: dir}
	for _, name := range names {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("esplint: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		m.ann.collect(m.Fset, f)
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: (*moduleImporter)(m),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Check returns an error alongside the collected TypeErrors; the
	// partial type information is still used for best-effort analysis.
	pkg.Types, _ = conf.Check(ipath, m.Fset, pkg.Files, pkg.Info)
	m.byPath[ipath] = pkg
	return pkg, nil
}

// moduleImporter resolves imports during type-checking: in-module
// packages recursively from source, the standard library through the
// toolchain importer with a from-source fallback.
type moduleImporter Module

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	m := (*Module)(mi)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		pkg, err := m.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("esplint: no package at %s", path)
		}
		return pkg.Types, nil
	}
	tp, err := m.std.Import(path)
	if err != nil {
		tp, err = m.stdSrc.Import(path)
	}
	return tp, err
}

func containsPkg(pkgs []*Package, p *Package) bool {
	for _, q := range pkgs {
		if q == p {
			return true
		}
	}
	return false
}

// FindModuleRoot walks up from dir to the nearest directory containing
// a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("esplint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
