package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerPlanePurity proves the workload-plane contract: a type
// annotated //esp:plane <name> (sim.Workload, the materialized eventq
// sources) is immutable after construction, which is what makes one
// instance shareable across every machine goroutine without locks and
// keeps replays bit-identical. Writes to its fields — assignments,
// increments, clear(), or taking a field's address — are only legal
// inside //esp:ctor functions of the defining package; everywhere else
// the machine plane gets compile-time immutability.
var AnalyzerPlanePurity = &Analyzer{
	Name: "planepurity",
	Doc:  "fields of //esp:plane types may only be written inside //esp:ctor functions of their package",
	Run:  runPlanePurity,
}

func runPlanePurity(pass *Pass) {
	planes := pass.Module.planeTypes()
	if len(planes) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isCtor := pass.Module.ann.has(pass.Module.Fset, fd.Pos(), "ctor")
			pp := &planePass{pass: pass, planes: planes, ctor: isCtor}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						pp.checkWrite(lhs, "write to")
					}
				case *ast.IncDecStmt:
					pp.checkWrite(n.X, "write to")
				case *ast.UnaryExpr:
					if n.Op.String() == "&" {
						pp.checkWrite(n.X, "taking the address of")
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "clear" && len(n.Args) == 1 {
						pp.checkWrite(n.Args[0], "clearing")
					}
				}
				return true
			})
		}
	}
}

// planeTypes collects every //esp:plane-annotated named type in the
// module, mapped to its plane name.
func (m *Module) planeTypes() map[types.Object]string {
	if m.planeCache != nil {
		return m.planeCache
	}
	planes := map[types.Object]string{}
	for _, pkg := range m.byPath {
		if pkg == nil || pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if ds := m.ann.at(m.Fset.Position(ts.Pos()).Filename, m.Fset.Position(ts.Pos()).Line, "plane"); len(ds) > 0 {
						if obj := pkg.Info.Defs[ts.Name]; obj != nil {
							planes[obj] = ds[0].arg
						}
					} else if len(gd.Specs) == 1 {
						// Annotation on the `type` keyword's line (doc
						// comment above a single-spec decl).
						p := m.Fset.Position(gd.Pos())
						if ds := m.ann.at(p.Filename, p.Line, "plane"); len(ds) > 0 {
							if obj := pkg.Info.Defs[ts.Name]; obj != nil {
								planes[obj] = ds[0].arg
							}
						}
					}
				}
			}
		}
	}
	m.planeCache = planes
	return planes
}

type planePass struct {
	pass   *Pass
	planes map[types.Object]string
	ctor   bool
}

// checkWrite descends through the write target looking for a selector
// whose base is a plane-typed value, or a dereference of a plane
// pointer.
func (pp *planePass) checkWrite(e ast.Expr, action string) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			if obj, name := pp.planeOf(x.X); obj != nil {
				pp.report(x, action, name, obj, "the pointed-to value")
				return
			}
			e = x.X
		case *ast.SelectorExpr:
			if obj, name := pp.planeOf(x.X); obj != nil {
				pp.report(x, action, name, obj, "field "+x.Sel.Name)
				return
			}
			e = x.X
		default:
			return
		}
	}
}

// planeOf resolves e's type (through one pointer) to an annotated
// plane type.
func (pp *planePass) planeOf(e ast.Expr) (types.Object, string) {
	t := pp.pass.typeOf(e)
	if t == nil {
		return nil, ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	if name, ok := pp.planes[named.Obj()]; ok {
		return named.Obj(), name
	}
	return nil, ""
}

func (pp *planePass) report(at ast.Expr, action, plane string, obj types.Object, what string) {
	// Constructors of the defining package may write freely.
	if pp.ctor && obj.Pkg() == pp.pass.Pkg.Types {
		return
	}
	pp.pass.Reportf(at.Pos(),
		"the "+plane+" plane is immutable after construction; move the write into an //esp:ctor function of "+obj.Pkg().Name()+" or build a new value",
		"%s %s of %s-plane type %s.%s outside a constructor",
		action, what, plane, obj.Pkg().Name(), obj.Name())
}
