package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerSentinelIs flags identity comparisons against error
// sentinels: `err == ErrX`, `err != ErrX`, and `switch err { case
// ErrX: }`. The engine wraps sentinels at every layer boundary
// (fmt.Errorf("...: %w", sim.ErrTimeout), the retry executor, the
// cluster coordinator), so an identity comparison that works today
// silently stops matching the first time a wrapping layer is added —
// exactly how a breaker or retry policy quietly dies. errors.Is is the
// contract; the rare deliberate fast path (io.ReadFull returns
// unwrapped io.EOF) carries an //esp:exempt with its justification.
var AnalyzerSentinelIs = &Analyzer{
	Name: "sentinelis",
	Doc:  "err == ErrX comparisons against wrappable sentinels must use errors.Is",
	Run:  runSentinelIs,
}

func runSentinelIs(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if sentinel := sentinelOperand(pass, n.X, n.Y); sentinel != nil {
					pass.Reportf(n.Pos(),
						"use errors.Is: sentinels may arrive wrapped by an outer layer, and == stops matching the day one does",
						"%s comparison against sentinel %s", n.Op, sentinelName(sentinel))
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorExpr(pass, n.Tag) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc := stmt.(*ast.CaseClause)
					for _, e := range cc.List {
						if obj := sentinelVar(pass, e); obj != nil {
							pass.Reportf(e.Pos(),
								"rewrite as a switch{case errors.Is(err, ...)} chain: case comparison is ==, which stops matching wrapped sentinels",
								"switch case compares error against sentinel %s by identity", sentinelName(obj))
						}
					}
				}
			}
			return true
		})
	}
}

// sentinelOperand returns the sentinel object when one side of a
// comparison is a package-level error var and the other is an error
// expression (excluding nil checks, which are fine).
func sentinelOperand(pass *Pass, x, y ast.Expr) types.Object {
	if obj := sentinelVar(pass, x); obj != nil && isErrorExpr(pass, y) {
		return obj
	}
	if obj := sentinelVar(pass, y); obj != nil && isErrorExpr(pass, x) {
		return obj
	}
	return nil
}

// sentinelVar resolves e to a package-level variable of type error.
func sentinelVar(pass *Pass, e ast.Expr) types.Object {
	obj := pass.objOf(e)
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // local, not a sentinel
	}
	if !types.AssignableTo(v.Type(), types.Universe.Lookup("error").Type()) {
		return nil
	}
	return v
}

// isErrorExpr reports whether e is an error-typed expression (nil
// checks are identity by design and excluded).
func isErrorExpr(pass *Pass, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	t := pass.typeOf(e)
	return t != nil && types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

func sentinelName(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}
