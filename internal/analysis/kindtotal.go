package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerKindTotal proves the error-taxonomy contract: every failure
// the engine can produce maps to exactly one named fault.ErrorKind on
// the wire, never an ad-hoc string and never the unknown fallback. Two
// checks enforce it. First, every exported Err* sentinel in the module
// must be classifiable — referenced in Classify's errors.Is chain,
// built with the kind-carrying Sentinel constructor, wrapping (via
// %w) an already-classified sentinel, or explicitly waived with
// //esp:exempt. Second, a switch over the ErrorKind type must either
// enumerate every declared kind or carry a default clause, so adding a
// kind revisits every dispatch site.
var AnalyzerKindTotal = &Analyzer{
	Name: "kindtotal",
	Doc:  "exported Err* sentinels must classify to a non-unknown ErrorKind; switches over ErrorKind must be exhaustive",
	Run:  runKindTotal,
}

// kindTaxonomy is the module's error-kind vocabulary, discovered from
// the package defining `type ErrorKind` + `func Classify(error) ErrorKind`.
type kindTaxonomy struct {
	kindType *types.Named
	// classified holds every sentinel object Classify tests with
	// errors.Is.
	classified map[types.Object]bool
	// unknown holds the kinds that do not count as classification: the
	// zero kind and whatever the default branch of Classify returns.
	unknown map[types.Object]bool
	// allKinds is every declared constant of the kind type.
	allKinds []types.Object
	// sentinelCtor is the kind-carrying error constructor (a function
	// in the taxonomy package with signature func(string, Kind) error),
	// if one exists.
	sentinelCtor types.Object
}

// kindTaxonomyOf discovers (and caches) the module's taxonomy; nil
// when the module defines none.
func (m *Module) kindTaxonomyOf() *kindTaxonomy {
	if m.kindCache != nil {
		return m.kindCache
	}
	for _, pkg := range m.byPath {
		if pkg == nil || pkg.Types == nil {
			continue
		}
		tax := discoverTaxonomy(pkg)
		if tax != nil {
			m.kindCache = tax
			return tax
		}
	}
	return nil
}

func discoverTaxonomy(pkg *Package) *kindTaxonomy {
	scope := pkg.Types.Scope()
	fn, ok := scope.Lookup("Classify").(*types.Func)
	if !ok {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return nil
	}
	if !types.Identical(sig.Params().At(0).Type(), types.Universe.Lookup("error").Type()) {
		return nil
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	if !ok || named.Obj().Pkg() != pkg.Types {
		return nil
	}
	if basic, ok := named.Underlying().(*types.Basic); !ok || basic.Kind() != types.String {
		return nil
	}

	tax := &kindTaxonomy{
		kindType:   named,
		classified: map[types.Object]bool{},
		unknown:    map[types.Object]bool{},
	}
	// Every declared constant of the kind type; the zero ("") kind is
	// unknown by definition.
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		tax.allKinds = append(tax.allKinds, c)
		if constant.StringVal(c.Val()) == "" {
			tax.unknown[c] = true
		}
	}
	sort.Slice(tax.allKinds, func(i, j int) bool {
		return tax.allKinds[i].Name() < tax.allKinds[j].Name()
	})

	// Walk Classify: errors.Is(err, X) marks X classified; the default
	// branch's returned constant is the unknown fallback.
	decl := funcDeclOf(pkg, "Classify")
	if decl == nil || decl.Body == nil {
		return nil
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPkgFunc(pkg, n.Fun, "errors", "Is") && len(n.Args) == 2 {
				if obj := objIn(pkg, n.Args[1]); obj != nil {
					tax.classified[obj] = true
				}
			}
		case *ast.CaseClause:
			// A `default:` (or the final fallthrough case) returning a
			// kind constant marks that kind as the unknown fallback.
			if n.List == nil {
				for _, stmt := range n.Body {
					ret, ok := stmt.(*ast.ReturnStmt)
					if !ok || len(ret.Results) != 1 {
						continue
					}
					if obj := objIn(pkg, ret.Results[0]); obj != nil {
						tax.unknown[obj] = true
					}
				}
			}
		}
		return true
	})

	// A kind-carrying sentinel constructor: func(string, Kind) error.
	for _, name := range scope.Names() {
		f, ok := scope.Lookup(name).(*types.Func)
		if !ok {
			continue
		}
		s := f.Type().(*types.Signature)
		if s.Params().Len() == 2 && s.Results().Len() == 1 &&
			types.Identical(s.Params().At(1).Type(), named) &&
			types.Identical(s.Results().At(0).Type(), types.Universe.Lookup("error").Type()) {
			tax.sentinelCtor = f
			break
		}
	}
	return tax
}

func runKindTotal(pass *Pass) {
	tax := pass.Module.kindTaxonomyOf()
	if tax == nil {
		return
	}
	checkSentinelCoverage(pass, tax)
	checkKindSwitches(pass, tax)
}

// checkSentinelCoverage requires every exported Err* package-level
// error var to be classifiable.
func checkSentinelCoverage(pass *Pass, tax *kindTaxonomy) {
	pkg := pass.Pkg
	inits := sentinelInits(pkg)
	covered := map[types.Object]int{} // 0 unknown, 1 covered, -1 in progress
	var isCovered func(obj types.Object) bool
	isCovered = func(obj types.Object) bool {
		if tax.classified[obj] {
			return true
		}
		switch covered[obj] {
		case 1:
			return true
		case -1:
			return false // cycle
		}
		// Exempt sentinels (and anything wrapping them) are accounted
		// for: the waiver says why they never reach Classify raw.
		p := pass.Module.Fset.Position(obj.Pos())
		if _, ok := pass.Module.ann.exemptAt(p.Filename, p.Line); ok {
			covered[obj] = 1
			return true
		}
		init, ok := inits[obj]
		if !ok {
			return false
		}
		covered[obj] = -1
		res := initCovers(pass, tax, init, isCovered)
		if res {
			covered[obj] = 1
		} else {
			covered[obj] = 0
		}
		return res
	}

	for obj := range inits {
		if !obj.Exported() || !strings.HasPrefix(obj.Name(), "Err") {
			continue
		}
		if isCovered(obj) {
			continue
		}
		pass.Reportf(obj.Pos(),
			"add an errors.Is case to "+tax.kindType.Obj().Pkg().Name()+".Classify, build it with the kind-carrying constructor, wrap a classified sentinel with %w, or annotate //esp:exempt <reason>",
			"exported sentinel %s.%s classifies to the unknown fallback %s",
			pkg.Types.Name(), obj.Name(), tax.kindType.Obj().Name())
	}
}

// sentinelInits maps each package-level error-typed var to its
// initializer expression.
func sentinelInits(pkg *Package) map[types.Object]ast.Expr {
	errType := types.Universe.Lookup("error").Type()
	out := map[types.Object]ast.Expr{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := pkg.Info.Defs[name]
					if obj == nil || obj.Parent() != pkg.Types.Scope() {
						continue
					}
					if !types.AssignableTo(obj.Type(), errType) {
						continue
					}
					if i < len(vs.Values) {
						out[obj] = vs.Values[i]
					} else {
						out[obj] = nil
					}
				}
			}
		}
	}
	return out
}

// initCovers reports whether a sentinel initializer yields a
// classifiable error: the kind constructor with a non-unknown kind, or
// fmt.Errorf("...%w...", coveredSentinel), or an alias of a covered
// sentinel.
func initCovers(pass *Pass, tax *kindTaxonomy, init ast.Expr, isCovered func(types.Object) bool) bool {
	if init == nil {
		return false
	}
	pkg := pass.Pkg
	switch e := ast.Unparen(init).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if obj := objIn(pkg, e); obj != nil {
			return tax.classified[obj] || isCovered(obj)
		}
	case *ast.CallExpr:
		callee := objIn(pkg, e.Fun)
		if callee != nil && callee == tax.sentinelCtor && len(e.Args) == 2 {
			kind := objIn(pkg, e.Args[1])
			return kind != nil && !tax.unknown[kind]
		}
		if isPkgFunc(pkg, e.Fun, "fmt", "Errorf") && len(e.Args) >= 2 {
			tv, ok := pkg.Info.Types[e.Args[0]]
			if !ok || tv.Value == nil || !strings.Contains(constant.StringVal(tv.Value), "%w") {
				return false
			}
			for _, arg := range e.Args[1:] {
				if obj := objIn(pkg, arg); obj != nil && (tax.classified[obj] || isCovered(obj)) {
					return true
				}
			}
		}
	}
	return false
}

// checkKindSwitches requires switches over the kind type to enumerate
// every declared kind or carry a default clause.
func checkKindSwitches(pass *Pass, tax *kindTaxonomy) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			t := pass.typeOf(sw.Tag)
			if t == nil || !types.Identical(t, tax.kindType) {
				return true
			}
			seen := map[types.Object]bool{}
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc := stmt.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if obj := objIn(pass.Pkg, e); obj != nil {
						seen[obj] = true
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for _, k := range tax.allKinds {
				if !seen[k] {
					missing = append(missing, k.Name())
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(),
					"add the missing cases or a default clause so new kinds revisit this dispatch",
					"switch over %s is not exhaustive: missing %s",
					tax.kindType.Obj().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// ---- shared helpers ----

// funcDeclOf finds the declaration of a package-level function.
func funcDeclOf(pkg *Package, name string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// objIn resolves an identifier or selector expression to its object.
func objIn(pkg *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := pkg.Info.Uses[e]; o != nil {
			return o
		}
		return pkg.Info.Defs[e]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[e.Sel]
	}
	return nil
}

// isPkgFunc reports whether fun denotes stdpkg.name (e.g. errors.Is).
func isPkgFunc(pkg *Package, fun ast.Expr, stdpkg, name string) bool {
	obj := objIn(pkg, fun)
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == stdpkg && f.Name() == name
}
