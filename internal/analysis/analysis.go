// Package analysis is esplint's engine: a dependency-free (go/ast +
// go/parser + go/types only) static-analysis suite that proves the
// engine's replay contracts at compile time instead of waiting for a
// chaos soak to catch a violation. Three invariants make the two-plane
// design sound — pooled machines reset completely, workload-plane data
// is immutable after construction, and the error-kind taxonomy is
// total — and each has an analyzer here:
//
//   - resetcomplete: every field of a type with a pooled Reset() method
//     is zeroed, delegated to a sub-reset, or annotated //esp:immutable.
//   - planepurity: fields of //esp:plane types are only written inside
//     //esp:ctor constructor functions of the defining package.
//   - kindtotal: every exported Err* sentinel classifies to a
//     non-unknown fault.ErrorKind, and switches over ErrorKind are
//     exhaustive.
//   - sentinelis: err == ErrX comparisons against wrappable sentinels
//     must use errors.Is.
//
// # Annotation grammar
//
// Directives are ordinary comments beginning exactly with "esp:" and
// govern the line they sit on and the line below, so both trailing and
// standalone placements work:
//
//	cfg Config //esp:immutable
//
//	//esp:exempt io.ReadFull returns unwrapped io.EOF
//	if err == io.EOF { ... }
//
// Recognized directives:
//
//	//esp:immutable           field is configuration/wiring, not run
//	                          state; resetcomplete does not require
//	                          Reset to touch it.
//	//esp:plane <name>        the annotated type is <name>-plane data:
//	                          immutable after construction (planepurity).
//	//esp:ctor                the annotated function is a constructor:
//	                          it may write plane-type fields.
//	//esp:exempt <reason>     suppress any diagnostic on the governed
//	                          lines; the reason is mandatory.
//
// A misspelled or malformed esp: directive is itself a diagnostic, so
// a typo cannot silently disable a check.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: where, which analyzer, what is wrong, and
// how to appease it.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	Hint     string         `json:"hint,omitempty"`
}

// String renders the go-vet-style one-line form.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	if d.Hint != "" {
		s += " (" + d.Hint + ")"
	}
	return s
}

// Analyzer is one domain pass over a type-checked package.
type Analyzer struct {
	// Name is the flag/report identifier (e.g. "resetcomplete").
	Name string
	// Doc is the one-line description shown by esplint -help.
	Doc string
	// Run inspects pass.Pkg and reports via pass.Report.
	Run func(pass *Pass)
}

// Pass is one (analyzer, package) execution.
type Pass struct {
	Module *Module
	Pkg    *Package

	analyzer *Analyzer
	sink     *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
	})
}

// typeOf returns the type of e in this pass's package (nil if unknown).
func (p *Pass) typeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// objOf resolves an identifier or selector to its object (nil if none).
func (p *Pass) objOf(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := p.Pkg.Info.Uses[e]; o != nil {
			return o
		}
		return p.Pkg.Info.Defs[e]
	case *ast.SelectorExpr:
		return p.Pkg.Info.Uses[e.Sel]
	}
	return nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerResetComplete,
		AnalyzerPlanePurity,
		AnalyzerKindTotal,
		AnalyzerSentinelIs,
	}
}

// Run executes the given analyzers over every package loaded from the
// module's patterns, applies //esp:exempt suppressions, and returns the
// surviving diagnostics sorted by position. Malformed esp: directives
// are reported under the pseudo-analyzer "directives".
func (m *Module) Run(analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, bad := range m.ann.malformed {
		diags = append(diags, bad)
	}
	for _, pkg := range m.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{Module: m, Pkg: pkg, analyzer: a, sink: &diags}
			a.Run(pass)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if _, ok := m.ann.exemptAt(d.File, d.Line); ok {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// ---- esp: directives ----

// directive is one parsed esp: comment.
type directive struct {
	kind string // "immutable", "exempt", "plane", "ctor"
	arg  string
	pos  token.Position
}

// annotations indexes every esp: directive in a module by file and the
// lines it governs (the comment's own line and the one below it).
type annotations struct {
	// byLine[file][line] lists directives governing that line.
	byLine    map[string]map[int][]directive
	malformed []Diagnostic
}

func newAnnotations() *annotations {
	return &annotations{byLine: map[string]map[int][]directive{}}
}

// directiveKinds maps each directive to whether it requires an argument.
var directiveKinds = map[string]bool{
	"immutable": false,
	"exempt":    true,
	"plane":     true,
	"ctor":      false,
}

// collect parses the esp: directives of one file.
func (a *annotations) collect(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//esp:")
			if !ok {
				// "// esp:" with a space is a classic typo that would
				// silently disable the directive; catch it.
				if rest, spaced := strings.CutPrefix(c.Text, "// esp:"); spaced {
					a.flag(fset, c, "esp: directives must start exactly with //esp: (no space): // esp:"+firstWord(rest))
				}
				continue
			}
			kind, arg, _ := strings.Cut(text, " ")
			arg = strings.TrimSpace(arg)
			needsArg, known := directiveKinds[kind]
			switch {
			case !known:
				a.flag(fset, c, fmt.Sprintf("unknown esp: directive %q (want immutable, exempt, plane, or ctor)", kind))
				continue
			case needsArg && arg == "":
				a.flag(fset, c, fmt.Sprintf("esp:%s requires an argument (e.g. //esp:%s <reason>)", kind, kind))
				continue
			}
			pos := fset.Position(c.Pos())
			a.add(pos.Filename, pos.Line, directive{kind: kind, arg: arg, pos: pos})
			a.add(pos.Filename, pos.Line+1, directive{kind: kind, arg: arg, pos: pos})
		}
	}
}

func (a *annotations) add(file string, line int, d directive) {
	m := a.byLine[file]
	if m == nil {
		m = map[int][]directive{}
		a.byLine[file] = m
	}
	m[line] = append(m[line], d)
}

func (a *annotations) flag(fset *token.FileSet, c *ast.Comment, msg string) {
	pos := fset.Position(c.Pos())
	a.malformed = append(a.malformed, Diagnostic{
		Analyzer: "directives",
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  msg,
		Hint:     "see DESIGN.md §12 for the annotation grammar",
	})
}

// at returns the directives of the given kind governing file:line.
func (a *annotations) at(file string, line int, kind string) []directive {
	var out []directive
	for _, d := range a.byLine[file][line] {
		if d.kind == kind {
			out = append(out, d)
		}
	}
	return out
}

// has reports whether a directive of kind governs the position.
func (a *annotations) has(fset *token.FileSet, pos token.Pos, kind string) bool {
	p := fset.Position(pos)
	return len(a.at(p.Filename, p.Line, kind)) > 0
}

// exemptAt reports the reason of an //esp:exempt governing file:line.
func (a *annotations) exemptAt(file string, line int) (string, bool) {
	if ds := a.at(file, line, "exempt"); len(ds) > 0 {
		return ds[0].arg, true
	}
	return "", false
}

func firstWord(s string) string {
	w, _, _ := strings.Cut(strings.TrimSpace(s), " ")
	return w
}
