package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture tests: each fixture under testdata/src is a tiny module whose
// sources carry `// want `+"`regexp`"+` expectations. A trailing want
// governs its own line; a want on a line of its own governs the line
// below (for diagnostics anchored to comment lines, like malformed
// directives). Every diagnostic must match a want and every want must
// be matched — both unexpected findings and silent regressions fail.

var wantRe = regexp.MustCompile("// want `([^`]+)`")

type wantEntry struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func collectWants(t *testing.T, root string) []*wantEntry {
	t.Helper()
	var wants []*wantEntry
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, text := range strings.Split(string(data), "\n") {
			ms := wantRe.FindAllStringSubmatch(text, -1)
			if ms == nil {
				continue
			}
			line := i + 1
			if strings.HasPrefix(strings.TrimSpace(text), "// want") {
				line++ // standalone want governs the next line
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp: %v", rel, i+1, err)
				}
				wants = append(wants, &wantEntry{file: filepath.ToSlash(rel), line: line, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func runFixture(t *testing.T, fixture string, analyzers []*Analyzer) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if errs := m.TypeErrors(); len(errs) > 0 {
		t.Fatalf("fixture does not type-check: %v", errs)
	}
	wants := collectWants(t, root)
	diags := m.Run(analyzers)
outer:
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.File)
		if err != nil {
			t.Fatal(err)
		}
		rel = filepath.ToSlash(rel)
		msg := d.Analyzer + ": " + d.Message
		for _, w := range wants {
			if !w.hit && w.file == rel && w.line == d.Line && w.re.MatchString(msg) {
				w.hit = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic %s:%d:%d: %s", rel, d.Line, d.Col, msg)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q was not reported", w.file, w.line, w.re)
		}
	}
}

func TestResetComplete(t *testing.T) {
	runFixture(t, "resetcomplete", []*Analyzer{AnalyzerResetComplete})
}

func TestPlanePurity(t *testing.T) {
	runFixture(t, "planepurity", []*Analyzer{AnalyzerPlanePurity})
}

func TestKindTotal(t *testing.T) {
	runFixture(t, "kindtotal", []*Analyzer{AnalyzerKindTotal})
}

func TestSentinelIs(t *testing.T) {
	runFixture(t, "sentinelis", []*Analyzer{AnalyzerSentinelIs})
}

func TestDirectives(t *testing.T) {
	runFixture(t, "directives", All())
}

// TestCleanTree is the gate the whole suite exists for: the repository
// itself must lint clean, so every contract the analyzers prove —
// complete resets, an immutable workload plane, a total error taxonomy,
// wrap-safe sentinel matching — holds on HEAD.
func TestCleanTree(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if errs := m.TypeErrors(); len(errs) > 0 {
		t.Fatalf("type errors: %v", errs)
	}
	for _, d := range m.Run(All()) {
		t.Errorf("%s", d.String())
	}
}
