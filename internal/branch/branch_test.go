package branch

import (
	"testing"
	"testing/quick"

	"espsim/internal/trace"
)

func condBranch(pc uint64, taken bool) trace.Inst {
	return trace.Inst{PC: pc, Kind: trace.Branch, Taken: taken, Addr: pc + 64}
}

func TestLearnsBiasedBranch(t *testing.T) {
	p := New()
	in := condBranch(0x1000, true)
	for i := 0; i < 8; i++ {
		p.Resolve(in)
	}
	miss := 0
	for i := 0; i < 100; i++ {
		if p.Resolve(in) {
			miss++
		}
	}
	if miss != 0 {
		t.Fatalf("%d mispredicts on a perfectly biased branch after warmup", miss)
	}
}

func TestBTBLearnsTargets(t *testing.T) {
	p := New()
	in := condBranch(0x2000, true)
	p.Resolve(in)
	pred := p.Predict(in)
	if pred.Target != in.Addr {
		t.Fatalf("BTB did not learn target: got %#x want %#x", pred.Target, in.Addr)
	}
}

func TestBTBAssociativity(t *testing.T) {
	// Four branches aliasing to the same BTB set must all coexist
	// (4-way); a fifth evicts the LRU.
	p := New()
	mk := func(i uint64) trace.Inst {
		return condBranch(0x1000+i*btbSets*4, true)
	}
	for i := uint64(0); i < 4; i++ {
		p.Resolve(mk(i))
	}
	for i := uint64(0); i < 4; i++ {
		if p.Predict(mk(i)).Target == 0 {
			t.Fatalf("branch %d evicted from a 4-way set holding 4 entries", i)
		}
	}
	p.Resolve(mk(4))
	if p.Predict(mk(0)).Target != 0 {
		t.Fatal("LRU entry (0) should have been evicted by the fifth")
	}
	if p.Predict(mk(4)).Target == 0 {
		t.Fatal("newly inserted entry missing")
	}
}

func TestMispredictedSemantics(t *testing.T) {
	in := condBranch(0x100, true)
	if !Mispredicted(Prediction{Taken: false}, in) {
		t.Fatal("wrong direction must mispredict")
	}
	// Direct branch, right direction, wrong target: misfetch, not mispredict.
	if Mispredicted(Prediction{Taken: true, Target: 0}, in) {
		t.Fatal("direct-branch BTB miss should not be a full mispredict")
	}
	if !Misfetched(Prediction{Taken: true, Target: 0}, in) {
		t.Fatal("direct-branch BTB miss should be a misfetch")
	}
	if Misfetched(Prediction{Taken: true, Target: in.Addr}, in) {
		t.Fatal("correct target is not a misfetch")
	}
	// Indirect branch: wrong target is a full mispredict.
	ind := in
	ind.Indirect = true
	if !Mispredicted(Prediction{Taken: true, Target: 0}, ind) {
		t.Fatal("indirect target miss must be a full mispredict")
	}
	if Misfetched(Prediction{Taken: true, Target: 0}, ind) {
		t.Fatal("indirect target miss is not a misfetch")
	}
	// Not-taken branch correctly predicted: neither.
	nt := condBranch(0x100, false)
	if Mispredicted(Prediction{Taken: false}, nt) || Misfetched(Prediction{Taken: false}, nt) {
		t.Fatal("correct not-taken prediction flagged")
	}
}

func TestRASPredictsReturns(t *testing.T) {
	p := New()
	call := trace.Inst{PC: 0x1000, Kind: trace.Branch, Taken: true, Call: true, Addr: 0x5000}
	ret := trace.Inst{PC: 0x5100, Kind: trace.Branch, Taken: true, Ret: true, Addr: 0x1004}
	p.Update(call)
	pred := p.Predict(ret)
	if pred.Target != 0x1004 {
		t.Fatalf("RAS predicted %#x, want 0x1004", pred.Target)
	}
	p.Update(ret)
	// Stack now empty: next return has no prediction.
	if p.Predict(ret).Target == 0x1004 {
		t.Fatal("RAS should have popped")
	}
}

func TestRASNesting(t *testing.T) {
	p := New()
	for i := uint64(0); i < 3; i++ {
		p.Update(trace.Inst{PC: 0x1000 + i*0x100, Kind: trace.Branch, Taken: true, Call: true, Addr: 0x9000})
	}
	for i := int64(2); i >= 0; i-- {
		ret := trace.Inst{PC: 0x9100, Kind: trace.Branch, Taken: true, Ret: true, Addr: uint64(0x1004 + i*0x100)}
		if got := p.Predict(ret); got.Target != ret.Addr {
			t.Fatalf("nested return %d: got %#x want %#x", i, got.Target, ret.Addr)
		}
		p.Update(ret)
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	p := New()
	call := trace.Inst{PC: 0x1000, Kind: trace.Branch, Taken: true, Call: true, Addr: 0x5000}
	p.Update(call)
	snap := p.SnapshotRAS()
	p.ClearRAS()
	ret := trace.Inst{PC: 0x5100, Kind: trace.Branch, Taken: true, Ret: true, Addr: 0x1004}
	if p.Predict(ret).Target == 0x1004 {
		t.Fatal("ClearRAS did not clear")
	}
	p.RestoreRAS(snap)
	if p.Predict(ret).Target != 0x1004 {
		t.Fatal("RestoreRAS did not restore")
	}
}

func TestIBTBLearnsDominantTarget(t *testing.T) {
	p := New()
	ind := trace.Inst{PC: 0x3000, Kind: trace.Branch, Taken: true, Indirect: true, Addr: 0x7000}
	p.Resolve(ind)
	if p.Predict(ind).Target != 0x7000 {
		t.Fatal("iBTB did not learn the target")
	}
}

func TestLoopPredictorLearnsTripCount(t *testing.T) {
	p := New()
	loop := func(taken bool) trace.Inst {
		return trace.Inst{PC: 0x4000, Kind: trace.Branch, Taken: taken, Addr: 0x3F00}
	}
	// Trip count 5: taken 4 times, then not taken. Train three full
	// iterations to build confidence.
	runLoop := func() (missAtExit bool) {
		for i := 0; i < 4; i++ {
			p.Resolve(loop(true))
		}
		return p.Resolve(loop(false))
	}
	runLoop()
	runLoop()
	runLoop()
	if runLoop() {
		t.Fatal("loop predictor failed to predict the exit of a learned trip count")
	}
}

func TestPIRChangesGlobalIndex(t *testing.T) {
	p := New()
	p.SetPIR(0)
	i0, t0 := p.globalIndex(0x8888)
	p.SetPIR(0x1234)
	i1, t1 := p.globalIndex(0x8888)
	if i0 == i1 && t0 == t1 {
		t.Fatal("PIR change did not affect global predictor indexing")
	}
}

func TestPIRMasked(t *testing.T) {
	f := func(v uint64) bool {
		p := New()
		p.SetPIR(v)
		return p.PIR() <= pirMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPIRAdvancesOnBranches(t *testing.T) {
	p := New()
	before := p.PIR()
	p.Update(condBranch(0x100, true))
	if p.PIR() == before {
		t.Fatal("PIR did not advance")
	}
}

func TestStatsAccounting(t *testing.T) {
	p := New()
	in := condBranch(0x5000, true)
	for i := 0; i < 10; i++ {
		p.Resolve(in)
	}
	if p.Stats.Branches != 10 {
		t.Fatalf("Branches = %d", p.Stats.Branches)
	}
	if p.Stats.Mispredicts == 0 || p.Stats.Mispredicts == 10 {
		t.Fatalf("Mispredicts = %d: cold misses expected, then learned", p.Stats.Mispredicts)
	}
	if got := p.Stats.MispredictRate(); got <= 0 || got >= 1 {
		t.Fatalf("MispredictRate = %v", got)
	}
}

func TestPredictorValueCopyIsIndependent(t *testing.T) {
	// BPReplicate relies on Predictor being replicable by value copy.
	p := New()
	in := condBranch(0x100, true)
	for i := 0; i < 8; i++ {
		p.Resolve(in)
	}
	replica := *p
	other := condBranch(0x100, false)
	for i := 0; i < 8; i++ {
		replica.Resolve(other)
	}
	// The original must still predict taken.
	if got := p.Predict(in); !got.Taken {
		t.Fatal("training a replica leaked into the original predictor")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		p := New()
		for i := 0; i < 2000; i++ {
			pc := uint64(0x1000 + (i%37)*4)
			taken := i%3 != 0
			p.Resolve(condBranch(pc, taken))
		}
		return p.Stats
	}
	if run() != run() {
		t.Fatal("predictor is not deterministic")
	}
}

func TestMispredictRateUnderRandomOutcomes(t *testing.T) {
	// A 50/50 random branch cannot be predicted: rate must be near 0.5.
	p := New()
	rng := uint64(12345)
	for i := 0; i < 20000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		p.Resolve(condBranch(0x9000, rng>>63 == 1))
	}
	rate := p.Stats.MispredictRate()
	if rate < 0.4 || rate > 0.6 {
		t.Fatalf("random branch mispredict rate %.3f, want ~0.5", rate)
	}
}

// TestPredictUpdateEquivalence drives two predictors through the same
// randomized branch stream — one via separate Predict/Update calls, one
// via the fused PredictUpdate — and requires identical predictions and
// identical final state at every step.
func TestPredictUpdateEquivalence(t *testing.T) {
	split, fused := New(), New()
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 50000; i++ {
		h := next()
		in := trace.Inst{
			PC:     0x1000 + (h%977)*4,
			Kind:   trace.Branch,
			Taken:  h>>8&3 != 0,
			Addr:   0x1000 + (h>>16%4096)*4,
		}
		switch h >> 40 % 10 {
		case 0:
			in.Call, in.Taken = true, true
		case 1:
			in.Ret, in.Taken = true, true
		case 2:
			in.Indirect, in.Taken = true, true
		case 3:
			in.Call, in.Indirect, in.Taken = true, true, true
		}
		if h>>50&31 == 0 {
			split.LoopReadOnly = !split.LoopReadOnly
			fused.LoopReadOnly = split.LoopReadOnly
		}
		a := split.Predict(in)
		split.Update(in)
		b := fused.PredictUpdate(&in)
		if a != b {
			t.Fatalf("step %d: prediction diverged: split=%+v fused=%+v (in=%+v)", i, a, b, in)
		}
		if *split != *fused {
			t.Fatalf("step %d: predictor state diverged after %+v", i, in)
		}
	}
}
