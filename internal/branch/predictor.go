// Package branch models the Pentium M-style branch predictor the paper's
// baseline uses (Figure 7, [35]): a PIR-hashed tagged global predictor, a
// bimodal local predictor, BTB and iBTB target tables, a loop predictor
// and a return address stack.
//
// The Path Information Register (PIR) is the piece of state ESP
// replicates per execution context (§3.4, §4.3): preserving it across the
// control switches between the normal event and the pre-executed events
// avoids cross-event pollution of the global predictor's index stream.
package branch

import "espsim/internal/trace"

// Table sizes (Figure 7).
const (
	globalEntries = 2048
	localEntries  = 4096
	btbSets       = 512 // 2048 entries, 4-way
	btbWays       = 4
	ibtbEntries   = 256
	loopEntries   = 256
	rasEntries    = 16

	pirBits = 15
	pirMask = 1<<pirBits - 1
)

// Stats counts conditional-direction and target outcomes.
type Stats struct {
	// Branches counts every executed branch; Mispredicts counts those
	// whose predicted direction or target was wrong.
	Branches    int64
	Mispredicts int64
}

// MispredictRate returns Mispredicts/Branches.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

type globalEntry struct {
	tag     uint16
	counter uint8 // 2-bit saturating
	valid   bool
}

type targetEntry struct {
	tag    uint32
	target uint64
	valid  bool
}

type loopEntry struct {
	tag   uint32
	trip  uint16 // learned iteration count
	cur   uint16 // current iteration
	conf  uint8  // confidence the trip count repeats
	valid bool
}

// Prediction is the front end's guess for one branch.
type Prediction struct {
	// Taken is the predicted direction (always true for unconditional
	// branches once their type is known to the front end).
	Taken bool
	// Target is the predicted target when Taken.
	Target uint64
}

// Predictor is the complete predictor state. It is deliberately a plain
// value-struct of arrays so the "separate context and tables" design
// point of Figure 12 can replicate it wholesale.
type Predictor struct {
	pir uint64

	global [globalEntries]globalEntry
	local  [localEntries]uint8 // 2-bit saturating counters
	btb    [btbSets][btbWays]targetEntry
	ibtb   [ibtbEntries]targetEntry
	loop   [loopEntries]loopEntry

	ras    [rasEntries]uint64
	rasTop int

	// LoopReadOnly freezes the loop predictor's iteration counters:
	// pre-executions predict with them but do not advance them, since an
	// interleaved future event would desynchronize the counts the normal
	// event is mid-way through.
	LoopReadOnly bool

	// Stats accumulates outcomes observed by Resolve.
	Stats Stats
}

// New returns a predictor with weakly-not-taken counters and empty tables.
func New() *Predictor {
	p := &Predictor{}
	for i := range p.local {
		p.local[i] = 1 // weakly not-taken
	}
	return p
}

// Reset restores the predictor to its just-constructed cold state. The
// tables are inline arrays, so this reallocates nothing; a reset
// predictor is bit-identical to New().
func (p *Predictor) Reset() {
	*p = Predictor{}
	for i := range p.local {
		p.local[i] = 1 // weakly not-taken
	}
}

// PIR returns the current path information register, for per-context
// save/restore (ESP replicates one PIR per execution context).
func (p *Predictor) PIR() uint64 { return p.pir }

// SetPIR installs a saved path information register.
func (p *Predictor) SetPIR(v uint64) { p.pir = v & pirMask }

// ClearRAS empties the return address stack; ESP does this when returning
// from a pre-execution, since the stack may hold pre-executed frames
// (§4.1).
func (p *Predictor) ClearRAS() { p.rasTop = 0 }

// RASState is a checkpoint of the return address stack. Runahead
// execution checkpoints and restores it around a runahead episode.
type RASState struct {
	stack [rasEntries]uint64
	top   int
}

// SnapshotRAS captures the return address stack.
func (p *Predictor) SnapshotRAS() RASState { return RASState{stack: p.ras, top: p.rasTop} }

// RestoreRAS reinstates a snapshot taken by SnapshotRAS.
func (p *Predictor) RestoreRAS(s RASState) { p.ras, p.rasTop = s.stack, s.top }

func (p *Predictor) globalIndex(pc uint64) (idx int, tag uint16) {
	h := (pc >> 2) ^ (p.pir << 3) ^ (p.pir >> 7)
	return int(h % globalEntries), uint16((pc>>13 ^ p.pir) & 0x3f)
}

// Predict returns the front end's guess for the branch in. The dynamic
// fields of in that a real front end would not know (Taken, Target) are
// not consulted; only PC and the statically-known type bits are.
func (p *Predictor) Predict(in trace.Inst) Prediction {
	var pred Prediction
	// Direction.
	switch {
	case in.Indirect || in.Call || in.Ret:
		pred.Taken = true
	default:
		pred.Taken = p.predictDirection(in.PC)
	}
	// Target.
	switch {
	case in.Ret:
		if p.rasTop > 0 {
			pred.Target = p.ras[p.rasTop-1]
		}
	case in.Indirect:
		e := &p.ibtb[p.indirectIndex(in.PC)]
		if e.valid && e.tag == uint32(in.PC>>2) {
			pred.Target = e.target
		}
	default:
		set := &p.btb[(in.PC>>2)%btbSets]
		for i := range set {
			if set[i].valid && set[i].tag == uint32(in.PC>>2) {
				pred.Target = set[i].target
				break
			}
		}
	}
	return pred
}

func (p *Predictor) indirectIndex(pc uint64) int {
	return int(((pc >> 2) ^ (p.pir << 1)) % ibtbEntries)
}

func (p *Predictor) predictDirection(pc uint64) bool {
	// Loop predictor has the highest priority when confident.
	le := &p.loop[(pc>>2)%loopEntries]
	if le.valid && le.tag == uint32(pc>>2) && le.conf >= 2 {
		return le.cur+1 < le.trip
	}
	// Tagged global predictor next.
	idx, tag := p.globalIndex(pc)
	if g := &p.global[idx]; g.valid && g.tag == tag {
		return g.counter >= 2
	}
	// Bimodal fallback.
	return p.local[(pc>>2)%localEntries] >= 2
}

// Update trains the predictor with the architectural outcome of in and
// advances the PIR and RAS. It must be called for every executed branch,
// in order, after Predict.
func (p *Predictor) Update(in trace.Inst) {
	if !in.Indirect && !in.Call && !in.Ret {
		p.updateDirection(in)
	}
	// Target structures.
	switch {
	case in.Ret:
		if p.rasTop > 0 {
			p.rasTop--
		}
	case in.Indirect:
		e := &p.ibtb[p.indirectIndex(in.PC)]
		*e = targetEntry{tag: uint32(in.PC >> 2), target: in.Addr, valid: true}
		if in.Call && p.rasTop < rasEntries {
			p.ras[p.rasTop] = in.PC + trace.InstBytes
			p.rasTop++
		}
	default:
		if in.Taken {
			p.btbInsert(in.PC, in.Addr)
		}
		if in.Call && p.rasTop < rasEntries {
			p.ras[p.rasTop] = in.PC + trace.InstBytes
			p.rasTop++
		}
	}
	// Path history: mix the branch PC (and target when taken).
	upd := in.PC >> 2
	if in.Taken {
		upd ^= in.Addr >> 3
	}
	p.pir = ((p.pir << 2) ^ upd) & pirMask
}

// btbInsert installs pc's target in its 4-way BTB set with LRU order
// (index 0 is MRU).
func (p *Predictor) btbInsert(pc, target uint64) {
	set := &p.btb[(pc>>2)%btbSets]
	tag := uint32(pc >> 2)
	hit := btbWays - 1
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			hit = i
			break
		}
	}
	copy(set[1:hit+1], set[:hit])
	set[0] = targetEntry{tag: tag, target: target, valid: true}
}

func (p *Predictor) updateDirection(in trace.Inst) {
	// Loop predictor: learn trip counts of backward branches.
	if !p.LoopReadOnly {
		le := &p.loop[(in.PC>>2)%loopEntries]
		if !le.valid || le.tag != uint32(in.PC>>2) {
			*le = loopEntry{tag: uint32(in.PC >> 2), valid: true}
		}
		if in.Taken {
			if le.cur < ^uint16(0) {
				le.cur++
			}
		} else {
			observed := le.cur + 1
			if observed == le.trip {
				if le.conf < 3 {
					le.conf++
				}
			} else {
				le.trip = observed
				le.conf = 0
			}
			le.cur = 0
		}
	}

	// Global predictor: allocate on tag miss, train counter.
	idx, tag := p.globalIndex(in.PC)
	g := &p.global[idx]
	if !g.valid || g.tag != tag {
		c := uint8(1)
		if in.Taken {
			c = 2
		}
		*g = globalEntry{tag: tag, counter: c, valid: true}
	} else {
		g.counter = saturate(g.counter, in.Taken)
	}

	// Bimodal.
	li := (in.PC >> 2) % localEntries
	p.local[li] = saturate(p.local[li], in.Taken)
}

func saturate(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	return c
}

// PredictUpdate performs Predict followed by Update in one pass, sharing
// the table index computations between the two calls: the PIR only
// advances at the very end of Update, so every index the separate calls
// would derive is identical, and the shared loop/global/BTB pointers are
// read (for the prediction) strictly before they are written (for the
// training). It is behaviourally equivalent to Predict(*in) then
// Update(*in) and exists for the replay hot loops, which resolve tens of
// millions of branches per run.
func (p *Predictor) PredictUpdate(in *trace.Inst) Prediction {
	var pred Prediction
	pc := in.PC
	pc2 := pc >> 2
	key := uint32(pc2)
	switch {
	case in.Ret:
		pred.Taken = true
		if p.rasTop > 0 {
			pred.Target = p.ras[p.rasTop-1]
			p.rasTop--
		}
	case in.Indirect:
		pred.Taken = true
		e := &p.ibtb[p.indirectIndex(pc)]
		if e.valid && e.tag == key {
			pred.Target = e.target
		}
		*e = targetEntry{tag: key, target: in.Addr, valid: true}
		if in.Call && p.rasTop < rasEntries {
			p.ras[p.rasTop] = pc + trace.InstBytes
			p.rasTop++
		}
	case in.Call:
		pred.Taken = true
		set := &p.btb[pc2%btbSets]
		for i := range set {
			if set[i].valid && set[i].tag == key {
				pred.Target = set[i].target
				break
			}
		}
		if in.Taken {
			p.btbInsert(pc, in.Addr)
		}
		if p.rasTop < rasEntries {
			p.ras[p.rasTop] = pc + trace.InstBytes
			p.rasTop++
		}
	default:
		// Conditional or plain jump: predict direction (loop → global →
		// bimodal priority) and BTB target, then train all three direction
		// structures and the BTB with the architectural outcome.
		le := &p.loop[pc2%loopEntries]
		gIdx, gTag := p.globalIndex(pc)
		g := &p.global[gIdx]
		switch {
		case le.valid && le.tag == key && le.conf >= 2:
			pred.Taken = le.cur+1 < le.trip
		case g.valid && g.tag == gTag:
			pred.Taken = g.counter >= 2
		default:
			pred.Taken = p.local[pc2%localEntries] >= 2
		}
		set := &p.btb[pc2%btbSets]
		for i := range set {
			if set[i].valid && set[i].tag == key {
				pred.Target = set[i].target
				break
			}
		}
		if !p.LoopReadOnly {
			if !le.valid || le.tag != key {
				*le = loopEntry{tag: key, valid: true}
			}
			if in.Taken {
				if le.cur < ^uint16(0) {
					le.cur++
				}
			} else {
				observed := le.cur + 1
				if observed == le.trip {
					if le.conf < 3 {
						le.conf++
					}
				} else {
					le.trip = observed
					le.conf = 0
				}
				le.cur = 0
			}
		}
		if !g.valid || g.tag != gTag {
			c := uint8(1)
			if in.Taken {
				c = 2
			}
			*g = globalEntry{tag: gTag, counter: c, valid: true}
		} else {
			g.counter = saturate(g.counter, in.Taken)
		}
		li := pc2 % localEntries
		p.local[li] = saturate(p.local[li], in.Taken)
		if in.Taken {
			p.btbInsert(pc, in.Addr)
		}
	}
	upd := pc2
	if in.Taken {
		upd ^= in.Addr >> 3
	}
	p.pir = ((p.pir << 2) ^ upd) & pirMask
	return pred
}

// Resolve predicts, trains, and accounts for the branch in a single step.
// It returns true when the branch was mispredicted (wrong direction, or
// right direction with wrong target).
func (p *Predictor) Resolve(in trace.Inst) bool {
	pred := p.Predict(in)
	miss := Mispredicted(pred, in)
	p.Update(in)
	p.Stats.Branches++
	if miss {
		p.Stats.Mispredicts++
	}
	return miss
}

// Mispredicted reports whether prediction pred was wrong for the
// architectural outcome in: a wrong direction, or a wrong target for a
// branch whose target only the execution stage can compute (indirect
// branches and returns).
func Mispredicted(pred Prediction, in trace.Inst) bool {
	if pred.Taken != in.Taken {
		return true
	}
	return in.Taken && (in.Indirect || in.Ret) && pred.Target != in.Addr
}

// Misfetched reports whether a correctly-predicted direct branch lacked
// its target in the BTB: the decoder re-steers fetch with a short bubble
// (a misfetch), much cheaper than a full misprediction flush.
func Misfetched(pred Prediction, in trace.Inst) bool {
	if Mispredicted(pred, in) || !in.Taken || in.Indirect || in.Ret {
		return false
	}
	return pred.Target != in.Addr
}
