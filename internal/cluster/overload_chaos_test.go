package cluster

// Overload-robustness chaos for the coordination plane: hedged
// re-dispatch of a straggling shard (first result wins, the merged
// grid stays bit-identical — a hedge must never double-count), and a
// greedy tenant flooding a degraded fleet while a victim tenant's
// sweep overtakes via fair queueing, deadline shedding answers in
// bounded time, and quota breaches surface as 429 through the
// espcoord HTTP facade.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"espsim/internal/fault"
	"espsim/internal/serve"
	"espsim/internal/sim"
	"espsim/internal/tenantq"
)

// TestHedgedStragglerParity pins the hedging contract: one shard is
// pinned to a worker whose cells each stall 750ms, the other to a
// clean peer. The peer finishes its own shard, then re-dispatches the
// straggler's in-flight shard; the hedge must win, the loser's late
// result must discard, and the merged grid must match the golden
// corpus cell for cell — the double-dispatch is invisible in the
// output, and the counters are exact.
func TestHedgedStragglerParity(t *testing.T) {
	golden := readGoldenCorpus(t)
	dir := t.TempDir()

	slowHook := func(pt sim.FaultPoint) error {
		if pt.Op == "run" {
			time.Sleep(750 * time.Millisecond)
		}
		return nil
	}
	slow := newWorker("slow", serve.Options{Workers: 1, FaultHook: slowHook, CheckpointDir: dir})
	fast := newWorker("fast", serve.Options{Workers: 2, CheckpointDir: dir})

	c, err := New(Options{
		Workers:          []Worker{slow, fast},
		Pin:              map[string]string{"amazon": "slow", "bing": "fast"},
		HedgeAfter:       20 * time.Millisecond,
		BreakerThreshold: 1, // a canceled loser must not read as a node failure
		BreakerCooldown:  time.Hour,
		CheckpointDir:    dir,
		Logger:           quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// The sweep journals (SweepID set): the straggler's primary attempt
	// holds the shard journal claim, so the hedge must run journal-less
	// — if it tried to claim the same journal the sweep would fail.
	apps := []string{"amazon", "bing"}
	req := serve.SweepRequest{Apps: apps, Configs: gridConfigs, SweepID: "hedge", MaxEvents: goldenMaxEvents}
	resp, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(apps) * len(gridConfigs); len(resp.Cells) != want {
		t.Fatalf("merged sweep has %d cells, want %d — a hedge double-counted or dropped cells", len(resp.Cells), want)
	}
	for i, cell := range resp.Cells {
		wantApp, wantCfg := apps[i/len(gridConfigs)], gridConfigs[i%len(gridConfigs)]
		if cell.App != wantApp || cell.Config != wantCfg {
			t.Fatalf("cell %d is %s/%s, want %s/%s", i, cell.App, cell.Config, wantApp, wantCfg)
		}
		key := cell.App + "/" + cell.Config
		if cell.Result == nil {
			t.Fatalf("cell %s has no result: error=%q kind=%q", key, cell.Error, cell.ErrorKind)
		}
		if !jsonEqual(*cell.Result, golden[key]) {
			t.Errorf("cell %s deviates from the golden corpus", key)
		}
	}

	snap := c.Metrics()
	if snap.Shards.Hedges != 1 || snap.Shards.HedgeWins != 1 {
		t.Errorf("hedges=%d wins=%d, want exactly 1/1 (the straggler's shard, won by the clean peer)",
			snap.Shards.Hedges, snap.Shards.HedgeWins)
	}
	if snap.Shards.Done != int64(len(apps)) || snap.Shards.Failed != 0 {
		t.Errorf("shards done=%d failed=%d, want %d/0", snap.Shards.Done, snap.Shards.Failed, len(apps))
	}
	// Losing a race is not a node failure: no breaker may have tripped.
	if snap.Quarantine.Trips != 0 {
		t.Errorf("quarantine trips %d, want 0 — a canceled hedge loser tripped a breaker", snap.Quarantine.Trips)
	}
}

// TestGreedyTenantFloodDegradedFleet is the overload acceptance gate:
// a greedy tenant floods a three-worker fleet whose third worker sits
// behind a dead network link. The victim tenant's single sweep must
// overtake the flood via DRR fair queueing (bounded latency while
// most of the flood still waits), stay bit-identical to the golden
// corpus, an already-expired deadline must shed the whole grid with
// zero simulation and exact counters, and a quota breach must answer
// 429 through the espcoord HTTP facade.
func TestGreedyTenantFloodDegradedFleet(t *testing.T) {
	golden := readGoldenCorpus(t)

	w0 := newWorker("w0", serve.Options{Workers: 2})
	w1 := newWorker("w1", serve.Options{Workers: 2})
	w2 := newWorker("w2", serve.Options{Workers: 2})
	plan := &fault.NetPlan{Seed: 17}
	plan.Always("w2", fault.NetErr)

	gridCells := len(gridApps) * len(gridConfigs)
	c, err := New(Options{
		Workers:          []Worker{w0, w1, WithNetPlan(w2, plan)},
		Pin:              map[string]string{"amazon": "w0", "bing": "w1", "cnn": "w2", "facebook": "w0"},
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		MaxShardAttempts: 4,
		ProbeInterval:    10 * time.Millisecond,
		// One sweep admitted at a time: DRR turn order fully decides who
		// runs next, which is what the fairness assertions pin.
		TenantSlots: 1,
		Tenants: map[string]tenantq.TenantConfig{
			"greedy": {Weight: 1},
			"victim": {Weight: 1},
			"capped": {CellBudget: int64(gridCells)},
		},
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// The flood: eight whole-grid sweeps from the greedy tenant.
	const floodSize = 8
	var (
		wg          sync.WaitGroup
		floodErrs   = make(chan error, floodSize)
		greedyDone  atomic.Int64
		floodStart  = time.Now()
		floodDurMu  sync.Mutex
		floodFinish time.Time
	)
	for i := 0; i < floodSize; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := gridRequest("")
			req.Tenant = "greedy"
			if _, err := c.Run(context.Background(), req); err != nil {
				floodErrs <- err
			}
			greedyDone.Add(1)
			floodDurMu.Lock()
			floodFinish = time.Now()
			floodDurMu.Unlock()
		}()
	}

	// Wait until the flood is genuinely queued behind admission (one
	// sweep in flight, the rest waiting) before the victim arrives.
	deadline := time.Now().Add(10 * time.Second)
	for c.tq.QueuedAcquisitions() < floodSize-1 {
		if time.Now().After(deadline) {
			t.Fatalf("flood never queued: %d acquisitions waiting", c.tq.QueuedAcquisitions())
		}
		time.Sleep(time.Millisecond)
	}

	victimReq := gridRequest("")
	victimReq.Tenant = "victim"
	victimStart := time.Now()
	victimResp, err := c.Run(context.Background(), victimReq)
	victimDur := time.Since(victimStart)
	if err != nil {
		t.Fatalf("victim sweep failed under flood: %v", err)
	}
	// Fairness: the victim overtakes the flood. At most the in-flight
	// greedy sweep plus one more may finish first; the rest must still
	// be waiting when the victim completes.
	if done := greedyDone.Load(); done > 2 {
		t.Errorf("victim finished after %d greedy sweeps; fair queueing should let at most 2 go first", done)
	}
	assertGridParity(t, golden, victimResp)

	wg.Wait()
	close(floodErrs)
	for err := range floodErrs {
		t.Errorf("greedy sweep failed: %v", err)
	}
	floodDur := floodFinish.Sub(floodStart)
	// Latency bound: the victim's wait is its own sweep plus at most two
	// greedy sweeps ahead — far below the serialized flood's total.
	if victimDur*2 >= floodDur {
		t.Errorf("victim latency %v is not well under the flood's %v — fair queueing bought nothing", victimDur, floodDur)
	}

	// Deadline shedding through the fleet: an already-expired deadline
	// answers the full grid as shed cells with zero simulation, fast,
	// even with a worker quarantined. Counters are exact.
	preShed := c.Metrics().Overload.CellsShed
	shedReq := gridRequest("")
	shedReq.Tenant = "greedy"
	shedReq.DeadlineMs = -1
	shedStart := time.Now()
	shedResp, err := c.Run(context.Background(), shedReq)
	shedDur := time.Since(shedStart)
	if err != nil {
		t.Fatalf("expired-deadline sweep errored instead of shedding: %v", err)
	}
	if len(shedResp.Cells) != gridCells {
		t.Fatalf("shed sweep answered %d cells, want the full grid of %d", len(shedResp.Cells), gridCells)
	}
	for _, cell := range shedResp.Cells {
		if cell.ErrorKind != string(fault.KindShed) {
			t.Fatalf("cell %s/%s kind %q, want %q", cell.App, cell.Config, cell.ErrorKind, fault.KindShed)
		}
		if cell.Result != nil {
			t.Fatalf("cell %s/%s carries a result despite an expired deadline", cell.App, cell.Config)
		}
	}
	if got := c.Metrics().Overload.CellsShed - preShed; got != int64(gridCells) {
		t.Errorf("cells_shed grew by %d, want exactly %d", got, gridCells)
	}
	if shedDur > time.Second {
		t.Errorf("full-grid shed took %v, want well under a second (no simulation may run)", shedDur)
	}

	// Quota enforcement end to end: the capped tenant's budget covers
	// exactly one grid; the second sweep breaches and the HTTP facade
	// answers 429 with the quota sentinel's message.
	cappedReq := gridRequest("")
	cappedReq.Tenant = "capped"
	if _, err := c.Run(context.Background(), cappedReq); err != nil {
		t.Fatalf("capped tenant's first sweep (within budget): %v", err)
	}
	if _, err := c.Run(context.Background(), cappedReq); !errors.Is(err, tenantq.ErrQuota) {
		t.Fatalf("capped tenant's second sweep: got %v, want ErrQuota", err)
	}
	srv := NewServer(c)
	rec := httptest.NewRecorder()
	body := fmt.Sprintf(`{"apps":["amazon"],"configs":["base"],"max_events":%d,"tenant":"capped"}`, goldenMaxEvents)
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/sweep", strings.NewReader(body)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("facade answered %d for a quota breach, want 429: %s", rec.Code, rec.Body.String())
	}

	// Exactness: hedging was off, so the hedge counters must be zero,
	// and the quarantined worker served nothing.
	snap := c.Metrics()
	if snap.Shards.Hedges != 0 || snap.Shards.HedgeWins != 0 {
		t.Errorf("hedges=%d wins=%d with hedging disabled, want 0/0", snap.Shards.Hedges, snap.Shards.HedgeWins)
	}
	if got := workerMetrics(t, w2).Requests.Shard; got != 0 {
		t.Errorf("quarantined worker served %d shards through a dead network", got)
	}
}
