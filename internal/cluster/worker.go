// Package cluster is the coordination plane over a fleet of espd
// workers: espcoord shards a sweep grid application-by-application
// across nodes (affinity placement keeps every configuration of one
// application on one worker, so its LRU workload cache and machine
// pools stay hot), watches node health, quarantines sick or flaky
// nodes behind escalating circuit breakers, steals shards from
// stragglers, and — when a worker dies mid-shard — hands its
// checkpoint journal to a peer so the completed cells replay instead
// of re-simulating. Results are bit-identical to a single-node sweep
// under any placement or failure schedule, because every cell is
// deterministic and the journals are digest-checked before reuse.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"

	"espsim/internal/checkpoint"
	"espsim/internal/fault"
	"espsim/internal/serve"
)

// ErrWorkerDown reports a worker that is unreachable or no longer a
// process: the attempt's outcome is unknown and the shard must be
// rescheduled (the worker's journal, if shared, says what survived).
// The sentinel carries KindNet so a shard that dies with its worker
// reports "net" on the wire, not the unclassified fallback — without
// wrapping fault.ErrNet, which would double-count it in the
// coordinator's NetFaults breaker accounting.
var ErrWorkerDown = fault.Sentinel("cluster: worker down", fault.KindNet)

// JournalView is a worker-agnostic read of one sweep journal: the
// digest-bearing header plus the "app/config" cells already durable.
type JournalView struct {
	Meta  checkpoint.Meta `json:"meta"`
	Cells []string        `json:"cells"`
	Torn  bool            `json:"torn,omitempty"`
}

// Worker is the coordinator's view of one espd node. Implementations:
// LocalWorker embeds a *serve.Server in-process (tests, single-binary
// deployments), HTTPWorker fronts a remote daemon.
type Worker interface {
	Name() string
	// Sweep runs one shard. An error means the outcome is unknown or
	// the node refused; the shard will be rescheduled.
	Sweep(ctx context.Context, req serve.SweepRequest) (serve.SweepResponse, error)
	// Probe is the health check: nil means alive and ready.
	Probe(ctx context.Context) error
	// PeekJournal reads the node's journal for sweepID without
	// mutating it; ok is false when the node never journaled that id.
	PeekJournal(ctx context.Context, sweepID string) (JournalView, bool, error)
}

// LocalWorker adapts an in-process *serve.Server to the Worker
// interface by driving its HTTP handlers directly — the same code
// path a remote daemon serves, minus the socket. Kill simulates
// process death: every call from then on fails with ErrWorkerDown,
// including a Sweep already in flight (its response is discarded the
// way a dying process's unsent response would be; its journal appends
// up to the kill are already durable, which is the point).
type LocalWorker struct {
	name string
	srv  *serve.Server
	dead atomic.Bool
}

// NewLocalWorker wraps srv as the named fleet member.
func NewLocalWorker(name string, srv *serve.Server) *LocalWorker {
	return &LocalWorker{name: name, srv: srv}
}

// Name implements Worker.
func (lw *LocalWorker) Name() string { return lw.name }

// Server exposes the embedded daemon (tests wire fault hooks to it).
func (lw *LocalWorker) Server() *serve.Server { return lw.srv }

// Kill marks the worker dead. The embedded server keeps draining
// whatever it was doing (a real process does not vanish mid-syscall
// either), but no result reaches the coordinator again.
func (lw *LocalWorker) Kill() { lw.dead.Store(true) }

// Sweep implements Worker.
func (lw *LocalWorker) Sweep(ctx context.Context, req serve.SweepRequest) (serve.SweepResponse, error) {
	if lw.dead.Load() {
		return serve.SweepResponse{}, fmt.Errorf("%w: %s", ErrWorkerDown, lw.name)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return serve.SweepResponse{}, err
	}
	rec := lw.do(ctx, http.MethodPost, "/sweep", body)
	if lw.dead.Load() {
		// Died mid-request: the handler finished (journal closed), but
		// the process is gone before the response made it out.
		return serve.SweepResponse{}, fmt.Errorf("%w: %s died mid-sweep", ErrWorkerDown, lw.name)
	}
	var resp serve.SweepResponse
	if err := decodeWorkerResponse(lw.name, rec.code, rec.buf.Bytes(), &resp); err != nil {
		return serve.SweepResponse{}, err
	}
	return resp, nil
}

// Probe implements Worker: liveness and readiness in one check.
func (lw *LocalWorker) Probe(ctx context.Context) error {
	if lw.dead.Load() {
		return fmt.Errorf("%w: %s", ErrWorkerDown, lw.name)
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		if rec := lw.do(ctx, http.MethodGet, path, nil); rec.code != http.StatusOK {
			return fmt.Errorf("%w: %s: %s answered %d", ErrWorkerDown, lw.name, path, rec.code)
		}
	}
	return nil
}

// PeekJournal implements Worker.
func (lw *LocalWorker) PeekJournal(ctx context.Context, sweepID string) (JournalView, bool, error) {
	if lw.dead.Load() {
		return JournalView{}, false, fmt.Errorf("%w: %s", ErrWorkerDown, lw.name)
	}
	rec := lw.do(ctx, http.MethodGet, "/journalz?sweep_id="+url.QueryEscape(sweepID), nil)
	if rec.code == http.StatusNotFound {
		return JournalView{}, false, nil
	}
	var view JournalView
	if err := decodeWorkerResponse(lw.name, rec.code, rec.buf.Bytes(), &view); err != nil {
		return JournalView{}, false, err
	}
	return view, true, nil
}

// do drives one handler call through the server's full middleware
// stack and captures the response in memory.
func (lw *LocalWorker) do(ctx context.Context, method, target string, body []byte) *memResponse {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, target, rdr)
	if err != nil {
		rec := newMemResponse()
		rec.code = http.StatusInternalServerError
		fmt.Fprintf(&rec.buf, `{"error":%q}`, err.Error())
		return rec
	}
	rec := newMemResponse()
	lw.srv.ServeHTTP(rec, req)
	return rec
}

// memResponse is a minimal in-memory http.ResponseWriter.
type memResponse struct {
	code int
	hdr  http.Header
	buf  bytes.Buffer
}

func newMemResponse() *memResponse                 { return &memResponse{code: http.StatusOK, hdr: http.Header{}} }
func (m *memResponse) Header() http.Header         { return m.hdr }
func (m *memResponse) WriteHeader(c int)           { m.code = c }
func (m *memResponse) Write(p []byte) (int, error) { return m.buf.Write(p) }

// HTTPWorker fronts a remote espd daemon. Transport failures surface
// as ErrWorkerDown (outcome unknown: reschedule); HTTP-level refusals
// carry the daemon's own error string.
type HTTPWorker struct {
	name    string
	baseURL string
	client  *http.Client
}

// NewHTTPWorker wraps the daemon at baseURL (e.g. "http://host:8080")
// as the named fleet member; client nil means http.DefaultClient.
func NewHTTPWorker(name, baseURL string, client *http.Client) *HTTPWorker {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPWorker{name: name, baseURL: strings.TrimRight(baseURL, "/"), client: client}
}

// Name implements Worker.
func (hw *HTTPWorker) Name() string { return hw.name }

// Sweep implements Worker.
func (hw *HTTPWorker) Sweep(ctx context.Context, req serve.SweepRequest) (serve.SweepResponse, error) {
	var resp serve.SweepResponse
	err := hw.do(ctx, http.MethodPost, "/sweep", req, &resp)
	return resp, err
}

// Probe implements Worker.
func (hw *HTTPWorker) Probe(ctx context.Context) error {
	for _, path := range []string{"/healthz", "/readyz"} {
		if err := hw.do(ctx, http.MethodGet, path, nil, &struct{}{}); err != nil {
			return err
		}
	}
	return nil
}

// PeekJournal implements Worker.
func (hw *HTTPWorker) PeekJournal(ctx context.Context, sweepID string) (JournalView, bool, error) {
	var view JournalView
	err := hw.do(ctx, http.MethodGet, "/journalz?sweep_id="+url.QueryEscape(sweepID), nil, &view)
	var he *workerHTTPError
	if errors.As(err, &he) && he.code == http.StatusNotFound {
		return JournalView{}, false, nil
	}
	if err != nil {
		return JournalView{}, false, err
	}
	return view, true, nil
}

func (hw *HTTPWorker) do(ctx context.Context, method, path string, body, out any) error {
	var rdr io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rdr = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, hw.baseURL+path, rdr)
	if err != nil {
		return err
	}
	if rdr != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := hw.client.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrWorkerDown, hw.name, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("%w: %s: reading response: %v", ErrWorkerDown, hw.name, err)
	}
	return decodeWorkerResponse(hw.name, resp.StatusCode, raw, out)
}

// workerHTTPError is a non-200 a live worker chose to send — the node
// is up, the request was refused (or the resource absent).
type workerHTTPError struct {
	worker string
	code   int
	msg    string
}

func (e *workerHTTPError) Error() string {
	return fmt.Sprintf("cluster: worker %s answered %d: %s", e.worker, e.code, e.msg)
}

// decodeWorkerResponse maps one worker reply onto out: 200 decodes,
// anything else becomes a workerHTTPError carrying the daemon's
// {"error": ...} message. One exception: a 504 sweep body that parses
// as a grid is a deadline shed — every cell is answered (some with
// ErrorKind "deadline_shed"), which is a result to merge, not a node
// failure to reschedule against a deadline that already passed.
func decodeWorkerResponse(worker string, code int, raw []byte, out any) error {
	if code == http.StatusGatewayTimeout {
		if sresp, ok := out.(*serve.SweepResponse); ok {
			var cand serve.SweepResponse
			if err := json.Unmarshal(raw, &cand); err == nil && len(cand.Cells) > 0 {
				*sresp = cand
				return nil
			}
		}
	}
	if code != http.StatusOK {
		var eresp struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(raw, &eresp)
		if eresp.Error == "" {
			eresp.Error = strings.TrimSpace(string(raw))
		}
		return &workerHTTPError{worker: worker, code: code, msg: eresp.Error}
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("cluster: worker %s: undecodable response: %w", worker, err)
	}
	return nil
}
