package cluster

import (
	"context"
	"fmt"
	"time"

	"espsim/internal/fault"
	"espsim/internal/serve"
)

// FaultyWorker layers a deterministic network fault plan over a
// Worker: the same seed yields the same drops, stalls, and injected
// 5xx on every run, so cluster chaos tests replay exactly. A
// partitioned (or Always-faulted) worker fails every call until
// healed; hashed faults clear after the plan's FailFirst attempts,
// modelling a flaky-then-recovering link.
type FaultyWorker struct {
	inner Worker
	plan  *fault.NetPlan
}

// WithNetPlan wraps w; a nil plan returns w unchanged.
func WithNetPlan(w Worker, plan *fault.NetPlan) Worker {
	if plan == nil {
		return w
	}
	return &FaultyWorker{inner: w, plan: plan}
}

// Name implements Worker.
func (fw *FaultyWorker) Name() string { return fw.inner.Name() }

// Sweep implements Worker.
func (fw *FaultyWorker) Sweep(ctx context.Context, req serve.SweepRequest) (serve.SweepResponse, error) {
	if err := fw.cross(ctx, "sweep"); err != nil {
		return serve.SweepResponse{}, err
	}
	return fw.inner.Sweep(ctx, req)
}

// Probe implements Worker.
func (fw *FaultyWorker) Probe(ctx context.Context) error {
	if err := fw.cross(ctx, "probe"); err != nil {
		return err
	}
	return fw.inner.Probe(ctx)
}

// PeekJournal implements Worker.
func (fw *FaultyWorker) PeekJournal(ctx context.Context, sweepID string) (JournalView, bool, error) {
	if err := fw.cross(ctx, "journalz"); err != nil {
		return JournalView{}, false, err
	}
	return fw.inner.PeekJournal(ctx, sweepID)
}

// cross is one traversal of the faulty link: drops and injected
// errors fail immediately, a stall delays then lets the call through
// (unless the context gives up first — which is how a stall turns
// into a timeout), a partition fails until healed.
func (fw *FaultyWorker) cross(ctx context.Context, op string) error {
	name := fw.inner.Name()
	switch kind := fw.plan.Fault(name, op); kind {
	case fault.NetNone:
		return nil
	case fault.NetStall:
		stall := fw.plan.StallFor
		if stall <= 0 {
			stall = 50 * time.Millisecond
		}
		select {
		case <-time.After(stall):
			return nil
		case <-ctx.Done():
			return fmt.Errorf("%w: %s: %s stalled past the deadline: %v", fault.ErrNet, name, op, ctx.Err())
		}
	default:
		return fmt.Errorf("%w: %s: %s %s", fault.ErrNet, name, op, kind)
	}
}
