package cluster

// Cluster-plane behavior with live in-process workers: golden parity
// across a sharded fleet, work stealing off stragglers, and
// probe-driven quarantine. Every worker is a real serve.Server driven
// through its full HTTP stack, so these tests cover the same code
// path a remote fleet runs.

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"os"
	"reflect"
	"testing"
	"time"

	esp "espsim"
	"espsim/internal/fault"
	"espsim/internal/serve"
	"espsim/internal/serve/metrics"
	"espsim/internal/sim"
)

// The evaluation grid the golden corpus covers (mirrors the serve
// chaos suite).
var (
	gridApps    = []string{"amazon", "bing", "cnn", "facebook"}
	gridConfigs = []string{"base", "NaiveESP+NL", "Runahead+NL", "ESP+NL"}
)

const goldenMaxEvents = 48

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// readGoldenCorpus loads the repository determinism corpus keyed
// "app/config".
func readGoldenCorpus(t *testing.T) map[string]esp.Result {
	t.Helper()
	data, err := os.ReadFile("../../testdata/golden.json")
	if err != nil {
		t.Fatalf("reading golden corpus: %v", err)
	}
	var golden map[string]esp.Result
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("decoding golden corpus: %v", err)
	}
	if len(golden) == 0 {
		t.Fatal("golden corpus is empty")
	}
	return golden
}

// newWorker builds a named in-process espd worker.
func newWorker(name string, opt serve.Options) *LocalWorker {
	opt.Name = name
	if opt.Logger == nil {
		opt.Logger = quietLogger()
	}
	return NewLocalWorker(name, serve.New(opt))
}

func gridRequest(sweepID string) serve.SweepRequest {
	return serve.SweepRequest{Apps: gridApps, Configs: gridConfigs, SweepID: sweepID, MaxEvents: goldenMaxEvents}
}

// assertGridParity checks a merged response against the golden corpus:
// full grid, app-major order, every result bit-identical.
func assertGridParity(t *testing.T, golden map[string]esp.Result, resp serve.SweepResponse) {
	t.Helper()
	if want := len(gridApps) * len(gridConfigs); len(resp.Cells) != want {
		t.Fatalf("merged sweep has %d cells, want %d", len(resp.Cells), want)
	}
	for i, cell := range resp.Cells {
		wantApp, wantCfg := gridApps[i/len(gridConfigs)], gridConfigs[i%len(gridConfigs)]
		if cell.App != wantApp || cell.Config != wantCfg {
			t.Fatalf("cell %d is %s/%s, want %s/%s (app-major request order)", i, cell.App, cell.Config, wantApp, wantCfg)
		}
		key := cell.App + "/" + cell.Config
		if cell.Result == nil {
			t.Fatalf("cell %s has no result: error=%q kind=%q skipped=%q", key, cell.Error, cell.ErrorKind, cell.Skipped)
		}
		if !reflect.DeepEqual(*cell.Result, golden[key]) {
			t.Errorf("cell %s deviates from the golden corpus", key)
		}
	}
}

// workerMetrics reads one worker's espd /metrics through its full
// handler stack.
func workerMetrics(t *testing.T, lw *LocalWorker) metrics.Snapshot {
	t.Helper()
	rec := lw.do(context.Background(), http.MethodGet, "/metrics", nil)
	if rec.code != http.StatusOK {
		t.Fatalf("worker %s /metrics: status %d", lw.Name(), rec.code)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(rec.buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestClusterGoldenParity is the baseline: a healthy fleet with one
// worker per application must merge a sharded sweep bit-identical to
// a single node, with every shard on its affinity owner — no steals,
// no reschedules, each worker serving exactly its placed shard.
func TestClusterGoldenParity(t *testing.T) {
	golden := readGoldenCorpus(t)
	pin := map[string]string{}
	var fleet []*LocalWorker
	var workers []Worker
	for i, app := range gridApps {
		lw := newWorker([]string{"w0", "w1", "w2", "w3"}[i], serve.Options{Workers: 2})
		fleet = append(fleet, lw)
		workers = append(workers, lw)
		pin[app] = lw.Name()
	}
	c, err := New(Options{Workers: workers, Pin: pin, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := c.Run(context.Background(), gridRequest(""))
	if err != nil {
		t.Fatal(err)
	}
	assertGridParity(t, golden, resp)

	snap := c.Metrics()
	if snap.Shards.Done != int64(len(gridApps)) || snap.Shards.Failed != 0 {
		t.Fatalf("shards done=%d failed=%d, want %d/0", snap.Shards.Done, snap.Shards.Failed, len(gridApps))
	}
	if snap.Shards.Steals != 0 || snap.Shards.Reschedules != 0 {
		t.Fatalf("healthy balanced fleet stole %d and rescheduled %d shards, want 0/0", snap.Shards.Steals, snap.Shards.Reschedules)
	}
	if snap.Sweeps.Done != 1 {
		t.Fatalf("sweeps done %d, want 1", snap.Sweeps.Done)
	}

	// Affinity: every worker served exactly its placed shard — the
	// cache-locality contract.
	for _, lw := range fleet {
		if ws := workerMetrics(t, lw); ws.Requests.Shard != 1 {
			t.Errorf("worker %s served %d shards, placement assigned 1", lw.Name(), ws.Requests.Shard)
		}
	}
}

// TestWorkSteal pins the straggler path: with every shard pinned to
// one slow worker, an idle peer must steal rather than sit out the
// sweep, and the merged grid still matches the corpus.
func TestWorkSteal(t *testing.T) {
	golden := readGoldenCorpus(t)
	slowHook := func(pt sim.FaultPoint) error {
		if pt.Op == "run" {
			time.Sleep(30 * time.Millisecond)
		}
		return nil
	}
	slow := newWorker("slow", serve.Options{Workers: 1, FaultHook: slowHook})
	idle := newWorker("idle", serve.Options{Workers: 2})
	pin := map[string]string{}
	for _, app := range gridApps {
		pin[app] = "slow"
	}
	c, err := New(Options{Workers: []Worker{slow, idle}, Pin: pin, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := c.Run(context.Background(), gridRequest(""))
	if err != nil {
		t.Fatal(err)
	}
	assertGridParity(t, golden, resp)

	snap := c.Metrics()
	if snap.Shards.Steals == 0 {
		t.Fatal("idle worker never stole from the straggler")
	}
	if got := workerMetrics(t, idle).Requests.Shard; got == 0 {
		t.Fatal("idle worker served no shards")
	}
}

// TestProbeQuarantines pins probe-driven quarantine: a worker whose
// network path always fails is tripped by health probes (or its first
// shard attempt), the fleet routes around it, and the sweep still
// completes bit-identically.
func TestProbeQuarantines(t *testing.T) {
	golden := readGoldenCorpus(t)
	healthy := newWorker("healthy", serve.Options{Workers: 2})
	sick := newWorker("sick", serve.Options{Workers: 2})
	plan := &fault.NetPlan{Seed: 11}
	plan.Always("sick", fault.NetErr)

	c, err := New(Options{
		Workers:          []Worker{healthy, WithNetPlan(sick, plan)},
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // never un-quarantine inside the test
		MaxShardAttempts: 4,
		ProbeInterval:    5 * time.Millisecond,
		Logger:           quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := c.Run(context.Background(), gridRequest(""))
	if err != nil {
		t.Fatal(err)
	}
	assertGridParity(t, golden, resp)

	snap := c.Metrics()
	states := map[string]string{}
	for _, ws := range snap.Workers {
		states[ws.Name] = ws.Breaker
	}
	if states["sick"] != "open" {
		t.Errorf("sick worker breaker %q, want open", states["sick"])
	}
	if states["healthy"] != "closed" {
		t.Errorf("healthy worker breaker %q, want closed", states["healthy"])
	}
	if snap.Health.Probes == 0 || snap.Health.Failures == 0 {
		t.Errorf("prober ran %d probes with %d failures, want both > 0", snap.Health.Probes, snap.Health.Failures)
	}
	if snap.Quarantine.Trips == 0 {
		t.Error("no quarantine trips recorded for a worker that always fails")
	}
	// All cells completed on the healthy node despite the sick one.
	if got := workerMetrics(t, sick).Requests.Shard; got != 0 {
		t.Errorf("sick worker served %d shards through a dead network", got)
	}
}
