package cluster

// TestClusterChaos is the acceptance gate for the cluster plane: a
// seeded 4×4 sweep sharded over three in-process workers, where one
// worker is killed mid-shard (after journaling two cells) and another
// is quarantined behind an always-failing network link. The sweep
// must complete via journal handoff — the dead worker's two durable
// cells replay on the adopting peer, the rest recompute — and the
// merged grid must be bit-identical to the single-node golden corpus,
// with the coordinator's metrics accounting for every quarantine,
// reschedule, steal, and handoff.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"espsim/internal/fault"
	"espsim/internal/serve"
	"espsim/internal/sim"
)

func TestClusterChaos(t *testing.T) {
	golden := readGoldenCorpus(t)
	dir := t.TempDir() // the fleet-shared checkpoint volume

	workerOpts := func(name string) serve.Options {
		return serve.Options{
			Name:          name,
			Workers:       2,
			CheckpointDir: dir,
			Retry:         fault.RetryPolicy{MaxAttempts: 1},
			// Node-level quarantine is the coordinator's job here;
			// per-cell breakers off keeps the failure schedule exact.
			BreakerThreshold: -1,
			Logger:           quietLogger(),
		}
	}

	// w0 dies mid-shard: its third simulated cell (and every one
	// after) fails as the process "loses power", with two cells
	// already durable in the shard journal.
	var w0 *LocalWorker
	var w0Runs atomic.Int64
	opt0 := workerOpts("w0")
	opt0.FaultHook = func(pt sim.FaultPoint) error {
		if pt.Op != "run" {
			return nil
		}
		if w0Runs.Add(1) > 2 {
			w0.Kill()
			return fmt.Errorf("%w: node lost power", fault.ErrInjected)
		}
		return nil
	}
	w0 = NewLocalWorker("w0", serve.New(opt0))
	w1 := newWorker("w1", workerOpts("w1"))
	w2 := newWorker("w2", workerOpts("w2"))

	// w2 sits behind a dead network link: every sweep, probe, and
	// journal call fails until healed (it never is).
	plan := &fault.NetPlan{Seed: 6}
	plan.Always("w2", fault.NetErr)

	c, err := New(Options{
		Workers: []Worker{w0, w1, WithNetPlan(w2, plan)},
		// Deterministic placement: the dying worker owns two shards
		// (one dies mid-flight, one must be stolen), the quarantined
		// worker owns one, the survivor owns one and adopts the rest.
		Pin:              map[string]string{"amazon": "w0", "bing": "w1", "cnn": "w2", "facebook": "w0"},
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // no un-quarantine inside the test
		MaxShardAttempts: 4,
		ProbeInterval:    10 * time.Millisecond,
		CheckpointDir:    dir,
		Logger:           quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := c.Run(context.Background(), gridRequest("chaos"))
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical to a single node under this failure schedule.
	assertGridParity(t, golden, resp)

	// The dead worker's journal was adopted: exactly its two durable
	// cells replayed instead of re-simulating.
	resumed := 0
	for _, cell := range resp.Cells {
		if cell.Resumed {
			resumed++
			if cell.App != "amazon" {
				t.Errorf("cell %s/%s resumed; only the dead worker's amazon shard had a journal", cell.App, cell.Config)
			}
		}
	}
	if resumed != 2 {
		t.Errorf("%d cells resumed from the handoff journal, want the 2 w0 journaled before dying", resumed)
	}

	// The coordinator's /metrics tells the whole story (served over
	// the espcoord HTTP facade, as a fleet operator would read it).
	srv := NewServer(c)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("coordinator /metrics: status %d", rec.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}

	if snap.Shards.Done != 4 || snap.Shards.Failed != 0 {
		t.Fatalf("shards done=%d failed=%d, want 4/0", snap.Shards.Done, snap.Shards.Failed)
	}
	// Exactly two nodes were quarantined: the dead one and the
	// partitioned one, each tripping its breaker once.
	if snap.Quarantine.Trips != 2 {
		t.Errorf("quarantine trips %d, want exactly 2 (dead w0, faulted w2)", snap.Quarantine.Trips)
	}
	states := map[string]string{}
	for _, ws := range snap.Workers {
		states[ws.Name] = ws.Breaker
	}
	if states["w0"] != "open" || states["w2"] != "open" || states["w1"] != "closed" {
		t.Errorf("breaker states %v, want w0/w2 open and w1 closed", states)
	}
	// Both lost shards were rescheduled at least once, and the
	// survivor stole every shard it completed beyond its own.
	if snap.Shards.Reschedules < 2 {
		t.Errorf("reschedules %d, want >= 2 (amazon off the dead node, cnn off the faulted one)", snap.Shards.Reschedules)
	}
	if snap.Shards.Steals < 3 {
		t.Errorf("steals %d, want >= 3 (w1 completed amazon, cnn, and facebook for their owners)", snap.Shards.Steals)
	}
	if snap.Handoff.Journals != 1 {
		t.Errorf("journal handoffs %d, want exactly 1 (the dead worker's amazon journal)", snap.Handoff.Journals)
	}
	if snap.Handoff.ResumedCells != 2 {
		t.Errorf("resumed cells %d, want 2", snap.Handoff.ResumedCells)
	}
	if snap.Handoff.DigestMismatches != 0 {
		t.Errorf("digest mismatches %d, want 0 — the handoff journal described this very sweep", snap.Handoff.DigestMismatches)
	}
	if snap.NetFaults == 0 {
		t.Error("no network faults counted despite an always-failing link")
	}
	if snap.Health.Probes == 0 || snap.Health.Failures == 0 {
		t.Errorf("prober ran %d probes with %d failures, want both > 0", snap.Health.Probes, snap.Health.Failures)
	}
}

// TestHandoffDigestMismatch pins the safety side of handoff: a shard
// journal whose digest describes different work (here: a different
// grid scale journaled under the same sweep_id) must not be resumed —
// the shard reruns journal-less and the conflict is counted.
func TestHandoffDigestMismatch(t *testing.T) {
	golden := readGoldenCorpus(t)
	dir := t.TempDir()

	// Seed a journal for bing under the scoped id, but for a sweep
	// with different result-shaping knobs (MaxEvents 8, not 48).
	seeder := newWorker("seed", serve.Options{Workers: 1, CheckpointDir: dir, Logger: quietLogger()})
	seedReq := serve.SweepRequest{
		Apps: []string{"bing"}, Configs: gridConfigs,
		SweepID: "mix.bing", Shard: "bing", MaxEvents: 8,
	}
	if _, err := seeder.Sweep(context.Background(), seedReq); err != nil {
		t.Fatalf("seeding the conflicting journal: %v", err)
	}

	// The owner's first attempt trips over the conflicting journal
	// (espd refuses to splice sweeps), which reads as a shard failure;
	// the reschedule path must then inspect, refuse, and drop the
	// journal rather than hand it off.
	owner := newWorker("owner", serve.Options{Workers: 2, CheckpointDir: dir})
	steady := newWorker("steady", serve.Options{Workers: 2, CheckpointDir: dir})

	c, err := New(Options{
		Workers:          []Worker{owner, steady},
		Pin:              map[string]string{"bing": "owner"},
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		MaxShardAttempts: 3,
		CheckpointDir:    dir,
		Logger:           quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}

	req := serve.SweepRequest{Apps: []string{"bing"}, Configs: gridConfigs, SweepID: "mix", MaxEvents: goldenMaxEvents}
	resp, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) != len(gridConfigs) {
		t.Fatalf("merged sweep has %d cells, want %d", len(resp.Cells), len(gridConfigs))
	}
	for _, cell := range resp.Cells {
		key := cell.App + "/" + cell.Config
		if cell.Result == nil {
			t.Fatalf("cell %s has no result: %q", key, cell.Error)
		}
		if cell.Resumed {
			t.Errorf("cell %s resumed from a digest-mismatched journal — spliced grids", key)
		}
		if got, want := *cell.Result, golden[key]; !jsonEqual(got, want) {
			t.Errorf("cell %s deviates from the golden corpus", key)
		}
	}
	snap := c.Metrics()
	if snap.Handoff.DigestMismatches != 1 {
		t.Errorf("digest mismatches %d, want exactly 1", snap.Handoff.DigestMismatches)
	}
	if snap.Handoff.Journals != 0 {
		t.Errorf("journal handoffs %d, want 0 — the stale journal must not be adopted", snap.Handoff.Journals)
	}
}

// jsonEqual compares two values by canonical JSON (the corpus and the
// wire both round-trip through encoding/json).
func jsonEqual(a, b any) bool {
	ra, _ := json.Marshal(a)
	rb, _ := json.Marshal(b)
	return string(ra) == string(rb)
}
