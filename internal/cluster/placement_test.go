package cluster

import (
	"testing"

	"espsim/internal/workload"
)

// TestPlacementAffinity pins the rendezvous-hash properties the
// cluster plane relies on: determinism (every coordinator computes
// the same owner), membership (the owner is a fleet member), spread
// (the suite does not all land on one node), and minimal disruption
// (removing a worker only moves the shards it owned).
func TestPlacementAffinity(t *testing.T) {
	fleet := []string{"w0", "w1", "w2"}
	var apps []string
	for _, p := range workload.Suite() {
		apps = append(apps, p.Name)
	}
	if len(apps) < 4 {
		t.Fatalf("suite has %d apps; placement spread needs a few", len(apps))
	}

	owners := make(map[string]string, len(apps))
	used := make(map[string]bool)
	for _, app := range apps {
		owner := Place(app, fleet)
		if owner != Place(app, fleet) {
			t.Fatalf("app %s: placement is not deterministic", app)
		}
		found := false
		for _, w := range fleet {
			if w == owner {
				found = true
			}
		}
		if !found {
			t.Fatalf("app %s placed on %q, not a fleet member", app, owner)
		}
		owners[app] = owner
		used[owner] = true
	}
	if len(used) < 2 {
		t.Fatalf("all %d apps landed on one worker; rendezvous spread is broken", len(apps))
	}

	// Worker order must not matter (no shared state, no config order
	// dependence between coordinator replicas).
	for _, app := range apps {
		if got := Place(app, []string{"w2", "w0", "w1"}); got != owners[app] {
			t.Errorf("app %s: owner %q under reordered fleet, want %q", app, got, owners[app])
		}
	}

	// Removing w1: every app w1 did not own keeps its owner.
	survivors := []string{"w0", "w2"}
	for _, app := range apps {
		moved := Place(app, survivors)
		if owners[app] != "w1" && moved != owners[app] {
			t.Errorf("app %s: owner moved %q -> %q though its worker survived", app, owners[app], moved)
		}
		if owners[app] == "w1" && moved == "w1" {
			t.Errorf("app %s: still placed on the removed worker", app)
		}
	}
}
