package cluster

import (
	"context"
	"sync"
	"time"
)

// shard is one unit of placement: one application, every requested
// configuration. It carries its scheduling history so rescheduling,
// steal, and hedge accounting stay deterministic. The hedging fields
// (running, hedged, started, finished, cancels) are guarded by the
// queue mutex.
type shard struct {
	app       string
	preferred string // affinity owner chosen at placement, never re-placed
	attempts  int    // failed attempts so far
	last      string // worker of the most recent attempt (set under the queue lock)
	noJournal bool   // digest mismatch found: resume would splice, run journal-less
	handedOff bool   // journal adoption already counted for this shard

	running  int                  // live attempts (primary + hedge)
	hedged   bool                 // a hedge is (or was) in flight for the current attempt
	started  time.Time            // when the current primary attempt began
	finished bool                 // first result merged; late attempts discard
	cancels  []context.CancelFunc // live attempts' contexts, canceled when one wins
}

// shardQueue is the coordinator's work pool: a mutex/cond queue that
// prefers affinity (a worker takes its own shards first) but lets an
// idle worker steal anyone's shard, so one slow or dead node cannot
// strand the tail of a sweep. When hedging is enabled, an idle worker
// with no queued work may also re-dispatch a straggling in-flight shard
// (first result wins; the loser's context is canceled). outstanding
// counts shards not yet merged (queued or in flight); when it hits
// zero every waiter wakes and drains out.
type shardQueue struct {
	mu          sync.Mutex
	cond        *sync.Cond
	ready       []*shard
	inflight    map[*shard]struct{}
	outstanding int
	closed      bool
	hedgeAfter  time.Duration // 0: hedging disabled
}

func newShardQueue(shards []*shard, hedgeAfter time.Duration) *shardQueue {
	q := &shardQueue{
		ready:       append([]*shard(nil), shards...),
		inflight:    make(map[*shard]struct{}),
		outstanding: len(shards),
		hedgeAfter:  hedgeAfter,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// take blocks until a shard is available to worker (affinity first,
// then shards last tried elsewhere, then anything, then — with hedging
// on — a straggling in-flight shard), the queue closes, or all work
// completes; the latter two return nil. hedge reports that the shard is
// a duplicate dispatch racing a live attempt. allowed gates admission
// (the caller's node breaker): while false the worker waits without
// taking work; poke wakes it to re-check after cooldowns (and to
// re-evaluate hedge timers).
func (q *shardQueue) take(worker string, allowed func() bool) (sh *shard, hedge bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed || q.outstanding == 0 {
			return nil, false
		}
		if allowed == nil || allowed() {
			if i := q.pick(worker); i >= 0 {
				sh := q.ready[i]
				q.ready = append(q.ready[:i], q.ready[i+1:]...)
				sh.running = 1
				sh.hedged = false
				sh.started = time.Now()
				sh.last = worker
				q.inflight[sh] = struct{}{}
				return sh, false
			}
			if sh := q.hedgeCandidate(worker); sh != nil {
				sh.hedged = true
				sh.running++
				return sh, true
			}
		}
		q.cond.Wait()
	}
}

// pick returns the index of the best shard for worker, or -1. Order
// inside each preference class is FIFO, so placement order is honored
// and reschedules go to the back half only by arrival time.
func (q *shardQueue) pick(worker string) int {
	for i, sh := range q.ready {
		if sh.preferred == worker {
			return i
		}
	}
	for i, sh := range q.ready {
		if sh.last != worker {
			return i
		}
	}
	if len(q.ready) > 0 {
		return 0
	}
	return -1
}

// hedgeCandidate finds an in-flight shard worth duplicating: a single
// live attempt on some other worker that has been running past the
// hedge threshold. At most one hedge per attempt — a hedge that also
// straggles is not hedged again until an attempt fails and resets.
func (q *shardQueue) hedgeCandidate(worker string) *shard {
	if q.hedgeAfter <= 0 {
		return nil
	}
	for sh := range q.inflight {
		if !sh.finished && !sh.hedged && sh.running == 1 && sh.last != worker &&
			time.Since(sh.started) >= q.hedgeAfter {
			return sh
		}
	}
	return nil
}

// register attaches a live attempt's cancel so a winning peer can
// reclaim the loser's worker. The caller also defers its own cancel,
// so a cancel that slips past a concurrent finish still runs.
func (q *shardQueue) register(sh *shard, cancel context.CancelFunc) {
	q.mu.Lock()
	if !sh.finished {
		sh.cancels = append(sh.cancels, cancel)
	}
	q.mu.Unlock()
}

// complete records one attempt returning a result. Only the first
// completion wins (first reports it): the shard retires, the losing
// attempt's context is canceled, and its eventual return discards.
func (q *shardQueue) complete(sh *shard) (first bool) {
	q.mu.Lock()
	sh.running--
	if sh.finished {
		if sh.running == 0 {
			delete(q.inflight, sh)
		}
		q.mu.Unlock()
		return false
	}
	sh.finished = true
	losers := sh.cancels
	sh.cancels = nil
	if sh.running == 0 {
		delete(q.inflight, sh)
	}
	q.outstanding--
	q.mu.Unlock()
	for _, cancel := range losers {
		cancel()
	}
	q.cond.Broadcast()
	return true
}

// abort records one attempt failing. finished means a racing attempt
// already merged a result (the failure is a canceled loser: no breaker
// penalty, nothing to reschedule); retry means this was the shard's
// last live attempt and the caller must requeue or terminally fail it.
// A failed attempt with a live sibling resets the hedge clock: the
// sibling is the primary now, and may itself be hedged later.
func (q *shardQueue) abort(sh *shard) (finished, retry bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	sh.running--
	if sh.finished {
		if sh.running == 0 {
			delete(q.inflight, sh)
		}
		return true, false
	}
	if sh.running > 0 {
		sh.hedged = false
		sh.started = time.Now()
		return false, false
	}
	delete(q.inflight, sh)
	return false, true
}

// requeue puts a failed shard back for another worker; the shard
// stays outstanding.
func (q *shardQueue) requeue(sh *shard) {
	q.mu.Lock()
	q.ready = append(q.ready, sh)
	q.mu.Unlock()
	q.cond.Broadcast()
}

// done retires one shard without a result (terminal failure).
func (q *shardQueue) done() {
	q.mu.Lock()
	q.outstanding--
	finished := q.outstanding == 0
	q.mu.Unlock()
	if finished {
		q.cond.Broadcast()
	}
}

// close aborts the queue (context cancellation): every waiter drains.
func (q *shardQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// poke wakes every waiter to re-check its admission gate and hedge
// timers — the coordinator ticks this so a worker whose breaker
// cooldown expired (or whose peer started straggling) acts without a
// dedicated timer per worker.
func (q *shardQueue) poke() {
	q.cond.Broadcast()
}
