package cluster

import "sync"

// shard is one unit of placement: one application, every requested
// configuration. It carries its scheduling history so rescheduling
// and steal accounting stay deterministic.
type shard struct {
	app       string
	preferred string // affinity owner chosen at placement, never re-placed
	attempts  int    // failed attempts so far
	last      string // worker of the most recent attempt
	noJournal bool   // digest mismatch found: resume would splice, run journal-less
	handedOff bool   // journal adoption already counted for this shard
}

// shardQueue is the coordinator's work pool: a mutex/cond queue that
// prefers affinity (a worker takes its own shards first) but lets an
// idle worker steal anyone's shard, so one slow or dead node cannot
// strand the tail of a sweep. outstanding counts shards not yet
// merged (queued or in flight); when it hits zero every waiter wakes
// and drains out.
type shardQueue struct {
	mu          sync.Mutex
	cond        *sync.Cond
	ready       []*shard
	outstanding int
	closed      bool
}

func newShardQueue(shards []*shard) *shardQueue {
	q := &shardQueue{ready: append([]*shard(nil), shards...), outstanding: len(shards)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// take blocks until a shard is available to worker (affinity first,
// then shards last tried elsewhere, then anything), the queue closes,
// or all work completes — the latter two return nil. allowed gates
// admission (the caller's node breaker): while false the worker waits
// without taking work; poke wakes it to re-check after cooldowns.
func (q *shardQueue) take(worker string, allowed func() bool) *shard {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed || q.outstanding == 0 {
			return nil
		}
		if allowed == nil || allowed() {
			if i := q.pick(worker); i >= 0 {
				sh := q.ready[i]
				q.ready = append(q.ready[:i], q.ready[i+1:]...)
				return sh
			}
		}
		q.cond.Wait()
	}
}

// pick returns the index of the best shard for worker, or -1. Order
// inside each preference class is FIFO, so placement order is honored
// and reschedules go to the back half only by arrival time.
func (q *shardQueue) pick(worker string) int {
	for i, sh := range q.ready {
		if sh.preferred == worker {
			return i
		}
	}
	for i, sh := range q.ready {
		if sh.last != worker {
			return i
		}
	}
	if len(q.ready) > 0 {
		return 0
	}
	return -1
}

// requeue puts a failed shard back for another worker; the shard
// stays outstanding.
func (q *shardQueue) requeue(sh *shard) {
	q.mu.Lock()
	q.ready = append(q.ready, sh)
	q.mu.Unlock()
	q.cond.Broadcast()
}

// done retires one shard (merged or terminally failed).
func (q *shardQueue) done() {
	q.mu.Lock()
	q.outstanding--
	finished := q.outstanding == 0
	q.mu.Unlock()
	if finished {
		q.cond.Broadcast()
	}
}

// close aborts the queue (context cancellation): every waiter drains.
func (q *shardQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// poke wakes every waiter to re-check its admission gate — the
// coordinator ticks this so a worker whose breaker cooldown expired
// starts taking work again without a dedicated timer per worker.
func (q *shardQueue) poke() {
	q.cond.Broadcast()
}
