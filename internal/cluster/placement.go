package cluster

import "hash/fnv"

// Place picks the worker that owns key by rendezvous (highest random
// weight) hashing: every coordinator computes the same owner with no
// shared state, and removing one worker only moves the shards that
// worker owned — the rest of the fleet keeps its cache-hot
// assignments. Keys are applications, so every configuration of one
// application lands on one node and reuses its materialized arena and
// pooled machines across the whole shard.
func Place(key string, workers []string) string {
	best, bestScore := "", uint64(0)
	for _, w := range workers {
		h := fnv.New64a()
		h.Write([]byte(w))
		h.Write([]byte{'|'})
		h.Write([]byte(key))
		if score := h.Sum64(); best == "" || score > bestScore || (score == bestScore && w < best) {
			best, bestScore = w, score
		}
	}
	return best
}
