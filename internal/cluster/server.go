package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"

	"espsim/internal/serve"
	"espsim/internal/tenantq"
)

// Server is the espcoord HTTP facade: the same POST /sweep contract a
// single espd serves, answered by the whole fleet.
//
//	POST /sweep    sharded across workers, merged app-major
//	GET  /metrics  scheduling/quarantine/handoff counters + per-worker breaker state
//	GET  /workers  current app→worker placements
//	GET  /healthz  coordinator liveness
type Server struct {
	c   *Coordinator
	log *slog.Logger
	mux *http.ServeMux

	maxRequestBytes int64
}

// NewServer mounts a Coordinator behind HTTP.
func NewServer(c *Coordinator) *Server {
	s := &Server{c: c, log: c.log, mux: http.NewServeMux(), maxRequestBytes: 8 << 20}
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/workers", s.handleWorkers)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler with the same panic isolation as
// espd: a handler panic answers 500, not a dropped connection.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			s.log.Error("coordinator handler panic", "path", r.URL.Path, "panic", fmt.Sprint(p))
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "internal error"})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxRequestBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	// The wire contract is espd's own: one parser, one validation.
	req, err := serve.ParseSweepRequest(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if req.Shard != "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "\"shard\" is set by the coordinator, not the client"})
		return
	}
	resp, err := s.c.Run(r.Context(), req)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, tenantq.ErrQuota) {
			status = http.StatusTooManyRequests
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, s.c.Metrics())
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Placements []Placement   `json:"placements"`
		Workers    []WorkerState `json:"workers"`
	}{s.c.Placements(nil), s.c.Metrics().Workers})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
