package cluster

import "sync/atomic"

// counters is the coordinator's observability plane: lock-free
// cumulative counters for the scheduling and failure machinery.
type counters struct {
	SweepsDone       atomic.Int64
	ShardsDone       atomic.Int64
	ShardsFailed     atomic.Int64 // terminally failed after MaxShardAttempts
	Steals           atomic.Int64 // shard taken by a non-preferred worker
	Reschedules      atomic.Int64 // failed attempts put back on the queue
	NetFaults        atomic.Int64 // attempts lost to the network layer
	Probes           atomic.Int64
	ProbeFailures    atomic.Int64
	JournalHandoffs  atomic.Int64 // dead worker's journal adopted by a peer
	DigestMismatches atomic.Int64 // journal refused: digest described different work
	ResumedCells     atomic.Int64 // cells replayed from an adopted journal
}

// WorkerState is one fleet member's row in the snapshot.
type WorkerState struct {
	Name    string `json:"name"`
	Breaker string `json:"breaker"` // closed | open | half_open
}

// Snapshot is the GET /metrics document of espcoord.
type Snapshot struct {
	Workers []WorkerState `json:"workers"`

	Sweeps struct {
		Done int64 `json:"done"`
	} `json:"sweeps"`

	Shards struct {
		Done        int64 `json:"done"`
		Failed      int64 `json:"failed"`
		Steals      int64 `json:"steals"`
		Reschedules int64 `json:"reschedules"`
	} `json:"shards"`

	// Quarantine mirrors the node breakers: trips is cumulative (how
	// many times any node was quarantined), open is the gauge.
	Quarantine struct {
		Trips int64 `json:"trips"`
		Skips int64 `json:"skips"`
		Open  int64 `json:"open"`
	} `json:"quarantine"`

	Health struct {
		Probes   int64 `json:"probes"`
		Failures int64 `json:"failures"`
	} `json:"health"`

	Handoff struct {
		Journals         int64 `json:"journals"`
		DigestMismatches int64 `json:"digest_mismatches"`
		ResumedCells     int64 `json:"resumed_cells"`
	} `json:"handoff"`

	NetFaults int64 `json:"net_faults"`
}

// snapshot renders the counters; the coordinator fills in the
// breaker-derived fields.
func (c *counters) snapshot() Snapshot {
	var s Snapshot
	s.Sweeps.Done = c.SweepsDone.Load()
	s.Shards.Done = c.ShardsDone.Load()
	s.Shards.Failed = c.ShardsFailed.Load()
	s.Shards.Steals = c.Steals.Load()
	s.Shards.Reschedules = c.Reschedules.Load()
	s.Health.Probes = c.Probes.Load()
	s.Health.Failures = c.ProbeFailures.Load()
	s.Handoff.Journals = c.JournalHandoffs.Load()
	s.Handoff.DigestMismatches = c.DigestMismatches.Load()
	s.Handoff.ResumedCells = c.ResumedCells.Load()
	s.NetFaults = c.NetFaults.Load()
	return s
}
