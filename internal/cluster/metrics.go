package cluster

import "sync/atomic"

// counters is the coordinator's observability plane: lock-free
// cumulative counters for the scheduling and failure machinery.
type counters struct {
	SweepsDone       atomic.Int64
	ShardsDone       atomic.Int64
	ShardsFailed     atomic.Int64 // terminally failed after MaxShardAttempts
	Steals           atomic.Int64 // shard taken by a non-preferred worker
	Reschedules      atomic.Int64 // failed attempts put back on the queue
	NetFaults        atomic.Int64 // attempts lost to the network layer
	Probes           atomic.Int64
	ProbeFailures    atomic.Int64
	JournalHandoffs  atomic.Int64 // dead worker's journal adopted by a peer
	DigestMismatches atomic.Int64 // journal refused: digest described different work
	ResumedCells     atomic.Int64 // cells replayed from an adopted journal
	Hedges           atomic.Int64 // straggling shards re-dispatched to an idle worker
	HedgeWins        atomic.Int64 // hedge attempts that returned the first (merged) result
	CellsShed        atomic.Int64 // cells workers shed as unfinishable within the deadline
}

// WorkerState is one fleet member's row in the snapshot.
type WorkerState struct {
	Name    string `json:"name"`
	Breaker string `json:"breaker"` // closed | open | half_open
}

// Snapshot is the GET /metrics document of espcoord.
type Snapshot struct {
	Workers []WorkerState `json:"workers"`

	Sweeps struct {
		Done int64 `json:"done"`
	} `json:"sweeps"`

	Shards struct {
		Done        int64 `json:"done"`
		Failed      int64 `json:"failed"`
		Steals      int64 `json:"steals"`
		Reschedules int64 `json:"reschedules"`
		Hedges      int64 `json:"hedges"`
		HedgeWins   int64 `json:"hedge_wins"`
	} `json:"shards"`

	// Overload mirrors the fleet-facing degradation machinery: cells a
	// worker answered with a deadline shed instead of a simulation.
	Overload struct {
		CellsShed int64 `json:"cells_shed"`
	} `json:"overload"`

	// Quarantine mirrors the node breakers: trips is cumulative (how
	// many times any node was quarantined), open is the gauge.
	Quarantine struct {
		Trips int64 `json:"trips"`
		Skips int64 `json:"skips"`
		Open  int64 `json:"open"`
	} `json:"quarantine"`

	Health struct {
		Probes   int64 `json:"probes"`
		Failures int64 `json:"failures"`
	} `json:"health"`

	Handoff struct {
		Journals         int64 `json:"journals"`
		DigestMismatches int64 `json:"digest_mismatches"`
		ResumedCells     int64 `json:"resumed_cells"`
	} `json:"handoff"`

	NetFaults int64 `json:"net_faults"`
}

// snapshot renders the counters; the coordinator fills in the
// breaker-derived fields.
func (c *counters) snapshot() Snapshot {
	var s Snapshot
	s.Sweeps.Done = c.SweepsDone.Load()
	s.Shards.Done = c.ShardsDone.Load()
	s.Shards.Failed = c.ShardsFailed.Load()
	s.Shards.Steals = c.Steals.Load()
	s.Shards.Reschedules = c.Reschedules.Load()
	s.Shards.Hedges = c.Hedges.Load()
	s.Shards.HedgeWins = c.HedgeWins.Load()
	s.Overload.CellsShed = c.CellsShed.Load()
	s.Health.Probes = c.Probes.Load()
	s.Health.Failures = c.ProbeFailures.Load()
	s.Handoff.Journals = c.JournalHandoffs.Load()
	s.Handoff.DigestMismatches = c.DigestMismatches.Load()
	s.Handoff.ResumedCells = c.ResumedCells.Load()
	s.NetFaults = c.NetFaults.Load()
	return s
}
