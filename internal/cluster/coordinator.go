package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"espsim/internal/checkpoint"
	"espsim/internal/fault"
	"espsim/internal/serve"
	"espsim/internal/tenantq"
	"espsim/internal/workload"
)

// Options configures a Coordinator.
type Options struct {
	// Workers is the fleet, in a stable order (placement hashes names,
	// so order only affects log readability). Required, names unique.
	Workers []Worker
	// Pin overrides rendezvous placement per application (hot-spot
	// isolation, deterministic tests). Unknown worker names are
	// ignored and fall back to hashing.
	Pin map[string]string
	// MaxShardAttempts bounds how many workers a shard may burn before
	// its cells are reported failed (default 3; at least 1).
	MaxShardAttempts int
	// BreakerThreshold is how many consecutive failures quarantine a
	// node (default 2; negative disables node breakers).
	BreakerThreshold int
	// BreakerCooldown is the first quarantine's length (default 15s);
	// consecutive re-trips double it up to BreakerMaxCooldown
	// (default 2m).
	BreakerCooldown    time.Duration
	BreakerMaxCooldown time.Duration
	// ProbeInterval spaces background health probes while a sweep
	// runs; 0 disables probing (failures still quarantine via the
	// sweep path).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default 2s).
	ProbeTimeout time.Duration
	// CheckpointDir is the journal directory the fleet shares, when it
	// does (local fleets, network volumes). It enables journal
	// handoff: a dead worker's shard journal is digest-checked here
	// and its completed cells replay on whichever peer adopts the
	// shard. Empty: peers recompute instead (same results, more work).
	CheckpointDir string
	// HedgeAfter re-dispatches a shard still in flight after this long
	// to an idle worker: the two attempts race, the first result wins,
	// and the loser's context is canceled. The hedge runs journal-less
	// (two workers must not append one shard journal), so it recomputes
	// rather than resumes; results are bit-identical either way.
	// 0 disables hedging.
	HedgeAfter time.Duration
	// TenantDefault and Tenants mirror espd's fair-queue configuration
	// at the coordination layer: a sweep is admitted against its
	// tenant's weight and quotas (cost: the whole grid's cell count)
	// before any shard is dispatched, so one greedy tenant queues
	// behind its share of the fleet instead of flooding it.
	// TenantSlots bounds concurrently admitted sweeps fleet-wide
	// (default: 64 × workers); lower it to serialize admission and let
	// DRR order fully decide who runs next.
	TenantDefault tenantq.TenantConfig
	Tenants       map[string]tenantq.TenantConfig
	TenantSlots   int
	// Logger receives scheduling decisions (default slog.Default).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.MaxShardAttempts < 1 {
		o.MaxShardAttempts = 3
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 2
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 15 * time.Second
	}
	if o.BreakerMaxCooldown <= 0 {
		o.BreakerMaxCooldown = 2 * time.Minute
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.TenantSlots <= 0 {
		o.TenantSlots = 64 * len(o.Workers)
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// maxCoordSweepID bounds a coordinated sweep_id so the shard-scoped
// "<id>.<app>" journal names stay within the worker's 64-char limit.
const maxCoordSweepID = 48

// Coordinator shards sweeps across a fleet of espd workers. One
// Coordinator serves many Run calls; node breakers and counters are
// fleet state, shared across sweeps.
type Coordinator struct {
	opt      Options
	log      *slog.Logger
	names    []string // placement domain, stable order
	workers  map[string]Worker
	breakers *fault.BreakerSet
	tq       *tenantq.Queue
	met      counters
}

// New assembles a Coordinator.
func New(opt Options) (*Coordinator, error) {
	opt = opt.withDefaults()
	if len(opt.Workers) == 0 {
		return nil, errors.New("cluster: at least one worker is required")
	}
	c := &Coordinator{
		opt:      opt,
		log:      opt.Logger,
		workers:  make(map[string]Worker, len(opt.Workers)),
		breakers: fault.NewEscalatingBreakerSet(opt.BreakerThreshold, opt.BreakerCooldown, opt.BreakerMaxCooldown),
		tq: tenantq.New(tenantq.Options{
			Slots:   opt.TenantSlots,
			Default: opt.TenantDefault,
			Tenants: opt.Tenants,
		}),
	}
	for _, w := range opt.Workers {
		name := w.Name()
		if name == "" {
			return nil, errors.New("cluster: worker with an empty name")
		}
		if _, dup := c.workers[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate worker name %q", name)
		}
		c.workers[name] = w
		c.names = append(c.names, name)
	}
	return c, nil
}

// Metrics renders the coordinator's snapshot, one worker row per
// fleet member in stable order.
func (c *Coordinator) Metrics() Snapshot {
	s := c.met.snapshot()
	for _, name := range c.names {
		s.Workers = append(s.Workers, WorkerState{Name: name, Breaker: c.breakers.StateOf(name)})
	}
	s.Quarantine.Trips = c.breakers.Trips()
	s.Quarantine.Skips = c.breakers.Skips()
	s.Quarantine.Open = int64(c.breakers.OpenCount())
	return s
}

// Run shards req application-by-application across the fleet and
// merges the shard responses into one grid, cells in app-major
// request order — the same shape a single espd answers. Shard
// failures degrade to per-cell errors; Run itself only fails on an
// invalid request or a canceled context.
func (c *Coordinator) Run(ctx context.Context, req serve.SweepRequest) (serve.SweepResponse, error) {
	if len(req.Configs) == 0 {
		return serve.SweepResponse{}, errors.New("cluster: configs required")
	}
	if len(req.SweepID) > maxCoordSweepID {
		return serve.SweepResponse{}, fmt.Errorf("cluster: sweep_id must be at most %d characters (shard journals append \".<app>\"), got %d",
			maxCoordSweepID, len(req.SweepID))
	}
	apps := req.Apps
	if len(apps) == 0 {
		for _, p := range workload.Suite() {
			apps = append(apps, p.Name)
		}
	}

	// Fair-queue admission: the whole grid is one acquisition at its
	// cell-count cost, against the tenant's weight and quotas. A greedy
	// tenant's sweeps queue here — behind its fair share — while other
	// tenants' sweeps overtake; quota breaches fail fast with ErrQuota.
	tenant := req.Tenant
	if tenant == "" {
		tenant = tenantq.DefaultTenant
	}
	releaseTenant, err := c.tq.Acquire(ctx, tenant, len(apps)*len(req.Configs))
	if err != nil {
		return serve.SweepResponse{}, fmt.Errorf("cluster: tenant %s: %w", tenant, err)
	}
	defer releaseTenant()

	// The deadline is anchored here: every shard dispatch re-derives
	// the worker-relative deadline_ms from what remains, so time spent
	// queued or rescheduled at the coordinator eats the same budget the
	// client is watching.
	arrival := time.Now()
	var deadline time.Time
	if req.DeadlineMs != 0 {
		deadline = arrival.Add(time.Duration(req.DeadlineMs) * time.Millisecond)
	}

	shards := make([]*shard, len(apps))
	for i, app := range apps {
		preferred := c.opt.Pin[app]
		if _, ok := c.workers[preferred]; !ok {
			preferred = Place(app, c.names)
		}
		shards[i] = &shard{app: app, preferred: preferred}
		c.log.Info("cluster placement", "app", app, "worker", preferred)
	}
	q := newShardQueue(shards, c.opt.HedgeAfter)

	// Cancellation, breaker-cooldown re-checks, and optional health
	// probing all run beside the worker loops for the sweep's duration.
	runCtx, stop := context.WithCancel(ctx)
	defer stop()
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		ticker := time.NewTicker(25 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-runCtx.Done():
				q.close()
				return
			case <-ticker.C:
				q.poke()
			}
		}
	}()
	if c.opt.ProbeInterval > 0 {
		aux.Add(1)
		go func() {
			defer aux.Done()
			c.probeLoop(runCtx)
		}()
	}

	start := time.Now()
	merged := &mergeSet{cells: make(map[string][]serve.SweepCell, len(apps))}
	var wg sync.WaitGroup
	for _, name := range c.names {
		wg.Add(1)
		go func(w Worker) {
			defer wg.Done()
			c.runWorker(runCtx, w, q, req, deadline, merged)
		}(c.workers[name])
	}
	wg.Wait()
	stop()
	aux.Wait()
	if err := ctx.Err(); err != nil {
		return serve.SweepResponse{}, fmt.Errorf("cluster: sweep canceled: %w", err)
	}

	resp := serve.SweepResponse{WallMs: float64(time.Since(start).Microseconds()) / 1e3}
	for _, app := range apps {
		resp.Cells = append(resp.Cells, merged.get(app)...)
	}
	c.met.SweepsDone.Add(1)
	return resp, nil
}

// runWorker is one fleet member's scheduling loop: take a shard
// (affinity first, steal otherwise, hedge a straggler last), run it,
// merge or reschedule. The node breaker gates admission — a
// quarantined worker waits instead of burning shard attempts. With
// hedging, two attempts may race: the first to return a result merges
// it and cancels the other; the canceled loser is not a node failure.
func (c *Coordinator) runWorker(ctx context.Context, w Worker, q *shardQueue, req serve.SweepRequest, deadline time.Time, merged *mergeSet) {
	name := w.Name()
	allowed := func() bool { return c.breakers.Allow(name) }
	for {
		sh, hedge := q.take(name, allowed)
		if sh == nil {
			return
		}
		if hedge {
			c.met.Hedges.Add(1)
			c.log.Info("cluster hedge", "app", sh.app, "worker", name)
		} else if sh.preferred != name {
			c.met.Steals.Add(1)
			c.log.Info("cluster steal", "app", sh.app, "worker", name, "preferred", sh.preferred)
		}
		attemptCtx, cancel := context.WithCancel(ctx)
		q.register(sh, cancel)
		resp, err := w.Sweep(attemptCtx, shardRequest(req, sh, hedge, deadline))
		cancel()
		if err != nil {
			finished, retry := q.abort(sh)
			if finished {
				// A racing attempt already won and canceled this one:
				// the "failure" says nothing about the node.
				continue
			}
			c.breakers.Record(name, false)
			if errors.Is(err, fault.ErrNet) {
				c.met.NetFaults.Add(1)
			}
			c.log.Warn("cluster shard attempt failed", "app", sh.app, "worker", name, "hedge", hedge, "err", err.Error())
			if !retry {
				continue // a sibling attempt is still racing; it owns the shard now
			}
			sh.attempts++
			if sh.attempts >= c.opt.MaxShardAttempts {
				c.met.ShardsFailed.Add(1)
				merged.fail(sh.app, req.Configs, err)
				q.done()
				continue
			}
			c.met.Reschedules.Add(1)
			c.inspectJournal(sh, req)
			q.requeue(sh)
			continue
		}
		c.breakers.Record(name, true)
		if !q.complete(sh) {
			continue // the race was already won; this result discards
		}
		if hedge {
			c.met.HedgeWins.Add(1)
		}
		for _, cell := range resp.Cells {
			switch {
			case cell.Resumed:
				c.met.ResumedCells.Add(1)
			case cell.ErrorKind == string(fault.KindShed):
				c.met.CellsShed.Add(1)
			}
		}
		merged.put(sh.app, resp.Cells)
		c.met.ShardsDone.Add(1)
	}
}

// shardRequest scopes the sweep request to one shard: a single app,
// the shard label, and a shard-scoped sweep_id so each worker
// journals its own slice of the grid (and a handed-off shard resumes
// the dead worker's journal by name). A hedge attempt always runs
// journal-less: its sibling may hold the journal claim, and two
// writers must never interleave one file. The worker-relative
// deadline_ms is re-derived from what remains of the coordinator's
// anchored deadline — negative once the budget is spent, which the
// worker answers with an immediate full-shed response.
func shardRequest(req serve.SweepRequest, sh *shard, hedge bool, deadline time.Time) serve.SweepRequest {
	sreq := req
	sreq.Apps = []string{sh.app}
	sreq.Shard = sh.app
	if req.SweepID != "" && !sh.noJournal && !hedge {
		sreq.SweepID = req.SweepID + "." + sh.app
	} else {
		sreq.SweepID = ""
	}
	if !deadline.IsZero() {
		rem := time.Until(deadline).Milliseconds()
		if rem <= 0 {
			rem = -1
		}
		sreq.DeadlineMs = rem
	}
	return sreq
}

// inspectJournal is the handoff step between a failed attempt and the
// reschedule: when the fleet shares a checkpoint directory, peek the
// shard's journal and digest-check its header. A matching journal
// with completed cells means the adopting peer will resume them — a
// handoff, counted once. A mismatched or corrupt journal must not be
// resumed (it describes different work): the shard reruns journal-less
// rather than splicing, and the conflict is counted.
func (c *Coordinator) inspectJournal(sh *shard, req serve.SweepRequest) {
	if c.opt.CheckpointDir == "" || req.SweepID == "" || sh.noJournal {
		return
	}
	scoped := req.SweepID + "." + sh.app
	meta, records, _, err := checkpoint.Peek(filepath.Join(c.opt.CheckpointDir, scoped+".espj"))
	switch {
	case errors.Is(err, os.ErrNotExist):
		return // nothing journaled before the failure
	case errors.Is(err, checkpoint.ErrCorrupt):
		sh.noJournal = true
		c.met.DigestMismatches.Add(1)
		c.log.Warn("cluster handoff: journal unusable", "app", sh.app, "sweep_id", scoped, "err", err.Error())
		return
	case err != nil:
		return // unreadable (transient IO): let the peer's own open decide
	}
	want := serve.SweepDigest([]string{sh.app}, req)
	if meta.SweepID != scoped || meta.Shard != sh.app || meta.Digest != want {
		sh.noJournal = true
		c.met.DigestMismatches.Add(1)
		c.log.Warn("cluster handoff: digest mismatch", "app", sh.app, "sweep_id", scoped,
			"journal_digest", meta.Digest, "want", want)
		return
	}
	if len(records) > 0 && !sh.handedOff {
		sh.handedOff = true
		c.met.JournalHandoffs.Add(1)
		c.log.Info("cluster handoff: journal adopted", "app", sh.app, "sweep_id", scoped, "cells", len(records))
	}
}

// probeLoop health-checks the fleet on the probe interval, feeding
// outcomes into the node breakers: a worker that stops answering
// /healthz or /readyz is quarantined without burning a shard attempt,
// and a recovered worker closes its breaker on the next green probe.
func (c *Coordinator) probeLoop(ctx context.Context) {
	ticker := time.NewTicker(c.opt.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		for _, name := range c.names {
			w := c.workers[name]
			c.met.Probes.Add(1)
			pctx, cancel := context.WithTimeout(ctx, c.opt.ProbeTimeout)
			err := w.Probe(pctx)
			cancel()
			if err != nil {
				c.met.ProbeFailures.Add(1)
				c.breakers.Record(name, false)
				c.log.Warn("cluster probe failed", "worker", name, "err", err.Error())
				continue
			}
			c.breakers.Record(name, true)
		}
	}
}

// Placements reports the current owner of every application in the
// fleet — the map GET /workers serves, sorted by app for stable output.
func (c *Coordinator) Placements(apps []string) []Placement {
	if len(apps) == 0 {
		for _, p := range workload.Suite() {
			apps = append(apps, p.Name)
		}
	}
	out := make([]Placement, 0, len(apps))
	for _, app := range apps {
		preferred := c.opt.Pin[app]
		if _, ok := c.workers[preferred]; !ok {
			preferred = Place(app, c.names)
		}
		out = append(out, Placement{App: app, Worker: preferred})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// Placement is one app→worker affinity assignment.
type Placement struct {
	App    string `json:"app"`
	Worker string `json:"worker"`
}

// mergeSet collects shard responses keyed by app.
type mergeSet struct {
	mu    sync.Mutex
	cells map[string][]serve.SweepCell
}

func (m *mergeSet) put(app string, cells []serve.SweepCell) {
	m.mu.Lock()
	m.cells[app] = cells
	m.mu.Unlock()
}

// fail materializes a terminally failed shard as per-cell errors, the
// same degraded shape espd itself uses — a lost shard never loses the
// rest of the grid.
func (m *mergeSet) fail(app string, configs []string, err error) {
	cells := make([]serve.SweepCell, len(configs))
	for i, cfg := range configs {
		cells[i] = serve.SweepCell{
			App:       app,
			Config:    cfg,
			Error:     err.Error(),
			ErrorKind: string(fault.Classify(err)),
		}
	}
	m.put(app, cells)
}

func (m *mergeSet) get(app string) []serve.SweepCell {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cells[app]
}
