// Package stats provides the derived-metric and reporting helpers shared
// by the experiment harness: means over benchmark suites (the paper
// reports harmonic means), percentiles, and fixed-width text tables that
// mirror the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// HarmonicMean returns the harmonic mean of xs; the paper's "HMean" bars
// aggregate per-application speedups this way. Non-positive values are
// rejected by returning NaN.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// Mean returns the arithmetic mean of xs (NaN when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (NaN when empty or
// non-positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the q-quantile of xs by nearest rank (NaN when
// empty).
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Improvement converts a speedup factor to the "performance improvement
// (%)" metric the paper's figures plot.
func Improvement(speedup float64) float64 { return (speedup - 1) * 100 }

// Table is a fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells beyond the header count are kept as-is.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddF appends a row of a label followed by formatted float64 values.
func (t *Table) AddF(label string, format string, vals ...float64) {
	row := []string{label}
	for _, v := range vals {
		row = append(row, fmt.Sprintf(format, v))
	}
	t.Rows = append(t.Rows, row)
}

// CSV renders the table as comma-separated values (title omitted; fields
// containing commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, 0, len(t.Headers))
	row0 := t.Headers
	for _, c := range row0 {
		widths = append(widths, len(c))
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
