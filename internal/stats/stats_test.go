package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{2, 2, 2}); got != 2 {
		t.Fatalf("HMean(2,2,2) = %v", got)
	}
	got := HarmonicMean([]float64{1, 4})
	if math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("HMean(1,4) = %v, want 1.6", got)
	}
	if !math.IsNaN(HarmonicMean(nil)) {
		t.Fatal("HMean(nil) should be NaN")
	}
	if !math.IsNaN(HarmonicMean([]float64{1, -1})) {
		t.Fatal("HMean with non-positive input should be NaN")
	}
}

func TestHarmonicLEQArithmetic(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		return HarmonicMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMeanBetween(t *testing.T) {
	xs := []float64{1, 2, 8}
	g := GeoMean(xs)
	if g <= HarmonicMean(xs) || g >= Mean(xs) {
		t.Fatalf("GeoMean %v not between HMean %v and Mean %v", g, HarmonicMean(xs), Mean(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	if got := Percentile(xs, 0.5); got != 5 {
		t.Fatalf("median = %v", got)
	}
	if got := Percentile(xs, 1.0); got != 9 {
		t.Fatalf("max = %v", got)
	}
	if got := Percentile(xs, 0.0); got != 1 {
		t.Fatalf("min quantile = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("Percentile(nil) should be NaN")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(1.16); math.Abs(got-16) > 1e-9 {
		t.Fatalf("Improvement(1.16) = %v", got)
	}
	if Improvement(1) != 0 {
		t.Fatal("Improvement(1) != 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.Add("alpha", "1")
	tb.AddF("beta", "%.2f", 3.14159)
	out := tb.String()
	for _, want := range []string{"My Title", "name", "alpha", "beta", "3.14"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add("xxxxxxxx", "1")
	tb.Add("y", "2")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	last := lines[len(lines)-1]
	prev := lines[len(lines)-2]
	if strings.Index(prev, "1") != strings.Index(last, "2") {
		t.Fatalf("columns misaligned:\n%s", tb.String())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("title ignored", "a", "b")
	tb.Add("x", "1")
	tb.Add("with,comma", `with"quote`)
	got := tb.CSV()
	want := "a,b\nx,1\n\"with,comma\",\"with\"\"quote\"\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
}
