package mem

// Latencies are the load-to-use latencies of each hierarchy level, in
// cycles (Figure 7).
type Latencies struct {
	L1  int // L1 hit
	L2  int // L2 hit
	Mem int // DRAM access
}

// DefaultLatencies mirrors Figure 7: 2-cycle L1, 21-cycle L2, 101-cycle
// main memory.
func DefaultLatencies() Latencies { return Latencies{L1: 2, L2: 21, Mem: 101} }

// Level identifies where an access was satisfied.
type Level uint8

// Hierarchy levels, innermost first.
const (
	LevelL1 Level = iota
	LevelL2
	LevelMem
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	default:
		return "Mem"
	}
}

// Hierarchy is the simulated memory system: split L1s over a unified L2
// over DRAM. Perfect* switches make a level always hit, for the
// performance-potential study (Figure 3).
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	Lat Latencies //esp:immutable

	// PerfectL1I/PerfectL1D short-circuit the corresponding L1 to always
	// hit (Figure 3's "perfect cache" configurations).
	PerfectL1I bool //esp:immutable
	PerfectL1D bool //esp:immutable

	// NearTimelyPct is the percentage of next-line prefetches of
	// L2-resident lines that complete before the demand fetch reaches
	// them (an L2 fill takes about as long as crossing one line of
	// straight-line code, so roughly half arrive in time).
	NearTimelyPct int //esp:immutable
}

// DefaultHierarchy builds the Figure 7 configuration: 32 KB 2-way L1s and
// a 2 MB 16-way L2.
func DefaultHierarchy() *Hierarchy {
	return &Hierarchy{
		L1I: MustCache("L1I", 32<<10, 2),
		L1D: MustCache("L1D", 32<<10, 2),
		L2:  MustCache("L2", 2<<20, 16),
		Lat: DefaultLatencies(),

		NearTimelyPct: 35,
	}
}

// nearTimely deterministically decides whether a short-lookahead prefetch
// of addr's line completes in time to be useful at the L1.
func (h *Hierarchy) nearTimely(addr uint64) bool {
	x := addr >> 6
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x%100) < h.NearTimelyPct
}

// FetchI performs a demand instruction fetch of addr's line. It returns
// the level that satisfied the fetch and the extra cycles beyond a
// pipelined L1 hit (0 for an L1 hit).
func (h *Hierarchy) FetchI(addr uint64) (Level, int) {
	if h.PerfectL1I {
		return LevelL1, 0
	}
	if h.L1I.Access(addr, false) {
		return LevelL1, 0
	}
	if h.L2.Access(addr, false) {
		return LevelL2, h.Lat.L2
	}
	return LevelMem, h.Lat.Mem
}

// AccessD performs a demand data access. It returns the satisfying level
// and the load-to-use latency in cycles.
func (h *Hierarchy) AccessD(addr uint64, write bool) (Level, int) {
	if h.PerfectL1D {
		return LevelL1, h.Lat.L1
	}
	if h.L1D.Access(addr, write) {
		return LevelL1, h.Lat.L1
	}
	if h.L2.Access(addr, write) {
		return LevelL2, h.Lat.L2
	}
	return LevelMem, h.Lat.Mem
}

// PrefetchI installs addr's line into L1-I and L2 on behalf of an
// instruction prefetcher. Already-resident lines are left untouched.
func (h *Hierarchy) PrefetchI(addr uint64) {
	h.L2.Install(addr, true)
	h.L1I.Install(addr, true)
}

// PrefetchD installs addr's line into L1-D and L2 on behalf of a data
// prefetcher.
func (h *Hierarchy) PrefetchD(addr uint64) {
	h.L2.Install(addr, true)
	h.L1D.Install(addr, true)
}

// PrefetchINear models a short-lookahead prefetch (next-line): if the
// line is already close (L2-resident) the fill arrives in time to enter
// L1-I; a line still in memory cannot arrive before the imminent demand
// fetch, so it only lands in L2 (helping the next encounter).
func (h *Hierarchy) PrefetchINear(addr uint64) {
	if h.L2.Probe(addr) && h.nearTimely(addr) {
		h.L1I.Install(addr, true)
		return
	}
	h.L2.Install(addr, true)
}

// PrefetchDNear is PrefetchINear for the data side (DCU and stride
// prefetchers run a few accesses ahead at most).
func (h *Hierarchy) PrefetchDNear(addr uint64) {
	if h.L2.Probe(addr) && h.nearTimely(addr) {
		h.L1D.Install(addr, true)
		return
	}
	h.L2.Install(addr, true)
}

// FillLatency returns the cycles a fill that bypasses the L1s (an ESP
// cachelet fill, §3.4) costs: an L2 hit if the line is resident there,
// otherwise a memory access. The probe does not disturb L2 recency, since
// cachelet fills skip the caches. The second result reports whether the
// fill had to go to memory (an LLC miss, which escalates the ESP mode).
func (h *Hierarchy) FillLatency(addr uint64) (int, bool) {
	if h.L2.Probe(addr) {
		return h.Lat.L2, false
	}
	return h.Lat.Mem, true
}

// ResetStats zeroes every level's counters.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
}

// Reset restores every level to its cold state (all lines invalid,
// counters zeroed) without reallocating the caches. The Perfect* and
// latency knobs are configuration, not run state, and are left alone.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
}
