package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"espsim/internal/trace"
)

func TestNewCacheGeometry(t *testing.T) {
	c, err := NewCache("t", 32<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.SizeBytes() != 32<<10 {
		t.Fatalf("SizeBytes = %d", c.SizeBytes())
	}
}

func TestNewCacheRejectsBadGeometry(t *testing.T) {
	cases := []struct{ size, ways int }{
		{0, 2}, {-64, 1}, {100, 2}, {3 * 64, 2}, {64 * 12, 4}, // 3 sets: not power of two
	}
	for _, c := range cases {
		if _, err := NewCache("t", c.size, c.ways); err == nil {
			t.Errorf("NewCache(%d, %d) should fail", c.size, c.ways)
		}
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := MustCache("t", 4096, 2)
	if c.Access(0x1000, false) {
		t.Fatal("first access should miss")
	}
	if !c.Access(0x1000, false) {
		t.Fatal("second access should hit")
	}
	if !c.Access(0x103F, false) {
		t.Fatal("same-line access should hit")
	}
	if c.Stats.Accesses != 3 || c.Stats.Misses != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache, 64B lines: lines that map to the same set are
	// setCount*64 bytes apart.
	c := MustCache("t", 2*64*4, 2) // 4 sets, 2 ways
	stride := uint64(4 * 64)
	a, b, d := stride*0, stride*10, stride*20 // same set
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU, b is LRU
	c.Access(d, false) // evicts b
	if !c.Probe(a) {
		t.Fatal("a should survive (MRU)")
	}
	if c.Probe(b) {
		t.Fatal("b should have been evicted (LRU)")
	}
	if !c.Probe(d) {
		t.Fatal("d should be resident")
	}
}

func TestCacheProbeDoesNotTouch(t *testing.T) {
	c := MustCache("t", 2*64*1, 2) // 1 set, 2 ways
	c.Access(0, false)
	c.Access(64*1, false) // different set? no: 1 set → same set
	// order: [64, 0]; probing 0 must not move it to MRU
	c.Probe(0)
	c.Access(128, false) // evicts LRU = 0
	if c.Probe(0) {
		t.Fatal("probe must not refresh recency")
	}
	if !c.Probe(64) {
		t.Fatal("64 should survive")
	}
	before := c.Stats
	c.Probe(0xdead)
	if c.Stats != before {
		t.Fatal("probe must not change stats")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := MustCache("t", 2*64, 2) // 1 set, 2 ways
	c.Access(0, true)            // dirty
	c.Access(64, false)
	if d := c.Install(128, false); !d {
		t.Fatal("evicting dirty line should report it")
	}
	if c.Stats.DirtyEvictions != 1 {
		t.Fatalf("DirtyEvictions = %d", c.Stats.DirtyEvictions)
	}
}

func TestCacheInstallIdempotent(t *testing.T) {
	c := MustCache("t", 4096, 4)
	c.Install(0x40, false)
	c.Install(0x40, false)
	n := 0
	for _, l := range c.Lines() {
		if l == 0x40 {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("line duplicated %d times", n)
	}
}

func TestCachePrefetchUsefulness(t *testing.T) {
	c := MustCache("t", 4096, 4)
	c.Install(0x80, true)
	if c.Stats.PrefetchInstalls != 1 {
		t.Fatalf("PrefetchInstalls = %d", c.Stats.PrefetchInstalls)
	}
	c.Access(0x80, false)
	c.Access(0x80, false)
	if c.Stats.PrefetchUseful != 1 {
		t.Fatalf("PrefetchUseful = %d, want 1 (counted once)", c.Stats.PrefetchUseful)
	}
}

func TestCacheMarkDirtyAndClear(t *testing.T) {
	c := MustCache("t", 4096, 4)
	c.Install(0x100, false)
	c.MarkDirty(0x100)
	c.MarkDirty(0x9999) // not resident: no-op
	c.Clear()
	if c.Probe(0x100) {
		t.Fatal("Clear left lines resident")
	}
	if c.Access(0x100, false) {
		t.Fatal("access after Clear should miss")
	}
}

func TestCacheLinesRoundTrip(t *testing.T) {
	c := MustCache("t", 8192, 4)
	want := map[uint64]bool{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		addr := uint64(r.Intn(1 << 20))
		c.Access(addr, false)
		want[trace.Line(addr)] = true
	}
	got := c.Lines()
	for _, l := range got {
		if !want[l] {
			t.Fatalf("Lines returned %#x, never accessed", l)
		}
		if !c.Probe(l) {
			t.Fatalf("Lines returned %#x but Probe misses", l)
		}
	}
}

func TestCacheNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		c := MustCache("t", 2048, 2) // 32 lines
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			c.Access(uint64(r.Intn(1<<18)), r.Intn(2) == 0)
		}
		return len(c.Lines()) <= 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheInclusionAfterAccess(t *testing.T) {
	// Any freshly accessed line must be resident immediately afterwards.
	f := func(seed int64) bool {
		c := MustCache("t", 1024, 2)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			addr := uint64(r.Intn(1 << 16))
			c.Access(addr, false)
			if !c.Probe(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := DefaultHierarchy()
	lvl, lat := h.FetchI(0x4000_0000)
	if lvl != LevelMem || lat != h.Lat.Mem {
		t.Fatalf("cold fetch: %v %d", lvl, lat)
	}
	lvl, lat = h.FetchI(0x4000_0000)
	if lvl != LevelL1 || lat != 0 {
		t.Fatalf("warm fetch: %v %d", lvl, lat)
	}
	// Evict from L1 but not L2: next fetch is an L2 hit.
	h.L1I.Clear()
	lvl, lat = h.FetchI(0x4000_0000)
	if lvl != LevelL2 || lat != h.Lat.L2 {
		t.Fatalf("L2 fetch: %v %d", lvl, lat)
	}
}

func TestHierarchyDataPath(t *testing.T) {
	h := DefaultHierarchy()
	lvl, lat := h.AccessD(0x8000, true)
	if lvl != LevelMem || lat != h.Lat.Mem {
		t.Fatalf("cold access: %v %d", lvl, lat)
	}
	lvl, lat = h.AccessD(0x8000, false)
	if lvl != LevelL1 || lat != h.Lat.L1 {
		t.Fatalf("warm access: %v %d", lvl, lat)
	}
}

func TestHierarchyPerfectSwitches(t *testing.T) {
	h := DefaultHierarchy()
	h.PerfectL1I, h.PerfectL1D = true, true
	if lvl, lat := h.FetchI(0x123456); lvl != LevelL1 || lat != 0 {
		t.Fatal("perfect L1I should always hit")
	}
	if lvl, _ := h.AccessD(0x777777, false); lvl != LevelL1 {
		t.Fatal("perfect L1D should always hit")
	}
	if h.L1I.Stats.Accesses != 0 || h.L1D.Stats.Accesses != 0 {
		t.Fatal("perfect paths must bypass the real caches")
	}
}

func TestHierarchyPrefetchInstalls(t *testing.T) {
	h := DefaultHierarchy()
	h.PrefetchI(0x40)
	if lvl, _ := h.FetchI(0x40); lvl != LevelL1 {
		t.Fatal("PrefetchI should land in L1I")
	}
	h.PrefetchD(0x4000)
	if lvl, _ := h.AccessD(0x4000, false); lvl != LevelL1 {
		t.Fatal("PrefetchD should land in L1D")
	}
}

func TestHierarchyNearPrefetchTimeliness(t *testing.T) {
	h := DefaultHierarchy()
	h.NearTimelyPct = 100
	// Cold line: near prefetch may only land in L2.
	h.PrefetchINear(0x40)
	if h.L1I.Probe(0x40) {
		t.Fatal("near prefetch of a memory-resident line must not reach L1")
	}
	if !h.L2.Probe(0x40) {
		t.Fatal("near prefetch should land in L2")
	}
	// Now L2-resident and always timely: reaches L1.
	h.PrefetchINear(0x40)
	if !h.L1I.Probe(0x40) {
		t.Fatal("timely near prefetch of an L2-resident line should reach L1")
	}
	h.NearTimelyPct = 0
	h.PrefetchDNear(0x4000)
	h.PrefetchDNear(0x4000)
	if h.L1D.Probe(0x4000) {
		t.Fatal("with 0%% timeliness nothing reaches L1D")
	}
}

func TestFillLatency(t *testing.T) {
	h := DefaultHierarchy()
	if lat, llc := h.FillLatency(0x40); !llc || lat != h.Lat.Mem {
		t.Fatalf("cold fill: %d %v", lat, llc)
	}
	h.L2.Install(0x40, false)
	if lat, llc := h.FillLatency(0x40); llc || lat != h.Lat.L2 {
		t.Fatalf("L2 fill: %d %v", lat, llc)
	}
}

func TestWorkingSetUnique(t *testing.T) {
	w := NewWorkingSet()
	for i := 0; i < 10; i++ {
		w.Touch(uint64(i * 64))
	}
	if w.Unique() != 10 {
		t.Fatalf("Unique = %d", w.Unique())
	}
	if w.Reuses() != 0 {
		t.Fatalf("Reuses = %d", w.Reuses())
	}
}

func TestWorkingSetStackDistance(t *testing.T) {
	w := NewWorkingSet()
	// Access pattern A B C A: A's reuse has stack distance 2 (B, C).
	w.Touch(0)
	w.Touch(64)
	w.Touch(128)
	w.Touch(0)
	if w.Reuses() != 1 {
		t.Fatalf("Reuses = %d", w.Reuses())
	}
	// Distance 2 hits in a 3-line cache.
	if got := w.LinesFor(1.0); got != 3 {
		t.Fatalf("LinesFor(1.0) = %d, want 3", got)
	}
}

func TestWorkingSetLoopCapture(t *testing.T) {
	// A loop over 8 lines repeated 100 times: a cache of 8 lines captures
	// all reuse.
	w := NewWorkingSet()
	for rep := 0; rep < 100; rep++ {
		for i := 0; i < 8; i++ {
			w.Touch(uint64(i * 64))
		}
	}
	if got := w.LinesFor(1.0); got != 8 {
		t.Fatalf("LinesFor(1.0) = %d, want 8", got)
	}
	if w.Unique() != 8 {
		t.Fatalf("Unique = %d", w.Unique())
	}
}

func TestWorkingSetPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		w := NewWorkingSet()
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			w.Touch(uint64(r.Intn(40)) * 64)
		}
		return w.LinesFor(0.75) <= w.LinesFor(0.85) &&
			w.LinesFor(0.85) <= w.LinesFor(0.95) &&
			w.LinesFor(0.95) <= w.Unique()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetMatchesLRUSimulation(t *testing.T) {
	// Cross-validate stack distances against a real LRU cache: a fully
	// associative cache of K lines must hit exactly the reuses with
	// distance < K.
	r := rand.New(rand.NewSource(99))
	addrs := make([]uint64, 500)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(24)) * 64
	}
	const k = 8
	w := NewWorkingSet()
	lru := []uint64{}
	hits := 0
	for _, a := range addrs {
		// LRU simulation.
		found := -1
		for i, l := range lru {
			if l == a {
				found = i
				break
			}
		}
		if found >= 0 {
			lru = append(lru[:found], lru[found+1:]...)
			hits++
		} else if len(lru) == k {
			lru = lru[1:]
		}
		lru = append(lru, a)
		w.Touch(a)
	}
	// Count reuses with stack distance < k via LinesFor brute force.
	captured := 0
	for _, d := range w.dists {
		if d < k {
			captured++
		}
	}
	if captured != hits {
		t.Fatalf("stack-distance model says %d hits at %d lines, LRU simulation says %d", captured, k, hits)
	}
}
