package mem

import (
	"sort"

	"espsim/internal/trace"
)

// WorkingSet measures the reuse behaviour of an access stream with exact
// LRU stack distances, using a Fenwick tree over access timestamps. It
// answers the Figure 13 question: how many cache lines must a (fully
// associative) cachelet hold to capture a given fraction of reuse?
type WorkingSet struct {
	lastPos map[uint64]int
	bit     []int64 // Fenwick tree over positions; 1 marks a line's last access
	time    int
	dists   []int // stack distance of every reuse (distinct lines in between)
}

// NewWorkingSet returns an empty profiler.
func NewWorkingSet() *WorkingSet {
	return &WorkingSet{lastPos: make(map[uint64]int), bit: make([]int64, 1)}
}

// Touch records an access to addr's line.
func (w *WorkingSet) Touch(addr uint64) {
	l := trace.Line(addr)
	w.time++
	w.grow(w.time)
	if p, ok := w.lastPos[l]; ok {
		// Distinct lines touched strictly between p and now.
		d := int(w.sum(w.time-1) - w.sum(p))
		w.dists = append(w.dists, d)
		w.add(p, -1)
	}
	w.lastPos[l] = w.time
	w.add(w.time, 1)
}

// Unique returns the number of distinct lines touched (the max working
// set).
func (w *WorkingSet) Unique() int { return len(w.lastPos) }

// Reuses returns the number of accesses that were reuses.
func (w *WorkingSet) Reuses() int { return len(w.dists) }

// LinesFor returns the smallest fully-associative capacity, in lines,
// that would have captured at least frac of all reuse (0 < frac <= 1).
// With no reuse it returns 0.
func (w *WorkingSet) LinesFor(frac float64) int {
	if len(w.dists) == 0 {
		return 0
	}
	ds := make([]int, len(w.dists))
	copy(ds, w.dists)
	sort.Ints(ds)
	idx := int(frac*float64(len(ds))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	// A stack distance of d hits in a cache of d+1 lines.
	return ds[idx] + 1
}

// grow resizes the Fenwick tree to cover position n. Entries added while
// the tree was smaller would have stopped propagating at the old
// boundary, so the tree is rebuilt from the live markers (one per line's
// last access).
func (w *WorkingSet) grow(n int) {
	if n < len(w.bit) {
		return
	}
	sz := len(w.bit)
	for sz <= n {
		sz *= 2
	}
	w.bit = make([]int64, sz)
	for _, p := range w.lastPos {
		w.add(p, 1)
	}
}

func (w *WorkingSet) add(i int, v int64) {
	for ; i < len(w.bit); i += i & -i {
		w.bit[i] += v
	}
}

func (w *WorkingSet) sum(i int) int64 {
	var s int64
	for ; i > 0; i -= i & -i {
		s += w.bit[i]
	}
	return s
}
