// Package mem models the memory hierarchy of the simulated core: generic
// set-associative LRU caches, the three-level hierarchy of Figure 7
// (32 KB L1-I, 32 KB L1-D, 2 MB L2, DRAM), prefetch installation, and a
// stack-distance working-set profiler used for the cachelet-sizing study
// (Figure 13).
package mem

import (
	"fmt"

	"espsim/internal/trace"
)

// CacheStats counts the demand traffic a cache observed.
type CacheStats struct {
	// Accesses and Misses count demand lookups (not prefetch installs).
	Accesses int64
	Misses   int64
	// PrefetchInstalls counts lines installed by a prefetcher;
	// PrefetchUseful counts those that saw a demand hit before eviction.
	PrefetchInstalls int64
	PrefetchUseful   int64
	// DirtyEvictions counts evicted lines with the dirty bit set.
	DirtyEvictions int64
}

// MissRate returns Misses/Accesses (0 when idle).
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// invalidTag marks an empty way. It is unreachable by construction: a
// real tag is addr>>6>>setShift <= 2^58, so it can never equal all-ones.
// Using a sentinel tag instead of a per-set occupancy array keeps the
// lookup loop free of a second dependent load — it compares tags only.
const invalidTag = ^uint64(0)

// Per-line state bits, kept in a byte array parallel to the tags.
const (
	flagDirty      = 1 << 0
	flagPrefetched = 1 << 1
)

// Cache is a set-associative, true-LRU cache. Within each set, ways are
// kept in recency order (offset 0 = MRU), which is exact LRU for the small
// associativities modelled here.
//
// Storage is structure-of-arrays twice over: way w of set s lives at
// index s*ways+w of two parallel arenas — an 8-byte tag and a 1-byte
// flag word — so construction is two allocations regardless of set
// count, a lookup scan touches 8 bytes per way (a 16-way set's tags fit
// in two cache lines), and flags are only loaded on the hit that needs
// them. There is no valid bit: a way is empty exactly when its tag is
// invalidTag, and every set keeps its occupied ways as a prefix (MRU
// first) with sentinel ways as the suffix.
type Cache struct {
	name     string //esp:immutable
	setShift uint   //esp:immutable
	setMask  uint64 //esp:immutable
	ways     int    //esp:immutable
	nSets    int    //esp:immutable
	tags     []uint64
	flags    []uint8

	// Stats accumulates demand traffic. Reset with ResetStats.
	Stats CacheStats
}

// CheckGeometry validates a cache geometry without building it:
// sizeBytes must be a positive multiple of ways*64 with a power-of-two
// set count. Configuration validators use it to reject bad cachelet
// geometry before any simulation structure is constructed.
func CheckGeometry(name string, sizeBytes, ways int) error {
	if sizeBytes <= 0 || ways <= 0 || sizeBytes%(ways*trace.LineBytes) != 0 {
		return fmt.Errorf("mem: cache %q: size %d not divisible into %d ways of 64B lines", name, sizeBytes, ways)
	}
	if nSets := sizeBytes / (ways * trace.LineBytes); nSets&(nSets-1) != 0 {
		return fmt.Errorf("mem: cache %q: set count %d not a power of two", name, nSets)
	}
	return nil
}

// NewCache builds a cache of sizeBytes with the given associativity and
// 64-byte lines. sizeBytes must be a positive multiple of ways*64 with a
// power-of-two set count.
func NewCache(name string, sizeBytes, ways int) (*Cache, error) {
	if err := CheckGeometry(name, sizeBytes, ways); err != nil {
		return nil, err
	}
	nSets := sizeBytes / (ways * trace.LineBytes)
	setShift := uint(0)
	for 1<<setShift < nSets {
		setShift++
	}
	c := &Cache{
		name:     name,
		setShift: setShift,
		setMask:  uint64(nSets - 1),
		ways:     ways,
		nSets:    nSets,
		tags:     make([]uint64, nSets*ways),
		flags:    make([]uint8, nSets*ways),
	}
	fillInvalid(c.tags)
	return c, nil
}

// fillInvalid sets every tag to the sentinel by doubling copies: O(log n)
// memmoves instead of n stores (Go has no pattern memset).
func fillInvalid(tags []uint64) {
	if len(tags) == 0 {
		return
	}
	tags[0] = invalidTag
	for n := 1; n < len(tags); n *= 2 {
		copy(tags[n:], tags[:n])
	}
}

// MustCache is NewCache that panics on configuration errors. It is for
// compiled-in constants only (DefaultHierarchy's Figure 7 geometry and
// package tests): a panic here is an internal invariant violation, never
// a reaction to user input — user-supplied geometry must go through
// CheckGeometry/NewCache.
func MustCache(name string, sizeBytes, ways int) *Cache {
	c, err := NewCache(name, sizeBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// SizeBytes returns the capacity in bytes.
func (c *Cache) SizeBytes() int { return c.nSets * c.ways * trace.LineBytes }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) index(lineAddr uint64) (set uint64, tag uint64) {
	blk := lineAddr >> 6 // line number
	return blk & c.setMask, blk >> c.setShift
}

// Access performs a demand access to the line containing addr, installing
// it on a miss. It returns whether the access hit. The body handles only
// the plain MRU hit — no recency shuffle, no prefetch bookkeeping — and is
// kept minimal for call sites in the replay loop; every other case is
// outlined into accessSlow.
func (c *Cache) Access(addr uint64, write bool) bool {
	blk := addr >> 6
	i := int(blk&c.setMask) * c.ways
	if c.tags[i] == blk>>c.setShift && c.flags[i]&flagPrefetched == 0 {
		c.Stats.Accesses++
		if write {
			c.flags[i] |= flagDirty
		}
		return true
	}
	return c.accessSlow(addr, write)
}

// accessSlow is the non-MRU-hit remainder of Access: prefetched MRU hits,
// hits in lower recency positions, and misses.
func (c *Cache) accessSlow(addr uint64, write bool) bool {
	blk := addr >> 6
	set, tag := blk&c.setMask, blk>>c.setShift
	c.Stats.Accesses++
	base := int(set) * c.ways
	tags := c.tags[base : base+c.ways]
	flags := c.flags[base : base+c.ways]
	if tags[0] == tag {
		// MRU hit on a prefetched line (the only MRU case the fast path
		// rejects): account its usefulness and clear the mark.
		c.Stats.PrefetchUseful++
		flags[0] &^= flagPrefetched
		if write {
			flags[0] |= flagDirty
		}
		return true
	}
	if c.ways == 2 {
		// Two-way sets (the L1s of Figure 7) need no loop: the only other
		// resident way is way 1, and hit or miss it swaps into MRU.
		if tags[1] == tag {
			f := flags[1]
			if f&flagPrefetched != 0 {
				c.Stats.PrefetchUseful++
				f &^= flagPrefetched
			}
			if write {
				f |= flagDirty
			}
			tags[1], flags[1] = tags[0], flags[0]
			tags[0], flags[0] = tag, f
			return true
		}
		c.Stats.Misses++
		if tags[1] != invalidTag && flags[1]&flagDirty != 0 {
			c.Stats.DirtyEvictions++
		}
		tags[1], flags[1] = tags[0], flags[0]
		var f uint8
		if write {
			f = flagDirty
		}
		tags[0], flags[0] = tag, f
		return false
	}
	for i := 1; i < len(tags); i++ {
		t := tags[i]
		if t == tag {
			f := flags[i]
			if f&flagPrefetched != 0 {
				c.Stats.PrefetchUseful++
				f &^= flagPrefetched
			}
			if write {
				f |= flagDirty
			}
			// Move way i to MRU position.
			copy(tags[1:i+1], tags[:i])
			copy(flags[1:i+1], flags[:i])
			tags[0], flags[0] = tag, f
			return true
		}
		if t == invalidTag {
			break
		}
	}
	c.Stats.Misses++
	c.install(set, tag, write, false)
	return false
}

// Probe reports whether the line containing addr is resident, without
// updating recency or statistics. Like Access, the MRU check comes
// first and the rest of the scan is outlined.
func (c *Cache) Probe(addr uint64) bool {
	blk := addr >> 6
	if c.tags[int(blk&c.setMask)*c.ways] == blk>>c.setShift {
		return true
	}
	return c.probeSlow(addr)
}

// probeSlow scans the non-MRU ways of addr's set.
func (c *Cache) probeSlow(addr uint64) bool {
	set, tag := c.index(trace.Line(addr))
	base := int(set) * c.ways
	tags := c.tags[base : base+c.ways]
	for i := 1; i < len(tags); i++ {
		if tags[i] == tag {
			return true
		}
		if tags[i] == invalidTag {
			break
		}
	}
	return false
}

// Install inserts the line containing addr (e.g. a fill from an inner
// miss or a prefetch). prefetch marks the line for usefulness accounting.
// It returns true if a dirty line was evicted to make room.
func (c *Cache) Install(addr uint64, prefetch bool) (evictedDirty bool) {
	set, tag := c.index(trace.Line(addr))
	base := int(set) * c.ways
	for _, t := range c.tags[base : base+c.ways] {
		if t == tag {
			return false // already resident
		}
		if t == invalidTag {
			break
		}
	}
	if prefetch {
		c.Stats.PrefetchInstalls++
	}
	return c.install(set, tag, false, prefetch)
}

func (c *Cache) install(set, tag uint64, dirty, prefetch bool) (evictedDirty bool) {
	base := int(set) * c.ways
	tags := c.tags[base : base+c.ways]
	flags := c.flags[base : base+c.ways]
	if lru := c.ways - 1; tags[lru] != invalidTag && flags[lru]&flagDirty != 0 {
		evictedDirty = true
		c.Stats.DirtyEvictions++
	}
	// Shift every way down one slot; a partially-filled set just shifts
	// some sentinel ways within its suffix, preserving the prefix layout.
	copy(tags[1:], tags[:c.ways-1])
	copy(flags[1:], flags[:c.ways-1])
	var f uint8
	if dirty {
		f |= flagDirty
	}
	if prefetch {
		f |= flagPrefetched
	}
	tags[0], flags[0] = tag, f
	return evictedDirty
}

// MarkDirty sets the dirty bit of addr's line if resident (used by
// cachelets, where stores must not propagate outward).
func (c *Cache) MarkDirty(addr uint64) {
	set, tag := c.index(trace.Line(addr))
	base := int(set) * c.ways
	for i, t := range c.tags[base : base+c.ways] {
		if t == tag {
			c.flags[base+i] |= flagDirty
			return
		}
		if t == invalidTag {
			return
		}
	}
}

// Lines returns the addresses of all resident lines (MRU first within
// each set). Used when promoting an ESP-2 cachelet's contents to ESP-1.
func (c *Cache) Lines() []uint64 { return c.AppendLines(nil) }

// AppendLines appends the addresses of all resident lines to buf and
// returns the extended slice, letting hot callers reuse a scratch buffer.
func (c *Cache) AppendLines(buf []uint64) []uint64 {
	for s := 0; s < c.nSets; s++ {
		base := s * c.ways
		for _, t := range c.tags[base : base+c.ways] {
			if t == invalidTag {
				break
			}
			buf = append(buf, (t<<c.setShift|uint64(s))<<6)
		}
	}
	return buf
}

// Clear invalidates every line (statistics are preserved). Both arenas
// are scrubbed so no stale tag or flag survives a pool recycle.
func (c *Cache) Clear() {
	fillInvalid(c.tags)
	for i := range c.flags {
		c.flags[i] = 0
	}
}

// ResetStats zeroes the statistics counters.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }

// Reset restores the cache to its just-constructed cold state — every
// line invalid, statistics zeroed — without reallocating the arenas.
// A reset cache is behaviourally indistinguishable from a fresh NewCache
// of the same geometry.
func (c *Cache) Reset() {
	c.Clear()
	c.ResetStats()
}
