// Package mem models the memory hierarchy of the simulated core: generic
// set-associative LRU caches, the three-level hierarchy of Figure 7
// (32 KB L1-I, 32 KB L1-D, 2 MB L2, DRAM), prefetch installation, and a
// stack-distance working-set profiler used for the cachelet-sizing study
// (Figure 13).
package mem

import (
	"fmt"

	"espsim/internal/trace"
)

// CacheStats counts the demand traffic a cache observed.
type CacheStats struct {
	// Accesses and Misses count demand lookups (not prefetch installs).
	Accesses int64
	Misses   int64
	// PrefetchInstalls counts lines installed by a prefetcher;
	// PrefetchUseful counts those that saw a demand hit before eviction.
	PrefetchInstalls int64
	PrefetchUseful   int64
	// DirtyEvictions counts evicted lines with the dirty bit set.
	DirtyEvictions int64
}

// MissRate returns Misses/Accesses (0 when idle).
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool
}

// Cache is a set-associative, true-LRU cache. Within each set, ways are
// kept in recency order (index 0 = MRU), which is exact LRU for the small
// associativities modelled here.
type Cache struct {
	name     string //esp:immutable
	setShift uint   //esp:immutable
	setMask  uint64 //esp:immutable
	ways     int    //esp:immutable
	sets     [][]line

	// Stats accumulates demand traffic. Reset with ResetStats.
	Stats CacheStats
}

// CheckGeometry validates a cache geometry without building it:
// sizeBytes must be a positive multiple of ways*64 with a power-of-two
// set count. Configuration validators use it to reject bad cachelet
// geometry before any simulation structure is constructed.
func CheckGeometry(name string, sizeBytes, ways int) error {
	if sizeBytes <= 0 || ways <= 0 || sizeBytes%(ways*trace.LineBytes) != 0 {
		return fmt.Errorf("mem: cache %q: size %d not divisible into %d ways of 64B lines", name, sizeBytes, ways)
	}
	if nSets := sizeBytes / (ways * trace.LineBytes); nSets&(nSets-1) != 0 {
		return fmt.Errorf("mem: cache %q: set count %d not a power of two", name, nSets)
	}
	return nil
}

// NewCache builds a cache of sizeBytes with the given associativity and
// 64-byte lines. sizeBytes must be a positive multiple of ways*64 with a
// power-of-two set count.
func NewCache(name string, sizeBytes, ways int) (*Cache, error) {
	if err := CheckGeometry(name, sizeBytes, ways); err != nil {
		return nil, err
	}
	nSets := sizeBytes / (ways * trace.LineBytes)
	setShift := uint(0)
	for 1<<setShift < nSets {
		setShift++
	}
	c := &Cache{
		name:     name,
		setShift: setShift,
		setMask:  uint64(nSets - 1),
		ways:     ways,
		sets:     make([][]line, nSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, 0, ways)
	}
	return c, nil
}

// MustCache is NewCache that panics on configuration errors. It is for
// compiled-in constants only (DefaultHierarchy's Figure 7 geometry and
// package tests): a panic here is an internal invariant violation, never
// a reaction to user input — user-supplied geometry must go through
// CheckGeometry/NewCache.
func MustCache(name string, sizeBytes, ways int) *Cache {
	c, err := NewCache(name, sizeBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// SizeBytes returns the capacity in bytes.
func (c *Cache) SizeBytes() int { return len(c.sets) * c.ways * trace.LineBytes }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) index(lineAddr uint64) (set uint64, tag uint64) {
	blk := lineAddr >> 6 // line number
	return blk & c.setMask, blk >> c.setShift
}

// Access performs a demand access to the line containing addr, installing
// it on a miss. It returns whether the access hit.
func (c *Cache) Access(addr uint64, write bool) bool {
	set, tag := c.index(trace.Line(addr))
	c.Stats.Accesses++
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			if ws[i].prefetched {
				c.Stats.PrefetchUseful++
				ws[i].prefetched = false
			}
			if write {
				ws[i].dirty = true
			}
			c.touch(set, i)
			return true
		}
	}
	c.Stats.Misses++
	c.install(set, tag, write, false)
	return false
}

// Probe reports whether the line containing addr is resident, without
// updating recency or statistics.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(trace.Line(addr))
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Install inserts the line containing addr (e.g. a fill from an inner
// miss or a prefetch). prefetch marks the line for usefulness accounting.
// It returns true if a dirty line was evicted to make room.
func (c *Cache) Install(addr uint64, prefetch bool) (evictedDirty bool) {
	set, tag := c.index(trace.Line(addr))
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			return false // already resident
		}
	}
	if prefetch {
		c.Stats.PrefetchInstalls++
	}
	return c.install(set, tag, false, prefetch)
}

func (c *Cache) install(set, tag uint64, dirty, prefetch bool) (evictedDirty bool) {
	ws := c.sets[set]
	if len(ws) < c.ways {
		ws = append(ws, line{})
		c.sets[set] = ws
	} else if ws[len(ws)-1].dirty {
		evictedDirty = true
		c.Stats.DirtyEvictions++
	}
	copy(ws[1:], ws[:len(ws)-1])
	ws[0] = line{tag: tag, valid: true, dirty: dirty, prefetched: prefetch}
	return evictedDirty
}

// touch moves way i of set to MRU position.
func (c *Cache) touch(set uint64, i int) {
	ws := c.sets[set]
	w := ws[i]
	copy(ws[1:i+1], ws[:i])
	ws[0] = w
}

// MarkDirty sets the dirty bit of addr's line if resident (used by
// cachelets, where stores must not propagate outward).
func (c *Cache) MarkDirty(addr uint64) {
	set, tag := c.index(trace.Line(addr))
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			ws[i].dirty = true
			return
		}
	}
}

// Lines returns the addresses of all resident lines (MRU first within
// each set). Used when promoting an ESP-2 cachelet's contents to ESP-1.
func (c *Cache) Lines() []uint64 { return c.AppendLines(nil) }

// AppendLines appends the addresses of all resident lines to buf and
// returns the extended slice, letting hot callers reuse a scratch buffer.
func (c *Cache) AppendLines(buf []uint64) []uint64 {
	for s, ws := range c.sets {
		for _, w := range ws {
			if w.valid {
				buf = append(buf, (w.tag<<c.setShift|uint64(s))<<6)
			}
		}
	}
	return buf
}

// Clear invalidates every line (statistics are preserved).
func (c *Cache) Clear() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
}

// ResetStats zeroes the statistics counters.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }

// Reset restores the cache to its just-constructed cold state — every
// line invalid, statistics zeroed — without reallocating the set arrays.
// A reset cache is behaviourally indistinguishable from a fresh NewCache
// of the same geometry.
func (c *Cache) Reset() {
	c.Clear()
	c.ResetStats()
}
