package esp

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NamedFigure pairs a figure identifier with its generator, so sweeps
// can be composed from any subset of the standard figures (or custom
// ones).
type NamedFigure struct {
	ID  string
	Gen func(*Harness) (Figure, error)
}

// StandardFigures lists every paper figure the harness regenerates, in
// paper order.
func StandardFigures() []NamedFigure {
	return []NamedFigure{
		{"fig3", (*Harness).Fig3},
		{"fig6", (*Harness).Fig6},
		{"fig8", (*Harness).Fig8},
		{"fig9", (*Harness).Fig9},
		{"fig10", (*Harness).Fig10},
		{"fig11a", (*Harness).Fig11a},
		{"fig11b", (*Harness).Fig11b},
		{"fig12", (*Harness).Fig12},
		{"fig13", (*Harness).Fig13},
		{"fig14", (*Harness).Fig14},
		{"related", (*Harness).FigRelated},
	}
}

// Sweep is the outcome of RunAll: the figures that were produced, the
// ones that failed outright, and the individual simulation cells that
// degraded inside otherwise-healthy figures.
type Sweep struct {
	// Figures holds the successfully produced figures in request order
	// (a figure with some failed cells still counts as produced).
	Figures []Figure
	// Failed maps a figure ID to the error that prevented producing it.
	Failed map[string]error
	// Cells aggregates per-cell failures across all produced figures,
	// keyed "figureID/app/config".
	Cells map[string]error
	// Perf snapshots the engine's reuse and timing counters at the end
	// of the sweep: cells run, workloads and machines reused versus
	// rebuilt, and the wall-clock split between building and simulating.
	Perf Perf
}

// OK reports whether every requested figure was produced with no
// degraded cells.
func (s *Sweep) OK() bool { return len(s.Failed) == 0 && len(s.Cells) == 0 }

// Summary renders a human-readable account of the sweep: the engine
// performance counters, plus what was skipped when the sweep degraded.
// It is never empty — check OK() for health, not Summary(). Keys are
// sorted so the summary is deterministic.
func (s *Sweep) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %s\n", s.Perf)
	if sched := s.Perf.SchedString(); sched != "" {
		fmt.Fprintf(&b, "sched: %s\n", sched)
	}
	if len(s.Failed) > 0 {
		ids := make([]string, 0, len(s.Failed))
		for id := range s.Failed {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(&b, "%d figure(s) not produced:\n", len(ids))
		for _, id := range ids {
			fmt.Fprintf(&b, "  %s: %v\n", id, s.Failed[id])
		}
	}
	if len(s.Cells) > 0 {
		keys := make([]string, 0, len(s.Cells))
		for k := range s.Cells {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "%d cell(s) degraded (NaN in figure):\n", len(keys))
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s: %v\n", k, s.Cells[k])
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// RunAll produces the requested figures (all standard figures when figs
// is empty) concurrently with at most parallelism figure generators in
// flight (parallelism < 1 means 1). It is the fault-tolerant sweep
// entry point: a figure that fails — even by panicking — is recorded in
// Sweep.Failed and does not stop the others, and cells that degraded
// inside produced figures are aggregated into Sweep.Cells. The
// underlying simulations are memoized and deduplicated across
// concurrent figures by Harness.Run.
func (h *Harness) RunAll(parallelism int, figs ...NamedFigure) *Sweep {
	if len(figs) == 0 {
		figs = StandardFigures()
	}
	if parallelism < 1 {
		parallelism = 1
	}
	type slot struct {
		fig Figure
		err error
	}
	results := make([]slot, len(figs))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, nf := range figs {
		wg.Add(1)
		go func(i int, nf NamedFigure) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					results[i].err = fmt.Errorf("esp: figure %s: panic: %v", nf.ID, r)
				}
			}()
			results[i].fig, results[i].err = nf.Gen(h)
		}(i, nf)
	}
	wg.Wait()

	sweep := &Sweep{Failed: make(map[string]error), Cells: make(map[string]error), Perf: h.Perf()}
	for i, nf := range figs {
		if results[i].err != nil {
			sweep.Failed[nf.ID] = results[i].err
			continue
		}
		fig := results[i].fig
		sweep.Figures = append(sweep.Figures, fig)
		for cell, err := range fig.CellErrors {
			sweep.Cells[fig.ID+"/"+cell] = err
		}
	}
	return sweep
}
