module espsim

go 1.22
