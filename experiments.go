package esp

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"espsim/internal/core"
	"espsim/internal/mem"
	"espsim/internal/sim"
	"espsim/internal/stats"
	"espsim/internal/trace"
	"espsim/internal/workload"
)

// Harness regenerates the paper's evaluation figures (DESIGN.md §4). Each
// FigN method returns a Figure holding a rendered table plus the raw
// series, and results are memoized across figures — Figure 9's ESP+NL run
// is Figure 11's and Figure 14's too.
//
// The harness is safe for concurrent use: figure methods may run in
// parallel (see RunAll) and concurrent requests for the same
// (profile, config) cell share one simulation.
type Harness struct {
	// Scale multiplies every profile's event count (1 = default scaled
	// sessions; cmd/espbench -scale exposes it).
	Scale float64
	// MaxEvents truncates sessions when positive (fast unit tests).
	MaxEvents int
	// Timeout bounds the wall-clock time of one simulation cell; a cell
	// exceeding it fails with an error instead of hanging the sweep.
	// Zero means no limit. The timed-out simulation goroutine cannot be
	// interrupted and is abandoned to finish in the background.
	Timeout time.Duration

	mu     sync.Mutex
	runner *sim.Runner
	cells  map[string]*harnessCell
}

// harnessCell memoizes one (profile, config) simulation. The sync.Once
// gives singleflight semantics: concurrent figure generators that need
// the same cell block on one computation instead of duplicating it.
type harnessCell struct {
	once sync.Once
	res  Result
	err  error
}

// NewHarness returns a harness at the default scale.
func NewHarness() *Harness {
	return &Harness{
		Scale:  1,
		runner: sim.NewRunner(),
		cells:  make(map[string]*harnessCell),
	}
}

// Perf returns the engine's reuse and timing counters: how many cells
// ran, how often workloads and machines were reused instead of rebuilt,
// and the wall-clock split between building and simulating.
func (h *Harness) Perf() Perf {
	h.mu.Lock()
	r := h.runner
	h.mu.Unlock()
	if r == nil {
		return Perf{}
	}
	return r.Perf()
}

// Suite returns the benchmark profiles at the harness scale.
func (h *Harness) Suite() []workload.Profile {
	ps := workload.Suite()
	if h.Scale != 1 {
		for i := range ps {
			ps[i] = ps[i].Scale(h.Scale)
		}
	}
	return ps
}

// Run simulates (memoized) one profile under one configuration. All
// failure modes — invalid configuration, session build errors, a panic
// escaping the simulator, exceeding h.Timeout — come back as errors;
// the error is memoized like a result, so a failing cell is reported
// consistently by every figure that needs it.
func (h *Harness) Run(prof workload.Profile, cfg Config) (Result, error) {
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = h.MaxEvents
	}
	key := fmt.Sprintf("%s/%s/%g/%d", prof.Name, cfg.Name, h.Scale, cfg.MaxEvents)
	h.mu.Lock()
	if h.cells == nil {
		h.cells = make(map[string]*harnessCell)
	}
	if h.runner == nil {
		h.runner = sim.NewRunner()
	}
	runner := h.runner
	cell, ok := h.cells[key]
	if !ok {
		cell = &harnessCell{}
		h.cells[key] = cell
	}
	h.mu.Unlock()
	cell.once.Do(func() {
		// The runner shares one materialized workload per
		// (profile, MaxEvents) across every configuration and resets a
		// pooled machine per configuration instead of rebuilding it; it
		// also contains panics and enforces the timeout (the timed-out
		// simulation goroutine cannot be interrupted and is abandoned to
		// finish in the background).
		cell.res, cell.err = runner.RunCell(key, prof, cfg, h.Timeout)
	})
	return cell.res, cell.err
}

// Figure is one regenerated paper figure: a rendered table plus the raw
// per-application series for programmatic checks.
type Figure struct {
	ID    string
	Title string
	// PaperNote states what the paper reports, for EXPERIMENTS.md.
	PaperNote string
	Apps      []string
	// Series maps a configuration label to per-application values in
	// Apps order; Summary holds the suite aggregate per label (the
	// paper's HMean bars). A cell whose simulation failed holds NaN and
	// is excluded from the aggregate.
	Series  map[string][]float64
	Summary map[string]float64
	// Order lists series labels in figure order.
	Order []string
	// CellErrors records failed (app, config) cells, keyed "app/config".
	// A figure with failed cells is still emitted: the healthy cells
	// stand, the failed ones are NaN-annotated here.
	CellErrors map[string]error
	Table      *stats.Table
}

// cellError annotates one failed (app, config) cell.
func (f *Figure) cellError(app, config string, err error) {
	if f.CellErrors == nil {
		f.CellErrors = make(map[string]error)
	}
	f.CellErrors[app+"/"+config] = err
}

// CellErrorKeys returns the failed-cell keys in sorted order (map
// iteration is randomized; summaries must be deterministic).
func (f *Figure) CellErrorKeys() []string {
	keys := make([]string, 0, len(f.CellErrors))
	for k := range f.CellErrors {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// hmeanValid aggregates the non-NaN values; NaN if none survived.
func hmeanValid(vals []float64) float64 {
	ok := vals[:0:0]
	for _, v := range vals {
		if !math.IsNaN(v) {
			ok = append(ok, v)
		}
	}
	if len(ok) == 0 {
		return math.NaN()
	}
	return stats.HarmonicMean(ok)
}

func appNames(ps []workload.Profile) []string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// improvementFigure runs base and each config per app and tabulates
// performance improvement (%) over base, with harmonic-mean summary.
// Failed cells degrade gracefully: they are NaN-annotated in the figure
// and excluded from the summary. An error is returned only when every
// cell failed (the figure would carry no information).
func (h *Harness) improvementFigure(id, title, note string, base Config, cfgs []Config) (Figure, error) {
	ps := h.Suite()
	fig := Figure{
		ID: id, Title: title, PaperNote: note,
		Apps:    appNames(ps),
		Series:  make(map[string][]float64),
		Summary: make(map[string]float64),
	}
	var firstErr error
	cells := 0
	for _, cfg := range cfgs {
		fig.Order = append(fig.Order, cfg.Name)
		var speedups []float64
		for _, p := range ps {
			cells++
			b, errB := h.Run(p, base)
			r, errR := h.Run(p, cfg)
			if err := firstOf(errB, errR); err != nil {
				fig.cellError(p.Name, cfg.Name, err)
				if firstErr == nil {
					firstErr = err
				}
				fig.Series[cfg.Name] = append(fig.Series[cfg.Name], math.NaN())
				speedups = append(speedups, math.NaN())
				continue
			}
			sp := r.Speedup(b)
			speedups = append(speedups, sp)
			fig.Series[cfg.Name] = append(fig.Series[cfg.Name], stats.Improvement(sp))
		}
		fig.Summary[cfg.Name] = stats.Improvement(hmeanValid(speedups))
	}
	if len(fig.CellErrors) == cells && cells > 0 {
		return fig, fmt.Errorf("esp: figure %s: every cell failed: %w", id, firstErr)
	}
	fig.Table = seriesTable(title+" — performance improvement (%) over "+base.Name, &fig, "%.1f")
	return fig, nil
}

func firstOf(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// metricFigure tabulates a per-result metric for each config and app,
// with the same graceful cell degradation as improvementFigure.
func (h *Harness) metricFigure(id, title, note string, cfgs []Config, metric func(Result) float64, format string) (Figure, error) {
	ps := h.Suite()
	fig := Figure{
		ID: id, Title: title, PaperNote: note,
		Apps:    appNames(ps),
		Series:  make(map[string][]float64),
		Summary: make(map[string]float64),
	}
	var firstErr error
	cells := 0
	for _, cfg := range cfgs {
		fig.Order = append(fig.Order, cfg.Name)
		var vals []float64
		for _, p := range ps {
			cells++
			r, err := h.Run(p, cfg)
			if err != nil {
				fig.cellError(p.Name, cfg.Name, err)
				if firstErr == nil {
					firstErr = err
				}
				vals = append(vals, math.NaN())
				fig.Series[cfg.Name] = append(fig.Series[cfg.Name], math.NaN())
				continue
			}
			v := metric(r)
			vals = append(vals, v)
			fig.Series[cfg.Name] = append(fig.Series[cfg.Name], v)
		}
		fig.Summary[cfg.Name] = hmeanValid(vals)
	}
	if len(fig.CellErrors) == cells && cells > 0 {
		return fig, fmt.Errorf("esp: figure %s: every cell failed: %w", id, firstErr)
	}
	fig.Table = seriesTable(title, &fig, format)
	return fig, nil
}

func seriesTable(title string, fig *Figure, format string) *stats.Table {
	t := stats.NewTable(title, append([]string{"config"}, append(fig.Apps, "HMean")...)...)
	for _, name := range fig.Order {
		row := append(fig.Series[name], fig.Summary[name])
		t.AddF(name, format, row...)
	}
	return t
}

// Fig3 regenerates Figure 3: performance potential with perfect
// structures, over the NL+S baseline machine.
func (h *Harness) Fig3() (Figure, error) {
	return h.improvementFigure("fig3",
		"Figure 3: performance potential in web applications",
		"Paper: perfect-all nearly doubles performance; perfect L1-I is the largest single factor.",
		NLSConfig(),
		[]Config{PerfectL1DConfig(), PerfectBPConfig(), PerfectL1IConfig(), PerfectAllConfig()})
}

// Fig6 regenerates Figure 6: the benchmark table (paper sessions and the
// scaled sessions simulated here).
func (h *Harness) Fig6() (Figure, error) {
	ps := h.Suite()
	fig := Figure{
		ID:        "fig6",
		Title:     "Figure 6: benchmark web applications",
		PaperNote: "Paper sessions: 465–13,409 events, 26M–2,722M instructions; simulated sessions preserve per-app ratios at reduced scale.",
		Apps:      appNames(ps),
	}
	t := stats.NewTable(fig.Title,
		"app", "actions performed", "paper events", "paper Minsts", "sim events", "sim insts", "insts/event")
	for _, p := range ps {
		sess, err := workload.NewSession(p)
		if err != nil {
			return fig, fmt.Errorf("esp: figure fig6: building session %s: %w", p.Name, err)
		}
		total := sess.TotalInsts()
		actions := p.Actions
		if len(actions) > 44 {
			actions = actions[:41] + "..."
		}
		t.Add(p.Name,
			actions,
			fmt.Sprintf("%d", p.PaperEvents),
			fmt.Sprintf("%.0f", float64(p.PaperInsts)/1e6),
			fmt.Sprintf("%d", len(sess.Events)),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", total/int64(len(sess.Events))))
	}
	fig.Table = t
	return fig, nil
}

// Fig8 regenerates Figure 8: ESP's hardware budget.
func (h *Harness) Fig8() (Figure, error) {
	rows := core.HardwareBudget(core.DefaultSizes())
	fig := Figure{
		ID:        "fig8",
		Title:     "Figure 8: ESP hardware configuration",
		PaperNote: "Paper: 12.6 KB for ESP-1, 1.2 KB for ESP-2 (13.8 KB total).",
	}
	t := stats.NewTable(fig.Title, "structure", "description", "ESP-1", "ESP-2")
	for _, r := range rows {
		t.Add(r.Structure, r.Description,
			fmt.Sprintf("%d B", r.ESP1Bytes), fmt.Sprintf("%d B", r.ESP2Bytes))
	}
	t.Add("All HW additions", "",
		fmt.Sprintf("%.1f KB", float64(core.BudgetTotal(rows, 0))/1024),
		fmt.Sprintf("%.1f KB", float64(core.BudgetTotal(rows, 1))/1024))
	fig.Table = t
	return fig, nil
}

// Fig9 regenerates Figure 9: ESP vs next-line vs runahead, normalized to
// the no-prefetching baseline.
func (h *Harness) Fig9() (Figure, error) {
	return h.improvementFigure("fig9",
		"Figure 9: performance of ESP, next-line and runahead",
		"Paper HMeans: NL 13.8%, NL+S ~13.9%, Runahead 12%, Runahead+NL 21%, ESP+NL 32% (16% over NL+S).",
		BaselineConfig(),
		[]Config{NLConfig(), NLSConfig(), RunaheadConfig(), RunaheadNLConfig(), ESPConfig(), ESPNLConfig()})
}

// Fig10 regenerates Figure 10: sources of performance in ESP.
func (h *Harness) Fig10() (Figure, error) {
	return h.improvementFigure("fig10",
		"Figure 10: sources of performance in ESP",
		"Paper: naive ESP gains almost nothing (hurts pixlr); I-lists add 9.1% over NL, B-lists 6%, D-lists 3.3%.",
		BaselineConfig(),
		[]Config{NaiveESPConfig(), NaiveESPNLConfig(), ESPIOnlyNLConfig(), ESPIBNLConfig(), ESPIBDNLConfig()})
}

// Fig11a regenerates Figure 11a: L1 I-cache MPKI.
func (h *Harness) Fig11a() (Figure, error) {
	return h.metricFigure("fig11a",
		"Figure 11a: L1-I cache misses per kilo-instruction",
		"Paper: base ~23.5, NL ~17.5, ESP-I+NL-I ~11.6, close to ideal.",
		[]Config{BaselineConfig(), NLIOnlyConfig(), ESPIOnlyConfig(), ESPIOnlyNLIConfig(), IdealESPINLIConfig()},
		func(r Result) float64 { return r.IMPKI }, "%.1f")
}

// Fig11b regenerates Figure 11b: L1 D-cache miss rate (%).
func (h *Harness) Fig11b() (Figure, error) {
	return h.metricFigure("fig11b",
		"Figure 11b: L1-D cache miss rate (%)",
		"Paper: base 4.4%, ESP-D+NL-D 1.8%, Runahead-D+NL-D 0.8%, ideal ESP-D comparable to runahead.",
		[]Config{BaselineConfig(), NLDOnlyConfig(), RunaheadDConfig(), RunaheadDNLDConfig(),
			ESPDOnlyConfig(), ESPDOnlyNLDConfig(), IdealESPDNLDConfig()},
		func(r Result) float64 { return r.DMissRate * 100 }, "%.2f")
}

// Fig12 regenerates Figure 12: branch misprediction rate (%) across the
// predictor design points.
func (h *Harness) Fig12() (Figure, error) {
	return h.metricFigure("fig12",
		"Figure 12: branch misprediction rate (%)",
		"Paper: base 9.9%, naive sharing ~base, replicated tables 7.4%, separate PIR + B-list (ESP) 6.1%.",
		[]Config{NLSConfig(), ESPBPNoExtraHWConfig(), ESPBPSeparateContextConfig(),
			ESPBPReplicatedConfig(), ESPBPFullConfig()},
		func(r Result) float64 { return r.MispredictRate * 100 }, "%.2f")
}

// Fig13 regenerates Figure 13: pre-execution working-set sizes per ESP
// mode, aggregated across the suite, plus the normal-mode working set.
// An application whose instrumented run fails is skipped from the
// aggregate and annotated; the figure is produced from the rest.
func (h *Harness) Fig13() (Figure, error) {
	ps := h.Suite()
	study := core.NewWorkingSetStudy(8)
	fig := Figure{
		ID:        "fig13",
		Title:     "Figure 13: I-cachelet working sets (cache lines)",
		PaperNote: "Paper: 95%-reuse sizing gives ~5.5 KB (88 lines) for ESP-1 and ~0.5 KB (8 lines) for ESP-2; modes beyond ESP-2 see almost no use; normal events are an order of magnitude larger.",
		Series:    make(map[string][]float64),
		Summary:   make(map[string]float64),
	}
	merged := 0
	var firstErr error
	for _, p := range ps {
		r, err := h.Run(p, WorkingSetStudyConfig())
		if err != nil {
			fig.cellError(p.Name, WorkingSetStudyConfig().Name, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		study.Merge(r.Study)
		merged++
	}
	if merged == 0 {
		return fig, fmt.Errorf("esp: figure fig13: every instrumented run failed: %w", firstErr)
	}
	normalMax, normal95, err := h.normalWorkingSet(ps)
	if err != nil {
		return fig, fmt.Errorf("esp: figure fig13: %w", err)
	}

	t := stats.NewTable(fig.Title, "mode", "events", "max lines", "95% reuse", "85% reuse", "75% reuse")
	t.Add("Normal", "-", fmt.Sprintf("%d", normalMax), fmt.Sprintf("%d", normal95), "-", "-")
	fig.Series["normal-max"] = []float64{float64(normalMax)}
	for _, m := range study.ReportI() {
		t.Add(fmt.Sprintf("ESP%d", m.Mode),
			fmt.Sprintf("%d", m.Events),
			fmt.Sprintf("%d", m.MaxLines),
			fmt.Sprintf("%d", m.Lines95),
			fmt.Sprintf("%d", m.Lines85),
			fmt.Sprintf("%d", m.Lines75))
		key := fmt.Sprintf("ESP%d", m.Mode)
		fig.Order = append(fig.Order, key)
		fig.Series[key] = []float64{float64(m.MaxLines), float64(m.Lines95), float64(m.Lines85), float64(m.Lines75)}
		fig.Summary[key] = float64(m.Lines95)
	}
	fig.Table = t
	return fig, nil
}

// normalWorkingSet profiles the instruction working sets of events
// executing normally (the "Normal" bar of Figure 13). It samples a bounded
// number of events per application.
func (h *Harness) normalWorkingSet(ps []workload.Profile) (maxLines, lines95 int, err error) {
	const perApp = 24
	var all95 []float64
	for _, p := range ps {
		sess, err := workload.NewSession(p)
		if err != nil {
			return 0, 0, fmt.Errorf("building session %s: %w", p.Name, err)
		}
		n := len(sess.Events)
		if n > perApp {
			n = perApp
		}
		for i := 0; i < n; i++ {
			ws := mem.NewWorkingSet()
			s := sess.Gen.Stream(sess.Events[i], false)
			last := uint64(0)
			for {
				in, ok := s.Next()
				if !ok {
					break
				}
				if l := trace.Line(in.PC); l != last {
					ws.Touch(in.PC)
					last = l
				}
			}
			if u := ws.Unique(); u > maxLines {
				maxLines = u
			}
			all95 = append(all95, float64(ws.LinesFor(0.95)))
		}
	}
	return maxLines, int(stats.Percentile(all95, 0.95)), nil
}

// Fig14 regenerates Figure 14: energy of ESP+NL relative to NL, with the
// paper's three-part breakdown and extra-instruction annotations.
func (h *Harness) Fig14() (Figure, error) {
	ps := h.Suite()
	fig := Figure{
		ID:        "fig14",
		Title:     "Figure 14: energy relative to NL",
		PaperNote: "Paper: ESP costs ~8% more energy, executing 21.2% more instructions on average.",
		Apps:      appNames(ps),
		Series:    make(map[string][]float64),
		Summary:   make(map[string]float64),
		Order:     []string{"relative-energy", "extra-inst%"},
	}
	t := stats.NewTable(fig.Title,
		"app", "NL", "ESP+NL", "mispredict", "static", "dynamic", "extra insts %")
	var rels, extras []float64
	var firstErr error
	for _, p := range ps {
		nl, errNL := h.Run(p, NLConfig())
		e, errE := h.Run(p, ESPNLConfig())
		if err := firstOf(errNL, errE); err != nil {
			fig.cellError(p.Name, ESPNLConfig().Name, err)
			if firstErr == nil {
				firstErr = err
			}
			fig.Series["relative-energy"] = append(fig.Series["relative-energy"], math.NaN())
			fig.Series["extra-inst%"] = append(fig.Series["extra-inst%"], math.NaN())
			t.Add(p.Name, "1.00", "error", "-", "-", "-", "-")
			continue
		}
		rel := e.Energy.RelativeTo(nl.Energy)
		rels = append(rels, rel.Total())
		extras = append(extras, e.ExtraInstPct)
		fig.Series["relative-energy"] = append(fig.Series["relative-energy"], rel.Total())
		fig.Series["extra-inst%"] = append(fig.Series["extra-inst%"], e.ExtraInstPct)
		t.Add(p.Name, "1.00",
			fmt.Sprintf("%.2f", rel.Total()),
			fmt.Sprintf("%.2f", rel.Mispredict),
			fmt.Sprintf("%.2f", rel.Static),
			fmt.Sprintf("%.2f", rel.Dynamic),
			fmt.Sprintf("%.1f", e.ExtraInstPct))
	}
	if len(rels) == 0 {
		return fig, fmt.Errorf("esp: figure fig14: every cell failed: %w", firstErr)
	}
	fig.Summary["relative-energy"] = stats.Mean(rels)
	fig.Summary["extra-inst%"] = stats.Mean(extras)
	t.Add("Mean", "1.00",
		fmt.Sprintf("%.2f", fig.Summary["relative-energy"]), "", "", "",
		fmt.Sprintf("%.1f", fig.Summary["extra-inst%"]))
	fig.Table = t
	return fig, nil
}

// FigRelated regenerates the §7 related-work comparison: ESP against the
// event-aware instruction prefetchers EFetch and PIF, with their hardware
// budgets. The paper reports ESP attaining 6% more performance than
// EFetch at 3× less hardware and 10% more than PIF at 15× less.
func (h *Harness) FigRelated() (Figure, error) {
	fig, err := h.improvementFigure("related",
		"Section 7: ESP vs event-aware instruction prefetchers",
		"Paper: ESP beats EFetch by 6% with 3x less hardware, and PIF by 10% with 15x less; §7 also argues an idle helper core could do ESP's job but costs a core plus live-in/list transfer overheads.",
		BaselineConfig(),
		[]Config{NLIOnlyConfig(), EFetchConfig(), PIFConfig(), IdleCoreConfig(), ESPConfig(), ESPNLConfig()})
	if err != nil {
		return fig, err
	}
	budgets := map[string]string{
		"NL-I": "~0 KB", "EFetch": "~39 KB", "PIF": "~190 KB",
		"IdleCore": "a full core", "ESP": "13.8 KB", "ESP+NL": "13.8 KB",
	}
	t := stats.NewTable(fig.Title, "config", "HW budget", "improvement % over base (HMean)")
	for _, name := range fig.Order {
		t.Add(name, budgets[name], fmt.Sprintf("%.1f", fig.Summary[name]))
	}
	fig.Table = t
	return fig, nil
}

// Headline computes the abstract's summary metrics: ESP+NL speedup over
// the NL+S baseline (paper: 16%), I-MPKI (17.5 → 11.6), L1-D miss rate,
// and misprediction rate (9.9% → 6.1%).
func (h *Harness) Headline() (*stats.Table, error) {
	ps := h.Suite()
	var spESP, spRA []float64
	var mpkiNL, mpkiESP, dNL, dESP, bNL, bESP []float64
	for _, p := range ps {
		base, err := h.Run(p, NLSConfig())
		if err != nil {
			return nil, fmt.Errorf("esp: headline: %w", err)
		}
		e, err := h.Run(p, ESPNLConfig())
		if err != nil {
			return nil, fmt.Errorf("esp: headline: %w", err)
		}
		ra, err := h.Run(p, RunaheadNLConfig())
		if err != nil {
			return nil, fmt.Errorf("esp: headline: %w", err)
		}
		spESP = append(spESP, e.Speedup(base))
		spRA = append(spRA, ra.Speedup(base))
		mpkiNL = append(mpkiNL, base.IMPKI)
		mpkiESP = append(mpkiESP, e.IMPKI)
		dNL = append(dNL, base.DMissRate*100)
		dESP = append(dESP, e.DMissRate*100)
		bNL = append(bNL, base.MispredictRate*100)
		bESP = append(bESP, e.MispredictRate*100)
	}
	t := stats.NewTable("Headline (abstract) metrics", "metric", "paper", "measured")
	t.Add("ESP+NL speedup over NL+S (HMean %)", "16",
		fmt.Sprintf("%.1f", stats.Improvement(stats.HarmonicMean(spESP))))
	t.Add("Runahead+NL speedup over NL+S (HMean %)", "6.4",
		fmt.Sprintf("%.1f", stats.Improvement(stats.HarmonicMean(spRA))))
	t.Add("L1-I MPKI: NL+S -> ESP+NL", "17.5 -> 11.6",
		fmt.Sprintf("%.1f -> %.1f", stats.HarmonicMean(mpkiNL), stats.HarmonicMean(mpkiESP)))
	t.Add("L1-D miss rate %: NL+S -> ESP+NL", "3.2 -> 1.8",
		fmt.Sprintf("%.1f -> %.1f", stats.HarmonicMean(dNL), stats.HarmonicMean(dESP)))
	t.Add("Branch mispredict %: NL+S -> ESP+NL", "9.9 -> 6.1",
		fmt.Sprintf("%.1f -> %.1f", stats.HarmonicMean(bNL), stats.HarmonicMean(bESP)))
	return t, nil
}

// SeedStudy re-runs one application's headline comparison across
// perturbed workload seeds: the sessions are deterministic, so this is
// the robustness check that the measured speedups are properties of the
// workload's statistics rather than of one lucky seed.
func (h *Harness) SeedStudy(prof workload.Profile, n int) (*stats.Table, error) {
	if n < 1 {
		return nil, fmt.Errorf("esp: seed study needs at least one seed, got %d", n)
	}
	var imps []float64
	for k := 0; k < n; k++ {
		p := prof
		p.Seed = workload.Hash2(prof.Seed, uint64(k))
		p.Name = fmt.Sprintf("%s#%d", prof.Name, k)
		base, err := h.Run(p, NLSConfig())
		if err != nil {
			return nil, fmt.Errorf("esp: seed study: %w", err)
		}
		e, err := h.Run(p, ESPNLConfig())
		if err != nil {
			return nil, fmt.Errorf("esp: seed study: %w", err)
		}
		imps = append(imps, stats.Improvement(e.Speedup(base)))
	}
	min, max := imps[0], imps[0]
	for _, v := range imps {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	t := stats.NewTable(
		fmt.Sprintf("Seed robustness: ESP+NL over NL+S on %s (%d seeds)", prof.Name, n),
		"statistic", "improvement %")
	t.AddF("min", "%.1f", min)
	t.AddF("mean", "%.1f", stats.Mean(imps))
	t.AddF("max", "%.1f", max)
	return t, nil
}

// AllFigures regenerates every figure sequentially, in paper order,
// failing on the first figure that cannot be produced at all. RunAll is
// the fault-tolerant, concurrent alternative.
func (h *Harness) AllFigures() ([]Figure, error) {
	var figs []Figure
	for _, nf := range StandardFigures() {
		f, err := nf.Gen(h)
		if err != nil {
			return figs, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}
