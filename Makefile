GO ?= go

.PHONY: all build vet test race bench bench-go fuzz-smoke tier1 clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench measures the sweep engine (two-plane reuse vs rebuild-per-cell)
# on the Figure 9 grid and records ns/op, allocs/op, cells/sec and the
# speedup factor in BENCH_PR3.json.
bench:
	$(GO) run ./cmd/espperf -out BENCH_PR3.json

# bench-go runs the full Go benchmark suite (per-figure regeneration
# plus raw simulator throughput).
bench-go:
	$(GO) test -bench=. -benchmem .

# fuzz-smoke gives the hardened trace decoder a short adversarial
# shake on every gate run; longer campaigns use -fuzztime by hand.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadFile -fuzztime=10s ./internal/trace

# tier1 is the robustness gate: everything must be green before merge.
tier1: vet build race fuzz-smoke

clean:
	$(GO) clean ./...
