GO ?= go

.PHONY: all build vet test race bench fuzz-smoke tier1 clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# fuzz-smoke gives the hardened trace decoder a short adversarial
# shake on every gate run; longer campaigns use -fuzztime by hand.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadFile -fuzztime=10s ./internal/trace

# tier1 is the robustness gate: everything must be green before merge.
tier1: vet build race fuzz-smoke

clean:
	$(GO) clean ./...
