GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race bench bench-go bench-guard fuzz-smoke tier1 clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench measures the sweep engine (two-plane reuse vs rebuild-per-cell)
# on the Figure 9 grid and records ns/op, allocs/op, cells/sec and the
# speedup factor in BENCH_PR3.json.
bench:
	$(GO) run ./cmd/espperf -out BENCH_PR3.json

# bench-go runs the full Go benchmark suite (per-figure regeneration
# plus raw simulator throughput).
bench-go:
	$(GO) test -bench=. -benchmem .

# bench-guard re-measures sweep throughput and fails when the two-plane
# engine's cells/sec fell more than 20% below the committed baseline.
bench-guard:
	$(GO) run ./cmd/espperf -out - -guard BENCH_PR3.json -maxloss 0.20

# fuzz-smoke gives every fuzz target a short adversarial shake on each
# gate run (FUZZTIME per target); longer campaigns raise FUZZTIME.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadFile -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzRunRequest -fuzztime=$(FUZZTIME) ./internal/serve

# tier1 is the robustness gate: everything must be green before merge.
tier1: vet build race fuzz-smoke

clean:
	$(GO) clean ./...
