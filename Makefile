GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet lint test race bench bench-go bench-guard flame fuzz-smoke chaos cluster-chaos leak sched-check overload tier1 clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is the domain gate: go vet plus esplint, the in-tree analyzer
# suite that proves the replay/plane/fault contracts (complete pooled
# resets, an immutable workload plane, a total error taxonomy,
# wrap-safe sentinel matching). Any diagnostic fails the build; see
# DESIGN.md §12 for the annotation grammar that governs each check.
lint: vet
	$(GO) run ./cmd/esplint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench measures the sweep engine (warm two-plane replay vs
# rebuild-per-cell) on the Figure 9 grid and records ns/cell,
# steady-state allocs/cell, cells/sec and the speedup factor in
# BENCH_PR8.json.
bench:
	$(GO) run ./cmd/espperf -out BENCH_PR8.json

# bench-go runs the full Go benchmark suite (per-figure regeneration
# plus raw simulator throughput).
bench-go:
	$(GO) test -bench=. -benchmem .

# bench-guard re-measures sweep throughput and fails when the two-plane
# engine's cells/sec fell more than 20% below the committed baseline,
# when a warm replay cell exceeds the hard allocation ceiling (the
# hot path is allocation-zero; the ceiling of 40 leaves room only for
# result assembly), when the fault-free recovery stack (retries +
# breakers, no injector) costs more than 5% of reuse throughput, or
# when the tenant fair-queue admission stack costs more than 2% of it
# with a single unthrottled tenant.
bench-guard:
	$(GO) run ./cmd/espperf -out - -guard BENCH_PR8.json -maxloss 0.20 -maxallocs 40 -maxoverhead 0.05

# flame captures a CPU profile of the measured sweeps and renders the
# top of the replay hot path; pass PPROF_FLAGS=-http=:8080 for the
# interactive flame graph.
flame:
	$(GO) run ./cmd/espperf -out - -cpuprofile espperf.cpu.pprof > /dev/null
	$(GO) tool pprof $(PPROF_FLAGS) -top -nodecount=20 espperf.cpu.pprof

# chaos is the seeded fault-injection soak under the race detector: a
# sweep with injected panics, stalls, and build failures on >=25% of its
# cells must return every cell, match the golden corpus bit-for-bit on
# recovered cells, trip and honor circuit breakers, and resume from its
# journal after a mid-sweep kill with a torn tail write.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestDrainWaits' ./internal/serve -v

# leak asserts the admission machinery (queue tickets, worker slots,
# queue-depth gauge) drains to zero after every request path, including
# rejections, cancellations, timeouts, and conflicts.
leak:
	$(GO) test -race -count=1 -run 'TestAdmissionNoLeak|TestErrorPathsNoLeak' ./internal/serve -v

# cluster-chaos is the fleet-level soak under the race detector: a
# seeded sharded sweep over three in-process workers, one killed
# mid-shard and one quarantined behind injected network faults, must
# complete via journal handoff bit-identical to the single-node golden
# corpus, refuse digest-mismatched journals, and report every
# quarantine, reschedule, and steal on the coordinator's /metrics.
cluster-chaos:
	$(GO) test -race -count=1 -run 'TestClusterChaos|TestHandoffDigestMismatch|TestProbeQuarantines' ./internal/cluster -v

# fuzz-smoke gives every fuzz target a short adversarial shake on each
# gate run (FUZZTIME per target); longer campaigns raise FUZZTIME.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadFile -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzRunRequest -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -run='^$$' -fuzz=FuzzJournalReplay -fuzztime=$(FUZZTIME) ./internal/checkpoint
	$(GO) test -run='^$$' -fuzz=FuzzSchedulerConfig -fuzztime=$(FUZZTIME) ./internal/eventq

# sched-check proves the scheduling dimension under the race detector:
# the scheduler property suite (permutation, time monotonicity, strict
# priority, EDF choice, untimed FIFO degeneration, cross-goroutine
# determinism), the metamorphic scheduler laws (deadline-aware policies
# never miss more than FIFO, slack monotonicity, ESP ordering under
# every policy), the scheduled golden cells, and the scheduled
# zero-allocation replay contract.
sched-check:
	$(GO) test -race -count=1 -run 'TestSched|TestScheduleIsPermutation|TestScheduleTimesConsistent|TestStrictPriorityNoInversions|TestEDFPicksEarliestDeadline|TestUntimedDegeneratesToFIFO|TestScheduleDeterministic|TestSchedByNameRoundTrip' ./internal/eventq -v
	$(GO) test -race -count=1 -run 'TestInvariantSchedulerDeadlines|TestInvariantSlackMonotone|TestInvariantESPOrderingScheduled|TestGolden' . -v
	$(GO) test -count=1 -run 'TestReplayAllocFreeScheduled' ./internal/sim -v

# overload proves tenant-scale robustness under the race detector: DRR
# fairness under saturation (completed-cell shares track tenant
# weights), deadline-aware shedding (an expired sweep answers partial
# results fast with zero simulation), per-tenant quotas with distinct
# HTTP statuses, memory-pressure brownout with hysteresis recovery, and
# the fleet-level chaos — a hedged straggler merging bit-identically and
# a greedy tenant flood that cannot starve a victim on a degraded fleet.
overload:
	$(GO) test -race -count=1 ./internal/tenantq -v
	$(GO) test -race -count=1 -run 'TestTenantFairnessUnderSaturation|TestSweepExpiredDeadlineFastPath|TestRunDeadlineShedOnEvidence|TestTenantQuotaAndHeader|TestBrownoutDegradationAndRecovery' ./internal/serve -v
	$(GO) test -race -count=1 -run 'TestHedgedStragglerParity|TestGreedyTenantFloodDegradedFleet' ./internal/cluster -v

# tier1 is the robustness gate: everything must be green before merge.
# race already runs the chaos soak and leak tests (they live in the
# normal test set); leak re-runs them uncached so the gate cannot be
# satisfied by a stale pass. lint subsumes vet and adds the domain
# analyzers, so a contract violation fails the gate before any test runs.
tier1: lint build race fuzz-smoke leak cluster-chaos sched-check overload

clean:
	$(GO) clean ./...
