package esp

import (
	"strings"
	"testing"

	"espsim/internal/core"
	"espsim/internal/cpu"
	"espsim/internal/runahead"
)

// TestConfigValidate is the table-driven contract for Config.Validate:
// every documented misconfiguration is rejected with an actionable
// message naming the offending field, and every preset is accepted.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring of the error; "" means valid
	}{
		{"zero value resolves defaults", Config{Name: "zero"}, ""},
		{"baseline preset", BaselineConfig(), ""},
		{"esp preset", ESPNLConfig(), ""},
		{"runahead preset", RunaheadNLConfig(), ""},
		{"idle-core preset", IdleCoreConfig(), ""},
		{
			"negative MaxEvents",
			Config{Name: "bad", MaxEvents: -1},
			"MaxEvents",
		},
		{
			"negative MaxPending",
			Config{Name: "bad", MaxPending: -3},
			"MaxPending",
		},
		{
			"both EFetch and PIF",
			Config{Name: "bad", EFetch: true, PIF: true},
			"mutually exclusive",
		},
		{
			"unknown assist kind",
			Config{Name: "bad", Assist: AssistKind(99)},
			"unknown AssistKind",
		},
		{
			"partial CPU config",
			func() Config {
				c := BaselineConfig()
				c.CPU.Width = 4 // everything else zero
				return c
			}(),
			"ROB",
		},
		{
			"negative CPU base CPI",
			func() Config {
				c := BaselineConfig()
				c.CPU = cpu.DefaultConfig()
				c.CPU.BaseCPI = -1
				return c
			}(),
			"BaseCPI",
		},
		{
			"runahead DepFrac out of range",
			func() Config {
				c := RunaheadNLConfig()
				c.RA.DepFrac = 1.5
				return c
			}(),
			"DepFrac",
		},
		{
			// A partially-filled sub-config used to be silently replaced
			// by the defaults whenever its magic sentinel field (BaseCPI)
			// was zero, discarding the fields the caller did set. Now only
			// the all-zero struct means "use defaults"; a partial fill is
			// an explicit error naming the missing field.
			"runahead partial config rejected",
			func() Config {
				c := RunaheadNLConfig()
				c.RA = runahead.Config{WarmD: true} // BaseCPI left zero
				return c
			}(),
			"BaseCPI",
		},
		{
			"runahead all-zero config resolves defaults",
			func() Config {
				c := RunaheadNLConfig()
				c.RA = runahead.Config{}
				return c
			}(),
			"",
		},
		{
			"partial sub-config error is actionable",
			func() Config {
				c := RunaheadNLConfig()
				c.RA = runahead.Config{WarmD: true}
				return c
			}(),
			"partially filled",
		},
		{
			"esp partial options rejected",
			func() Config {
				c := ESPNLConfig()
				c.ESP = core.Options{IdleCore: true} // JumpDepth etc. left zero
				return c
			}(),
			"partially filled",
		},
		{
			"esp all-zero options resolve defaults",
			func() Config {
				c := ESPNLConfig()
				c.ESP = core.Options{}
				return c
			}(),
			"",
		},
		{
			"esp jump depth out of range",
			func() Config {
				c := ESPNLConfig()
				c.ESP.JumpDepth = 9
				return c
			}(),
			"JumpDepth",
		},
		{
			"esp negative prefetch lead",
			func() Config {
				c := ESPNLConfig()
				c.ESP.PrefetchLead = -5
				return c
			}(),
			"prefetch windows",
		},
		{
			"esp unknown BP mode",
			func() Config {
				c := ESPNLConfig()
				c.ESP.BPMode = core.BPMode(7)
				return c
			}(),
			"BPMode",
		},
		{
			"cachelet bytes not divisible into ways",
			func() Config {
				c := ESPNLConfig()
				c.ESP.Sizes.ICacheletBytes[0] = 5000 // not ways*64B-aligned
				return c
			}(),
			"cachelet",
		},
		{
			"cachelet sets not a power of two",
			func() Config {
				c := ESPNLConfig()
				c.ESP.Sizes.DCacheletBytes[0] = 11 * 64 * 3 // 3 sets
				return c
			}(),
			"power of two",
		},
		{
			"list budget zero",
			func() Config {
				c := ESPNLConfig()
				c.ESP.Sizes.BListTgtBytes[1] = 0
				return c
			}(),
			"at least one record",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			// Errors must be actionable: they name the config they reject.
			if !strings.Contains(err.Error(), tc.cfg.Name) {
				t.Fatalf("error %q does not name config %q", err, tc.cfg.Name)
			}
		})
	}
}

// TestRunRejectsInvalidConfig proves the no-panic contract end to end:
// Run returns the validation error instead of panicking mid-simulation.
func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := ESPNLConfig()
	cfg.ESP.Sizes.ICacheletBytes[0] = 5000
	if _, err := Run(fastProfile(), cfg); err == nil {
		t.Fatal("invalid cachelet geometry accepted by Run")
	}
}

// TestHarnessMemoizesErrors: a failing cell reports the same error on
// every use without re-running.
func TestHarnessMemoizesErrors(t *testing.T) {
	h := NewHarness()
	h.MaxEvents = 10
	bad := EFetchConfig()
	bad.PIF = true
	_, err1 := h.Run(fastProfile(), bad)
	_, err2 := h.Run(fastProfile(), bad)
	if err1 == nil || err2 == nil {
		t.Fatal("invalid config accepted")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("memoized errors differ: %v vs %v", err1, err2)
	}
}
