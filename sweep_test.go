package esp

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestRunAllSurvivesPanickingFigure injects a figure generator that
// panics outright and one that returns an error, and proves the sweep
// still produces the healthy figures, in request order, with the
// failures recorded and summarized.
func TestRunAllSurvivesPanickingFigure(t *testing.T) {
	h := NewHarness()
	h.MaxEvents = 10
	sweep := h.RunAll(4,
		NamedFigure{ID: "boom", Gen: func(*Harness) (Figure, error) {
			panic("injected failure")
		}},
		NamedFigure{ID: "fig8", Gen: (*Harness).Fig8},
		NamedFigure{ID: "broken", Gen: func(*Harness) (Figure, error) {
			return Figure{}, errInjected
		}},
		NamedFigure{ID: "fig6", Gen: (*Harness).Fig6},
	)
	if len(sweep.Figures) != 2 {
		t.Fatalf("produced %d figures, want 2 healthy ones", len(sweep.Figures))
	}
	if sweep.Figures[0].ID != "fig8" || sweep.Figures[1].ID != "fig6" {
		t.Fatalf("figures out of request order: %s, %s", sweep.Figures[0].ID, sweep.Figures[1].ID)
	}
	if err := sweep.Failed["boom"]; err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("panic not captured: %v", err)
	}
	if err := sweep.Failed["broken"]; err != errInjected {
		t.Fatalf("error not recorded: %v", err)
	}
	if sweep.OK() {
		t.Fatal("sweep with failures reports OK")
	}
	s := sweep.Summary()
	for _, want := range []string{"2 figure(s) not produced", "boom", "broken"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

var errInjected = errInjectedType{}

type errInjectedType struct{}

func (errInjectedType) Error() string { return "injected error" }

// TestRunAllDegradedCells: a figure whose underlying simulations fail
// (invalid config) is still emitted with NaN cells, and the sweep
// aggregates the cell errors.
func TestRunAllDegradedCells(t *testing.T) {
	h := NewHarness()
	h.MaxEvents = 10
	bad := EFetchConfig()
	bad.PIF = true // mutually exclusive: every Run of this config errors
	gen := func(h *Harness) (Figure, error) {
		return h.metricFigure("degraded", "degraded figure", "",
			[]Config{NLConfig(), bad},
			func(r Result) float64 { return r.IPC }, "%.2f")
	}
	sweep := h.RunAll(2, NamedFigure{ID: "degraded", Gen: gen})
	if len(sweep.Figures) != 1 {
		t.Fatalf("degraded figure dropped: %+v", sweep.Failed)
	}
	fig := sweep.Figures[0]
	if len(fig.CellErrors) == 0 {
		t.Fatal("no cell errors recorded")
	}
	for _, v := range fig.Series[bad.Name] {
		if !math.IsNaN(v) {
			t.Fatalf("failed cell holds %v, want NaN", v)
		}
	}
	if !math.IsNaN(fig.Summary[bad.Name]) {
		t.Fatal("summary over all-failed series must be NaN")
	}
	// The healthy series must be unaffected.
	for _, v := range fig.Series[NLConfig().Name] {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("healthy cell damaged: %v", v)
		}
	}
	if len(sweep.Cells) != len(fig.CellErrors) {
		t.Fatalf("sweep aggregated %d cells, figure has %d", len(sweep.Cells), len(fig.CellErrors))
	}
	if !strings.Contains(sweep.Summary(), "cell(s) degraded") {
		t.Fatalf("summary missing cell section:\n%s", sweep.Summary())
	}
}

// TestRunAllAllFiguresHealthy: the standard sweep at tiny scale is
// fully healthy and covers every standard figure.
func TestRunAllAllFiguresHealthy(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	h := NewHarness()
	h.Scale = 0.25
	sweep := h.RunAll(4)
	if !sweep.OK() {
		t.Fatalf("standard sweep degraded:\n%s", sweep.Summary())
	}
	if len(sweep.Figures) != len(StandardFigures()) {
		t.Fatalf("produced %d figures, want %d", len(sweep.Figures), len(StandardFigures()))
	}
	// A healthy sweep's summary carries only the engine perf line: the
	// reuse counters must show the two-plane engine at work (each
	// workload materialized once, machines recycled across cells).
	s := sweep.Summary()
	if strings.Contains(s, "not produced") || strings.Contains(s, "degraded") {
		t.Fatalf("healthy sweep reports failures:\n%s", s)
	}
	if !strings.Contains(s, "engine:") {
		t.Fatalf("summary missing engine perf line:\n%s", s)
	}
	p := sweep.Perf
	if p.Cells == 0 {
		t.Fatal("perf counters empty after full sweep")
	}
	if p.WorkloadReuses == 0 || p.MachineReuses == 0 {
		t.Fatalf("no reuse recorded across the sweep: %+v", p)
	}
	if p.WorkloadBuilds >= p.WorkloadReuses {
		t.Fatalf("workloads rebuilt more than reused: %d built, %d reused", p.WorkloadBuilds, p.WorkloadReuses)
	}
}

// TestHarnessTimeout: a cell exceeding Harness.Timeout fails with a
// timeout error instead of hanging the sweep.
func TestHarnessTimeout(t *testing.T) {
	h := NewHarness()
	h.Timeout = time.Nanosecond
	_, err := h.Run(fastProfile(), NLConfig())
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("want timeout error, got %v", err)
	}
}

// TestHarnessRunPanicContained: a panic escaping a simulation comes
// back from Harness.Run as an error, never as a crash.
func TestHarnessRunPanicContained(t *testing.T) {
	h := NewHarness()
	h.MaxEvents = 10
	// An unknown AssistKind passes through no simulation path; use a
	// figure generator panic instead via RunAll (covered above) and
	// verify here that runCell's recover also guards Run itself.
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped Harness.Run: %v", r)
		}
	}()
	bad := Config{Name: "bad-assist", Assist: AssistKind(42)}
	if _, err := h.Run(fastProfile(), bad); err == nil {
		t.Fatal("unknown assist accepted")
	}
}
