// Command espperf measures the simulator's sweep throughput: the full
// Figure 9 grid (7 applications × 7 configurations) run three ways —
// through one long-lived two-plane engine the way the espd service runs
// it (a sim.Runner materializes each workload plane once and resets
// pooled machines; every cell still fully replays, since the runner
// memoizes no results), through the same runner wrapped in the serving
// layer's recovery stack (retry executor + circuit breakers, injector
// disabled), and rebuilding the session and machine for every cell the
// way a naive loop over esp.Run does. The first two phases alternate
// round by round (best of three each, GC-fenced) so host-speed drift
// cancels out of their overhead ratio. It writes the comparison as JSON
// (ns/cell, allocs/cell, cells/sec, speedup, resilience counters) for
// tracking across commits.
//
// With -guard it additionally compares the fresh measurement against a
// committed baseline report and exits nonzero when reuse throughput
// regressed by more than -maxloss, fell short of -mingain times the
// baseline, when the recovery stack costs more than -maxoverhead of
// reuse throughput with no faults injected, or when the tenant
// fair-queue admission stack costs more than -maxoverload of it with a
// single unthrottled tenant — the CI bench-guard gate. -maxallocs caps
// the reuse phase's steady-state heap allocations per cell
// independently of any baseline.
//
// -cpuprofile and -memprofile write pprof profiles of the measured
// sweeps (see `make flame`).
//
// Usage:
//
//	espperf [-scale 1] [-out BENCH_PR8.json] [-guard BASELINE.json]
//	        [-maxloss 0.20] [-mingain 0] [-maxallocs 0] [-maxoverhead 0.02]
//	        [-maxoverload 0.02] [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"espsim"
	"espsim/internal/fault"
	"espsim/internal/sim"
	"espsim/internal/tenantq"
	"espsim/internal/workload"
)

// phase is one measured sweep strategy.
type phase struct {
	Name        string  `json:"name"`
	WallNs      int64   `json:"wall_ns"`
	Cells       int     `json:"cells"`
	NsPerCell   int64   `json:"ns_per_cell"`
	CellsPerSec float64 `json:"cells_per_sec"`
	AllocsTotal uint64  `json:"allocs_total"`
	AllocsCell  uint64  `json:"allocs_per_cell"`
	BytesTotal  uint64  `json:"alloc_bytes_total"`
	BytesCell   uint64  `json:"alloc_bytes_per_cell"`
}

// resilience is the recovery-stack activity during the resilient phase.
// With the injector disabled every counter must be zero — a nonzero
// value in a committed report means the benchmark itself misbehaved.
type resilience struct {
	Retries      int64 `json:"retries"`
	BreakerTrips int64 `json:"breaker_trips"`
	BreakerSkips int64 `json:"breaker_skips"`
	BreakerOpen  int64 `json:"breaker_open"`
}

type report struct {
	Scale   float64 `json:"scale"`
	Apps    int     `json:"apps"`
	Configs int     `json:"configs"`
	Reuse   phase   `json:"reuse"`
	// Resilient is the reuse sweep run through the serving layer's
	// executor (breaker admission + retry bookkeeping per cell) with no
	// faults injected; Overhead is the fractional reuse throughput it
	// costs. The recovery stack must be ~free on the fault-free path.
	Resilient  phase      `json:"resilient"`
	Overhead   float64    `json:"resilience_overhead"`
	Resilience resilience `json:"resilience"`
	Rebuild    phase      `json:"rebuild"`
	// Speedup is rebuild wall-clock over reuse wall-clock: the factor
	// the two-plane engine saves on the Figure 9 sweep.
	Speedup float64 `json:"speedup"`
	// Sched measures warm replay over scheduled (timed, deadline-aware)
	// workloads: the mobile-web profiles under every scheduler policy.
	// Pointer so reports from before the scheduling dimension existed
	// still guard cleanly — the gate only fires when the baseline
	// carries the phase too.
	Sched *phase `json:"sched,omitempty"`
	// Overload is the reuse sweep run behind the tenant fair-queue
	// admission the daemon puts in front of every cell (one
	// Acquire/release on the default tenant per cell) — the cost of
	// overload protection when there is no overload. OverloadOverhead
	// is the fractional reuse throughput it eats; the guard bounds it
	// within-run. Pointer for the same baseline-compatibility reason.
	Overload         *phase  `json:"overload,omitempty"`
	OverloadOverhead float64 `json:"overload_overhead,omitempty"`
}

// fig9Configs is the Figure 9 grid: the baseline plus its six
// comparison machines.
func fig9Configs() []esp.Config {
	return []esp.Config{
		esp.BaselineConfig(), esp.NLConfig(), esp.NLSConfig(),
		esp.RunaheadConfig(), esp.RunaheadNLConfig(),
		esp.ESPConfig(), esp.ESPNLConfig(),
	}
}

// measure runs sweep and reports wall clock and allocation deltas.
// TotalAlloc and Mallocs are cumulative, so the deltas are exact even
// when the garbage collector runs mid-sweep.
func measure(name string, cells int, sweep func() error) (phase, error) {
	// Collect the previous round's garbage outside the timed region so
	// one round's build debris is not billed to the next round's replay.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := sweep(); err != nil {
		return phase{}, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	p := phase{
		Name:        name,
		WallNs:      wall.Nanoseconds(),
		Cells:       cells,
		NsPerCell:   wall.Nanoseconds() / int64(cells),
		CellsPerSec: float64(cells) / wall.Seconds(),
		AllocsTotal: after.Mallocs - before.Mallocs,
		BytesTotal:  after.TotalAlloc - before.TotalAlloc,
	}
	p.AllocsCell = p.AllocsTotal / uint64(cells)
	p.BytesCell = p.BytesTotal / uint64(cells)
	return p, nil
}

// bestOf folds a freshly measured round into the best (fastest) round
// seen so far for that phase. The first round over a cold runner pays
// workload materialization and machine assembly; later rounds replay
// against warm planes and pools, so best-of-rounds reports the engine's
// steady state.
func bestOf(best, p phase) phase {
	if best.WallNs == 0 || p.WallNs < best.WallNs {
		return p
	}
	return best
}

func main() {
	var (
		scale       = flag.Float64("scale", 1, "event-count scale factor")
		out         = flag.String("out", "BENCH_PR8.json", "output JSON path (- for stdout only)")
		guard       = flag.String("guard", "", "baseline report JSON to guard against (empty: no guard)")
		maxLoss     = flag.Float64("maxloss", 0.20, "max tolerated fractional loss of reuse cells/sec vs -guard baseline")
		minGain     = flag.Float64("mingain", 0, "min required reuse cells/sec as a multiple of the -guard baseline (0: none)")
		maxAllocs   = flag.Uint64("maxallocs", 0, "max tolerated steady-state heap allocations per reuse cell (0: no cap)")
		maxOverhead = flag.Float64("maxoverhead", 0.02, "max tolerated fractional reuse throughput spent on the fault-free recovery stack")
		maxOverload = flag.Float64("maxoverload", 0.02, "max tolerated fractional reuse throughput spent on fault-free tenant admission")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the measured sweeps to this path")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile (after the sweeps) to this path")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	profs := workload.Suite()
	if *scale != 1 {
		for i := range profs {
			profs[i] = profs[i].Scale(*scale)
		}
	}
	cfgs := fig9Configs()
	cells := len(profs) * len(cfgs)

	// Two-plane engine, driven the way espd drives it: one long-lived
	// runner across rounds. The runner memoizes no results — every cell
	// replays its full instruction stream every round — but after the
	// first round the workload planes are materialized and the machine
	// pools warm, so later rounds measure pure allocation-free replay.
	runner := sim.NewRunner()
	reuseSweep := func() error {
		for _, prof := range profs {
			for _, cfg := range cfgs {
				if _, err := runner.RunCell(prof.Name+"/"+cfg.Name, prof, cfg, 0); err != nil {
					return fmt.Errorf("%s/%s: %w", prof.Name, cfg.Name, err)
				}
			}
		}
		return nil
	}

	// The same sweep through the recovery stack the daemon wraps around
	// every cell — breaker admission, retry bookkeeping — with no fault
	// injector installed. This is what POST /sweep pays per cell even
	// when nothing ever fails. Its runner is warmed identically so the
	// overhead division compares steady state to steady state.
	exec := fault.NewExecutor(fault.RetryPolicy{}, fault.NewBreakerSet(5, 30*time.Second), nil, 1)
	runner2 := sim.NewRunner()
	resilientSweep := func() error {
		for _, prof := range profs {
			for _, cfg := range cfgs {
				prof, cfg := prof, cfg
				out := exec.Run(context.Background(), prof.Name+"/"+cfg.Name, func(int) error {
					_, err := runner2.RunCell(prof.Name+"/"+cfg.Name, prof, cfg, 0)
					return err
				})
				if out.Err != nil {
					return fmt.Errorf("%s/%s: %w", prof.Name, cfg.Name, out.Err)
				}
			}
		}
		return nil
	}

	// The same sweep again behind the tenant fair-queue admission espd
	// now runs in front of every cell: one Acquire/release on the
	// default tenant, DRR arbitration and quota checks included. This is
	// what overload protection costs a single well-behaved tenant when
	// nothing is overloaded.
	tq := tenantq.New(tenantq.Options{Slots: 1})
	runner3 := sim.NewRunner()
	overloadSweep := func() error {
		ctx := context.Background()
		for _, prof := range profs {
			for _, cfg := range cfgs {
				release, err := tq.Acquire(ctx, tenantq.DefaultTenant, 1)
				if err != nil {
					return fmt.Errorf("%s/%s: admission: %w", prof.Name, cfg.Name, err)
				}
				_, err = runner3.RunCell(prof.Name+"/"+cfg.Name, prof, cfg, 0)
				release()
				if err != nil {
					return fmt.Errorf("%s/%s: %w", prof.Name, cfg.Name, err)
				}
			}
		}
		return nil
	}

	// The ratio phases alternate round by round rather than running
	// back-to-back: host speed drifts over the seconds the benchmark
	// takes (frequency scaling, neighbours), and interleaving exposes
	// all of them to the same conditions so their ratios — the recovery
	// stack's and the admission stack's overhead — are not artifacts of
	// which ran first.
	var reuse, resilient, overload phase
	for i := 0; i < 3; i++ {
		p, err := measure("reuse", cells, reuseSweep)
		if err != nil {
			fail(err)
		}
		reuse = bestOf(reuse, p)
		q, err := measure("resilient", cells, resilientSweep)
		if err != nil {
			fail(err)
		}
		resilient = bestOf(resilient, q)
		o, err := measure("overload", cells, overloadSweep)
		if err != nil {
			fail(err)
		}
		overload = bestOf(overload, o)
	}
	fmt.Fprintln(os.Stderr, "espperf: engine:", runner.Perf())

	// Scheduled workloads: the mobile-web profiles under every scheduler
	// policy, base and ESP machines. The schedule is part of the workload
	// plane, so after round one this measures warm replay of scheduled
	// cells — the guard proves the scheduling dimension never taxes the
	// hot loop.
	schedProfs := workload.MobileSuite()
	if *scale != 1 {
		for i := range schedProfs {
			schedProfs[i] = schedProfs[i].Scale(*scale)
		}
	}
	schedCfgs := make([]esp.Config, 0, 2*esp.NumSchedPolicies)
	for p := 0; p < esp.NumSchedPolicies; p++ {
		schedCfgs = append(schedCfgs,
			esp.SchedConfig(esp.BaselineConfig(), esp.SchedPolicy(p)),
			esp.SchedConfig(esp.ESPNLConfig(), esp.SchedPolicy(p)))
	}
	schedCells := len(schedProfs) * len(schedCfgs)
	schedRunner := sim.NewRunner()
	schedSweep := func() error {
		for _, prof := range schedProfs {
			for _, cfg := range schedCfgs {
				if _, err := schedRunner.RunCell(prof.Name+"/"+cfg.Name, prof, cfg, 0); err != nil {
					return fmt.Errorf("%s/%s: %w", prof.Name, cfg.Name, err)
				}
			}
		}
		return nil
	}
	var sched phase
	for i := 0; i < 3; i++ {
		p, err := measure("sched", schedCells, schedSweep)
		if err != nil {
			fail(err)
		}
		sched = bestOf(sched, p)
	}
	fmt.Fprintln(os.Stderr, "espperf: sched engine:", schedRunner.Perf())

	// Naive loop: every cell regenerates the session's instruction
	// streams and assembles a fresh machine.
	rebuild, err := measure("rebuild", cells, func() error {
		for _, prof := range profs {
			for _, cfg := range cfgs {
				if _, err := esp.Run(prof, cfg); err != nil {
					return fmt.Errorf("%s/%s: %w", prof.Name, cfg.Name, err)
				}
			}
		}
		return nil
	})
	if err != nil {
		fail(err)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
	}

	breakers := exec.Breakers()
	rep := report{
		Scale:     *scale,
		Apps:      len(profs),
		Configs:   len(cfgs),
		Reuse:     reuse,
		Resilient: resilient,
		Overhead:  1 - resilient.CellsPerSec/reuse.CellsPerSec,
		Resilience: resilience{
			Retries:      exec.Retries(),
			BreakerTrips: breakers.Trips(),
			BreakerSkips: breakers.Skips(),
			BreakerOpen:  int64(breakers.OpenCount()),
		},
		Rebuild:          rebuild,
		Speedup:          float64(rebuild.WallNs) / float64(reuse.WallNs),
		Sched:            &sched,
		Overload:         &overload,
		OverloadOverhead: 1 - overload.CellsPerSec/reuse.CellsPerSec,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	fmt.Printf("%s", buf)
	if *out != "-" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "espperf: %d cells, reuse %.1f cells/s vs rebuild %.1f cells/s: %.2fx speedup; recovery-stack overhead %.2f%%; admission overhead %.2f%%\n",
		cells, reuse.CellsPerSec, rebuild.CellsPerSec, rep.Speedup, rep.Overhead*100, rep.OverloadOverhead*100)

	if *maxAllocs > 0 && reuse.AllocsCell > *maxAllocs {
		fail(fmt.Errorf("reuse phase allocates %d/cell, budget %d/cell: the warm replay path is leaking allocations",
			reuse.AllocsCell, *maxAllocs))
	}
	if *guard != "" {
		if err := checkGuard(rep, *guard, *maxLoss, *minGain, *maxOverhead, *maxOverload); err != nil {
			fail(err)
		}
	}
}

// checkGuard compares the fresh report against a committed baseline and
// errors when reuse throughput fell by more than maxLoss (or short of
// minGain times the baseline, for guarding a claimed improvement), or
// when the fault-free recovery stack ate more than maxOverhead of it.
// Only the reuse phase is guarded against the baseline: rebuild
// throughput is the foil, not the product, and the grid shape must match
// for the comparison to mean anything. The overhead gate is within-run,
// so it holds across machines of different speeds.
func checkGuard(rep report, path string, maxLoss, minGain, maxOverhead, maxOverload float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("guard baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("guard baseline %s: %w", path, err)
	}
	if base.Reuse.CellsPerSec <= 0 {
		return fmt.Errorf("guard baseline %s: no reuse cells/sec", path)
	}
	if base.Apps != rep.Apps || base.Configs != rep.Configs || base.Scale != rep.Scale {
		return fmt.Errorf("guard baseline %s measured a %dx%d grid at scale %g, this run is %dx%d at scale %g",
			path, base.Apps, base.Configs, base.Scale, rep.Apps, rep.Configs, rep.Scale)
	}
	floor := base.Reuse.CellsPerSec * (1 - maxLoss)
	if rep.Reuse.CellsPerSec < floor {
		return fmt.Errorf("reuse throughput regressed: %.2f cells/s vs baseline %.2f (floor %.2f at maxloss %g)",
			rep.Reuse.CellsPerSec, base.Reuse.CellsPerSec, floor, maxLoss)
	}
	if minGain > 0 {
		if need := base.Reuse.CellsPerSec * minGain; rep.Reuse.CellsPerSec < need {
			return fmt.Errorf("reuse throughput %.2f cells/s short of %gx baseline %.2f (need %.2f)",
				rep.Reuse.CellsPerSec, minGain, base.Reuse.CellsPerSec, need)
		}
	}
	if rep.Overhead > maxOverhead {
		return fmt.Errorf("fault-free recovery stack costs %.2f%% of reuse throughput (%.2f vs %.2f cells/s), budget %.2f%%",
			rep.Overhead*100, rep.Resilient.CellsPerSec, rep.Reuse.CellsPerSec, maxOverhead*100)
	}
	if r := rep.Resilience; r.Retries != 0 || r.BreakerTrips != 0 || r.BreakerSkips != 0 || r.BreakerOpen != 0 {
		return fmt.Errorf("recovery stack fired with no injector installed: %+v", r)
	}
	// The tenant-admission overhead gate is within-run like the recovery
	// stack's, so it needs no baseline phase to fire.
	if rep.Overload != nil && rep.OverloadOverhead > maxOverload {
		return fmt.Errorf("fault-free tenant admission costs %.2f%% of reuse throughput (%.2f vs %.2f cells/s), budget %.2f%%",
			rep.OverloadOverhead*100, rep.Overload.CellsPerSec, rep.Reuse.CellsPerSec, maxOverload*100)
	}
	// Scheduled-workload replay is guarded only against baselines that
	// measured it; pre-scheduling reports simply skip the gate.
	if base.Sched != nil && rep.Sched != nil && base.Sched.CellsPerSec > 0 {
		if base.Sched.Cells != rep.Sched.Cells {
			return fmt.Errorf("guard baseline %s measured %d sched cells, this run %d",
				path, base.Sched.Cells, rep.Sched.Cells)
		}
		if floor := base.Sched.CellsPerSec * (1 - maxLoss); rep.Sched.CellsPerSec < floor {
			return fmt.Errorf("scheduled-workload throughput regressed: %.2f cells/s vs baseline %.2f (floor %.2f at maxloss %g)",
				rep.Sched.CellsPerSec, base.Sched.CellsPerSec, floor, maxLoss)
		}
	}
	fmt.Fprintf(os.Stderr, "espperf: guard ok: %.2f cells/s vs baseline %.2f (floor %.2f), overhead %.2f%% <= %.2f%%\n",
		rep.Reuse.CellsPerSec, base.Reuse.CellsPerSec, floor, rep.Overhead*100, maxOverhead*100)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "espperf:", err)
	os.Exit(1)
}
