// Command espperf measures the simulator's sweep throughput: the full
// Figure 9 grid (7 applications × 7 configurations) run twice — once
// through the two-plane engine (workloads materialized once, machines
// reset and reused) and once rebuilding the session and machine for
// every cell, the way a naive loop over esp.Run does. It writes the
// comparison as JSON (ns/op, allocs/op, cells/sec, speedup) for
// tracking across commits.
//
// With -guard it additionally compares the fresh measurement against a
// committed baseline report and exits nonzero when reuse throughput
// regressed by more than -maxloss — the CI bench-guard gate.
//
// Usage:
//
//	espperf [-scale 1] [-out BENCH_PR3.json] [-guard BASELINE.json] [-maxloss 0.20]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"espsim"
	"espsim/internal/workload"
)

// phase is one measured sweep strategy.
type phase struct {
	Name        string  `json:"name"`
	WallNs      int64   `json:"wall_ns"`
	Cells       int     `json:"cells"`
	NsPerCell   int64   `json:"ns_per_cell"`
	CellsPerSec float64 `json:"cells_per_sec"`
	AllocsTotal uint64  `json:"allocs_total"`
	AllocsCell  uint64  `json:"allocs_per_cell"`
	BytesTotal  uint64  `json:"alloc_bytes_total"`
	BytesCell   uint64  `json:"alloc_bytes_per_cell"`
}

type report struct {
	Scale   float64 `json:"scale"`
	Apps    int     `json:"apps"`
	Configs int     `json:"configs"`
	Reuse   phase   `json:"reuse"`
	Rebuild phase   `json:"rebuild"`
	// Speedup is rebuild wall-clock over reuse wall-clock: the factor
	// the two-plane engine saves on the Figure 9 sweep.
	Speedup float64 `json:"speedup"`
}

// fig9Configs is the Figure 9 grid: the baseline plus its six
// comparison machines.
func fig9Configs() []esp.Config {
	return []esp.Config{
		esp.BaselineConfig(), esp.NLConfig(), esp.NLSConfig(),
		esp.RunaheadConfig(), esp.RunaheadNLConfig(),
		esp.ESPConfig(), esp.ESPNLConfig(),
	}
}

// measure runs sweep and reports wall clock and allocation deltas.
// TotalAlloc and Mallocs are cumulative, so the deltas are exact even
// when the garbage collector runs mid-sweep.
func measure(name string, cells int, sweep func() error) (phase, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := sweep(); err != nil {
		return phase{}, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	p := phase{
		Name:        name,
		WallNs:      wall.Nanoseconds(),
		Cells:       cells,
		NsPerCell:   wall.Nanoseconds() / int64(cells),
		CellsPerSec: float64(cells) / wall.Seconds(),
		AllocsTotal: after.Mallocs - before.Mallocs,
		BytesTotal:  after.TotalAlloc - before.TotalAlloc,
	}
	p.AllocsCell = p.AllocsTotal / uint64(cells)
	p.BytesCell = p.BytesTotal / uint64(cells)
	return p, nil
}

func main() {
	var (
		scale   = flag.Float64("scale", 1, "event-count scale factor")
		out     = flag.String("out", "BENCH_PR3.json", "output JSON path (- for stdout only)")
		guard   = flag.String("guard", "", "baseline report JSON to guard against (empty: no guard)")
		maxLoss = flag.Float64("maxloss", 0.20, "max tolerated fractional loss of reuse cells/sec vs -guard baseline")
	)
	flag.Parse()

	profs := workload.Suite()
	if *scale != 1 {
		for i := range profs {
			profs[i] = profs[i].Scale(*scale)
		}
	}
	cfgs := fig9Configs()
	cells := len(profs) * len(cfgs)

	// Two-plane engine: one Harness memoizes nothing here (every cell is
	// distinct); its Runner materializes each app's workload once and
	// resets one pooled machine per configuration.
	h := esp.NewHarness()
	h.Scale = *scale
	reuse, err := measure("reuse", cells, func() error {
		for _, prof := range profs {
			for _, cfg := range cfgs {
				if _, err := h.Run(prof, cfg); err != nil {
					return fmt.Errorf("%s/%s: %w", prof.Name, cfg.Name, err)
				}
			}
		}
		return nil
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, "espperf: engine:", h.Perf())

	// Naive loop: every cell regenerates the session's instruction
	// streams and assembles a fresh machine.
	rebuild, err := measure("rebuild", cells, func() error {
		for _, prof := range profs {
			for _, cfg := range cfgs {
				if _, err := esp.Run(prof, cfg); err != nil {
					return fmt.Errorf("%s/%s: %w", prof.Name, cfg.Name, err)
				}
			}
		}
		return nil
	})
	if err != nil {
		fail(err)
	}

	rep := report{
		Scale:   *scale,
		Apps:    len(profs),
		Configs: len(cfgs),
		Reuse:   reuse,
		Rebuild: rebuild,
		Speedup: float64(rebuild.WallNs) / float64(reuse.WallNs),
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	fmt.Printf("%s", buf)
	if *out != "-" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "espperf: %d cells, reuse %.1f cells/s vs rebuild %.1f cells/s: %.2fx speedup\n",
		cells, reuse.CellsPerSec, rebuild.CellsPerSec, rep.Speedup)

	if *guard != "" {
		if err := checkGuard(rep, *guard, *maxLoss); err != nil {
			fail(err)
		}
	}
}

// checkGuard compares the fresh report against a committed baseline and
// errors when reuse throughput fell by more than maxLoss. Only the
// reuse phase is guarded: rebuild throughput is the foil, not the
// product, and the grid shape must match for the comparison to mean
// anything.
func checkGuard(rep report, path string, maxLoss float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("guard baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("guard baseline %s: %w", path, err)
	}
	if base.Reuse.CellsPerSec <= 0 {
		return fmt.Errorf("guard baseline %s: no reuse cells/sec", path)
	}
	if base.Apps != rep.Apps || base.Configs != rep.Configs || base.Scale != rep.Scale {
		return fmt.Errorf("guard baseline %s measured a %dx%d grid at scale %g, this run is %dx%d at scale %g",
			path, base.Apps, base.Configs, base.Scale, rep.Apps, rep.Configs, rep.Scale)
	}
	floor := base.Reuse.CellsPerSec * (1 - maxLoss)
	if rep.Reuse.CellsPerSec < floor {
		return fmt.Errorf("reuse throughput regressed: %.2f cells/s vs baseline %.2f (floor %.2f at maxloss %g)",
			rep.Reuse.CellsPerSec, base.Reuse.CellsPerSec, floor, maxLoss)
	}
	fmt.Fprintf(os.Stderr, "espperf: guard ok: %.2f cells/s vs baseline %.2f (floor %.2f)\n",
		rep.Reuse.CellsPerSec, base.Reuse.CellsPerSec, floor)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "espperf:", err)
	os.Exit(1)
}
