// Command espsim simulates one application workload under one machine
// configuration and prints detailed statistics.
//
// Usage:
//
//	espsim -app amazon -config ESP+NL [-scale 1] [-events 0] [-v]
//
// Valid -config names: base, NL, NL+S, NL-I, NL-D, Runahead, Runahead+NL,
// Runahead-D, Runahead-D+NL-D, ESP, ESP+NL, NaiveESP, NaiveESP+NL,
// ESP-I+NL, ESP-I,B+NL, perfectL1I, perfectL1D, perfectBP, perfectAll.
package main

import (
	"flag"
	"fmt"
	"os"

	"espsim"
	"espsim/internal/eventq"
	"espsim/internal/trace"
	"espsim/internal/workload"
)

// replayTrace runs a recorded ESPT trace through the simulator. The
// decode limits bound what an untrusted or corrupted trace file can
// make the decoder allocate.
func replayTrace(path string, cfg esp.Config, lim trace.Limits) (esp.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return esp.Result{}, err
	}
	defer f.Close()
	events, err := trace.ReadFileLimits(f, lim)
	if err != nil {
		return esp.Result{}, fmt.Errorf("reading trace %s: %w", path, err)
	}
	return esp.RunSource(path, &eventq.TraceSource{Events: events}, cfg)
}

func configs() map[string]esp.Config {
	list := []esp.Config{
		esp.BaselineConfig(), esp.NLConfig(), esp.NLSConfig(),
		esp.NLIOnlyConfig(), esp.NLDOnlyConfig(),
		esp.EFetchConfig(), esp.PIFConfig(),
		esp.RunaheadConfig(), esp.RunaheadNLConfig(),
		esp.RunaheadDConfig(), esp.RunaheadDNLDConfig(),
		esp.ESPConfig(), esp.ESPNLConfig(),
		esp.NaiveESPConfig(), esp.NaiveESPNLConfig(),
		esp.ESPIOnlyNLConfig(), esp.ESPIBNLConfig(),
		esp.PerfectL1IConfig(), esp.PerfectL1DConfig(),
		esp.PerfectBPConfig(), esp.PerfectAllConfig(),
	}
	m := make(map[string]esp.Config, len(list))
	for _, c := range list {
		m[c.Name] = c
	}
	return m
}

func main() {
	var (
		app       = flag.String("app", "amazon", "application workload (amazon, bing, cnn, facebook, gmaps, gdocs, pixlr, mobileweb, mobileheavy)")
		cfgName   = flag.String("config", "ESP+NL", "machine configuration name")
		sched     = flag.String("sched", "", "event scheduling policy: fifo, prio, edf, slack (default fifo)")
		scale     = flag.Float64("scale", 1, "event-count scale factor")
		events    = flag.Int("events", 0, "max events to simulate (0 = all)")
		tracePath = flag.String("trace", "", "replay an ESPT trace file (from cmd/tracegen) instead of a synthetic session")
		traceMB   = flag.Int64("trace-max-mb", 0, "cap on trace file size in MiB (0 = default 1 GiB)")
		verbose   = flag.Bool("v", false, "print component-level statistics")
	)
	flag.Parse()

	cfg, ok := configs()[*cfgName]
	if !ok {
		fmt.Fprintf(os.Stderr, "espsim: unknown config %q; see -h for the list\n", *cfgName)
		os.Exit(2)
	}
	cfg.MaxEvents = *events
	if *sched != "" {
		policy, err := eventq.SchedByName(*sched)
		if err != nil {
			fmt.Fprintf(os.Stderr, "espsim: %v\n", err)
			os.Exit(2)
		}
		cfg = esp.SchedConfig(cfg, policy)
	}

	var r esp.Result
	var err error
	if *tracePath != "" {
		lim := trace.DefaultLimits()
		if *traceMB > 0 {
			lim.MaxTraceBytes = *traceMB << 20
		}
		r, err = replayTrace(*tracePath, cfg, lim)
	} else {
		var prof workload.Profile
		prof, err = workload.ByName(*app)
		if err == nil {
			prof = prof.Scale(*scale)
			r, err = esp.Run(prof, cfg)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("app=%s config=%s\n", r.App, r.Config)
	fmt.Printf("  insts            %12d\n", r.Insts)
	fmt.Printf("  cycles           %12d\n", r.Cycles)
	fmt.Printf("  IPC              %12.3f\n", r.IPC)
	fmt.Printf("  L1-I MPKI        %12.2f\n", r.IMPKI)
	fmt.Printf("  L1-D miss rate   %11.2f%%\n", r.DMissRate*100)
	fmt.Printf("  mispredict rate  %11.2f%%\n", r.MispredictRate*100)
	fmt.Printf("  extra insts      %11.2f%%\n", r.ExtraInstPct)
	if s := r.Sched; s != nil {
		fmt.Printf("\nscheduling (%s): %d events, %d deadlined, %d missed (%.1f%%), %d priority inversions\n",
			s.Policy, s.Events, s.Deadlined, s.DeadlineMisses, s.MissRate*100, s.PriorityInversions)
		for _, cl := range s.Classes {
			if cl.Class == "none" {
				continue
			}
			fmt.Printf("  %-8s %5d ev  p50 %9.0f  p95 %9.0f  p99 %9.0f  miss %d/%d\n",
				cl.Class, cl.Events, cl.P50, cl.P95, cl.P99, cl.Misses, cl.Deadlined)
		}
	}
	if *verbose {
		fmt.Printf("\ncycle breakdown:\n")
		fmt.Printf("  base     %12d\n", r.CPU.BaseCycles)
		fmt.Printf("  I-miss   %12d\n", r.CPU.IMissCycles)
		fmt.Printf("  D-miss   %12d\n", r.CPU.DMissCycles)
		fmt.Printf("  branch   %12d\n", r.CPU.BranchCycles)
		fmt.Printf("  assist   %12d\n", r.CPU.AssistPenalty)
		fmt.Printf("stalls: offered=%d used=%d cycles=%d  LLC I=%d D=%d\n",
			r.CPU.StallsOffered, r.CPU.StallsUsed, r.CPU.StallCycles,
			r.CPU.LLCMissI, r.CPU.LLCMissD)
		fmt.Printf("caches: L1I %d/%d  L1D %d/%d  L2 %d/%d (miss/acc)\n",
			r.L1I.Misses, r.L1I.Accesses, r.L1D.Misses, r.L1D.Accesses,
			r.L2.Misses, r.L2.Accesses)
		fmt.Printf("prefetch usefulness: L1I %d/%d  L1D %d/%d  L2 %d/%d (useful/installed)\n",
			r.L1I.PrefetchUseful, r.L1I.PrefetchInstalls,
			r.L1D.PrefetchUseful, r.L1D.PrefetchInstalls,
			r.L2.PrefetchUseful, r.L2.PrefetchInstalls)
		if r.ESPStats != nil {
			s := r.ESPStats
			fmt.Printf("esp: preexec=%d fills=%d llcFills=%d modes=%v\n",
				s.PreExecInsts, s.CacheletFills, s.LLCFills, s.ModeEntries)
			fmt.Printf("     prefI=%d prefD=%d corrections=%d listFull=%d late=%d\n",
				s.PrefetchI, s.PrefetchD, s.Corrections, s.ListFull, s.SkippedLate)
			fmt.Printf("     events pre-executed=%d consumed=%d mismatches=%d hazards=%d poisonings=%d\n",
				s.EventsPreExecuted, s.EventsConsumed, s.SlotMismatches, s.DirtyHazards, s.Poisonings)
		}
		if r.RAStats != nil {
			s := r.RAStats
			fmt.Printf("runahead: episodes=%d preexec=%d stoppedOnIMiss=%d\n",
				s.Episodes, s.PreExecInsts, s.StoppedOnIMiss)
		}
		fmt.Printf("energy: mispredict=%.3g static=%.3g dynamic=%.3g total=%.3g\n",
			r.Energy.Mispredict, r.Energy.Static, r.Energy.Dynamic, r.Energy.Total())
	}
}
