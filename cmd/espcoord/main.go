// Command espcoord is the sweep coordinator for a fleet of espd
// workers: it accepts the same POST /sweep as a single daemon, shards
// the grid application-by-application with affinity placement (every
// configuration of one application goes to one worker, keeping its
// workload cache and machine pools hot), quarantines sick or flaky
// workers behind escalating circuit breakers fed by health probes,
// lets idle workers steal shards from stragglers, and — when the
// fleet shares a checkpoint directory — hands a dead worker's journal
// to a peer so completed cells replay instead of re-simulating.
//
// Endpoints:
//
//	POST /sweep    {"apps":[...],"configs":[...],"sweep_id":"..."}  -> merged grid
//	GET  /metrics  shards, steals, reschedules, quarantines, handoffs -> JSON
//	GET  /workers  app→worker placements + per-worker breaker state
//	GET  /healthz  coordinator liveness
//
// Usage:
//
//	espcoord -worker w0=http://host0:8080 -worker w1=http://host1:8080 \
//	         [-addr :8090] [-checkpoint-dir DIR] [-max-attempts 3] \
//	         [-breaker-threshold 2] [-breaker-cooldown 15s] [-breaker-max-cooldown 2m] \
//	         [-probe-interval 5s] [-hedge-after 0] [-tenant name=weight[:cell_budget]]... \
//	         [-tenant-slots N] [-log text|json]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"espsim/internal/cluster"
	"espsim/internal/tenantq"
)

// workerFlags collects repeated -worker name=url pairs.
type workerFlags []string

func (w *workerFlags) String() string     { return strings.Join(*w, ",") }
func (w *workerFlags) Set(v string) error { *w = append(*w, v); return nil }

// tenantFlags collects repeated -tenant name=weight[:cell_budget] specs.
type tenantFlags []string

func (t *tenantFlags) String() string     { return strings.Join(*t, ",") }
func (t *tenantFlags) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var workers workerFlags
	flag.Var(&workers, "worker", "fleet member as name=url (repeatable)")
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		checkpointDir = flag.String("checkpoint-dir", "", "journal directory the fleet shares (enables handoff; empty: recompute on reschedule)")
		maxAttempts   = flag.Int("max-attempts", 3, "workers a shard may fail on before its cells are reported failed")
		breakerThresh = flag.Int("breaker-threshold", 2, "consecutive failures that quarantine a worker (negative: disabled)")
		breakerCool   = flag.Duration("breaker-cooldown", 15*time.Second, "first quarantine length; re-trips double it")
		breakerMax    = flag.Duration("breaker-max-cooldown", 2*time.Minute, "escalation cap")
		probeInterval = flag.Duration("probe-interval", 5*time.Second, "health probe spacing (0: disabled)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "re-dispatch an in-flight shard to an idle worker after this long; first result wins (0: disabled)")
		tenantSlots   = flag.Int("tenant-slots", 0, "concurrently admitted sweeps fleet-wide (0: 64 × workers)")
		logFmt        = flag.String("log", "text", "log format: text or json")
	)
	var tenantSpecs tenantFlags
	flag.Var(&tenantSpecs, "tenant", "tenant config as name=weight[:cell_budget] (repeatable)")
	flag.Parse()

	tenants, err := tenantq.ParseTenants(tenantSpecs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "espcoord:", err)
		os.Exit(2)
	}

	var handler slog.Handler
	switch *logFmt {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "espcoord: unknown -log format %q (text or json)\n", *logFmt)
		os.Exit(2)
	}
	log := slog.New(handler)

	if len(workers) == 0 {
		fmt.Fprintln(os.Stderr, "espcoord: at least one -worker name=url is required")
		os.Exit(2)
	}
	fleet := make([]cluster.Worker, 0, len(workers))
	for _, spec := range workers {
		name, url, ok := strings.Cut(spec, "=")
		if !ok || name == "" || url == "" {
			fmt.Fprintf(os.Stderr, "espcoord: -worker %q is not name=url\n", spec)
			os.Exit(2)
		}
		fleet = append(fleet, cluster.NewHTTPWorker(name, url, nil))
	}

	coord, err := cluster.New(cluster.Options{
		Workers:            fleet,
		MaxShardAttempts:   *maxAttempts,
		BreakerThreshold:   *breakerThresh,
		BreakerCooldown:    *breakerCool,
		BreakerMaxCooldown: *breakerMax,
		ProbeInterval:      *probeInterval,
		CheckpointDir:      *checkpointDir,
		HedgeAfter:         *hedgeAfter,
		Tenants:            tenants,
		TenantSlots:        *tenantSlots,
		Logger:             log,
	})
	if err != nil {
		log.Error("espcoord: assembling fleet", "err", err.Error())
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           cluster.NewServer(coord),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Info("espcoord listening", "addr", *addr, "workers", len(fleet), "checkpoint_dir", *checkpointDir)
	if err := httpSrv.ListenAndServe(); err != nil {
		log.Error("espcoord: serve", "err", err.Error())
		os.Exit(1)
	}
}
