// Command espd is the ESP simulation daemon: the paper's evaluation
// grid served over HTTP. It executes (application, configuration)
// cells on a bounded pool of pooled-machine workers with an LRU
// workload cache, so concurrent requests for the same application share
// one materialized arena, and degrades gracefully under load (429 past
// the queue bound, per-cell timeouts, panic isolation, per-cell retries
// with a circuit breaker, crash-safe sweep checkpoints, SIGTERM drain).
//
// Endpoints:
//
//	POST /run      {"app":"amazon","config":"ESP+NL"}           -> one Result
//	POST /sweep    {"apps":[...],"configs":[...]}               -> a grid, batched by workload
//	GET  /journalz ?sweep_id=ID                                 -> checkpoint journal peek (handoff)
//	GET  /metrics  cells, cache hits, retries, breakers, ...    -> JSON
//	GET  /healthz  liveness (always 200 while the process serves)
//	GET  /readyz   readiness (503 while draining or mostly quarantined)
//
// Usage:
//
//	espd [-name espd] [-addr :8080] [-workers N] [-queue 64] [-cache 32]
//	     [-timeout 2m] [-log text|json] [-checkpoint-dir DIR]
//	     [-retries 3] [-breaker-threshold 5] [-breaker-cooldown 30s]
//	     [-tenant name=weight[:cell_budget]]... [-tenant-quantum 8]
//	     [-max-tenants 256] [-mem-budget BYTES] [-small-grid-max 4096]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"espsim/internal/fault"
	"espsim/internal/serve"
	"espsim/internal/tenantq"
)

// tenantFlags collects repeated -tenant name=weight[:cell_budget] specs.
type tenantFlags []string

func (t *tenantFlags) String() string     { return strings.Join(*t, ",") }
func (t *tenantFlags) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var (
		name    = flag.String("name", "espd", "node name reported in logs and /metrics (espcoord fleet label)")
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "concurrent simulation workers (0: NumCPU)")
		queue   = flag.Int("queue", 64, "queued requests beyond the running ones before 429")
		cache   = flag.Int("cache", 32, "LRU workload-cache capacity (materialized arenas)")
		timeout = flag.Duration("timeout", 2*time.Minute, "default per-cell simulation timeout")
		logFmt  = flag.String("log", "text", "log format: text or json")

		checkpointDir = flag.String("checkpoint-dir", "", "directory for crash-safe sweep journals (empty: disabled)")
		retries       = flag.Int("retries", 3, "attempts per sweep cell before reporting its error")
		breakerThresh = flag.Int("breaker-threshold", 5, "consecutive failures that quarantine a cell (negative: disabled)")
		breakerCool   = flag.Duration("breaker-cooldown", 30*time.Second, "quarantine time before a probe attempt")

		memBudget     = flag.Int64("mem-budget", 0, "workload-cache byte budget driving brownout degradation (0: disabled)")
		tenantQuantum = flag.Float64("tenant-quantum", 0, "DRR round size in cells per unit tenant weight (0: default 8)")
		maxTenants    = flag.Int("max-tenants", 0, "distinct tenant ids tracked before new ones are rejected (0: default 256)")
		smallGridMax  = flag.Int("small-grid-max", 0, "cells×max_events still admitted in the deepest brownout (0: default 4096)")
	)
	var tenantSpecs tenantFlags
	flag.Var(&tenantSpecs, "tenant", "tenant config as name=weight[:cell_budget] (repeatable)")
	flag.Parse()

	tenants, err := tenantq.ParseTenants(tenantSpecs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "espd:", err)
		os.Exit(2)
	}

	var handler slog.Handler
	switch *logFmt {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "espd: unknown -log format %q (text or json)\n", *logFmt)
		os.Exit(2)
	}
	log := slog.New(handler)

	if *checkpointDir != "" {
		if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
			log.Error("espd: checkpoint dir", "err", err.Error())
			os.Exit(1)
		}
	}

	srv := serve.New(serve.Options{
		Name:             *name,
		Workers:          *workers,
		QueueDepth:       *queue,
		WorkloadCap:      *cache,
		DefaultTimeout:   *timeout,
		Logger:           log,
		Retry:            fault.RetryPolicy{MaxAttempts: *retries},
		BreakerThreshold: *breakerThresh,
		BreakerCooldown:  *breakerCool,
		CheckpointDir:    *checkpointDir,
		Tenants:          tenants,
		TenantQuantum:    *tenantQuantum,
		MaxTenants:       *maxTenants,
		MemBudget:        *memBudget,
		SmallGridMax:     *smallGridMax,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGTERM/SIGINT: stop accepting connections, then drain in-flight
	// simulations, bounded so a wedged cell cannot hold shutdown hostage.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Info("espd listening", "addr", *addr, "workers", *workers, "queue", *queue,
			"cache", *cache, "checkpoint_dir", *checkpointDir)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("espd: serve", "err", err.Error())
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Info("espd: signal received, draining")
		// Readiness goes red first, so a load balancer stops routing
		// while Shutdown still serves the connections it already has;
		// then wait for in-flight simulations.
		srv.BeginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Error("espd: shutdown", "err", err.Error())
		}
		drainErr := srv.Drain(shutdownCtx)
		// Close after the drain either finished or timed out: any sweep
		// journal a handler did not release is fsync'd and closed here,
		// so the files on disk end bit-complete — the whole point of a
		// drain over a kill for a daemon that checkpoints.
		if err := srv.Close(); err != nil {
			log.Error("espd: close", "err", err.Error())
		}
		if drainErr != nil {
			log.Error("espd: drain", "err", drainErr.Error())
			os.Exit(1)
		}
		log.Info("espd: drained cleanly")
	}
}
