// Command esplint is the engine's domain lint gate: it proves the
// replay, plane, and fault contracts statically, using only the
// standard library's go/ast + go/types (no third-party analysis
// framework, so the module stays dependency-free).
//
//	esplint ./...                 # everything, human-readable
//	esplint -json ./... > l.json  # machine-readable (CI artifact)
//	esplint -sentinelis=false ./internal/sim
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/usage failure.
// Each analyzer can be toggled with -<name>=false; see -help for the
// suite. The annotation grammar (//esp:immutable, //esp:plane,
// //esp:ctor, //esp:exempt) is documented in DESIGN.md §12.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"espsim/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("esplint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	dir := fs.String("C", ".", "directory to resolve the module root from")
	enabled := map[string]*bool{}
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: esplint [flags] [patterns...]   (default pattern ./...)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var analyzers []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "esplint: every analyzer is disabled")
		return 2
	}

	root, err := analysis.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := analysis.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if errs := mod.TypeErrors(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "esplint: type error:", e)
		}
		return 2
	}

	diags := mod.Run(analyzers)
	for i := range diags {
		// Report module-relative paths: stable across checkouts, which
		// keeps the -json artifact diffable between CI runs.
		if rel, err := filepath.Rel(root, diags[i].File); err == nil {
			diags[i].File = filepath.ToSlash(rel)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "esplint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "esplint: %d diagnostic(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
