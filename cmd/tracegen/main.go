// Command tracegen materializes a synthetic session into an ESPT binary
// trace file, or inspects an existing one. Traces produced here can be
// replayed through the simulator with eventq.TraceSource, decoupling
// workload generation from simulation (the role SniperSim's trace
// recorder plays in the paper's methodology, §5).
//
// Usage:
//
//	tracegen -app bing -o bing.espt [-events 50] [-scale 1]
//	tracegen -info bing.espt
package main

import (
	"flag"
	"fmt"
	"os"

	"espsim/internal/trace"
	"espsim/internal/workload"
)

func main() {
	var (
		app    = flag.String("app", "amazon", "application workload to trace")
		out    = flag.String("o", "", "output trace file")
		events = flag.Int("events", 0, "number of events to trace (0 = whole session)")
		scale  = flag.Float64("scale", 1, "event-count scale factor")
		info   = flag.String("info", "", "inspect an existing trace file instead of generating")
	)
	flag.Parse()

	if *info != "" {
		if err := inspect(*info); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o output file required (or -info to inspect)")
		os.Exit(2)
	}
	if err := generate(*app, *out, *events, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func generate(app, out string, events int, scale float64) error {
	prof, err := workload.ByName(app)
	if err != nil {
		return err
	}
	prof = prof.Scale(scale)
	sess, err := workload.NewSession(prof)
	if err != nil {
		return err
	}
	n := len(sess.Events)
	if events > 0 && events < n {
		n = events
	}
	traces := make([]trace.EventTrace, 0, n)
	var insts int64
	for _, ev := range sess.Events[:n] {
		et := trace.EventTrace{
			Event: ev,
			Insts: trace.Record(sess.Gen.Stream(ev, false), ev.Len),
		}
		insts += int64(len(et.Insts))
		traces = append(traces, et)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteFile(f, traces); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d events, %d instructions, %d bytes (%.2f B/inst)\n",
		out, n, insts, st.Size(), float64(st.Size())/float64(insts))
	return nil
}

func inspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadFile(f)
	if err != nil {
		return err
	}
	var insts, branches, mem int64
	handlers := map[int]bool{}
	for _, et := range events {
		insts += int64(len(et.Insts))
		handlers[et.Event.Handler] = true
		for _, in := range et.Insts {
			switch in.Kind {
			case trace.Branch:
				branches++
			case trace.Load, trace.Store:
				mem++
			}
		}
	}
	fmt.Printf("%s: %d events, %d handler types, %d instructions\n",
		path, len(events), len(handlers), insts)
	if insts > 0 {
		fmt.Printf("  branches: %.1f%%   memory ops: %.1f%%\n",
			float64(branches)/float64(insts)*100, float64(mem)/float64(insts)*100)
	}
	return nil
}
