// Command calib is the workload-calibration probe used to fit the
// synthetic profiles against the paper's anchors (DESIGN.md §6). It
// sweeps event-length multiples of one application and reports how ESP's
// pre-execution coverage, list occupancy and benefit respond — the
// quantities that drove the generator's constants.
//
// Usage:
//
//	calib [-app amazon]
package main

import (
	"flag"
	"fmt"
	"os"

	esp "espsim"
	"espsim/internal/workload"
)

func main() {
	app := flag.String("app", "amazon", "application to probe")
	flag.Parse()

	prof, err := workload.ByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calib:", err)
		os.Exit(2)
	}
	for _, mult := range []int{1, 2, 4, 8} {
		p := prof
		p.MeanEventLen *= mult
		p.Events /= mult
		if p.Events < 4 {
			p.Events = 4
		}
		base, err := esp.Run(p, esp.NLSConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, "calib:", err)
			os.Exit(1)
		}
		e, err := esp.Run(p, esp.ESPNLConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, "calib:", err)
			os.Exit(1)
		}
		cov := float64(e.ESPStats.PreExecInsts) / float64(e.Insts)
		fmt.Printf("len x%d: NL+S cyc=%d ESP+NL cyc=%d gain=%.1f%% coverage=%.0f%% IMPKI %.1f->%.1f BP %.1f->%.1f\n",
			mult, base.Cycles, e.Cycles, (e.Speedup(base)-1)*100, cov*100,
			base.IMPKI, e.IMPKI, base.MispredictRate*100, e.MispredictRate*100)
		st := e.ESPStats
		fmt.Printf("        recI=%d recD=%d recB=%d full=%d prefI=%d prefD=%d corr=%d stallcyc=%d used=%d/%d\n",
			st.RecI, st.RecD, st.RecB, st.ListFull, st.PrefetchI, st.PrefetchD, st.Corrections,
			e.CPU.StallCycles, e.CPU.StallsUsed, e.CPU.StallsOffered)
	}
}
