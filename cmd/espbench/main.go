// Command espbench regenerates the paper's evaluation: every figure's
// table plus the headline (abstract) metrics. Its output is the payload
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	espbench [-fig all|3|6|8|9|10|11a|11b|12|13|14|headline] [-scale 1] [-par 4]
//
// With -fig all the figures run concurrently through the fault-tolerant
// sweep runner: a figure that fails is reported and skipped, the rest
// are still emitted, and espbench exits non-zero if anything degraded.
package main

import (
	"flag"
	"fmt"
	"os"

	"espsim"
	"espsim/internal/workload"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "which figure to regenerate (all, headline, ablations, seeds, related, 3, 6, 8, 9, 10, 11a, 11b, 12, 13, 14)")
		scale = flag.Float64("scale", 1, "event-count scale factor")
		app   = flag.String("app", "amazon", "application for -fig ablations")
		csv   = flag.Bool("csv", false, "emit tables as CSV (for plotting)")
		par   = flag.Int("par", 4, "figure-level parallelism for -fig all")
	)
	flag.Parse()

	csvOut = *csv
	h := esp.NewHarness()
	h.Scale = *scale

	figures := map[string]func() (esp.Figure, error){
		"3": h.Fig3, "6": h.Fig6, "8": h.Fig8, "9": h.Fig9, "10": h.Fig10,
		"11a": h.Fig11a, "11b": h.Fig11b, "12": h.Fig12, "13": h.Fig13, "14": h.Fig14,
		"related": h.FigRelated,
	}

	switch *fig {
	case "all":
		sweep := h.RunAll(*par)
		for _, f := range sweep.Figures {
			printFigure(f)
		}
		head, err := h.Headline()
		if err != nil {
			fail(err)
		}
		fmt.Println(head)
		fmt.Println("engine:", sweep.Perf)
		if !sweep.OK() {
			fmt.Fprintln(os.Stderr, "espbench: sweep degraded:")
			fmt.Fprintln(os.Stderr, sweep.Summary())
			os.Exit(1)
		}
	case "headline":
		head, err := h.Headline()
		if err != nil {
			fail(err)
		}
		fmt.Println(head)
	case "seeds":
		prof, err := workload.ByName(*app)
		if err != nil {
			fail(err)
		}
		t, err := h.SeedStudy(prof, 5)
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
	case "ablations":
		prof, err := workload.ByName(*app)
		if err != nil {
			fail(err)
		}
		abls, err := h.AllAblations(prof)
		if err != nil {
			fail(err)
		}
		for _, a := range abls {
			fmt.Println(a.Table)
			fmt.Println()
		}
	default:
		gen, ok := figures[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "espbench: unknown figure %q\n", *fig)
			os.Exit(2)
		}
		f, err := gen()
		if err != nil {
			fail(err)
		}
		printFigure(f)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "espbench:", err)
	os.Exit(1)
}

func printFigure(f esp.Figure) {
	if csvOut {
		fmt.Print(f.Table.CSV())
		fmt.Println()
	} else {
		fmt.Println(f.Table)
		if f.PaperNote != "" {
			fmt.Printf("  %s\n", f.PaperNote)
		}
		fmt.Println()
	}
	for _, key := range f.CellErrorKeys() {
		fmt.Fprintf(os.Stderr, "espbench: %s: cell %s failed: %v\n", f.ID, key, f.CellErrors[key])
	}
}

// csvOut switches printFigure to CSV rendering.
var csvOut bool
