// Command espbench regenerates the paper's evaluation: every figure's
// table plus the headline (abstract) metrics. Its output is the payload
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	espbench [-fig all|3|6|8|9|10|11a|11b|12|13|14|headline] [-scale 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"espsim"
	"espsim/internal/workload"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "which figure to regenerate (all, headline, ablations, seeds, related, 3, 6, 8, 9, 10, 11a, 11b, 12, 13, 14)")
		scale = flag.Float64("scale", 1, "event-count scale factor")
		app   = flag.String("app", "amazon", "application for -fig ablations")
		csv   = flag.Bool("csv", false, "emit tables as CSV (for plotting)")
	)
	flag.Parse()

	csvOut = *csv
	h := esp.NewHarness()
	h.Scale = *scale

	figures := map[string]func() esp.Figure{
		"3": h.Fig3, "6": h.Fig6, "8": h.Fig8, "9": h.Fig9, "10": h.Fig10,
		"11a": h.Fig11a, "11b": h.Fig11b, "12": h.Fig12, "13": h.Fig13, "14": h.Fig14,
		"related": h.FigRelated,
	}
	order := []string{"3", "6", "8", "9", "10", "11a", "11b", "12", "13", "14", "related"}

	switch *fig {
	case "all":
		for _, id := range order {
			printFigure(figures[id]())
		}
		fmt.Println(h.Headline())
	case "headline":
		fmt.Println(h.Headline())
	case "seeds":
		prof, err := workload.ByName(*app)
		if err != nil {
			fmt.Fprintln(os.Stderr, "espbench:", err)
			os.Exit(2)
		}
		fmt.Println(h.SeedStudy(prof, 5))
	case "ablations":
		prof, err := workload.ByName(*app)
		if err != nil {
			fmt.Fprintln(os.Stderr, "espbench:", err)
			os.Exit(2)
		}
		for _, a := range h.AllAblations(prof) {
			fmt.Println(a.Table)
			fmt.Println()
		}
	default:
		f, ok := figures[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "espbench: unknown figure %q\n", *fig)
			os.Exit(2)
		}
		printFigure(f())
	}
}

func printFigure(f esp.Figure) {
	if csvOut {
		fmt.Print(f.Table.CSV())
		fmt.Println()
		return
	}
	fmt.Println(f.Table)
	if f.PaperNote != "" {
		fmt.Printf("  %s\n", f.PaperNote)
	}
	fmt.Println()
}

// csvOut switches printFigure to CSV rendering.
var csvOut bool
